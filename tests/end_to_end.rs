//! End-to-end integration tests: the full pipeline — synthetic paper
//! dataset → split → standardise → encode → RegHD fit → predict — spanning
//! the `datasets`, `encoding`, `reghd`, and `hdc` crates.

use reghd_repro::prelude::*;

/// Fits RegHD on a paper dataset and returns `(test_mse, variance)` in
/// standardised units.
fn run_reghd(ds: &Dataset, k: usize, dim: usize, seed: u64) -> (f32, f32) {
    let (train, test) = datasets::split::train_test_split(ds, 0.2, seed);
    let train = train.select(&(0..train.len().min(800)).collect::<Vec<_>>());
    let std = datasets::normalize::Standardizer::fit(&train);
    let train_n = std.transform(&train);
    let test_n = std.transform(&test);
    let scaler = datasets::normalize::TargetScaler::fit(&train.targets);
    let train_y: Vec<f32> = train.targets.iter().map(|&y| scaler.transform(y)).collect();
    let test_y: Vec<f32> = test.targets.iter().map(|&y| scaler.transform(y)).collect();

    let cfg = RegHdConfig::builder()
        .dim(dim)
        .models(k)
        .max_epochs(15)
        .seed(seed)
        .build();
    let enc = NonlinearEncoder::new(ds.num_features(), dim, seed);
    let mut model = RegHdRegressor::new(cfg, Box::new(enc));
    model.fit(&train_n.features, &train_y);
    let mse = datasets::metrics::mse(&model.predict(&test_n.features), &test_y);
    // The operative floor is the *train-mean predictor's* test MSE (test_y
    // is already centred by the train mean, so this is mean(test_y²)).
    // Plain test variance misleads on heavy-tailed targets, where the test
    // split's spread can differ wildly from the train split's.
    let floor = test_y.iter().map(|&y| y * y).sum::<f32>() / test_y.len() as f32;
    (mse, floor)
}

#[test]
fn reghd_beats_the_mean_floor_on_every_paper_dataset() {
    // diabetes and wine are calibrated to ≈57%/65% irreducible-noise
    // fractions (matching the paper's Table 1 floors), so on those the bar
    // is "no worse than the floor"; the lower-noise datasets must clearly
    // beat it.
    for ds in datasets::paper::all(3) {
        let (mse, var) = run_reghd(&ds, 4, 1024, 3);
        let bound = match ds.name.as_str() {
            // Heavy-tailed target: the floor itself is volatile across
            // splits (a handful of large "fires" dominate), so the bar is
            // "no blow-up" rather than "beat the floor" — the same is true
            // of every learner on the real forest-fires data.
            "forest" => 6.0 * var,
            "diabetes" | "wine" | "facebook" => 1.12 * var,
            "boston" => 0.9 * var,
            _ => 0.75 * var,
        };
        assert!(
            mse < bound,
            "{}: RegHD mse {mse} exceeded bound {bound} (var {var})",
            ds.name
        );
    }
}

#[test]
fn reghd_explains_most_signal_on_low_noise_data() {
    // CCPP has the lowest noise floor of the seven; RegHD must capture the
    // bulk of its structure, not just scrape under the variance.
    let ds = datasets::paper::ccpp(5);
    let (mse, var) = run_reghd(&ds, 4, 1024, 5);
    assert!(mse < 0.35 * var, "mse {mse} vs var {var}");
}

#[test]
fn full_pipeline_is_deterministic() {
    let ds = datasets::paper::boston(9);
    let a = run_reghd(&ds, 4, 512, 9);
    let b = run_reghd(&ds, 4, 512, 9);
    assert_eq!(a, b);
}

#[test]
fn quantised_clusters_stay_close_to_full_precision() {
    // The Figure 6 claim as a regression test: the framework's binary
    // clusters must not cost more than 25% MSE on any paper dataset.
    let seed = 11;
    for ds in [datasets::paper::airfoil(seed), datasets::paper::ccpp(seed)] {
        let (train, test) = datasets::split::train_test_split(&ds, 0.2, seed);
        let train = train.select(&(0..train.len().min(800)).collect::<Vec<_>>());
        let std = datasets::normalize::Standardizer::fit(&train);
        let train_n = std.transform(&train);
        let test_n = std.transform(&test);
        let scaler = datasets::normalize::TargetScaler::fit(&train.targets);
        let train_y: Vec<f32> = train.targets.iter().map(|&y| scaler.transform(y)).collect();
        let test_y: Vec<f32> = test.targets.iter().map(|&y| scaler.transform(y)).collect();
        let run = |mode: ClusterMode| {
            let cfg = RegHdConfig::builder()
                .dim(1024)
                .models(8)
                .max_epochs(15)
                .cluster_mode(mode)
                .seed(seed)
                .build();
            let enc = NonlinearEncoder::new(ds.num_features(), 1024, seed);
            let mut m = RegHdRegressor::new(cfg, Box::new(enc));
            m.fit(&train_n.features, &train_y);
            datasets::metrics::mse(&m.predict(&test_n.features), &test_y)
        };
        let full = run(ClusterMode::Integer);
        let quant = run(ClusterMode::FrameworkBinary);
        assert!(
            quant < full * 1.25,
            "{}: quantised {quant} strayed too far from full {full}",
            ds.name
        );
    }
}

#[test]
fn more_models_do_not_catastrophically_regress() {
    // Table 1's k-sweep sanity: RegHD-8 must stay within 1.3x of RegHD-1 on
    // every dataset (it usually improves; it must never blow up).
    for ds in datasets::paper::all(13) {
        let (m1, _) = run_reghd(&ds, 1, 1024, 13);
        let (m8, _) = run_reghd(&ds, 8, 1024, 13);
        assert!(
            m8 < 1.3 * m1,
            "{}: k=8 mse {m8} blew up vs k=1 mse {m1}",
            ds.name
        );
    }
}

#[test]
fn single_and_multi_apis_agree_at_k1_in_spirit() {
    // SingleHdRegressor and RegHdRegressor with k=1 are different code
    // paths (no clustering machinery vs one degenerate cluster); they must
    // land in the same quality neighbourhood.
    let ds = datasets::paper::airfoil(17);
    let (train, test) = datasets::split::train_test_split(&ds, 0.2, 17);
    let train = train.select(&(0..600).collect::<Vec<_>>());
    let std = datasets::normalize::Standardizer::fit(&train);
    let train_n = std.transform(&train);
    let test_n = std.transform(&test);
    let scaler = datasets::normalize::TargetScaler::fit(&train.targets);
    let train_y: Vec<f32> = train.targets.iter().map(|&y| scaler.transform(y)).collect();
    let test_y: Vec<f32> = test.targets.iter().map(|&y| scaler.transform(y)).collect();

    let cfg = RegHdConfig::builder()
        .dim(1024)
        .models(1)
        .max_epochs(15)
        .seed(17)
        .build();
    let mut single = SingleHdRegressor::new(
        cfg.clone(),
        Box::new(NonlinearEncoder::new(ds.num_features(), 1024, 17)),
    );
    let mut multi = RegHdRegressor::new(
        cfg,
        Box::new(NonlinearEncoder::new(ds.num_features(), 1024, 17)),
    );
    single.fit(&train_n.features, &train_y);
    multi.fit(&train_n.features, &train_y);
    let mse_s = datasets::metrics::mse(&single.predict(&test_n.features), &test_y);
    let mse_m = datasets::metrics::mse(&multi.predict(&test_n.features), &test_y);
    let ratio = mse_s / mse_m;
    assert!(
        (0.6..1.7).contains(&ratio),
        "single {mse_s} vs multi-k1 {mse_m} diverged (ratio {ratio})"
    );
}
