//! Integration tests for the §3 robustness claims: trained RegHD models
//! degrade gracefully under hypervector component faults, and the Eq. 3/4
//! capacity analysis predicts the behaviour of real bundles.

use reghd_repro::hdc::capacity;
use reghd_repro::hdc::noise;
use reghd_repro::hdc::rng::HdRng;
use reghd_repro::prelude::*;

fn trained_model() -> (RegHdRegressor, Vec<Vec<f32>>, Vec<f32>) {
    let mut rng = HdRng::seed_from(31);
    let xs: Vec<Vec<f32>> = (0..300)
        .map(|_| (0..4).map(|_| rng.next_gaussian() as f32).collect())
        .collect();
    let ys: Vec<f32> = xs
        .iter()
        .map(|x| x[0] + 0.5 * x[1] - (x[2] * 1.5).sin())
        .collect();
    let cfg = RegHdConfig::builder()
        .dim(2048)
        .models(4)
        .max_epochs(15)
        .seed(31)
        .build();
    let enc = NonlinearEncoder::new(4, 2048, 31);
    let mut m = RegHdRegressor::new(cfg, Box::new(enc));
    m.fit(&xs, &ys);
    (m, xs, ys)
}

#[test]
fn graceful_degradation_under_component_faults() {
    let (m, xs, ys) = trained_model();
    let clean = datasets::metrics::mse(&m.predict(&xs), &ys);
    let mut prev = clean;
    for rate in [0.01f64, 0.05, 0.10] {
        let mut rng = HdRng::seed_from(77);
        let preds: Vec<f32> = xs
            .iter()
            .map(|x| m.predict_one_with_noise(x, rate, &mut rng))
            .collect();
        let noisy = datasets::metrics::mse(&preds, &ys);
        // Monotone-ish growth, and small faults stay near-clean.
        assert!(
            noisy >= prev * 0.8,
            "rate {rate}: MSE should not drop substantially"
        );
        prev = noisy;
    }
    // The headline: with 5% of components faulted, the error stays a small
    // fraction of the target variance (the clean fit is near-perfect here,
    // so a variance-relative bound is the meaningful one).
    let mean: f32 = ys.iter().sum::<f32>() / ys.len() as f32;
    let var: f32 = ys.iter().map(|&y| (y - mean) * (y - mean)).sum::<f32>() / ys.len() as f32;
    let mut rng = HdRng::seed_from(78);
    let preds: Vec<f32> = xs
        .iter()
        .map(|x| m.predict_one_with_noise(x, 0.05, &mut rng))
        .collect();
    let at5 = datasets::metrics::mse(&preds, &ys);
    assert!(
        at5 < 0.1 * var,
        "5% faults cost too much: {at5} vs variance {var} (clean {clean})"
    );
}

#[test]
fn zero_fault_rate_is_identity() {
    let (m, xs, _) = trained_model();
    let mut rng = HdRng::seed_from(1);
    for x in xs.iter().take(10) {
        assert_eq!(m.predict_one_with_noise(x, 0.0, &mut rng), m.predict_one(x));
    }
}

#[test]
fn binary_similarity_survives_bit_flips() {
    // The substrate-level robustness property feeding the model-level one:
    // a 10%-corrupted binary hypervector is still far more similar to its
    // original than to an unrelated vector.
    let mut rng = HdRng::seed_from(41);
    let dim = 4096;
    let v = BinaryHv::random(dim, &mut rng);
    let other = BinaryHv::random(dim, &mut rng);
    let (corrupted, _) = noise::flip_bits(&v, 0.10, &mut rng);
    let self_sim = reghd_repro::hdc::similarity::hamming_similarity(&v, &corrupted);
    let cross_sim = reghd_repro::hdc::similarity::hamming_similarity(&v, &other);
    assert!(self_sim > 0.7);
    assert!(cross_sim.abs() < 0.1);
}

#[test]
fn capacity_analysis_predicts_cluster_search_reliability() {
    // Eq. 4 cross-check at the scale the harness actually uses: with D =
    // 2048 and k = 8 bundled patterns per cluster, false-positive pressure
    // is negligible at T = 0.5.
    let p = capacity::false_positive_probability(2048, 8, 0.5);
    assert!(p < 1e-6, "false positive probability {p} unexpectedly high");
    // And the analysis is honest: at heavy load it reports real risk.
    let heavy = capacity::false_positive_probability(2048, 2048, 0.5);
    assert!(heavy > 0.2);
}

#[test]
fn stuck_at_zero_faults_are_tolerated_by_dot_products() {
    // Zeroing 10% of a trained model's components scales its dot products
    // by ≈ 0.9 on average — bounded, predictable degradation.
    let mut rng = HdRng::seed_from(51);
    let m = RealHv::random_gaussian(4096, &mut rng);
    let q = RealHv::random_gaussian(4096, &mut rng);
    let clean = m.dot(&q);
    let faulted = noise::stuck_at_zero(&m, 0.10, &mut rng);
    let noisy = faulted.dot(&q);
    // The perturbation is a random 10% subset's contribution.
    let denom = clean.abs().max(m.norm() * q.norm() * 0.05);
    assert!(
        (noisy - clean).abs() / denom < 1.0,
        "stuck-at-zero perturbation too large: {clean} -> {noisy}"
    );
}
