//! Cross-crate persistence integration tests: a model trained on the
//! datasets-crate workloads, saved with `reghd::persist`, must reload
//! bit-exactly and keep working across the public API surface.

use reghd_repro::encoding::EncoderSpec;
use reghd_repro::prelude::*;
use reghd_repro::reghd::persist;

fn trained_on_paper_data(
    pred: PredictionMode,
) -> (RegHdRegressor, EncoderSpec, Vec<Vec<f32>>, Vec<f32>) {
    let ds = datasets::paper::airfoil(5);
    let (train, test) = datasets::split::train_test_split(&ds, 0.2, 5);
    let train = train.select(&(0..400).collect::<Vec<_>>());
    let std = datasets::normalize::Standardizer::fit(&train);
    let train_n = std.transform(&train);
    let test_n = std.transform(&test);
    let scaler = datasets::normalize::TargetScaler::fit(&train.targets);
    let train_y: Vec<f32> = train.targets.iter().map(|&y| scaler.transform(y)).collect();
    let test_y: Vec<f32> = test.targets.iter().map(|&y| scaler.transform(y)).collect();

    let spec = EncoderSpec::Nonlinear {
        input_dim: ds.num_features(),
        dim: 1024,
        seed: 5,
    };
    let cfg = RegHdConfig::builder()
        .dim(1024)
        .models(4)
        .max_epochs(10)
        .prediction_mode(pred)
        .cluster_mode(ClusterMode::FrameworkBinary)
        .seed(5)
        .build();
    let mut model = RegHdRegressor::new(cfg, spec.build());
    model.fit(&train_n.features, &train_y);
    (model, spec, test_n.features, test_y)
}

#[test]
fn roundtrip_preserves_predictions_on_real_workload() {
    for pred in PredictionMode::ALL {
        let (model, spec, test_x, _) = trained_on_paper_data(pred);
        let mut buf = Vec::new();
        persist::save(&model, &spec, &mut buf).expect("save");
        let loaded = persist::load(&mut buf.as_slice()).expect("load");
        for x in test_x.iter().take(20) {
            assert_eq!(
                loaded.predict_one(x),
                model.predict_one(x),
                "mismatch in mode {pred:?}"
            );
        }
    }
}

#[test]
fn roundtrip_preserves_quality() {
    let (model, spec, test_x, test_y) = trained_on_paper_data(PredictionMode::Full);
    let mut buf = Vec::new();
    persist::save(&model, &spec, &mut buf).expect("save");
    let loaded = persist::load(&mut buf.as_slice()).expect("load");
    let mse_orig = datasets::metrics::mse(&model.predict(&test_x), &test_y);
    let mse_loaded = datasets::metrics::mse(&loaded.predict(&test_x), &test_y);
    assert_eq!(mse_orig, mse_loaded);
}

#[test]
fn loaded_model_supports_refinement() {
    // A reloaded model is a first-class trained model: refine() must work.
    let (model, spec, test_x, test_y) = trained_on_paper_data(PredictionMode::Full);
    let mut buf = Vec::new();
    persist::save(&model, &spec, &mut buf).expect("save");
    let mut loaded = persist::load(&mut buf.as_slice()).expect("load");
    let report = loaded.refine(&test_x[..50], &test_y[..50], 3);
    assert_eq!(report.epochs, 3);
    assert!(report.train_mse_history.iter().all(|m| m.is_finite()));
}

#[test]
fn loaded_model_supports_sparsification_and_diagnostics() {
    let (model, spec, test_x, _) = trained_on_paper_data(PredictionMode::Full);
    let mut buf = Vec::new();
    persist::save(&model, &spec, &mut buf).expect("save");
    let mut loaded = persist::load(&mut buf.as_slice()).expect("load");
    let diag = loaded.diagnostics(&test_x[..50]);
    assert_eq!(diag.cluster_histogram.iter().sum::<usize>(), 50);
    let report = loaded.sparsify_models(0.5);
    assert!((report.density - 0.5).abs() < 0.05);
    assert!(loaded.predict_one(&test_x[0]).is_finite());
}

#[test]
fn file_size_is_compact() {
    // The encoder is stored as a spec (a few integers), so the file is
    // dominated by the k + k hypervectors + centre: ≈ (2k+1)·4·D bytes.
    let (model, spec, _, _) = trained_on_paper_data(PredictionMode::Full);
    let mut buf = Vec::new();
    persist::save(&model, &spec, &mut buf).expect("save");
    let expected = (2 * 4 + 1) * 4 * 1024; // 9 hypervectors of f32
    assert!(
        buf.len() < expected + 4096,
        "file unexpectedly large: {} bytes",
        buf.len()
    );
    assert!(buf.len() > expected / 2);
}
