//! Integration tests for the baseline learners as a cohort: each must win
//! on the task shape it is built for, and the Table 1 qualitative ordering
//! must hold on a controlled workload.

use reghd_repro::baselines::baseline_hd::BaselineHdConfig;
use reghd_repro::baselines::mlp::MlpConfig;
use reghd_repro::baselines::svr::SvrConfig;
use reghd_repro::baselines::tree::TreeConfig;
use reghd_repro::hdc::rng::HdRng;
use reghd_repro::prelude::*;

fn mse_of(model: &mut dyn Regressor, xs: &[Vec<f32>], ys: &[f32]) -> f32 {
    model.fit(xs, ys);
    datasets::metrics::mse(&model.predict(xs), ys)
}

#[test]
fn every_baseline_beats_the_mean_floor_on_a_smooth_task() {
    let mut rng = HdRng::seed_from(61);
    let xs: Vec<Vec<f32>> = (0..400)
        .map(|_| (0..3).map(|_| rng.next_gaussian() as f32).collect())
        .collect();
    let ys: Vec<f32> = xs.iter().map(|x| x[0] + (x[1] * 2.0).sin()).collect();
    let mean: f32 = ys.iter().sum::<f32>() / ys.len() as f32;
    let var: f32 = ys.iter().map(|&y| (y - mean) * (y - mean)).sum::<f32>() / ys.len() as f32;

    let f = 3usize;
    let mut models: Vec<Box<dyn Regressor>> = vec![
        Box::new(LinearRegressor::new(1e-6)),
        Box::new(TreeRegressor::new(TreeConfig::default())),
        Box::new(SvrRegressor::new(f, SvrConfig::default())),
        Box::new(MlpRegressor::new(f, MlpConfig::default())),
        Box::new(BaselineHd::new(
            BaselineHdConfig::default(),
            Box::new(NonlinearEncoder::new(f, 1024, 1)),
        )),
    ];
    for m in &mut models {
        let mse = mse_of(m.as_mut(), &xs, &ys);
        assert!(
            mse < 0.9 * var,
            "{} failed to beat the variance floor: {mse} vs {var}",
            m.name()
        );
    }
}

#[test]
fn tree_wins_on_axis_aligned_steps_linear_wins_on_planes() {
    let mut rng = HdRng::seed_from(62);
    let xs: Vec<Vec<f32>> = (0..300)
        .map(|_| vec![rng.next_f32() * 2.0 - 1.0, rng.next_f32() * 2.0 - 1.0])
        .collect();
    // Step function: tree territory.
    let steps: Vec<f32> = xs
        .iter()
        .map(|x| if x[0] > 0.0 { 2.0 } else { -2.0 })
        .collect();
    // Plane: linear territory.
    let plane: Vec<f32> = xs.iter().map(|x| 1.5 * x[0] - 0.5 * x[1]).collect();

    let mut tree = TreeRegressor::new(TreeConfig::default());
    let mut linear = LinearRegressor::new(1e-6);
    assert!(mse_of(&mut tree, &xs, &steps) < mse_of(&mut linear, &xs, &steps));

    let mut tree = TreeRegressor::new(TreeConfig::default());
    let mut linear = LinearRegressor::new(1e-6);
    assert!(mse_of(&mut linear, &xs, &plane) < mse_of(&mut tree, &xs, &plane));
}

#[test]
fn baseline_hd_is_limited_by_discretisation_where_reghd_is_not() {
    // The central Table 1 contrast, reproduced on a controlled workload: a
    // smooth high-precision target. Baseline-HD's bin floor keeps it above
    // RegHD.
    let mut rng = HdRng::seed_from(63);
    let xs: Vec<Vec<f32>> = (0..500).map(|_| vec![rng.next_f32() * 2.0 - 1.0]).collect();
    let ys: Vec<f32> = xs.iter().map(|x| x[0]).collect();

    let mut bhd = BaselineHd::new(
        BaselineHdConfig {
            bins: 16,
            ..BaselineHdConfig::default()
        },
        Box::new(NonlinearEncoder::new(1, 1024, 2)),
    );
    let cfg = RegHdConfig::builder()
        .dim(1024)
        .models(2)
        .max_epochs(20)
        .seed(2)
        .build();
    let mut reghd = RegHdRegressor::new(cfg, Box::new(NonlinearEncoder::new(1, 1024, 2)));

    let mse_bhd = mse_of(&mut bhd, &xs, &ys);
    let mse_reghd = mse_of(&mut reghd, &xs, &ys);
    // 16 bins over [-1, 1]: quantisation floor = (2/16)²/12 ≈ 1.3e-3.
    assert!(
        mse_bhd > 1e-3,
        "baseline-HD beat its own quantisation floor?"
    );
    assert!(
        mse_reghd < mse_bhd / 2.0,
        "RegHD ({mse_reghd}) must clearly beat Baseline-HD ({mse_bhd})"
    );
}

#[test]
fn grid_search_agrees_with_held_out_evaluation() {
    // The §4.2 tuning protocol: the k chosen by CV must be at least as good
    // on a held-out set as the worst candidate.
    use reghd_repro::baselines::grid::{grid_search, Candidate};
    let ds = datasets::paper::airfoil(64);
    let (train, test) = datasets::split::train_test_split(&ds, 0.3, 64);
    let train = train.select(&(0..500).collect::<Vec<_>>());
    let std = datasets::normalize::Standardizer::fit(&train);
    let train_n = std.transform(&train);
    let test_n = std.transform(&test);
    let scaler = datasets::normalize::TargetScaler::fit(&train.targets);
    let train_y: Vec<f32> = train.targets.iter().map(|&y| scaler.transform(y)).collect();
    let test_y: Vec<f32> = test.targets.iter().map(|&y| scaler.transform(y)).collect();
    let f = ds.num_features();

    let mk = |k: usize| {
        move || -> Box<dyn Regressor> {
            let cfg = RegHdConfig::builder()
                .dim(512)
                .models(k)
                .max_epochs(10)
                .seed(64)
                .build();
            Box::new(RegHdRegressor::new(
                cfg,
                Box::new(NonlinearEncoder::new(f, 512, 64)),
            ))
        }
    };
    let candidates: Vec<Candidate> = vec![
        ("k=1".to_string(), Box::new(mk(1))),
        ("k=8".to_string(), Box::new(mk(8))),
    ];
    let grid = grid_search(&candidates, &train_n.features, &train_y, 3, 64);

    let heldout = |i: usize| {
        let mut m = candidates[i].1();
        m.fit(&train_n.features, &train_y);
        datasets::metrics::mse(&m.predict(&test_n.features), &test_y)
    };
    let best = heldout(grid.best_index);
    let other = heldout(1 - grid.best_index);
    assert!(
        best <= other * 1.2,
        "grid winner ({best}) should not be clearly worse held-out than loser ({other})"
    );
}

#[test]
fn regressor_trait_objects_compose() {
    // The whole cohort can be driven behind `Box<dyn Regressor>` — the
    // property the bench harness depends on.
    let xs: Vec<Vec<f32>> = (0..50).map(|i| vec![i as f32 / 25.0]).collect();
    let ys: Vec<f32> = xs.iter().map(|x| 2.0 * x[0]).collect();
    let mut zoo: Vec<Box<dyn Regressor>> = vec![
        Box::new(MeanRegressor::new()),
        Box::new(LinearRegressor::new(0.0)),
        Box::new(TreeRegressor::new(TreeConfig::default())),
    ];
    for m in &mut zoo {
        let report = m.fit(&xs, &ys);
        assert!(report.epochs >= 1);
        assert!(m.predict_one(&[0.5]).is_finite());
    }
}
