//! Cross-crate bit-exactness of the row-parallel execution layer.
//!
//! The contract (see `hdc::par`): batches are split into contiguous row
//! chunks, each row is computed with exactly the sequential arithmetic,
//! and chunk results are concatenated in order — so `encode_batch` and
//! `predict_batch` must be **bit-identical** at every thread count, for
//! every `ClusterMode` × `PredictionMode` combination, all the way up
//! through a train-then-serve TCP roundtrip.

use proptest::prelude::*;
use reghd_repro::prelude::*;
use reghd_serve::{bundle, serve, ModelRegistry, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

const THREADS: [usize; 3] = [1, 2, 4];

/// Deterministic synthetic regression rows (no RNG dependency needed).
fn rows(n: usize, f: usize) -> (Vec<Vec<f32>>, Vec<f32>) {
    let xs: Vec<Vec<f32>> = (0..n)
        .map(|i| {
            (0..f)
                .map(|j| ((i * 7 + j * 13) % 19) as f32 / 9.5 - 1.0)
                .collect()
        })
        .collect();
    let ys = xs
        .iter()
        .map(|x| x[0] + (2.0 * x[1]).sin() - 0.5 * x[f - 1])
        .collect();
    (xs, ys)
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|p| p.to_bits()).collect()
}

#[test]
fn predict_batch_is_bit_identical_in_every_mode_at_every_thread_count() {
    let (xs, ys) = rows(60, 4);
    for cluster in [
        ClusterMode::Integer,
        ClusterMode::FrameworkBinary,
        ClusterMode::NaiveBinary,
    ] {
        for pred in [
            PredictionMode::Full,
            PredictionMode::BinaryQuery,
            PredictionMode::BinaryModel,
            PredictionMode::BinaryBoth,
        ] {
            let cfg = RegHdConfig::builder()
                .dim(256)
                .models(2)
                .max_epochs(3)
                .min_epochs(1)
                .seed(5)
                .cluster_mode(cluster)
                .prediction_mode(pred)
                .build();
            let mut m = RegHdRegressor::new(cfg, Box::new(NonlinearEncoder::new(4, 256, 5)));
            m.fit(&xs, &ys);
            let seq = m.predict_batch(&xs);
            let seq_deg = m.predict_batch_degraded(&xs);
            for threads in THREADS {
                m.set_threads(threads);
                assert_eq!(
                    bits(&m.predict_batch(&xs)),
                    bits(&seq),
                    "{cluster:?}/{pred:?} threads={threads}"
                );
                assert_eq!(
                    bits(&m.predict_batch_degraded(&xs)),
                    bits(&seq_deg),
                    "degraded {cluster:?}/{pred:?} threads={threads}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary (bounded) rows encode and fit identically regardless of
    /// the thread count.
    #[test]
    fn encode_and_fit_are_bit_identical_across_threads(
        xs in prop::collection::vec(prop::collection::vec(-2.0f32..2.0, 3), 10..40)
    ) {
        let enc = NonlinearEncoder::new(3, 256, 11);
        let seq: Vec<Vec<u32>> = enc
            .encode_batch(&xs, 1)
            .iter()
            .map(|hv| hv.as_slice().iter().map(|v| v.to_bits()).collect())
            .collect();
        for threads in THREADS {
            let par: Vec<Vec<u32>> = enc
                .encode_batch(&xs, threads)
                .iter()
                .map(|hv| hv.as_slice().iter().map(|v| v.to_bits()).collect())
                .collect();
            prop_assert_eq!(&par, &seq, "threads={}", threads);
        }

        let ys: Vec<f32> = xs.iter().map(|x| x[0] - x[2]).collect();
        let fit = |threads: usize| {
            let cfg = RegHdConfig::builder()
                .dim(256).models(2).max_epochs(2).min_epochs(1).seed(11).build();
            let mut m = RegHdRegressor::new(cfg, Box::new(NonlinearEncoder::new(3, 256, 11)));
            m.set_threads(threads);
            m.fit(&xs, &ys);
            m.set_threads(1);
            bits(&m.predict_batch(&xs))
        };
        let seq = fit(1);
        for threads in THREADS {
            prop_assert_eq!(fit(threads), seq.clone(), "threads={}", threads);
        }
    }
}

/// One `predict` request per row against a running server; replies come
/// back as `ok <f32>` lines whose text is the shortest round-trip
/// representation — string equality means bit equality.
fn serve_and_predict(threads: usize, xs: &[Vec<f32>]) -> Vec<String> {
    let (train_xs, train_ys) = rows(80, 4);
    let ds = datasets::Dataset::new("par-eq", train_xs, train_ys);
    let (bundle, _) = bundle::train(&ds, 256, 2, 6, 3, false).unwrap();
    let bytes = bundle.to_bytes().unwrap();

    let registry = Arc::new(ModelRegistry::new());
    registry.set_default_threads(threads);
    registry.load_bytes("m", &bytes).unwrap();
    let handle = serve(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            threads,
            ..ServerConfig::default()
        },
        registry,
    )
    .unwrap();

    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut replies = Vec::with_capacity(xs.len());
    for x in xs {
        let csv: Vec<String> = x.iter().map(|v| v.to_string()).collect();
        writeln!(stream, "predict m {}", csv.join(",")).unwrap();
        stream.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end().to_string();
        assert!(line.starts_with("ok "), "reply: {line}");
        replies.push(line);
    }
    drop(stream);
    handle.shutdown();
    replies
}

#[test]
fn train_then_serve_roundtrip_matches_sequential_exactly() {
    let (xs, _) = rows(12, 4);
    let sequential = serve_and_predict(1, &xs);
    let threaded = serve_and_predict(4, &xs);
    assert_eq!(threaded, sequential);
}
