//! Cross-crate bit-exactness of the blocked encode→predict kernels.
//!
//! The contract (see `hdc::kernels` and DESIGN.md): the cache-blocked batch
//! kernels reorder *loops*, never *arithmetic* — every output component is
//! accumulated over `k` in the same ascending order, from the same `0.0`
//! start, as the scalar `encode()` loop. So the blocked path must be
//! **bit-identical** to the scalar one for every encoder, any dimension
//! (including non-multiples of the tile sizes), any batch size, and any
//! thread count — and the zero-allocation `predict_batch_with` must be
//! bit-identical to `predict_batch` for every `ClusterMode` ×
//! `PredictionMode` combination. `TrigMode::Fast` is the one knob allowed
//! to move results, and only within its documented error bound.

use hdc::kernels::FAST_TRIG_MAX_ABS_ERROR;
use hdc::TrigMode;
use reghd::PredictScratch;
use reghd_repro::prelude::*;

/// Deterministic synthetic rows (no RNG dependency needed).
fn rows(n: usize, f: usize) -> Vec<Vec<f32>> {
    (0..n)
        .map(|i| {
            (0..f)
                .map(|j| ((i * 7 + j * 13) % 19) as f32 / 9.5 - 1.0)
                .collect()
        })
        .collect()
}

fn hv_bits(hv: &RealHv) -> Vec<u32> {
    hv.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|p| p.to_bits()).collect()
}

/// Every encoder's blocked batch path must reproduce its scalar `encode`
/// bit for bit — across dims that don't divide the tile sizes, batch
/// sizes around the row-tile width, and thread counts.
#[test]
fn blocked_batch_encoding_is_bit_identical_to_scalar_for_every_encoder() {
    for &dim in &[64usize, 127, 128, 129, 257] {
        let encoders: Vec<(&str, Box<dyn Encoder>)> = vec![
            ("nonlinear", Box::new(NonlinearEncoder::new(5, dim, 7))),
            ("rff", Box::new(RffEncoder::new(5, dim, 1.0, 7))),
            ("projection", Box::new(ProjectionEncoder::new(5, dim, 7))),
        ];
        for (name, enc) in &encoders {
            for &n in &[1usize, 3, 4, 5, 11] {
                let xs = rows(n, 5);
                let want: Vec<Vec<u32>> = xs.iter().map(|x| hv_bits(&enc.encode(x))).collect();
                let mut out = vec![RealHv::default(); n];
                for threads in [1usize, 2, 3] {
                    enc.encode_batch_into(&xs, &mut out, threads);
                    let got: Vec<Vec<u32>> = out.iter().map(hv_bits).collect();
                    assert_eq!(got, want, "{name} dim={dim} n={n} threads={threads}");
                }
            }
        }
    }
}

/// Fast trig is opt-in and bounded: each encoded component stays within a
/// small multiple of `FAST_TRIG_MAX_ABS_ERROR` of the exact value (the
/// nonlinear encoder multiplies two approximated factors, hence the
/// slack), and switching back restores bit-exactness.
#[test]
fn fast_trig_stays_within_documented_bound_and_is_reversible() {
    let xs = rows(9, 5);
    let encoders: Vec<(&str, Box<dyn Encoder>, f32)> = vec![
        (
            "nonlinear",
            Box::new(NonlinearEncoder::new(5, 257, 3)),
            2.5 * FAST_TRIG_MAX_ABS_ERROR,
        ),
        (
            "rff",
            Box::new(RffEncoder::new(5, 257, 1.0, 3)),
            FAST_TRIG_MAX_ABS_ERROR,
        ),
    ];
    for (name, enc, tol) in &encoders {
        let exact: Vec<RealHv> = xs.iter().map(|x| enc.encode(x)).collect();
        enc.set_trig_mode(TrigMode::Fast);
        assert_eq!(enc.trig_mode(), TrigMode::Fast);
        let mut fast = vec![RealHv::default(); xs.len()];
        enc.encode_batch_into(&xs, &mut fast, 1);
        for (i, (e, f)) in exact.iter().zip(&fast).enumerate() {
            for (a, b) in e.as_slice().iter().zip(f.as_slice()) {
                assert!(
                    (a - b).abs() <= *tol,
                    "{name} row {i}: exact={a} fast={b} tol={tol}"
                );
            }
        }
        // The scalar path honours the same knob as the batch path.
        for (x, f) in xs.iter().zip(&fast) {
            assert_eq!(hv_bits(&enc.encode(x)), hv_bits(f), "{name} scalar/batch");
        }
        enc.set_trig_mode(TrigMode::Exact);
        let mut back = vec![RealHv::default(); xs.len()];
        enc.encode_batch_into(&xs, &mut back, 1);
        for (e, b) in exact.iter().zip(&back) {
            assert_eq!(hv_bits(e), hv_bits(b), "{name} must restore exact bits");
        }
    }
}

/// The fused `encode_both` must agree bit-for-bit with a separate
/// encode-then-binarize pass.
#[test]
fn fused_encode_both_matches_encode_then_binarize() {
    let xs = rows(7, 4);
    let encoders: Vec<(&str, Box<dyn Encoder>)> = vec![
        ("nonlinear", Box::new(NonlinearEncoder::new(4, 193, 9))),
        ("rff", Box::new(RffEncoder::new(4, 193, 0.7, 9))),
        ("projection", Box::new(ProjectionEncoder::new(4, 193, 9))),
    ];
    for (name, enc) in &encoders {
        for x in &xs {
            let (real, binary) = enc.encode_both(x);
            let want = enc.encode(x);
            assert_eq!(hv_bits(&real), hv_bits(&want), "{name} real part");
            assert_eq!(binary, want.binarize(), "{name} binary part");
        }
    }
}

/// The zero-allocation scratch API must be bit-identical to the plain
/// `predict_batch` for every quantisation combination, with the scratch
/// reused across calls and thread counts.
#[test]
fn predict_batch_with_scratch_is_bit_identical_in_every_mode() {
    let xs = rows(40, 4);
    let ys: Vec<f32> = xs.iter().map(|x| x[0] + 2.0 * x[1] - 0.5 * x[3]).collect();
    let mut scratch = PredictScratch::default();
    for cluster in [
        ClusterMode::Integer,
        ClusterMode::FrameworkBinary,
        ClusterMode::NaiveBinary,
    ] {
        for pred in [
            PredictionMode::Full,
            PredictionMode::BinaryQuery,
            PredictionMode::BinaryModel,
            PredictionMode::BinaryBoth,
        ] {
            let cfg = RegHdConfig::builder()
                .dim(256)
                .models(2)
                .max_epochs(3)
                .min_epochs(1)
                .seed(5)
                .cluster_mode(cluster)
                .prediction_mode(pred)
                .build();
            let mut m = RegHdRegressor::new(cfg, Box::new(NonlinearEncoder::new(4, 256, 5)));
            m.fit(&xs, &ys);
            let want = m.predict_batch(&xs);
            for threads in [1usize, 2, 4] {
                m.set_threads(threads);
                assert_eq!(
                    bits(&m.predict_batch_with(&xs, &mut scratch)),
                    bits(&want),
                    "{cluster:?}/{pred:?} threads={threads}"
                );
            }
            m.set_threads(1);
            // Degraded (binary-query) replies go through the same engine.
            let deg = m.predict_batch_degraded(&xs);
            assert_eq!(deg.len(), xs.len());
            assert!(deg.iter().all(|p| p.is_finite()));
        }
    }
}

/// End-to-end: fast trig moves a trained model's predictions only within
/// a small relative envelope of the exact-mode answers.
#[test]
fn fast_trig_predictions_stay_close_end_to_end() {
    let xs = rows(50, 4);
    let ys: Vec<f32> = xs.iter().map(|x| x[0] - x[2]).collect();
    let cfg = RegHdConfig::builder()
        .dim(512)
        .models(2)
        .max_epochs(4)
        .min_epochs(1)
        .seed(13)
        .build();
    let mut m = RegHdRegressor::new(cfg, Box::new(NonlinearEncoder::new(4, 512, 13)));
    m.fit(&xs, &ys);
    let exact = m.predict_batch(&xs);
    m.set_trig_mode(TrigMode::Fast);
    assert_eq!(m.trig_mode(), TrigMode::Fast);
    let fast = m.predict_batch(&xs);
    for (e, f) in exact.iter().zip(&fast) {
        assert!(f.is_finite());
        assert!(
            (e - f).abs() <= 0.02 * (1.0 + e.abs()),
            "exact={e} fast={f}"
        );
    }
    m.set_trig_mode(TrigMode::Exact);
    assert_eq!(bits(&m.predict_batch(&xs)), bits(&exact));
}
