//! Failure-injection and degenerate-input integration tests — the edge
//! cases DESIGN.md §7 commits to: tiny datasets, constant features or
//! targets, extreme magnitudes, and adversarial shapes.

use reghd_repro::prelude::*;

fn reghd(features: usize, seed: u64) -> RegHdRegressor {
    let cfg = RegHdConfig::builder()
        .dim(256)
        .models(2)
        .max_epochs(5)
        .min_epochs(1)
        .seed(seed)
        .build();
    RegHdRegressor::new(cfg, Box::new(NonlinearEncoder::new(features, 256, seed)))
}

#[test]
fn single_sample_fit_is_usable() {
    let mut m = reghd(2, 1);
    m.fit(&[vec![0.5, -0.5]], &[3.0]);
    let p = m.predict_one(&[0.5, -0.5]);
    assert!(p.is_finite());
    // With one sample the model should at least move toward the target.
    assert!((p - 3.0).abs() < 3.0, "p = {p}");
}

#[test]
fn two_identical_samples_do_not_nan() {
    // Mean-centring two identical encodings gives all-zero vectors; the
    // normalisation guard must keep everything finite.
    let mut m = reghd(2, 2);
    m.fit(&vec![vec![1.0, 1.0]; 2], &[5.0, 5.0]);
    assert!(m.predict_one(&[1.0, 1.0]).is_finite());
}

#[test]
fn constant_features_varying_targets() {
    // Nothing to learn from x: the model should fall back to ~the mean.
    let mut m = reghd(2, 3);
    let xs = vec![vec![2.0, 2.0]; 40];
    let ys: Vec<f32> = (0..40).map(|i| (i % 5) as f32).collect();
    m.fit(&xs, &ys);
    let p = m.predict_one(&[2.0, 2.0]);
    let mean = ys.iter().sum::<f32>() / 40.0;
    assert!((p - mean).abs() < 1.5, "p = {p}, mean = {mean}");
}

#[test]
fn constant_targets_are_learned_exactly() {
    // Needs enough epochs for the slow intercept channel to absorb the
    // offset (its learning rate is α/10).
    let cfg = RegHdConfig::builder()
        .dim(256)
        .models(2)
        .max_epochs(25)
        .seed(4)
        .build();
    let mut m = RegHdRegressor::new(cfg, Box::new(NonlinearEncoder::new(2, 256, 4)));
    let xs: Vec<Vec<f32>> = (0..30).map(|i| vec![i as f32 / 15.0, 0.0]).collect();
    m.fit(&xs, &[7.0; 30]);
    for x in xs.iter().step_by(7) {
        assert!((m.predict_one(x) - 7.0).abs() < 1.0);
    }
}

#[test]
fn extreme_feature_magnitudes_stay_finite() {
    // Unstandardised gigantic features: the trig encoder is bounded, so
    // nothing overflows.
    let mut m = reghd(2, 5);
    let xs = vec![
        vec![1e20f32, -1e20],
        vec![1e19, 1e20],
        vec![-1e20, -1e19],
        vec![1e18, -1e18],
    ];
    let ys = vec![1.0f32, 2.0, 3.0, 4.0];
    m.fit(&xs, &ys);
    assert!(m.predict_one(&xs[0]).is_finite());
}

#[test]
fn extreme_target_magnitudes_stay_finite() {
    let mut m = reghd(1, 6);
    let xs: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32 / 10.0 - 1.0]).collect();
    let ys: Vec<f32> = xs.iter().map(|x| 1e8 * x[0]).collect();
    let report = m.fit(&xs, &ys);
    assert!(report.train_mse_history.iter().all(|v| v.is_finite()));
    assert!(m.predict_one(&[0.5]).is_finite());
}

#[test]
fn more_models_than_samples_is_legal() {
    let mut m = {
        let cfg = RegHdConfig::builder()
            .dim(128)
            .models(16)
            .max_epochs(3)
            .min_epochs(1)
            .build();
        RegHdRegressor::new(cfg, Box::new(NonlinearEncoder::new(1, 128, 7)))
    };
    m.fit(&[vec![0.0], vec![1.0], vec![2.0]], &[0.0, 1.0, 2.0]);
    assert!(m.predict_one(&[1.5]).is_finite());
}

#[test]
fn wide_data_more_features_than_samples() {
    let features = 50usize;
    let mut m = reghd(features, 8);
    let xs: Vec<Vec<f32>> = (0..5)
        .map(|i| (0..features).map(|j| ((i * j) % 7) as f32 / 7.0).collect())
        .collect();
    let ys = vec![1.0f32, -1.0, 0.5, -0.5, 0.0];
    m.fit(&xs, &ys);
    for (x, &y) in xs.iter().zip(&ys) {
        let p = m.predict_one(x);
        assert!(p.is_finite());
        // Over-parameterised regime: should interpolate the 5 points well.
        assert!((p - y).abs() < 1.0, "p = {p}, y = {y}");
    }
}

#[test]
fn baselines_survive_degenerate_inputs() {
    use reghd_repro::baselines::tree::TreeConfig;
    let xs = vec![vec![1.0f32, 2.0]; 6];
    let ys = vec![3.0f32; 6];
    let mut models: Vec<Box<dyn Regressor>> = vec![
        Box::new(MeanRegressor::new()),
        Box::new(LinearRegressor::new(1e-4)),
        Box::new(TreeRegressor::new(TreeConfig::default())),
        Box::new(KnnRegressor::new(
            3,
            reghd_repro::baselines::knn::KnnWeighting::Uniform,
        )),
    ];
    for m in &mut models {
        m.fit(&xs, &ys);
        let p = m.predict_one(&[1.0, 2.0]);
        assert!(
            (p - 3.0).abs() < 1e-3,
            "{} failed constant-data fit: {p}",
            m.name()
        );
    }
}

#[test]
fn quantized_modes_survive_tiny_data() {
    for pred in PredictionMode::ALL {
        let cfg = RegHdConfig::builder()
            .dim(128)
            .models(2)
            .max_epochs(3)
            .min_epochs(1)
            .prediction_mode(pred)
            .cluster_mode(ClusterMode::FrameworkBinary)
            .build();
        let mut m = RegHdRegressor::new(cfg, Box::new(NonlinearEncoder::new(1, 128, 9)));
        m.fit(&[vec![0.1], vec![0.9]], &[1.0, -1.0]);
        assert!(m.predict_one(&[0.5]).is_finite(), "{pred:?}");
    }
}

#[test]
fn online_handles_constant_stream() {
    let cfg = RegHdConfig::builder().dim(128).models(2).build();
    let mut m = OnlineRegHd::new(cfg, Box::new(NonlinearEncoder::new(1, 128, 10)));
    for _ in 0..200 {
        let e = m.update(&[1.0], 4.0);
        assert!(e.is_finite());
    }
    assert!((m.predict_one(&[1.0]) - 4.0).abs() < 0.5);
}

#[test]
fn encoder_zero_input_is_handled_end_to_end() {
    // x = 0 encodes to the zero hypervector (sin(0) = 0); centring +
    // intercept must still give a usable prediction.
    let mut m = reghd(1, 11);
    let xs: Vec<Vec<f32>> = (-10..=10).map(|i| vec![i as f32 / 10.0]).collect();
    let ys: Vec<f32> = xs.iter().map(|x| x[0] + 1.0).collect();
    m.fit(&xs, &ys);
    let p = m.predict_one(&[0.0]);
    assert!(p.is_finite());
    assert!((p - 1.0).abs() < 0.5, "p = {p}");
}
