//! Integration tests for the §3 quantisation framework across crates:
//! every cluster-mode × prediction-mode combination must train, stay
//! finite, and land in a sane quality band.

use reghd_repro::prelude::*;

fn task() -> (Vec<Vec<f32>>, Vec<f32>) {
    // Smooth nonlinear 3-feature task with mild noise.
    let mut rng = reghd_repro::hdc::rng::HdRng::seed_from(21);
    let xs: Vec<Vec<f32>> = (0..400)
        .map(|_| (0..3).map(|_| rng.next_gaussian() as f32).collect())
        .collect();
    let ys = xs
        .iter()
        .map(|x: &Vec<f32>| {
            x[0] - 0.5 * x[1] + (1.5 * x[2]).sin() + 0.05 * rng.next_gaussian() as f32
        })
        .collect();
    (xs, ys)
}

fn fit_mse(cluster: ClusterMode, pred: PredictionMode, seed: u64) -> f32 {
    let (xs, ys) = task();
    let cfg = RegHdConfig::builder()
        .dim(1024)
        .models(4)
        .max_epochs(20)
        .cluster_mode(cluster)
        .prediction_mode(pred)
        .seed(seed)
        .build();
    let enc = NonlinearEncoder::new(3, 1024, seed);
    let mut m = RegHdRegressor::new(cfg, Box::new(enc));
    m.fit(&xs, &ys);
    datasets::metrics::mse(&m.predict(&xs), &ys)
}

#[test]
fn every_mode_combination_trains_and_stays_finite() {
    for cluster in [
        ClusterMode::Integer,
        ClusterMode::FrameworkBinary,
        ClusterMode::NaiveBinary,
    ] {
        for pred in PredictionMode::ALL {
            let mse = fit_mse(cluster, pred, 1);
            assert!(
                mse.is_finite(),
                "{cluster:?} × {pred:?} produced non-finite MSE"
            );
        }
    }
}

#[test]
fn variance_floor_holds_for_all_quantised_modes() {
    let (_, ys) = task();
    let mean: f32 = ys.iter().sum::<f32>() / ys.len() as f32;
    let var: f32 = ys.iter().map(|&y| (y - mean) * (y - mean)).sum::<f32>() / ys.len() as f32;
    for pred in PredictionMode::ALL {
        let mse = fit_mse(ClusterMode::FrameworkBinary, pred, 2);
        assert!(
            mse < var,
            "{pred:?}: quantised training failed to beat the variance floor ({mse} vs {var})"
        );
    }
}

#[test]
fn binary_query_is_close_to_full_precision() {
    // The paper's preferred quantised configuration loses only ~1.5%.
    // Allow a generous band here, but it must be *close*.
    let full = fit_mse(ClusterMode::FrameworkBinary, PredictionMode::Full, 3);
    let bq = fit_mse(ClusterMode::FrameworkBinary, PredictionMode::BinaryQuery, 3);
    assert!(
        bq < full * 1.6 + 0.01,
        "binary-query mse {bq} strayed too far from full {full}"
    );
}

#[test]
fn quantize_batch_controls_feedback_granularity() {
    // With a whole-epoch quantize_batch the binary-model feedback loop goes
    // stale and quality degrades versus a per-64-samples refresh.
    let (xs, ys) = task();
    let run = |batch: usize| {
        let cfg = RegHdConfig::builder()
            .dim(1024)
            .models(4)
            .max_epochs(15)
            .prediction_mode(PredictionMode::BinaryModel)
            .quantize_batch(batch)
            .seed(4)
            .build();
        let enc = NonlinearEncoder::new(3, 1024, 4);
        let mut m = RegHdRegressor::new(cfg, Box::new(enc));
        m.fit(&xs, &ys);
        datasets::metrics::mse(&m.predict(&xs), &ys)
    };
    let fine = run(64);
    let stale = run(100_000); // effectively per-epoch
    assert!(
        fine < stale,
        "per-batch refresh ({fine}) must beat stale per-epoch refresh ({stale})"
    );
}

#[test]
fn binarize_then_rebinarize_is_stable() {
    // Quantisation idempotence at the bank level, through the public API:
    // predicting twice gives identical results (no hidden mutable state in
    // the prediction path).
    let (xs, ys) = task();
    let cfg = RegHdConfig::builder()
        .dim(512)
        .models(4)
        .max_epochs(8)
        .prediction_mode(PredictionMode::BinaryBoth)
        .seed(5)
        .build();
    let enc = NonlinearEncoder::new(3, 512, 5);
    let mut m = RegHdRegressor::new(cfg, Box::new(enc));
    m.fit(&xs, &ys);
    let p1 = m.predict_one(&xs[0]);
    let p2 = m.predict_one(&xs[0]);
    assert_eq!(p1, p2);
}

#[test]
fn hamming_and_cosine_search_agree_on_sign_patterns() {
    // Cross-crate consistency: for ±1 data the quantised cluster search
    // must rank candidates exactly as the cosine search does.
    use reghd_repro::hdc::rng::HdRng;
    use reghd_repro::hdc::similarity::{cosine, hamming_similarity};
    let mut rng = HdRng::seed_from(6);
    let dim = 2048;
    let q = BipolarHv::random(dim, &mut rng);
    let candidates: Vec<BipolarHv> = (0..10).map(|_| BipolarHv::random(dim, &mut rng)).collect();
    let cos_rank: Vec<usize> = {
        let mut idx: Vec<usize> = (0..10).collect();
        idx.sort_by(|&a, &b| {
            cosine(&candidates[b].to_real(), &q.to_real())
                .total_cmp(&cosine(&candidates[a].to_real(), &q.to_real()))
        });
        idx
    };
    let ham_rank: Vec<usize> = {
        let mut idx: Vec<usize> = (0..10).collect();
        idx.sort_by(|&a, &b| {
            hamming_similarity(&candidates[b].to_binary(), &q.to_binary()).total_cmp(
                &hamming_similarity(&candidates[a].to_binary(), &q.to_binary()),
            )
        });
        idx
    };
    assert_eq!(cos_rank, ham_rank);
}

/// Property: the bit-packed popcount tier is *exactly* the unpacked §3.2
/// computation, across every `ClusterMode` × `PredictionMode` combination.
///
/// For a handful of rows this rebuilds the whole binary-tier pipeline from
/// public pieces with naive, unpacked arithmetic — per-bit sign threshold
/// instead of the movemask pack, per-bit Hamming counts instead of XOR +
/// popcount, an i64 ±1 signed dot instead of `D − 2·ham` — and demands the
/// served prediction match bit-for-bit. A prime dimension keeps the partial
/// final `u64` word of every packed buffer in play.
#[test]
fn packed_popcount_tier_matches_unpacked_computation() {
    use reghd_repro::hdc::{simd, similarity};
    let (xs, ys) = task();
    let dim = 257;
    for cluster in [
        ClusterMode::Integer,
        ClusterMode::FrameworkBinary,
        ClusterMode::NaiveBinary,
    ] {
        for pred in PredictionMode::ALL {
            let cfg = RegHdConfig::builder()
                .dim(dim)
                .models(4)
                .max_epochs(6)
                .cluster_mode(cluster)
                .prediction_mode(pred)
                .seed(11)
                .build();
            let enc = NonlinearEncoder::new(3, dim, 11);
            let mut m = RegHdRegressor::new(cfg, Box::new(enc));
            m.fit(&xs, &ys);

            let rows = &xs[..8];
            let got = m.predict_batch_binary(rows);
            for (i, x) in rows.iter().enumerate() {
                // Encode + centre exactly like the tier does.
                let mut vals = vec![0.0f32; dim];
                if !m.encoder().encode_quantized_into(x, &mut vals) {
                    vals.copy_from_slice(m.encoder().encode(x).as_slice());
                }
                if let Some(center) = m.center() {
                    for (v, &c) in vals.iter_mut().zip(center.as_slice()) {
                        *v -= c;
                    }
                }

                // Pack two ways: naive per-bit thresholding vs the
                // SIMD-dispatched sign pack (seeded with garbage to prove
                // the pack overwrites every word).
                let naive = BinaryHv::from_bits(dim, vals.iter().map(|&v| v > 0.0));
                let mut words = vec![u64::MAX; dim.div_ceil(64)];
                simd::pack_signs(&vals, &mut words);
                assert_eq!(
                    words.as_slice(),
                    naive.as_words(),
                    "{cluster:?} x {pred:?} row {i}: packed words diverge from per-bit pack"
                );

                // Amplitude statistic (same fixed-order fused sums the tier
                // uses; their agreement with a naive sum is covered by the
                // hdc unit tests).
                let (sum_abs, sum_sq) = simd::abs_sq_sums(&vals);
                let mut s_amp = (sum_abs / dim as f64) as f32;
                if m.config().normalize_encodings {
                    let norm = sum_sq.sqrt();
                    if norm > 0.0 {
                        s_amp = ((sum_abs / dim as f64) / norm) as f32;
                    }
                }

                // Cluster confidences from naive per-bit Hamming counts.
                let sims: Vec<f32> = m
                    .clusters()
                    .binary_clusters()
                    .iter()
                    .map(|c| {
                        let ham = (0..dim).filter(|&d| naive.get(d) != c.get(d)).count();
                        assert_eq!(
                            ham,
                            similarity::hamming_distance(&naive, c),
                            "{cluster:?} x {pred:?} row {i}: popcount Hamming diverges"
                        );
                        1.0 - 2.0 * ham as f32 / dim as f32
                    })
                    .collect();
                let mut conf = Vec::new();
                similarity::softmax_into(&sims, m.config().softmax_beta, &mut conf);

                // §3.2 scores from the unpacked ±1 views: an i64 signed dot
                // must equal D − 2·ham of the packed copies, then one
                // multiply by the paired amplitudes.
                let scores: Vec<f32> = m
                    .models()
                    .integer_models()
                    .iter()
                    .map(|mi| {
                        let a = (mi.as_slice().iter().map(|&v| v.abs() as f64).sum::<f64>()
                            / dim as f64) as f32;
                        let dot: i64 = vals
                            .iter()
                            .zip(mi.as_slice())
                            .map(|(&q, &w)| {
                                let qs: i64 = if q > 0.0 { 1 } else { -1 };
                                let ws: i64 = if w > 0.0 { 1 } else { -1 };
                                qs * ws
                            })
                            .sum();
                        let ham = similarity::hamming_distance(&mi.binarize(), &naive) as i64;
                        assert_eq!(
                            dot,
                            dim as i64 - 2 * ham,
                            "{cluster:?} x {pred:?} row {i}: ±1 dot != D − 2·popcount"
                        );
                        a * s_amp * dot as f32
                    })
                    .collect();

                let want: f32 =
                    conf.iter().zip(&scores).map(|(&c, &s)| c * s).sum::<f32>() + m.intercept();
                assert_eq!(
                    got[i].to_bits(),
                    want.to_bits(),
                    "{cluster:?} x {pred:?} row {i}: tier {} != unpacked {}",
                    got[i],
                    want
                );
            }
        }
    }
}
