//! Integration tests for the §3 quantisation framework across crates:
//! every cluster-mode × prediction-mode combination must train, stay
//! finite, and land in a sane quality band.

use reghd_repro::prelude::*;

fn task() -> (Vec<Vec<f32>>, Vec<f32>) {
    // Smooth nonlinear 3-feature task with mild noise.
    let mut rng = reghd_repro::hdc::rng::HdRng::seed_from(21);
    let xs: Vec<Vec<f32>> = (0..400)
        .map(|_| (0..3).map(|_| rng.next_gaussian() as f32).collect())
        .collect();
    let ys = xs
        .iter()
        .map(|x: &Vec<f32>| {
            x[0] - 0.5 * x[1] + (1.5 * x[2]).sin() + 0.05 * rng.next_gaussian() as f32
        })
        .collect();
    (xs, ys)
}

fn fit_mse(cluster: ClusterMode, pred: PredictionMode, seed: u64) -> f32 {
    let (xs, ys) = task();
    let cfg = RegHdConfig::builder()
        .dim(1024)
        .models(4)
        .max_epochs(20)
        .cluster_mode(cluster)
        .prediction_mode(pred)
        .seed(seed)
        .build();
    let enc = NonlinearEncoder::new(3, 1024, seed);
    let mut m = RegHdRegressor::new(cfg, Box::new(enc));
    m.fit(&xs, &ys);
    datasets::metrics::mse(&m.predict(&xs), &ys)
}

#[test]
fn every_mode_combination_trains_and_stays_finite() {
    for cluster in [
        ClusterMode::Integer,
        ClusterMode::FrameworkBinary,
        ClusterMode::NaiveBinary,
    ] {
        for pred in PredictionMode::ALL {
            let mse = fit_mse(cluster, pred, 1);
            assert!(
                mse.is_finite(),
                "{cluster:?} × {pred:?} produced non-finite MSE"
            );
        }
    }
}

#[test]
fn variance_floor_holds_for_all_quantised_modes() {
    let (_, ys) = task();
    let mean: f32 = ys.iter().sum::<f32>() / ys.len() as f32;
    let var: f32 = ys.iter().map(|&y| (y - mean) * (y - mean)).sum::<f32>() / ys.len() as f32;
    for pred in PredictionMode::ALL {
        let mse = fit_mse(ClusterMode::FrameworkBinary, pred, 2);
        assert!(
            mse < var,
            "{pred:?}: quantised training failed to beat the variance floor ({mse} vs {var})"
        );
    }
}

#[test]
fn binary_query_is_close_to_full_precision() {
    // The paper's preferred quantised configuration loses only ~1.5%.
    // Allow a generous band here, but it must be *close*.
    let full = fit_mse(ClusterMode::FrameworkBinary, PredictionMode::Full, 3);
    let bq = fit_mse(ClusterMode::FrameworkBinary, PredictionMode::BinaryQuery, 3);
    assert!(
        bq < full * 1.6 + 0.01,
        "binary-query mse {bq} strayed too far from full {full}"
    );
}

#[test]
fn quantize_batch_controls_feedback_granularity() {
    // With a whole-epoch quantize_batch the binary-model feedback loop goes
    // stale and quality degrades versus a per-64-samples refresh.
    let (xs, ys) = task();
    let run = |batch: usize| {
        let cfg = RegHdConfig::builder()
            .dim(1024)
            .models(4)
            .max_epochs(15)
            .prediction_mode(PredictionMode::BinaryModel)
            .quantize_batch(batch)
            .seed(4)
            .build();
        let enc = NonlinearEncoder::new(3, 1024, 4);
        let mut m = RegHdRegressor::new(cfg, Box::new(enc));
        m.fit(&xs, &ys);
        datasets::metrics::mse(&m.predict(&xs), &ys)
    };
    let fine = run(64);
    let stale = run(100_000); // effectively per-epoch
    assert!(
        fine < stale,
        "per-batch refresh ({fine}) must beat stale per-epoch refresh ({stale})"
    );
}

#[test]
fn binarize_then_rebinarize_is_stable() {
    // Quantisation idempotence at the bank level, through the public API:
    // predicting twice gives identical results (no hidden mutable state in
    // the prediction path).
    let (xs, ys) = task();
    let cfg = RegHdConfig::builder()
        .dim(512)
        .models(4)
        .max_epochs(8)
        .prediction_mode(PredictionMode::BinaryBoth)
        .seed(5)
        .build();
    let enc = NonlinearEncoder::new(3, 512, 5);
    let mut m = RegHdRegressor::new(cfg, Box::new(enc));
    m.fit(&xs, &ys);
    let p1 = m.predict_one(&xs[0]);
    let p2 = m.predict_one(&xs[0]);
    assert_eq!(p1, p2);
}

#[test]
fn hamming_and_cosine_search_agree_on_sign_patterns() {
    // Cross-crate consistency: for ±1 data the quantised cluster search
    // must rank candidates exactly as the cosine search does.
    use reghd_repro::hdc::rng::HdRng;
    use reghd_repro::hdc::similarity::{cosine, hamming_similarity};
    let mut rng = HdRng::seed_from(6);
    let dim = 2048;
    let q = BipolarHv::random(dim, &mut rng);
    let candidates: Vec<BipolarHv> = (0..10).map(|_| BipolarHv::random(dim, &mut rng)).collect();
    let cos_rank: Vec<usize> = {
        let mut idx: Vec<usize> = (0..10).collect();
        idx.sort_by(|&a, &b| {
            cosine(&candidates[b].to_real(), &q.to_real())
                .total_cmp(&cosine(&candidates[a].to_real(), &q.to_real()))
        });
        idx
    };
    let ham_rank: Vec<usize> = {
        let mut idx: Vec<usize> = (0..10).collect();
        idx.sort_by(|&a, &b| {
            hamming_similarity(&candidates[b].to_binary(), &q.to_binary()).total_cmp(
                &hamming_similarity(&candidates[a].to_binary(), &q.to_binary()),
            )
        });
        idx
    };
    assert_eq!(cos_rank, ham_rank);
}
