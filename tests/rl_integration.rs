//! Integration test for the RL extension through the umbrella crate: the
//! HD Q-learning agent must beat a random policy on LineWorld, and its
//! value functions must reflect the environment's geometry.

use reghd_repro::hdc::rng::HdRng;
use reghd_repro::prelude::*;

fn random_policy_reward(env: &mut LineWorld, episodes: usize, seed: u64) -> f32 {
    let mut rng = HdRng::seed_from(seed);
    let mut total = 0.0f64;
    for _ in 0..episodes {
        env.reset();
        loop {
            let s = env.step(rng.next_below(3));
            total += s.reward as f64;
            if s.done {
                break;
            }
        }
    }
    (total / episodes as f64) as f32
}

#[test]
fn hd_agent_beats_random_policy() {
    let mut env = LineWorld::new(40, 0.35);
    let mut agent = HdQAgent::new(
        env.state_dim(),
        env.num_actions(),
        QConfig {
            dim: 1024,
            episodes_to_min_epsilon: 80,
            seed: 13,
            ..QConfig::default()
        },
    );
    for _ in 0..120 {
        agent.run_episode(&mut env);
    }
    let trained = agent.evaluate(&mut env, 10);
    let random = random_policy_reward(&mut env, 10, 99);
    assert!(
        trained > random + 2.0,
        "trained {trained} vs random {random}"
    );
}

#[test]
fn learned_policy_points_toward_the_target() {
    let mut env = LineWorld::new(40, 0.5);
    let mut agent = HdQAgent::new(
        env.state_dim(),
        env.num_actions(),
        QConfig {
            dim: 1024,
            episodes_to_min_epsilon: 80,
            seed: 17,
            ..QConfig::default()
        },
    );
    for _ in 0..150 {
        agent.run_episode(&mut env);
    }
    // Far left of the target → the greedy action should be "right" (2);
    // far right → "left" (0).
    assert_eq!(agent.greedy_action(&[-0.8]), 2, "left of target");
    assert_eq!(agent.greedy_action(&[0.95]), 0, "right of target");
}

#[test]
fn q_values_are_deterministic_and_finite() {
    let agent = HdQAgent::new(
        2,
        3,
        QConfig {
            dim: 512,
            ..QConfig::default()
        },
    );
    let q1 = agent.q_values(&[0.1, -0.4]);
    let q2 = agent.q_values(&[0.1, -0.4]);
    assert_eq!(q1, q2);
    assert!(q1.iter().all(|v| v.is_finite()));
}

#[test]
fn mountain_car_dynamics_are_the_classic_ones() {
    // The energy-pumping policy (push along velocity) must reach the flag
    // while constant full-throttle must not — the environment's defining
    // pair of properties, checked through the umbrella crate.
    let mut env = MountainCar::new(300);
    let mut s = env.reset();
    loop {
        let a = if s[1] >= 0.0 { 2 } else { 0 };
        let out = env.step(a);
        s = out.state;
        if out.done {
            break;
        }
    }
    assert!(env.at_goal());

    let mut env2 = MountainCar::new(300);
    env2.reset();
    loop {
        if env2.step(2).done {
            break;
        }
    }
    assert!(!env2.at_goal());
}
