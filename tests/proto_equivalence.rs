//! Line-protocol vs RGNP equivalence: the two front-ends share one
//! registry and must answer bit-identically for every quantisation mode
//! (ClusterMode × PredictionMode), on both the full-precision and the
//! degraded tier. The line protocol renders f32 through `Display`,
//! which is shortest-roundtrip in Rust, so parsing the text back gives
//! the exact bits the server computed.

#![cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]

use reghd_repro::prelude::*;
use reghd_repro::reghd_net::client::PredictReply;
use reghd_repro::reghd_net::{serve_rgnp, NetConfig, RgnpClient};
use reghd_repro::reghd_serve::bundle::ModelBundle;
use reghd_repro::reghd_serve::registry::ModelRegistry;
use reghd_repro::reghd_serve::{serve, ServerConfig};
use reghd_repro::{encoding::EncoderSpec, reghd::RegHdConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

fn trained(cm: ClusterMode, pm: PredictionMode, seed: u64) -> ModelBundle {
    let rows: Vec<Vec<f32>> = (0..60)
        .map(|i| vec![i as f32 / 30.0, (i % 5) as f32])
        .collect();
    let ys: Vec<f32> = rows.iter().map(|r| 2.0 * r[0] - r[1]).collect();
    let spec = EncoderSpec::Nonlinear {
        input_dim: 2,
        dim: 128,
        seed: seed ^ 0xC11,
    };
    let cfg = RegHdConfig::builder()
        .dim(128)
        .models(2)
        .seed(seed)
        .max_epochs(4)
        .cluster_mode(cm)
        .prediction_mode(pm)
        .build();
    let mut model = RegHdRegressor::new(cfg, spec.build());
    model.fit(&rows, &ys);
    ModelBundle::from_trained(model, vec![0.0; 2], vec![1.0; 2], 0.0, 1.0, &rows).unwrap()
}

fn line_roundtrip(stream: &mut TcpStream, req: &str) -> String {
    writeln!(stream, "{req}").unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    line.trim_end().to_string()
}

#[test]
fn line_and_rgnp_predict_bit_identically_across_all_modes() {
    let cluster_modes = [
        ClusterMode::Integer,
        ClusterMode::FrameworkBinary,
        ClusterMode::NaiveBinary,
    ];
    let prediction_modes = [
        PredictionMode::Full,
        PredictionMode::BinaryQuery,
        PredictionMode::BinaryModel,
        PredictionMode::BinaryBoth,
    ];
    let registry = Arc::new(ModelRegistry::new());
    let mut names = Vec::new();
    let mut seed = 40u64;
    for cm in cluster_modes {
        for pm in prediction_modes {
            let name = format!("m-{cm:?}-{pm:?}").to_lowercase();
            let bundle = trained(cm, pm, seed);
            registry
                .load_bytes(&name, &bundle.to_bytes().unwrap())
                .unwrap();
            names.push(name);
            seed += 1;
        }
    }

    let line_handle = serve(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            read_timeout: Duration::from_secs(5),
            ..ServerConfig::default()
        },
        registry.clone(),
    )
    .unwrap();
    let rgnp_handle = serve_rgnp(
        NetConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            pollers: 2,
            ..NetConfig::default()
        },
        registry.clone(),
    )
    .unwrap();

    let mut line = TcpStream::connect(line_handle.local_addr()).unwrap();
    let mut rgnp = RgnpClient::connect(&rgnp_handle.local_addr().to_string()).unwrap();
    rgnp.set_timeout(Some(Duration::from_secs(10))).unwrap();

    let probe_rows: [[f32; 2]; 3] = [[0.25, 1.0], [1.5, 3.0], [-0.5, 4.0]];
    for name in &names {
        // Full-precision tier.
        for row in &probe_rows {
            let text = line_roundtrip(&mut line, &format!("predict {name} {},{}", row[0], row[1]));
            let y_line: f32 = text
                .strip_prefix("ok ")
                .unwrap_or_else(|| panic!("line reply for {name}: {text}"))
                .parse()
                .unwrap();
            match rgnp.predict(name, row).unwrap() {
                PredictReply::Ok(y) => assert_eq!(
                    y.to_bits(),
                    y_line.to_bits(),
                    "{name} row {row:?}: rgnp {y} vs line {y_line}"
                ),
                other => panic!("{name}: expected ok, got {other:?}"),
            }
        }
        // Degraded tier: flag the model corrupt so both front-ends take
        // their inline §3.2 fallback, then unflag.
        let served = registry.get(name).unwrap();
        served.corrupt.store(true, Ordering::Relaxed);
        for row in &probe_rows {
            let text = line_roundtrip(&mut line, &format!("predict {name} {},{}", row[0], row[1]));
            let y_line: f32 = text
                .strip_prefix("degraded ")
                .unwrap_or_else(|| panic!("line degraded reply for {name}: {text}"))
                .parse()
                .unwrap();
            match rgnp.predict(name, row).unwrap() {
                PredictReply::Degraded(y) => assert_eq!(
                    y.to_bits(),
                    y_line.to_bits(),
                    "{name} degraded row {row:?}: rgnp {y} vs line {y_line}"
                ),
                other => panic!("{name}: expected degraded, got {other:?}"),
            }
        }
        served.corrupt.store(false, Ordering::Relaxed);
    }

    // The inventory is byte-identical too: RGNP `list` is the line
    // protocol's `list` lines minus the trailing `ok` terminator
    // (frames self-delimit).
    let mut line_list = Vec::new();
    writeln!(line, "list").unwrap();
    let mut reader = BufReader::new(line.try_clone().unwrap());
    loop {
        let mut l = String::new();
        reader.read_line(&mut l).unwrap();
        let l = l.trim_end().to_string();
        if l == "ok" {
            break;
        }
        line_list.push(l);
    }
    assert_eq!(rgnp.list().unwrap(), line_list.join("\n"));

    rgnp_handle.shutdown();
    line_handle.shutdown();
}
