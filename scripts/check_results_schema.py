#!/usr/bin/env python3
"""Schema floor for the machine-readable bench summaries.

Every ``results/*.json`` must be valid JSON and carry a top-level integer
``"cores"`` key plus a top-level ``"simd"`` key naming the dispatch level
the numbers were measured at (``avx2``, ``neon``, or ``scalar``) — without
them, throughput/latency numbers are meaningless across machines and can't
be compared between CI runs. Exits non-zero on the first violation so CI
can gate on it.
"""

import glob
import json
import os
import sys

ROOT = os.path.join(os.path.dirname(__file__), "..")

SIMD_LEVELS = {"avx2", "neon", "scalar"}


def main() -> int:
    paths = sorted(glob.glob(os.path.join(ROOT, "results", "*.json")))
    if not paths:
        print("no results/*.json files found", file=sys.stderr)
        return 1
    failures = 0
    for path in paths:
        name = os.path.relpath(path, ROOT)
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, ValueError) as e:
            print(f"FAIL {name}: not valid JSON ({e})", file=sys.stderr)
            failures += 1
            continue
        cores = doc.get("cores") if isinstance(doc, dict) else None
        simd = doc.get("simd") if isinstance(doc, dict) else None
        bad = []
        if not isinstance(cores, int) or cores < 1:
            bad.append(f'missing top-level "cores" (got {cores!r})')
        if simd not in SIMD_LEVELS:
            bad.append(
                f'missing top-level "simd" in {sorted(SIMD_LEVELS)} (got {simd!r})'
            )
        if bad:
            print(f"FAIL {name}: {'; '.join(bad)}", file=sys.stderr)
            failures += 1
        else:
            print(f"ok   {name}: cores={cores} simd={simd}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
