//! # reghd-repro — reproduction of RegHD (DAC 2021)
//!
//! Umbrella crate tying the workspace together. It re-exports every
//! sub-crate so examples and integration tests can use one dependency:
//!
//! * [`hdc`] — hyperdimensional computing substrate (hypervectors,
//!   similarity metrics, bundling, capacity analysis, noise injection).
//! * [`encoding`] — similarity-preserving encoders (paper §2.2).
//! * [`datasets`] — the seven evaluation workloads as synthetic
//!   equivalents, plus metrics and data plumbing.
//! * [`reghd`] — the paper's contribution: single-model (§2.3),
//!   multi-model (§2.4), and quantised (§3) hyperdimensional regression.
//! * [`baselines`] — the Table 1 comparators (DNN, linear, tree, SVR,
//!   Baseline-HD), all from scratch.
//! * [`hwmodel`] — the operation-level hardware cost model that stands in
//!   for the paper's FPGA/RPi measurements.
//! * [`reghd_serve`] — concurrent inference: hot-swappable registry,
//!   micro-batching, TCP front-end, fault tolerance.
//! * [`reghd_net`] — event-driven RGNP front-end: epoll poller pool,
//!   pipelined binary protocol, open-loop load generator (see
//!   `docs/PROTOCOL.md`).
//! * [`reghd_store`] — sharded per-user model store: mmap packfiles with
//!   lazily verified sections, hot LRU, canary-gated delta publication.
//! * [`reghd_train`] — streaming training: prequential pipeline, drift
//!   detection, checkpointing, hot-swap publication.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ```
//! use reghd_repro::prelude::*;
//!
//! let ds = datasets::paper::boston(7);
//! let (train, test) = datasets::split::train_test_split(&ds, 0.2, 7);
//! let cfg = RegHdConfig::builder().dim(1024).models(4).max_epochs(10).build();
//! let enc = NonlinearEncoder::new(ds.num_features(), 1024, 7);
//! let mut model = RegHdRegressor::new(cfg, Box::new(enc));
//! model.fit(&train.features, &train.targets);
//! let mse = datasets::metrics::mse(&model.predict(&test.features), &test.targets);
//! assert!(mse < 2.0 * test.target_variance());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use baselines;
pub use datasets;
pub use encoding;
pub use hdc;
pub use hwmodel;
pub use reghd;
pub use reghd_net;
pub use reghd_serve;
pub use reghd_store;
pub use reghd_train;
pub use rl;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use baselines::{
        BaselineHd, ForestRegressor, GbtRegressor, KnnRegressor, LinearRegressor, MeanRegressor,
        MlpRegressor, SvrRegressor, TreeRegressor,
    };
    pub use datasets::{self, Dataset};
    pub use encoding::{Encoder, IdLevelEncoder, NonlinearEncoder, ProjectionEncoder, RffEncoder};
    pub use hdc::{BinaryHv, BipolarHv, RealHv};
    pub use hwmodel::{DeviceProfile, OpCount};
    pub use reghd::{
        config::{ClusterMode, PredictionMode, UpdateRule},
        FitReport, OnlineRegHd, RegHdConfig, RegHdRegressor, Regressor, SingleHdRegressor,
    };
    pub use rl::{Environment, HdQAgent, LineWorld, MountainCar, QConfig};
}
