//! Support vector regression — the paper's "SVR" comparator.
//!
//! ε-insensitive linear SVR trained by SGD on the primal objective
//!
//! ```text
//! ½λ‖w‖² + (1/n) Σ max(0, |w·x + b − y| − ε)
//! ```
//!
//! optionally over random Fourier features ([`encoding::RffEncoder`]), which
//! approximates an RBF-kernel SVR — the configuration scikit-learn's grid
//! search typically selects on these datasets.

use encoding::{Encoder, RffEncoder};
use hdc::rng::HdRng;
use reghd::{FitReport, Regressor};

/// Feature map used by the SVR.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SvrKernel {
    /// Raw features (linear SVR).
    Linear,
    /// Random-Fourier-feature approximation of an RBF kernel with the given
    /// number of features and bandwidth.
    Rbf {
        /// Number of random Fourier features.
        features: usize,
        /// Kernel length-scale σ.
        bandwidth: f32,
    },
}

/// Hyper-parameters for [`SvrRegressor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvrConfig {
    /// Insensitive-tube half-width ε.
    pub epsilon: f32,
    /// L2 regularisation strength λ.
    pub lambda: f32,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// Number of passes over the data.
    pub epochs: usize,
    /// Kernel / feature map.
    pub kernel: SvrKernel,
    /// Shuffle / feature-map seed.
    pub seed: u64,
}

impl Default for SvrConfig {
    fn default() -> Self {
        Self {
            epsilon: 0.05,
            lambda: 1e-4,
            learning_rate: 0.05,
            epochs: 80,
            kernel: SvrKernel::Rbf {
                features: 512,
                bandwidth: 1.5,
            },
            seed: 0,
        }
    }
}

/// ε-insensitive SVR via primal SGD.
///
/// # Examples
///
/// ```
/// use baselines::{SvrRegressor, svr::{SvrConfig, SvrKernel}};
/// use reghd::Regressor;
///
/// let xs: Vec<Vec<f32>> = (0..50).map(|i| vec![i as f32 / 25.0 - 1.0]).collect();
/// let ys: Vec<f32> = xs.iter().map(|x| 2.0 * x[0]).collect();
/// let config = SvrConfig { kernel: SvrKernel::Linear, ..SvrConfig::default() };
/// let mut m = SvrRegressor::new(1, config);
/// m.fit(&xs, &ys);
/// assert!((m.predict_one(&[0.5]) - 1.0).abs() < 0.15);
/// ```
pub struct SvrRegressor {
    config: SvrConfig,
    input_dim: usize,
    feature_map: Option<RffEncoder>,
    weights: Vec<f32>,
    bias: f32,
}

impl std::fmt::Debug for SvrRegressor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SvrRegressor")
            .field("input_dim", &self.input_dim)
            .field("kernel", &self.config.kernel)
            .finish()
    }
}

impl SvrRegressor {
    /// Creates an untrained SVR for `input_dim` raw features.
    ///
    /// # Panics
    ///
    /// Panics if `input_dim == 0`, `epsilon < 0`, `epochs == 0`, or the RBF
    /// kernel has zero features / non-positive bandwidth.
    pub fn new(input_dim: usize, config: SvrConfig) -> Self {
        assert!(input_dim > 0, "input_dim must be nonzero");
        assert!(config.epsilon >= 0.0, "epsilon must be nonnegative");
        assert!(config.epochs > 0, "epochs must be nonzero");
        let feature_map = match config.kernel {
            SvrKernel::Linear => None,
            SvrKernel::Rbf {
                features,
                bandwidth,
            } => Some(RffEncoder::new(
                input_dim,
                features,
                bandwidth,
                config.seed ^ 0x5F_12,
            )),
        };
        let width = match config.kernel {
            SvrKernel::Linear => input_dim,
            SvrKernel::Rbf { features, .. } => features,
        };
        Self {
            config,
            input_dim,
            feature_map,
            weights: vec![0.0; width],
            bias: 0.0,
        }
    }

    fn mapped(&self, x: &[f32]) -> Vec<f32> {
        match &self.feature_map {
            None => x.to_vec(),
            Some(rff) => {
                // Standard RFF normalisation sqrt(2/M): keeps ‖φ(x)‖ ≈ 1 so
                // the subgradient step size is independent of the feature
                // count.
                let scale = (2.0 / rff.dim() as f32).sqrt();
                let mut phi = rff.encode(x).into_vec();
                for p in &mut phi {
                    *p *= scale;
                }
                phi
            }
        }
    }

    fn raw_predict(&self, phi: &[f32]) -> f32 {
        self.weights
            .iter()
            .zip(phi)
            .map(|(&w, &p)| w * p)
            .sum::<f32>()
            + self.bias
    }
}

impl Regressor for SvrRegressor {
    fn fit(&mut self, features: &[Vec<f32>], targets: &[f32]) -> FitReport {
        assert_eq!(
            features.len(),
            targets.len(),
            "features and targets must have the same length"
        );
        assert!(!features.is_empty(), "cannot fit on empty data");
        assert_eq!(
            features[0].len(),
            self.input_dim,
            "expected {} features, got {}",
            self.input_dim,
            features[0].len()
        );
        self.weights.iter_mut().for_each(|w| *w = 0.0);
        self.bias = 0.0;

        // Precompute the feature map once.
        let mapped: Vec<Vec<f32>> = features.iter().map(|x| self.mapped(x)).collect();

        let mut rng = HdRng::seed_from(self.config.seed ^ 0x54_69);
        let mut order: Vec<usize> = (0..features.len()).collect();
        let mut history = Vec::with_capacity(self.config.epochs);
        for epoch in 0..self.config.epochs {
            for i in (1..order.len()).rev() {
                let j = rng.next_below(i + 1);
                order.swap(i, j);
            }
            let step = self.config.learning_rate / (1.0 + 0.05 * epoch as f32);
            let mut sq_err = 0.0f64;
            for &i in &order {
                let phi = &mapped[i];
                let pred = self.raw_predict(phi);
                let resid = pred - targets[i];
                sq_err += (resid as f64) * (resid as f64);
                // Subgradient of the ε-insensitive loss.
                let g = if resid > self.config.epsilon {
                    1.0
                } else if resid < -self.config.epsilon {
                    -1.0
                } else {
                    0.0
                };
                for (w, &p) in self.weights.iter_mut().zip(phi) {
                    *w -= step * (g * p + self.config.lambda * *w);
                }
                self.bias -= step * g;
            }
            history.push((sq_err / order.len() as f64) as f32);
        }
        FitReport {
            epochs: history.len(),
            train_mse_history: history,
            converged: true,
        }
    }

    fn predict_one(&self, x: &[f32]) -> f32 {
        assert_eq!(
            x.len(),
            self.input_dim,
            "expected {} features, got {}",
            self.input_dim,
            x.len()
        );
        let phi = self.mapped(x);
        self.raw_predict(&phi)
    }

    fn name(&self) -> String {
        match self.config.kernel {
            SvrKernel::Linear => "SVR-linear".to_string(),
            SvrKernel::Rbf { .. } => "SVR".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_cfg() -> SvrConfig {
        SvrConfig {
            kernel: SvrKernel::Linear,
            ..SvrConfig::default()
        }
    }

    #[test]
    fn linear_svr_fits_line() {
        let xs: Vec<Vec<f32>> = (0..100).map(|i| vec![i as f32 / 50.0 - 1.0]).collect();
        let ys: Vec<f32> = xs.iter().map(|x| 3.0 * x[0] - 1.0).collect();
        let mut m = SvrRegressor::new(1, linear_cfg());
        m.fit(&xs, &ys);
        let pred = m.predict_one(&[0.5]);
        assert!((pred - 0.5).abs() < 0.2, "pred = {pred}");
    }

    #[test]
    fn rbf_svr_fits_nonlinear() {
        let mut rng = HdRng::seed_from(4);
        let xs: Vec<Vec<f32>> = (0..300).map(|_| vec![rng.next_f32() * 2.0 - 1.0]).collect();
        let ys: Vec<f32> = xs.iter().map(|x| (3.0 * x[0]).sin()).collect();
        let mut m = SvrRegressor::new(1, SvrConfig::default());
        let report = m.fit(&xs, &ys);
        let var = 0.5; // roughly, for sin on this range
        assert!(
            report.final_mse().unwrap() < 0.2 * var,
            "mse = {:?}",
            report.final_mse()
        );
    }

    #[test]
    fn epsilon_tube_tolerates_small_noise() {
        // With a wide tube, predictions within ε generate no updates —
        // training loss stops improving once inside the tube.
        let xs: Vec<Vec<f32>> = (0..50).map(|i| vec![i as f32 / 25.0 - 1.0]).collect();
        let ys: Vec<f32> = xs.iter().map(|x| x[0]).collect();
        let cfg = SvrConfig {
            epsilon: 0.5,
            kernel: SvrKernel::Linear,
            ..SvrConfig::default()
        };
        let mut m = SvrRegressor::new(1, cfg);
        m.fit(&xs, &ys);
        // Residuals should sit within roughly the tube width.
        for x in &xs {
            let r = (m.predict_one(x) - x[0]).abs();
            assert!(r < 0.7, "residual {r} outside tolerance");
        }
    }

    #[test]
    fn robust_to_outliers_vs_squared_loss() {
        // ε-insensitive loss is L1-like beyond the tube: a single huge
        // outlier should barely move the fit.
        let mut xs: Vec<Vec<f32>> = (0..50).map(|i| vec![i as f32 / 25.0 - 1.0]).collect();
        let mut ys: Vec<f32> = xs.iter().map(|x| x[0]).collect();
        xs.push(vec![0.0]);
        ys.push(1000.0);
        let mut m = SvrRegressor::new(1, linear_cfg());
        m.fit(&xs, &ys);
        let pred = m.predict_one(&[0.5]);
        assert!((pred - 0.5).abs() < 0.5, "outlier dragged fit to {pred}");
    }

    #[test]
    fn deterministic() {
        let xs: Vec<Vec<f32>> = (0..30).map(|i| vec![i as f32 / 15.0]).collect();
        let ys: Vec<f32> = xs.iter().map(|x| x[0]).collect();
        let mut a = SvrRegressor::new(1, SvrConfig::default());
        let mut b = SvrRegressor::new(1, SvrConfig::default());
        a.fit(&xs, &ys);
        b.fit(&xs, &ys);
        assert_eq!(a.predict_one(&[0.3]), b.predict_one(&[0.3]));
    }

    #[test]
    #[should_panic(expected = "expected 1 features")]
    fn wrong_width_panics() {
        SvrRegressor::new(1, linear_cfg()).predict_one(&[1.0, 2.0]);
    }

    #[test]
    fn names_distinguish_kernels() {
        assert_eq!(SvrRegressor::new(1, linear_cfg()).name(), "SVR-linear");
        assert_eq!(SvrRegressor::new(1, SvrConfig::default()).name(), "SVR");
    }
}
