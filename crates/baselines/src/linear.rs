//! Ridge-regularised linear regression (the paper's "Logistic Regression"
//! row — for a continuous target the tuned scikit-learn model is ordinary
//! linear regression).
//!
//! Two solvers are provided: an exact **normal-equations** path (Cholesky
//! factorisation of `XᵀX + λI`, the default — these datasets have at most a
//! few dozen features) and an **SGD** path used when the feature count is
//! large or streaming behaviour is wanted.

use hdc::rng::HdRng;
use reghd::{FitReport, Regressor};

/// Solver selection for [`LinearRegressor`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LinearSolver {
    /// Exact solve of `(XᵀX + λI)w = Xᵀy` via Cholesky.
    #[default]
    NormalEquations,
    /// Mini-batch SGD with the given epoch budget.
    Sgd {
        /// Number of passes over the data.
        epochs: usize,
        /// Learning rate.
        learning_rate: f32,
    },
}

/// Linear regression with L2 regularisation.
///
/// # Examples
///
/// ```
/// use baselines::LinearRegressor;
/// use reghd::Regressor;
///
/// let xs: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32]).collect();
/// let ys: Vec<f32> = xs.iter().map(|x| 3.0 * x[0] + 1.0).collect();
/// let mut m = LinearRegressor::new(1e-6);
/// m.fit(&xs, &ys);
/// assert!((m.predict_one(&[10.0]) - 31.0).abs() < 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct LinearRegressor {
    weights: Vec<f32>,
    bias: f32,
    lambda: f32,
    solver: LinearSolver,
    seed: u64,
}

impl LinearRegressor {
    /// Creates a ridge regressor with regularisation strength `lambda`,
    /// solved exactly by normal equations.
    ///
    /// # Panics
    ///
    /// Panics if `lambda < 0` or not finite.
    pub fn new(lambda: f32) -> Self {
        assert!(
            lambda >= 0.0 && lambda.is_finite(),
            "lambda must be nonnegative and finite"
        );
        Self {
            weights: Vec::new(),
            bias: 0.0,
            lambda,
            solver: LinearSolver::NormalEquations,
            seed: 0,
        }
    }

    /// Selects the solver.
    pub fn with_solver(mut self, solver: LinearSolver) -> Self {
        self.solver = solver;
        self
    }

    /// Sets the SGD shuffle seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The fitted weight vector (empty before training).
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// The fitted bias.
    pub fn bias(&self) -> f32 {
        self.bias
    }

    fn fit_normal_equations(&mut self, features: &[Vec<f32>], targets: &[f32]) {
        let n = features.len();
        let d = features[0].len();
        // Augment with the bias column: solve over d+1 coefficients.
        let m = d + 1;
        let mut xtx = vec![0.0f64; m * m];
        let mut xty = vec![0.0f64; m];
        for (row, &y) in features.iter().zip(targets) {
            // Treat the implicit last coordinate as 1 (bias).
            for i in 0..m {
                let xi = if i < d { row[i] as f64 } else { 1.0 };
                xty[i] += xi * y as f64;
                for j in i..m {
                    let xj = if j < d { row[j] as f64 } else { 1.0 };
                    xtx[i * m + j] += xi * xj;
                }
            }
        }
        // Mirror the upper triangle and add the ridge (not on the bias).
        for i in 0..m {
            for j in 0..i {
                xtx[i * m + j] = xtx[j * m + i];
            }
        }
        let ridge = self.lambda as f64 * n as f64;
        for i in 0..d {
            xtx[i * m + i] += ridge;
        }
        // Tiny jitter keeps Cholesky stable on degenerate columns.
        for i in 0..m {
            xtx[i * m + i] += 1e-8;
        }
        let coeffs = cholesky_solve(&xtx, &xty, m)
            .expect("ridge-regularised normal equations must be positive definite");
        self.weights = coeffs[..d].iter().map(|&w| w as f32).collect();
        self.bias = coeffs[d] as f32;
    }

    fn fit_sgd(&mut self, features: &[Vec<f32>], targets: &[f32], epochs: usize, lr: f32) {
        let d = features[0].len();
        self.weights = vec![0.0; d];
        self.bias = 0.0;
        let mut rng = HdRng::seed_from(self.seed);
        let mut order: Vec<usize> = (0..features.len()).collect();
        for epoch in 0..epochs {
            for i in (1..order.len()).rev() {
                let j = rng.next_below(i + 1);
                order.swap(i, j);
            }
            // 1/t learning-rate decay for convergence.
            let step = lr / (1.0 + 0.1 * epoch as f32);
            for &i in &order {
                let row = &features[i];
                let pred = self.raw_predict(row);
                let err = targets[i] - pred;
                for (w, &x) in self.weights.iter_mut().zip(row) {
                    *w += step * (err * x - self.lambda * *w);
                }
                self.bias += step * err;
            }
        }
    }

    fn raw_predict(&self, x: &[f32]) -> f32 {
        self.weights
            .iter()
            .zip(x)
            .map(|(&w, &xi)| w * xi)
            .sum::<f32>()
            + self.bias
    }
}

/// Solves `A x = b` for symmetric positive definite `A` (row-major `n × n`)
/// via Cholesky decomposition. Returns `None` if `A` is not positive
/// definite.
fn cholesky_solve(a: &[f64], b: &[f64], n: usize) -> Option<Vec<f64>> {
    debug_assert_eq!(a.len(), n * n);
    debug_assert_eq!(b.len(), n);
    // Decompose A = L Lᵀ.
    let mut l = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i * n + j];
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l[i * n + j] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    // Forward substitution: L y = b.
    let mut y = vec![0.0f64; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i * n + k] * y[k];
        }
        y[i] = sum / l[i * n + i];
    }
    // Back substitution: Lᵀ x = y.
    let mut x = vec![0.0f64; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in (i + 1)..n {
            sum -= l[k * n + i] * x[k];
        }
        x[i] = sum / l[i * n + i];
    }
    Some(x)
}

impl Regressor for LinearRegressor {
    fn fit(&mut self, features: &[Vec<f32>], targets: &[f32]) -> FitReport {
        assert_eq!(
            features.len(),
            targets.len(),
            "features and targets must have the same length"
        );
        assert!(!features.is_empty(), "cannot fit on empty data");
        match self.solver {
            LinearSolver::NormalEquations => {
                self.fit_normal_equations(features, targets);
            }
            LinearSolver::Sgd {
                epochs,
                learning_rate,
            } => {
                self.fit_sgd(features, targets, epochs, learning_rate);
            }
        }
        let preds: Vec<f32> = features.iter().map(|x| self.raw_predict(x)).collect();
        let mse = (preds
            .iter()
            .zip(targets)
            .map(|(&p, &t)| (p as f64 - t as f64).powi(2))
            .sum::<f64>()
            / targets.len() as f64) as f32;
        let epochs = match self.solver {
            LinearSolver::NormalEquations => 1,
            LinearSolver::Sgd { epochs, .. } => epochs,
        };
        FitReport {
            epochs,
            train_mse_history: vec![mse],
            converged: true,
        }
    }

    fn predict_one(&self, x: &[f32]) -> f32 {
        assert_eq!(
            x.len(),
            self.weights.len(),
            "expected {} features, got {}",
            self.weights.len(),
            x.len()
        );
        self.raw_predict(x)
    }

    fn name(&self) -> String {
        "Linear".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> (Vec<Vec<f32>>, Vec<f32>) {
        let mut rng = HdRng::seed_from(5);
        let xs: Vec<Vec<f32>> = (0..n)
            .map(|_| {
                vec![
                    rng.next_f32() * 4.0 - 2.0,
                    rng.next_f32() * 4.0 - 2.0,
                    rng.next_f32() * 4.0 - 2.0,
                ]
            })
            .collect();
        let ys = xs
            .iter()
            .map(|x| 1.5 * x[0] - 2.0 * x[1] + 0.5 * x[2] + 3.0)
            .collect();
        (xs, ys)
    }

    #[test]
    fn normal_equations_recovers_exact_weights() {
        let (xs, ys) = toy(100);
        let mut m = LinearRegressor::new(0.0);
        let report = m.fit(&xs, &ys);
        assert!(report.final_mse().unwrap() < 1e-6);
        assert!((m.weights()[0] - 1.5).abs() < 1e-3);
        assert!((m.weights()[1] + 2.0).abs() < 1e-3);
        assert!((m.weights()[2] - 0.5).abs() < 1e-3);
        assert!((m.bias() - 3.0).abs() < 1e-3);
    }

    #[test]
    fn sgd_converges_close_to_exact() {
        let (xs, ys) = toy(200);
        let mut exact = LinearRegressor::new(0.0);
        exact.fit(&xs, &ys);
        let mut sgd = LinearRegressor::new(0.0).with_solver(LinearSolver::Sgd {
            epochs: 100,
            learning_rate: 0.05,
        });
        let report = sgd.fit(&xs, &ys);
        assert!(
            report.final_mse().unwrap() < 0.01,
            "sgd mse = {:?}",
            report.final_mse()
        );
    }

    #[test]
    fn ridge_shrinks_weights() {
        let (xs, ys) = toy(50);
        let mut plain = LinearRegressor::new(0.0);
        let mut ridge = LinearRegressor::new(10.0);
        plain.fit(&xs, &ys);
        ridge.fit(&xs, &ys);
        let norm = |w: &[f32]| w.iter().map(|&x| x * x).sum::<f32>();
        assert!(norm(ridge.weights()) < norm(plain.weights()));
    }

    #[test]
    fn handles_constant_feature() {
        // A constant column makes XᵀX singular without regularisation;
        // the jitter + ridge path must stay stable.
        let xs: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32, 1.0]).collect();
        let ys: Vec<f32> = xs.iter().map(|x| 2.0 * x[0] + 5.0).collect();
        let mut m = LinearRegressor::new(1e-4);
        m.fit(&xs, &ys);
        assert!((m.predict_one(&[10.0, 1.0]) - 25.0).abs() < 0.1);
    }

    #[test]
    fn cholesky_reference() {
        // Solve a known 2×2 SPD system.
        let a = [4.0, 2.0, 2.0, 3.0];
        let b = [10.0, 8.0];
        let x = cholesky_solve(&a, &b, 2).unwrap();
        // 4x + 2y = 10, 2x + 3y = 8 → x = 1.75, y = 1.5.
        assert!((x[0] - 1.75).abs() < 1e-10);
        assert!((x[1] - 1.5).abs() < 1e-10);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = [1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, -1
        assert!(cholesky_solve(&a, &[1.0, 1.0], 2).is_none());
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn negative_lambda_panics() {
        LinearRegressor::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "expected 3 features")]
    fn predict_wrong_width_panics() {
        let (xs, ys) = toy(10);
        let mut m = LinearRegressor::new(0.0);
        m.fit(&xs, &ys);
        m.predict_one(&[1.0]);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(LinearRegressor::new(0.0).name(), "Linear");
    }
}
