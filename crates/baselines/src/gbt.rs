//! Gradient-boosted trees (least-squares boosting, Friedman 2001):
//! sequentially fit shallow CART trees to the residuals of the running
//! ensemble. The strongest classical tabular baseline in the extended zoo.

use crate::tree::{TreeConfig, TreeRegressor};
use reghd::{FitReport, Regressor};

/// Hyper-parameters for [`GbtRegressor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GbtConfig {
    /// Number of boosting rounds (trees).
    pub rounds: usize,
    /// Shrinkage (learning rate) applied to each tree's contribution.
    pub shrinkage: f32,
    /// Per-tree CART settings (shallow trees are the point).
    pub tree: TreeConfig,
}

impl Default for GbtConfig {
    fn default() -> Self {
        Self {
            rounds: 100,
            shrinkage: 0.1,
            tree: TreeConfig {
                max_depth: 3,
                min_samples_leaf: 5,
            },
        }
    }
}

/// Least-squares gradient boosting over shallow CART trees.
///
/// # Examples
///
/// ```
/// use baselines::gbt::{GbtRegressor, GbtConfig};
/// use reghd::Regressor;
///
/// let xs: Vec<Vec<f32>> = (0..150).map(|i| vec![i as f32 / 75.0 - 1.0]).collect();
/// let ys: Vec<f32> = xs.iter().map(|x| (3.0 * x[0]).sin()).collect();
/// let mut m = GbtRegressor::new(GbtConfig::default());
/// m.fit(&xs, &ys);
/// assert!((m.predict_one(&[0.3]) - (0.9f32).sin()).abs() < 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct GbtRegressor {
    config: GbtConfig,
    base: f32,
    trees: Vec<TreeRegressor>,
}

impl GbtRegressor {
    /// Creates an untrained boosted ensemble.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0` or `shrinkage` is not within `(0, 1]`.
    pub fn new(config: GbtConfig) -> Self {
        assert!(config.rounds > 0, "rounds must be nonzero");
        assert!(
            config.shrinkage > 0.0 && config.shrinkage <= 1.0,
            "shrinkage must be in (0, 1]"
        );
        Self {
            config,
            base: 0.0,
            trees: Vec::new(),
        }
    }

    /// Number of fitted boosting rounds (0 before training).
    pub fn round_count(&self) -> usize {
        self.trees.len()
    }
}

impl Regressor for GbtRegressor {
    fn fit(&mut self, features: &[Vec<f32>], targets: &[f32]) -> FitReport {
        assert_eq!(
            features.len(),
            targets.len(),
            "features and targets must have the same length"
        );
        assert!(!features.is_empty(), "cannot fit on empty data");
        self.trees.clear();
        // Stage 0: the mean.
        self.base = (targets.iter().map(|&t| t as f64).sum::<f64>() / targets.len() as f64) as f32;
        let mut residuals: Vec<f32> = targets.iter().map(|&y| y - self.base).collect();
        let mut history = Vec::with_capacity(self.config.rounds);
        for _ in 0..self.config.rounds {
            let mut tree = TreeRegressor::new(self.config.tree);
            tree.fit(features, &residuals);
            // Update residuals with the shrunken tree predictions.
            let mut sq = 0.0f64;
            for (i, row) in features.iter().enumerate() {
                residuals[i] -= self.config.shrinkage * tree.predict_one(row);
                sq += (residuals[i] as f64) * (residuals[i] as f64);
            }
            self.trees.push(tree);
            history.push((sq / residuals.len() as f64) as f32);
        }
        FitReport {
            epochs: history.len(),
            train_mse_history: history,
            converged: false,
        }
    }

    fn predict_one(&self, x: &[f32]) -> f32 {
        assert!(!self.trees.is_empty(), "predict before fit");
        let boost: f64 = self
            .trees
            .iter()
            .map(|t| (self.config.shrinkage * t.predict_one(x)) as f64)
            .sum();
        self.base + boost as f32
    }

    fn name(&self) -> String {
        format!("GBT-{}", self.config.rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::{ForestConfig, ForestRegressor};
    use hdc::rng::HdRng;

    fn task(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<f32>) {
        let mut rng = HdRng::seed_from(seed);
        let xs: Vec<Vec<f32>> = (0..n)
            .map(|_| vec![rng.next_f32() * 2.0 - 1.0, rng.next_f32() * 2.0 - 1.0])
            .collect();
        let ys = xs
            .iter()
            .map(|x| (3.0 * x[0]).sin() + x[0] * x[1] + 0.1 * rng.next_gaussian() as f32)
            .collect();
        (xs, ys)
    }

    #[test]
    fn boosting_drives_training_residuals_down() {
        let (xs, ys) = task(300, 1);
        let mut m = GbtRegressor::new(GbtConfig::default());
        let report = m.fit(&xs, &ys);
        let first = report.train_mse_history[0];
        let last = *report.train_mse_history.last().unwrap();
        assert!(
            last < 0.3 * first,
            "no boosting progress: {first} -> {last}"
        );
    }

    #[test]
    fn beats_single_shallow_tree() {
        let (train_x, train_y) = task(400, 2);
        let (test_x, test_y) = task(400, 3);
        let mut stump = TreeRegressor::new(TreeConfig {
            max_depth: 3,
            min_samples_leaf: 5,
        });
        let mut gbt = GbtRegressor::new(GbtConfig::default());
        stump.fit(&train_x, &train_y);
        gbt.fit(&train_x, &train_y);
        let mse = |m: &dyn Regressor| {
            test_x
                .iter()
                .zip(&test_y)
                .map(|(x, &y)| {
                    let e = m.predict_one(x) - y;
                    (e * e) as f64
                })
                .sum::<f64>()
                / test_y.len() as f64
        };
        assert!(mse(&gbt) < 0.5 * mse(&stump));
    }

    #[test]
    fn competitive_with_forest_on_smooth_task() {
        let (train_x, train_y) = task(400, 4);
        let (test_x, test_y) = task(400, 5);
        let mut gbt = GbtRegressor::new(GbtConfig::default());
        let mut forest = ForestRegressor::new(ForestConfig::default());
        gbt.fit(&train_x, &train_y);
        forest.fit(&train_x, &train_y);
        let mse = |m: &dyn Regressor| {
            test_x
                .iter()
                .zip(&test_y)
                .map(|(x, &y)| {
                    let e = m.predict_one(x) - y;
                    (e * e) as f64
                })
                .sum::<f64>()
                / test_y.len() as f64
        };
        // Not a strict ordering claim — just same ballpark (within 2x).
        let (g, f) = (mse(&gbt), mse(&forest));
        assert!(g < 2.0 * f && f < 2.0 * g, "gbt {g} vs forest {f}");
    }

    #[test]
    fn shrinkage_one_overfits_faster_than_small() {
        let (xs, ys) = task(200, 6);
        let run = |shrinkage: f32| {
            let mut m = GbtRegressor::new(GbtConfig {
                rounds: 30,
                shrinkage,
                ..GbtConfig::default()
            });
            m.fit(&xs, &ys).train_mse_history.last().copied().unwrap()
        };
        // Aggressive shrinkage reaches lower train error in few rounds.
        assert!(run(1.0) < run(0.05));
    }

    #[test]
    fn round_count_tracks_config() {
        let (xs, ys) = task(60, 7);
        let mut m = GbtRegressor::new(GbtConfig {
            rounds: 13,
            ..GbtConfig::default()
        });
        assert_eq!(m.round_count(), 0);
        m.fit(&xs, &ys);
        assert_eq!(m.round_count(), 13);
    }

    #[test]
    #[should_panic(expected = "shrinkage")]
    fn bad_shrinkage_panics() {
        GbtRegressor::new(GbtConfig {
            shrinkage: 0.0,
            ..GbtConfig::default()
        });
    }

    #[test]
    fn name_includes_rounds() {
        assert_eq!(GbtRegressor::new(GbtConfig::default()).name(), "GBT-100");
    }
}
