//! Fully connected neural network regressor — the paper's "DNN" comparator.
//!
//! A from-scratch multi-layer perceptron: configurable hidden widths, ReLU
//! activations, mini-batch SGD with momentum, 1/t learning-rate decay, and
//! He initialisation. At the scale of the paper's datasets (hundreds to
//! thousands of samples, ≤ 18 features) this matches what the tuned
//! TensorFlow models of §4.2 learn.

use hdc::rng::HdRng;
use reghd::{FitReport, Regressor};

/// Hyper-parameters for [`MlpRegressor`].
#[derive(Debug, Clone, PartialEq)]
pub struct MlpConfig {
    /// Hidden layer widths, e.g. `[64, 32]`.
    pub hidden: Vec<usize>,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Number of passes over the data.
    pub epochs: usize,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Initialisation / shuffle seed.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self {
            hidden: vec![64, 32],
            learning_rate: 0.01,
            momentum: 0.9,
            batch_size: 16,
            epochs: 100,
            weight_decay: 1e-5,
            seed: 0,
        }
    }
}

/// One dense layer: row-major `out × in` weights plus biases, with momentum
/// buffers.
#[derive(Debug, Clone)]
struct Layer {
    w: Vec<f32>,
    b: Vec<f32>,
    vw: Vec<f32>,
    vb: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl Layer {
    fn new(rows: usize, cols: usize, rng: &mut HdRng) -> Self {
        // He initialisation for ReLU nets.
        let scale = (2.0 / cols as f32).sqrt();
        Self {
            w: (0..rows * cols)
                .map(|_| scale * rng.next_gaussian() as f32)
                .collect(),
            b: vec![0.0; rows],
            vw: vec![0.0; rows * cols],
            vb: vec![0.0; rows],
            rows,
            cols,
        }
    }

    fn forward(&self, x: &[f32], out: &mut Vec<f32>) {
        out.clear();
        for r in 0..self.rows {
            let row = &self.w[r * self.cols..(r + 1) * self.cols];
            let z: f32 = row.iter().zip(x).map(|(&w, &xi)| w * xi).sum::<f32>() + self.b[r];
            out.push(z);
        }
    }
}

/// Multi-layer perceptron for regression (single scalar output).
///
/// # Examples
///
/// ```
/// use baselines::{MlpRegressor, mlp::MlpConfig};
/// use reghd::Regressor;
///
/// let xs: Vec<Vec<f32>> = (0..100).map(|i| vec![i as f32 / 50.0 - 1.0]).collect();
/// let ys: Vec<f32> = xs.iter().map(|x| x[0] * x[0]).collect();
/// let mut m = MlpRegressor::new(1, MlpConfig { epochs: 200, ..MlpConfig::default() });
/// let report = m.fit(&xs, &ys);
/// assert!(report.final_mse().unwrap() < 0.01);
/// ```
#[derive(Debug, Clone)]
pub struct MlpRegressor {
    config: MlpConfig,
    input_dim: usize,
    layers: Vec<Layer>,
}

impl MlpRegressor {
    /// Creates an untrained MLP for `input_dim` features.
    ///
    /// # Panics
    ///
    /// Panics if `input_dim == 0`, any hidden width is 0, `batch_size == 0`,
    /// or `epochs == 0`.
    pub fn new(input_dim: usize, config: MlpConfig) -> Self {
        assert!(input_dim > 0, "input_dim must be nonzero");
        assert!(
            config.hidden.iter().all(|&h| h > 0),
            "hidden widths must be nonzero"
        );
        assert!(config.batch_size > 0, "batch_size must be nonzero");
        assert!(config.epochs > 0, "epochs must be nonzero");
        let mut rng = HdRng::seed_from(config.seed ^ 0x313_7A9E5);
        let mut layers = Vec::new();
        let mut prev = input_dim;
        for &h in &config.hidden {
            layers.push(Layer::new(h, prev, &mut rng));
            prev = h;
        }
        layers.push(Layer::new(1, prev, &mut rng));
        Self {
            config,
            input_dim,
            layers,
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &MlpConfig {
        &self.config
    }

    /// Forward pass returning all layer activations (post-ReLU for hidden,
    /// raw for the output layer). `acts[0]` is the input.
    fn forward_all(&self, x: &[f32]) -> Vec<Vec<f32>> {
        let mut acts: Vec<Vec<f32>> = Vec::with_capacity(self.layers.len() + 1);
        acts.push(x.to_vec());
        let mut buf = Vec::new();
        for (li, layer) in self.layers.iter().enumerate() {
            layer.forward(acts.last().expect("nonempty"), &mut buf);
            let last = li + 1 == self.layers.len();
            if !last {
                for v in buf.iter_mut() {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
            }
            acts.push(buf.clone());
        }
        acts
    }

    /// One SGD step on a mini-batch; returns the batch's summed squared
    /// error.
    fn train_batch(&mut self, xs: &[&Vec<f32>], ys: &[f32], step: f32) -> f64 {
        let nl = self.layers.len();
        // Accumulate gradients over the batch.
        let mut gw: Vec<Vec<f32>> = self.layers.iter().map(|l| vec![0.0; l.w.len()]).collect();
        let mut gb: Vec<Vec<f32>> = self.layers.iter().map(|l| vec![0.0; l.b.len()]).collect();
        let mut sq_err = 0.0f64;
        for (x, &y) in xs.iter().zip(ys) {
            let acts = self.forward_all(x);
            let pred = acts[nl][0];
            let err = pred - y;
            sq_err += (err as f64) * (err as f64);
            // Backprop: delta for the output layer is d(½err²)/dz = err.
            let mut delta = vec![err];
            for li in (0..nl).rev() {
                let layer = &self.layers[li];
                let input = &acts[li];
                // Gradients for this layer.
                for r in 0..layer.rows {
                    gb[li][r] += delta[r];
                    let grow = &mut gw[li][r * layer.cols..(r + 1) * layer.cols];
                    for (g, &xi) in grow.iter_mut().zip(input) {
                        *g += delta[r] * xi;
                    }
                }
                if li == 0 {
                    break;
                }
                // Delta for the previous layer (through ReLU).
                let prev_act = &acts[li];
                let mut new_delta = vec![0.0f32; layer.cols];
                for (row, &d) in layer.w.chunks_exact(layer.cols).zip(&delta) {
                    for (nd, &w) in new_delta.iter_mut().zip(row) {
                        *nd += d * w;
                    }
                }
                for (nd, &a) in new_delta.iter_mut().zip(prev_act) {
                    if a <= 0.0 {
                        *nd = 0.0;
                    }
                }
                delta = new_delta;
            }
        }
        // Momentum update.
        let inv = 1.0 / xs.len() as f32;
        let mu = self.config.momentum;
        let wd = self.config.weight_decay;
        for (li, layer) in self.layers.iter_mut().enumerate() {
            for (i, v) in layer.vw.iter_mut().enumerate() {
                *v = mu * *v - step * (gw[li][i] * inv + wd * layer.w[i]);
                layer.w[i] += *v;
            }
            for (i, v) in layer.vb.iter_mut().enumerate() {
                *v = mu * *v - step * gb[li][i] * inv;
                layer.b[i] += *v;
            }
        }
        sq_err
    }
}

impl Regressor for MlpRegressor {
    fn fit(&mut self, features: &[Vec<f32>], targets: &[f32]) -> FitReport {
        assert_eq!(
            features.len(),
            targets.len(),
            "features and targets must have the same length"
        );
        assert!(!features.is_empty(), "cannot fit on empty data");
        assert_eq!(
            features[0].len(),
            self.input_dim,
            "expected {} features, got {}",
            self.input_dim,
            features[0].len()
        );

        // Re-initialise so repeated fits are independent.
        *self = MlpRegressor::new(self.input_dim, self.config.clone());

        let mut rng = HdRng::seed_from(self.config.seed ^ 0x5417_F1E5);
        let mut order: Vec<usize> = (0..features.len()).collect();
        let mut history = Vec::with_capacity(self.config.epochs);
        for epoch in 0..self.config.epochs {
            for i in (1..order.len()).rev() {
                let j = rng.next_below(i + 1);
                order.swap(i, j);
            }
            let step = self.config.learning_rate / (1.0 + 0.01 * epoch as f32);
            let mut sq_err = 0.0f64;
            for chunk in order.chunks(self.config.batch_size) {
                let xs: Vec<&Vec<f32>> = chunk.iter().map(|&i| &features[i]).collect();
                let ys: Vec<f32> = chunk.iter().map(|&i| targets[i]).collect();
                sq_err += self.train_batch(&xs, &ys, step);
            }
            history.push((sq_err / features.len() as f64) as f32);
        }
        FitReport {
            epochs: history.len(),
            train_mse_history: history,
            converged: true,
        }
    }

    fn predict_one(&self, x: &[f32]) -> f32 {
        assert_eq!(
            x.len(),
            self.input_dim,
            "expected {} features, got {}",
            self.input_dim,
            x.len()
        );
        let acts = self.forward_all(x);
        acts[self.layers.len()][0]
    }

    fn name(&self) -> String {
        "DNN".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(epochs: usize, seed: u64) -> MlpConfig {
        MlpConfig {
            epochs,
            seed,
            ..MlpConfig::default()
        }
    }

    #[test]
    fn learns_linear() {
        let xs: Vec<Vec<f32>> = (0..100).map(|i| vec![i as f32 / 50.0 - 1.0]).collect();
        let ys: Vec<f32> = xs.iter().map(|x| 2.0 * x[0] - 0.5).collect();
        let mut m = MlpRegressor::new(1, cfg(150, 1));
        let report = m.fit(&xs, &ys);
        assert!(
            report.final_mse().unwrap() < 0.01,
            "mse = {:?}",
            report.final_mse()
        );
    }

    #[test]
    fn learns_nonlinear() {
        let mut rng = HdRng::seed_from(2);
        let xs: Vec<Vec<f32>> = (0..300)
            .map(|_| vec![rng.next_f32() * 2.0 - 1.0, rng.next_f32() * 2.0 - 1.0])
            .collect();
        let ys: Vec<f32> = xs
            .iter()
            .map(|x| x[0] * x[1] + (2.0 * x[0]).sin())
            .collect();
        let mut m = MlpRegressor::new(2, cfg(200, 3));
        let report = m.fit(&xs, &ys);
        let var = {
            let mean = ys.iter().sum::<f32>() / ys.len() as f32;
            ys.iter().map(|&y| (y - mean) * (y - mean)).sum::<f32>() / ys.len() as f32
        };
        let mse = report.final_mse().unwrap();
        assert!(mse < 0.1 * var, "mse {mse} vs var {var}");
    }

    #[test]
    fn training_reduces_loss() {
        let xs: Vec<Vec<f32>> = (0..50).map(|i| vec![i as f32 / 25.0 - 1.0]).collect();
        let ys: Vec<f32> = xs.iter().map(|x| 3.0 * x[0]).collect();
        let mut m = MlpRegressor::new(1, cfg(50, 4));
        let report = m.fit(&xs, &ys);
        assert!(report.train_mse_history[0] > *report.train_mse_history.last().unwrap());
    }

    #[test]
    fn deterministic_given_seed() {
        let xs: Vec<Vec<f32>> = (0..30).map(|i| vec![i as f32 / 15.0]).collect();
        let ys: Vec<f32> = xs.iter().map(|x| x[0]).collect();
        let mut a = MlpRegressor::new(1, cfg(20, 7));
        let mut b = MlpRegressor::new(1, cfg(20, 7));
        a.fit(&xs, &ys);
        b.fit(&xs, &ys);
        assert_eq!(a.predict_one(&[0.5]), b.predict_one(&[0.5]));
    }

    #[test]
    fn refit_resets() {
        let xs: Vec<Vec<f32>> = (0..30).map(|i| vec![i as f32 / 15.0]).collect();
        let ys: Vec<f32> = xs.iter().map(|x| x[0]).collect();
        let mut m = MlpRegressor::new(1, cfg(30, 8));
        m.fit(&xs, &ys);
        let p1 = m.predict_one(&[0.5]);
        m.fit(&xs, &ys);
        assert_eq!(p1, m.predict_one(&[0.5]));
    }

    #[test]
    fn deep_config_works() {
        let xs: Vec<Vec<f32>> = (0..60).map(|i| vec![i as f32 / 30.0 - 1.0]).collect();
        let ys: Vec<f32> = xs.iter().map(|x| x[0].abs()).collect();
        let config = MlpConfig {
            hidden: vec![32, 32, 16],
            epochs: 150,
            ..MlpConfig::default()
        };
        let mut m = MlpRegressor::new(1, config);
        let report = m.fit(&xs, &ys);
        assert!(report.final_mse().unwrap() < 0.02);
    }

    #[test]
    #[should_panic(expected = "hidden widths")]
    fn zero_hidden_panics() {
        MlpRegressor::new(
            1,
            MlpConfig {
                hidden: vec![0],
                ..MlpConfig::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "expected 2 features")]
    fn predict_wrong_width_panics() {
        MlpRegressor::new(2, MlpConfig::default()).predict_one(&[1.0]);
    }

    #[test]
    fn name_is_dnn() {
        assert_eq!(MlpRegressor::new(1, MlpConfig::default()).name(), "DNN");
    }
}
