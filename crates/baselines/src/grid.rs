//! K-fold cross-validated grid search — "the common practice of the grid
//! search to identify the best hyper-parameters for each model" (§4.2).

use hdc::rng::HdRng;
use reghd::Regressor;

/// A named model factory entering the grid: `(label, || fresh model)`.
pub type Candidate = (String, Box<dyn Fn() -> Box<dyn Regressor>>);

/// One evaluated grid candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateScore {
    /// Label describing the hyper-parameter combination.
    pub label: String,
    /// Mean validation MSE across folds.
    pub cv_mse: f32,
}

/// Result of a grid search.
#[derive(Debug, Clone, PartialEq)]
pub struct GridResult {
    /// Index of the winning candidate in the input order.
    pub best_index: usize,
    /// Every candidate's cross-validated score, in input order.
    pub scores: Vec<CandidateScore>,
}

impl GridResult {
    /// The winning candidate's score entry.
    pub fn best(&self) -> &CandidateScore {
        &self.scores[self.best_index]
    }
}

/// Runs k-fold cross-validation over a list of `(label, factory)` candidate
/// model configurations and returns the per-candidate mean validation MSE.
///
/// Each factory must build a *fresh, untrained* model; the same folds (from
/// `seed`) are used for every candidate so the comparison is paired.
///
/// # Panics
///
/// Panics if `candidates` is empty, `folds < 2`, or `folds` exceeds the
/// sample count.
///
/// # Examples
///
/// ```
/// use baselines::{grid::grid_search, LinearRegressor};
/// use reghd::Regressor;
///
/// let xs: Vec<Vec<f32>> = (0..40).map(|i| vec![i as f32]).collect();
/// let ys: Vec<f32> = xs.iter().map(|x| 2.0 * x[0]).collect();
/// let result = grid_search(
///     &[
///         ("lambda=0".to_string(), Box::new(|| Box::new(LinearRegressor::new(0.0)) as Box<dyn Regressor>) as Box<dyn Fn() -> Box<dyn Regressor>>),
///         ("lambda=100".to_string(), Box::new(|| Box::new(LinearRegressor::new(100.0)) as Box<dyn Regressor>)),
///     ],
///     &xs,
///     &ys,
///     4,
///     7,
/// );
/// assert_eq!(result.best().label, "lambda=0");
/// ```
pub fn grid_search(
    candidates: &[Candidate],
    features: &[Vec<f32>],
    targets: &[f32],
    folds: usize,
    seed: u64,
) -> GridResult {
    assert!(!candidates.is_empty(), "need at least one candidate");
    assert!(folds >= 2, "need at least 2 folds");
    assert!(
        folds <= features.len(),
        "folds cannot exceed the sample count"
    );
    assert_eq!(
        features.len(),
        targets.len(),
        "features and targets must have the same length"
    );

    // Deterministic shuffled fold assignment, shared across candidates.
    let mut rng = HdRng::seed_from(seed);
    let mut idx: Vec<usize> = (0..features.len()).collect();
    for i in (1..idx.len()).rev() {
        let j = rng.next_below(i + 1);
        idx.swap(i, j);
    }
    let base = features.len() / folds;
    let extra = features.len() % folds;
    let mut fold_ranges = Vec::with_capacity(folds);
    let mut start = 0usize;
    for f in 0..folds {
        let size = base + usize::from(f < extra);
        fold_ranges.push(start..start + size);
        start += size;
    }

    let mut scores = Vec::with_capacity(candidates.len());
    for (label, factory) in candidates {
        let mut total = 0.0f64;
        let mut count = 0usize;
        for range in &fold_ranges {
            let val_idx = &idx[range.clone()];
            let train_idx: Vec<usize> = idx[..range.start]
                .iter()
                .chain(&idx[range.end..])
                .copied()
                .collect();
            let train_x: Vec<Vec<f32>> = train_idx.iter().map(|&i| features[i].clone()).collect();
            let train_y: Vec<f32> = train_idx.iter().map(|&i| targets[i]).collect();
            let mut model = factory();
            model.fit(&train_x, &train_y);
            for &i in val_idx {
                let e = model.predict_one(&features[i]) as f64 - targets[i] as f64;
                total += e * e;
                count += 1;
            }
        }
        scores.push(CandidateScore {
            label: label.clone(),
            cv_mse: (total / count as f64) as f32,
        });
    }

    let best_index = scores
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.cv_mse.total_cmp(&b.1.cv_mse))
        .map(|(i, _)| i)
        .expect("candidates nonempty");
    GridResult { best_index, scores }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinearRegressor, MeanRegressor};

    fn boxed<F: Fn() -> Box<dyn Regressor> + 'static>(
        label: &str,
        f: F,
    ) -> (String, Box<dyn Fn() -> Box<dyn Regressor>>) {
        (label.to_string(), Box::new(f))
    }

    fn toy() -> (Vec<Vec<f32>>, Vec<f32>) {
        let xs: Vec<Vec<f32>> = (0..60).map(|i| vec![i as f32 / 30.0]).collect();
        let ys = xs.iter().map(|x| 4.0 * x[0] + 1.0).collect();
        (xs, ys)
    }

    #[test]
    fn picks_the_better_model() {
        let (xs, ys) = toy();
        let result = grid_search(
            &[
                boxed("mean", || Box::new(MeanRegressor::new())),
                boxed("linear", || Box::new(LinearRegressor::new(1e-6))),
            ],
            &xs,
            &ys,
            5,
            1,
        );
        assert_eq!(result.best().label, "linear");
        assert!(result.scores[1].cv_mse < result.scores[0].cv_mse);
    }

    #[test]
    fn scores_preserve_input_order() {
        let (xs, ys) = toy();
        let result = grid_search(
            &[
                boxed("a", || Box::new(MeanRegressor::new())),
                boxed("b", || Box::new(MeanRegressor::new())),
            ],
            &xs,
            &ys,
            3,
            2,
        );
        assert_eq!(result.scores[0].label, "a");
        assert_eq!(result.scores[1].label, "b");
        // Same model → same paired-fold score.
        assert_eq!(result.scores[0].cv_mse, result.scores[1].cv_mse);
    }

    #[test]
    fn deterministic_given_seed() {
        let (xs, ys) = toy();
        let run = |seed| {
            grid_search(
                &[boxed("m", || Box::new(MeanRegressor::new()))],
                &xs,
                &ys,
                4,
                seed,
            )
            .scores[0]
                .cv_mse
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_candidates_panics() {
        let (xs, ys) = toy();
        grid_search(&[], &xs, &ys, 2, 0);
    }

    #[test]
    #[should_panic(expected = "at least 2 folds")]
    fn one_fold_panics() {
        let (xs, ys) = toy();
        grid_search(
            &[boxed("m", || Box::new(MeanRegressor::new()))],
            &xs,
            &ys,
            1,
            0,
        );
    }
}
