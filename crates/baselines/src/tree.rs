//! CART regression tree — the paper's "Decision Tree" comparator.
//!
//! Standard recursive binary splitting on the feature/threshold pair that
//! maximises variance reduction, with `max_depth` and `min_samples_leaf`
//! stopping rules. Thresholds are evaluated exactly by sorting each feature
//! column at each node (fine at these dataset sizes).

use reghd::{FitReport, Regressor};

/// Hyper-parameters for [`TreeRegressor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples a leaf may hold.
    pub min_samples_leaf: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 8,
            min_samples_leaf: 5,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f32,
    },
    Split {
        feature: usize,
        threshold: f32,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// CART regression tree.
///
/// # Examples
///
/// ```
/// use baselines::{TreeRegressor, tree::TreeConfig};
/// use reghd::Regressor;
///
/// // A step function is exactly what trees represent.
/// let xs: Vec<Vec<f32>> = (0..100).map(|i| vec![i as f32]).collect();
/// let ys: Vec<f32> = xs.iter().map(|x| if x[0] < 50.0 { 1.0 } else { 5.0 }).collect();
/// let mut t = TreeRegressor::new(TreeConfig::default());
/// t.fit(&xs, &ys);
/// assert_eq!(t.predict_one(&[10.0]), 1.0);
/// assert_eq!(t.predict_one(&[90.0]), 5.0);
/// ```
#[derive(Debug, Clone)]
pub struct TreeRegressor {
    config: TreeConfig,
    root: Option<Node>,
    input_dim: usize,
}

impl TreeRegressor {
    /// Creates an untrained tree.
    ///
    /// # Panics
    ///
    /// Panics if `min_samples_leaf == 0`.
    pub fn new(config: TreeConfig) -> Self {
        assert!(
            config.min_samples_leaf > 0,
            "min_samples_leaf must be nonzero"
        );
        Self {
            config,
            root: None,
            input_dim: 0,
        }
    }

    /// Number of leaves in the fitted tree (0 before training).
    pub fn leaf_count(&self) -> usize {
        fn count(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => count(left) + count(right),
            }
        }
        self.root.as_ref().map_or(0, count)
    }

    /// Depth of the fitted tree (0 for a single leaf; 0 before training).
    pub fn depth(&self) -> usize {
        fn depth(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + depth(left).max(depth(right)),
            }
        }
        self.root.as_ref().map_or(0, depth)
    }

    fn build(
        &self,
        features: &[Vec<f32>],
        targets: &[f32],
        indices: &mut [usize],
        depth: usize,
    ) -> Node {
        let mean = indices.iter().map(|&i| targets[i] as f64).sum::<f64>() / indices.len() as f64;
        let sse = |idx: &[usize]| -> f64 {
            if idx.is_empty() {
                return 0.0;
            }
            let m = idx.iter().map(|&i| targets[i] as f64).sum::<f64>() / idx.len() as f64;
            idx.iter()
                .map(|&i| (targets[i] as f64 - m).powi(2))
                .sum::<f64>()
        };
        let node_sse = sse(indices);
        if depth >= self.config.max_depth
            || indices.len() < 2 * self.config.min_samples_leaf
            || node_sse < 1e-12
        {
            return Node::Leaf { value: mean as f32 };
        }

        // Find the best (feature, threshold) by scanning each sorted column.
        let mut best: Option<(usize, f32, f64)> = None;
        let d = features[0].len();
        let mut sorted: Vec<usize> = indices.to_vec();
        // `f` indexes a column across permuted rows; there is no slice to
        // iterate directly (clippy's range-loop suggestion misfires here).
        #[allow(clippy::needless_range_loop)]
        for f in 0..d {
            sorted.sort_by(|&a, &b| features[a][f].total_cmp(&features[b][f]));
            // Prefix sums over sorted order enable O(1) split evaluation.
            let mut prefix_sum = 0.0f64;
            let mut prefix_sq = 0.0f64;
            let total_sum: f64 = sorted.iter().map(|&i| targets[i] as f64).sum();
            let total_sq: f64 = sorted.iter().map(|&i| (targets[i] as f64).powi(2)).sum();
            for split in 1..sorted.len() {
                let prev = sorted[split - 1];
                prefix_sum += targets[prev] as f64;
                prefix_sq += (targets[prev] as f64).powi(2);
                // Can't split between equal feature values.
                if features[sorted[split - 1]][f] == features[sorted[split]][f] {
                    continue;
                }
                if split < self.config.min_samples_leaf
                    || sorted.len() - split < self.config.min_samples_leaf
                {
                    continue;
                }
                let nl = split as f64;
                let nr = (sorted.len() - split) as f64;
                let sse_l = prefix_sq - prefix_sum * prefix_sum / nl;
                let rs = total_sum - prefix_sum;
                let sse_r = (total_sq - prefix_sq) - rs * rs / nr;
                let combined = sse_l + sse_r;
                let threshold = 0.5 * (features[sorted[split - 1]][f] + features[sorted[split]][f]);
                if best.is_none_or(|(_, _, b)| combined < b) {
                    best = Some((f, threshold, combined));
                }
            }
        }

        match best {
            Some((feature, threshold, combined)) if combined < node_sse - 1e-12 => {
                let split_point =
                    itertools_partition(indices, |&i| features[i][feature] <= threshold);
                let (left_idx, right_idx) = indices.split_at_mut(split_point);
                // Guard against degenerate partitions (shouldn't happen given
                // the threshold choice, but protects against float edge
                // cases).
                if left_idx.is_empty() || right_idx.is_empty() {
                    return Node::Leaf { value: mean as f32 };
                }
                let left = self.build(features, targets, left_idx, depth + 1);
                let right = self.build(features, targets, right_idx, depth + 1);
                Node::Split {
                    feature,
                    threshold,
                    left: Box::new(left),
                    right: Box::new(right),
                }
            }
            _ => Node::Leaf { value: mean as f32 },
        }
    }
}

/// In-place stable partition: moves elements satisfying `pred` to the front,
/// returning the boundary index.
fn itertools_partition<T: Copy, F: Fn(&T) -> bool>(slice: &mut [T], pred: F) -> usize {
    let mut front: Vec<T> = Vec::with_capacity(slice.len());
    let mut back: Vec<T> = Vec::new();
    for &x in slice.iter() {
        if pred(&x) {
            front.push(x);
        } else {
            back.push(x);
        }
    }
    let boundary = front.len();
    slice[..boundary].copy_from_slice(&front);
    slice[boundary..].copy_from_slice(&back);
    boundary
}

impl Regressor for TreeRegressor {
    fn fit(&mut self, features: &[Vec<f32>], targets: &[f32]) -> FitReport {
        assert_eq!(
            features.len(),
            targets.len(),
            "features and targets must have the same length"
        );
        assert!(!features.is_empty(), "cannot fit on empty data");
        self.input_dim = features[0].len();
        let mut indices: Vec<usize> = (0..features.len()).collect();
        self.root = Some(self.build(features, targets, &mut indices, 0));
        let preds: Vec<f32> = features.iter().map(|x| self.predict_one(x)).collect();
        let mse = (preds
            .iter()
            .zip(targets)
            .map(|(&p, &t)| (p as f64 - t as f64).powi(2))
            .sum::<f64>()
            / targets.len() as f64) as f32;
        FitReport {
            epochs: 1,
            train_mse_history: vec![mse],
            converged: true,
        }
    }

    fn predict_one(&self, x: &[f32]) -> f32 {
        assert_eq!(
            x.len(),
            self.input_dim,
            "expected {} features, got {}",
            self.input_dim,
            x.len()
        );
        let mut node = self.root.as_ref().expect("predict before fit");
        loop {
            match node {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    fn name(&self) -> String {
        "DecisionTree".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::rng::HdRng;

    #[test]
    fn fits_step_function_exactly() {
        let xs: Vec<Vec<f32>> = (0..100).map(|i| vec![i as f32]).collect();
        let ys: Vec<f32> = xs
            .iter()
            .map(|x| if x[0] < 30.0 { -1.0 } else { 2.0 })
            .collect();
        let mut t = TreeRegressor::new(TreeConfig::default());
        let report = t.fit(&xs, &ys);
        assert!(report.final_mse().unwrap() < 1e-10);
        assert_eq!(t.predict_one(&[0.0]), -1.0);
        assert_eq!(t.predict_one(&[99.0]), 2.0);
    }

    #[test]
    fn respects_max_depth() {
        let mut rng = HdRng::seed_from(1);
        let xs: Vec<Vec<f32>> = (0..200).map(|_| vec![rng.next_f32()]).collect();
        let ys: Vec<f32> = xs.iter().map(|x| (10.0 * x[0]).sin()).collect();
        let mut t = TreeRegressor::new(TreeConfig {
            max_depth: 3,
            min_samples_leaf: 1,
        });
        t.fit(&xs, &ys);
        assert!(t.depth() <= 3, "depth = {}", t.depth());
        assert!(t.leaf_count() <= 8);
    }

    #[test]
    fn respects_min_samples_leaf() {
        let xs: Vec<Vec<f32>> = (0..40).map(|i| vec![i as f32]).collect();
        let ys: Vec<f32> = (0..40).map(|i| i as f32).collect();
        let mut t = TreeRegressor::new(TreeConfig {
            max_depth: 20,
            min_samples_leaf: 10,
        });
        t.fit(&xs, &ys);
        // With min leaf 10 over 40 samples, at most 4 leaves.
        assert!(t.leaf_count() <= 4, "leaves = {}", t.leaf_count());
    }

    #[test]
    fn multifeature_splits_choose_informative_feature() {
        let mut rng = HdRng::seed_from(2);
        // Feature 1 is pure noise; feature 0 determines y.
        let xs: Vec<Vec<f32>> = (0..200)
            .map(|_| vec![rng.next_f32(), rng.next_f32()])
            .collect();
        let ys: Vec<f32> = xs
            .iter()
            .map(|x| if x[0] < 0.5 { 0.0 } else { 10.0 })
            .collect();
        let mut t = TreeRegressor::new(TreeConfig {
            max_depth: 1,
            min_samples_leaf: 5,
        });
        let report = t.fit(&xs, &ys);
        // One split on feature 0 should nearly zero the error.
        assert!(report.final_mse().unwrap() < 1.0);
    }

    #[test]
    fn constant_targets_yield_single_leaf() {
        let xs: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32]).collect();
        let ys = vec![7.0f32; 20];
        let mut t = TreeRegressor::new(TreeConfig::default());
        t.fit(&xs, &ys);
        assert_eq!(t.leaf_count(), 1);
        assert_eq!(t.predict_one(&[3.0]), 7.0);
    }

    #[test]
    fn approximates_smooth_function() {
        let mut rng = HdRng::seed_from(3);
        let xs: Vec<Vec<f32>> = (0..500).map(|_| vec![rng.next_f32() * 2.0 - 1.0]).collect();
        let ys: Vec<f32> = xs.iter().map(|x| x[0] * x[0]).collect();
        let mut t = TreeRegressor::new(TreeConfig::default());
        let report = t.fit(&xs, &ys);
        assert!(report.final_mse().unwrap() < 0.01);
    }

    #[test]
    fn single_sample_is_leaf() {
        let mut t = TreeRegressor::new(TreeConfig::default());
        t.fit(&[vec![1.0]], &[42.0]);
        assert_eq!(t.predict_one(&[0.0]), 42.0);
        assert_eq!(t.leaf_count(), 1);
    }

    #[test]
    fn partition_helper_is_stable() {
        let mut v = [1, 2, 3, 4, 5, 6];
        let b = itertools_partition(&mut v, |&x| x % 2 == 0);
        assert_eq!(b, 3);
        assert_eq!(&v[..3], &[2, 4, 6]);
        assert_eq!(&v[3..], &[1, 3, 5]);
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_before_fit_panics() {
        TreeRegressor::new(TreeConfig::default()).predict_one(&[]);
    }

    #[test]
    #[should_panic(expected = "min_samples_leaf")]
    fn zero_leaf_size_panics() {
        TreeRegressor::new(TreeConfig {
            max_depth: 3,
            min_samples_leaf: 0,
        });
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(
            TreeRegressor::new(TreeConfig::default()).name(),
            "DecisionTree"
        );
    }
}
