//! Mean predictor — the sanity floor every real learner must beat.
//!
//! Its test MSE equals (approximately) the target variance, which is the
//! normalisation constant used throughout the evaluation harness.

use reghd::{FitReport, Regressor};

/// Predicts the training-target mean for every input.
///
/// # Examples
///
/// ```
/// use baselines::MeanRegressor;
/// use reghd::Regressor;
///
/// let mut m = MeanRegressor::new();
/// m.fit(&[vec![1.0], vec![2.0]], &[10.0, 30.0]);
/// assert_eq!(m.predict_one(&[99.0]), 20.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MeanRegressor {
    mean: f32,
}

impl MeanRegressor {
    /// Creates an untrained mean predictor (predicts 0).
    pub fn new() -> Self {
        Self::default()
    }
}

impl Regressor for MeanRegressor {
    fn fit(&mut self, features: &[Vec<f32>], targets: &[f32]) -> FitReport {
        assert_eq!(
            features.len(),
            targets.len(),
            "features and targets must have the same length"
        );
        assert!(!targets.is_empty(), "cannot fit on empty data");
        self.mean = (targets.iter().map(|&t| t as f64).sum::<f64>() / targets.len() as f64) as f32;
        let mse = (targets
            .iter()
            .map(|&t| (t as f64 - self.mean as f64).powi(2))
            .sum::<f64>()
            / targets.len() as f64) as f32;
        FitReport {
            epochs: 1,
            train_mse_history: vec![mse],
            converged: true,
        }
    }

    fn predict_one(&self, _x: &[f32]) -> f32 {
        self.mean
    }

    fn name(&self) -> String {
        "Mean".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicts_mean() {
        let mut m = MeanRegressor::new();
        let report = m.fit(&vec![vec![0.0]; 4], &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.predict_one(&[5.0]), 2.5);
        // Training MSE of a mean predictor is the variance.
        assert!((report.final_mse().unwrap() - 1.25).abs() < 1e-6);
    }

    #[test]
    fn untrained_predicts_zero() {
        assert_eq!(MeanRegressor::new().predict_one(&[1.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_fit_panics() {
        MeanRegressor::new().fit(&[], &[]);
    }
}
