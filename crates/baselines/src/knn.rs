//! k-nearest-neighbours regression — the classic non-parametric
//! comparator. Interesting next to RegHD because both are
//! similarity-driven: k-NN searches raw feature space exactly, RegHD
//! searches HD space approximately with O(k·D) work independent of the
//! training-set size.

use reghd::{FitReport, Regressor};

/// Distance weighting for the neighbour average.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KnnWeighting {
    /// Plain average of the k neighbours' targets.
    #[default]
    Uniform,
    /// Weight each neighbour by `1/(distance + ε)`.
    InverseDistance,
}

/// k-NN regressor (brute-force exact search; fine at these dataset sizes).
///
/// # Examples
///
/// ```
/// use baselines::knn::{KnnRegressor, KnnWeighting};
/// use reghd::Regressor;
///
/// let xs: Vec<Vec<f32>> = (0..50).map(|i| vec![i as f32]).collect();
/// let ys: Vec<f32> = xs.iter().map(|x| x[0] * 2.0).collect();
/// let mut m = KnnRegressor::new(3, KnnWeighting::Uniform);
/// m.fit(&xs, &ys);
/// assert!((m.predict_one(&[10.0]) - 20.0).abs() < 3.0);
/// ```
#[derive(Debug, Clone)]
pub struct KnnRegressor {
    k: usize,
    weighting: KnnWeighting,
    train_x: Vec<Vec<f32>>,
    train_y: Vec<f32>,
}

impl KnnRegressor {
    /// Creates a k-NN regressor.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize, weighting: KnnWeighting) -> Self {
        assert!(k > 0, "k must be nonzero");
        Self {
            k,
            weighting,
            train_x: Vec::new(),
            train_y: Vec::new(),
        }
    }

    /// The neighbour count `k`.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl Regressor for KnnRegressor {
    fn fit(&mut self, features: &[Vec<f32>], targets: &[f32]) -> FitReport {
        assert_eq!(
            features.len(),
            targets.len(),
            "features and targets must have the same length"
        );
        assert!(!features.is_empty(), "cannot fit on empty data");
        self.train_x = features.to_vec();
        self.train_y = targets.to_vec();
        // Training MSE via leave-self-in prediction is trivially optimistic
        // for k = 1; report the k-neighbour training error honestly.
        let preds: Vec<f32> = features.iter().map(|x| self.predict_one(x)).collect();
        let mse = (preds
            .iter()
            .zip(targets)
            .map(|(&p, &t)| (p as f64 - t as f64).powi(2))
            .sum::<f64>()
            / targets.len() as f64) as f32;
        FitReport {
            epochs: 1,
            train_mse_history: vec![mse],
            converged: true,
        }
    }

    fn predict_one(&self, x: &[f32]) -> f32 {
        assert!(!self.train_x.is_empty(), "predict before fit");
        assert_eq!(
            x.len(),
            self.train_x[0].len(),
            "expected {} features, got {}",
            self.train_x[0].len(),
            x.len()
        );
        // Partial selection of the k smallest distances.
        let mut dist: Vec<(f32, f32)> = self
            .train_x
            .iter()
            .zip(&self.train_y)
            .map(|(row, &y)| {
                let d: f32 = row.iter().zip(x).map(|(&a, &b)| (a - b) * (a - b)).sum();
                (d, y)
            })
            .collect();
        let k = self.k.min(dist.len());
        dist.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0));
        let neighbours = &dist[..k];
        match self.weighting {
            KnnWeighting::Uniform => neighbours.iter().map(|&(_, y)| y).sum::<f32>() / k as f32,
            KnnWeighting::InverseDistance => {
                let mut num = 0.0f64;
                let mut den = 0.0f64;
                for &(d, y) in neighbours {
                    let w = 1.0 / (d.sqrt() as f64 + 1e-9);
                    num += w * y as f64;
                    den += w;
                }
                (num / den) as f32
            }
        }
    }

    fn name(&self) -> String {
        format!("kNN-{}", self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::rng::HdRng;

    fn toy(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<f32>) {
        let mut rng = HdRng::seed_from(seed);
        let xs: Vec<Vec<f32>> = (0..n)
            .map(|_| vec![rng.next_f32() * 2.0 - 1.0, rng.next_f32() * 2.0 - 1.0])
            .collect();
        let ys = xs.iter().map(|x| x[0] + x[1] * x[1]).collect();
        (xs, ys)
    }

    #[test]
    fn one_nn_memorises_training_points() {
        let (xs, ys) = toy(100, 1);
        let mut m = KnnRegressor::new(1, KnnWeighting::Uniform);
        m.fit(&xs, &ys);
        for i in (0..xs.len()).step_by(13) {
            assert_eq!(m.predict_one(&xs[i]), ys[i]);
        }
    }

    #[test]
    fn fits_smooth_function() {
        let (xs, ys) = toy(400, 2);
        let mut m = KnnRegressor::new(5, KnnWeighting::InverseDistance);
        m.fit(&xs, &ys);
        let mse: f32 = xs
            .iter()
            .zip(&ys)
            .map(|(x, &y)| {
                let e = m.predict_one(x) - y;
                e * e
            })
            .sum::<f32>()
            / ys.len() as f32;
        let var = {
            let mean: f32 = ys.iter().sum::<f32>() / ys.len() as f32;
            ys.iter().map(|&y| (y - mean) * (y - mean)).sum::<f32>() / ys.len() as f32
        };
        assert!(mse < 0.1 * var, "mse {mse} vs var {var}");
    }

    #[test]
    fn k_larger_than_dataset_degrades_to_mean() {
        let xs = vec![vec![0.0], vec![1.0]];
        let ys = vec![0.0f32, 10.0];
        let mut m = KnnRegressor::new(50, KnnWeighting::Uniform);
        m.fit(&xs, &ys);
        assert_eq!(m.predict_one(&[0.5]), 5.0);
    }

    #[test]
    fn inverse_distance_prefers_closer_points() {
        let xs = vec![vec![0.0], vec![1.0]];
        let ys = vec![0.0f32, 10.0];
        let mut m = KnnRegressor::new(2, KnnWeighting::InverseDistance);
        m.fit(&xs, &ys);
        // Query near x=0 should predict well below the midpoint.
        assert!(m.predict_one(&[0.1]) < 3.0);
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_before_fit_panics() {
        KnnRegressor::new(1, KnnWeighting::Uniform).predict_one(&[0.0]);
    }

    #[test]
    #[should_panic(expected = "k must be nonzero")]
    fn zero_k_panics() {
        KnnRegressor::new(0, KnnWeighting::Uniform);
    }

    #[test]
    fn name_includes_k() {
        assert_eq!(KnnRegressor::new(7, KnnWeighting::Uniform).name(), "kNN-7");
    }
}
