//! # baselines — the comparator learners of RegHD's Table 1
//!
//! From-scratch Rust implementations of every algorithm the paper compares
//! RegHD against, all exposing the shared [`reghd::Regressor`] interface so
//! the bench harness can sweep them uniformly:
//!
//! * [`MlpRegressor`] — the "DNN" row: a small fully connected network
//!   trained with mini-batch SGD + momentum (stands in for the paper's
//!   TensorFlow models).
//! * [`LinearRegressor`] — the "Logistic Regression" row (for a regression
//!   target this is ordinary ridge-regularised linear regression, which is
//!   what scikit-learn's gridsearch converges to on these tasks).
//! * [`TreeRegressor`] — the "Decision Tree" row: CART with
//!   variance-reduction splits.
//! * [`SvrRegressor`] — the "SVR" row: ε-insensitive linear SVR via SGD,
//!   optionally over random Fourier features (≈ RBF-kernel SVR).
//! * [`BaselineHd`] — the "Baseline-HD" row (paper ref. \[18\]): regression
//!   emulated by HD *classification* over discretised output bins, the
//!   approach RegHD supersedes.
//! * [`MeanRegressor`] — sanity floor: predicts the training-target mean.
//!
//! The [`grid`] module provides the k-fold grid search the paper uses to
//! tune each baseline ("the common practice of the grid search").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline_hd;
pub mod forest;
pub mod gbt;
pub mod grid;
pub mod knn;
pub mod linear;
pub mod mean;
pub mod mlp;
pub mod svr;
pub mod tree;

pub use baseline_hd::BaselineHd;
pub use forest::ForestRegressor;
pub use gbt::GbtRegressor;
pub use knn::KnnRegressor;
pub use linear::LinearRegressor;
pub use mean::MeanRegressor;
pub use mlp::MlpRegressor;
pub use svr::SvrRegressor;
pub use tree::TreeRegressor;
