//! Baseline-HD: regression emulated by HD *classification* (paper ref.
//! \[18\], the comparator of Table 1's "Baseline-HD" row).
//!
//! The output range is discretised into `bins` intervals, each owning one
//! class hypervector. Training is standard HD classification: bundle each
//! encoded input into its target bin's hypervector, then refine iteratively
//! (on a misprediction, add the encoding to the correct class and subtract
//! it from the wrongly predicted class). Prediction returns the **centre of
//! the most similar bin** — an inherently discrete output, which is why the
//! paper reports "significantly low quality of regression, especially on
//! high-precision applications", and why it needs "hundreds of class
//! hypervectors" to be remotely competitive.

use encoding::Encoder;
use hdc::rng::HdRng;
use hdc::similarity::{argmax, cosine};
use hdc::RealHv;
use reghd::{FitReport, Regressor};

/// Hyper-parameters for [`BaselineHd`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineHdConfig {
    /// Number of output bins (class hypervectors).
    pub bins: usize,
    /// Refinement epochs after the single-pass bundling.
    pub epochs: usize,
    /// Learning rate of the refinement updates.
    pub learning_rate: f32,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for BaselineHdConfig {
    fn default() -> Self {
        Self {
            bins: 64,
            epochs: 20,
            learning_rate: 1.0,
            seed: 0,
        }
    }
}

/// HD-classification-based regression (the pre-RegHD approach).
///
/// # Examples
///
/// ```
/// use baselines::{BaselineHd, baseline_hd::BaselineHdConfig};
/// use encoding::NonlinearEncoder;
/// use reghd::Regressor;
///
/// let xs: Vec<Vec<f32>> = (0..200).map(|i| vec![i as f32 / 100.0 - 1.0]).collect();
/// let ys: Vec<f32> = xs.iter().map(|x| x[0]).collect();
/// let enc = NonlinearEncoder::new(1, 1024, 7);
/// let mut m = BaselineHd::new(BaselineHdConfig::default(), Box::new(enc));
/// m.fit(&xs, &ys);
/// // Predictions are quantised to bin centres: accurate only to ~bin width.
/// let err = (m.predict_one(&[0.5]) - 0.5).abs();
/// assert!(err < 0.2, "err = {err}");
/// ```
pub struct BaselineHd {
    config: BaselineHdConfig,
    encoder: Box<dyn Encoder>,
    classes: Vec<RealHv>,
    /// Fitted output range `(lo, hi)`.
    range: (f32, f32),
    center: Option<RealHv>,
}

impl std::fmt::Debug for BaselineHd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BaselineHd")
            .field("bins", &self.config.bins)
            .field("range", &self.range)
            .finish()
    }
}

impl BaselineHd {
    /// Creates an untrained Baseline-HD model.
    ///
    /// # Panics
    ///
    /// Panics if `config.bins < 2` or `config.epochs == 0`.
    pub fn new(config: BaselineHdConfig, encoder: Box<dyn Encoder>) -> Self {
        assert!(config.bins >= 2, "need at least 2 bins");
        assert!(config.epochs > 0, "epochs must be nonzero");
        Self {
            config,
            encoder,
            classes: Vec::new(),
            range: (0.0, 1.0),
            center: None,
        }
    }

    /// The fitted bin centres, in bin order (empty before training).
    pub fn bin_centers(&self) -> Vec<f32> {
        if self.classes.is_empty() {
            return Vec::new();
        }
        (0..self.config.bins).map(|b| self.bin_center(b)).collect()
    }

    fn bin_of(&self, y: f32) -> usize {
        let (lo, hi) = self.range;
        let t = ((y - lo) / (hi - lo)).clamp(0.0, 1.0);
        ((t * self.config.bins as f32) as usize).min(self.config.bins - 1)
    }

    fn bin_center(&self, bin: usize) -> f32 {
        let (lo, hi) = self.range;
        let width = (hi - lo) / self.config.bins as f32;
        lo + (bin as f32 + 0.5) * width
    }

    fn encode(&self, x: &[f32]) -> RealHv {
        let mut s = self.encoder.encode(x);
        if let Some(center) = &self.center {
            s.add_scaled(center, -1.0);
        }
        s.normalize();
        s
    }

    fn classify(&self, s: &RealHv) -> usize {
        let sims: Vec<f32> = self.classes.iter().map(|c| cosine(s, c)).collect();
        argmax(&sims).expect("classes nonempty after fit")
    }
}

impl Regressor for BaselineHd {
    fn fit(&mut self, features: &[Vec<f32>], targets: &[f32]) -> FitReport {
        assert_eq!(
            features.len(),
            targets.len(),
            "features and targets must have the same length"
        );
        assert!(!features.is_empty(), "cannot fit on empty data");

        // Bin range from the 2nd–98th percentiles: on heavy-tailed targets
        // (forest fires) a min–max range would leave most bins empty and
        // stretch the quantisation error catastrophically.
        let mut sorted: Vec<f32> = targets.to_vec();
        sorted.sort_by(f32::total_cmp);
        let pct = |p: f64| sorted[((sorted.len() - 1) as f64 * p) as usize];
        let (lo, hi) = (pct(0.02), pct(0.98));
        // Degenerate constant-target case: widen artificially so bin_of is
        // well defined.
        self.range = if hi > lo {
            (lo, hi)
        } else {
            (lo - 0.5, lo + 0.5)
        };

        let dim = self.encoder.dim();
        self.classes = vec![RealHv::zeros(dim); self.config.bins];
        self.center = None;

        // Encode once, with mean-centring (see
        // `reghd::RegHdConfig::center_encodings` for the rationale).
        let mut encoded: Vec<RealHv> = features.iter().map(|x| self.encoder.encode(x)).collect();
        let mut mean = RealHv::zeros(dim);
        for s in &encoded {
            mean.add_scaled(s, 1.0 / encoded.len() as f32);
        }
        for s in &mut encoded {
            s.add_scaled(&mean, -1.0);
            s.normalize();
        }
        self.center = Some(mean);

        // Single-pass bundling.
        for (s, &y) in encoded.iter().zip(targets) {
            let b = self.bin_of(y);
            self.classes[b].add_scaled(s, 1.0);
        }

        // Iterative refinement.
        let mut rng = HdRng::seed_from(self.config.seed ^ 0xBA_5E11);
        let mut order: Vec<usize> = (0..features.len()).collect();
        let mut history = Vec::with_capacity(self.config.epochs);
        for _ in 0..self.config.epochs {
            for i in (1..order.len()).rev() {
                let j = rng.next_below(i + 1);
                order.swap(i, j);
            }
            let mut sq_err = 0.0f64;
            for &i in &order {
                let s = &encoded[i];
                let truth = self.bin_of(targets[i]);
                let pred = self.classify(s);
                let pred_y = self.bin_center(pred);
                let e = targets[i] as f64 - pred_y as f64;
                sq_err += e * e;
                if pred != truth {
                    let lr = self.config.learning_rate;
                    self.classes[truth].add_scaled(s, lr);
                    self.classes[pred].add_scaled(s, -lr);
                }
            }
            history.push((sq_err / order.len() as f64) as f32);
        }

        FitReport {
            epochs: history.len(),
            train_mse_history: history,
            converged: false,
        }
    }

    fn predict_one(&self, x: &[f32]) -> f32 {
        assert!(!self.classes.is_empty(), "predict before fit");
        let s = self.encode(x);
        self.bin_center(self.classify(&s))
    }

    fn name(&self) -> String {
        format!("Baseline-HD({})", self.config.bins)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use encoding::NonlinearEncoder;

    fn make(bins: usize, dim: usize, seed: u64) -> BaselineHd {
        let cfg = BaselineHdConfig {
            bins,
            seed,
            ..BaselineHdConfig::default()
        };
        BaselineHd::new(cfg, Box::new(NonlinearEncoder::new(1, dim, seed)))
    }

    fn ramp(n: usize) -> (Vec<Vec<f32>>, Vec<f32>) {
        let xs: Vec<Vec<f32>> = (0..n)
            .map(|i| vec![i as f32 / n as f32 * 2.0 - 1.0])
            .collect();
        let ys = xs.iter().map(|x| x[0]).collect();
        (xs, ys)
    }

    #[test]
    fn predictions_are_bin_centers() {
        let (xs, ys) = ramp(200);
        let mut m = make(16, 1024, 1);
        m.fit(&xs, &ys);
        let centers = m.bin_centers();
        for x in xs.iter().step_by(17) {
            let p = m.predict_one(x);
            assert!(
                centers.iter().any(|&c| (c - p).abs() < 1e-6),
                "{p} is not a bin centre"
            );
        }
    }

    #[test]
    fn quantisation_error_floor() {
        // Even a perfect classifier cannot beat the bin-width² / 12 floor —
        // the discreteness RegHD's Table 1 exposes.
        let (xs, ys) = ramp(400);
        let mut coarse = make(4, 2048, 2);
        let mut fine = make(64, 2048, 2);
        coarse.fit(&xs, &ys);
        fine.fit(&xs, &ys);
        let mse = |m: &BaselineHd| {
            xs.iter()
                .zip(&ys)
                .map(|(x, &y)| {
                    let e = m.predict_one(x) - y;
                    e * e
                })
                .sum::<f32>()
                / ys.len() as f32
        };
        let mse_coarse = mse(&coarse);
        let mse_fine = mse(&fine);
        // Coarse bins: width 0.5 → floor ≈ 0.0208. Must be visible.
        assert!(mse_coarse > 0.01, "coarse mse = {mse_coarse}");
        assert!(
            mse_fine < mse_coarse,
            "more bins must reduce error: {mse_fine} vs {mse_coarse}"
        );
    }

    #[test]
    fn learns_monotone_mapping() {
        let (xs, ys) = ramp(300);
        let mut m = make(32, 2048, 3);
        m.fit(&xs, &ys);
        let p_low = m.predict_one(&[-0.9]);
        let p_mid = m.predict_one(&[0.0]);
        let p_high = m.predict_one(&[0.9]);
        assert!(p_low < p_mid && p_mid < p_high, "{p_low} {p_mid} {p_high}");
    }

    #[test]
    fn constant_targets_are_handled() {
        let xs: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32]).collect();
        let ys = vec![3.0f32; 20];
        let mut m = make(8, 512, 4);
        m.fit(&xs, &ys);
        let p = m.predict_one(&[5.0]);
        assert!((p - 3.0).abs() < 0.5, "p = {p}");
    }

    #[test]
    fn name_includes_bins() {
        assert_eq!(make(64, 256, 0).name(), "Baseline-HD(64)");
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_before_fit_panics() {
        make(8, 256, 0).predict_one(&[0.0]);
    }

    #[test]
    #[should_panic(expected = "at least 2 bins")]
    fn one_bin_panics() {
        make(1, 256, 0);
    }
}
