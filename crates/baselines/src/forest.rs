//! Random-forest regression: bagged CART trees with per-tree bootstrap
//! resampling. A stronger classical comparator than the single decision
//! tree of Table 1, included for the extended model zoo.

use crate::tree::{TreeConfig, TreeRegressor};
use hdc::rng::HdRng;
use reghd::{FitReport, Regressor};

/// Hyper-parameters for [`ForestRegressor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForestConfig {
    /// Number of bagged trees.
    pub trees: usize,
    /// Per-tree CART settings.
    pub tree: TreeConfig,
    /// Bootstrap seed.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        Self {
            trees: 30,
            tree: TreeConfig {
                max_depth: 10,
                min_samples_leaf: 3,
            },
            seed: 0,
        }
    }
}

/// Bagged regression forest.
///
/// # Examples
///
/// ```
/// use baselines::forest::{ForestRegressor, ForestConfig};
/// use reghd::Regressor;
///
/// let xs: Vec<Vec<f32>> = (0..120).map(|i| vec![i as f32 / 60.0 - 1.0]).collect();
/// let ys: Vec<f32> = xs.iter().map(|x| x[0] * x[0]).collect();
/// let mut m = ForestRegressor::new(ForestConfig::default());
/// m.fit(&xs, &ys);
/// assert!((m.predict_one(&[0.5]) - 0.25).abs() < 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct ForestRegressor {
    config: ForestConfig,
    trees: Vec<TreeRegressor>,
}

impl ForestRegressor {
    /// Creates an untrained forest.
    ///
    /// # Panics
    ///
    /// Panics if `config.trees == 0`.
    pub fn new(config: ForestConfig) -> Self {
        assert!(config.trees > 0, "need at least one tree");
        Self {
            config,
            trees: Vec::new(),
        }
    }

    /// Number of fitted trees (0 before training).
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }
}

impl Regressor for ForestRegressor {
    fn fit(&mut self, features: &[Vec<f32>], targets: &[f32]) -> FitReport {
        assert_eq!(
            features.len(),
            targets.len(),
            "features and targets must have the same length"
        );
        assert!(!features.is_empty(), "cannot fit on empty data");
        let mut rng = HdRng::seed_from(self.config.seed ^ 0xF0_4E_57);
        self.trees.clear();
        let n = features.len();
        for _ in 0..self.config.trees {
            // Bootstrap resample with replacement.
            let idx: Vec<usize> = (0..n).map(|_| rng.next_below(n)).collect();
            let boot_x: Vec<Vec<f32>> = idx.iter().map(|&i| features[i].clone()).collect();
            let boot_y: Vec<f32> = idx.iter().map(|&i| targets[i]).collect();
            let mut tree = TreeRegressor::new(self.config.tree);
            tree.fit(&boot_x, &boot_y);
            self.trees.push(tree);
        }
        let preds: Vec<f32> = features.iter().map(|x| self.predict_one(x)).collect();
        let mse = (preds
            .iter()
            .zip(targets)
            .map(|(&p, &t)| (p as f64 - t as f64).powi(2))
            .sum::<f64>()
            / targets.len() as f64) as f32;
        FitReport {
            epochs: 1,
            train_mse_history: vec![mse],
            converged: true,
        }
    }

    fn predict_one(&self, x: &[f32]) -> f32 {
        assert!(!self.trees.is_empty(), "predict before fit");
        (self
            .trees
            .iter()
            .map(|t| t.predict_one(x) as f64)
            .sum::<f64>()
            / self.trees.len() as f64) as f32
    }

    fn name(&self) -> String {
        format!("RandomForest-{}", self.config.trees)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::rng::HdRng;

    fn noisy_task(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<f32>) {
        let mut rng = HdRng::seed_from(seed);
        let xs: Vec<Vec<f32>> = (0..n)
            .map(|_| vec![rng.next_f32() * 2.0 - 1.0, rng.next_f32() * 2.0 - 1.0])
            .collect();
        let ys = xs
            .iter()
            .map(|x| (3.0 * x[0]).sin() + x[1] + 0.2 * rng.next_gaussian() as f32)
            .collect();
        (xs, ys)
    }

    #[test]
    fn forest_beats_single_tree_out_of_sample() {
        let (train_x, train_y) = noisy_task(300, 1);
        let (test_x, test_y) = noisy_task(300, 2);
        let mut tree = TreeRegressor::new(TreeConfig {
            max_depth: 10,
            min_samples_leaf: 3,
        });
        let mut forest = ForestRegressor::new(ForestConfig::default());
        tree.fit(&train_x, &train_y);
        forest.fit(&train_x, &train_y);
        let mse = |m: &dyn Regressor| {
            test_x
                .iter()
                .zip(&test_y)
                .map(|(x, &y)| {
                    let e = m.predict_one(x) - y;
                    (e * e) as f64
                })
                .sum::<f64>()
                / test_y.len() as f64
        };
        let mse_tree = mse(&tree);
        let mse_forest = mse(&forest);
        assert!(
            mse_forest < mse_tree,
            "bagging should reduce variance: forest {mse_forest} vs tree {mse_tree}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (xs, ys) = noisy_task(100, 3);
        let mut a = ForestRegressor::new(ForestConfig::default());
        let mut b = ForestRegressor::new(ForestConfig::default());
        a.fit(&xs, &ys);
        b.fit(&xs, &ys);
        assert_eq!(a.predict_one(&xs[0]), b.predict_one(&xs[0]));
    }

    #[test]
    fn tree_count_accessor() {
        let (xs, ys) = noisy_task(50, 4);
        let mut m = ForestRegressor::new(ForestConfig {
            trees: 7,
            ..ForestConfig::default()
        });
        assert_eq!(m.tree_count(), 0);
        m.fit(&xs, &ys);
        assert_eq!(m.tree_count(), 7);
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_panics() {
        ForestRegressor::new(ForestConfig {
            trees: 0,
            ..ForestConfig::default()
        });
    }

    #[test]
    fn name_includes_size() {
        let m = ForestRegressor::new(ForestConfig {
            trees: 12,
            ..ForestConfig::default()
        });
        assert_eq!(m.name(), "RandomForest-12");
    }
}
