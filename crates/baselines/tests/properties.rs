//! Property-based tests for the baseline learners: generic invariants that
//! must hold for arbitrary (bounded) training data.

use baselines::forest::{ForestConfig, ForestRegressor};
use baselines::gbt::{GbtConfig, GbtRegressor};
use baselines::knn::{KnnRegressor, KnnWeighting};
use baselines::mlp::{MlpConfig, MlpRegressor};
use baselines::svr::{SvrConfig, SvrKernel, SvrRegressor};
use baselines::tree::{TreeConfig, TreeRegressor};
use baselines::{LinearRegressor, MeanRegressor};
use proptest::prelude::*;
use reghd::Regressor;

fn problem() -> impl Strategy<Value = (Vec<Vec<f32>>, Vec<f32>)> {
    (8usize..30).prop_flat_map(|n| {
        (
            prop::collection::vec(prop::collection::vec(-5.0f32..5.0, 2), n),
            prop::collection::vec(-5.0f32..5.0, n),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn every_learner_fits_and_predicts_finite((xs, ys) in problem()) {
        let mut zoo: Vec<Box<dyn Regressor>> = vec![
            Box::new(MeanRegressor::new()),
            Box::new(LinearRegressor::new(1e-4)),
            Box::new(TreeRegressor::new(TreeConfig::default())),
            Box::new(ForestRegressor::new(ForestConfig {
                trees: 5,
                ..ForestConfig::default()
            })),
            Box::new(GbtRegressor::new(GbtConfig {
                rounds: 10,
                ..GbtConfig::default()
            })),
            Box::new(KnnRegressor::new(3, KnnWeighting::Uniform)),
            Box::new(SvrRegressor::new(2, SvrConfig {
                kernel: SvrKernel::Linear,
                epochs: 10,
                ..SvrConfig::default()
            })),
            Box::new(MlpRegressor::new(2, MlpConfig {
                epochs: 5,
                ..MlpConfig::default()
            })),
        ];
        for m in &mut zoo {
            let report = m.fit(&xs, &ys);
            prop_assert!(report.epochs >= 1, "{}", m.name());
            let p = m.predict_one(&xs[0]);
            prop_assert!(p.is_finite(), "{} produced {}", m.name(), p);
        }
    }

    #[test]
    fn tree_predictions_stay_within_target_range((xs, ys) in problem()) {
        // Leaf values are means of training targets, so predictions are
        // bounded by the target range.
        let mut t = TreeRegressor::new(TreeConfig::default());
        t.fit(&xs, &ys);
        let lo = ys.iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = ys.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        for x in xs.iter().take(5) {
            let p = t.predict_one(x);
            prop_assert!(p >= lo - 1e-4 && p <= hi + 1e-4, "{} outside [{}, {}]", p, lo, hi);
        }
    }

    #[test]
    fn knn_predictions_stay_within_target_range((xs, ys) in problem()) {
        let mut m = KnnRegressor::new(3, KnnWeighting::InverseDistance);
        m.fit(&xs, &ys);
        let lo = ys.iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = ys.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        for x in xs.iter().take(5) {
            let p = m.predict_one(x);
            prop_assert!(p >= lo - 1e-4 && p <= hi + 1e-4);
        }
    }

    #[test]
    fn mean_regressor_is_translation_equivariant((xs, ys) in problem(), shift in -10.0f32..10.0) {
        let mut a = MeanRegressor::new();
        let mut b = MeanRegressor::new();
        a.fit(&xs, &ys);
        let shifted: Vec<f32> = ys.iter().map(|&y| y + shift).collect();
        b.fit(&xs, &shifted);
        prop_assert!((b.predict_one(&xs[0]) - a.predict_one(&xs[0]) - shift).abs() < 1e-3);
    }

    #[test]
    fn linear_regressor_is_scale_equivariant((xs, ys) in problem(), k in 0.1f32..10.0) {
        let mut a = LinearRegressor::new(1e-9);
        let mut b = LinearRegressor::new(1e-9);
        a.fit(&xs, &ys);
        let scaled: Vec<f32> = ys.iter().map(|&y| k * y).collect();
        b.fit(&xs, &scaled);
        let pa = a.predict_one(&xs[0]);
        let pb = b.predict_one(&xs[0]);
        prop_assert!(
            (pb - k * pa).abs() < 1e-2 * (1.0 + pa.abs() * k),
            "k·f(x) equivariance broken: {} vs {}",
            pb,
            k * pa
        );
    }

    #[test]
    fn forest_prediction_is_between_tree_extremes((xs, ys) in problem()) {
        // The bagged mean lies within the per-tree prediction envelope.
        let mut forest = ForestRegressor::new(ForestConfig {
            trees: 7,
            ..ForestConfig::default()
        });
        forest.fit(&xs, &ys);
        // Predictions stay within the global target range (each tree does).
        let lo = ys.iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = ys.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let p = forest.predict_one(&xs[0]);
        prop_assert!(p >= lo - 1e-4 && p <= hi + 1e-4);
    }

    #[test]
    fn gbt_training_error_is_monotone_nonincreasing((xs, ys) in problem()) {
        let mut m = GbtRegressor::new(GbtConfig {
            rounds: 15,
            shrinkage: 0.3,
            ..GbtConfig::default()
        });
        let report = m.fit(&xs, &ys);
        for w in report.train_mse_history.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-4, "residual MSE increased: {:?}", w);
        }
    }
}
