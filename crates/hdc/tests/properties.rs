//! Property-based tests for the HD computing substrate.
//!
//! These pin down the algebraic invariants that the RegHD layers above rely
//! on: metric properties of Hamming distance, bit-pack round-trips,
//! cosine bounds and scale invariance, softmax normalisation, and the
//! cosine/Hamming correspondence for bipolar vectors.

use hdc::rng::HdRng;
use hdc::similarity::{
    argmax, cosine, hamming_distance, hamming_similarity, softmax, squared_euclidean,
};
use hdc::{BinaryHv, BipolarHv, RealHv};
use proptest::prelude::*;

/// Strategy: a binary hypervector of the given width built from random bits.
fn binary_hv(dim: usize) -> impl Strategy<Value = BinaryHv> {
    prop::collection::vec(any::<bool>(), dim).prop_map(move |bits| BinaryHv::from_bits(dim, bits))
}

/// Strategy: a real hypervector with bounded finite components.
fn real_hv(dim: usize) -> impl Strategy<Value = RealHv> {
    prop::collection::vec(-1000.0f32..1000.0, dim).prop_map(RealHv::from_vec)
}

proptest! {
    #[test]
    fn hamming_is_a_metric(a in binary_hv(192), b in binary_hv(192), c in binary_hv(192)) {
        // Identity of indiscernibles.
        prop_assert_eq!(hamming_distance(&a, &a), 0);
        // Symmetry.
        prop_assert_eq!(hamming_distance(&a, &b), hamming_distance(&b, &a));
        // Triangle inequality.
        prop_assert!(
            hamming_distance(&a, &c) <= hamming_distance(&a, &b) + hamming_distance(&b, &c)
        );
    }

    #[test]
    fn binary_bit_roundtrip(bits in prop::collection::vec(any::<bool>(), 1..300)) {
        let dim = bits.len();
        let hv = BinaryHv::from_bits(dim, bits.iter().copied());
        for (i, &bit) in bits.iter().enumerate() {
            prop_assert_eq!(hv.get(i), bit);
        }
        prop_assert_eq!(hv.count_ones(), bits.iter().filter(|&&b| b).count());
    }

    #[test]
    fn binary_set_then_get(dim in 1usize..200, ops in prop::collection::vec((0usize..200, any::<bool>()), 0..50)) {
        let mut hv = BinaryHv::zeros(dim);
        let mut reference = vec![false; dim];
        for (idx, val) in ops {
            let idx = idx % dim;
            hv.set(idx, val);
            reference[idx] = val;
        }
        for (i, &r) in reference.iter().enumerate() {
            prop_assert_eq!(hv.get(i), r);
        }
    }

    #[test]
    fn xor_popcount_is_hamming(a in binary_hv(130), b in binary_hv(130)) {
        prop_assert_eq!(a.xor(&b).count_ones(), hamming_distance(&a, &b));
    }

    #[test]
    fn cosine_bounded_and_symmetric(a in real_hv(64), b in real_hv(64)) {
        let c = cosine(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&c));
        prop_assert!((c - cosine(&b, &a)).abs() < 1e-5);
    }

    #[test]
    fn cosine_scale_invariant(a in real_hv(64), b in real_hv(64), k in 0.001f32..100.0) {
        let mut bk = b.clone();
        bk.scale(k);
        let c1 = cosine(&a, &b);
        let c2 = cosine(&a, &bk);
        prop_assert!((c1 - c2).abs() < 1e-3, "c1={} c2={}", c1, c2);
    }

    #[test]
    fn dot_bilinear(a in real_hv(32), b in real_hv(32), k in -10.0f32..10.0) {
        let mut ak = a.clone();
        ak.scale(k);
        let lhs = ak.dot(&b);
        let rhs = k * a.dot(&b);
        // Relative tolerance: magnitudes can reach ~1e7.
        prop_assert!((lhs - rhs).abs() <= 1e-3 * (1.0 + rhs.abs()));
    }

    #[test]
    fn softmax_is_distribution(scores in prop::collection::vec(-50.0f32..50.0, 1..20), beta in 0.01f32..20.0) {
        let conf = softmax(&scores, beta);
        prop_assert_eq!(conf.len(), scores.len());
        let sum: f32 = conf.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4, "sum = {}", sum);
        prop_assert!(conf.iter().all(|&c| (0.0..=1.0 + 1e-6).contains(&c)));
    }

    #[test]
    fn softmax_argmax_consistent(scores in prop::collection::vec(-5.0f32..5.0, 1..10)) {
        // The most-confident cluster is the most-similar cluster.
        let conf = softmax(&scores, 3.0);
        let am_scores = argmax(&scores).unwrap();
        let am_conf = argmax(&conf).unwrap();
        // With ties, indexes can differ but the confidence values cannot.
        prop_assert!((conf[am_scores] - conf[am_conf]).abs() < 1e-6);
    }

    #[test]
    fn bipolar_cosine_equals_hamming_similarity(signs in prop::collection::vec(any::<bool>(), 1..256)) {
        let bp = BipolarHv::from_signs(signs.iter().copied());
        let bn = bp.to_binary();
        // Against an independent reference vector derived from the seed.
        let mut rng = HdRng::seed_from(signs.len() as u64);
        let other = BipolarHv::random(signs.len(), &mut rng);
        let cos = cosine(&bp.to_real(), &other.to_real());
        let ham = hamming_similarity(&bn, &other.to_binary());
        prop_assert!((cos - ham).abs() < 1e-4, "cos={} ham={}", cos, ham);
    }

    #[test]
    fn bind_preserves_distance(signs_a in prop::collection::vec(any::<bool>(), 64..128)) {
        // Binding by a fixed key is an isometry of Hamming space.
        let dim = signs_a.len();
        let a = BipolarHv::from_signs(signs_a.iter().copied());
        let mut rng = HdRng::seed_from(dim as u64 + 7);
        let b = BipolarHv::random(dim, &mut rng);
        let key = BipolarHv::random(dim, &mut rng);
        let d_before = hamming_distance(&a.to_binary(), &b.to_binary());
        let d_after = hamming_distance(&a.bind(&key).to_binary(), &b.bind(&key).to_binary());
        prop_assert_eq!(d_before, d_after);
    }

    #[test]
    fn binarize_idempotent_through_signed_form(v in real_hv(96)) {
        // binarize(x) == binarize(to_real_signed(binarize(x)))
        let b1 = v.binarize();
        let b2 = b1.to_real_signed().binarize();
        prop_assert_eq!(b1, b2);
    }

    #[test]
    fn squared_euclidean_nonnegative_and_zero_iff_equal(a in real_hv(48)) {
        prop_assert_eq!(squared_euclidean(&a, &a), 0.0);
        let mut b = a.clone();
        if !b.is_empty() {
            b.as_mut_slice()[0] += 1.0;
            prop_assert!(squared_euclidean(&a, &b) > 0.0);
        }
    }

    #[test]
    fn rng_next_below_uniformity(seed in any::<u64>(), bound in 1usize..100) {
        let mut rng = HdRng::seed_from(seed);
        for _ in 0..100 {
            prop_assert!(rng.next_below(bound) < bound);
        }
    }

    #[test]
    fn permute_composes(signs in prop::collection::vec(any::<bool>(), 2..64), s1 in 0usize..64, s2 in 0usize..64) {
        let v = BipolarHv::from_signs(signs.iter().copied());
        let lhs = v.permute(s1).permute(s2);
        let rhs = v.permute(s1 + s2);
        prop_assert_eq!(lhs, rhs);
    }
}
