//! Explicit-SIMD kernel dispatch: AVX2 (x86_64) and NEON (aarch64)
//! implementations of the projection kernels and the fast trigonometry,
//! selected once at startup and **bit-identical** to the scalar blocked
//! kernels.
//!
//! # Dispatch
//!
//! The active instruction set is a process-wide atomic knob:
//!
//! * [`detect`] probes the CPU once (`is_x86_feature_detected!("avx2")` on
//!   x86_64 — AVX2 paths also require `popcnt`; aarch64 always has NEON).
//! * The first call to [`active`] initialises the knob from the
//!   `REGHD_SIMD` environment variable (`auto`, `avx2`, `neon`, `scalar`;
//!   anything else, or a level the CPU cannot run, falls back to `scalar`)
//!   or from [`detect`] when the variable is unset.
//! * [`set_preference`] implements the `--simd` CLI flag: `auto` selects
//!   [`detect`], a named level is validated against the CPU and rejected
//!   with an error if unsupported.
//!
//! # Bit-identity by construction
//!
//! Every SIMD projection kernel vectorises **across output dimensions**:
//! each SIMD lane is the accumulator of one output dim, the `k` (feature)
//! reduction stays a scalar-ordered loop, and multiplies and adds are
//! issued as separate (non-fused) instructions. Per lane this is exactly
//! the scalar sequence `acc = (acc + x[k]·w[k])` in ascending `k` from
//! `0.0f32`, so the result is bit-identical to
//! [`crate::kernels::project_blocked`]'s scalar path — the property the
//! repo-wide equivalence suite asserts.
//!
//! The fast-trig path is trickier: the scalar range reduction uses
//! `f64::round` (round-half-away-from-zero), which has no direct AVX2
//! equivalent (`roundpd` rounds ties to even). The SIMD version emulates
//! half-away exactly — round-to-nearest, then a tie fixup to
//! `trunc(x) ± 1` on lanes where `|x − nearest| == 0.5` — so every lane
//! reproduces the scalar [`crate::kernels::fast_sin`]/
//! [`crate::kernels::fast_cos`] bit-for-bit on finite inputs. (Non-finite
//! inputs produce NaN on both paths; the NaN sign bit is unspecified.)
//!
//! # Quantised-tier primitives
//!
//! The int8 dot kernel ([`dot_i8`]) and the popcount helpers
//! ([`popcount_words`], [`hamming_words`]) back the bit-packed inference
//! tier; both are integer-exact, so dispatch never changes their results.

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicU8, Ordering};

use crate::dense::RealHv;

/// Instruction-set level the kernels dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// Portable scalar blocked kernels — the reference implementation.
    Scalar,
    /// 256-bit AVX2 (+`popcnt`) paths, x86_64 only.
    Avx2,
    /// 128-bit NEON paths, aarch64 only.
    Neon,
}

impl SimdLevel {
    /// Stable label used in result JSONs and the `stats` output.
    pub fn label(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Neon => "neon",
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            SimdLevel::Scalar => 1,
            SimdLevel::Avx2 => 2,
            SimdLevel::Neon => 3,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(SimdLevel::Scalar),
            2 => Some(SimdLevel::Avx2),
            3 => Some(SimdLevel::Neon),
            _ => None,
        }
    }
}

/// `0` = uninitialised; otherwise `SimdLevel::as_u8`.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

/// The best level this CPU can run, probed at most once per process.
pub fn detect() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("popcnt")
        {
            return SimdLevel::Avx2;
        }
        SimdLevel::Scalar
    }
    #[cfg(target_arch = "aarch64")]
    {
        // NEON is mandatory in AArch64.
        SimdLevel::Neon
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        SimdLevel::Scalar
    }
}

fn supported(level: SimdLevel) -> bool {
    level == SimdLevel::Scalar || level == detect()
}

fn init_from_env() -> SimdLevel {
    let level = match std::env::var("REGHD_SIMD").ok().as_deref() {
        Some("scalar") => SimdLevel::Scalar,
        Some("avx2") if supported(SimdLevel::Avx2) => SimdLevel::Avx2,
        Some("neon") if supported(SimdLevel::Neon) => SimdLevel::Neon,
        Some("auto") | None => detect(),
        // Unknown value, or a level this CPU cannot run: the conservative
        // choice keeps forced-environment runs (CI) predictable.
        Some(_) => SimdLevel::Scalar,
    };
    ACTIVE.store(level.as_u8(), Ordering::Relaxed);
    level
}

/// The instruction set the kernels currently dispatch to.
pub fn active() -> SimdLevel {
    match SimdLevel::from_u8(ACTIVE.load(Ordering::Relaxed)) {
        Some(level) => level,
        None => init_from_env(),
    }
}

/// Label of [`active`] — the `"simd"` field every perf-result JSON records.
pub fn active_label() -> &'static str {
    active().label()
}

/// Forces a dispatch level. Fails (leaving the knob unchanged) when the CPU
/// cannot run `level`. Used by benches and the forced-level tests; serving
/// selects once at startup via [`set_preference`].
pub fn set_level(level: SimdLevel) -> Result<(), String> {
    if !supported(level) {
        return Err(format!(
            "simd level '{}' is not supported on this CPU (detected: '{}')",
            level.label(),
            detect().label()
        ));
    }
    ACTIVE.store(level.as_u8(), Ordering::Relaxed);
    Ok(())
}

/// Applies a `--simd auto|avx2|neon|scalar` preference. `auto` resolves to
/// [`detect`]; a named level must be runnable on this CPU. Returns the level
/// that became active.
pub fn set_preference(pref: &str) -> Result<SimdLevel, String> {
    let level = match pref {
        "auto" => detect(),
        "scalar" => SimdLevel::Scalar,
        "avx2" => SimdLevel::Avx2,
        "neon" => SimdLevel::Neon,
        other => {
            return Err(format!(
                "unknown simd preference '{other}' (expected auto|avx2|neon|scalar)"
            ))
        }
    };
    set_level(level)?;
    Ok(level)
}

// ---------------------------------------------------------------------------
// Packed projection: weights re-laid-out lane-major so the SIMD row-major
// projection needs no per-call transpose.
// ---------------------------------------------------------------------------

/// A row-major `dim × n` projection matrix re-packed for the active SIMD
/// level: full groups of `lanes` output dims are stored `k`-major
/// (`wt[(g·n + k)·lanes + j] = weights[(g·lanes + j)·n + k]`), and the final
/// partial group is kept row-major in `rem`. Encoders build one of these
/// lazily and fall back to [`crate::kernels::project_blocked`] whenever the
/// active level changes from the packed one.
#[derive(Debug)]
pub struct PackedProjection {
    level: SimdLevel,
    wt: Vec<f32>,
    /// Row-major rows for the `dim % lanes` remainder output dims.
    rem: Vec<f32>,
    input_dim: usize,
    dim: usize,
}

impl PackedProjection {
    /// Packs `weights` for the currently active level; `None` when the
    /// active level is scalar (no packing needed — the blocked kernel is the
    /// scalar path).
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != dim * input_dim`.
    pub fn for_active(weights: &[f32], input_dim: usize, dim: usize) -> Option<Self> {
        assert_eq!(weights.len(), dim * input_dim, "weights must be dim × n");
        let level = active();
        let lanes = match level {
            SimdLevel::Scalar => return None,
            SimdLevel::Avx2 => 8,
            SimdLevel::Neon => 4,
        };
        let full = dim / lanes * lanes;
        let mut wt = vec![0.0f32; full * input_dim];
        for g in 0..dim / lanes {
            for j in 0..lanes {
                let row = &weights[(g * lanes + j) * input_dim..(g * lanes + j + 1) * input_dim];
                for (k, &w) in row.iter().enumerate() {
                    wt[(g * input_dim + k) * lanes + j] = w;
                }
            }
        }
        let rem = weights[full * input_dim..].to_vec();
        Some(Self {
            level,
            wt,
            rem,
            input_dim,
            dim,
        })
    }

    /// The level this packing targets.
    pub fn level(&self) -> SimdLevel {
        self.level
    }

    /// Projects a batch of rows: `outs[r][d] = Σ_k rows[r][k] · W[d][k]`,
    /// bit-identical to the scalar path. Callers must have validated row
    /// widths; each output is resized to `dim` and fully overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `rows` and `outs` disagree in length or a row is not
    /// `input_dim` wide.
    pub fn project_into(&self, rows: &[&[f32]], outs: &mut [RealHv]) {
        assert_eq!(rows.len(), outs.len(), "rows/outs length mismatch");
        for row in rows {
            assert_eq!(row.len(), self.input_dim, "row width must match input_dim");
        }
        for out in outs.iter_mut() {
            out.reset(self.dim);
        }
        match self.level {
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 => unsafe {
                avx2::project_packed(&self.wt, &self.rem, self.input_dim, self.dim, rows, outs)
            },
            #[cfg(target_arch = "aarch64")]
            SimdLevel::Neon => unsafe {
                neon::project_packed(&self.wt, &self.rem, self.input_dim, self.dim, rows, outs)
            },
            _ => unreachable!("PackedProjection is only built for SIMD levels"),
        }
    }
}

// ---------------------------------------------------------------------------
// Dispatched kernel entry points (called from `crate::kernels` after shape
// validation and output reset).
// ---------------------------------------------------------------------------

/// SIMD row-major projection with a per-call lane-transpose of each weight
/// subtile (amortised across the batch). Caller has validated shapes and
/// reset outputs. Returns `false` when the active level is scalar so the
/// caller can run the blocked path.
pub(crate) fn project_rowmajor_simd(
    weights: &[f32],
    input_dim: usize,
    dim: usize,
    rows: &[&[f32]],
    outs: &mut [RealHv],
) -> bool {
    match active() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => {
            unsafe { avx2::project_rowmajor(weights, input_dim, dim, rows, outs) };
            true
        }
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => {
            unsafe { neon::project_rowmajor(weights, input_dim, dim, rows, outs) };
            true
        }
        _ => false,
    }
}

/// SIMD transposed-bipolar projection (`outs[r][d] += rows[r][k] ·
/// bases[k][d]`, `k` outer). Caller has validated shapes and reset outputs.
/// Returns `false` when the active level is scalar.
pub(crate) fn project_bipolar_simd(
    bases: &[crate::bipolar::BipolarHv],
    dim: usize,
    rows: &[&[f32]],
    outs: &mut [RealHv],
) -> bool {
    match active() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => {
            unsafe { avx2::project_bipolar(bases, dim, rows, outs) };
            true
        }
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => {
            unsafe { neon::project_bipolar(bases, dim, rows, outs) };
            true
        }
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// Fast-trig post-ops (TrigMode::Fast only; the Exact path stays libm).
// ---------------------------------------------------------------------------

/// In-place `v[d] = fast_cos(v[d] + phases[d]) · fast_sin(v[d])` — the
/// `NonlinearEncoder` post-op — dispatched to the active level and
/// bit-identical to the scalar loop.
///
/// # Panics
///
/// Panics if `vals` and `phases` differ in length.
pub fn nonlinear_post_fast(vals: &mut [f32], phases: &[f32]) {
    assert_eq!(vals.len(), phases.len(), "vals/phases length mismatch");
    match active() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { avx2::nonlinear_post(vals, phases) },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { neon::nonlinear_post(vals, phases) },
        _ => {
            for (v, &b) in vals.iter_mut().zip(phases) {
                let p = *v;
                *v = crate::kernels::fast_cos(p + b) * crate::kernels::fast_sin(p);
            }
        }
    }
}

/// In-place `v[d] = fast_cos(v[d] + phases[d])` — the `RffEncoder` post-op.
///
/// # Panics
///
/// Panics if `vals` and `phases` differ in length.
pub fn cos_phase_post_fast(vals: &mut [f32], phases: &[f32]) {
    assert_eq!(vals.len(), phases.len(), "vals/phases length mismatch");
    match active() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { avx2::cos_phase_post(vals, phases) },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { neon::cos_phase_post(vals, phases) },
        _ => {
            for (v, &b) in vals.iter_mut().zip(phases) {
                *v = crate::kernels::fast_cos(*v + b);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Quantised-tier integer primitives (dispatch never changes results —
// integer arithmetic is exact in any order).
// ---------------------------------------------------------------------------

/// Dot product of two i8 slices with i32 accumulation. The AVX2 path widens
/// to i16 and uses `pmaddwd`; sums of `len ≤ 2²⁵` products stay exact in
/// i32, far above any hypervector feature count.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    assert_eq!(a.len(), b.len(), "dot_i8: length mismatch");
    match active() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { avx2::dot_i8(a, b) },
        _ => a
            .iter()
            .zip(b)
            .map(|(&x, &y)| i32::from(x) * i32::from(y))
            .sum(),
    }
}

/// Integer projection of one quantised row against row-major i8 weights:
/// `out[d] = dot(w_d, row) · (scales[d] · row_scale)`, dispatched **once**
/// for the whole matvec — per-dim `dot_i8` calls would pay dispatch plus a
/// horizontal reduction per output component, which dominates at serving
/// widths. Bit-identical across levels: the integer dots are exact in any
/// order and every path scales with the same per-dim parenthesisation.
///
/// # Panics
///
/// Panics if `q` is not `out.len()·n` long, `scales` is not `out.len()`
/// long, or `row` is not `n` long.
pub fn project_i8_rowmajor(
    q: &[i8],
    n: usize,
    scales: &[f32],
    row: &[i8],
    row_scale: f32,
    out: &mut [f32],
) {
    assert_eq!(q.len(), out.len() * n, "weight matrix must be dim × n");
    assert_eq!(scales.len(), out.len(), "one scale per output dim");
    assert_eq!(row.len(), n, "row width must match n");
    match active() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { avx2::project_i8(q, n, scales, row, row_scale, out) },
        _ => {
            for (d, o) in out.iter_mut().enumerate() {
                let w = &q[d * n..(d + 1) * n];
                let dot: i32 = w
                    .iter()
                    .zip(row)
                    .map(|(&x, &y)| i32::from(x) * i32::from(y))
                    .sum();
                *o = dot as f32 * (scales[d] * row_scale);
            }
        }
    }
}

/// In-place quantised-tier nonlinear post-op over the int8 projection:
///
/// ```text
/// v[d] = 0.5 · fast_sin_f32(2·v[d] + phases[d]) − half_sin_phases[d]
/// ```
///
/// which is `cos(v + b) · sin(v)` rewritten through the product-to-sum
/// identity `sin(p)·cos(p + b) = ½·sin(2p + b) − ½·sin(b)` — one trig
/// evaluation per element instead of two, with `½·sin(b)` precomputed per
/// dimension by the encoder. Runs the all-f32 range reduction
/// ([`crate::kernels::fast_sin_f32`]), so the SIMD lanes never widen to f64;
/// bit-identical across dispatch levels (elementwise op, identical per-lane
/// sequence). Only the quantised tier uses this: the full-precision
/// `TrigMode::Fast` paths keep [`nonlinear_post_fast`]'s tighter bound.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn nonlinear_post_quant(vals: &mut [f32], phases: &[f32], half_sin_phases: &[f32]) {
    assert_eq!(vals.len(), phases.len(), "vals/phases length mismatch");
    assert_eq!(
        vals.len(),
        half_sin_phases.len(),
        "vals/half_sin_phases length mismatch"
    );
    match active() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { avx2::nonlinear_post_quant(vals, phases, half_sin_phases) },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { neon::nonlinear_post_quant(vals, phases, half_sin_phases) },
        _ => {
            for ((v, &b), &hs) in vals.iter_mut().zip(phases).zip(half_sin_phases) {
                let p = *v;
                *v = 0.5 * crate::kernels::fast_sin_f32(2.0 * p + b) - hs;
            }
        }
    }
}

/// In-place `v[d] = fast_cos_f32(v[d] + phases[d])` — the `RffEncoder`'s
/// quantised-tier post-op on the all-f32 range reduction. Bit-identical
/// across dispatch levels.
///
/// # Panics
///
/// Panics if `vals` and `phases` differ in length.
pub fn cos_phase_post_quant(vals: &mut [f32], phases: &[f32]) {
    assert_eq!(vals.len(), phases.len(), "vals/phases length mismatch");
    match active() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { avx2::cos_phase_post_quant(vals, phases) },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { neon::cos_phase_post_quant(vals, phases) },
        _ => {
            for (v, &b) in vals.iter_mut().zip(phases) {
                *v = crate::kernels::fast_cos_f32(*v + b);
            }
        }
    }
}

/// Packs the strict-positive mask of `vals` into little-endian bit words:
/// bit `d % 64` of `words[d / 64]` is set iff `vals[d] > 0.0` — the
/// `RealHv::binarize` threshold, vectorised (8 lanes compare + movemask per
/// iteration on AVX2). Comparison against zero is exact, so dispatch can
/// never change a bit. NaN compares false, like the scalar `>`.
///
/// # Panics
///
/// Panics if `words` is not exactly `vals.len().div_ceil(64)` long.
pub fn pack_signs(vals: &[f32], words: &mut [u64]) {
    assert_eq!(
        words.len(),
        vals.len().div_ceil(64),
        "pack_signs: one word per 64 values"
    );
    words.fill(0);
    match active() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { avx2::pack_signs(vals, words) },
        _ => {
            for (d, &v) in vals.iter().enumerate() {
                if v > 0.0 {
                    words[d / 64] |= 1u64 << (d % 64);
                }
            }
        }
    }
}

/// One-pass `(Σ|v|, Σv²)` over f32 values with **f64 accumulation in four
/// fixed lanes**: lane `l` accumulates elements `l, l+4, l+8, …` (tail
/// element `j` of a non-multiple-of-4 slice lands in lane `j`), and the
/// lanes combine as `((l0 + l1) + l2) + l3`. The scalar fallback simulates
/// the identical lane assignment, so dispatch never changes a bit — the
/// binary tier derives its amplitude statistic and encoding norm from this.
pub fn abs_sq_sums(vals: &[f32]) -> (f64, f64) {
    match active() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { avx2::abs_sq_sums(vals) },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { neon::abs_sq_sums(vals) },
        _ => scalar_abs_sq_sums(vals),
    }
}

/// The 4-lane-blocked reference for [`abs_sq_sums`] — also the tail/cleanup
/// path of the SIMD backends.
fn scalar_abs_sq_sums(vals: &[f32]) -> (f64, f64) {
    let mut abs_l = [0.0f64; 4];
    let mut sq_l = [0.0f64; 4];
    let mut chunks = vals.chunks_exact(4);
    for c in chunks.by_ref() {
        for (l, &v) in c.iter().enumerate() {
            let v = f64::from(v);
            abs_l[l] += v.abs();
            sq_l[l] += v * v;
        }
    }
    for (l, &v) in chunks.remainder().iter().enumerate() {
        let v = f64::from(v);
        abs_l[l] += v.abs();
        sq_l[l] += v * v;
    }
    (
        ((abs_l[0] + abs_l[1]) + abs_l[2]) + abs_l[3],
        ((sq_l[0] + sq_l[1]) + sq_l[2]) + sq_l[3],
    )
}

/// Total set bits across packed words (`popcnt`-accelerated where the
/// dispatch level allows).
pub fn popcount_words(words: &[u64]) -> usize {
    match active() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { avx2::popcount(words) },
        _ => words.iter().map(|w| w.count_ones() as usize).sum(),
    }
}

/// Hamming distance between two packed-word slices: `popcount(a ⊕ b)`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn hamming_words(a: &[u64], b: &[u64]) -> usize {
    assert_eq!(a.len(), b.len(), "hamming_words: length mismatch");
    match active() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { avx2::hamming(a, b) },
        _ => a
            .iter()
            .zip(b)
            .map(|(&x, &y)| (x ^ y).count_ones() as usize)
            .sum(),
    }
}

// ---------------------------------------------------------------------------
// AVX2 backend
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::RealHv;
    use crate::bipolar::BipolarHv;
    use core::arch::x86_64::*;

    /// Lane-major projection of one 8-dim group for every row: each lane is
    /// one output dim's accumulator, `k` ascends scalar-order, mul and add
    /// stay separate instructions — bit-identical to the scalar loop.
    ///
    /// # Safety
    ///
    /// Caller guarantees AVX2, `tr.len() >= n*8`, every row `n` wide, and
    /// `d + 8 <= out.dim` for every out slice.
    #[target_feature(enable = "avx2")]
    unsafe fn project_group(tr: &[f32], n: usize, d: usize, rows: &[&[f32]], outs: &mut [RealHv]) {
        for (x, o) in rows.iter().zip(outs.iter_mut()) {
            let x = &x[..n];
            let mut acc = _mm256_setzero_ps();
            for (k, &xk) in x.iter().enumerate() {
                let w = _mm256_loadu_ps(tr.as_ptr().add(k * 8));
                acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(xk), w));
            }
            _mm256_storeu_ps(o.as_mut_slice().as_mut_ptr().add(d), acc);
        }
    }

    /// Scalar remainder dims (fewer than 8 left): ascending-`k` accumulator
    /// per (row, dim), exactly the blocked kernel's remainder loop.
    fn project_rem(
        weights_rows: &[f32],
        n: usize,
        d0: usize,
        ndims: usize,
        rows: &[&[f32]],
        outs: &mut [RealHv],
    ) {
        for j in 0..ndims {
            let w = &weights_rows[j * n..(j + 1) * n];
            for (x, o) in rows.iter().zip(outs.iter_mut()) {
                let x = &x[..n];
                let mut a = 0.0f32;
                for k in 0..n {
                    a += x[k] * w[k];
                }
                o.as_mut_slice()[d0 + j] = a;
            }
        }
    }

    /// Row-major projection with a per-call transpose of each 8-dim weight
    /// subtile into a `k`-major scratch (amortised across the batch rows).
    ///
    /// # Safety
    ///
    /// Caller guarantees AVX2 and validated shapes (`weights` is
    /// `dim × n`, rows `n` wide, outs reset to `dim`).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn project_rowmajor(
        weights: &[f32],
        n: usize,
        dim: usize,
        rows: &[&[f32]],
        outs: &mut [RealHv],
    ) {
        let mut tr = vec![0.0f32; n * 8];
        let mut d = 0;
        while d + 8 <= dim {
            for j in 0..8 {
                let row = &weights[(d + j) * n..(d + j + 1) * n];
                for (k, &w) in row.iter().enumerate() {
                    tr[k * 8 + j] = w;
                }
            }
            project_group(&tr, n, d, rows, outs);
            d += 8;
        }
        if d < dim {
            project_rem(&weights[d * n..], n, d, dim - d, rows, outs);
        }
    }

    /// Pre-packed (lane-major) projection: full groups from `wt`, remainder
    /// dims from the row-major `rem` copy.
    ///
    /// # Safety
    ///
    /// Caller guarantees AVX2 and the `PackedProjection` layout invariants.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn project_packed(
        wt: &[f32],
        rem: &[f32],
        n: usize,
        dim: usize,
        rows: &[&[f32]],
        outs: &mut [RealHv],
    ) {
        let full = dim / 8 * 8;
        for g in 0..dim / 8 {
            project_group(&wt[g * n * 8..(g + 1) * n * 8], n, g * 8, rows, outs);
        }
        if full < dim {
            project_rem(rem, n, full, dim - full, rows, outs);
        }
    }

    /// Transposed-bipolar projection: `k` outer (scalar-ordered), 8 dims per
    /// SIMD group with the exact `i8 → f32` conversion shared across a
    /// 4-row tile, accumulators held in registers across the whole `k`
    /// sweep.
    ///
    /// # Safety
    ///
    /// Caller guarantees AVX2 and validated shapes (bases `dim` wide, rows
    /// `bases.len()` wide, outs reset to `dim`).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn project_bipolar(
        bases: &[BipolarHv],
        dim: usize,
        rows: &[&[f32]],
        outs: &mut [RealHv],
    ) {
        let mut d = 0;
        while d + 8 <= dim {
            let mut r = 0;
            while r < rows.len() {
                let tile = (rows.len() - r).min(4);
                let mut acc = [_mm256_setzero_ps(); 4];
                for (k, base) in bases.iter().enumerate() {
                    let ptr = base.as_slice().as_ptr().add(d) as *const __m128i;
                    let b8 = _mm_loadl_epi64(ptr);
                    let bf = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(b8));
                    for (t, a) in acc.iter_mut().enumerate().take(tile) {
                        let f = _mm256_set1_ps(rows[r + t][k]);
                        *a = _mm256_add_ps(*a, _mm256_mul_ps(f, bf));
                    }
                }
                for (t, a) in acc.iter().enumerate().take(tile) {
                    _mm256_storeu_ps(outs[r + t].as_mut_slice().as_mut_ptr().add(d), *a);
                }
                r += tile;
            }
            d += 8;
        }
        // Remainder dims: scalar, same per-(row, d) ascending-k order.
        while d < dim {
            for (x, o) in rows.iter().zip(outs.iter_mut()) {
                let mut a = 0.0f32;
                for (k, base) in bases.iter().enumerate() {
                    a += x[k] * f32::from(base.as_slice()[d]);
                }
                o.as_mut_slice()[d] = a;
            }
            d += 1;
        }
    }

    // -- fast trig ---------------------------------------------------------

    /// `f64::round` (round-half-away-from-zero) on 4 f64 lanes: nearest-even
    /// hardware rounding plus a tie fixup to `trunc(x) ± 1`, exact on every
    /// finite lane.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn round_half_away(x: __m256d) -> __m256d {
        let nearest = _mm256_round_pd::<{ _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC }>(x);
        let diff = _mm256_sub_pd(x, nearest);
        let absmask = _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fff_ffff_ffff_ffff));
        let tie = _mm256_cmp_pd::<_CMP_EQ_OQ>(_mm256_and_pd(diff, absmask), _mm256_set1_pd(0.5));
        let signbit = _mm256_andnot_pd(absmask, x);
        let away = _mm256_add_pd(
            _mm256_round_pd::<{ _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC }>(x),
            _mm256_or_pd(signbit, _mm256_set1_pd(1.0)),
        );
        _mm256_blendv_pd(nearest, away, tie)
    }

    /// 4-lane `reduce_quarter`: same f64 op sequence as the scalar version,
    /// quadrant via exact `k mod 4` arithmetic on the integral `k`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn reduce4(x: __m128) -> (__m128i, __m128) {
        let xd = _mm256_cvtps_pd(x);
        let k = round_half_away(_mm256_mul_pd(
            xd,
            _mm256_set1_pd(std::f64::consts::FRAC_2_PI),
        ));
        let r = _mm256_cvtpd_ps(_mm256_sub_pd(
            xd,
            _mm256_mul_pd(k, _mm256_set1_pd(std::f64::consts::FRAC_PI_2)),
        ));
        // k mod 4 (euclidean), exact in f64 for integral k: k − 4·⌊k/4⌋.
        let m = _mm256_sub_pd(
            k,
            _mm256_mul_pd(
                _mm256_floor_pd(_mm256_mul_pd(k, _mm256_set1_pd(0.25))),
                _mm256_set1_pd(4.0),
            ),
        );
        (_mm256_cvtpd_epi32(m), r)
    }

    /// Taylor sine on the reduced range — the scalar `sin_poly` Horner
    /// chain, per lane.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn sin_poly4(r: __m128) -> __m128 {
        let r2 = _mm_mul_ps(r, r);
        let mut p = _mm_set1_ps(-1.0 / 5040.0);
        p = _mm_add_ps(_mm_set1_ps(1.0 / 120.0), _mm_mul_ps(r2, p));
        p = _mm_add_ps(_mm_set1_ps(-1.0 / 6.0), _mm_mul_ps(r2, p));
        p = _mm_add_ps(_mm_set1_ps(1.0), _mm_mul_ps(r2, p));
        _mm_mul_ps(r, p)
    }

    /// Taylor cosine on the reduced range — the scalar `cos_poly` chain.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn cos_poly4(r: __m128) -> __m128 {
        let r2 = _mm_mul_ps(r, r);
        let mut p = _mm_set1_ps(1.0 / 40320.0);
        p = _mm_add_ps(_mm_set1_ps(-1.0 / 720.0), _mm_mul_ps(r2, p));
        p = _mm_add_ps(_mm_set1_ps(1.0 / 24.0), _mm_mul_ps(r2, p));
        p = _mm_add_ps(_mm_set1_ps(-1.0 / 2.0), _mm_mul_ps(r2, p));
        _mm_add_ps(_mm_set1_ps(1.0), _mm_mul_ps(r2, p))
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn quadrant_select(q: __m128i, even: __m128, odd: __m128, neg_plus: i32) -> __m128 {
        let q_odd = _mm_cmpeq_epi32(_mm_and_si128(q, _mm_set1_epi32(1)), _mm_set1_epi32(1));
        let v = _mm_blendv_ps(even, odd, _mm_castsi128_ps(q_odd));
        let qn = _mm_add_epi32(q, _mm_set1_epi32(neg_plus));
        let neg = _mm_cmpeq_epi32(_mm_and_si128(qn, _mm_set1_epi32(2)), _mm_set1_epi32(2));
        let signbit = _mm_castsi128_ps(_mm_set1_epi32(i32::MIN));
        _mm_xor_ps(v, _mm_and_ps(_mm_castsi128_ps(neg), signbit))
    }

    /// 4-lane `fast_sin`, bit-identical to the scalar version per lane.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn fast_sin4(x: __m128) -> __m128 {
        let (q, r) = reduce4(x);
        quadrant_select(q, sin_poly4(r), cos_poly4(r), 0)
    }

    /// 4-lane `fast_cos`, bit-identical to the scalar version per lane.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn fast_cos4(x: __m128) -> __m128 {
        let (q, r) = reduce4(x);
        quadrant_select(q, cos_poly4(r), sin_poly4(r), 1)
    }

    /// # Safety
    ///
    /// Caller guarantees AVX2 and equal slice lengths.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn nonlinear_post(vals: &mut [f32], phases: &[f32]) {
        let n = vals.len();
        let mut i = 0;
        while i + 4 <= n {
            let p = _mm_loadu_ps(vals.as_ptr().add(i));
            let b = _mm_loadu_ps(phases.as_ptr().add(i));
            let v = _mm_mul_ps(fast_cos4(_mm_add_ps(p, b)), fast_sin4(p));
            _mm_storeu_ps(vals.as_mut_ptr().add(i), v);
            i += 4;
        }
        while i < n {
            let p = vals[i];
            vals[i] = crate::kernels::fast_cos(p + phases[i]) * crate::kernels::fast_sin(p);
            i += 1;
        }
    }

    /// # Safety
    ///
    /// Caller guarantees AVX2 and equal slice lengths.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn cos_phase_post(vals: &mut [f32], phases: &[f32]) {
        let n = vals.len();
        let mut i = 0;
        while i + 4 <= n {
            let p = _mm_loadu_ps(vals.as_ptr().add(i));
            let b = _mm_loadu_ps(phases.as_ptr().add(i));
            _mm_storeu_ps(vals.as_mut_ptr().add(i), fast_cos4(_mm_add_ps(p, b)));
            i += 4;
        }
        while i < n {
            vals[i] = crate::kernels::fast_cos(vals[i] + phases[i]);
            i += 1;
        }
    }

    // -- quantised-tier trig (all-f32 range reduction, 8 lanes) -----------

    /// 8-lane Taylor sine on the reduced range — `sin_poly4` widened.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn sin_poly8(r: __m256) -> __m256 {
        let r2 = _mm256_mul_ps(r, r);
        let mut p = _mm256_set1_ps(-1.0 / 5040.0);
        p = _mm256_add_ps(_mm256_set1_ps(1.0 / 120.0), _mm256_mul_ps(r2, p));
        p = _mm256_add_ps(_mm256_set1_ps(-1.0 / 6.0), _mm256_mul_ps(r2, p));
        p = _mm256_add_ps(_mm256_set1_ps(1.0), _mm256_mul_ps(r2, p));
        _mm256_mul_ps(r, p)
    }

    /// 8-lane Taylor cosine on the reduced range — `cos_poly4` widened.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn cos_poly8(r: __m256) -> __m256 {
        let r2 = _mm256_mul_ps(r, r);
        let mut p = _mm256_set1_ps(1.0 / 40320.0);
        p = _mm256_add_ps(_mm256_set1_ps(-1.0 / 720.0), _mm256_mul_ps(r2, p));
        p = _mm256_add_ps(_mm256_set1_ps(1.0 / 24.0), _mm256_mul_ps(r2, p));
        p = _mm256_add_ps(_mm256_set1_ps(-1.0 / 2.0), _mm256_mul_ps(r2, p));
        _mm256_add_ps(_mm256_set1_ps(1.0), _mm256_mul_ps(r2, p))
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn quadrant_select8(q: __m256i, even: __m256, odd: __m256, neg_plus: i32) -> __m256 {
        let q_odd = _mm256_cmpeq_epi32(
            _mm256_and_si256(q, _mm256_set1_epi32(1)),
            _mm256_set1_epi32(1),
        );
        let v = _mm256_blendv_ps(even, odd, _mm256_castsi256_ps(q_odd));
        let qn = _mm256_add_epi32(q, _mm256_set1_epi32(neg_plus));
        let neg = _mm256_cmpeq_epi32(
            _mm256_and_si256(qn, _mm256_set1_epi32(2)),
            _mm256_set1_epi32(2),
        );
        let signbit = _mm256_castsi256_ps(_mm256_set1_epi32(i32::MIN));
        _mm256_xor_ps(v, _mm256_and_ps(_mm256_castsi256_ps(neg), signbit))
    }

    /// 8-lane Cody–Waite reduction of `fast_sin_f32`/`fast_cos_f32`: the
    /// same f32 op sequence per lane (`_mm256_round_ps` nearest-even is
    /// scalar `round_ties_even`; `cvtps` of the integral `k` is exact, and
    /// maps NaN to a quadrant-0 index exactly like the scalar `as` cast).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn reduce8_f32(x: __m256) -> (__m256i, __m256) {
        let k = _mm256_round_ps::<{ _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC }>(
            _mm256_mul_ps(x, _mm256_set1_ps(std::f32::consts::FRAC_2_PI)),
        );
        let mut r = _mm256_sub_ps(x, _mm256_mul_ps(k, _mm256_set1_ps(crate::kernels::PI2_A)));
        r = _mm256_sub_ps(r, _mm256_mul_ps(k, _mm256_set1_ps(crate::kernels::PI2_B)));
        r = _mm256_sub_ps(r, _mm256_mul_ps(k, _mm256_set1_ps(crate::kernels::PI2_C)));
        let q = _mm256_and_si256(_mm256_cvtps_epi32(k), _mm256_set1_epi32(3));
        (q, r)
    }

    /// 8-lane `fast_sin_f32`, bit-identical to the scalar version per lane.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn fast_sin8_f32(x: __m256) -> __m256 {
        let (q, r) = reduce8_f32(x);
        quadrant_select8(q, sin_poly8(r), cos_poly8(r), 0)
    }

    /// 8-lane `fast_cos_f32`, bit-identical to the scalar version per lane.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn fast_cos8_f32(x: __m256) -> __m256 {
        let (q, r) = reduce8_f32(x);
        quadrant_select8(q, cos_poly8(r), sin_poly8(r), 1)
    }

    /// # Safety
    ///
    /// Caller guarantees AVX2 and equal slice lengths.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn nonlinear_post_quant(
        vals: &mut [f32],
        phases: &[f32],
        half_sin_phases: &[f32],
    ) {
        let n = vals.len();
        let half = _mm256_set1_ps(0.5);
        let two = _mm256_set1_ps(2.0);
        let mut i = 0;
        while i + 8 <= n {
            let p = _mm256_loadu_ps(vals.as_ptr().add(i));
            let b = _mm256_loadu_ps(phases.as_ptr().add(i));
            let hs = _mm256_loadu_ps(half_sin_phases.as_ptr().add(i));
            let s = fast_sin8_f32(_mm256_add_ps(_mm256_mul_ps(two, p), b));
            let v = _mm256_sub_ps(_mm256_mul_ps(half, s), hs);
            _mm256_storeu_ps(vals.as_mut_ptr().add(i), v);
            i += 8;
        }
        while i < n {
            let p = vals[i];
            vals[i] = 0.5 * crate::kernels::fast_sin_f32(2.0 * p + phases[i]) - half_sin_phases[i];
            i += 1;
        }
    }

    /// # Safety
    ///
    /// Caller guarantees AVX2 and equal slice lengths.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn cos_phase_post_quant(vals: &mut [f32], phases: &[f32]) {
        let n = vals.len();
        let mut i = 0;
        while i + 8 <= n {
            let p = _mm256_loadu_ps(vals.as_ptr().add(i));
            let b = _mm256_loadu_ps(phases.as_ptr().add(i));
            _mm256_storeu_ps(vals.as_mut_ptr().add(i), fast_cos8_f32(_mm256_add_ps(p, b)));
            i += 8;
        }
        while i < n {
            vals[i] = crate::kernels::fast_cos_f32(vals[i] + phases[i]);
            i += 1;
        }
    }

    // -- sign packing and amplitude sums -----------------------------------

    /// # Safety
    ///
    /// Caller guarantees AVX2 and `words.len() == vals.len().div_ceil(64)`,
    /// with `words` pre-zeroed.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn pack_signs(vals: &[f32], words: &mut [u64]) {
        let zero = _mm256_setzero_ps();
        let n = vals.len();
        let mut d = 0;
        while d + 64 <= n {
            let mut w = 0u64;
            for j in 0..8 {
                let v = _mm256_loadu_ps(vals.as_ptr().add(d + 8 * j));
                // `movemask` of the `> 0` compare: bit i = lane i, so the
                // packed order matches the scalar `1 << (d % 64)` exactly.
                let m = _mm256_movemask_ps(_mm256_cmp_ps::<_CMP_GT_OQ>(v, zero)) as u32;
                w |= u64::from(m) << (8 * j);
            }
            words[d / 64] = w;
            d += 64;
        }
        while d < n {
            if vals[d] > 0.0 {
                words[d / 64] |= 1u64 << (d % 64);
            }
            d += 1;
        }
    }

    /// # Safety
    ///
    /// Caller guarantees AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn abs_sq_sums(vals: &[f32]) -> (f64, f64) {
        let absmask = _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fff_ffff_ffff_ffff));
        let mut abs_acc = _mm256_setzero_pd();
        let mut sq_acc = _mm256_setzero_pd();
        let n = vals.len() / 4 * 4;
        let mut i = 0;
        while i + 4 <= n {
            let v = _mm256_cvtps_pd(_mm_loadu_ps(vals.as_ptr().add(i)));
            abs_acc = _mm256_add_pd(abs_acc, _mm256_and_pd(v, absmask));
            sq_acc = _mm256_add_pd(sq_acc, _mm256_mul_pd(v, v));
            i += 4;
        }
        let mut abs_l = [0.0f64; 4];
        let mut sq_l = [0.0f64; 4];
        _mm256_storeu_pd(abs_l.as_mut_ptr(), abs_acc);
        _mm256_storeu_pd(sq_l.as_mut_ptr(), sq_acc);
        for (l, &v) in vals[n..].iter().enumerate() {
            let v = f64::from(v);
            abs_l[l] += v.abs();
            sq_l[l] += v * v;
        }
        (
            ((abs_l[0] + abs_l[1]) + abs_l[2]) + abs_l[3],
            ((sq_l[0] + sq_l[1]) + sq_l[2]) + sq_l[3],
        )
    }

    // -- integer primitives ------------------------------------------------

    /// # Safety
    ///
    /// Caller guarantees AVX2 and equal slice lengths. Exact for
    /// `len ≤ 2²⁵` (i32 accumulator headroom over ±127² products).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
        let n = a.len();
        let mut acc = _mm256_setzero_si256();
        let mut i = 0;
        while i + 16 <= n {
            let va = _mm256_cvtepi8_epi16(_mm_loadu_si128(a.as_ptr().add(i) as *const __m128i));
            let vb = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.as_ptr().add(i) as *const __m128i));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(va, vb));
            i += 16;
        }
        let s = _mm_add_epi32(
            _mm256_castsi256_si128(acc),
            _mm256_extracti128_si256(acc, 1),
        );
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0x4E));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0xB1));
        let mut sum = _mm_cvtsi128_si32(s);
        while i < n {
            sum += i32::from(a[i]) * i32::from(b[i]);
            i += 1;
        }
        sum
    }

    /// Whole-matvec int8 projection:
    /// `out[d] = dot(q[d·n..], row) · (scales[d] · row_scale)`.
    ///
    /// One call covers every output dim — dispatching `dot_i8` per dim
    /// costs more in call and horizontal-reduction overhead than the
    /// ~`n`-element dot itself at serving widths (`n` in the tens). Four
    /// output dims share each widened row load, and their four i32
    /// accumulators collapse through one `hadd` tree into a single 4-lane
    /// vector that is converted and scaled together. Integer accumulation
    /// is exact in any order, and the float scaling keeps the scalar
    /// path's `dot as f32 * (scales[d] * row_scale)` parenthesisation per
    /// lane, so results are bit-identical to the scalar fallback.
    ///
    /// # Safety
    ///
    /// Caller guarantees AVX2, `q.len() == out.len()·n`,
    /// `scales.len() == out.len()`, and `row.len() == n`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn project_i8(
        q: &[i8],
        n: usize,
        scales: &[f32],
        row: &[i8],
        row_scale: f32,
        out: &mut [f32],
    ) {
        let dim = out.len();
        let rs = _mm_set1_ps(row_scale);
        let mut d = 0;
        while d + 4 <= dim {
            let w0 = q.as_ptr().add(d * n);
            let w1 = q.as_ptr().add((d + 1) * n);
            let w2 = q.as_ptr().add((d + 2) * n);
            let w3 = q.as_ptr().add((d + 3) * n);
            let mut acc0 = _mm256_setzero_si256();
            let mut acc1 = _mm256_setzero_si256();
            let mut acc2 = _mm256_setzero_si256();
            let mut acc3 = _mm256_setzero_si256();
            let mut k = 0;
            while k + 16 <= n {
                let r =
                    _mm256_cvtepi8_epi16(_mm_loadu_si128(row.as_ptr().add(k) as *const __m128i));
                let l0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(w0.add(k) as *const __m128i));
                acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(r, l0));
                let l1 = _mm256_cvtepi8_epi16(_mm_loadu_si128(w1.add(k) as *const __m128i));
                acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(r, l1));
                let l2 = _mm256_cvtepi8_epi16(_mm_loadu_si128(w2.add(k) as *const __m128i));
                acc2 = _mm256_add_epi32(acc2, _mm256_madd_epi16(r, l2));
                let l3 = _mm256_cvtepi8_epi16(_mm_loadu_si128(w3.add(k) as *const __m128i));
                acc3 = _mm256_add_epi32(acc3, _mm256_madd_epi16(r, l3));
                k += 16;
            }
            // hadd tree: lanes of `t` end up [s0 s1 s2 s3 | s0' s1' s2' s3'],
            // so one cross-half add yields the four dot products in order.
            let t = _mm256_hadd_epi32(_mm256_hadd_epi32(acc0, acc1), _mm256_hadd_epi32(acc2, acc3));
            let s = _mm_add_epi32(_mm256_castsi256_si128(t), _mm256_extracti128_si256(t, 1));
            let mut sums = [0i32; 4];
            _mm_storeu_si128(sums.as_mut_ptr() as *mut __m128i, s);
            while k < n {
                let r = i32::from(row[k]);
                sums[0] += r * i32::from(*w0.add(k));
                sums[1] += r * i32::from(*w1.add(k));
                sums[2] += r * i32::from(*w2.add(k));
                sums[3] += r * i32::from(*w3.add(k));
                k += 1;
            }
            let f = _mm_cvtepi32_ps(_mm_loadu_si128(sums.as_ptr() as *const __m128i));
            let sc = _mm_mul_ps(_mm_loadu_ps(scales.as_ptr().add(d)), rs);
            _mm_storeu_ps(out.as_mut_ptr().add(d), _mm_mul_ps(f, sc));
            d += 4;
        }
        while d < dim {
            let w = &q[d * n..(d + 1) * n];
            out[d] = dot_i8(w, row) as f32 * (scales[d] * row_scale);
            d += 1;
        }
    }

    /// # Safety
    ///
    /// Caller guarantees the `popcnt` feature (implied by the Avx2 level).
    #[target_feature(enable = "popcnt")]
    pub(super) unsafe fn popcount(words: &[u64]) -> usize {
        words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// # Safety
    ///
    /// Caller guarantees `popcnt` and equal slice lengths.
    #[target_feature(enable = "popcnt")]
    pub(super) unsafe fn hamming(a: &[u64], b: &[u64]) -> usize {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| (x ^ y).count_ones() as usize)
            .sum()
    }
}

// ---------------------------------------------------------------------------
// NEON backend (aarch64). Structure mirrors the AVX2 backend at 4 f32 lanes
// (two f64 lanes for the trig range reduction); `vmulq`/`vaddq` stay
// separate instructions so no lane ever sees a fused multiply-add.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod neon {
    use super::RealHv;
    use crate::bipolar::BipolarHv;
    use core::arch::aarch64::*;

    /// # Safety
    ///
    /// `tr.len() >= n*4`, rows `n` wide, `d + 4 <= out.dim`.
    unsafe fn project_group(tr: &[f32], n: usize, d: usize, rows: &[&[f32]], outs: &mut [RealHv]) {
        for (x, o) in rows.iter().zip(outs.iter_mut()) {
            let x = &x[..n];
            let mut acc = vdupq_n_f32(0.0);
            for (k, &xk) in x.iter().enumerate() {
                let w = vld1q_f32(tr.as_ptr().add(k * 4));
                acc = vaddq_f32(acc, vmulq_f32(vdupq_n_f32(xk), w));
            }
            vst1q_f32(o.as_mut_slice().as_mut_ptr().add(d), acc);
        }
    }

    fn project_rem(
        weights_rows: &[f32],
        n: usize,
        d0: usize,
        ndims: usize,
        rows: &[&[f32]],
        outs: &mut [RealHv],
    ) {
        for j in 0..ndims {
            let w = &weights_rows[j * n..(j + 1) * n];
            for (x, o) in rows.iter().zip(outs.iter_mut()) {
                let x = &x[..n];
                let mut a = 0.0f32;
                for k in 0..n {
                    a += x[k] * w[k];
                }
                o.as_mut_slice()[d0 + j] = a;
            }
        }
    }

    /// # Safety
    ///
    /// Validated shapes (`weights` is `dim × n`, rows `n` wide, outs reset).
    pub(super) unsafe fn project_rowmajor(
        weights: &[f32],
        n: usize,
        dim: usize,
        rows: &[&[f32]],
        outs: &mut [RealHv],
    ) {
        let mut tr = vec![0.0f32; n * 4];
        let mut d = 0;
        while d + 4 <= dim {
            for j in 0..4 {
                let row = &weights[(d + j) * n..(d + j + 1) * n];
                for (k, &w) in row.iter().enumerate() {
                    tr[k * 4 + j] = w;
                }
            }
            project_group(&tr, n, d, rows, outs);
            d += 4;
        }
        if d < dim {
            project_rem(&weights[d * n..], n, d, dim - d, rows, outs);
        }
    }

    /// # Safety
    ///
    /// `PackedProjection` layout invariants (lanes = 4).
    pub(super) unsafe fn project_packed(
        wt: &[f32],
        rem: &[f32],
        n: usize,
        dim: usize,
        rows: &[&[f32]],
        outs: &mut [RealHv],
    ) {
        let full = dim / 4 * 4;
        for g in 0..dim / 4 {
            project_group(&wt[g * n * 4..(g + 1) * n * 4], n, g * 4, rows, outs);
        }
        if full < dim {
            project_rem(rem, n, full, dim - full, rows, outs);
        }
    }

    /// # Safety
    ///
    /// Validated shapes (bases `dim` wide, rows `bases.len()` wide, outs
    /// reset to `dim`).
    pub(super) unsafe fn project_bipolar(
        bases: &[BipolarHv],
        dim: usize,
        rows: &[&[f32]],
        outs: &mut [RealHv],
    ) {
        let n = bases.len();
        let mut d = 0;
        while d + 8 <= dim {
            let mut r = 0;
            while r < rows.len() {
                let tile = (rows.len() - r).min(4);
                let mut acc_lo = [vdupq_n_f32(0.0); 4];
                let mut acc_hi = [vdupq_n_f32(0.0); 4];
                for (k, base) in bases.iter().enumerate() {
                    let b8 = vld1_s8(base.as_slice().as_ptr().add(d));
                    let b16 = vmovl_s8(b8);
                    let lo = vcvtq_f32_s32(vmovl_s16(vget_low_s16(b16)));
                    let hi = vcvtq_f32_s32(vmovl_s16(vget_high_s16(b16)));
                    for t in 0..tile {
                        let f = vdupq_n_f32(rows[r + t][k]);
                        acc_lo[t] = vaddq_f32(acc_lo[t], vmulq_f32(f, lo));
                        acc_hi[t] = vaddq_f32(acc_hi[t], vmulq_f32(f, hi));
                    }
                }
                for t in 0..tile {
                    let ptr = outs[r + t].as_mut_slice().as_mut_ptr().add(d);
                    vst1q_f32(ptr, acc_lo[t]);
                    vst1q_f32(ptr.add(4), acc_hi[t]);
                }
                r += tile;
            }
            d += 8;
        }
        while d < dim {
            for (x, o) in rows.iter().zip(outs.iter_mut()) {
                let mut a = 0.0f32;
                for (k, base) in bases.iter().enumerate() {
                    a += x[k] * f32::from(base.as_slice()[d]);
                }
                o.as_mut_slice()[d] = a;
            }
            d += 1;
        }
    }

    // -- fast trig ---------------------------------------------------------

    /// `f64::round` on 2 f64 lanes: `vrndnq` (nearest-even) plus the exact
    /// tie fixup to `trunc(x) ± 1`.
    #[inline]
    unsafe fn round_half_away(x: float64x2_t) -> float64x2_t {
        let nearest = vrndnq_f64(x);
        let diff = vsubq_f64(x, nearest);
        let tie = vceqq_f64(vabsq_f64(diff), vdupq_n_f64(0.5));
        let signbit = vreinterpretq_f64_u64(vandq_u64(
            vreinterpretq_u64_f64(x),
            vdupq_n_u64(0x8000_0000_0000_0000),
        ));
        let away = vaddq_f64(
            vrndq_f64(x),
            vreinterpretq_f64_u64(vorrq_u64(
                vreinterpretq_u64_f64(signbit),
                vreinterpretq_u64_f64(vdupq_n_f64(1.0)),
            )),
        );
        vbslq_f64(tie, away, nearest)
    }

    /// Half of the 4-lane reduction: 2 f64 lanes in, `(q, r)` out.
    #[inline]
    unsafe fn reduce2(xd: float64x2_t) -> (int32x2_t, float32x2_t) {
        let k = round_half_away(vmulq_f64(xd, vdupq_n_f64(std::f64::consts::FRAC_2_PI)));
        let r = vcvt_f32_f64(vsubq_f64(
            xd,
            vmulq_f64(k, vdupq_n_f64(std::f64::consts::FRAC_PI_2)),
        ));
        // Saturating truncation matches scalar `k as i64` exactly (including
        // NaN → 0), so the quadrant agrees with the scalar path everywhere.
        let ki = vcvtq_s64_f64(k);
        let q = vmovn_s64(vandq_s64(ki, vdupq_n_s64(3)));
        (vmovn_s64(vmovl_s32(q)), r)
    }

    #[inline]
    unsafe fn reduce4(x: float32x4_t) -> (int32x4_t, float32x4_t) {
        let (q_lo, r_lo) = reduce2(vcvt_f64_f32(vget_low_f32(x)));
        let (q_hi, r_hi) = reduce2(vcvt_high_f64_f32(x));
        (vcombine_s32(q_lo, q_hi), vcombine_f32(r_lo, r_hi))
    }

    #[inline]
    unsafe fn sin_poly4(r: float32x4_t) -> float32x4_t {
        let r2 = vmulq_f32(r, r);
        let mut p = vdupq_n_f32(-1.0 / 5040.0);
        p = vaddq_f32(vdupq_n_f32(1.0 / 120.0), vmulq_f32(r2, p));
        p = vaddq_f32(vdupq_n_f32(-1.0 / 6.0), vmulq_f32(r2, p));
        p = vaddq_f32(vdupq_n_f32(1.0), vmulq_f32(r2, p));
        vmulq_f32(r, p)
    }

    #[inline]
    unsafe fn cos_poly4(r: float32x4_t) -> float32x4_t {
        let r2 = vmulq_f32(r, r);
        let mut p = vdupq_n_f32(1.0 / 40320.0);
        p = vaddq_f32(vdupq_n_f32(-1.0 / 720.0), vmulq_f32(r2, p));
        p = vaddq_f32(vdupq_n_f32(1.0 / 24.0), vmulq_f32(r2, p));
        p = vaddq_f32(vdupq_n_f32(-1.0 / 2.0), vmulq_f32(r2, p));
        vaddq_f32(vdupq_n_f32(1.0), vmulq_f32(r2, p))
    }

    #[inline]
    unsafe fn quadrant_select(
        q: int32x4_t,
        even: float32x4_t,
        odd: float32x4_t,
        neg_plus: i32,
    ) -> float32x4_t {
        let q_odd = vceqq_s32(vandq_s32(q, vdupq_n_s32(1)), vdupq_n_s32(1));
        let v = vbslq_f32(q_odd, odd, even);
        let qn = vaddq_s32(q, vdupq_n_s32(neg_plus));
        let neg = vceqq_s32(vandq_s32(qn, vdupq_n_s32(2)), vdupq_n_s32(2));
        let flip = vandq_u32(neg, vdupq_n_u32(0x8000_0000));
        vreinterpretq_f32_u32(veorq_u32(vreinterpretq_u32_f32(v), flip))
    }

    #[inline]
    unsafe fn fast_sin4(x: float32x4_t) -> float32x4_t {
        let (q, r) = reduce4(x);
        quadrant_select(q, sin_poly4(r), cos_poly4(r), 0)
    }

    #[inline]
    unsafe fn fast_cos4(x: float32x4_t) -> float32x4_t {
        let (q, r) = reduce4(x);
        quadrant_select(q, cos_poly4(r), sin_poly4(r), 1)
    }

    /// # Safety
    ///
    /// Equal slice lengths.
    pub(super) unsafe fn nonlinear_post(vals: &mut [f32], phases: &[f32]) {
        let n = vals.len();
        let mut i = 0;
        while i + 4 <= n {
            let p = vld1q_f32(vals.as_ptr().add(i));
            let b = vld1q_f32(phases.as_ptr().add(i));
            let v = vmulq_f32(fast_cos4(vaddq_f32(p, b)), fast_sin4(p));
            vst1q_f32(vals.as_mut_ptr().add(i), v);
            i += 4;
        }
        while i < n {
            let p = vals[i];
            vals[i] = crate::kernels::fast_cos(p + phases[i]) * crate::kernels::fast_sin(p);
            i += 1;
        }
    }

    /// # Safety
    ///
    /// Equal slice lengths.
    pub(super) unsafe fn cos_phase_post(vals: &mut [f32], phases: &[f32]) {
        let n = vals.len();
        let mut i = 0;
        while i + 4 <= n {
            let p = vld1q_f32(vals.as_ptr().add(i));
            let b = vld1q_f32(phases.as_ptr().add(i));
            vst1q_f32(vals.as_mut_ptr().add(i), fast_cos4(vaddq_f32(p, b)));
            i += 4;
        }
        while i < n {
            vals[i] = crate::kernels::fast_cos(vals[i] + phases[i]);
            i += 1;
        }
    }

    // -- quantised-tier trig (all-f32 range reduction) ---------------------

    /// 4-lane Cody–Waite reduction of `fast_sin_f32`/`fast_cos_f32`:
    /// `vrndnq_f32` is the scalar `round_ties_even`, and `vcvtq_s32_f32` of
    /// the integral `k` is exact (NaN → 0, like the scalar `as` cast).
    #[inline]
    unsafe fn reduce4_f32(x: float32x4_t) -> (int32x4_t, float32x4_t) {
        let k = vrndnq_f32(vmulq_f32(x, vdupq_n_f32(std::f32::consts::FRAC_2_PI)));
        let mut r = vsubq_f32(x, vmulq_f32(k, vdupq_n_f32(crate::kernels::PI2_A)));
        r = vsubq_f32(r, vmulq_f32(k, vdupq_n_f32(crate::kernels::PI2_B)));
        r = vsubq_f32(r, vmulq_f32(k, vdupq_n_f32(crate::kernels::PI2_C)));
        let q = vandq_s32(vcvtq_s32_f32(k), vdupq_n_s32(3));
        (q, r)
    }

    /// 4-lane `fast_sin_f32`, bit-identical to the scalar version per lane.
    #[inline]
    unsafe fn fast_sin4_f32(x: float32x4_t) -> float32x4_t {
        let (q, r) = reduce4_f32(x);
        quadrant_select(q, sin_poly4(r), cos_poly4(r), 0)
    }

    /// 4-lane `fast_cos_f32`, bit-identical to the scalar version per lane.
    #[inline]
    unsafe fn fast_cos4_f32(x: float32x4_t) -> float32x4_t {
        let (q, r) = reduce4_f32(x);
        quadrant_select(q, cos_poly4(r), sin_poly4(r), 1)
    }

    /// # Safety
    ///
    /// Equal slice lengths.
    pub(super) unsafe fn nonlinear_post_quant(
        vals: &mut [f32],
        phases: &[f32],
        half_sin_phases: &[f32],
    ) {
        let n = vals.len();
        let half = vdupq_n_f32(0.5);
        let two = vdupq_n_f32(2.0);
        let mut i = 0;
        while i + 4 <= n {
            let p = vld1q_f32(vals.as_ptr().add(i));
            let b = vld1q_f32(phases.as_ptr().add(i));
            let hs = vld1q_f32(half_sin_phases.as_ptr().add(i));
            let s = fast_sin4_f32(vaddq_f32(vmulq_f32(two, p), b));
            vst1q_f32(vals.as_mut_ptr().add(i), vsubq_f32(vmulq_f32(half, s), hs));
            i += 4;
        }
        while i < n {
            let p = vals[i];
            vals[i] = 0.5 * crate::kernels::fast_sin_f32(2.0 * p + phases[i]) - half_sin_phases[i];
            i += 1;
        }
    }

    /// # Safety
    ///
    /// Equal slice lengths.
    pub(super) unsafe fn cos_phase_post_quant(vals: &mut [f32], phases: &[f32]) {
        let n = vals.len();
        let mut i = 0;
        while i + 4 <= n {
            let p = vld1q_f32(vals.as_ptr().add(i));
            let b = vld1q_f32(phases.as_ptr().add(i));
            vst1q_f32(vals.as_mut_ptr().add(i), fast_cos4_f32(vaddq_f32(p, b)));
            i += 4;
        }
        while i < n {
            vals[i] = crate::kernels::fast_cos_f32(vals[i] + phases[i]);
            i += 1;
        }
    }

    /// # Safety
    ///
    /// Any slice. Lane assignment matches `scalar_abs_sq_sums`: f64 lanes
    /// (0,1) live in one `float64x2_t`, lanes (2,3) in another.
    pub(super) unsafe fn abs_sq_sums(vals: &[f32]) -> (f64, f64) {
        let mut abs01 = vdupq_n_f64(0.0);
        let mut abs23 = vdupq_n_f64(0.0);
        let mut sq01 = vdupq_n_f64(0.0);
        let mut sq23 = vdupq_n_f64(0.0);
        let n = vals.len() / 4 * 4;
        let mut i = 0;
        while i + 4 <= n {
            let v = vld1q_f32(vals.as_ptr().add(i));
            let lo = vcvt_f64_f32(vget_low_f32(v));
            let hi = vcvt_high_f64_f32(v);
            abs01 = vaddq_f64(abs01, vabsq_f64(lo));
            abs23 = vaddq_f64(abs23, vabsq_f64(hi));
            sq01 = vaddq_f64(sq01, vmulq_f64(lo, lo));
            sq23 = vaddq_f64(sq23, vmulq_f64(hi, hi));
            i += 4;
        }
        let mut abs_l = [
            vgetq_lane_f64(abs01, 0),
            vgetq_lane_f64(abs01, 1),
            vgetq_lane_f64(abs23, 0),
            vgetq_lane_f64(abs23, 1),
        ];
        let mut sq_l = [
            vgetq_lane_f64(sq01, 0),
            vgetq_lane_f64(sq01, 1),
            vgetq_lane_f64(sq23, 0),
            vgetq_lane_f64(sq23, 1),
        ];
        for (l, &v) in vals[n..].iter().enumerate() {
            let v = f64::from(v);
            abs_l[l] += v.abs();
            sq_l[l] += v * v;
        }
        (
            ((abs_l[0] + abs_l[1]) + abs_l[2]) + abs_l[3],
            ((sq_l[0] + sq_l[1]) + sq_l[2]) + sq_l[3],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{fast_cos, fast_sin, project_bipolar_blocked, project_blocked};
    use crate::rng::HdRng;
    use crate::BipolarHv;

    fn gaussian(len: usize, rng: &mut HdRng) -> Vec<f32> {
        (0..len).map(|_| rng.next_gaussian() as f32).collect()
    }

    /// Runs `body` once per level this CPU can actually execute, restoring
    /// the auto-detected level afterwards. Serialised via a lock because the
    /// dispatch knob is process-global and `cargo test` is multi-threaded.
    fn with_levels(mut body: impl FnMut(SimdLevel)) {
        let _guard = DISPATCH_LOCK.lock().unwrap();
        for level in [SimdLevel::Scalar, SimdLevel::Avx2, SimdLevel::Neon] {
            if set_level(level).is_ok() {
                body(level);
            }
        }
        set_level(detect()).unwrap();
    }

    // Every level is bit-identical, so tests running at whatever level is
    // momentarily active (kernels', encoders') stay correct while these
    // tests flip the knob — the lock only serialises the flip-and-restore
    // sections against each other.
    static DISPATCH_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn labels_roundtrip() {
        for level in [SimdLevel::Scalar, SimdLevel::Avx2, SimdLevel::Neon] {
            assert_eq!(SimdLevel::from_u8(level.as_u8()), Some(level));
        }
        assert_eq!(SimdLevel::from_u8(0), None);
        assert_eq!(SimdLevel::Scalar.label(), "scalar");
    }

    #[test]
    fn preference_parsing() {
        let _guard = DISPATCH_LOCK.lock().unwrap();
        assert!(set_preference("bogus").is_err());
        assert_eq!(set_preference("scalar").unwrap(), SimdLevel::Scalar);
        assert_eq!(set_preference("auto").unwrap(), detect());
        let unsupported = if detect() == SimdLevel::Avx2 {
            "neon"
        } else {
            "avx2"
        };
        assert!(set_preference(unsupported).is_err());
        set_level(detect()).unwrap();
    }

    #[test]
    fn simd_projection_bit_identical_across_levels() {
        // Prime dims and dims straddling every vector width (4, 8):
        // non-multiples exercise the remainder paths.
        let mut rng = HdRng::seed_from(41);
        for &(n, dim) in &[(1usize, 7usize), (3, 127), (7, 131), (5, 257), (13, 521)] {
            let weights = gaussian(dim * n, &mut rng);
            for &batch in &[1usize, 3, 5] {
                let rows: Vec<Vec<f32>> = (0..batch).map(|_| gaussian(n, &mut rng)).collect();
                let row_refs: Vec<&[f32]> = rows.iter().map(Vec::as_slice).collect();
                let mut reference: Option<Vec<Vec<u32>>> = None;
                with_levels(|level| {
                    let mut outs = vec![RealHv::default(); batch];
                    project_blocked(&weights, n, dim, &row_refs, &mut outs);
                    let bits: Vec<Vec<u32>> = outs
                        .iter()
                        .map(|o| o.as_slice().iter().map(|v| v.to_bits()).collect())
                        .collect();
                    match &reference {
                        None => reference = Some(bits),
                        Some(want) => {
                            assert_eq!(&bits, want, "level {level:?} n={n} dim={dim} batch={batch}")
                        }
                    }
                });
            }
        }
    }

    #[test]
    fn packed_projection_matches_blocked() {
        let mut rng = HdRng::seed_from(43);
        for &(n, dim) in &[(4usize, 61usize), (6, 128), (9, 263)] {
            let weights = gaussian(dim * n, &mut rng);
            let rows: Vec<Vec<f32>> = (0..5).map(|_| gaussian(n, &mut rng)).collect();
            let row_refs: Vec<&[f32]> = rows.iter().map(Vec::as_slice).collect();
            with_levels(|level| {
                let packed = PackedProjection::for_active(&weights, n, dim);
                if level == SimdLevel::Scalar {
                    assert!(packed.is_none());
                    return;
                }
                let packed = packed.expect("SIMD level must pack");
                assert_eq!(packed.level(), level);
                let mut a = vec![RealHv::default(); rows.len()];
                let mut b = vec![RealHv::default(); rows.len()];
                packed.project_into(&row_refs, &mut a);
                project_blocked(&weights, n, dim, &row_refs, &mut b);
                for (x, y) in a.iter().zip(&b) {
                    let xb: Vec<u32> = x.as_slice().iter().map(|v| v.to_bits()).collect();
                    let yb: Vec<u32> = y.as_slice().iter().map(|v| v.to_bits()).collect();
                    assert_eq!(xb, yb, "level {level:?} n={n} dim={dim}");
                }
            });
        }
    }

    #[test]
    fn simd_bipolar_projection_bit_identical_across_levels() {
        let mut rng = HdRng::seed_from(47);
        for &(n, dim) in &[(1usize, 7usize), (4, 127), (6, 131), (9, 257)] {
            let bases: Vec<BipolarHv> = (0..n).map(|_| BipolarHv::random(dim, &mut rng)).collect();
            for &batch in &[1usize, 4, 7] {
                let rows: Vec<Vec<f32>> = (0..batch).map(|_| gaussian(n, &mut rng)).collect();
                let row_refs: Vec<&[f32]> = rows.iter().map(Vec::as_slice).collect();
                let mut reference: Option<Vec<Vec<u32>>> = None;
                with_levels(|level| {
                    let mut outs = vec![RealHv::default(); batch];
                    project_bipolar_blocked(&bases, dim, &row_refs, &mut outs);
                    let bits: Vec<Vec<u32>> = outs
                        .iter()
                        .map(|o| o.as_slice().iter().map(|v| v.to_bits()).collect())
                        .collect();
                    match &reference {
                        None => reference = Some(bits),
                        Some(want) => {
                            assert_eq!(&bits, want, "level {level:?} n={n} dim={dim} batch={batch}")
                        }
                    }
                });
            }
        }
    }

    #[test]
    fn simd_fast_trig_bit_identical_to_scalar() {
        // Dense sweep including quadrant boundaries (multiples of π/4) where
        // the round-half-away tie emulation must agree with f64::round.
        let mut args: Vec<f32> = Vec::new();
        let mut x = -30.0f32;
        while x <= 30.0 {
            args.push(x);
            x += 0.0137;
        }
        for q in -200i32..=200 {
            args.push(q as f32 * std::f32::consts::FRAC_PI_4);
        }
        args.extend([0.0, -0.0, 1e4, -1e4, f32::MIN_POSITIVE]);
        let phases: Vec<f32> = args.iter().map(|a| (a * 0.37).abs() % 6.3).collect();
        let scalar_nl: Vec<u32> = args
            .iter()
            .zip(&phases)
            .map(|(&p, &b)| (fast_cos(p + b) * fast_sin(p)).to_bits())
            .collect();
        let scalar_cp: Vec<u32> = args
            .iter()
            .zip(&phases)
            .map(|(&p, &b)| fast_cos(p + b).to_bits())
            .collect();
        with_levels(|level| {
            let mut nl = args.clone();
            nonlinear_post_fast(&mut nl, &phases);
            let got: Vec<u32> = nl.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, scalar_nl, "nonlinear post diverged at level {level:?}");
            let mut cp = args.clone();
            cos_phase_post_fast(&mut cp, &phases);
            let got: Vec<u32> = cp.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, scalar_cp, "cos-phase post diverged at level {level:?}");
        });
    }

    #[test]
    fn simd_fast_trig_propagates_non_finite() {
        with_levels(|_| {
            let mut vals = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 1.0];
            nonlinear_post_fast(&mut vals, &[0.1, 0.2, 0.3, 0.4]);
            assert!(vals[0].is_nan() && vals[1].is_nan() && vals[2].is_nan());
            assert!(vals[3].is_finite());
        });
    }

    #[test]
    fn dot_i8_matches_reference_across_levels() {
        let mut rng = HdRng::seed_from(53);
        for len in [0usize, 1, 15, 16, 17, 64, 127, 1000] {
            let a: Vec<i8> = (0..len)
                .map(|_| (rng.next_below(255) as i32 - 127) as i8)
                .collect();
            let b: Vec<i8> = (0..len)
                .map(|_| (rng.next_below(255) as i32 - 127) as i8)
                .collect();
            let want: i32 = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| i32::from(x) * i32::from(y))
                .sum();
            with_levels(|level| {
                assert_eq!(dot_i8(&a, &b), want, "level {level:?} len={len}");
            });
        }
    }

    #[test]
    fn project_i8_rowmajor_is_bit_identical_across_levels() {
        let mut rng = HdRng::seed_from(61);
        // Dims and widths straddle the 4-dim group and 16-lane chunk sizes,
        // including primes and the scalar remainder paths.
        for (dim, n) in [
            (1usize, 1usize),
            (3, 7),
            (4, 16),
            (7, 17),
            (13, 31),
            (64, 32),
            (97, 33),
        ] {
            let q: Vec<i8> = (0..dim * n)
                .map(|_| (rng.next_below(255) as i32 - 127) as i8)
                .collect();
            let scales: Vec<f32> = (0..dim).map(|_| rng.next_f64() as f32 + 0.1).collect();
            let row: Vec<i8> = (0..n)
                .map(|_| (rng.next_below(255) as i32 - 127) as i8)
                .collect();
            let row_scale = 0.037f32;
            let mut want = vec![0.0f32; dim];
            for (d, o) in want.iter_mut().enumerate() {
                let dot: i32 = q[d * n..(d + 1) * n]
                    .iter()
                    .zip(&row)
                    .map(|(&x, &y)| i32::from(x) * i32::from(y))
                    .sum();
                *o = dot as f32 * (scales[d] * row_scale);
            }
            let want_bits: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
            with_levels(|level| {
                let mut out = vec![0.0f32; dim];
                project_i8_rowmajor(&q, n, &scales, &row, row_scale, &mut out);
                let got_bits: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
                assert_eq!(got_bits, want_bits, "level {level:?} dim={dim} n={n}");
            });
        }
    }

    #[test]
    fn popcount_and_hamming_match_reference_across_levels() {
        let mut rng = HdRng::seed_from(59);
        let a: Vec<u64> = (0..37).map(|_| rng.next_u64()).collect();
        let b: Vec<u64> = (0..37).map(|_| rng.next_u64()).collect();
        let pop: usize = a.iter().map(|w| w.count_ones() as usize).sum();
        let ham: usize = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| (x ^ y).count_ones() as usize)
            .sum();
        with_levels(|level| {
            assert_eq!(popcount_words(&a), pop, "level {level:?}");
            assert_eq!(hamming_words(&a, &b), ham, "level {level:?}");
        });
    }

    #[test]
    fn quant_trig_posts_bit_identical_across_levels() {
        let mut rng = HdRng::seed_from(61);
        // Prime lengths exercise both the 8-lane (AVX2) and 4-lane (NEON)
        // remainders; arguments span the quantised tier's realistic range.
        for len in [1usize, 5, 17, 64, 127, 257] {
            let base: Vec<f32> = (0..len)
                .map(|_| (rng.next_gaussian() * 4.0) as f32)
                .collect();
            let phases: Vec<f32> = (0..len)
                .map(|_| (rng.next_f64() * std::f64::consts::TAU) as f32)
                .collect();
            let half_sin: Vec<f32> = phases
                .iter()
                .map(|&b| 0.5 * crate::kernels::fast_sin_f32(b))
                .collect();
            let mut want_nl: Option<Vec<u32>> = None;
            let mut want_cos: Option<Vec<u32>> = None;
            with_levels(|level| {
                let mut nl = base.clone();
                nonlinear_post_quant(&mut nl, &phases, &half_sin);
                let nl_bits: Vec<u32> = nl.iter().map(|v| v.to_bits()).collect();
                let mut cp = base.clone();
                cos_phase_post_quant(&mut cp, &phases);
                let cp_bits: Vec<u32> = cp.iter().map(|v| v.to_bits()).collect();
                match &want_nl {
                    None => {
                        want_nl = Some(nl_bits);
                        want_cos = Some(cp_bits);
                    }
                    Some(w) => {
                        assert_eq!(&nl_bits, w, "nonlinear level {level:?} len={len}");
                        assert_eq!(
                            &cp_bits,
                            want_cos.as_ref().unwrap(),
                            "cos level {level:?} len={len}"
                        );
                    }
                }
            });
        }
    }

    #[test]
    fn pack_signs_matches_threshold_across_levels() {
        let mut rng = HdRng::seed_from(67);
        for len in [1usize, 63, 64, 65, 127, 256, 300] {
            let mut vals: Vec<f32> = (0..len).map(|_| rng.next_gaussian() as f32).collect();
            // Exercise the exact threshold edge cases.
            vals[0] = 0.0;
            if len > 2 {
                vals[1] = -0.0;
                vals[2] = f32::NAN;
            }
            let mut want = vec![0u64; len.div_ceil(64)];
            for (d, &v) in vals.iter().enumerate() {
                if v > 0.0 {
                    want[d / 64] |= 1u64 << (d % 64);
                }
            }
            with_levels(|level| {
                let mut words = vec![u64::MAX; len.div_ceil(64)];
                pack_signs(&vals, &mut words);
                assert_eq!(words, want, "level {level:?} len={len}");
            });
        }
    }

    #[test]
    fn abs_sq_sums_bit_identical_across_levels() {
        let mut rng = HdRng::seed_from(71);
        for len in [0usize, 1, 3, 4, 7, 64, 127, 513] {
            let vals: Vec<f32> = (0..len).map(|_| rng.next_gaussian() as f32).collect();
            let naive_abs: f64 = vals.iter().map(|&v| f64::from(v).abs()).sum();
            let naive_sq: f64 = vals.iter().map(|&v| f64::from(v) * f64::from(v)).sum();
            let mut want: Option<(u64, u64)> = None;
            with_levels(|level| {
                let (a, s) = abs_sq_sums(&vals);
                // Lane-blocked accumulation must agree with the naive sum to
                // rounding, and bit-exactly across levels.
                assert!(
                    (a - naive_abs).abs() <= 1e-9 * naive_abs.max(1.0),
                    "level {level:?}"
                );
                assert!(
                    (s - naive_sq).abs() <= 1e-9 * naive_sq.max(1.0),
                    "level {level:?}"
                );
                match &want {
                    None => want = Some((a.to_bits(), s.to_bits())),
                    Some(w) => {
                        assert_eq!((a.to_bits(), s.to_bits()), *w, "level {level:?} len={len}")
                    }
                }
            });
        }
    }

    #[test]
    fn unsupported_level_is_rejected() {
        let _guard = DISPATCH_LOCK.lock().unwrap();
        let unsupported = match detect() {
            SimdLevel::Avx2 => SimdLevel::Neon,
            _ => SimdLevel::Avx2,
        };
        let before = active();
        assert!(set_level(unsupported).is_err());
        assert_eq!(active(), before, "failed set must not change the knob");
    }
}
