//! Error types shared across the HD computing substrate.
//!
//! The substrate's fallible operations are all shape-related: combining two
//! hypervectors of different dimensionality, or constructing a hypervector
//! from malformed input. Hot-path arithmetic (dot products, bundling) instead
//! asserts dimensions and panics, because a shape mismatch there is a
//! programming error rather than a recoverable condition; the panic behaviour
//! is documented on each such function.

use std::error::Error;
use std::fmt;

/// Error raised when two hypervectors that must share a dimensionality do
/// not.
///
/// # Examples
///
/// ```
/// use hdc::{RealHv, DimensionMismatchError};
///
/// let a = RealHv::zeros(8);
/// let b = RealHv::zeros(16);
/// let err: DimensionMismatchError = a.checked_add(&b).unwrap_err();
/// assert_eq!(err.expected(), 8);
/// assert_eq!(err.actual(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DimensionMismatchError {
    expected: usize,
    actual: usize,
}

impl DimensionMismatchError {
    /// Creates a new mismatch error from the expected and observed widths.
    pub fn new(expected: usize, actual: usize) -> Self {
        Self { expected, actual }
    }

    /// The dimensionality the operation required.
    pub fn expected(&self) -> usize {
        self.expected
    }

    /// The dimensionality that was actually supplied.
    pub fn actual(&self) -> usize {
        self.actual
    }
}

impl fmt::Display for DimensionMismatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hypervector dimension mismatch: expected {}, got {}",
            self.expected, self.actual
        )
    }
}

impl Error for DimensionMismatchError {}

/// Top-level error type for the `hdc` crate.
///
/// Currently all substrate failures are dimension mismatches or invalid
/// construction parameters; the enum leaves room to grow without breaking
/// downstream matches (`#[non_exhaustive]`).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HdcError {
    /// Two hypervectors that must agree in width did not.
    DimensionMismatch(DimensionMismatchError),
    /// A constructor was given an invalid parameter (e.g. zero dimension).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of why the value was rejected.
        reason: String,
    },
}

impl fmt::Display for HdcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HdcError::DimensionMismatch(e) => e.fmt(f),
            HdcError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
        }
    }
}

impl Error for HdcError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HdcError::DimensionMismatch(e) => Some(e),
            HdcError::InvalidParameter { .. } => None,
        }
    }
}

impl From<DimensionMismatchError> for HdcError {
    fn from(e: DimensionMismatchError) -> Self {
        HdcError::DimensionMismatch(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_both_dims() {
        let e = DimensionMismatchError::new(10, 20);
        let s = e.to_string();
        assert!(s.contains("10"));
        assert!(s.contains("20"));
    }

    #[test]
    fn accessors_roundtrip() {
        let e = DimensionMismatchError::new(3, 7);
        assert_eq!(e.expected(), 3);
        assert_eq!(e.actual(), 7);
    }

    #[test]
    fn hdc_error_from_mismatch() {
        let e: HdcError = DimensionMismatchError::new(1, 2).into();
        assert!(matches!(e, HdcError::DimensionMismatch(_)));
        assert!(e.to_string().contains("mismatch"));
    }

    #[test]
    fn invalid_parameter_display() {
        let e = HdcError::InvalidParameter {
            name: "dim",
            reason: "must be nonzero".to_string(),
        };
        let s = e.to_string();
        assert!(s.contains("dim"));
        assert!(s.contains("nonzero"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HdcError>();
        assert_send_sync::<DimensionMismatchError>();
    }

    #[test]
    fn source_chains() {
        use std::error::Error as _;
        let e: HdcError = DimensionMismatchError::new(1, 2).into();
        assert!(e.source().is_some());
    }
}
