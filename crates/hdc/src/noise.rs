//! Noise injection for robustness evaluation.
//!
//! RegHD's §3 argues that hypervector representations are inherently robust:
//! "hypervectors store information across all their components so that no
//! component is more responsible for storing any piece of information than
//! another." This module provides the fault models used by the integration
//! tests and benches to quantify that claim: random bit flips in binary
//! hypervectors, sign flips and Gaussian perturbation in real hypervectors,
//! and stuck-at faults emulating memory cell failure.

use crate::rng::HdRng;
use crate::{BinaryHv, RealHv};

/// Flips each bit of `hv` independently with probability `rate`, returning
/// the corrupted copy and the number of flips applied.
///
/// # Panics
///
/// Panics if `rate` is not within `[0, 1]`.
pub fn flip_bits(hv: &BinaryHv, rate: f64, rng: &mut HdRng) -> (BinaryHv, usize) {
    assert!((0.0..=1.0).contains(&rate), "rate must be in [0,1]");
    let mut out = hv.clone();
    let mut flips = 0;
    for i in 0..hv.dim() {
        if rng.next_bool(rate) {
            out.flip(i);
            flips += 1;
        }
    }
    (out, flips)
}

/// Flips exactly `count` distinct randomly chosen bits.
///
/// # Panics
///
/// Panics if `count > hv.dim()`.
pub fn flip_exact_bits(hv: &BinaryHv, count: usize, rng: &mut HdRng) -> BinaryHv {
    assert!(count <= hv.dim(), "cannot flip more bits than exist");
    let mut out = hv.clone();
    // Partial Fisher–Yates over indices.
    let mut indices: Vec<usize> = (0..hv.dim()).collect();
    for i in 0..count {
        let j = i + rng.next_below(indices.len() - i);
        indices.swap(i, j);
        out.flip(indices[i]);
    }
    out
}

/// Negates each component of a real hypervector independently with
/// probability `rate` — the real-valued analogue of a bit flip.
///
/// # Panics
///
/// Panics if `rate` is not within `[0, 1]`.
pub fn flip_signs(hv: &RealHv, rate: f64, rng: &mut HdRng) -> RealHv {
    let mut out = hv.clone();
    flip_signs_in_place(&mut out, rate, rng);
    out
}

/// In-place variant of [`flip_signs`], returning the number of components
/// flipped. Used by the serving-layer fault injector, which corrupts a
/// cloned model state and wants the flip count for its report.
///
/// # Panics
///
/// Panics if `rate` is not within `[0, 1]`.
pub fn flip_signs_in_place(hv: &mut RealHv, rate: f64, rng: &mut HdRng) -> usize {
    assert!((0.0..=1.0).contains(&rate), "rate must be in [0,1]");
    let mut flips = 0;
    for v in hv.as_mut_slice() {
        if rng.next_bool(rate) {
            *v = -*v;
            flips += 1;
        }
    }
    flips
}

/// Adds i.i.d. Gaussian noise of standard deviation `sigma` to each
/// component.
///
/// # Panics
///
/// Panics if `sigma < 0`.
pub fn gaussian_perturb(hv: &RealHv, sigma: f64, rng: &mut HdRng) -> RealHv {
    assert!(sigma >= 0.0, "sigma must be nonnegative");
    RealHv::from_vec(
        hv.as_slice()
            .iter()
            .map(|&v| v + (sigma * rng.next_gaussian()) as f32)
            .collect(),
    )
}

/// Forces each component to zero independently with probability `rate`,
/// emulating stuck-at-zero memory faults.
///
/// # Panics
///
/// Panics if `rate` is not within `[0, 1]`.
pub fn stuck_at_zero(hv: &RealHv, rate: f64, rng: &mut HdRng) -> RealHv {
    assert!((0.0..=1.0).contains(&rate), "rate must be in [0,1]");
    RealHv::from_vec(
        hv.as_slice()
            .iter()
            .map(|&v| if rng.next_bool(rate) { 0.0 } else { v })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::{cosine, hamming_distance};

    #[test]
    fn flip_rate_zero_is_identity() {
        let mut rng = HdRng::seed_from(1);
        let v = BinaryHv::random(256, &mut rng);
        let (out, flips) = flip_bits(&v, 0.0, &mut rng);
        assert_eq!(out, v);
        assert_eq!(flips, 0);
    }

    #[test]
    fn flip_rate_one_flips_all() {
        let mut rng = HdRng::seed_from(2);
        let v = BinaryHv::random(256, &mut rng);
        let (out, flips) = flip_bits(&v, 1.0, &mut rng);
        assert_eq!(flips, 256);
        assert_eq!(hamming_distance(&v, &out), 256);
    }

    #[test]
    fn flip_rate_statistics() {
        let mut rng = HdRng::seed_from(3);
        let v = BinaryHv::random(100_000, &mut rng);
        let (out, flips) = flip_bits(&v, 0.1, &mut rng);
        assert_eq!(hamming_distance(&v, &out), flips);
        let rate = flips as f64 / 100_000.0;
        assert!((rate - 0.1).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    fn flip_exact_is_exact() {
        let mut rng = HdRng::seed_from(4);
        let v = BinaryHv::random(512, &mut rng);
        for count in [0, 1, 17, 512] {
            let out = flip_exact_bits(&v, count, &mut rng);
            assert_eq!(hamming_distance(&v, &out), count);
        }
    }

    #[test]
    #[should_panic(expected = "more bits")]
    fn flip_exact_too_many_panics() {
        let mut rng = HdRng::seed_from(5);
        let v = BinaryHv::zeros(4);
        flip_exact_bits(&v, 5, &mut rng);
    }

    #[test]
    fn similarity_degrades_gracefully() {
        // The robustness claim: moderate bit-flip rates leave hypervectors
        // still clearly recognisable (similarity scales as 1 - 2·rate).
        let mut rng = HdRng::seed_from(6);
        let v = BinaryHv::random(10_000, &mut rng);
        let (n10, _) = flip_bits(&v, 0.10, &mut rng);
        let sim = crate::similarity::hamming_similarity(&v, &n10);
        assert!((sim - 0.8).abs() < 0.05, "sim = {sim}");
    }

    #[test]
    fn flip_signs_in_place_counts_flips() {
        let mut rng = HdRng::seed_from(21);
        let mut v = RealHv::from_vec(vec![1.0; 10_000]);
        let flips = flip_signs_in_place(&mut v, 0.3, &mut rng);
        let negatives = v.as_slice().iter().filter(|&&x| x < 0.0).count();
        assert_eq!(flips, negatives);
        assert!((flips as f64 / 10_000.0 - 0.3).abs() < 0.02);
    }

    #[test]
    fn sign_flip_preserves_magnitude() {
        let mut rng = HdRng::seed_from(7);
        let v = RealHv::random_gaussian(1024, &mut rng);
        let f = flip_signs(&v, 0.2, &mut rng);
        assert!((v.norm() - f.norm()).abs() / v.norm() < 1e-5);
    }

    #[test]
    fn gaussian_perturb_zero_sigma_identity() {
        let mut rng = HdRng::seed_from(8);
        let v = RealHv::random_gaussian(64, &mut rng);
        assert_eq!(gaussian_perturb(&v, 0.0, &mut rng), v);
    }

    #[test]
    fn gaussian_perturb_keeps_similarity() {
        let mut rng = HdRng::seed_from(9);
        let v = RealHv::random_gaussian(4096, &mut rng);
        let p = gaussian_perturb(&v, 0.5, &mut rng);
        // cos ≈ 1/sqrt(1+σ²) ≈ 0.894 for unit-variance components.
        let cos = cosine(&v, &p);
        assert!(cos > 0.8, "cos = {cos}");
    }

    #[test]
    fn stuck_at_zero_rate() {
        let mut rng = HdRng::seed_from(10);
        let v = RealHv::from_vec(vec![1.0; 50_000]);
        let s = stuck_at_zero(&v, 0.25, &mut rng);
        let zeros = s.as_slice().iter().filter(|&&x| x == 0.0).count();
        let rate = zeros as f64 / 50_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    #[should_panic(expected = "rate must be in")]
    fn bad_rate_panics() {
        let mut rng = HdRng::seed_from(11);
        flip_signs(&RealHv::zeros(4), 1.5, &mut rng);
    }
}
