//! Cache-blocked batch kernels for the encode hot path, plus opt-in fast
//! trigonometry.
//!
//! # Blocked projection
//!
//! The RegHD encoders spend almost all of their time in a `D × n` matvec
//! per row (`P = X·Wᵀ` over a batch). The scalar path walks one output
//! dimension at a time with a single `f32` accumulator, which (a) re-streams
//! the whole weight matrix from memory for every row and (b) serialises the
//! adds into one latency-bound dependency chain. [`project_blocked`] fixes
//! both without changing a single result bit:
//!
//! * **tiling** — output dimensions are processed in tiles of [`DIM_TILE`]
//!   and rows in tiles of [`ROW_TILE`], so one weight tile is loaded once
//!   and reused across every row in the batch instead of being re-streamed
//!   per row;
//! * **multi-accumulator unrolling** — inside a tile, `ROW_TILE × 2`
//!   independent `f32` accumulators run side by side, giving the CPU
//!   instruction-level parallelism (and LLVM a clean autovectorisation
//!   target) where the scalar loop had a single serial add chain.
//!
//! **Bit-exactness.** Every accumulator still sums its `k` (feature) terms
//! in ascending order, starting from `0.0f32`, exactly like the scalar
//! loop's `iter().zip().map(|(&w, &f)| w * f).sum::<f32>()`. The unroll
//! only interleaves *independent* accumulators (different rows / output
//! dims); it never re-associates the reduction over `k`, and Rust never
//! contracts `mul + add` into a fused-multiply-add. So the kernel output is
//! bit-identical to the scalar path for every tile size, batch size, and
//! row/dim remainder — which is what lets the row-parallel equivalence
//! guarantees of `hdc::par` carry over unchanged.
//!
//! # Fast trigonometry
//!
//! [`TrigMode::Fast`] swaps `libm` sin/cos for a range-reduced polynomial
//! evaluation ([`fast_sin`]/[`fast_cos`]) with absolute error bounded by
//! [`FAST_TRIG_MAX_ABS_ERROR`]. It is strictly opt-in: the default
//! [`TrigMode::Exact`] keeps the bit-exact `libm` path, and anything that
//! must replay bit-exactly (training, canary replay) always runs `Exact`.

use crate::bipolar::BipolarHv;
use crate::dense::RealHv;

/// Rows processed together in one tile: each weight value loaded in the
/// inner loop is reused across this many batch rows.
pub const ROW_TILE: usize = 4;

/// Output dimensions per tile: one tile of weight rows (`DIM_TILE × n`
/// floats) stays cache-hot while every row tile of the batch streams
/// through it.
pub const DIM_TILE: usize = 128;

/// How the encoders evaluate `sin`/`cos`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrigMode {
    /// `libm` sin/cos — bit-exact, the default everywhere.
    #[default]
    Exact,
    /// Range-reduced polynomial sin/cos with absolute error bounded by
    /// [`FAST_TRIG_MAX_ABS_ERROR`]. Opt-in, inference-only.
    Fast,
}

impl TrigMode {
    /// Encodes the mode as a byte for storage in an `AtomicU8` knob.
    pub fn as_u8(self) -> u8 {
        match self {
            TrigMode::Exact => 0,
            TrigMode::Fast => 1,
        }
    }

    /// Decodes a byte written by [`TrigMode::as_u8`] (unknown values fall
    /// back to `Exact`, the safe default).
    pub fn from_u8(v: u8) -> Self {
        if v == 1 {
            TrigMode::Fast
        } else {
            TrigMode::Exact
        }
    }
}

/// Absolute error bound for [`fast_sin`] and [`fast_cos`] versus the `f64`
/// reference, valid for arguments `|x| ≤ 1e4` (the encoders' projections
/// plus a phase in `[0, 2π)` sit far inside that). Asserted over a dense
/// argument sweep in this module's tests and in the repo-level
/// `kernel_equivalence` suite.
pub const FAST_TRIG_MAX_ABS_ERROR: f32 = 1.5e-6;

/// Range reduction: writes `x = k·π/2 + r` with `r ∈ [−π/4, π/4]` and
/// returns `(k mod 4, r)`. The reduction runs in `f64` so the quadrant and
/// remainder stay accurate across the documented `|x| ≤ 1e4` range.
#[inline]
fn reduce_quarter(x: f32) -> (u8, f32) {
    let xd = f64::from(x);
    let k = (xd * std::f64::consts::FRAC_2_PI).round();
    let r = (xd - k * std::f64::consts::FRAC_PI_2) as f32;
    // `as` saturates (and maps NaN to 0), so pathological inputs still
    // produce a well-defined quadrant; the NaN remainder propagates.
    // `& 3` is `rem_euclid(4)` on two's complement.
    let q = (k as i64 & 3) as u8;
    (q, r)
}

/// Taylor sine on the reduced range `[−π/4, π/4]`.
#[inline]
fn sin_poly(r: f32) -> f32 {
    let r2 = r * r;
    r * (1.0 + r2 * (-1.0 / 6.0 + r2 * (1.0 / 120.0 + r2 * (-1.0 / 5040.0))))
}

/// Taylor cosine on the reduced range `[−π/4, π/4]`.
#[inline]
fn cos_poly(r: f32) -> f32 {
    let r2 = r * r;
    1.0 + r2 * (-1.0 / 2.0 + r2 * (1.0 / 24.0 + r2 * (-1.0 / 720.0 + r2 * (1.0 / 40320.0))))
}

/// Polynomial `sin(x)` with absolute error ≤ [`FAST_TRIG_MAX_ABS_ERROR`]
/// for `|x| ≤ 1e4`. NaN and infinite inputs return NaN, like `libm`.
#[inline]
pub fn fast_sin(x: f32) -> f32 {
    let (q, r) = reduce_quarter(x);
    // Both polynomials are evaluated and the quadrant picks between them
    // with selects: the quadrant is data-dependent, so a branch here
    // mispredicts on essentially every element and blocks vectorization,
    // while two cheap polynomials plus selects pipeline cleanly.
    let s = sin_poly(r);
    let c = cos_poly(r);
    let v = if q & 1 == 0 { s } else { c };
    if q & 2 == 0 {
        v
    } else {
        -v
    }
}

/// Polynomial `cos(x)` with absolute error ≤ [`FAST_TRIG_MAX_ABS_ERROR`]
/// for `|x| ≤ 1e4`. NaN and infinite inputs return NaN, like `libm`.
#[inline]
pub fn fast_cos(x: f32) -> f32 {
    let (q, r) = reduce_quarter(x);
    // Branchless quadrant selection — see `fast_sin`. cos is negative in
    // quadrants 1 and 2, i.e. exactly when bit 1 of `q + 1` is set.
    let s = sin_poly(r);
    let c = cos_poly(r);
    let v = if q & 1 == 0 { c } else { s };
    if (q + 1) & 2 == 0 {
        v
    } else {
        -v
    }
}

/// Absolute error bound for [`fast_sin_f32`]/[`fast_cos_f32`] versus the
/// `f64` reference, valid for `|x| ≤ 1e3` (the quantised tier's arguments —
/// an int8 projection plus a phase — sit far inside that). Looser than
/// [`FAST_TRIG_MAX_ABS_ERROR`] because the range reduction stays in f32.
pub const QUANT_TRIG_MAX_ABS_ERROR: f32 = 1e-5;

// Cody–Waite split of π/2 for the all-f32 range reduction: the three pieces
// sum to π/2, each short enough that `k · piece` is exact for the `k` range
// produced by `|x| ≤ 1e3`. Shared with the SIMD backends so every lane runs
// the identical op sequence.
pub(crate) const PI2_A: f32 = 1.570_312_5;
// The written digits are the exact decimal values of the f32 pieces; the
// truncations clippy suggests round to the same bits but hide the split.
#[allow(clippy::excessive_precision)]
pub(crate) const PI2_B: f32 = 4.837_512_97e-4;
#[allow(clippy::excessive_precision)]
pub(crate) const PI2_C: f32 = 7.549_789_95e-8;

/// Polynomial `sin(x)` with an **all-f32 range reduction** — the quantised
/// inference tier's trig, roughly 3× cheaper than [`fast_sin`] because no
/// lane ever widens to f64. Absolute error ≤ [`QUANT_TRIG_MAX_ABS_ERROR`]
/// for `|x| ≤ 1e3`; outside that the reduction degrades gracefully (the
/// full-precision paths keep using [`fast_sin`]). Rounds the quadrant index
/// ties-to-even so the SIMD lanes (`_mm256_round_ps` / `vrndnq_f32`) match
/// bit-for-bit. NaN and infinite inputs return NaN.
#[inline]
pub fn fast_sin_f32(x: f32) -> f32 {
    let k = (x * std::f32::consts::FRAC_2_PI).round_ties_even();
    let r = ((x - k * PI2_A) - k * PI2_B) - k * PI2_C;
    // `as` saturates (NaN → 0); `k` is integral so in-range casts are exact
    // and the quadrant agrees with the SIMD lanes' `cvtps` conversions.
    let q = (k as i32) & 3;
    let s = sin_poly(r);
    let c = cos_poly(r);
    let v = if q & 1 == 0 { s } else { c };
    if q & 2 == 0 {
        v
    } else {
        -v
    }
}

/// Polynomial `cos(x)` with the all-f32 range reduction of
/// [`fast_sin_f32`]; same error bound and domain.
#[inline]
pub fn fast_cos_f32(x: f32) -> f32 {
    let k = (x * std::f32::consts::FRAC_2_PI).round_ties_even();
    let r = ((x - k * PI2_A) - k * PI2_B) - k * PI2_C;
    let q = (k as i32) & 3;
    let s = sin_poly(r);
    let c = cos_poly(r);
    let v = if q & 1 == 0 { c } else { s };
    if (q + 1) & 2 == 0 {
        v
    } else {
        -v
    }
}

/// Cache-blocked batch projection `outs[r][d] = Σ_k rows[r][k] ·
/// weights[d·n + k]` for a **row-major** `dim × input_dim` weight matrix
/// (the `NonlinearEncoder`/`RffEncoder` layout).
///
/// Each output vector in `outs` is reset to `dim` zeros (reusing its
/// allocation) and then fully overwritten. Results are bit-identical to the
/// scalar per-row loop — see the module docs for why the tiling cannot
/// change the reduction order.
///
/// # Panics
///
/// Panics when `rows` and `outs` disagree in length, a row is not
/// `input_dim` wide, or the weight matrix is not `dim × input_dim`.
///
/// When an explicit-SIMD level is active (see [`crate::simd`]), the matvec
/// runs on the AVX2/NEON lane kernels instead of the blocked scalar tiles;
/// both paths produce bit-identical results, so callers never observe the
/// dispatch.
pub fn project_blocked(
    weights: &[f32],
    input_dim: usize,
    dim: usize,
    rows: &[&[f32]],
    outs: &mut [RealHv],
) {
    assert_eq!(rows.len(), outs.len(), "rows/outs length mismatch");
    assert_eq!(
        weights.len(),
        dim * input_dim,
        "weight matrix must be dim × input_dim"
    );
    for row in rows {
        assert_eq!(row.len(), input_dim, "row width must match input_dim");
    }
    for out in outs.iter_mut() {
        out.reset(dim);
    }
    if crate::simd::project_rowmajor_simd(weights, input_dim, dim, rows, outs) {
        return;
    }
    project_blocked_scalar(weights, input_dim, dim, rows, outs);
}

/// The portable blocked-tile body of [`project_blocked`] — the reference
/// implementation every SIMD path must match bit-for-bit. Caller has
/// validated shapes and reset the outputs.
fn project_blocked_scalar(
    weights: &[f32],
    input_dim: usize,
    dim: usize,
    rows: &[&[f32]],
    outs: &mut [RealHv],
) {
    let mut d0 = 0;
    while d0 < dim {
        let d1 = (d0 + DIM_TILE).min(dim);
        for (row_tile, out_tile) in rows.chunks(ROW_TILE).zip(outs.chunks_mut(ROW_TILE)) {
            match (row_tile, &mut *out_tile) {
                ([x0, x1, x2, x3], [o0, o1, o2, o3]) => project_tile4(
                    weights,
                    input_dim,
                    d0,
                    d1,
                    [x0, x1, x2, x3],
                    [
                        o0.as_mut_slice(),
                        o1.as_mut_slice(),
                        o2.as_mut_slice(),
                        o3.as_mut_slice(),
                    ],
                ),
                _ => {
                    for (x, o) in row_tile.iter().zip(out_tile.iter_mut()) {
                        project_tile1(weights, input_dim, d0, d1, x, o.as_mut_slice());
                    }
                }
            }
        }
        d0 = d1;
    }
}

/// One `ROW_TILE × [dlo, dhi)` tile: dims in pairs, `4 × 2 = 8`
/// independent accumulators, each summing over `k` in ascending order from
/// `0.0` exactly like the scalar loop.
fn project_tile4(
    weights: &[f32],
    n: usize,
    dlo: usize,
    dhi: usize,
    x: [&[f32]; ROW_TILE],
    o: [&mut [f32]; ROW_TILE],
) {
    let [x0, x1, x2, x3] = [&x[0][..n], &x[1][..n], &x[2][..n], &x[3][..n]];
    let [o0, o1, o2, o3] = o;
    let mut d = dlo;
    while d + 2 <= dhi {
        let wa = &weights[d * n..(d + 1) * n];
        let wb = &weights[(d + 1) * n..(d + 2) * n];
        let (mut a0a, mut a0b, mut a1a, mut a1b) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        let (mut a2a, mut a2b, mut a3a, mut a3b) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        for k in 0..n {
            let (va, vb) = (wa[k], wb[k]);
            a0a += x0[k] * va;
            a0b += x0[k] * vb;
            a1a += x1[k] * va;
            a1b += x1[k] * vb;
            a2a += x2[k] * va;
            a2b += x2[k] * vb;
            a3a += x3[k] * va;
            a3b += x3[k] * vb;
        }
        o0[d] = a0a;
        o0[d + 1] = a0b;
        o1[d] = a1a;
        o1[d + 1] = a1b;
        o2[d] = a2a;
        o2[d + 1] = a2b;
        o3[d] = a3a;
        o3[d + 1] = a3b;
        d += 2;
    }
    if d < dhi {
        let wa = &weights[d * n..(d + 1) * n];
        let (mut a0, mut a1, mut a2, mut a3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        for k in 0..n {
            let va = wa[k];
            a0 += x0[k] * va;
            a1 += x1[k] * va;
            a2 += x2[k] * va;
            a3 += x3[k] * va;
        }
        o0[d] = a0;
        o1[d] = a1;
        o2[d] = a2;
        o3[d] = a3;
    }
}

/// Remainder-row tile (fewer than [`ROW_TILE`] rows left): one row, dims in
/// pairs so there are still two independent accumulator chains.
fn project_tile1(weights: &[f32], n: usize, dlo: usize, dhi: usize, x: &[f32], o: &mut [f32]) {
    let x = &x[..n];
    let mut d = dlo;
    while d + 2 <= dhi {
        let wa = &weights[d * n..(d + 1) * n];
        let wb = &weights[(d + 1) * n..(d + 2) * n];
        let (mut aa, mut ab) = (0.0f32, 0.0f32);
        for k in 0..n {
            aa += x[k] * wa[k];
            ab += x[k] * wb[k];
        }
        o[d] = aa;
        o[d + 1] = ab;
        d += 2;
    }
    if d < dhi {
        let wa = &weights[d * n..(d + 1) * n];
        let mut aa = 0.0f32;
        for k in 0..n {
            aa += x[k] * wa[k];
        }
        o[d] = aa;
    }
}

/// Cache-blocked batch projection for the **transposed** bipolar layout of
/// `ProjectionEncoder`: `outs[r][d] = Σ_k rows[r][k] · bases[k][d]` with one
/// base hypervector per input feature.
///
/// `k` stays the outer loop (matching the scalar path, so every `(row, d)`
/// accumulator sums in ascending `k` order from `0.0`), dims are tiled so
/// the row tile's output sections stay in L1 across the whole `k` sweep,
/// and each base row's `i8 → f32` conversion is shared by [`ROW_TILE`] rows
/// instead of being redone per row.
///
/// # Panics
///
/// Panics when `rows` and `outs` disagree in length, a row is not
/// `bases.len()` wide, or a base hypervector is not `dim` wide.
pub fn project_bipolar_blocked(
    bases: &[BipolarHv],
    dim: usize,
    rows: &[&[f32]],
    outs: &mut [RealHv],
) {
    assert_eq!(rows.len(), outs.len(), "rows/outs length mismatch");
    for row in rows {
        assert_eq!(row.len(), bases.len(), "row width must match bases.len()");
    }
    for base in bases {
        assert_eq!(base.dim(), dim, "base hypervector width must match dim");
    }
    for out in outs.iter_mut() {
        out.reset(dim);
    }
    if crate::simd::project_bipolar_simd(bases, dim, rows, outs) {
        return;
    }
    let n = bases.len();
    let mut d0 = 0;
    while d0 < dim {
        let d1 = (d0 + DIM_TILE).min(dim);
        for (row_tile, out_tile) in rows.chunks(ROW_TILE).zip(outs.chunks_mut(ROW_TILE)) {
            match (row_tile, &mut *out_tile) {
                ([x0, x1, x2, x3], [o0, o1, o2, o3]) => {
                    let (t0, t1) = (
                        &mut o0.as_mut_slice()[d0..d1],
                        &mut o1.as_mut_slice()[d0..d1],
                    );
                    let (t2, t3) = (
                        &mut o2.as_mut_slice()[d0..d1],
                        &mut o3.as_mut_slice()[d0..d1],
                    );
                    for k in 0..n {
                        let base = &bases[k].as_slice()[d0..d1];
                        let (f0, f1, f2, f3) = (x0[k], x1[k], x2[k], x3[k]);
                        for (j, &b) in base.iter().enumerate() {
                            let bf = f32::from(b);
                            t0[j] += f0 * bf;
                            t1[j] += f1 * bf;
                            t2[j] += f2 * bf;
                            t3[j] += f3 * bf;
                        }
                    }
                }
                _ => {
                    for (x, o) in row_tile.iter().zip(out_tile.iter_mut()) {
                        let t = &mut o.as_mut_slice()[d0..d1];
                        for k in 0..n {
                            let base = &bases[k].as_slice()[d0..d1];
                            let f = x[k];
                            for (j, &b) in base.iter().enumerate() {
                                t[j] += f * f32::from(b);
                            }
                        }
                    }
                }
            }
        }
        d0 = d1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::HdRng;

    /// The scalar reference: exactly the per-row loop the encoders use.
    fn scalar_project(weights: &[f32], n: usize, dim: usize, row: &[f32]) -> Vec<f32> {
        (0..dim)
            .map(|d| {
                weights[d * n..(d + 1) * n]
                    .iter()
                    .zip(row)
                    .map(|(&w, &f)| w * f)
                    .sum::<f32>()
            })
            .collect()
    }

    fn scalar_project_bipolar(bases: &[BipolarHv], dim: usize, row: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; dim];
        for (k, &f) in row.iter().enumerate() {
            for (o, &b) in out.iter_mut().zip(bases[k].as_slice()) {
                *o += f * f32::from(b);
            }
        }
        out
    }

    fn gaussian(len: usize, rng: &mut HdRng) -> Vec<f32> {
        (0..len).map(|_| rng.next_gaussian() as f32).collect()
    }

    #[test]
    fn blocked_projection_is_bit_identical_to_scalar() {
        let mut rng = HdRng::seed_from(11);
        // Dims and batch sizes straddling the tile boundaries: 1, tile−1,
        // tile, tile+1, primes, and non-divisors of DIM_TILE/ROW_TILE.
        for &(n, dim) in &[(1usize, 1usize), (3, 127), (7, 128), (5, 129), (13, 257)] {
            let weights = gaussian(dim * n, &mut rng);
            for &batch in &[1usize, 3, 4, 5, 11] {
                let rows: Vec<Vec<f32>> = (0..batch).map(|_| gaussian(n, &mut rng)).collect();
                let row_refs: Vec<&[f32]> = rows.iter().map(Vec::as_slice).collect();
                let mut outs = vec![RealHv::default(); batch];
                project_blocked(&weights, n, dim, &row_refs, &mut outs);
                for (row, out) in rows.iter().zip(&outs) {
                    let want = scalar_project(&weights, n, dim, row);
                    let want_bits: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
                    let got_bits: Vec<u32> = out.as_slice().iter().map(|v| v.to_bits()).collect();
                    assert_eq!(got_bits, want_bits, "n={n} dim={dim} batch={batch}");
                }
            }
        }
    }

    #[test]
    fn blocked_projection_reuses_output_allocations() {
        let mut rng = HdRng::seed_from(5);
        let (n, dim) = (4, 64);
        let weights = gaussian(dim * n, &mut rng);
        let rows: Vec<Vec<f32>> = (0..6).map(|_| gaussian(n, &mut rng)).collect();
        let row_refs: Vec<&[f32]> = rows.iter().map(Vec::as_slice).collect();
        // Pre-sized outputs keep their allocation; stale contents must not
        // leak into the result.
        let mut outs = vec![RealHv::from_vec(vec![99.0; dim]); 6];
        let ptrs: Vec<*const f32> = outs.iter().map(|o| o.as_slice().as_ptr()).collect();
        project_blocked(&weights, n, dim, &row_refs, &mut outs);
        for (out, ptr) in outs.iter().zip(ptrs) {
            assert_eq!(out.as_slice().as_ptr(), ptr, "allocation must be reused");
            assert!(out.as_slice().iter().all(|v| *v != 99.0));
        }
    }

    #[test]
    fn blocked_bipolar_projection_is_bit_identical_to_scalar() {
        let mut rng = HdRng::seed_from(23);
        for &(n, dim) in &[(1usize, 1usize), (4, 127), (6, 129), (9, 131)] {
            let bases: Vec<BipolarHv> = (0..n).map(|_| BipolarHv::random(dim, &mut rng)).collect();
            for &batch in &[1usize, 3, 4, 5, 9] {
                let rows: Vec<Vec<f32>> = (0..batch).map(|_| gaussian(n, &mut rng)).collect();
                let row_refs: Vec<&[f32]> = rows.iter().map(Vec::as_slice).collect();
                let mut outs = vec![RealHv::default(); batch];
                project_bipolar_blocked(&bases, dim, &row_refs, &mut outs);
                for (row, out) in rows.iter().zip(&outs) {
                    let want = scalar_project_bipolar(&bases, dim, row);
                    let want_bits: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
                    let got_bits: Vec<u32> = out.as_slice().iter().map(|v| v.to_bits()).collect();
                    assert_eq!(got_bits, want_bits, "n={n} dim={dim} batch={batch}");
                }
            }
        }
    }

    #[test]
    fn fast_trig_honours_documented_error_bound() {
        // Dense sweep over the encoders' working range plus a coarser sweep
        // out to the documented |x| ≤ 1e4 limit.
        let mut max_err = 0.0f64;
        let mut x = -20.0f64;
        while x <= 20.0 {
            let xf = x as f32;
            max_err = max_err.max((f64::from(fast_sin(xf)) - f64::from(xf).sin()).abs());
            max_err = max_err.max((f64::from(fast_cos(xf)) - f64::from(xf).cos()).abs());
            x += 1e-3;
        }
        let mut x = -1e4f64;
        while x <= 1e4 {
            let xf = x as f32;
            max_err = max_err.max((f64::from(fast_sin(xf)) - f64::from(xf).sin()).abs());
            max_err = max_err.max((f64::from(fast_cos(xf)) - f64::from(xf).cos()).abs());
            x += 0.37;
        }
        assert!(
            max_err <= f64::from(FAST_TRIG_MAX_ABS_ERROR),
            "measured max error {max_err:e} exceeds the documented bound"
        );
    }

    #[test]
    fn fast_trig_propagates_non_finite_inputs() {
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            assert!(fast_sin(bad).is_nan());
            assert!(fast_cos(bad).is_nan());
        }
    }

    #[test]
    fn quant_trig_honours_documented_error_bound() {
        // Dense sweep over the quantised tier's working range plus a coarser
        // sweep out to the documented |x| ≤ 1e3 limit.
        let mut max_err = 0.0f64;
        let mut x = -20.0f64;
        while x <= 20.0 {
            let xf = x as f32;
            max_err = max_err.max((f64::from(fast_sin_f32(xf)) - f64::from(xf).sin()).abs());
            max_err = max_err.max((f64::from(fast_cos_f32(xf)) - f64::from(xf).cos()).abs());
            x += 1e-3;
        }
        let mut x = -1e3f64;
        while x <= 1e3 {
            let xf = x as f32;
            max_err = max_err.max((f64::from(fast_sin_f32(xf)) - f64::from(xf).sin()).abs());
            max_err = max_err.max((f64::from(fast_cos_f32(xf)) - f64::from(xf).cos()).abs());
            x += 0.037;
        }
        assert!(
            max_err <= f64::from(QUANT_TRIG_MAX_ABS_ERROR),
            "measured max error {max_err:e} exceeds the documented bound"
        );
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            assert!(fast_sin_f32(bad).is_nan());
            assert!(fast_cos_f32(bad).is_nan());
        }
    }

    #[test]
    fn trig_mode_roundtrips_through_u8() {
        assert_eq!(TrigMode::from_u8(TrigMode::Exact.as_u8()), TrigMode::Exact);
        assert_eq!(TrigMode::from_u8(TrigMode::Fast.as_u8()), TrigMode::Fast);
        assert_eq!(TrigMode::from_u8(250), TrigMode::Exact);
        assert_eq!(TrigMode::default(), TrigMode::Exact);
    }
}
