//! Int8 projection quantisation for the bit-packed inference tier.
//!
//! The paper's §3.2 quantisation framework replaces the f32 encode matvec
//! with integer arithmetic: the projection matrix is quantised **per output
//! dimension** (each row of `W` gets its own scale, so a large row cannot
//! crush the resolution of a small one) and each incoming feature row is
//! quantised **per row** at request time. One output value is then
//!
//! ```text
//! p[d] ≈ (Σ_k q_w[d][k] · q_x[k]) · scale_w[d] · scale_x
//! ```
//!
//! with the inner sum running in exact i32 arithmetic (see
//! [`crate::simd::dot_i8`]). The binary tier only consumes the **signs** of
//! the encoded values plus one amplitude statistic, so the quantisation
//! error that matters is sign flips near zero — measured end-to-end in
//! `EXPERIMENTS.md` against the paper's accuracy-loss claims.

use crate::simd;

/// Symmetric linear quantisation of one f32 slice to i8: returns the scale
/// `s` such that `q[i] · s ≈ x[i]`, with `q[i] = round(x[i] / s)` clamped to
/// `[-127, 127]`. An all-zero (or empty) slice gets scale `0.0` and all-zero
/// codes. Non-finite values are clamped like infinities (NaN maps to 0).
pub fn quantize_i8(xs: &[f32], out: &mut Vec<i8>) -> f32 {
    out.clear();
    let max_abs = xs.iter().fold(
        0.0f32,
        |m, &x| {
            if x.is_finite() {
                m.max(x.abs())
            } else {
                m
            }
        },
    );
    if max_abs == 0.0 {
        out.resize(xs.len(), 0);
        return 0.0;
    }
    let scale = max_abs / 127.0;
    let inv = 127.0 / max_abs;
    out.extend(xs.iter().map(|&x| {
        if x.is_finite() {
            (x * inv).round().clamp(-127.0, 127.0) as i8
        } else if x == f32::INFINITY {
            127
        } else if x == f32::NEG_INFINITY {
            -127
        } else {
            0
        }
    }));
    scale
}

/// A `dim × input_dim` projection matrix quantised to i8 with one scale per
/// output dimension — the weight side of the §3.2 integer encode path.
/// Built eagerly by the encoders that support the quantised tier.
#[derive(Debug, Clone)]
pub struct QuantizedWeights {
    q: Vec<i8>,
    scales: Vec<f32>,
    input_dim: usize,
    dim: usize,
}

impl QuantizedWeights {
    /// Quantises a row-major `dim × input_dim` f32 matrix.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != dim * input_dim`.
    pub fn from_f32(weights: &[f32], input_dim: usize, dim: usize) -> Self {
        assert_eq!(
            weights.len(),
            dim * input_dim,
            "weight matrix must be dim × input_dim"
        );
        let mut q = Vec::with_capacity(weights.len());
        let mut scales = Vec::with_capacity(dim);
        let mut row_q = Vec::with_capacity(input_dim);
        for d in 0..dim {
            let row = &weights[d * input_dim..(d + 1) * input_dim];
            scales.push(quantize_i8(row, &mut row_q));
            q.extend_from_slice(&row_q);
        }
        Self {
            q,
            scales,
            input_dim,
            dim,
        }
    }

    /// The input width `n`.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// The output width `D`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Integer projection of one quantised row:
    /// `out[d] = dot_i8(W_q[d], row_q) · scales[d] · row_scale`.
    ///
    /// # Panics
    ///
    /// Panics if `row_q` is not `input_dim` wide or `out` is not `dim` wide.
    pub fn project_row_into(&self, row_q: &[i8], row_scale: f32, out: &mut [f32]) {
        assert_eq!(
            row_q.len(),
            self.input_dim,
            "row width must match input_dim"
        );
        assert_eq!(out.len(), self.dim, "output width must match dim");
        simd::project_i8_rowmajor(&self.q, self.input_dim, &self.scales, row_q, row_scale, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::HdRng;

    #[test]
    fn quantize_roundtrips_within_half_step() {
        let mut rng = HdRng::seed_from(3);
        let xs: Vec<f32> = (0..257).map(|_| rng.next_gaussian() as f32).collect();
        let mut q = Vec::new();
        let scale = quantize_i8(&xs, &mut q);
        assert!(scale > 0.0);
        for (&x, &c) in xs.iter().zip(&q) {
            assert!(
                (x - f32::from(c) * scale).abs() <= scale * 0.5 + 1e-6,
                "x={x} code={c} scale={scale}"
            );
        }
    }

    #[test]
    fn quantize_zero_and_nonfinite() {
        let mut q = Vec::new();
        assert_eq!(quantize_i8(&[0.0, -0.0], &mut q), 0.0);
        assert_eq!(q, vec![0, 0]);
        let scale = quantize_i8(&[1.0, f32::INFINITY, f32::NEG_INFINITY, f32::NAN], &mut q);
        assert!(scale > 0.0);
        assert_eq!(&q[1..], &[127, -127, 0]);
        assert_eq!(quantize_i8(&[], &mut q), 0.0);
        assert!(q.is_empty());
    }

    #[test]
    fn projection_approximates_f32_matvec() {
        let mut rng = HdRng::seed_from(7);
        let (n, dim) = (13, 211);
        let weights: Vec<f32> = (0..dim * n).map(|_| rng.next_gaussian() as f32).collect();
        let qw = QuantizedWeights::from_f32(&weights, n, dim);
        assert_eq!(qw.input_dim(), n);
        assert_eq!(qw.dim(), dim);
        let row: Vec<f32> = (0..n).map(|_| rng.next_gaussian() as f32).collect();
        let mut row_q = Vec::new();
        let row_scale = quantize_i8(&row, &mut row_q);
        let mut got = vec![0.0f32; dim];
        qw.project_row_into(&row_q, row_scale, &mut got);
        // Worst-case per-term error is one half-step from each side; with
        // n=13 gaussian terms the observed error should sit far inside a
        // loose 5%-of-range envelope.
        let max_abs = got.iter().fold(0.0f32, |m, &v| m.max(v.abs())).max(1e-6);
        for (d, &g) in got.iter().enumerate() {
            let want: f32 = weights[d * n..(d + 1) * n]
                .iter()
                .zip(&row)
                .map(|(&w, &x)| w * x)
                .sum();
            assert!(
                (g - want).abs() <= 0.05 * max_abs + 0.05,
                "d={d}: quantised {g} vs exact {want}"
            );
        }
    }

    #[test]
    fn zero_scale_projects_to_zero() {
        let qw = QuantizedWeights::from_f32(&[1.0, -1.0, 2.0, 0.5], 2, 2);
        let mut out = vec![9.0f32; 2];
        qw.project_row_into(&[0, 0], 0.0, &mut out);
        assert_eq!(out, vec![0.0, 0.0]);
    }
}
