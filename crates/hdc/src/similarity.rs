//! Similarity metrics between hypervectors.
//!
//! RegHD uses two families of similarity:
//!
//! * **Cosine similarity** (Eq. 5) over real/integer hypervectors — used by
//!   the full-precision multi-model search and by the model-confidence
//!   computation.
//! * **Hamming similarity** over bit-packed binary hypervectors — the cheap
//!   substitute enabled by the quantized-clustering framework (§3.1).
//!
//! The mapping between the two: for vectors drawn from `{±1}^D`,
//! `cos(a,b) = 1 − 2·hamming(a,b)/D`, so a Hamming search ranks candidates
//! identically to a cosine search over the corresponding bipolar vectors.

use crate::{BinaryHv, RealHv};

/// Cosine similarity `a·b / (‖a‖‖b‖)` between two real hypervectors.
///
/// Returns `0.0` when either vector has zero norm (the convention used by
/// RegHD's cluster search: an untrained zero model matches nothing).
///
/// # Panics
///
/// Panics if the dimensionalities differ.
///
/// # Examples
///
/// ```
/// use hdc::{RealHv, similarity};
///
/// let a = RealHv::from_vec(vec![1.0, 0.0]);
/// let b = RealHv::from_vec(vec![0.0, 1.0]);
/// assert_eq!(similarity::cosine(&a, &b), 0.0);
/// assert!((similarity::cosine(&a, &a) - 1.0).abs() < 1e-6);
/// ```
pub fn cosine(a: &RealHv, b: &RealHv) -> f32 {
    assert_eq!(
        a.dim(),
        b.dim(),
        "cosine: dimension mismatch ({} vs {})",
        a.dim(),
        b.dim()
    );
    let na = a.norm();
    let nb = b.norm();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    let c = a.dot(b) / (na * nb);
    c.clamp(-1.0, 1.0)
}

/// Plain dot product between two real hypervectors. See
/// [`RealHv::dot`] — re-exported here so all metrics live in one module.
///
/// # Panics
///
/// Panics if the dimensionalities differ.
pub fn dot(a: &RealHv, b: &RealHv) -> f32 {
    a.dot(b)
}

/// Hamming distance (number of differing bits) between two binary
/// hypervectors, computed with XOR + popcount over packed words.
///
/// # Panics
///
/// Panics if the dimensionalities differ.
///
/// # Examples
///
/// ```
/// use hdc::{BinaryHv, similarity};
///
/// let a = BinaryHv::from_bits(3, [true, true, false]);
/// let b = BinaryHv::from_bits(3, [true, false, true]);
/// assert_eq!(similarity::hamming_distance(&a, &b), 2);
/// ```
pub fn hamming_distance(a: &BinaryHv, b: &BinaryHv) -> usize {
    assert_eq!(
        a.dim(),
        b.dim(),
        "hamming: dimension mismatch ({} vs {})",
        a.dim(),
        b.dim()
    );
    crate::simd::hamming_words(a.as_words(), b.as_words())
}

/// Normalised Hamming **similarity** in `[-1, 1]`:
/// `1 − 2·hamming(a,b)/D`. Equals the cosine similarity of the corresponding
/// bipolar (±1) vectors, which is what makes it a drop-in replacement for
/// Eq. 5 in the quantized cluster search.
///
/// Returns `0.0` for zero-width vectors.
///
/// # Panics
///
/// Panics if the dimensionalities differ.
pub fn hamming_similarity(a: &BinaryHv, b: &BinaryHv) -> f32 {
    if a.dim() == 0 {
        assert_eq!(b.dim(), 0, "hamming: dimension mismatch (0 vs {})", b.dim());
        return 0.0;
    }
    1.0 - 2.0 * hamming_distance(a, b) as f32 / a.dim() as f32
}

/// Squared Euclidean distance between two real hypervectors.
///
/// # Panics
///
/// Panics if the dimensionalities differ.
pub fn squared_euclidean(a: &RealHv, b: &RealHv) -> f32 {
    assert_eq!(
        a.dim(),
        b.dim(),
        "euclidean: dimension mismatch ({} vs {})",
        a.dim(),
        b.dim()
    );
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum::<f64>() as f32
}

/// Softmax normalisation of raw similarity scores into confidences
/// (`δ′` in the paper, step ③ of Fig. 4). `beta` is an inverse-temperature
/// hyper-parameter: larger values sharpen the distribution toward the argmax
/// cluster.
///
/// Uses the max-subtraction trick for numerical stability. An empty slice
/// yields an empty output; non-finite inputs are clamped before
/// exponentiation.
///
/// # Examples
///
/// ```
/// use hdc::similarity::softmax;
///
/// let conf = softmax(&[1.0, 1.0], 1.0);
/// assert!((conf[0] - 0.5).abs() < 1e-6);
/// assert!((conf.iter().sum::<f32>() - 1.0).abs() < 1e-6);
/// ```
pub fn softmax(scores: &[f32], beta: f32) -> Vec<f32> {
    let mut out = Vec::with_capacity(scores.len());
    softmax_into(scores, beta, &mut out);
    out
}

/// Allocation-free variant of [`softmax`]: clears `out` and fills it with
/// the confidences. Batched prediction paths call this once per row with a
/// reused buffer.
pub fn softmax_into(scores: &[f32], beta: f32, out: &mut Vec<f32>) {
    out.clear();
    if scores.is_empty() {
        return;
    }
    let max = scores
        .iter()
        .copied()
        .filter(|s| s.is_finite())
        .fold(f32::NEG_INFINITY, f32::max);
    let max = if max.is_finite() { max } else { 0.0 };
    // Two passes recomputing the exponentials keeps the arithmetic (and
    // therefore every seeded training trajectory) bit-identical to the
    // allocating version while needing no f64 scratch buffer; the doubled
    // exp cost over k ≈ 8 scores is noise next to the D-wide dot products
    // that produced them.
    let exp = |s: f32| {
        let s = if s.is_finite() { s } else { max };
        ((s - max) as f64 * beta as f64).exp()
    };
    let sum: f64 = scores.iter().map(|&s| exp(s)).sum();
    if sum <= 0.0 || !sum.is_finite() {
        // Degenerate case: fall back to uniform confidences.
        out.extend(std::iter::repeat_n(1.0 / scores.len() as f32, scores.len()));
        return;
    }
    out.extend(scores.iter().map(|&s| (exp(s) / sum) as f32));
}

/// Index of the maximum score, breaking ties toward the lower index.
/// Returns `None` for an empty slice. Non-finite scores lose to any finite
/// score.
pub fn argmax(scores: &[f32]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &s) in scores.iter().enumerate() {
        let key = if s.is_finite() { s } else { f32::NEG_INFINITY };
        match best {
            None => best = Some((i, key)),
            Some((_, b)) if key > b => best = Some((i, key)),
            _ => {}
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::HdRng;
    use crate::BipolarHv;

    #[test]
    fn cosine_self_is_one() {
        let mut rng = HdRng::seed_from(1);
        let v = RealHv::random_gaussian(512, &mut rng);
        assert!((cosine(&v, &v) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn cosine_negation_is_minus_one() {
        let v = RealHv::from_vec(vec![1.0, -2.0, 3.0]);
        let mut n = v.clone();
        n.scale(-1.0);
        assert!((cosine(&v, &n) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_vector_is_zero() {
        let z = RealHv::zeros(8);
        let v = RealHv::from_vec(vec![1.0; 8]);
        assert_eq!(cosine(&z, &v), 0.0);
        assert_eq!(cosine(&v, &z), 0.0);
    }

    #[test]
    fn cosine_scale_invariant() {
        let mut rng = HdRng::seed_from(2);
        let a = RealHv::random_gaussian(256, &mut rng);
        let b = RealHv::random_gaussian(256, &mut rng);
        let mut b10 = b.clone();
        b10.scale(10.0);
        assert!((cosine(&a, &b) - cosine(&a, &b10)).abs() < 1e-5);
    }

    #[test]
    fn hamming_identity_and_symmetry() {
        let mut rng = HdRng::seed_from(3);
        let a = BinaryHv::random(1000, &mut rng);
        let b = BinaryHv::random(1000, &mut rng);
        assert_eq!(hamming_distance(&a, &a), 0);
        assert_eq!(hamming_distance(&a, &b), hamming_distance(&b, &a));
    }

    #[test]
    fn hamming_similarity_matches_bipolar_cosine() {
        // The key identity justifying §3.1's Hamming substitution.
        let mut rng = HdRng::seed_from(4);
        let a = BipolarHv::random(4096, &mut rng);
        let b = BipolarHv::random(4096, &mut rng);
        let cos = cosine(&a.to_real(), &b.to_real());
        let ham = hamming_similarity(&a.to_binary(), &b.to_binary());
        assert!((cos - ham).abs() < 1e-4, "cos={cos} ham={ham}");
    }

    #[test]
    fn hamming_similarity_bounds() {
        let mut rng = HdRng::seed_from(5);
        for _ in 0..10 {
            let a = BinaryHv::random(512, &mut rng);
            let b = BinaryHv::random(512, &mut rng);
            let s = hamming_similarity(&a, &b);
            assert!((-1.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn hamming_similarity_empty_is_zero() {
        assert_eq!(
            hamming_similarity(&BinaryHv::zeros(0), &BinaryHv::zeros(0)),
            0.0
        );
    }

    #[test]
    fn squared_euclidean_reference() {
        let a = RealHv::from_vec(vec![1.0, 2.0]);
        let b = RealHv::from_vec(vec![4.0, 6.0]);
        assert_eq!(squared_euclidean(&a, &b), 9.0 + 16.0);
    }

    #[test]
    fn softmax_sums_to_one() {
        let conf = softmax(&[0.1, 0.9, -0.5, 0.3], 4.0);
        let sum: f32 = conf.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(conf.iter().all(|&c| c >= 0.0));
    }

    #[test]
    fn softmax_monotone_in_scores() {
        let conf = softmax(&[0.2, 0.8], 2.0);
        assert!(conf[1] > conf[0]);
    }

    #[test]
    fn softmax_beta_sharpens() {
        let soft = softmax(&[0.0, 1.0], 1.0);
        let sharp = softmax(&[0.0, 1.0], 10.0);
        assert!(sharp[1] > soft[1]);
    }

    #[test]
    fn softmax_empty_is_empty() {
        assert!(softmax(&[], 1.0).is_empty());
    }

    #[test]
    fn softmax_handles_nan_scores() {
        let conf = softmax(&[f32::NAN, 1.0], 1.0);
        assert!((conf.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(conf.iter().all(|c| c.is_finite()));
    }

    #[test]
    fn softmax_extreme_scores_stable() {
        let conf = softmax(&[1e30, -1e30], 1.0);
        assert!(conf.iter().all(|c| c.is_finite()));
        assert!((conf.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn softmax_uniform_when_equal() {
        let conf = softmax(&[0.5; 5], 3.0);
        for &c in &conf {
            assert!((c - 0.2).abs() < 1e-6);
        }
    }

    #[test]
    fn argmax_basics() {
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[3.0]), Some(0));
        assert_eq!(argmax(&[1.0, 5.0, 2.0]), Some(1));
        // Tie breaks low.
        assert_eq!(argmax(&[5.0, 5.0]), Some(0));
        // NaN loses.
        assert_eq!(argmax(&[f32::NAN, 1.0]), Some(1));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn cosine_mismatch_panics() {
        cosine(&RealHv::zeros(4), &RealHv::zeros(5));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn hamming_mismatch_panics() {
        hamming_distance(&BinaryHv::zeros(4), &BinaryHv::zeros(5));
    }
}
