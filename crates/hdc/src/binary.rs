//! Bit-packed binary hypervectors.
//!
//! The quantized-clustering framework of RegHD §3.1 replaces costly cosine
//! similarity over integer cluster hypervectors with **Hamming distance over
//! binary hypervectors**. [`BinaryHv`] stores `D` bits packed into `u64`
//! words so the Hamming distance of two `D = 4096` hypervectors is 64 XOR +
//! popcount operations — the hardware-friendliness the paper's efficiency
//! numbers rest on.

use crate::rng::HdRng;
use crate::RealHv;

/// A hypervector of `{0,1}` components packed 64 per `u64` word.
///
/// Bits beyond `dim` in the last word are always kept zero ("canonical
/// form"), so whole-word popcount operations need no masking.
///
/// # Examples
///
/// ```
/// use hdc::BinaryHv;
///
/// let a = BinaryHv::from_bits(4, [true, false, true, true]);
/// let b = BinaryHv::from_bits(4, [true, true, true, false]);
/// assert_eq!(hdc::similarity::hamming_distance(&a, &b), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct BinaryHv {
    dim: usize,
    words: Vec<u64>,
}

fn words_for(dim: usize) -> usize {
    dim.div_ceil(64)
}

impl BinaryHv {
    /// Creates an all-zero binary hypervector of width `dim`.
    pub fn zeros(dim: usize) -> Self {
        Self {
            dim,
            words: vec![0; words_for(dim)],
        }
    }

    /// Creates a uniformly random binary hypervector.
    pub fn random(dim: usize, rng: &mut HdRng) -> Self {
        let mut words: Vec<u64> = (0..words_for(dim)).map(|_| rng.next_u64()).collect();
        Self::mask_tail(dim, &mut words);
        Self { dim, words }
    }

    /// Builds a binary hypervector from an iterator of bits.
    ///
    /// # Panics
    ///
    /// Panics if the iterator yields fewer or more than `dim` items.
    pub fn from_bits<I: IntoIterator<Item = bool>>(dim: usize, bits: I) -> Self {
        let mut words = vec![0u64; words_for(dim)];
        let mut count = 0usize;
        for (i, bit) in bits.into_iter().enumerate() {
            assert!(i < dim, "from_bits: more than {dim} bits supplied");
            if bit {
                words[i / 64] |= 1u64 << (i % 64);
            }
            count += 1;
        }
        assert_eq!(count, dim, "from_bits: expected {dim} bits, got {count}");
        Self { dim, words }
    }

    /// Builds a binary hypervector directly from pre-packed words (64 bits
    /// per word, little-endian bit order within a word — the layout
    /// [`BinaryHv::as_words`] exposes). Bits beyond `dim` in the last word
    /// are cleared to keep the canonical form. This is the fused-encoding
    /// fast path: encoders that compute sign bits while writing the real
    /// hypervector can pack them into words on the fly instead of running a
    /// second binarisation pass.
    ///
    /// # Panics
    ///
    /// Panics if `words.len()` is not exactly `dim.div_ceil(64)`.
    pub fn from_words(dim: usize, mut words: Vec<u64>) -> Self {
        assert_eq!(
            words.len(),
            words_for(dim),
            "from_words: expected {} words for dim {dim}, got {}",
            words_for(dim),
            words.len()
        );
        Self::mask_tail(dim, &mut words);
        Self { dim, words }
    }

    fn mask_tail(dim: usize, words: &mut [u64]) {
        let tail = dim % 64;
        if tail != 0 {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// The dimensionality `D` in bits.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Whether the vector has zero width.
    pub fn is_empty(&self) -> bool {
        self.dim == 0
    }

    /// The packed words backing the vector.
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Consumes the vector and returns its backing words — the inverse of
    /// [`BinaryHv::from_words`]. Hot paths that rebuild a packed query per
    /// row round-trip one word buffer through these two calls instead of
    /// allocating.
    pub fn into_words(self) -> Vec<u64> {
        self.words
    }

    /// Bit at position `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= dim()`.
    pub fn get(&self, idx: usize) -> bool {
        assert!(idx < self.dim, "bit index {idx} out of range {}", self.dim);
        (self.words[idx / 64] >> (idx % 64)) & 1 == 1
    }

    /// Sets the bit at position `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= dim()`.
    pub fn set(&mut self, idx: usize, value: bool) {
        assert!(idx < self.dim, "bit index {idx} out of range {}", self.dim);
        let mask = 1u64 << (idx % 64);
        if value {
            self.words[idx / 64] |= mask;
        } else {
            self.words[idx / 64] &= !mask;
        }
    }

    /// Flips the bit at position `idx` (used by noise injection).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= dim()`.
    pub fn flip(&mut self, idx: usize) {
        assert!(idx < self.dim, "bit index {idx} out of range {}", self.dim);
        self.words[idx / 64] ^= 1u64 << (idx % 64);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// XOR of two binary hypervectors — the binding operator in the binary
    /// HD algebra.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    pub fn xor(&self, other: &BinaryHv) -> BinaryHv {
        assert_eq!(
            self.dim, other.dim,
            "xor: dimension mismatch ({} vs {})",
            self.dim, other.dim
        );
        BinaryHv {
            dim: self.dim,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(&a, &b)| a ^ b)
                .collect(),
        }
    }

    /// Bitwise AND; `a.and(b).count_ones()` is the "bitwise AND dot product"
    /// used by the binary-query × binary-model prediction mode (§3.2).
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    pub fn and(&self, other: &BinaryHv) -> BinaryHv {
        assert_eq!(
            self.dim, other.dim,
            "and: dimension mismatch ({} vs {})",
            self.dim, other.dim
        );
        BinaryHv {
            dim: self.dim,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(&a, &b)| a & b)
                .collect(),
        }
    }

    /// Interprets the bits as a ±1 vector (bit 1 → `+1.0`, bit 0 → `-1.0`)
    /// and computes the dot product with a real hypervector. This is the
    /// multiply-free product behind the *binary query × integer model* and
    /// *integer query × binary model* prediction modes of §3.2: each term is
    /// a conditional add/subtract, never a multiplication.
    ///
    /// # Panics
    ///
    /// Panics if `other.dim() != self.dim()`.
    pub fn signed_dot(&self, other: &RealHv) -> f32 {
        assert_eq!(
            self.dim,
            other.dim(),
            "signed_dot: dimension mismatch ({} vs {})",
            self.dim,
            other.dim()
        );
        let vals = other.as_slice();
        let mut acc = 0.0f64;
        for (w, chunk) in self.words.iter().zip(vals.chunks(64)) {
            for (i, &v) in chunk.iter().enumerate() {
                if (w >> i) & 1 == 1 {
                    acc += v as f64;
                } else {
                    acc -= v as f64;
                }
            }
        }
        acc as f32
    }

    /// Converts to a real ±1 hypervector (bit 1 → `+1.0`).
    pub fn to_real_signed(&self) -> RealHv {
        RealHv::from_vec(
            (0..self.dim)
                .map(|i| if self.get(i) { 1.0 } else { -1.0 })
                .collect(),
        )
    }

    /// Converts to a real 0/1 hypervector.
    pub fn to_real(&self) -> RealHv {
        RealHv::from_vec(
            (0..self.dim)
                .map(|i| if self.get(i) { 1.0 } else { 0.0 })
                .collect(),
        )
    }
}

impl std::fmt::Display for BinaryHv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BinaryHv(dim={}, ones={})", self.dim, self.count_ones())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::hamming_distance;

    #[test]
    fn zeros_has_no_ones() {
        let z = BinaryHv::zeros(130);
        assert_eq!(z.dim(), 130);
        assert_eq!(z.count_ones(), 0);
    }

    #[test]
    fn from_words_matches_from_bits_and_masks_tail() {
        // 70 bits: the second word's bits ≥ 6 must be cleared.
        let words = vec![u64::MAX, u64::MAX];
        let v = BinaryHv::from_words(70, words);
        assert_eq!(v.dim(), 70);
        assert_eq!(v.count_ones(), 70);
        let w = BinaryHv::from_bits(70, (0..70).map(|_| true));
        assert_eq!(v, w);
    }

    #[test]
    #[should_panic(expected = "from_words")]
    fn from_words_rejects_wrong_word_count() {
        let _ = BinaryHv::from_words(70, vec![0u64]);
    }

    #[test]
    fn set_get_flip() {
        let mut v = BinaryHv::zeros(100);
        v.set(65, true);
        assert!(v.get(65));
        assert!(!v.get(64));
        v.flip(65);
        assert!(!v.get(65));
        v.flip(0);
        assert!(v.get(0));
        assert_eq!(v.count_ones(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BinaryHv::zeros(10).get(10);
    }

    #[test]
    fn from_bits_roundtrip() {
        let bits = [true, false, false, true, true];
        let v = BinaryHv::from_bits(5, bits.iter().copied());
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(v.get(i), b);
        }
    }

    #[test]
    #[should_panic(expected = "expected 5 bits")]
    fn from_bits_too_few_panics() {
        BinaryHv::from_bits(5, [true, false]);
    }

    #[test]
    #[should_panic(expected = "more than")]
    fn from_bits_too_many_panics() {
        BinaryHv::from_bits(2, [true, false, true]);
    }

    #[test]
    fn random_tail_is_masked() {
        // dim not a multiple of 64: bits past dim must be zero so popcount
        // needs no masking.
        let mut rng = HdRng::seed_from(1);
        let v = BinaryHv::random(70, &mut rng);
        let last = *v.as_words().last().unwrap();
        assert_eq!(last >> 6, 0, "tail bits must be zero");
    }

    #[test]
    fn random_is_balanced() {
        let mut rng = HdRng::seed_from(2);
        let v = BinaryHv::random(100_000, &mut rng);
        let frac = v.count_ones() as f64 / 100_000.0;
        assert!((frac - 0.5).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn xor_self_is_zero() {
        let mut rng = HdRng::seed_from(3);
        let v = BinaryHv::random(512, &mut rng);
        assert_eq!(v.xor(&v).count_ones(), 0);
    }

    #[test]
    fn xor_hamming_identity() {
        let mut rng = HdRng::seed_from(4);
        let a = BinaryHv::random(512, &mut rng);
        let b = BinaryHv::random(512, &mut rng);
        assert_eq!(a.xor(&b).count_ones(), hamming_distance(&a, &b));
    }

    #[test]
    fn and_counts_intersection() {
        let a = BinaryHv::from_bits(4, [true, true, false, false]);
        let b = BinaryHv::from_bits(4, [true, false, true, false]);
        assert_eq!(a.and(&b).count_ones(), 1);
    }

    #[test]
    fn signed_dot_matches_reference() {
        let mut rng = HdRng::seed_from(5);
        let b = BinaryHv::random(200, &mut rng);
        let r = RealHv::random_gaussian(200, &mut rng);
        let reference: f32 = (0..200)
            .map(|i| {
                let s = if b.get(i) { 1.0 } else { -1.0 };
                s * r.as_slice()[i]
            })
            .sum();
        assert!((b.signed_dot(&r) - reference).abs() < 1e-3);
    }

    #[test]
    fn signed_dot_equals_real_dot_of_signed_form() {
        let mut rng = HdRng::seed_from(6);
        let b = BinaryHv::random(333, &mut rng);
        let r = RealHv::random_gaussian(333, &mut rng);
        let via_real = b.to_real_signed().dot(&r);
        assert!((b.signed_dot(&r) - via_real).abs() < 1e-2);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn xor_mismatch_panics() {
        BinaryHv::zeros(4).xor(&BinaryHv::zeros(8));
    }

    #[test]
    fn to_real_forms() {
        let v = BinaryHv::from_bits(3, [true, false, true]);
        assert_eq!(v.to_real().as_slice(), &[1.0, 0.0, 1.0]);
        assert_eq!(v.to_real_signed().as_slice(), &[1.0, -1.0, 1.0]);
    }

    #[test]
    fn empty_vector_is_ok() {
        let v = BinaryHv::zeros(0);
        assert!(v.is_empty());
        assert_eq!(v.count_ones(), 0);
    }
}
