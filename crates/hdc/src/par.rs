//! Dependency-free row-parallel execution helpers.
//!
//! HD computing's hot paths (encode, similarity, score) are embarrassingly
//! parallel across *rows*: each input row is processed independently and the
//! per-row arithmetic never mixes data between rows. That makes a very simple
//! parallel schedule safe **and bit-exact**: split the row range into
//! contiguous chunks, run each chunk on its own scoped thread with the exact
//! same per-row code the sequential path uses, and concatenate the chunk
//! outputs in order. No reduction order changes, so results are identical to
//! the single-threaded run down to the last bit.
//!
//! The build environment cannot fetch crates, so this is built on
//! [`std::thread::scope`] only.

use std::num::NonZeroUsize;

/// Number of threads to use when the caller asks for "all of them".
///
/// Wraps [`std::thread::available_parallelism`], falling back to 1 when the
/// platform cannot report a count.
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
}

/// Resolves a user-facing thread knob: `0` means "use available
/// parallelism", anything else is taken literally (minimum 1).
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        available_threads()
    } else {
        requested
    }
}

/// Maps `f` over `items`, splitting the rows across up to `threads` scoped
/// threads, and returns the outputs in input order.
///
/// Rows are assigned to threads in contiguous chunks and each chunk is
/// processed with the same per-row call the sequential path would make, so
/// the result is bit-identical to `items.iter().map(f).collect()` for any
/// thread count. `threads <= 1` (or fewer than two items) short-circuits to
/// exactly that sequential loop.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all threads first).
pub fn chunked_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let threads = threads.max(1).min(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    // Ceil-divide so every thread gets at most `chunk` rows and the chunk
    // boundaries are stable for a given (len, threads) pair.
    let chunk = items.len().div_ceil(threads);
    let mut out: Vec<Vec<U>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| scope.spawn(|| part.iter().map(&f).collect::<Vec<U>>()))
            .collect();
        out = handles
            .into_iter()
            .map(|h| h.join().expect("par worker panicked"))
            .collect();
    });
    let mut flat = Vec::with_capacity(items.len());
    for mut part in out {
        flat.append(&mut part);
    }
    flat
}

/// Like [`chunked_map`] but hands `f` the row index too, for callers that
/// key per-row work off the position (e.g. pairing rows with targets).
///
/// Same bit-exactness guarantee: contiguous chunks, in-order concatenation.
pub fn chunked_map_indexed<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = threads.max(1).min(items.len());
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut out: Vec<Vec<U>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(ci, part)| {
                let base = ci * chunk;
                let f = &f;
                scope.spawn(move || {
                    part.iter()
                        .enumerate()
                        .map(|(i, x)| f(base + i, x))
                        .collect::<Vec<U>>()
                })
            })
            .collect();
        out = handles
            .into_iter()
            .map(|h| h.join().expect("par worker panicked"))
            .collect();
    });
    let mut flat = Vec::with_capacity(items.len());
    for mut part in out {
        flat.append(&mut part);
    }
    flat
}

/// Splits `items` and `outs` into the *same* contiguous chunks and runs
/// `f(items_chunk, outs_chunk)` on up to `threads` scoped threads — the
/// in-place counterpart of [`chunked_map`] for callers that write into
/// pre-allocated output slots instead of collecting fresh vectors.
///
/// Same bit-exactness contract: chunk boundaries never change per-item
/// arithmetic, so as long as `f` computes each output slot from its own
/// input row only, results are identical for every thread count.
/// `threads <= 1` short-circuits to a single `f(items, outs)` call.
///
/// # Panics
///
/// Panics when `items` and `outs` disagree in length, and propagates a
/// panic from `f` (the scope joins all threads first).
pub fn chunked_zip_mut<T, U, F>(items: &[T], outs: &mut [U], threads: usize, f: F)
where
    T: Sync,
    U: Send,
    F: Fn(&[T], &mut [U]) + Sync,
{
    assert_eq!(
        items.len(),
        outs.len(),
        "chunked_zip_mut: items/outs length mismatch"
    );
    let threads = threads.max(1).min(items.len());
    if threads <= 1 {
        f(items, outs);
        return;
    }
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .zip(outs.chunks_mut(chunk))
            .map(|(part, out_part)| {
                let f = &f;
                scope.spawn(move || f(part, out_part))
            })
            .collect();
        for h in handles {
            h.join().expect("par worker panicked");
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map_for_every_thread_count() {
        let items: Vec<f32> = (0..257).map(|i| i as f32 * 0.37 - 40.0).collect();
        let seq: Vec<f32> = items.iter().map(|x| (x * 1.7).sin() * x).collect();
        for threads in [0, 1, 2, 3, 4, 7, 8, 300] {
            let par = chunked_map(&items, threads, |x| (x * 1.7).sin() * x);
            // Bit-exact, not approximately equal.
            let seq_bits: Vec<u32> = seq.iter().map(|v| v.to_bits()).collect();
            let par_bits: Vec<u32> = par.iter().map(|v| v.to_bits()).collect();
            assert_eq!(seq_bits, par_bits, "threads={threads}");
        }
    }

    #[test]
    fn indexed_variant_sees_global_indices_in_order() {
        let items: Vec<u64> = (0..100).map(|i| i * 3).collect();
        for threads in [1, 2, 4, 9] {
            let got = chunked_map_indexed(&items, threads, |i, x| (i as u64) * 1000 + x);
            let want: Vec<u64> = items
                .iter()
                .enumerate()
                .map(|(i, x)| (i as u64) * 1000 + x)
                .collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_inputs_are_fine() {
        let empty: Vec<i32> = Vec::new();
        assert!(chunked_map(&empty, 8, |x| *x).is_empty());
        assert_eq!(chunked_map(&[5], 8, |x| x + 1), vec![6]);
    }

    #[test]
    fn zip_mut_matches_sequential_for_every_thread_count() {
        let items: Vec<f32> = (0..131).map(|i| i as f32 * 0.7 - 11.0).collect();
        let mut seq = vec![0.0f32; items.len()];
        let work = |part: &[f32], out: &mut [f32]| {
            for (x, o) in part.iter().zip(out.iter_mut()) {
                *o = (x * 2.3).cos() + x;
            }
        };
        work(&items, &mut seq);
        for threads in [0, 1, 2, 3, 5, 8, 200] {
            let mut par = vec![0.0f32; items.len()];
            chunked_zip_mut(&items, &mut par, threads, work);
            let seq_bits: Vec<u32> = seq.iter().map(|v| v.to_bits()).collect();
            let par_bits: Vec<u32> = par.iter().map(|v| v.to_bits()).collect();
            assert_eq!(seq_bits, par_bits, "threads={threads}");
        }
        // Degenerate shapes are fine.
        let mut empty_out: Vec<f32> = Vec::new();
        chunked_zip_mut(&[], &mut empty_out, 4, work);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn zip_mut_rejects_mismatched_lengths() {
        let mut out = vec![0u8; 2];
        chunked_zip_mut(&[1u8, 2, 3], &mut out, 2, |_, _| {});
    }

    #[test]
    fn resolve_threads_maps_zero_to_available() {
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(resolve_threads(0), available_threads());
        assert!(available_threads() >= 1);
    }
}
