//! Dense real-valued hypervectors.
//!
//! [`RealHv`] is the workhorse representation of the RegHD pipeline: encoded
//! data points, integer-precision cluster centroids and regression model
//! hypervectors are all accumulated in `f32`. (The paper calls these
//! "integer" models because after encoding to ±1 the accumulations are
//! integer-valued; `f32` holds those exactly up to 2²⁴ and also supports the
//! fractional learning-rate updates of Eq. 2/7.)

use crate::error::DimensionMismatchError;
use crate::rng::HdRng;

/// A dense real-valued hypervector of fixed dimensionality.
///
/// # Examples
///
/// ```
/// use hdc::RealHv;
///
/// let mut m = RealHv::zeros(4);
/// let s = RealHv::from_vec(vec![1.0, -1.0, 1.0, -1.0]);
/// m.add_scaled(&s, 0.5);
/// assert_eq!(m.as_slice(), &[0.5, -0.5, 0.5, -0.5]);
/// assert_eq!(m.dot(&s), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RealHv {
    data: Vec<f32>,
}

impl RealHv {
    /// Creates an all-zero hypervector of width `dim`.
    pub fn zeros(dim: usize) -> Self {
        Self {
            data: vec![0.0; dim],
        }
    }

    /// Wraps an existing buffer as a hypervector.
    pub fn from_vec(data: Vec<f32>) -> Self {
        Self { data }
    }

    /// Creates a hypervector with i.i.d. standard normal entries.
    pub fn random_gaussian(dim: usize, rng: &mut HdRng) -> Self {
        Self {
            data: (0..dim).map(|_| rng.next_gaussian() as f32).collect(),
        }
    }

    /// Creates a hypervector with i.i.d. uniform entries in `[lo, hi)`.
    pub fn random_uniform(dim: usize, lo: f32, hi: f32, rng: &mut HdRng) -> Self {
        Self {
            data: (0..dim).map(|_| lo + (hi - lo) * rng.next_f32()).collect(),
        }
    }

    /// The dimensionality `D`.
    pub fn dim(&self) -> usize {
        self.data.len()
    }

    /// Whether the vector has zero width.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the components.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the components.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the hypervector, returning the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Resets the vector to `dim` zeros, reusing the existing allocation
    /// when it is large enough — the zero-allocation building block of the
    /// `kernels` batch paths and the prediction scratch buffers.
    pub fn reset(&mut self, dim: usize) {
        self.data.clear();
        self.data.resize(dim, 0.0);
    }

    /// Dot product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    pub fn dot(&self, other: &RealHv) -> f32 {
        assert_eq!(
            self.dim(),
            other.dim(),
            "dot: dimension mismatch ({} vs {})",
            self.dim(),
            other.dim()
        );
        // Accumulate in f64: with D of several thousand, f32 accumulation
        // error is visible in the regression error metrics. Four
        // independent accumulators break the serial add-latency chain so
        // the Eq. 5 cosine cluster search gets instruction-level
        // parallelism; the combine order is FIXED as
        // ((s0 + s1) + (s2 + s3)) + tail, so for a given width the result
        // is deterministic (it differs from the old single-accumulator
        // chain by f64 rounding, i.e. far below f32 resolution).
        let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        let mut a4 = self.data.chunks_exact(4);
        let mut b4 = other.data.chunks_exact(4);
        for (ca, cb) in (&mut a4).zip(&mut b4) {
            s0 += f64::from(ca[0]) * f64::from(cb[0]);
            s1 += f64::from(ca[1]) * f64::from(cb[1]);
            s2 += f64::from(ca[2]) * f64::from(cb[2]);
            s3 += f64::from(ca[3]) * f64::from(cb[3]);
        }
        let mut tail = 0.0f64;
        for (&a, &b) in a4.remainder().iter().zip(b4.remainder()) {
            tail += f64::from(a) * f64::from(b);
        }
        (((s0 + s1) + (s2 + s3)) + tail) as f32
    }

    /// Euclidean norm `‖self‖₂`.
    pub fn norm(&self) -> f32 {
        // Same 4-way unroll and fixed combine order as [`RealHv::dot`].
        let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        let mut a4 = self.data.chunks_exact(4);
        for ca in &mut a4 {
            s0 += f64::from(ca[0]) * f64::from(ca[0]);
            s1 += f64::from(ca[1]) * f64::from(ca[1]);
            s2 += f64::from(ca[2]) * f64::from(ca[2]);
            s3 += f64::from(ca[3]) * f64::from(ca[3]);
        }
        let mut tail = 0.0f64;
        for &a in a4.remainder() {
            tail += f64::from(a) * f64::from(a);
        }
        (((s0 + s1) + (s2 + s3)) + tail).sqrt() as f32
    }

    /// In-place `self += alpha * other` — the core RegHD model update
    /// (Eq. 2 and Eq. 7 of the paper).
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    pub fn add_scaled(&mut self, other: &RealHv, alpha: f32) {
        assert_eq!(
            self.dim(),
            other.dim(),
            "add_scaled: dimension mismatch ({} vs {})",
            self.dim(),
            other.dim()
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Fallible element-wise addition returning a new hypervector.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionMismatchError`] if the widths differ.
    pub fn checked_add(&self, other: &RealHv) -> Result<RealHv, DimensionMismatchError> {
        if self.dim() != other.dim() {
            return Err(DimensionMismatchError::new(self.dim(), other.dim()));
        }
        Ok(RealHv::from_vec(
            self.data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| a + b)
                .collect(),
        ))
    }

    /// In-place scaling `self *= alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Scales the vector to unit Euclidean norm. A zero vector is left
    /// unchanged.
    pub fn normalize(&mut self) {
        let n = self.norm();
        if n > 0.0 {
            self.scale(1.0 / n);
        }
    }

    /// Element-wise product (the HD *binding* operator for real vectors).
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    pub fn hadamard(&self, other: &RealHv) -> RealHv {
        assert_eq!(
            self.dim(),
            other.dim(),
            "hadamard: dimension mismatch ({} vs {})",
            self.dim(),
            other.dim()
        );
        RealHv::from_vec(
            self.data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| a * b)
                .collect(),
        )
    }

    /// Quantises each component to a sign bit: component > 0 maps to `1`,
    /// otherwise `0`. This is the single-comparison binarisation used by the
    /// quantized-clustering framework (§3.1).
    pub fn binarize(&self) -> crate::BinaryHv {
        crate::BinaryHv::from_bits(self.dim(), self.data.iter().map(|&a| a > 0.0))
    }

    /// Maps each component to `+1`/`-1` by sign (ties at 0 map to `-1`),
    /// yielding a bipolar hypervector.
    pub fn to_bipolar(&self) -> crate::BipolarHv {
        crate::BipolarHv::from_signs(self.data.iter().map(|&a| a > 0.0))
    }

    /// Mean of the components.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        (self.data.iter().map(|&a| a as f64).sum::<f64>() / self.data.len() as f64) as f32
    }

    /// Largest absolute component value.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &a| m.max(a.abs()))
    }
}

impl FromIterator<f32> for RealHv {
    fn from_iter<I: IntoIterator<Item = f32>>(iter: I) -> Self {
        RealHv::from_vec(iter.into_iter().collect())
    }
}

impl From<Vec<f32>> for RealHv {
    fn from(v: Vec<f32>) -> Self {
        RealHv::from_vec(v)
    }
}

impl AsRef<[f32]> for RealHv {
    fn as_ref(&self) -> &[f32] {
        &self.data
    }
}

impl std::ops::Add for &RealHv {
    type Output = RealHv;

    /// Element-wise addition (the HD bundling operator).
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ; use
    /// [`RealHv::checked_add`] for a fallible variant.
    fn add(self, rhs: &RealHv) -> RealHv {
        assert_eq!(
            self.dim(),
            rhs.dim(),
            "add: dimension mismatch ({} vs {})",
            self.dim(),
            rhs.dim()
        );
        RealHv::from_vec(
            self.as_slice()
                .iter()
                .zip(rhs.as_slice())
                .map(|(&a, &b)| a + b)
                .collect(),
        )
    }
}

impl std::ops::Sub for &RealHv {
    type Output = RealHv;

    /// Element-wise subtraction.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    fn sub(self, rhs: &RealHv) -> RealHv {
        assert_eq!(
            self.dim(),
            rhs.dim(),
            "sub: dimension mismatch ({} vs {})",
            self.dim(),
            rhs.dim()
        );
        RealHv::from_vec(
            self.as_slice()
                .iter()
                .zip(rhs.as_slice())
                .map(|(&a, &b)| a - b)
                .collect(),
        )
    }
}

impl std::ops::Neg for &RealHv {
    type Output = RealHv;

    fn neg(self) -> RealHv {
        RealHv::from_vec(self.as_slice().iter().map(|&a| -a).collect())
    }
}

impl std::fmt::Display for RealHv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RealHv(dim={}, ‖·‖={:.3})", self.dim(), self.norm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_is_zero() {
        let z = RealHv::zeros(16);
        assert_eq!(z.dim(), 16);
        assert!(z.as_slice().iter().all(|&a| a == 0.0));
        assert_eq!(z.norm(), 0.0);
    }

    #[test]
    fn dot_matches_manual() {
        let a = RealHv::from_vec(vec![1.0, 2.0, 3.0]);
        let b = RealHv::from_vec(vec![4.0, -5.0, 6.0]);
        assert_eq!(a.dot(&b), 4.0 - 10.0 + 18.0);
    }

    #[test]
    fn dot_is_symmetric() {
        let mut rng = HdRng::seed_from(1);
        let a = RealHv::random_gaussian(256, &mut rng);
        let b = RealHv::random_gaussian(256, &mut rng);
        assert!((a.dot(&b) - b.dot(&a)).abs() < 1e-3);
    }

    #[test]
    fn unrolled_dot_and_norm_match_f64_reference() {
        // Widths straddling the 4-way unroll boundary, including the
        // remainder lanes. The f64 accumulation keeps the unrolled result
        // within one f32 ulp of the sequential f64 reference.
        let mut rng = HdRng::seed_from(9);
        for dim in [1usize, 2, 3, 4, 5, 7, 8, 257, 1023] {
            let a = RealHv::random_gaussian(dim, &mut rng);
            let b = RealHv::random_gaussian(dim, &mut rng);
            let want_dot = a
                .as_slice()
                .iter()
                .zip(b.as_slice())
                .map(|(&x, &y)| f64::from(x) * f64::from(y))
                .sum::<f64>();
            let got = f64::from(a.dot(&b));
            assert!(
                (got - want_dot).abs() <= 1e-4 * (1.0 + want_dot.abs()),
                "dim={dim}: dot {got} vs {want_dot}"
            );
            let want_norm = a
                .as_slice()
                .iter()
                .map(|&x| f64::from(x) * f64::from(x))
                .sum::<f64>()
                .sqrt();
            let got = f64::from(a.norm());
            assert!(
                (got - want_norm).abs() <= 1e-4 * (1.0 + want_norm),
                "dim={dim}: norm {got} vs {want_norm}"
            );
        }
    }

    #[test]
    fn reset_reuses_allocation_and_zeroes() {
        let mut v = RealHv::from_vec(vec![3.0; 64]);
        let ptr = v.as_slice().as_ptr();
        v.reset(32);
        assert_eq!(v.dim(), 32);
        assert!(v.as_slice().iter().all(|&a| a == 0.0));
        assert_eq!(v.as_slice().as_ptr(), ptr, "shrinking must not realloc");
        v.reset(64);
        assert_eq!(v.dim(), 64);
        assert!(v.as_slice().iter().all(|&a| a == 0.0));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dot_mismatched_panics() {
        RealHv::zeros(4).dot(&RealHv::zeros(8));
    }

    #[test]
    fn checked_add_errors_on_mismatch() {
        let e = RealHv::zeros(4).checked_add(&RealHv::zeros(8)).unwrap_err();
        assert_eq!(e.expected(), 4);
        assert_eq!(e.actual(), 8);
    }

    #[test]
    fn checked_add_adds() {
        let a = RealHv::from_vec(vec![1.0, 2.0]);
        let b = RealHv::from_vec(vec![3.0, -1.0]);
        assert_eq!(a.checked_add(&b).unwrap().as_slice(), &[4.0, 1.0]);
    }

    #[test]
    fn add_scaled_is_fma() {
        let mut m = RealHv::from_vec(vec![1.0, 1.0]);
        m.add_scaled(&RealHv::from_vec(vec![2.0, -2.0]), 0.25);
        assert_eq!(m.as_slice(), &[1.5, 0.5]);
    }

    #[test]
    fn normalize_gives_unit_norm() {
        let mut rng = HdRng::seed_from(3);
        let mut v = RealHv::random_gaussian(512, &mut rng);
        v.normalize();
        assert!((v.norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn normalize_zero_is_noop() {
        let mut z = RealHv::zeros(8);
        z.normalize();
        assert_eq!(z.norm(), 0.0);
    }

    #[test]
    fn hadamard_componentwise() {
        let a = RealHv::from_vec(vec![2.0, 3.0]);
        let b = RealHv::from_vec(vec![-1.0, 0.5]);
        assert_eq!(a.hadamard(&b).as_slice(), &[-2.0, 1.5]);
    }

    #[test]
    fn binarize_thresholds_at_zero() {
        let v = RealHv::from_vec(vec![0.1, -0.1, 0.0, 5.0]);
        let b = v.binarize();
        assert!(b.get(0));
        assert!(!b.get(1));
        assert!(!b.get(2));
        assert!(b.get(3));
    }

    #[test]
    fn to_bipolar_signs() {
        let v = RealHv::from_vec(vec![0.5, -2.0]);
        let b = v.to_bipolar();
        assert_eq!(b.as_slice(), &[1, -1]);
    }

    #[test]
    fn gaussian_vectors_nearly_orthogonal() {
        let mut rng = HdRng::seed_from(7);
        let a = RealHv::random_gaussian(4096, &mut rng);
        let b = RealHv::random_gaussian(4096, &mut rng);
        let cos = a.dot(&b) / (a.norm() * b.norm());
        assert!(cos.abs() < 0.06, "cos = {cos}");
    }

    #[test]
    fn mean_and_max_abs() {
        let v = RealHv::from_vec(vec![1.0, -3.0, 2.0]);
        assert!((v.mean() - 0.0).abs() < 1e-6);
        assert_eq!(v.max_abs(), 3.0);
        assert_eq!(RealHv::zeros(0).mean(), 0.0);
    }

    #[test]
    fn from_iterator_collects() {
        let v: RealHv = (0..4).map(|i| i as f32).collect();
        assert_eq!(v.as_slice(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn uniform_respects_range() {
        let mut rng = HdRng::seed_from(13);
        let v = RealHv::random_uniform(1000, -2.0, 3.0, &mut rng);
        assert!(v.as_slice().iter().all(|&a| (-2.0..3.0).contains(&a)));
    }

    #[test]
    fn display_mentions_dim() {
        let v = RealHv::zeros(42);
        assert!(v.to_string().contains("42"));
    }

    #[test]
    fn operator_add_sub_neg() {
        let a = RealHv::from_vec(vec![1.0, 2.0]);
        let b = RealHv::from_vec(vec![0.5, -1.0]);
        assert_eq!((&a + &b).as_slice(), &[1.5, 1.0]);
        assert_eq!((&a - &b).as_slice(), &[0.5, 3.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
        // a − b == a + (−b)
        assert_eq!(&a - &b, &a + &(-&b));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn operator_add_mismatch_panics() {
        let _ = &RealHv::zeros(2) + &RealHv::zeros(3);
    }
}
