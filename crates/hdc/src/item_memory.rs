//! Item memory and cleanup memory — the associative-lookup structures of
//! classic HD computing (Kanerva 2009), provided as substrate for
//! applications built on this workspace (e.g. symbol grounding around the
//! regression core, or the associative accelerators of the paper's related
//! work \[16, 17\]).
//!
//! An [`ItemMemory`] maps symbolic names to random hypervectors (the
//! "codebook"); a *cleanup* query takes a noisy hypervector and returns
//! the best-matching stored item — exactly the operation whose reliability
//! the capacity analysis of [`crate::capacity`] bounds.

use crate::rng::HdRng;
use crate::similarity::hamming_similarity;
use crate::BinaryHv;

/// A codebook of named random binary hypervectors with associative
/// (nearest-neighbour) cleanup.
///
/// # Examples
///
/// ```
/// use hdc::item_memory::ItemMemory;
/// use hdc::rng::HdRng;
///
/// let mut rng = HdRng::seed_from(1);
/// let mut memory = ItemMemory::new(2048);
/// memory.insert("apple", &mut rng);
/// memory.insert("banana", &mut rng);
///
/// // Corrupt apple's code by 10% and clean it up.
/// let noisy = hdc::noise::flip_bits(memory.get("apple").unwrap(), 0.10, &mut rng).0;
/// let (name, similarity) = memory.cleanup(&noisy).unwrap();
/// assert_eq!(name, "apple");
/// assert!(similarity > 0.6);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ItemMemory {
    dim: usize,
    names: Vec<String>,
    codes: Vec<BinaryHv>,
}

impl ItemMemory {
    /// Creates an empty item memory for `dim`-bit codes.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dim must be nonzero");
        Self {
            dim,
            names: Vec::new(),
            codes: Vec::new(),
        }
    }

    /// The code width in bits.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the memory is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Inserts a fresh random code for `name` and returns a reference to
    /// it. Re-inserting an existing name returns the existing code
    /// unchanged (codes are stable identities).
    pub fn insert(&mut self, name: &str, rng: &mut HdRng) -> &BinaryHv {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return &self.codes[i];
        }
        self.names.push(name.to_string());
        self.codes.push(BinaryHv::random(self.dim, rng));
        self.codes.last().expect("just pushed")
    }

    /// Looks up the exact code for `name`.
    pub fn get(&self, name: &str) -> Option<&BinaryHv> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| &self.codes[i])
    }

    /// Associative cleanup: returns the stored item most similar to
    /// `query` (by Hamming similarity) together with that similarity, or
    /// `None` when the memory is empty.
    ///
    /// # Panics
    ///
    /// Panics if `query.dim() != self.dim()`.
    pub fn cleanup(&self, query: &BinaryHv) -> Option<(&str, f32)> {
        assert_eq!(
            query.dim(),
            self.dim,
            "query width {} does not match memory width {}",
            query.dim(),
            self.dim
        );
        self.codes
            .iter()
            .zip(&self.names)
            .map(|(code, name)| (name.as_str(), hamming_similarity(query, code)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Iterates over `(name, code)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &BinaryHv)> + '_ {
        self.names.iter().map(String::as_str).zip(self.codes.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::flip_bits;

    fn filled(n: usize, dim: usize) -> (ItemMemory, HdRng) {
        let mut rng = HdRng::seed_from(7);
        let mut m = ItemMemory::new(dim);
        for i in 0..n {
            m.insert(&format!("item-{i}"), &mut rng);
        }
        (m, rng)
    }

    #[test]
    fn insert_get_roundtrip() {
        let (m, _) = filled(5, 256);
        assert_eq!(m.len(), 5);
        assert!(m.get("item-3").is_some());
        assert!(m.get("missing").is_none());
    }

    #[test]
    fn reinsert_is_stable() {
        let mut rng = HdRng::seed_from(1);
        let mut m = ItemMemory::new(128);
        let a = m.insert("x", &mut rng).clone();
        let b = m.insert("x", &mut rng).clone();
        assert_eq!(a, b);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn cleanup_recovers_under_heavy_noise() {
        // 30% bit flips against 50 stored items at D = 2048: still
        // recoverable (the capacity module predicts ≈ zero confusion).
        let (m, mut rng) = filled(50, 2048);
        for i in (0..50).step_by(9) {
            let name = format!("item-{i}");
            let (noisy, _) = flip_bits(m.get(&name).unwrap(), 0.30, &mut rng);
            let (found, sim) = m.cleanup(&noisy).unwrap();
            assert_eq!(found, name);
            assert!(sim > 0.2, "similarity {sim}");
        }
    }

    #[test]
    fn cleanup_of_random_query_has_low_similarity() {
        let (m, mut rng) = filled(20, 2048);
        let random = BinaryHv::random(2048, &mut rng);
        let (_, sim) = m.cleanup(&random).unwrap();
        assert!(sim < 0.15, "random query matched too well: {sim}");
    }

    #[test]
    fn cleanup_empty_is_none() {
        let m = ItemMemory::new(64);
        let q = BinaryHv::zeros(64);
        assert!(m.cleanup(&q).is_none());
    }

    #[test]
    #[should_panic(expected = "does not match memory width")]
    fn cleanup_wrong_width_panics() {
        let (m, _) = filled(2, 128);
        m.cleanup(&BinaryHv::zeros(64));
    }

    #[test]
    fn iter_preserves_insertion_order() {
        let (m, _) = filled(3, 64);
        let names: Vec<&str> = m.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["item-0", "item-1", "item-2"]);
    }
}
