//! Bipolar (`{-1,+1}`) hypervectors.
//!
//! RegHD's encoder (§2.2, Eq. 1) projects each input feature through a
//! random **bipolar base hypervector** `B_k ∈ {−1,+1}^D`. Independent random
//! bipolar hypervectors are nearly orthogonal in expectation, which is the
//! property the encoding relies on to keep dissimilar inputs dissimilar in HD
//! space.

use crate::rng::HdRng;
use crate::RealHv;

/// A hypervector whose components are `+1` or `-1`, stored as `i8`.
///
/// # Examples
///
/// ```
/// use hdc::BipolarHv;
/// use hdc::rng::HdRng;
///
/// let mut rng = HdRng::seed_from(0);
/// let b = BipolarHv::random(10_000, &mut rng);
/// // Roughly balanced:
/// let plus = b.as_slice().iter().filter(|&&v| v == 1).count();
/// assert!((plus as f64 / 10_000.0 - 0.5).abs() < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct BipolarHv {
    data: Vec<i8>,
}

impl BipolarHv {
    /// Creates a uniformly random bipolar hypervector.
    pub fn random(dim: usize, rng: &mut HdRng) -> Self {
        let mut data = Vec::with_capacity(dim);
        // Draw 64 sign bits at a time.
        let mut remaining = dim;
        while remaining > 0 {
            let bits = rng.next_u64();
            let take = remaining.min(64);
            for i in 0..take {
                data.push(if (bits >> i) & 1 == 1 { 1 } else { -1 });
            }
            remaining -= take;
        }
        Self { data }
    }

    /// Builds a bipolar hypervector from sign flags (`true` → `+1`).
    pub fn from_signs<I: IntoIterator<Item = bool>>(signs: I) -> Self {
        Self {
            data: signs.into_iter().map(|s| if s { 1 } else { -1 }).collect(),
        }
    }

    /// Wraps a raw `{-1,+1}` buffer.
    ///
    /// # Panics
    ///
    /// Panics if any element is not `-1` or `+1`.
    pub fn from_vec(data: Vec<i8>) -> Self {
        assert!(
            data.iter().all(|&v| v == 1 || v == -1),
            "bipolar components must be -1 or +1"
        );
        Self { data }
    }

    /// The dimensionality `D`.
    pub fn dim(&self) -> usize {
        self.data.len()
    }

    /// Whether the vector has zero width.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the components.
    pub fn as_slice(&self) -> &[i8] {
        &self.data
    }

    /// Component at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= dim()`.
    pub fn get(&self, idx: usize) -> i8 {
        self.data[idx]
    }

    /// Dot product with another bipolar hypervector. For bipolar vectors this
    /// equals `D − 2·hamming`, so it ranges over `[-D, D]`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    pub fn dot(&self, other: &BipolarHv) -> i64 {
        assert_eq!(
            self.dim(),
            other.dim(),
            "dot: dimension mismatch ({} vs {})",
            self.dim(),
            other.dim()
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a as i64) * (b as i64))
            .sum()
    }

    /// Element-wise product — the HD *binding* operator. Binding two bipolar
    /// hypervectors yields another bipolar hypervector that is nearly
    /// orthogonal to both inputs.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    pub fn bind(&self, other: &BipolarHv) -> BipolarHv {
        assert_eq!(
            self.dim(),
            other.dim(),
            "bind: dimension mismatch ({} vs {})",
            self.dim(),
            other.dim()
        );
        BipolarHv {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| a * b)
                .collect(),
        }
    }

    /// Converts to a real hypervector (each ±1 becomes ±1.0).
    pub fn to_real(&self) -> RealHv {
        RealHv::from_vec(self.data.iter().map(|&a| a as f32).collect())
    }

    /// Converts to a binary hypervector (`+1` → bit 1, `-1` → bit 0).
    pub fn to_binary(&self) -> crate::BinaryHv {
        crate::BinaryHv::from_bits(self.dim(), self.data.iter().map(|&a| a > 0))
    }

    /// Cyclic rotation by `shift` positions — the HD *permutation* operator,
    /// used to encode sequence position.
    pub fn permute(&self, shift: usize) -> BipolarHv {
        if self.data.is_empty() {
            return self.clone();
        }
        let n = self.data.len();
        let s = shift % n;
        let mut data = Vec::with_capacity(n);
        data.extend_from_slice(&self.data[n - s..]);
        data.extend_from_slice(&self.data[..n - s]);
        BipolarHv { data }
    }
}

impl std::fmt::Display for BipolarHv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BipolarHv(dim={})", self.dim())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_balanced() {
        let mut rng = HdRng::seed_from(2);
        let v = BipolarHv::random(100_000, &mut rng);
        let plus = v.as_slice().iter().filter(|&&a| a == 1).count();
        let frac = plus as f64 / 100_000.0;
        assert!((frac - 0.5).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn random_pairs_nearly_orthogonal() {
        // δ(B_k1, B_k2) ≃ 0 — the property claimed under Eq. 1.
        let mut rng = HdRng::seed_from(4);
        for _ in 0..5 {
            let a = BipolarHv::random(10_000, &mut rng);
            let b = BipolarHv::random(10_000, &mut rng);
            let cos = a.dot(&b) as f64 / 10_000.0;
            assert!(cos.abs() < 0.04, "cos = {cos}");
        }
    }

    #[test]
    fn self_dot_is_dim() {
        let mut rng = HdRng::seed_from(6);
        let v = BipolarHv::random(777, &mut rng);
        assert_eq!(v.dot(&v), 777);
    }

    #[test]
    fn bind_is_involutive() {
        // a ⊛ b ⊛ b = a   (binding by the same key twice cancels)
        let mut rng = HdRng::seed_from(8);
        let a = BipolarHv::random(512, &mut rng);
        let b = BipolarHv::random(512, &mut rng);
        assert_eq!(a.bind(&b).bind(&b), a);
    }

    #[test]
    fn bind_decorrelates() {
        let mut rng = HdRng::seed_from(10);
        let a = BipolarHv::random(10_000, &mut rng);
        let b = BipolarHv::random(10_000, &mut rng);
        let bound = a.bind(&b);
        assert!((bound.dot(&a) as f64 / 10_000.0).abs() < 0.04);
        assert!((bound.dot(&b) as f64 / 10_000.0).abs() < 0.04);
    }

    #[test]
    fn from_signs_roundtrip() {
        let v = BipolarHv::from_signs([true, false, true]);
        assert_eq!(v.as_slice(), &[1, -1, 1]);
    }

    #[test]
    #[should_panic(expected = "bipolar components")]
    fn from_vec_rejects_invalid() {
        BipolarHv::from_vec(vec![1, 0, -1]);
    }

    #[test]
    fn permute_rotates() {
        let v = BipolarHv::from_vec(vec![1, 1, -1, -1]);
        let p = v.permute(1);
        assert_eq!(p.as_slice(), &[-1, 1, 1, -1]);
        // Full rotation is identity.
        assert_eq!(v.permute(4), v);
        // Empty vector is fine.
        assert_eq!(BipolarHv::default().permute(3).dim(), 0);
    }

    #[test]
    fn permute_preserves_self_similarity_but_decorrelates() {
        let mut rng = HdRng::seed_from(12);
        let v = BipolarHv::random(10_000, &mut rng);
        let p = v.permute(1);
        assert_eq!(p.dot(&p), 10_000);
        assert!((v.dot(&p) as f64 / 10_000.0).abs() < 0.04);
    }

    #[test]
    fn to_real_matches() {
        let v = BipolarHv::from_vec(vec![1, -1]);
        assert_eq!(v.to_real().as_slice(), &[1.0, -1.0]);
    }

    #[test]
    fn to_binary_matches() {
        let v = BipolarHv::from_vec(vec![1, -1, 1]);
        let b = v.to_binary();
        assert!(b.get(0));
        assert!(!b.get(1));
        assert!(b.get(2));
    }

    #[test]
    fn dot_equals_dim_minus_twice_hamming() {
        let mut rng = HdRng::seed_from(14);
        let a = BipolarHv::random(2048, &mut rng);
        let b = BipolarHv::random(2048, &mut rng);
        let ham = crate::similarity::hamming_distance(&a.to_binary(), &b.to_binary());
        assert_eq!(a.dot(&b), 2048 - 2 * ham as i64);
    }
}
