//! Bulk hypervector operators: bundling, majority, weighted accumulation.
//!
//! *Bundling* (element-wise addition) is how HD computing superimposes
//! multiple pieces of information into one hypervector — it is the operation
//! whose saturation behaviour motivates RegHD's capacity analysis (§2.3) and
//! the move to multi-model regression (§2.4).

use crate::{BinaryHv, BipolarHv, RealHv};

/// Bundles (sums) an iterator of real hypervectors into one accumulator.
///
/// Returns `None` when the iterator is empty (there is no well-defined
/// dimensionality to return).
///
/// # Panics
///
/// Panics if the hypervectors disagree in dimensionality.
///
/// # Examples
///
/// ```
/// use hdc::{RealHv, ops};
///
/// let vs = vec![
///     RealHv::from_vec(vec![1.0, 2.0]),
///     RealHv::from_vec(vec![3.0, -1.0]),
/// ];
/// let sum = ops::bundle(vs.iter()).expect("nonempty");
/// assert_eq!(sum.as_slice(), &[4.0, 1.0]);
/// ```
pub fn bundle<'a, I: IntoIterator<Item = &'a RealHv>>(vs: I) -> Option<RealHv> {
    let mut iter = vs.into_iter();
    let first = iter.next()?;
    let mut acc = first.clone();
    for v in iter {
        acc.add_scaled(v, 1.0);
    }
    Some(acc)
}

/// Bundles bipolar hypervectors into an integer-accumulated real hypervector.
///
/// Returns `None` when the iterator is empty.
///
/// # Panics
///
/// Panics if the hypervectors disagree in dimensionality.
pub fn bundle_bipolar<'a, I: IntoIterator<Item = &'a BipolarHv>>(vs: I) -> Option<RealHv> {
    let mut iter = vs.into_iter();
    let first = iter.next()?;
    let mut acc = first.to_real();
    for v in iter {
        let vals = v.as_slice();
        assert_eq!(
            acc.dim(),
            vals.len(),
            "bundle_bipolar: dimension mismatch ({} vs {})",
            acc.dim(),
            vals.len()
        );
        for (a, &b) in acc.as_mut_slice().iter_mut().zip(vals) {
            *a += b as f32;
        }
    }
    Some(acc)
}

/// Element-wise majority vote over binary hypervectors: each output bit is 1
/// iff more than half the inputs have that bit set. Ties (possible for an
/// even count) resolve to 0, matching a strict-majority rule.
///
/// Returns `None` when the slice is empty.
///
/// # Panics
///
/// Panics if the hypervectors disagree in dimensionality.
pub fn majority(vs: &[BinaryHv]) -> Option<BinaryHv> {
    let first = vs.first()?;
    let dim = first.dim();
    let mut counts = vec![0usize; dim];
    for v in vs {
        assert_eq!(
            v.dim(),
            dim,
            "majority: dimension mismatch ({} vs {})",
            dim,
            v.dim()
        );
        for (i, c) in counts.iter_mut().enumerate() {
            if v.get(i) {
                *c += 1;
            }
        }
    }
    let half = vs.len();
    Some(BinaryHv::from_bits(
        dim,
        counts.iter().map(|&c| 2 * c > half),
    ))
}

/// Weighted accumulation `Σ w_i · v_i` — the primitive behind RegHD's
/// confidence-weighted prediction (Eq. 6 evaluates scalar products, but the
/// same weighted-bundle shape appears when composing models).
///
/// Returns `None` when the inputs are empty.
///
/// # Panics
///
/// Panics if `weights.len() != vs.len()` or dimensionalities disagree.
pub fn weighted_bundle(vs: &[RealHv], weights: &[f32]) -> Option<RealHv> {
    assert_eq!(
        vs.len(),
        weights.len(),
        "weighted_bundle: {} vectors vs {} weights",
        vs.len(),
        weights.len()
    );
    let first = vs.first()?;
    let mut acc = RealHv::zeros(first.dim());
    for (v, &w) in vs.iter().zip(weights) {
        acc.add_scaled(v, w);
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::HdRng;
    use crate::similarity::cosine;

    #[test]
    fn bundle_empty_is_none() {
        assert!(bundle(std::iter::empty::<&RealHv>()).is_none());
        assert!(bundle_bipolar(std::iter::empty::<&BipolarHv>()).is_none());
        assert!(majority(&[]).is_none());
        assert!(weighted_bundle(&[], &[]).is_none());
    }

    #[test]
    fn bundle_single_is_identity() {
        let v = RealHv::from_vec(vec![1.0, -2.0]);
        assert_eq!(bundle([&v]).unwrap(), v);
    }

    #[test]
    fn bundled_vector_similar_to_components() {
        // The superposition property: a bundle remains similar to each of its
        // (few) components — the basis of HD associative recall.
        let mut rng = HdRng::seed_from(1);
        let components: Vec<BipolarHv> =
            (0..5).map(|_| BipolarHv::random(4096, &mut rng)).collect();
        let sum = bundle_bipolar(components.iter()).unwrap();
        for c in &components {
            let cos = cosine(&sum, &c.to_real());
            assert!(cos > 0.3, "component similarity too low: {cos}");
        }
        // ...but dissimilar to an unrelated vector.
        let other = BipolarHv::random(4096, &mut rng);
        assert!(cosine(&sum, &other.to_real()).abs() < 0.1);
    }

    #[test]
    fn bundle_saturation_with_many_components() {
        // Motivates multi-model regression: with many bundled patterns, the
        // per-component similarity decays like 1/sqrt(P).
        let mut rng = HdRng::seed_from(2);
        let few: Vec<BipolarHv> = (0..4).map(|_| BipolarHv::random(2048, &mut rng)).collect();
        let many: Vec<BipolarHv> = (0..64).map(|_| BipolarHv::random(2048, &mut rng)).collect();
        let few_sum = bundle_bipolar(few.iter()).unwrap();
        let many_sum = bundle_bipolar(many.iter()).unwrap();
        let few_sim = cosine(&few_sum, &few[0].to_real());
        let many_sim = cosine(&many_sum, &many[0].to_real());
        assert!(
            few_sim > 2.0 * many_sim,
            "expected saturation: few={few_sim} many={many_sim}"
        );
    }

    #[test]
    fn majority_odd_count() {
        let a = BinaryHv::from_bits(3, [true, true, false]);
        let b = BinaryHv::from_bits(3, [true, false, false]);
        let c = BinaryHv::from_bits(3, [false, true, false]);
        let m = majority(&[a, b, c]).unwrap();
        assert!(m.get(0));
        assert!(m.get(1));
        assert!(!m.get(2));
    }

    #[test]
    fn majority_tie_resolves_zero() {
        let a = BinaryHv::from_bits(1, [true]);
        let b = BinaryHv::from_bits(1, [false]);
        let m = majority(&[a, b]).unwrap();
        assert!(!m.get(0));
    }

    #[test]
    fn weighted_bundle_reference() {
        let a = RealHv::from_vec(vec![1.0, 0.0]);
        let b = RealHv::from_vec(vec![0.0, 1.0]);
        let w = weighted_bundle(&[a, b], &[2.0, 3.0]).unwrap();
        assert_eq!(w.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "weights")]
    fn weighted_bundle_len_mismatch_panics() {
        weighted_bundle(&[RealHv::zeros(2)], &[1.0, 2.0]);
    }

    #[test]
    fn majority_of_identical_is_identity() {
        let mut rng = HdRng::seed_from(3);
        let v = BinaryHv::random(100, &mut rng);
        let m = majority(&[v.clone(), v.clone(), v.clone()]).unwrap();
        assert_eq!(m, v);
    }
}
