//! Hypervector capacity analysis (paper §2.3, Eqs. 3–4).
//!
//! A single model hypervector `M = S₁ + … + S_P` bundles `P` patterns. When
//! querying with `Q`, the recovered similarity decomposes into signal plus
//! crosstalk noise (Eq. 3). Treating the per-component crosstalk as binomial,
//! the probability of a **false positive** — deciding `Q ∈ M` when it is not —
//! is the Gaussian tail probability
//!
//! ```text
//! Pr( Z > T·sqrt(D/P) ) = (1/√2π) ∫_{T·√(D/P)}^{∞} e^{−t²/2} dt     (Eq. 4)
//! ```
//!
//! This module implements that bound (via an `erfc` implementation, since the
//! Rust standard library does not expose one), the inverse problem "how many
//! patterns fit at a given error budget", and an empirical validator used by
//! the test-suite to check the analysis against simulation.
//!
//! The paper's worked example — `D = 100,000`, `T = 0.5`, `P = 10,000` gives a
//! ≈5.7% false-positive rate — is verified in the tests below.

use crate::rng::HdRng;
use crate::BipolarHv;

/// Complementary error function `erfc(x) = 1 − erf(x)`.
///
/// Uses the Numerical-Recipes rational Chebyshev approximation (absolute
/// error < 1.2e−7 everywhere), which is ample for capacity estimates.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Standard normal upper-tail probability `Pr(Z > z)`.
pub fn gaussian_tail(z: f64) -> f64 {
    0.5 * erfc(z / std::f64::consts::SQRT_2)
}

/// False-positive probability of deciding a random query is stored in a
/// bundle of `patterns` hypervectors of dimension `dim`, at normalised
/// decision threshold `threshold` (the paper's `T`): Eq. 4.
///
/// # Panics
///
/// Panics if `dim == 0` or `patterns == 0`.
///
/// # Examples
///
/// ```
/// use hdc::capacity::false_positive_probability;
///
/// // The paper's worked example: D = 100k, T = 0.5, P = 10k → ≈ 5.7%.
/// let p = false_positive_probability(100_000, 10_000, 0.5);
/// assert!((p - 0.057).abs() < 0.01);
/// ```
pub fn false_positive_probability(dim: usize, patterns: usize, threshold: f64) -> f64 {
    assert!(dim > 0, "dim must be nonzero");
    assert!(patterns > 0, "patterns must be nonzero");
    gaussian_tail(threshold * (dim as f64 / patterns as f64).sqrt())
}

/// Maximum number of patterns a `dim`-wide hypervector can bundle while the
/// false-positive probability (Eq. 4) stays at or below `max_error`, for
/// decision threshold `threshold`. Returns 0 if even a single pattern
/// exceeds the budget.
///
/// # Panics
///
/// Panics if `dim == 0`, `threshold <= 0`, or `max_error` is outside `(0,1)`.
pub fn max_patterns(dim: usize, threshold: f64, max_error: f64) -> usize {
    assert!(dim > 0, "dim must be nonzero");
    assert!(threshold > 0.0, "threshold must be positive");
    assert!(
        (0.0..1.0).contains(&max_error) && max_error > 0.0,
        "max_error must be in (0,1)"
    );
    // Pr(Z > T·sqrt(D/P)) ≤ e  ⇔  T·sqrt(D/P) ≥ z_e  ⇔  P ≤ D·T²/z_e².
    // Invert the tail numerically (bisection on gaussian_tail).
    let (mut lo, mut hi) = (0.0f64, 40.0f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if gaussian_tail(mid) > max_error {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let z_e = 0.5 * (lo + hi);
    ((dim as f64) * threshold * threshold / (z_e * z_e)).floor() as usize
}

/// Minimum hypervector dimensionality needed to bundle `patterns` items
/// while the false-positive probability (Eq. 4) stays at or below
/// `max_error` for decision threshold `threshold` — the inverse of
/// [`max_patterns`], used to size deployments.
///
/// # Panics
///
/// Panics if `patterns == 0`, `threshold <= 0`, or `max_error` is outside
/// `(0, 1)`.
///
/// # Examples
///
/// ```
/// use hdc::capacity::{false_positive_probability, required_dimension};
///
/// let d = required_dimension(1_000, 0.5, 0.05);
/// assert!(false_positive_probability(d, 1_000, 0.5) <= 0.05);
/// ```
pub fn required_dimension(patterns: usize, threshold: f64, max_error: f64) -> usize {
    assert!(patterns > 0, "patterns must be nonzero");
    assert!(threshold > 0.0, "threshold must be positive");
    assert!(
        (0.0..1.0).contains(&max_error) && max_error > 0.0,
        "max_error must be in (0,1)"
    );
    // Invert the tail as in max_patterns: need T·sqrt(D/P) ≥ z_e, i.e.
    // D ≥ P·z_e²/T².
    let (mut lo, mut hi) = (0.0f64, 40.0f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if gaussian_tail(mid) > max_error {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let z_e = 0.5 * (lo + hi);
    ((patterns as f64) * z_e * z_e / (threshold * threshold)).ceil() as usize
}

/// Result of an empirical capacity measurement: how often a *random*
/// (unstored) query crosses the detection threshold against a bundle of
/// `patterns` stored hypervectors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityMeasurement {
    /// Number of Monte-Carlo query trials performed.
    pub trials: usize,
    /// Fraction of unstored queries that crossed the threshold (false
    /// positives).
    pub false_positive_rate: f64,
    /// Fraction of stored queries that were detected (true positives).
    pub true_positive_rate: f64,
}

/// Monte-Carlo validation of the capacity analysis: bundles `patterns`
/// random bipolar hypervectors of width `dim`, then measures how often
/// stored/unstored queries cross `threshold` (normalised similarity
/// `δ(M,Q)/D > T`).
///
/// # Panics
///
/// Panics if `dim`, `patterns`, or `trials` is zero.
pub fn measure_capacity(
    dim: usize,
    patterns: usize,
    threshold: f64,
    trials: usize,
    rng: &mut HdRng,
) -> CapacityMeasurement {
    assert!(
        dim > 0 && patterns > 0 && trials > 0,
        "parameters must be nonzero"
    );
    let stored: Vec<BipolarHv> = (0..patterns).map(|_| BipolarHv::random(dim, rng)).collect();
    // Integer accumulator of the bundle.
    let mut acc = vec![0i64; dim];
    for s in &stored {
        for (a, &b) in acc.iter_mut().zip(s.as_slice()) {
            *a += b as i64;
        }
    }
    let normalized_sim = |q: &BipolarHv| -> f64 {
        let dot: i64 = acc
            .iter()
            .zip(q.as_slice())
            .map(|(&a, &b)| a * b as i64)
            .sum();
        dot as f64 / dim as f64
    };
    let mut fp = 0usize;
    let mut tp = 0usize;
    for t in 0..trials {
        let q = BipolarHv::random(dim, rng);
        if normalized_sim(&q) > threshold {
            fp += 1;
        }
        if normalized_sim(&stored[t % patterns]) > threshold {
            tp += 1;
        }
    }
    CapacityMeasurement {
        trials,
        false_positive_rate: fp as f64 / trials as f64,
        true_positive_rate: tp as f64 / trials as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_reference_values() {
        // erfc(0) = 1, erfc(∞) → 0, erfc(-x) = 2 - erfc(x).
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!(erfc(5.0) < 1e-10);
        assert!((erfc(-1.0) - (2.0 - erfc(1.0))).abs() < 1e-12);
        // erfc(1) ≈ 0.157299...
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        // erfc(0.5) ≈ 0.479500...
        assert!((erfc(0.5) - 0.479_500_1).abs() < 1e-6);
    }

    #[test]
    fn gaussian_tail_reference_values() {
        // The rational approximation has absolute error ~1e-7.
        assert!((gaussian_tail(0.0) - 0.5).abs() < 1e-6);
        // Pr(Z > 1.6449) ≈ 0.05
        assert!((gaussian_tail(1.6449) - 0.05).abs() < 1e-4);
        // Pr(Z > 2.3263) ≈ 0.01
        assert!((gaussian_tail(2.3263) - 0.01).abs() < 1e-4);
    }

    #[test]
    fn papers_worked_example() {
        // D = 100,000, T = 0.5, P = 10,000 → "5.7% error" in the paper.
        // T·sqrt(D/P) = 0.5·sqrt(10) ≈ 1.581; Pr(Z > 1.581) ≈ 5.69%.
        let p = false_positive_probability(100_000, 10_000, 0.5);
        assert!((p - 0.0569).abs() < 0.002, "p = {p}");
    }

    #[test]
    fn error_monotone_in_patterns() {
        let mut prev = 0.0;
        for patterns in [10, 100, 1_000, 10_000] {
            let p = false_positive_probability(10_000, patterns, 0.5);
            assert!(p >= prev, "error should grow with pattern count");
            prev = p;
        }
    }

    #[test]
    fn error_monotone_in_dim() {
        let mut prev = 1.0;
        for dim in [1_000, 4_000, 16_000, 64_000] {
            let p = false_positive_probability(dim, 1_000, 0.5);
            assert!(p <= prev, "error should shrink with dimensionality");
            prev = p;
        }
    }

    #[test]
    fn max_patterns_inverts_probability() {
        let dim = 50_000;
        let t = 0.5;
        let e = 0.05;
        let p = max_patterns(dim, t, e);
        assert!(p > 0);
        // At the returned count the error must respect the budget...
        assert!(false_positive_probability(dim, p, t) <= e + 1e-9);
        // ...and be violated slightly above it.
        assert!(false_positive_probability(dim, p + p / 10 + 1, t) > e);
    }

    #[test]
    fn max_patterns_scales_linearly_with_dim() {
        let a = max_patterns(10_000, 0.5, 0.05);
        let b = max_patterns(20_000, 0.5, 0.05);
        let ratio = b as f64 / a as f64;
        assert!((ratio - 2.0).abs() < 0.05, "ratio = {ratio}");
    }

    #[test]
    fn monte_carlo_agrees_with_analysis() {
        // Empirical validation of Eq. 4 at a parameter point small enough to
        // run in a unit test.
        let mut rng = HdRng::seed_from(42);
        let (dim, patterns, t) = (2_000, 200, 0.5);
        let analytic = false_positive_probability(dim, patterns, t);
        let measured = measure_capacity(dim, patterns, t, 2_000, &mut rng);
        assert!(
            (measured.false_positive_rate - analytic).abs() < 0.02,
            "analytic = {analytic}, measured = {}",
            measured.false_positive_rate
        );
        // Stored patterns are almost always detected at this load
        // (analytically Pr(1 + N(0, sqrt(P/D)) > T) ≈ 94% here).
        assert!(measured.true_positive_rate > 0.9);
    }

    #[test]
    fn required_dimension_inverts_probability() {
        for patterns in [10usize, 100, 1_000] {
            let d = required_dimension(patterns, 0.5, 0.05);
            assert!(false_positive_probability(d, patterns, 0.5) <= 0.05 + 1e-9);
            // One pattern fewer dimensions-per-pattern must violate the
            // budget (within the ceil granularity).
            if d > patterns {
                let d_small = d - d / 10 - 1;
                assert!(false_positive_probability(d_small, patterns, 0.5) > 0.05);
            }
        }
    }

    #[test]
    fn required_dimension_and_max_patterns_are_consistent() {
        let d = required_dimension(500, 0.5, 0.05);
        let p = max_patterns(d, 0.5, 0.05);
        assert!(p >= 500, "round trip lost capacity: {p} < 500");
        assert!(p < 650, "round trip overshot: {p}");
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dim_panics() {
        false_positive_probability(0, 10, 0.5);
    }

    #[test]
    #[should_panic(expected = "max_error")]
    fn bad_error_budget_panics() {
        max_patterns(1000, 0.5, 1.5);
    }
}
