//! # hdc — hyperdimensional computing substrate
//!
//! This crate provides the low-level vector machinery that the RegHD
//! regression system (Hernandez-Cano et al., DAC 2021) is built on:
//! hypervector types in several precisions, similarity metrics,
//! bundling/binding/permutation operators, deterministic seeded generation of
//! random base hypervectors, a capacity analysis module implementing the
//! paper's Eq. 3–4, and noise-injection utilities used to validate the
//! robustness claims of §3.
//!
//! Hyperdimensional (HD) computing represents information as very wide
//! vectors (typically `D` in the thousands). Because information is spread
//! holographically across all components, HD representations are robust to
//! per-component noise, and the core learning operations reduce to cheap,
//! embarrassingly parallel element-wise arithmetic.
//!
//! ## Vector types
//!
//! | Type | Element | Storage | Used for |
//! |---|---|---|---|
//! | [`RealHv`] | `f32` | `Vec<f32>` | encoded queries, integer/float models |
//! | [`BipolarHv`] | `{-1,+1}` | `Vec<i8>` | random base hypervectors `B_k` |
//! | [`BinaryHv`] | `{0,1}` | bit-packed `Vec<u64>` | quantized clusters / models / queries |
//!
//! ## Example
//!
//! ```
//! use hdc::{BipolarHv, BinaryHv, similarity};
//! use hdc::rng::HdRng;
//!
//! let mut rng = HdRng::seed_from(42);
//! let a = BipolarHv::random(1024, &mut rng);
//! let b = BipolarHv::random(1024, &mut rng);
//! // Independent random bipolar hypervectors are nearly orthogonal:
//! let cos = similarity::cosine(&a.to_real(), &b.to_real());
//! assert!(cos.abs() < 0.2);
//!
//! // Binary hypervectors support fast Hamming similarity via popcount:
//! let p = BinaryHv::random(1024, &mut rng);
//! assert_eq!(similarity::hamming_distance(&p, &p), 0);
//! ```

// `deny` rather than `forbid`: the `simd` module (and only that module)
// carries an `allow` for the `std::arch` intrinsic kernels; everything else
// in the crate still refuses unsafe code at compile time.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod binary;
pub mod bipolar;
pub mod capacity;
pub mod dense;
pub mod error;
pub mod item_memory;
pub mod kernels;
pub mod noise;
pub mod ops;
pub mod par;
pub mod quant;
pub mod rng;
pub mod simd;
pub mod similarity;

pub use binary::BinaryHv;
pub use bipolar::BipolarHv;
pub use dense::RealHv;
pub use error::{DimensionMismatchError, HdcError};
pub use kernels::TrigMode;
