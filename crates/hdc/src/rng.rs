//! Deterministic random-number generation for hypervector construction.
//!
//! Every stochastic component of the RegHD pipeline — random bipolar base
//! hypervectors, random phase offsets, random cluster initialisation — is
//! seeded through [`HdRng`] so that experiments are exactly reproducible.
//! [`HdRng`] wraps a small, fast xoshiro-style generator (SplitMix64 seeded
//! xoshiro256++) implemented locally so that reproducibility does not depend
//! on the `rand` crate's unstable stream guarantees across versions.
//!
//! The type still implements [`rand::RngCore`] so it can be used anywhere a
//! `rand` generator is expected (e.g. `rand::distributions`).

use rand::RngCore;

/// A small, fast, deterministic RNG (xoshiro256++) used for all hypervector
/// randomness in the workspace.
///
/// # Examples
///
/// ```
/// use hdc::rng::HdRng;
///
/// let mut a = HdRng::seed_from(7);
/// let mut b = HdRng::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HdRng {
    s: [u64; 4],
}

impl HdRng {
    /// Creates a generator whose full 256-bit state is expanded from `seed`
    /// with SplitMix64, so nearby seeds still produce uncorrelated streams.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f32` in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Returns a standard normal sample via the Box–Muller transform.
    pub fn next_gaussian(&mut self) -> f64 {
        // Reject u1 == 0 to avoid ln(0).
        let mut u1 = self.next_f64();
        while u1 <= f64::MIN_POSITIVE {
            u1 = self.next_f64();
        }
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Returns a uniform integer in `[0, bound)` using Lemire's method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be nonzero");
        let bound = bound as u64;
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as usize
    }

    /// Returns `true` with probability `p`.
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Derives an independent child generator; useful for giving each model
    /// component its own stream while keeping a single top-level seed.
    pub fn fork(&mut self) -> Self {
        Self::seed_from(self.next_u64())
    }
}

impl RngCore for HdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        HdRng::next_u64(self)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&HdRng::next_u64(self).to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = HdRng::next_u64(self).to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = HdRng::seed_from(123);
        let mut b = HdRng::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_different_streams() {
        let mut a = HdRng::seed_from(1);
        let mut b = HdRng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = HdRng::seed_from(5);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f32_in_unit_interval() {
        let mut r = HdRng::seed_from(5);
        for _ in 0..10_000 {
            let x = r.next_f32();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut r = HdRng::seed_from(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn gaussian_moments() {
        let mut r = HdRng::seed_from(7);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| r.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.03, "var = {var}");
    }

    #[test]
    fn next_below_bounds_and_coverage() {
        let mut r = HdRng::seed_from(11);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = r.next_below(10);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "bound must be nonzero")]
    fn next_below_zero_panics() {
        HdRng::seed_from(0).next_below(0);
    }

    #[test]
    fn next_bool_probability() {
        let mut r = HdRng::seed_from(21);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.next_bool(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    fn fork_is_decorrelated() {
        let mut parent = HdRng::seed_from(42);
        let mut child = parent.fork();
        let same = (0..64)
            .filter(|_| parent.next_u64() == child.next_u64())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut r = HdRng::seed_from(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        // Extremely unlikely that the trailing bytes all stay zero.
        assert!(buf[8..].iter().any(|&b| b != 0));
    }

    #[test]
    fn rngcore_next_u32_works() {
        use rand::RngCore as _;
        let mut r = HdRng::seed_from(9);
        let _ = r.next_u32();
    }

    #[test]
    fn seed_zero_is_usable() {
        // SplitMix expansion guarantees a zero seed does not yield the
        // degenerate all-zero xoshiro state.
        let mut r = HdRng::seed_from(0);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }
}
