//! Property-based tests for the encoder family.

use encoding::{
    Encoder, EncoderSpec, IdLevelEncoder, NonlinearEncoder, ProjectionEncoder, RffEncoder,
    TemporalEncoder,
};
use hdc::similarity::cosine;
use proptest::prelude::*;

fn input(n: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-3.0f32..3.0, n)
}

fn all_encoders(dim: usize, seed: u64) -> Vec<Box<dyn Encoder>> {
    vec![
        Box::new(NonlinearEncoder::new(4, dim, seed)),
        Box::new(RffEncoder::new(4, dim, 1.0, seed)),
        Box::new(ProjectionEncoder::new(4, dim, seed)),
        Box::new(IdLevelEncoder::new(4, dim, 16, (-3.0, 3.0), seed)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn encoders_are_deterministic(x in input(4), seed in any::<u64>()) {
        for enc in all_encoders(128, seed) {
            prop_assert_eq!(enc.encode(&x), enc.encode(&x));
        }
    }

    #[test]
    fn encodings_are_finite(x in input(4), seed in any::<u64>()) {
        for enc in all_encoders(128, seed) {
            let h = enc.encode(&x);
            prop_assert!(h.as_slice().iter().all(|v| v.is_finite()));
            prop_assert_eq!(h.dim(), 128);
        }
    }

    #[test]
    fn binary_encoding_matches_sign(x in input(4), seed in any::<u64>()) {
        for enc in all_encoders(96, seed) {
            let real = enc.encode(&x);
            let bin = enc.encode_binary(&x);
            for d in 0..96 {
                prop_assert_eq!(bin.get(d), real.as_slice()[d] > 0.0);
            }
        }
    }

    #[test]
    fn small_perturbations_keep_high_similarity(x in input(4), seed in any::<u64>()) {
        // Lipschitz-style similarity preservation for the smooth encoders.
        let near: Vec<f32> = x.iter().map(|&v| v + 0.005).collect();
        for enc in [
            Box::new(NonlinearEncoder::new(4, 2048, seed)) as Box<dyn Encoder>,
            Box::new(RffEncoder::new(4, 2048, 1.0, seed)),
            Box::new(ProjectionEncoder::new(4, 2048, seed)),
        ] {
            let a = enc.encode(&x);
            let b = enc.encode(&near);
            // Degenerate zero encodings (all-zero input for cos·sin) have
            // undefined cosine; skip those.
            if a.norm() > 1e-3 && b.norm() > 1e-3 {
                let sim = cosine(&a, &b);
                prop_assert!(sim > 0.95, "sim = {}", sim);
            }
        }
    }

    #[test]
    fn spec_builds_equal_encoders(x in input(4), seed in any::<u64>()) {
        let specs = [
            EncoderSpec::Nonlinear { input_dim: 4, dim: 64, seed },
            EncoderSpec::Rff { input_dim: 4, dim: 64, bandwidth: 2.0, seed },
            EncoderSpec::Projection { input_dim: 4, dim: 64, seed },
            EncoderSpec::IdLevel { input_dim: 4, dim: 64, levels: 8, range: (-3.0, 3.0), seed },
        ];
        for spec in &specs {
            prop_assert_eq!(spec.build().encode(&x), spec.build().encode(&x));
        }
    }

    #[test]
    fn temporal_encoder_flattens_consistently(
        steps in prop::collection::vec(input(2), 3..6),
        seed in any::<u64>(),
    ) {
        let window = steps.len();
        let enc = TemporalEncoder::new(Box::new(NonlinearEncoder::new(2, 256, seed)), window);
        let flat: Vec<f32> = steps.iter().flatten().copied().collect();
        let h = enc.encode(&flat);
        prop_assert_eq!(h.dim(), 256);
        prop_assert!(h.as_slice().iter().all(|v| v.is_finite()));
        // Same window twice → identical encodings.
        prop_assert_eq!(h, enc.encode(&flat));
    }

    #[test]
    fn id_level_is_piecewise_constant(v in -3.0f32..3.0, seed in any::<u64>()) {
        // Values inside the same quantisation cell encode identically.
        let enc = IdLevelEncoder::new(1, 128, 8, (-3.0, 3.0), seed);
        let level = enc.quantize(v);
        // Probe a nearby value in the same cell.
        let cell_width = 6.0f32 / 7.0;
        let nudge = (cell_width * 0.05).copysign(0.0 - v);
        let v2 = v + nudge;
        if enc.quantize(v2) == level {
            prop_assert_eq!(enc.encode(&[v]), enc.encode(&[v2]));
        }
    }

    #[test]
    fn encode_both_consistency(x in input(4), seed in any::<u64>()) {
        let enc = NonlinearEncoder::new(4, 128, seed);
        let (real, binary) = enc.encode_both(&x);
        prop_assert_eq!(real, enc.encode(&x));
        prop_assert_eq!(binary, enc.encode_binary(&x));
    }
}
