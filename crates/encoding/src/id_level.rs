//! Classic ID–level record encoding from the pre-RegHD HDC literature.
//!
//! Each feature position `k` gets a random **ID hypervector** and each
//! quantised feature *value* gets a **level hypervector**. Level
//! hypervectors form a flip-chain: `L_0` is random and each subsequent level
//! flips a fixed fraction of fresh positions, so nearby quantisation levels
//! stay similar while the extreme levels are nearly orthogonal. A record is
//! encoded by binding each ID with its value's level and bundling:
//!
//! ```text
//! H = Σ_k  ID_k ⊛ L(quantize(f_k))
//! ```
//!
//! This is the encoding the Baseline-HD comparator (paper ref. \[18\]) builds
//! on; RegHD's Table 1 shows its discrete nature is what makes HD
//! *classification*-based regression inaccurate.

use crate::Encoder;
use hdc::rng::HdRng;
use hdc::{BipolarHv, RealHv};

/// ID–level encoder with `levels` quantisation steps over a fixed value
/// range.
///
/// # Examples
///
/// ```
/// use encoding::{Encoder, IdLevelEncoder};
///
/// let enc = IdLevelEncoder::new(3, 2048, 16, (-1.0, 1.0), 5);
/// let h = enc.encode(&[0.0, 0.5, -0.5]);
/// assert_eq!(h.dim(), 2048);
/// ```
#[derive(Debug, Clone)]
pub struct IdLevelEncoder {
    ids: Vec<BipolarHv>,
    levels: Vec<BipolarHv>,
    range: (f32, f32),
    input_dim: usize,
    dim: usize,
}

impl IdLevelEncoder {
    /// Creates an ID–level encoder.
    ///
    /// `levels` is the number of quantisation steps; `range = (lo, hi)` is
    /// the value interval mapped onto the level chain (values outside clamp).
    ///
    /// # Panics
    ///
    /// Panics if `input_dim == 0`, `dim == 0`, `levels < 2`, or
    /// `range.0 >= range.1`.
    pub fn new(input_dim: usize, dim: usize, levels: usize, range: (f32, f32), seed: u64) -> Self {
        assert!(input_dim > 0, "input_dim must be nonzero");
        assert!(dim > 0, "dim must be nonzero");
        assert!(levels >= 2, "need at least 2 levels");
        assert!(range.0 < range.1, "range must be nonempty");
        let mut rng = HdRng::seed_from(seed);
        let ids = (0..input_dim)
            .map(|_| BipolarHv::random(dim, &mut rng))
            .collect();

        // Flip-chain of level hypervectors: L_{i+1} flips `dim/(2(levels-1))`
        // fresh positions of L_i, so L_0 and L_{levels-1} differ in ~dim/2
        // positions (nearly orthogonal), with similarity linear in level gap.
        let mut levels_vec = Vec::with_capacity(levels);
        let mut current: Vec<i8> = BipolarHv::random(dim, &mut rng).as_slice().to_vec();
        levels_vec.push(BipolarHv::from_vec(current.clone()));
        let flips_per_step = dim / (2 * (levels - 1));
        // Shuffle all indices once; consume a fresh block per step so no
        // position flips twice (keeps the similarity profile exactly linear).
        let mut order: Vec<usize> = (0..dim).collect();
        for i in (1..dim).rev() {
            let j = rng.next_below(i + 1);
            order.swap(i, j);
        }
        let mut cursor = 0usize;
        for _ in 1..levels {
            for _ in 0..flips_per_step {
                if cursor < dim {
                    current[order[cursor]] = -current[order[cursor]];
                    cursor += 1;
                }
            }
            levels_vec.push(BipolarHv::from_vec(current.clone()));
        }

        Self {
            ids,
            levels: levels_vec,
            range,
            input_dim,
            dim,
        }
    }

    /// Number of quantisation levels.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Maps a raw feature value to its quantisation level index.
    pub fn quantize(&self, value: f32) -> usize {
        let (lo, hi) = self.range;
        let t = ((value - lo) / (hi - lo)).clamp(0.0, 1.0);
        let idx = (t * (self.levels.len() - 1) as f32).round() as usize;
        idx.min(self.levels.len() - 1)
    }
}

impl Encoder for IdLevelEncoder {
    fn input_dim(&self) -> usize {
        self.input_dim
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn encode(&self, features: &[f32]) -> RealHv {
        assert_eq!(
            features.len(),
            self.input_dim,
            "encode: expected {} features, got {}",
            self.input_dim,
            features.len()
        );
        let mut out = vec![0.0f32; self.dim];
        for (k, &f) in features.iter().enumerate() {
            let level = &self.levels[self.quantize(f)];
            let id = self.ids[k].as_slice();
            let lv = level.as_slice();
            for d in 0..self.dim {
                out[d] += (id[d] * lv[d]) as f32;
            }
        }
        RealHv::from_vec(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::similarity::cosine;

    fn enc() -> IdLevelEncoder {
        IdLevelEncoder::new(4, 4096, 32, (-1.0, 1.0), 7)
    }

    #[test]
    fn quantize_maps_range() {
        let e = enc();
        assert_eq!(e.quantize(-1.0), 0);
        assert_eq!(e.quantize(1.0), 31);
        assert_eq!(e.quantize(0.0), 16); // rounds to middle
                                         // Clamps outside the range.
        assert_eq!(e.quantize(-5.0), 0);
        assert_eq!(e.quantize(5.0), 31);
    }

    #[test]
    fn level_chain_similarity_linear_in_gap() {
        let e = IdLevelEncoder::new(1, 8192, 16, (0.0, 1.0), 3);
        // Level i vs level 0: similarity should decay ~linearly.
        let l = |i: usize| e.levels[i].to_real();
        let s1 = cosine(&l(0), &l(1));
        let s8 = cosine(&l(0), &l(8));
        let s15 = cosine(&l(0), &l(15));
        assert!(s1 > s8 && s8 > s15, "{s1} {s8} {s15}");
        // Extremes nearly orthogonal (dim/2 flips).
        assert!(s15.abs() < 0.1, "s15 = {s15}");
        // One step flips dim/(2·15) bits → similarity ≈ 1 − 2/15·... ≈ 0.93.
        assert!(s1 > 0.9, "s1 = {s1}");
    }

    #[test]
    fn nearby_values_similar_far_values_not() {
        let e = enc();
        let h = e.encode(&[0.0, 0.0, 0.0, 0.0]);
        let near = e.encode(&[0.05, -0.05, 0.05, 0.0]);
        let far = e.encode(&[0.9, -0.9, 0.9, -0.9]);
        assert!(cosine(&h, &near) > 0.8);
        assert!(cosine(&h, &near) > cosine(&h, &far) + 0.3);
    }

    #[test]
    fn discrete_plateaus() {
        // Values that quantise to the same level encode identically — the
        // discreteness that hurts Baseline-HD's regression accuracy.
        let e = IdLevelEncoder::new(1, 512, 4, (0.0, 1.0), 1);
        let a = e.encode(&[0.10]);
        let b = e.encode(&[0.12]); // same level in a 4-level scheme
        assert_eq!(a, b);
    }

    #[test]
    fn deterministic() {
        let a = IdLevelEncoder::new(2, 256, 8, (0.0, 1.0), 5);
        let b = IdLevelEncoder::new(2, 256, 8, (0.0, 1.0), 5);
        assert_eq!(a.encode(&[0.3, 0.7]), b.encode(&[0.3, 0.7]));
    }

    #[test]
    fn feature_positions_are_distinguished() {
        // Swapping values between positions must change the encoding,
        // because each position has its own ID hypervector.
        let e = enc();
        let ab = e.encode(&[1.0, -1.0, 0.0, 0.0]);
        let ba = e.encode(&[-1.0, 1.0, 0.0, 0.0]);
        assert!(cosine(&ab, &ba) < 0.8);
    }

    #[test]
    #[should_panic(expected = "at least 2 levels")]
    fn one_level_panics() {
        IdLevelEncoder::new(1, 64, 1, (0.0, 1.0), 0);
    }

    #[test]
    #[should_panic(expected = "range must be nonempty")]
    fn bad_range_panics() {
        IdLevelEncoder::new(1, 64, 4, (1.0, 1.0), 0);
    }

    #[test]
    fn level_count_accessor() {
        assert_eq!(enc().level_count(), 32);
    }
}
