//! Plain random-projection encoder (no nonlinearity).
//!
//! `H[d] = Σ_k f_k · B_k[d]` — a linear signed projection through the same
//! random bipolar base hypervectors as [`crate::NonlinearEncoder`], but with
//! the trigonometric nonlinearity removed. A linear learner over this
//! encoding is equivalent to a linear learner over the raw features, so the
//! gap between this encoder and Eq. 1 in the ablation benches isolates the
//! value of the encoder's nonlinearity (the property the paper credits for
//! RegHD "learning a regression model in an efficient and linear way").

use crate::Encoder;
use hdc::kernels::project_bipolar_blocked;
use hdc::rng::HdRng;
use hdc::{BipolarHv, RealHv};

/// Linear signed random projection into HD space.
///
/// # Examples
///
/// ```
/// use encoding::{Encoder, ProjectionEncoder};
///
/// let enc = ProjectionEncoder::new(2, 512, 3);
/// // Linearity: encode(a + b) == encode(a) + encode(b).
/// let ab = enc.encode(&[0.3, 0.6]);
/// let a = enc.encode(&[0.3, 0.0]);
/// let b = enc.encode(&[0.0, 0.6]);
/// let sum = a.checked_add(&b)?;
/// for (x, y) in ab.as_slice().iter().zip(sum.as_slice()) {
///     assert!((x - y).abs() < 1e-6);
/// }
/// # Ok::<(), hdc::DimensionMismatchError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ProjectionEncoder {
    bases: Vec<BipolarHv>,
    input_dim: usize,
    dim: usize,
}

impl ProjectionEncoder {
    /// Creates a projection encoder with seeded random bipolar bases.
    ///
    /// # Panics
    ///
    /// Panics if `input_dim == 0` or `dim == 0`.
    pub fn new(input_dim: usize, dim: usize, seed: u64) -> Self {
        assert!(input_dim > 0, "input_dim must be nonzero");
        assert!(dim > 0, "dim must be nonzero");
        let mut rng = HdRng::seed_from(seed);
        let bases = (0..input_dim)
            .map(|_| BipolarHv::random(dim, &mut rng))
            .collect();
        Self {
            bases,
            input_dim,
            dim,
        }
    }
}

impl Encoder for ProjectionEncoder {
    fn input_dim(&self) -> usize {
        self.input_dim
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn encode(&self, features: &[f32]) -> RealHv {
        assert_eq!(
            features.len(),
            self.input_dim,
            "encode: expected {} features, got {}",
            self.input_dim,
            features.len()
        );
        let mut out = vec![0.0f32; self.dim];
        for (k, &f) in features.iter().enumerate() {
            let base = self.bases[k].as_slice();
            for (o, &b) in out.iter_mut().zip(base) {
                *o += f * b as f32;
            }
        }
        RealHv::from_vec(out)
    }

    fn encode_batch_into(&self, rows: &[Vec<f32>], out: &mut [RealHv], threads: usize) {
        let threads = hdc::par::resolve_threads(threads);
        hdc::par::chunked_zip_mut(rows, out, threads, |part, out_part| {
            let row_refs: Vec<&[f32]> = part.iter().map(Vec::as_slice).collect();
            project_bipolar_blocked(&self.bases, self.dim, &row_refs, out_part);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::similarity::cosine;

    #[test]
    fn linearity() {
        let enc = ProjectionEncoder::new(3, 256, 1);
        let a = [0.5f32, -0.2, 0.8];
        let b = [0.1f32, 0.9, -0.3];
        let sum: Vec<f32> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let h_sum = enc.encode(&sum);
        let h_parts = enc.encode(&a).checked_add(&enc.encode(&b)).unwrap();
        for (x, y) in h_sum.as_slice().iter().zip(h_parts.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn preserves_inner_products_in_expectation() {
        // Johnson–Lindenstrauss-style: <enc(x), enc(y)>/D ≈ <x, y>.
        let enc = ProjectionEncoder::new(4, 20_000, 2);
        let x = [1.0f32, 0.5, -0.5, 0.0];
        let y = [0.2f32, -1.0, 0.3, 0.7];
        let raw: f32 = x.iter().zip(&y).map(|(&a, &b)| a * b).sum();
        let emp = enc.encode(&x).dot(&enc.encode(&y)) / 20_000.0;
        assert!((emp - raw).abs() < 0.1, "raw={raw} emp={emp}");
    }

    #[test]
    fn deterministic() {
        let a = ProjectionEncoder::new(2, 64, 9);
        let b = ProjectionEncoder::new(2, 64, 9);
        assert_eq!(a.encode(&[1.0, 2.0]), b.encode(&[1.0, 2.0]));
    }

    #[test]
    fn similarity_decays() {
        let enc = ProjectionEncoder::new(3, 4096, 5);
        let x = [1.0f32, 1.0, 1.0];
        let h = enc.encode(&x);
        let near = enc.encode(&[1.1, 0.9, 1.0]);
        let far = enc.encode(&[-1.0, 2.0, -3.0]);
        assert!(cosine(&h, &near) > cosine(&h, &far));
    }

    #[test]
    #[should_panic(expected = "expected 2 features")]
    fn wrong_len_panics() {
        ProjectionEncoder::new(2, 16, 0).encode(&[0.0; 3]);
    }

    #[test]
    fn batch_kernel_is_bit_identical_to_scalar() {
        use crate::Encoder;
        let enc = ProjectionEncoder::new(4, 263, 19);
        let rows: Vec<Vec<f32>> = (0..7)
            .map(|i| vec![i as f32 * 0.5 - 1.5, (i as f32).sin(), 0.2, -0.9])
            .collect();
        let mut out = vec![RealHv::default(); rows.len()];
        for threads in [1usize, 3] {
            enc.encode_batch_into(&rows, &mut out, threads);
            for (row, got) in rows.iter().zip(&out) {
                let want = enc.encode(row);
                let gb: Vec<u32> = got.as_slice().iter().map(|v| v.to_bits()).collect();
                let wb: Vec<u32> = want.as_slice().iter().map(|v| v.to_bits()).collect();
                assert_eq!(gb, wb, "threads={threads}");
            }
        }
    }
}
