//! Temporal window encoder: sequences of feature vectors into one
//! hypervector, via permutation binding.
//!
//! HD computing represents *order* by cyclic permutation ρ: the window
//! `x_{t−W+1}, …, x_t` encodes as
//!
//! ```text
//! H = Σ_{i=0..W-1} ρⁱ( enc(x_{t−i}) )
//! ```
//!
//! where `ρⁱ` rotates the hypervector by `i·stride` positions. Because
//! rotation is an isometry that decorrelates a hypervector from its
//! unrotated self, each lag occupies its own "slot" of the space while the
//! sum remains similarity-preserving in each slot — the standard HD
//! sequence trick (Kanerva 2009; used by the paper's time-series-flavoured
//! motivation for IoT streams). This turns RegHD into a time-series
//! regressor: encode a sliding window, regress the next value.

use crate::Encoder;
use hdc::RealHv;

/// Encodes a flattened window of `window` consecutive feature vectors by
/// permutation-binding each lag of an inner encoder's output.
///
/// Expects input of length `window × inner.input_dim()`, ordered most
/// recent first.
///
/// # Examples
///
/// ```
/// use encoding::{Encoder, NonlinearEncoder, TemporalEncoder};
///
/// let inner = NonlinearEncoder::new(2, 512, 3);
/// let enc = TemporalEncoder::new(Box::new(inner), 3);
/// assert_eq!(enc.input_dim(), 6); // 3 timesteps × 2 features
/// let h = enc.encode(&[0.1, 0.2,  0.0, 0.1,  -0.1, 0.0]);
/// assert_eq!(h.dim(), 512);
/// ```
pub struct TemporalEncoder {
    inner: Box<dyn Encoder>,
    window: usize,
    stride: usize,
}

impl std::fmt::Debug for TemporalEncoder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TemporalEncoder")
            .field("window", &self.window)
            .field("inner_dim", &self.inner.dim())
            .finish()
    }
}

impl TemporalEncoder {
    /// Wraps `inner`, encoding windows of `window` timesteps. The rotation
    /// stride defaults to 1 position per lag.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(inner: Box<dyn Encoder>, window: usize) -> Self {
        Self::with_stride(inner, window, 1)
    }

    /// Like [`TemporalEncoder::new`] with an explicit rotation stride per
    /// lag (larger strides decorrelate lags harder for small `D`).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` or `stride == 0`.
    pub fn with_stride(inner: Box<dyn Encoder>, window: usize, stride: usize) -> Self {
        assert!(window > 0, "window must be nonzero");
        assert!(stride > 0, "stride must be nonzero");
        Self {
            inner,
            window,
            stride,
        }
    }

    /// The window length in timesteps.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Rotates a real hypervector by `shift` positions (cyclic).
    fn rotate(v: &RealHv, shift: usize) -> RealHv {
        let data = v.as_slice();
        let n = data.len();
        if n == 0 {
            return v.clone();
        }
        let s = shift % n;
        let mut out = Vec::with_capacity(n);
        out.extend_from_slice(&data[n - s..]);
        out.extend_from_slice(&data[..n - s]);
        RealHv::from_vec(out)
    }
}

impl Encoder for TemporalEncoder {
    fn input_dim(&self) -> usize {
        self.window * self.inner.input_dim()
    }

    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn encode(&self, features: &[f32]) -> RealHv {
        assert_eq!(
            features.len(),
            self.input_dim(),
            "encode: expected {} features ({} steps × {}), got {}",
            self.input_dim(),
            self.window,
            self.inner.input_dim(),
            features.len()
        );
        let step = self.inner.input_dim();
        let mut acc = RealHv::zeros(self.dim());
        for (lag, chunk) in features.chunks(step).enumerate() {
            let encoded = self.inner.encode(chunk);
            let rotated = Self::rotate(&encoded, lag * self.stride);
            acc.add_scaled(&rotated, 1.0);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NonlinearEncoder;
    use hdc::similarity::cosine;

    fn enc(window: usize) -> TemporalEncoder {
        TemporalEncoder::new(Box::new(NonlinearEncoder::new(2, 2048, 7)), window)
    }

    #[test]
    fn shape_accounting() {
        let e = enc(4);
        assert_eq!(e.input_dim(), 8);
        assert_eq!(e.dim(), 2048);
        assert_eq!(e.window(), 4);
    }

    #[test]
    fn order_matters() {
        // Swapping two timesteps must change the encoding: permutation
        // binding distinguishes positions.
        let e = enc(2);
        let ab = e.encode(&[1.0, 0.0, 0.0, 1.0]);
        let ba = e.encode(&[0.0, 1.0, 1.0, 0.0]);
        let sim = cosine(&ab, &ba);
        assert!(sim < 0.95, "order-swapped windows too similar: {sim}");
    }

    #[test]
    fn similar_windows_stay_similar() {
        let e = enc(3);
        let base = [0.5f32, -0.2, 0.4, -0.1, 0.3, 0.0];
        let near: Vec<f32> = base.iter().map(|&v| v + 0.02).collect();
        let far = [-1.5f32, 2.0, 1.2, -2.0, 0.9, 1.5];
        let h = e.encode(&base);
        assert!(cosine(&h, &e.encode(&near)) > cosine(&h, &e.encode(&far)));
        assert!(cosine(&h, &e.encode(&near)) > 0.9);
    }

    #[test]
    fn rotation_is_cyclic() {
        let v = RealHv::from_vec(vec![1.0, 2.0, 3.0, 4.0]);
        let r = TemporalEncoder::rotate(&v, 1);
        assert_eq!(r.as_slice(), &[4.0, 1.0, 2.0, 3.0]);
        assert_eq!(TemporalEncoder::rotate(&v, 4), v);
        assert_eq!(TemporalEncoder::rotate(&RealHv::zeros(0), 3).dim(), 0);
    }

    #[test]
    fn deterministic() {
        let a = enc(3);
        let b = enc(3);
        let x = [0.1f32; 6];
        assert_eq!(a.encode(&x), b.encode(&x));
    }

    #[test]
    #[should_panic(expected = "expected 4 features")]
    fn wrong_window_width_panics() {
        enc(2).encode(&[0.0; 6]);
    }

    #[test]
    #[should_panic(expected = "window must be nonzero")]
    fn zero_window_panics() {
        TemporalEncoder::new(Box::new(NonlinearEncoder::new(2, 64, 0)), 0);
    }

    #[test]
    fn single_step_window_matches_inner() {
        let inner = NonlinearEncoder::new(2, 256, 5);
        let e = TemporalEncoder::new(Box::new(NonlinearEncoder::new(2, 256, 5)), 1);
        let x = [0.3f32, -0.6];
        assert_eq!(e.encode(&x), inner.encode(&x));
    }
}
