//! Serializable encoder specifications.
//!
//! Every encoder in this crate is **deterministic given its constructor
//! parameters** (all randomness is derived from the seed), so a trained
//! model can be persisted by storing the encoder's *specification* rather
//! than its expanded projection matrices — a few integers instead of
//! megabytes. [`EncoderSpec`] is that specification; [`EncoderSpec::build`]
//! reconstructs the identical encoder.

use crate::{Encoder, IdLevelEncoder, NonlinearEncoder, ProjectionEncoder, RffEncoder};

/// A compact, serialisable description of an encoder.
///
/// # Examples
///
/// ```
/// use encoding::{Encoder, EncoderSpec};
///
/// let spec = EncoderSpec::Nonlinear { input_dim: 4, dim: 512, seed: 9 };
/// let a = spec.build();
/// let b = spec.build();
/// assert_eq!(a.encode(&[0.1, 0.2, 0.3, 0.4]), b.encode(&[0.1, 0.2, 0.3, 0.4]));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum EncoderSpec {
    /// [`NonlinearEncoder`] — RegHD's default `cos·sin` map.
    Nonlinear {
        /// Input feature count.
        input_dim: usize,
        /// Hypervector dimensionality.
        dim: usize,
        /// Seed all randomness derives from.
        seed: u64,
    },
    /// [`RffEncoder`] — cos-only random Fourier features.
    Rff {
        /// Input feature count.
        input_dim: usize,
        /// Hypervector dimensionality.
        dim: usize,
        /// Kernel length-scale σ.
        bandwidth: f32,
        /// Seed all randomness derives from.
        seed: u64,
    },
    /// [`ProjectionEncoder`] — linear signed random projection.
    Projection {
        /// Input feature count.
        input_dim: usize,
        /// Hypervector dimensionality.
        dim: usize,
        /// Seed all randomness derives from.
        seed: u64,
    },
    /// [`IdLevelEncoder`] — classic ID–level record encoding.
    IdLevel {
        /// Input feature count.
        input_dim: usize,
        /// Hypervector dimensionality.
        dim: usize,
        /// Number of quantisation levels.
        levels: usize,
        /// Value range mapped onto the level chain.
        range: (f32, f32),
        /// Seed all randomness derives from.
        seed: u64,
    },
}

impl EncoderSpec {
    /// Reconstructs the encoder this spec describes. Deterministic: two
    /// builds of the same spec encode identically.
    ///
    /// # Panics
    ///
    /// Panics if the spec's parameters are invalid (zero dims, bad range —
    /// the same conditions the underlying constructors reject).
    pub fn build(&self) -> Box<dyn Encoder> {
        match *self {
            EncoderSpec::Nonlinear {
                input_dim,
                dim,
                seed,
            } => Box::new(NonlinearEncoder::new(input_dim, dim, seed)),
            EncoderSpec::Rff {
                input_dim,
                dim,
                bandwidth,
                seed,
            } => Box::new(RffEncoder::new(input_dim, dim, bandwidth, seed)),
            EncoderSpec::Projection {
                input_dim,
                dim,
                seed,
            } => Box::new(ProjectionEncoder::new(input_dim, dim, seed)),
            EncoderSpec::IdLevel {
                input_dim,
                dim,
                levels,
                range,
                seed,
            } => Box::new(IdLevelEncoder::new(input_dim, dim, levels, range, seed)),
        }
    }

    /// The hypervector dimensionality the built encoder will produce.
    pub fn dim(&self) -> usize {
        match *self {
            EncoderSpec::Nonlinear { dim, .. }
            | EncoderSpec::Rff { dim, .. }
            | EncoderSpec::Projection { dim, .. }
            | EncoderSpec::IdLevel { dim, .. } => dim,
        }
    }

    /// The input feature count the built encoder will expect.
    pub fn input_dim(&self) -> usize {
        match *self {
            EncoderSpec::Nonlinear { input_dim, .. }
            | EncoderSpec::Rff { input_dim, .. }
            | EncoderSpec::Projection { input_dim, .. }
            | EncoderSpec::IdLevel { input_dim, .. } => input_dim,
        }
    }

    /// A stable numeric tag identifying the variant (used by the binary
    /// persistence format).
    pub fn kind_tag(&self) -> u8 {
        match self {
            EncoderSpec::Nonlinear { .. } => 0,
            EncoderSpec::Rff { .. } => 1,
            EncoderSpec::Projection { .. } => 2,
            EncoderSpec::IdLevel { .. } => 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_are_deterministic() {
        let specs = [
            EncoderSpec::Nonlinear {
                input_dim: 3,
                dim: 128,
                seed: 1,
            },
            EncoderSpec::Rff {
                input_dim: 3,
                dim: 128,
                bandwidth: 1.5,
                seed: 1,
            },
            EncoderSpec::Projection {
                input_dim: 3,
                dim: 128,
                seed: 1,
            },
            EncoderSpec::IdLevel {
                input_dim: 3,
                dim: 128,
                levels: 8,
                range: (-1.0, 1.0),
                seed: 1,
            },
        ];
        let x = [0.2f32, -0.7, 0.4];
        for spec in &specs {
            assert_eq!(spec.build().encode(&x), spec.build().encode(&x));
            assert_eq!(spec.dim(), 128);
            assert_eq!(spec.input_dim(), 3);
        }
    }

    #[test]
    fn kind_tags_are_distinct() {
        let tags = [
            EncoderSpec::Nonlinear {
                input_dim: 1,
                dim: 8,
                seed: 0,
            }
            .kind_tag(),
            EncoderSpec::Rff {
                input_dim: 1,
                dim: 8,
                bandwidth: 1.0,
                seed: 0,
            }
            .kind_tag(),
            EncoderSpec::Projection {
                input_dim: 1,
                dim: 8,
                seed: 0,
            }
            .kind_tag(),
            EncoderSpec::IdLevel {
                input_dim: 1,
                dim: 8,
                levels: 2,
                range: (0.0, 1.0),
                seed: 0,
            }
            .kind_tag(),
        ];
        let mut sorted = tags.to_vec();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }

    #[test]
    fn spec_matches_manual_construction() {
        let spec = EncoderSpec::Nonlinear {
            input_dim: 2,
            dim: 64,
            seed: 42,
        };
        let manual = NonlinearEncoder::new(2, 64, 42);
        let x = [0.5f32, -0.5];
        assert_eq!(spec.build().encode(&x), manual.encode(&x));
    }
}
