//! # encoding — similarity-preserving HD encoders
//!
//! Implements the encoding stage of the RegHD pipeline (paper §2.2): mapping
//! an `n`-dimensional feature vector into a `D`-dimensional hypervector such
//! that inputs that are close in the original space stay close in HD space
//! and unrelated inputs become nearly orthogonal ("the common-sense
//! principle").
//!
//! Five encoders are provided:
//!
//! * [`NonlinearEncoder`] — RegHD's default, the paper's Eq. 1 map
//!   `H[d] = cos(⟨F, W_d⟩ + b[d]) · sin(⟨F, W_d⟩)` over a Gaussian
//!   projection (see that module's docs for the relation to the printed
//!   per-feature bipolar form, which is representationally degenerate).
//! * [`RffEncoder`] — the widely used random-Fourier-feature variant
//!   `H[d] = cos(w_d·F + b_d)`; kept for ablation against Eq. 1.
//! * [`ProjectionEncoder`] — plain signed random projection (no
//!   nonlinearity); isolates the contribution of the trigonometric
//!   nonlinearity in ablations.
//! * [`IdLevelEncoder`] — the classic ID–level HDC record encoding used by
//!   pre-RegHD classification systems; it is the substrate for the
//!   Baseline-HD comparator (paper ref. \[18\]).
//! * [`TemporalEncoder`] — permutation-binding window encoder turning any
//!   of the above into a sequence/time-series encoder.
//!
//! [`EncoderSpec`] gives every encoder a compact serialisable description
//! (used by `reghd::persist`).
//!
//! All encoders implement the object-safe [`Encoder`] trait and are fully
//! deterministic given a seed.
//!
//! ## Example
//!
//! ```
//! use encoding::{Encoder, NonlinearEncoder};
//!
//! let enc = NonlinearEncoder::new(4, 2048, 7);
//! let h = enc.encode(&[0.1, -0.4, 0.9, 0.0]);
//! assert_eq!(h.dim(), 2048);
//!
//! // Similarity preservation: a nearby input encodes to a similar
//! // hypervector, a far one to a dissimilar one.
//! let near = enc.encode(&[0.12, -0.41, 0.88, 0.01]);
//! let far = enc.encode(&[-3.0, 2.5, -1.7, 4.0]);
//! let sim_near = hdc::similarity::cosine(&h, &near);
//! let sim_far = hdc::similarity::cosine(&h, &far);
//! assert!(sim_near > sim_far);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod id_level;
pub mod nonlinear;
pub mod projection;
pub mod rff;
pub mod spec;
pub mod temporal;

pub use id_level::IdLevelEncoder;
pub use nonlinear::NonlinearEncoder;
pub use projection::ProjectionEncoder;
pub use rff::RffEncoder;
pub use spec::EncoderSpec;
pub use temporal::TemporalEncoder;

use hdc::{BinaryHv, RealHv};

/// A similarity-preserving map from feature vectors to hypervectors.
///
/// Implementations are deterministic: encoding the same input twice yields
/// exactly the same hypervector. The trait is object-safe so learners can
/// hold `Box<dyn Encoder>`.
pub trait Encoder: Send + Sync {
    /// Number of input features `n` the encoder expects.
    fn input_dim(&self) -> usize;

    /// Hypervector dimensionality `D` this encoder produces.
    fn dim(&self) -> usize;

    /// Encodes a feature vector into a real hypervector.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != self.input_dim()`.
    fn encode(&self, features: &[f32]) -> RealHv;

    /// Encodes into the binary (sign-quantised) form used by the
    /// quantized-prediction modes of §3.2. The default implementation
    /// binarises [`Encoder::encode`]; implementations may override with a
    /// cheaper direct path.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != self.input_dim()`.
    fn encode_binary(&self, features: &[f32]) -> BinaryHv {
        self.encode(features).binarize()
    }

    /// Encodes into both precisions at once — RegHD's quantized training
    /// keeps integer and binary copies of each encoded point (§3.1), and
    /// producing them together avoids a second pass.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != self.input_dim()`.
    fn encode_both(&self, features: &[f32]) -> (RealHv, BinaryHv) {
        let real = self.encode(features);
        let binary = real.binarize();
        (real, binary)
    }

    /// Encodes a batch of rows, splitting the rows across up to `threads`
    /// scoped threads ([`hdc::par::chunked_map`]).
    ///
    /// Each row goes through the exact same [`Encoder::encode`] call as the
    /// sequential path and chunk outputs are concatenated in input order, so
    /// the result is **bit-identical** to
    /// `rows.iter().map(|r| self.encode(r)).collect()` for every thread
    /// count. `threads == 0` means "use available parallelism"; `1` is the
    /// exact old sequential behavior.
    ///
    /// # Panics
    ///
    /// Panics if any row's length differs from [`Encoder::input_dim`].
    fn encode_batch(&self, rows: &[Vec<f32>], threads: usize) -> Vec<RealHv> {
        hdc::par::chunked_map(rows, hdc::par::resolve_threads(threads), |row| {
            self.encode(row)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoder_is_object_safe() {
        let enc: Box<dyn Encoder> = Box::new(NonlinearEncoder::new(3, 256, 1));
        assert_eq!(enc.input_dim(), 3);
        assert_eq!(enc.dim(), 256);
        let h = enc.encode(&[0.0, 1.0, -1.0]);
        assert_eq!(h.dim(), 256);
    }

    #[test]
    fn encode_batch_is_bit_identical_across_thread_counts() {
        let enc = NonlinearEncoder::new(3, 512, 9);
        let rows: Vec<Vec<f32>> = (0..37)
            .map(|i| vec![i as f32 * 0.1, (i as f32).sin(), -0.5 + i as f32 * 0.02])
            .collect();
        let seq: Vec<_> = rows.iter().map(|r| enc.encode(r)).collect();
        for threads in [0usize, 1, 2, 4, 8] {
            let par = enc.encode_batch(&rows, threads);
            assert_eq!(par.len(), seq.len());
            for (a, b) in par.iter().zip(&seq) {
                let ab: Vec<u32> = a.as_slice().iter().map(|v| v.to_bits()).collect();
                let bb: Vec<u32> = b.as_slice().iter().map(|v| v.to_bits()).collect();
                assert_eq!(ab, bb, "threads={threads}");
            }
        }
    }

    #[test]
    fn encode_both_agrees_with_parts() {
        let enc = NonlinearEncoder::new(2, 128, 5);
        let x = [0.3, -0.6];
        let (real, binary) = enc.encode_both(&x);
        assert_eq!(real, enc.encode(&x));
        assert_eq!(binary, enc.encode_binary(&x));
    }
}
