//! # encoding — similarity-preserving HD encoders
//!
//! Implements the encoding stage of the RegHD pipeline (paper §2.2): mapping
//! an `n`-dimensional feature vector into a `D`-dimensional hypervector such
//! that inputs that are close in the original space stay close in HD space
//! and unrelated inputs become nearly orthogonal ("the common-sense
//! principle").
//!
//! Five encoders are provided:
//!
//! * [`NonlinearEncoder`] — RegHD's default, the paper's Eq. 1 map
//!   `H[d] = cos(⟨F, W_d⟩ + b[d]) · sin(⟨F, W_d⟩)` over a Gaussian
//!   projection (see that module's docs for the relation to the printed
//!   per-feature bipolar form, which is representationally degenerate).
//! * [`RffEncoder`] — the widely used random-Fourier-feature variant
//!   `H[d] = cos(w_d·F + b_d)`; kept for ablation against Eq. 1.
//! * [`ProjectionEncoder`] — plain signed random projection (no
//!   nonlinearity); isolates the contribution of the trigonometric
//!   nonlinearity in ablations.
//! * [`IdLevelEncoder`] — the classic ID–level HDC record encoding used by
//!   pre-RegHD classification systems; it is the substrate for the
//!   Baseline-HD comparator (paper ref. \[18\]).
//! * [`TemporalEncoder`] — permutation-binding window encoder turning any
//!   of the above into a sequence/time-series encoder.
//!
//! [`EncoderSpec`] gives every encoder a compact serialisable description
//! (used by `reghd::persist`).
//!
//! All encoders implement the object-safe [`Encoder`] trait and are fully
//! deterministic given a seed.
//!
//! ## Example
//!
//! ```
//! use encoding::{Encoder, NonlinearEncoder};
//!
//! let enc = NonlinearEncoder::new(4, 2048, 7);
//! let h = enc.encode(&[0.1, -0.4, 0.9, 0.0]);
//! assert_eq!(h.dim(), 2048);
//!
//! // Similarity preservation: a nearby input encodes to a similar
//! // hypervector, a far one to a dissimilar one.
//! let near = enc.encode(&[0.12, -0.41, 0.88, 0.01]);
//! let far = enc.encode(&[-3.0, 2.5, -1.7, 4.0]);
//! let sim_near = hdc::similarity::cosine(&h, &near);
//! let sim_far = hdc::similarity::cosine(&h, &far);
//! assert!(sim_near > sim_far);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod id_level;
pub mod nonlinear;
pub mod projection;
pub mod rff;
pub mod spec;
pub mod temporal;

pub use id_level::IdLevelEncoder;
pub use nonlinear::NonlinearEncoder;
pub use projection::ProjectionEncoder;
pub use rff::RffEncoder;
pub use spec::EncoderSpec;
pub use temporal::TemporalEncoder;

use hdc::{BinaryHv, RealHv};

pub use hdc::TrigMode;

/// A similarity-preserving map from feature vectors to hypervectors.
///
/// Implementations are deterministic: encoding the same input twice yields
/// exactly the same hypervector. The trait is object-safe so learners can
/// hold `Box<dyn Encoder>`.
pub trait Encoder: Send + Sync {
    /// Number of input features `n` the encoder expects.
    fn input_dim(&self) -> usize;

    /// Hypervector dimensionality `D` this encoder produces.
    fn dim(&self) -> usize;

    /// Encodes a feature vector into a real hypervector.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != self.input_dim()`.
    fn encode(&self, features: &[f32]) -> RealHv;

    /// Encodes into the binary (sign-quantised) form used by the
    /// quantized-prediction modes of §3.2. The default implementation
    /// binarises [`Encoder::encode`]; implementations may override with a
    /// cheaper direct path.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != self.input_dim()`.
    fn encode_binary(&self, features: &[f32]) -> BinaryHv {
        self.encode(features).binarize()
    }

    /// Encodes into both precisions at once — RegHD's quantized training
    /// keeps integer and binary copies of each encoded point (§3.1), and
    /// producing them together avoids a second pass.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != self.input_dim()`.
    fn encode_both(&self, features: &[f32]) -> (RealHv, BinaryHv) {
        let real = self.encode(features);
        let binary = real.binarize();
        (real, binary)
    }

    /// Encodes a batch of rows, splitting the rows across up to `threads`
    /// scoped threads.
    ///
    /// Delegates to [`Encoder::encode_batch_into`], so encoders with a
    /// blocked-kernel override get it here too. Chunk boundaries never
    /// change per-row arithmetic, so the result is **bit-identical** to
    /// `rows.iter().map(|r| self.encode(r)).collect()` for every thread
    /// count. `threads == 0` means "use available parallelism"; `1` is the
    /// exact old sequential behavior.
    ///
    /// # Panics
    ///
    /// Panics if any row's length differs from [`Encoder::input_dim`].
    fn encode_batch(&self, rows: &[Vec<f32>], threads: usize) -> Vec<RealHv> {
        let mut out = vec![RealHv::default(); rows.len()];
        self.encode_batch_into(rows, &mut out, threads);
        out
    }

    /// Encodes a batch of rows **into pre-allocated output slots**, reusing
    /// each slot's existing buffer — the zero-allocation entry point of the
    /// serving hot path. Rows are split across up to `threads` scoped
    /// threads ([`hdc::par::chunked_zip_mut`]).
    ///
    /// The default implementation runs the scalar [`Encoder::encode`] per
    /// row; `NonlinearEncoder`, `RffEncoder`, and `ProjectionEncoder`
    /// override it with the cache-blocked kernels of [`hdc::kernels`],
    /// which are bit-identical to the scalar path by construction, so every
    /// implementation of this method yields bit-identical results at every
    /// thread count.
    ///
    /// # Panics
    ///
    /// Panics if `rows` and `out` disagree in length or any row's length
    /// differs from [`Encoder::input_dim`].
    fn encode_batch_into(&self, rows: &[Vec<f32>], out: &mut [RealHv], threads: usize) {
        let threads = hdc::par::resolve_threads(threads);
        hdc::par::chunked_zip_mut(rows, out, threads, |part, out_part| {
            for (row, slot) in part.iter().zip(out_part.iter_mut()) {
                *slot = self.encode(row);
            }
        });
    }

    /// Encodes one row through the **int8 quantised path** (§3.2): the
    /// projection matvec runs in integer arithmetic
    /// ([`hdc::quant::QuantizedWeights`]) and any trigonometric stage uses
    /// the fast polynomial forms unconditionally. Returns `false` (leaving
    /// `out` untouched) when the encoder has no quantised path — callers
    /// fall back to [`Encoder::encode`] and binarise that instead.
    ///
    /// The output approximates [`Encoder::encode`]; the bit-packed
    /// inference tier consumes only its signs plus one amplitude statistic,
    /// so implementations trade exactness for integer throughput.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != self.input_dim()` or
    /// `out.len() != self.dim()`.
    fn encode_quantized_into(&self, _features: &[f32], _out: &mut [f32]) -> bool {
        false
    }

    /// How this encoder evaluates `sin`/`cos` (see [`TrigMode`]). Encoders
    /// without a trigonometric stage always report
    /// [`TrigMode::Exact`].
    fn trig_mode(&self) -> TrigMode {
        TrigMode::Exact
    }

    /// Switches the trig evaluation mode. The knob is atomic (usable
    /// through `&self` on a shared encoder, like the thread knobs). The
    /// default implementation is a no-op for encoders without a
    /// trigonometric stage.
    fn set_trig_mode(&self, _mode: TrigMode) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoder_is_object_safe() {
        let enc: Box<dyn Encoder> = Box::new(NonlinearEncoder::new(3, 256, 1));
        assert_eq!(enc.input_dim(), 3);
        assert_eq!(enc.dim(), 256);
        let h = enc.encode(&[0.0, 1.0, -1.0]);
        assert_eq!(h.dim(), 256);
    }

    #[test]
    fn encode_batch_is_bit_identical_across_thread_counts() {
        let enc = NonlinearEncoder::new(3, 512, 9);
        let rows: Vec<Vec<f32>> = (0..37)
            .map(|i| vec![i as f32 * 0.1, (i as f32).sin(), -0.5 + i as f32 * 0.02])
            .collect();
        let seq: Vec<_> = rows.iter().map(|r| enc.encode(r)).collect();
        for threads in [0usize, 1, 2, 4, 8] {
            let par = enc.encode_batch(&rows, threads);
            assert_eq!(par.len(), seq.len());
            for (a, b) in par.iter().zip(&seq) {
                let ab: Vec<u32> = a.as_slice().iter().map(|v| v.to_bits()).collect();
                let bb: Vec<u32> = b.as_slice().iter().map(|v| v.to_bits()).collect();
                assert_eq!(ab, bb, "threads={threads}");
            }
        }
    }

    #[test]
    fn encode_both_agrees_with_parts() {
        let enc = NonlinearEncoder::new(2, 128, 5);
        let x = [0.3, -0.6];
        let (real, binary) = enc.encode_both(&x);
        assert_eq!(real, enc.encode(&x));
        assert_eq!(binary, enc.encode_binary(&x));
    }

    #[test]
    fn encode_batch_into_reuses_buffers_and_matches_encode() {
        let enc = NonlinearEncoder::new(3, 257, 21);
        let rows: Vec<Vec<f32>> = (0..9)
            .map(|i| vec![i as f32 * 0.2, -1.0 + i as f32 * 0.1, 0.5])
            .collect();
        let mut out = vec![RealHv::zeros(257); rows.len()];
        let ptrs: Vec<*const f32> = out.iter().map(|o| o.as_slice().as_ptr()).collect();
        for threads in [0usize, 1, 2, 4] {
            enc.encode_batch_into(&rows, &mut out, threads);
            for (row, got) in rows.iter().zip(&out) {
                let want = enc.encode(row);
                let gb: Vec<u32> = got.as_slice().iter().map(|v| v.to_bits()).collect();
                let wb: Vec<u32> = want.as_slice().iter().map(|v| v.to_bits()).collect();
                assert_eq!(gb, wb, "threads={threads}");
            }
        }
        // Pre-sized slots keep their allocations across calls.
        let now: Vec<*const f32> = out.iter().map(|o| o.as_slice().as_ptr()).collect();
        assert_eq!(ptrs, now, "encode_batch_into must reuse the output buffers");
    }

    #[test]
    fn trig_mode_knob_defaults_to_exact_and_is_object_safe() {
        let enc: Box<dyn Encoder> = Box::new(NonlinearEncoder::new(2, 64, 3));
        assert_eq!(enc.trig_mode(), TrigMode::Exact);
        enc.set_trig_mode(TrigMode::Fast);
        assert_eq!(enc.trig_mode(), TrigMode::Fast);
        enc.set_trig_mode(TrigMode::Exact);
        assert_eq!(enc.trig_mode(), TrigMode::Exact);
        // An encoder without a trig stage ignores the knob.
        let proj: Box<dyn Encoder> = Box::new(ProjectionEncoder::new(2, 64, 3));
        proj.set_trig_mode(TrigMode::Fast);
        assert_eq!(proj.trig_mode(), TrigMode::Exact);
    }
}
