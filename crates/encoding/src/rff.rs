//! Random-Fourier-feature encoder: `H[d] = cos(w_d · F + b_d)`.
//!
//! This is the encoder used by much of the HD-learning literature that
//! followed RegHD (and by the authors' released code for later systems). It
//! approximates a Gaussian-kernel feature map (Rahimi & Recht, 2007): with
//! `w_d ~ N(0, σ⁻²I)` and `b_d ~ U[0, 2π)`,
//! `E[cos(wᵀx+b)·cos(wᵀy+b)] = ½·exp(−‖x−y‖²/2σ²)` — an explicitly
//! similarity-preserving map. Included here to ablate against the paper's
//! Eq. 1 form ([`crate::NonlinearEncoder`]).

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use crate::Encoder;
use hdc::kernels::{fast_cos, project_blocked};
use hdc::quant::{quantize_i8, QuantizedWeights};
use hdc::rng::HdRng;
use hdc::simd::PackedProjection;
use hdc::{RealHv, TrigMode};

/// Gaussian random-projection + cosine encoder (random Fourier features).
///
/// # Examples
///
/// ```
/// use encoding::{Encoder, RffEncoder};
///
/// let enc = RffEncoder::new(4, 2048, 1.0, 11);
/// let h = enc.encode(&[0.0, 0.5, -0.5, 1.0]);
/// assert_eq!(h.dim(), 2048);
/// // Components are bounded by the cosine range.
/// assert!(h.max_abs() <= 1.0);
/// ```
#[derive(Debug)]
pub struct RffEncoder {
    /// Row-major projection matrix, `dim` rows of `input_dim` weights.
    weights: Vec<f32>,
    phases: Vec<f32>,
    input_dim: usize,
    dim: usize,
    bandwidth: f32,
    /// Trig evaluation mode ([`TrigMode`] as a byte, atomic knob).
    trig: AtomicU8,
    /// §3.2 int8 copy of the projection matrix, backing
    /// [`Encoder::encode_quantized_into`].
    quant: QuantizedWeights,
    /// Lane-major weight packing for the active SIMD level (lazy; `None`
    /// inside the lock when the active level is scalar).
    packed: OnceLock<Option<PackedProjection>>,
}

impl Clone for RffEncoder {
    fn clone(&self) -> Self {
        Self {
            weights: self.weights.clone(),
            phases: self.phases.clone(),
            input_dim: self.input_dim,
            dim: self.dim,
            bandwidth: self.bandwidth,
            trig: AtomicU8::new(self.trig.load(Ordering::Relaxed)),
            quant: self.quant.clone(),
            packed: OnceLock::new(),
        }
    }
}

impl RffEncoder {
    /// Creates an RFF encoder. `bandwidth` is the kernel length-scale σ:
    /// larger values make the encoder smoother (inputs must move further to
    /// decorrelate).
    ///
    /// # Panics
    ///
    /// Panics if `input_dim == 0`, `dim == 0`, or `bandwidth <= 0`.
    pub fn new(input_dim: usize, dim: usize, bandwidth: f32, seed: u64) -> Self {
        assert!(input_dim > 0, "input_dim must be nonzero");
        assert!(dim > 0, "dim must be nonzero");
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        let mut rng = HdRng::seed_from(seed);
        let weights: Vec<f32> = (0..dim * input_dim)
            .map(|_| (rng.next_gaussian() as f32) / bandwidth)
            .collect();
        let phases = (0..dim)
            .map(|_| (rng.next_f64() * std::f64::consts::TAU) as f32)
            .collect();
        let quant = QuantizedWeights::from_f32(&weights, input_dim, dim);
        Self {
            weights,
            phases,
            input_dim,
            dim,
            bandwidth,
            trig: AtomicU8::new(TrigMode::Exact.as_u8()),
            quant,
            packed: OnceLock::new(),
        }
    }

    /// The kernel length-scale σ this encoder was built with.
    pub fn bandwidth(&self) -> f32 {
        self.bandwidth
    }

    /// The SIMD weight packing for the active dispatch level, or `None` when
    /// it cannot be used (scalar level, or the level changed after the
    /// packing was built).
    fn packed_for_active(&self) -> Option<&PackedProjection> {
        self.packed
            .get_or_init(|| PackedProjection::for_active(&self.weights, self.input_dim, self.dim))
            .as_ref()
            .filter(|p| p.level() == hdc::simd::active())
    }
}

impl Encoder for RffEncoder {
    fn input_dim(&self) -> usize {
        self.input_dim
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn encode(&self, features: &[f32]) -> RealHv {
        assert_eq!(
            features.len(),
            self.input_dim,
            "encode: expected {} features, got {}",
            self.input_dim,
            features.len()
        );
        let fast = self.trig_mode() == TrigMode::Fast;
        let mut out = Vec::with_capacity(self.dim);
        for d in 0..self.dim {
            let row = &self.weights[d * self.input_dim..(d + 1) * self.input_dim];
            let proj: f32 = row.iter().zip(features).map(|(&w, &f)| w * f).sum();
            out.push(if fast {
                fast_cos(proj + self.phases[d])
            } else {
                (proj + self.phases[d]).cos()
            });
        }
        RealHv::from_vec(out)
    }

    fn encode_batch_into(&self, rows: &[Vec<f32>], out: &mut [RealHv], threads: usize) {
        let threads = hdc::par::resolve_threads(threads);
        let mode = self.trig_mode();
        hdc::par::chunked_zip_mut(rows, out, threads, |part, out_part| {
            let row_refs: Vec<&[f32]> = part.iter().map(Vec::as_slice).collect();
            match self.packed_for_active() {
                Some(packed) => packed.project_into(&row_refs, out_part),
                None => {
                    project_blocked(&self.weights, self.input_dim, self.dim, &row_refs, out_part)
                }
            }
            // Same post-op expression as the scalar `encode` loop, so the
            // blocked path stays bit-identical to it (the fast arm's SIMD
            // lanes are bit-identical to scalar `fast_cos` by construction).
            for hv in out_part.iter_mut() {
                match mode {
                    TrigMode::Exact => {
                        for (v, &b) in hv.as_mut_slice().iter_mut().zip(&self.phases) {
                            *v = (*v + b).cos();
                        }
                    }
                    TrigMode::Fast => {
                        hdc::simd::cos_phase_post_fast(hv.as_mut_slice(), &self.phases);
                    }
                }
            }
        });
    }

    fn encode_quantized_into(&self, features: &[f32], out: &mut [f32]) -> bool {
        assert_eq!(
            features.len(),
            self.input_dim,
            "encode: expected {} features, got {}",
            self.input_dim,
            features.len()
        );
        assert_eq!(out.len(), self.dim, "output width must match dim");
        let mut row_q = Vec::with_capacity(self.input_dim);
        let row_scale = quantize_i8(features, &mut row_q);
        self.quant.project_row_into(&row_q, row_scale, out);
        // Always the fast polynomial cos — on the quantised tier's all-f32
        // range reduction, which is approximate by design and independent
        // of the encoder's TrigMode knob.
        hdc::simd::cos_phase_post_quant(out, &self.phases);
        true
    }

    fn trig_mode(&self) -> TrigMode {
        TrigMode::from_u8(self.trig.load(Ordering::Relaxed))
    }

    fn set_trig_mode(&self, mode: TrigMode) {
        self.trig.store(mode.as_u8(), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::similarity::cosine;

    #[test]
    fn deterministic() {
        let a = RffEncoder::new(3, 256, 1.0, 5);
        let b = RffEncoder::new(3, 256, 1.0, 5);
        let x = [0.2, -0.4, 0.9];
        assert_eq!(a.encode(&x), b.encode(&x));
    }

    #[test]
    fn components_bounded_by_one() {
        let enc = RffEncoder::new(4, 512, 1.0, 7);
        let h = enc.encode(&[3.0, -8.0, 0.1, 100.0]);
        assert!(h.max_abs() <= 1.0);
    }

    #[test]
    fn kernel_approximation() {
        // E[h(x)·h(y)]/D ≈ ½·exp(−‖x−y‖²/2σ²): check at a couple of
        // distances with a wide encoder.
        let sigma = 1.5f32;
        let enc = RffEncoder::new(2, 20_000, sigma, 13);
        let x = [0.0f32, 0.0];
        for &d in &[0.5f32, 1.5] {
            let y = [d, 0.0];
            let hx = enc.encode(&x);
            let hy = enc.encode(&y);
            let emp = hx.dot(&hy) / 20_000.0;
            let theory = 0.5 * (-(d * d) / (2.0 * sigma * sigma)).exp();
            assert!(
                (emp - theory).abs() < 0.03,
                "d={d}: empirical {emp} vs theory {theory}"
            );
        }
    }

    #[test]
    fn similarity_decays_with_distance() {
        let enc = RffEncoder::new(5, 4096, 1.0, 3);
        let x = [0.1f32, 0.2, 0.3, 0.4, 0.5];
        let h = enc.encode(&x);
        let mut prev = 1.0f32;
        for eps in [0.05f32, 0.3, 1.0, 3.0] {
            let y: Vec<f32> = x.iter().map(|&v| v + eps).collect();
            let s = cosine(&h, &enc.encode(&y));
            assert!(s < prev + 0.05, "eps={eps}: s={s} prev={prev}");
            prev = s;
        }
    }

    #[test]
    fn bandwidth_controls_smoothness() {
        let x = [0.0f32, 0.0];
        let y = [1.0f32, 1.0];
        let narrow = RffEncoder::new(2, 4096, 0.5, 21);
        let wide = RffEncoder::new(2, 4096, 5.0, 21);
        let s_narrow = cosine(&narrow.encode(&x), &narrow.encode(&y));
        let s_wide = cosine(&wide.encode(&x), &wide.encode(&y));
        assert!(
            s_wide > s_narrow,
            "wider bandwidth should preserve more similarity: {s_wide} vs {s_narrow}"
        );
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        RffEncoder::new(2, 16, 0.0, 0);
    }

    #[test]
    #[should_panic(expected = "expected 2 features")]
    fn wrong_input_len_panics() {
        RffEncoder::new(2, 16, 1.0, 0).encode(&[1.0]);
    }

    #[test]
    fn accessor() {
        assert_eq!(RffEncoder::new(2, 16, 2.5, 0).bandwidth(), 2.5);
    }

    #[test]
    fn batch_kernel_is_bit_identical_to_scalar_in_both_trig_modes() {
        use hdc::TrigMode;
        let enc = RffEncoder::new(3, 261, 1.3, 41);
        let rows: Vec<Vec<f32>> = (0..6)
            .map(|i| vec![i as f32 * 0.4 - 1.0, (i as f32).sin(), -0.6])
            .collect();
        for mode in [TrigMode::Exact, TrigMode::Fast] {
            enc.set_trig_mode(mode);
            let mut out = vec![RealHv::default(); rows.len()];
            enc.encode_batch_into(&rows, &mut out, 1);
            for (row, got) in rows.iter().zip(&out) {
                let want = enc.encode(row);
                let gb: Vec<u32> = got.as_slice().iter().map(|v| v.to_bits()).collect();
                let wb: Vec<u32> = want.as_slice().iter().map(|v| v.to_bits()).collect();
                assert_eq!(gb, wb, "{mode:?}");
            }
        }
        enc.set_trig_mode(TrigMode::Exact);
    }

    #[test]
    fn fast_trig_mode_stays_close_to_exact() {
        use hdc::TrigMode;
        let enc = RffEncoder::new(3, 1024, 1.0, 43);
        let x = [0.7, -1.1, 0.4];
        let exact = enc.encode(&x);
        enc.set_trig_mode(TrigMode::Fast);
        let fast = enc.encode(&x);
        enc.set_trig_mode(TrigMode::Exact);
        for (e, f) in exact.as_slice().iter().zip(fast.as_slice()) {
            assert!(
                (e - f).abs() <= hdc::kernels::FAST_TRIG_MAX_ABS_ERROR,
                "exact={e} fast={f}"
            );
        }
    }
}
