//! RegHD's similarity-preserving nonlinear encoder (paper §2.2, Eq. 1).
//!
//! For an input `F = {f_1, …, f_n}` the encoded hypervector is
//!
//! ```text
//! H[d] = cos(⟨F, W_d⟩ + b[d]) · sin(⟨F, W_d⟩)
//! ```
//!
//! where `W_d` is a random Gaussian projection row and `b` a random phase
//! hypervector drawn uniformly from `[0, 2π)`.
//!
//! ### Relation to the printed Eq. 1
//!
//! The paper prints the encoder as a per-feature sum
//! `Σ_k cos(f_k·B_k[d] + b[d])·sin(f_k·B_k[d])` over *bipolar* base
//! hypervectors `B_k ∈ {−1,+1}^D`. Taken literally, that form is
//! representationally degenerate: because `B_k[d] = ±1`, every component
//! sees the same unit frequency, so the span of the map collapses to
//! `{sin(f_k), cos(f_k)}` per feature — it cannot fit even a linear target
//! accurately. The authors' released implementations of this encoder
//! (e.g. the RegHD model in `torchhd`) use the Gaussian-projection form
//! above, which is what we implement; the literal printed form is available
//! in the ablation suite through [`crate::ProjectionEncoder`] composition
//! and is discussed in `DESIGN.md`.
//!
//! The product expands to `½·sin(2p + b) − ½·sin(b)` with `p = ⟨F, W_d⟩`:
//! a phase-shifted random Fourier feature at twice the projection frequency
//! plus an input-independent bias. The RFF part makes the map
//! similarity-preserving (§2.2's common-sense principle); the bias is an
//! artefact that downstream learners remove by mean-centring (see
//! `reghd::RegHdConfig::center_encodings`).

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use crate::Encoder;
use hdc::kernels::{fast_cos, fast_sin, project_blocked};
use hdc::quant::{quantize_i8, QuantizedWeights};
use hdc::rng::HdRng;
use hdc::simd::PackedProjection;
use hdc::{BinaryHv, RealHv, TrigMode};

/// RegHD's default encoder: Gaussian projection through the
/// `cos(p + b)·sin(p)` nonlinearity.
///
/// Inputs are assumed standardised (zero mean, unit variance per feature);
/// the projection variance is `1/n` so the projected scalar `p` has unit
/// variance regardless of the feature count.
///
/// # Examples
///
/// ```
/// use encoding::{Encoder, NonlinearEncoder};
///
/// let enc = NonlinearEncoder::new(3, 1024, 42);
/// let a = enc.encode(&[0.5, 0.2, -0.1]);
/// let b = enc.encode(&[0.5, 0.2, -0.1]);
/// assert_eq!(a, b); // deterministic
/// ```
#[derive(Debug)]
pub struct NonlinearEncoder {
    /// Row-major Gaussian projection matrix: `dim` rows × `input_dim`.
    weights: Vec<f32>,
    /// `b`: random phase offsets, uniform in `[0, 2π)`.
    phases: Vec<f32>,
    input_dim: usize,
    dim: usize,
    /// Trig evaluation mode ([`TrigMode`] as a byte); atomic so the knob is
    /// flippable through `&self` on a shared encoder.
    trig: AtomicU8,
    /// §3.2 int8 copy of the projection matrix (one scale per output dim),
    /// backing [`Encoder::encode_quantized_into`].
    quant: QuantizedWeights,
    /// `½·sin(b[d])` per dimension — the input-independent bias term of the
    /// product-to-sum expansion (module docs), precomputed so the quantised
    /// tier evaluates **one** sine per component instead of a sin·cos pair.
    quant_half_sin: Vec<f32>,
    /// Lane-major weight packing for the active SIMD level, built at first
    /// batch encode so the per-call transpose cost disappears from the
    /// serving path. `None` inside the lock when the active level is scalar.
    packed: OnceLock<Option<PackedProjection>>,
}

impl Clone for NonlinearEncoder {
    fn clone(&self) -> Self {
        Self {
            weights: self.weights.clone(),
            phases: self.phases.clone(),
            input_dim: self.input_dim,
            dim: self.dim,
            trig: AtomicU8::new(self.trig.load(Ordering::Relaxed)),
            quant: self.quant.clone(),
            quant_half_sin: self.quant_half_sin.clone(),
            // Rebuilt lazily: the clone may first encode under a different
            // dispatch level than the original.
            packed: OnceLock::new(),
        }
    }
}

impl NonlinearEncoder {
    /// Creates an encoder for `input_dim` features producing `dim`-wide
    /// hypervectors, with all randomness derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `input_dim == 0` or `dim == 0`.
    pub fn new(input_dim: usize, dim: usize, seed: u64) -> Self {
        assert!(input_dim > 0, "input_dim must be nonzero");
        assert!(dim > 0, "dim must be nonzero");
        let mut rng = HdRng::seed_from(seed);
        let scale = 1.0 / (input_dim as f32).sqrt();
        let weights: Vec<f32> = (0..dim * input_dim)
            .map(|_| scale * rng.next_gaussian() as f32)
            .collect();
        let phases: Vec<f32> = (0..dim)
            .map(|_| (rng.next_f64() * std::f64::consts::TAU) as f32)
            .collect();
        let quant = QuantizedWeights::from_f32(&weights, input_dim, dim);
        let quant_half_sin = phases
            .iter()
            .map(|&b| 0.5 * hdc::kernels::fast_sin_f32(b))
            .collect();
        Self {
            weights,
            phases,
            input_dim,
            dim,
            trig: AtomicU8::new(TrigMode::Exact.as_u8()),
            quant,
            quant_half_sin,
            packed: OnceLock::new(),
        }
    }

    /// The SIMD weight packing for the active dispatch level, or `None` when
    /// it cannot be used (scalar level, or the level changed after the
    /// packing was built).
    fn packed_for_active(&self) -> Option<&PackedProjection> {
        self.packed
            .get_or_init(|| PackedProjection::for_active(&self.weights, self.input_dim, self.dim))
            .as_ref()
            .filter(|p| p.level() == hdc::simd::active())
    }

    /// The random phase hypervector `b`.
    pub fn phases(&self) -> &[f32] {
        &self.phases
    }

    /// The projection row `W_d` for output component `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d >= dim()`.
    pub fn projection_row(&self, d: usize) -> &[f32] {
        assert!(
            d < self.dim,
            "component index {d} out of range {}",
            self.dim
        );
        &self.weights[d * self.input_dim..(d + 1) * self.input_dim]
    }
}

impl Encoder for NonlinearEncoder {
    fn input_dim(&self) -> usize {
        self.input_dim
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn encode(&self, features: &[f32]) -> RealHv {
        assert_eq!(
            features.len(),
            self.input_dim,
            "encode: expected {} features, got {}",
            self.input_dim,
            features.len()
        );
        let fast = self.trig_mode() == TrigMode::Fast;
        let mut out = Vec::with_capacity(self.dim);
        for d in 0..self.dim {
            let row = &self.weights[d * self.input_dim..(d + 1) * self.input_dim];
            let p: f32 = row.iter().zip(features).map(|(&w, &f)| w * f).sum();
            out.push(if fast {
                fast_cos(p + self.phases[d]) * fast_sin(p)
            } else {
                (p + self.phases[d]).cos() * p.sin()
            });
        }
        RealHv::from_vec(out)
    }

    fn encode_both(&self, features: &[f32]) -> (RealHv, BinaryHv) {
        // Fused single pass: the sign bit of each component is packed while
        // the component is still in a register, instead of re-walking the
        // real hypervector in `binarize()`. Identical results to
        // `(self.encode(x), self.encode(x).binarize())` by construction —
        // the bit test is the same `v > 0.0` that `binarize` uses.
        assert_eq!(
            features.len(),
            self.input_dim,
            "encode: expected {} features, got {}",
            self.input_dim,
            features.len()
        );
        let fast = self.trig_mode() == TrigMode::Fast;
        let mut out = Vec::with_capacity(self.dim);
        let mut words = vec![0u64; self.dim.div_ceil(64)];
        for d in 0..self.dim {
            let row = &self.weights[d * self.input_dim..(d + 1) * self.input_dim];
            let p: f32 = row.iter().zip(features).map(|(&w, &f)| w * f).sum();
            let v = if fast {
                fast_cos(p + self.phases[d]) * fast_sin(p)
            } else {
                (p + self.phases[d]).cos() * p.sin()
            };
            if v > 0.0 {
                words[d / 64] |= 1u64 << (d % 64);
            }
            out.push(v);
        }
        (RealHv::from_vec(out), BinaryHv::from_words(self.dim, words))
    }

    fn encode_batch_into(&self, rows: &[Vec<f32>], out: &mut [RealHv], threads: usize) {
        let threads = hdc::par::resolve_threads(threads);
        let mode = self.trig_mode();
        hdc::par::chunked_zip_mut(rows, out, threads, |part, out_part| {
            let row_refs: Vec<&[f32]> = part.iter().map(Vec::as_slice).collect();
            // The pre-packed SIMD layout skips the per-call weight
            // transpose; on level mismatch (or scalar dispatch)
            // `project_blocked` runs the same matvec bit-identically.
            match self.packed_for_active() {
                Some(packed) => packed.project_into(&row_refs, out_part),
                None => {
                    project_blocked(&self.weights, self.input_dim, self.dim, &row_refs, out_part)
                }
            }
            // Trig post-op in place over the projected values; the exact arm
            // is the same expression as the scalar `encode` loop, so the
            // batch path stays bit-identical to it. The fast arm dispatches
            // to the SIMD lanes, which are bit-identical to the scalar
            // `fast_cos`/`fast_sin` by construction.
            for hv in out_part.iter_mut() {
                match mode {
                    TrigMode::Exact => {
                        for (v, &b) in hv.as_mut_slice().iter_mut().zip(&self.phases) {
                            let p = *v;
                            *v = (p + b).cos() * p.sin();
                        }
                    }
                    TrigMode::Fast => {
                        hdc::simd::nonlinear_post_fast(hv.as_mut_slice(), &self.phases);
                    }
                }
            }
        });
    }

    fn encode_quantized_into(&self, features: &[f32], out: &mut [f32]) -> bool {
        assert_eq!(
            features.len(),
            self.input_dim,
            "encode: expected {} features, got {}",
            self.input_dim,
            features.len()
        );
        assert_eq!(out.len(), self.dim, "output width must match dim");
        let mut row_q = Vec::with_capacity(self.input_dim);
        let row_scale = quantize_i8(features, &mut row_q);
        self.quant.project_row_into(&row_q, row_scale, out);
        // The quantised tier is approximate by design, so it always takes
        // the fast polynomial trig regardless of the encoder's TrigMode —
        // the knob continues to govern only the full-precision paths. The
        // product-to-sum form (module docs) plus the precomputed bias table
        // costs one all-f32 sine per component instead of a sin·cos pair.
        hdc::simd::nonlinear_post_quant(out, &self.phases, &self.quant_half_sin);
        true
    }

    fn trig_mode(&self) -> TrigMode {
        TrigMode::from_u8(self.trig.load(Ordering::Relaxed))
    }

    fn set_trig_mode(&self, mode: TrigMode) {
        self.trig.store(mode.as_u8(), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::similarity::cosine;

    #[test]
    fn deterministic_given_seed() {
        let a = NonlinearEncoder::new(4, 512, 9);
        let b = NonlinearEncoder::new(4, 512, 9);
        let x = [0.1, 0.7, -0.3, 0.0];
        assert_eq!(a.encode(&x), b.encode(&x));
    }

    #[test]
    fn different_seeds_differ() {
        let a = NonlinearEncoder::new(4, 512, 1);
        let b = NonlinearEncoder::new(4, 512, 2);
        let x = [0.1, 0.7, -0.3, 0.0];
        assert_ne!(a.encode(&x), b.encode(&x));
    }

    #[test]
    fn similarity_preservation() {
        // The common-sense principle of §2.2: closer inputs → more similar
        // hypervectors, monotone in input distance.
        let enc = NonlinearEncoder::new(6, 4096, 3);
        let x0 = [0.2, -0.1, 0.5, 0.8, -0.6, 0.3];
        let h0 = enc.encode(&x0);
        let mut prev_sim = 1.0f32;
        for eps in [0.01f32, 0.1, 0.5, 2.0] {
            let xe: Vec<f32> = x0.iter().map(|&v| v + eps).collect();
            let sim = cosine(&h0, &enc.encode(&xe));
            assert!(
                sim < prev_sim + 0.02,
                "similarity should decay with distance: eps={eps} sim={sim} prev={prev_sim}"
            );
            prev_sim = sim;
        }
        // Tiny perturbation stays very similar.
        let near: Vec<f32> = x0.iter().map(|&v| v + 0.01).collect();
        assert!(cosine(&h0, &enc.encode(&near)) > 0.95);
    }

    #[test]
    fn distant_inputs_decorrelate_relative_to_near() {
        // The product expands to ½·sin(2p+b) − ½·sin(b): the second term is
        // a constant per-component bias shared by every encoding, so two
        // unrelated inputs retain a baseline similarity rather than 0. What
        // matters for learning is the *relative* decay, asserted here.
        let enc = NonlinearEncoder::new(8, 4096, 11);
        let mut rng = HdRng::seed_from(99);
        let a: Vec<f32> = (0..8).map(|_| rng.next_gaussian() as f32 * 3.0).collect();
        let b: Vec<f32> = (0..8).map(|_| rng.next_gaussian() as f32 * 3.0).collect();
        let near: Vec<f32> = a.iter().map(|&v| v + 0.02).collect();
        let ha = enc.encode(&a);
        let sim_far = cosine(&ha, &enc.encode(&b));
        let sim_near = cosine(&ha, &enc.encode(&near));
        assert!(sim_far < 0.9, "sim_far = {sim_far}");
        assert!(sim_near > sim_far + 0.05, "near={sim_near} far={sim_far}");
    }

    #[test]
    fn zero_input_encodes_to_zero() {
        // With p = 0: sin(0) = 0, so every component vanishes — a
        // structural property of the cos·sin form.
        let enc = NonlinearEncoder::new(3, 256, 4);
        let h = enc.encode(&[0.0, 0.0, 0.0]);
        assert!(h.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn output_components_bounded_by_one() {
        let enc = NonlinearEncoder::new(5, 512, 8);
        let h = enc.encode(&[10.0, -20.0, 3.0, 0.5, 100.0]);
        assert!(h.max_abs() <= 1.0 + 1e-6);
    }

    #[test]
    #[should_panic(expected = "expected 3 features")]
    fn wrong_feature_count_panics() {
        NonlinearEncoder::new(3, 64, 0).encode(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "input_dim must be nonzero")]
    fn zero_input_dim_panics() {
        NonlinearEncoder::new(0, 64, 0);
    }

    #[test]
    #[should_panic(expected = "dim must be nonzero")]
    fn zero_dim_panics() {
        NonlinearEncoder::new(3, 0, 0);
    }

    #[test]
    fn accessors_expose_structure() {
        let enc = NonlinearEncoder::new(3, 128, 0);
        assert_eq!(enc.projection_row(0).len(), 3);
        assert_eq!(enc.phases().len(), 128);
        assert!(enc
            .phases()
            .iter()
            .all(|&p| (0.0..std::f32::consts::TAU + 1e-4).contains(&p)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn projection_row_out_of_range_panics() {
        NonlinearEncoder::new(3, 16, 0).projection_row(16);
    }

    #[test]
    fn matches_reference_formula() {
        // Independent scalar implementation of the encoder map.
        let enc = NonlinearEncoder::new(2, 16, 123);
        let x = [0.4f32, -0.9];
        let h = enc.encode(&x);
        for d in 0..16 {
            let row = enc.projection_row(d);
            let p = row[0] * x[0] + row[1] * x[1];
            let expect = (p + enc.phases()[d]).cos() * p.sin();
            assert!((h.as_slice()[d] - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn projection_variance_is_feature_count_invariant() {
        // The 1/sqrt(n) weight scale keeps ⟨F, W_d⟩ at unit variance for
        // standardised inputs regardless of n.
        for n in [2usize, 8, 32] {
            let enc = NonlinearEncoder::new(n, 4096, 7);
            let mut rng = HdRng::seed_from(n as u64);
            let x: Vec<f32> = (0..n).map(|_| rng.next_gaussian() as f32).collect();
            let var: f64 = (0..4096)
                .map(|d| {
                    let p: f32 = enc
                        .projection_row(d)
                        .iter()
                        .zip(&x)
                        .map(|(&w, &f)| w * f)
                        .sum();
                    (p as f64) * (p as f64)
                })
                .sum::<f64>()
                / 4096.0;
            assert!(
                (0.2..5.0).contains(&var),
                "n={n}: projected variance {var} far from 1"
            );
        }
    }

    #[test]
    fn binary_encoding_is_sign_of_real() {
        let enc = NonlinearEncoder::new(4, 256, 17);
        let x = [0.3, 1.0, -0.7, 0.2];
        let real = enc.encode(&x);
        let bin = enc.encode_binary(&x);
        for d in 0..256 {
            assert_eq!(bin.get(d), real.as_slice()[d] > 0.0);
        }
    }

    #[test]
    fn fused_encode_both_matches_separate_passes() {
        let enc = NonlinearEncoder::new(5, 321, 29);
        let x = [0.4, -1.2, 0.0, 2.5, -0.3];
        for mode in [TrigMode::Exact, TrigMode::Fast] {
            enc.set_trig_mode(mode);
            let (real, binary) = enc.encode_both(&x);
            assert_eq!(real, enc.encode(&x), "{mode:?}");
            assert_eq!(binary, enc.encode(&x).binarize(), "{mode:?}");
        }
        enc.set_trig_mode(TrigMode::Exact);
    }

    #[test]
    fn batch_kernel_is_bit_identical_to_scalar_in_both_trig_modes() {
        let enc = NonlinearEncoder::new(3, 259, 31);
        let rows: Vec<Vec<f32>> = (0..7)
            .map(|i| vec![i as f32 * 0.3 - 1.0, (i as f32).cos(), 0.8])
            .collect();
        for mode in [TrigMode::Exact, TrigMode::Fast] {
            enc.set_trig_mode(mode);
            let mut out = vec![RealHv::default(); rows.len()];
            enc.encode_batch_into(&rows, &mut out, 1);
            for (row, got) in rows.iter().zip(&out) {
                let want = enc.encode(row);
                let gb: Vec<u32> = got.as_slice().iter().map(|v| v.to_bits()).collect();
                let wb: Vec<u32> = want.as_slice().iter().map(|v| v.to_bits()).collect();
                assert_eq!(gb, wb, "{mode:?}");
            }
        }
        enc.set_trig_mode(TrigMode::Exact);
    }

    #[test]
    fn fast_trig_mode_stays_close_to_exact() {
        let enc = NonlinearEncoder::new(4, 1024, 37);
        let x = [1.3, -0.8, 2.2, 0.1];
        let exact = enc.encode(&x);
        enc.set_trig_mode(TrigMode::Fast);
        let fast = enc.encode(&x);
        enc.set_trig_mode(TrigMode::Exact);
        // Product of two approximations, each within the documented bound
        // and magnitude ≤ 1: |ab − a'b'| ≤ |a−a'| + |b−b'| + ε².
        let tol = 2.5 * hdc::kernels::FAST_TRIG_MAX_ABS_ERROR;
        for (e, f) in exact.as_slice().iter().zip(fast.as_slice()) {
            assert!((e - f).abs() <= tol, "exact={e} fast={f}");
        }
    }

    #[test]
    fn clone_carries_the_trig_mode() {
        let enc = NonlinearEncoder::new(2, 64, 1);
        enc.set_trig_mode(TrigMode::Fast);
        let cloned = enc.clone();
        assert_eq!(cloned.trig_mode(), TrigMode::Fast);
        let x = [0.2, -0.4];
        assert_eq!(cloned.encode(&x), enc.encode(&x));
    }
}
