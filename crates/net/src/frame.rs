//! RGNP v1 — the length-prefixed binary wire format.
//!
//! Every frame, request or reply, is:
//!
//! ```text
//! u32 LE  len      — number of bytes after this field (kind + id + payload)
//! u8      kind     — request: opcode; reply: status code
//! u64 LE  req_id   — client-chosen, echoed verbatim in the reply
//! [u8]    payload  — opcode/status-specific, len - 9 bytes
//! ```
//!
//! Requests on one connection may be pipelined arbitrarily deep, and
//! replies may come back in any order — the `req_id` is the correlation
//! key. See `docs/PROTOCOL.md` for the full specification.

/// Request opcodes.
pub mod opcode {
    /// One row: `u16 name_len | name | u32 n | n × f32` → f32 reply.
    pub const PREDICT: u8 = 0x01;
    /// Row block: `u16 name_len | name | u32 rows | u32 cols | rows×cols × f32`.
    pub const PREDICT_BATCH: u8 = 0x02;
    /// Server statistics; text reply identical to the line protocol.
    pub const STATS: u8 = 0x03;
    /// Model inventory; text reply identical to the line protocol.
    pub const LIST: u8 = 0x04;
    /// Streaming-trainer status block.
    pub const TRAIN_STATUS: u8 = 0x05;
    /// Liveness probe; empty OK reply.
    pub const PING: u8 = 0x06;
}

/// Reply status codes. Ordered by severity: a batch reply's frame status
/// is the numeric maximum of its per-row statuses.
pub mod status {
    /// Full-precision answer.
    pub const OK: u8 = 0x00;
    /// Answered on the §3.2 bit-packed binary tier — either because the
    /// client requested it ([`super::PredictionTier::Binary`]) or because
    /// the server demoted the request (timeout, shed, expiry, dead worker,
    /// corrupt-flagged model).
    pub const DEGRADED: u8 = 0x01;
    /// Admission control refused the request; back off and retry.
    pub const BUSY: u8 = 0x02;
    /// Server is shutting down; the row was never dispatched.
    pub const DRAINING: u8 = 0x03;
    /// Request failed; payload is a UTF-8 message.
    pub const ERR: u8 = 0x04;
}

/// Which prediction path a `PREDICT`/`PREDICT_BATCH` request asks for,
/// carried as an **optional trailing byte** on the request payload (absent
/// = `Full`, so v1 clients are unchanged on the wire).
///
/// `Binary` selects the bit-packed popcount tier (§3.2 binary–binary):
/// int8 encode, Hamming similarity, popcount scores. Replies answered on
/// the binary tier carry [`status::DEGRADED`] whether the tier was
/// requested or the server demoted the request under overload — the status
/// byte tells the client which precision actually answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PredictionTier {
    /// Full-precision f32 path (the default; no wire byte).
    #[default]
    Full,
    /// Bit-packed popcount tier (wire byte `0x01`).
    Binary,
}

impl PredictionTier {
    /// The wire byte appended to request payloads.
    pub fn wire_byte(self) -> u8 {
        match self {
            PredictionTier::Full => 0x00,
            PredictionTier::Binary => 0x01,
        }
    }

    /// Parses a wire byte.
    ///
    /// # Errors
    ///
    /// A static description for unknown tier bytes.
    pub fn from_wire_byte(b: u8) -> Result<Self, &'static str> {
        match b {
            0x00 => Ok(PredictionTier::Full),
            0x01 => Ok(PredictionTier::Binary),
            _ => Err("unknown prediction tier"),
        }
    }

    /// Short label used in reports and result JSON.
    pub fn label(self) -> &'static str {
        match self {
            PredictionTier::Full => "full",
            PredictionTier::Binary => "binary",
        }
    }
}

/// Frame header bytes after the length field: kind (1) + req_id (8).
pub const HEADER_AFTER_LEN: usize = 9;

/// Default cap on `len` — frames above it are a protocol violation and
/// close the connection.
pub const DEFAULT_MAX_FRAME: u32 = 1 << 20;

/// One decoded frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Opcode (requests) or status code (replies).
    pub kind: u8,
    /// Correlation id, echoed verbatim.
    pub req_id: u64,
    /// Opcode/status-specific bytes.
    pub payload: Vec<u8>,
}

/// Outcome of one [`FrameBuf::next_frame`] step.
#[derive(Debug)]
pub enum Step {
    /// Not enough buffered bytes for a complete frame yet.
    Incomplete,
    /// One complete frame, consumed from the buffer.
    Ready(Frame),
    /// The announced length violates the protocol (`len < 9` or
    /// `len > max`). Unrecoverable: the stream cannot be resynchronised.
    Violation(&'static str),
}

/// An incremental frame decoder over a growable byte buffer.
///
/// Bytes arrive in arbitrary fragments (`extend`); complete frames are
/// taken off the front (`next_frame`). Consumed bytes are reclaimed lazily
/// so steady-state pipelined traffic does not shift the buffer per frame.
#[derive(Debug, Default)]
pub struct FrameBuf {
    data: Vec<u8>,
    start: usize,
}

impl FrameBuf {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends newly received bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.compact();
        self.data.extend_from_slice(bytes);
    }

    /// Number of buffered, not-yet-consumed bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// Whether no unconsumed bytes are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn compact(&mut self) {
        // Reclaim consumed prefix once it dominates the buffer.
        if self.start > 4096 && self.start * 2 >= self.data.len() {
            self.data.drain(..self.start);
            self.start = 0;
        }
        if self.start == self.data.len() {
            self.data.clear();
            self.start = 0;
        }
    }

    /// Attempts to decode the next frame, honouring `max_frame`.
    pub fn next_frame(&mut self, max_frame: u32) -> Step {
        let avail = &self.data[self.start..];
        if avail.len() < 4 {
            return Step::Incomplete;
        }
        let len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]);
        if (len as usize) < HEADER_AFTER_LEN {
            return Step::Violation("frame length below header size");
        }
        if len > max_frame {
            return Step::Violation("frame exceeds maximum size");
        }
        let total = 4 + len as usize;
        if avail.len() < total {
            return Step::Incomplete;
        }
        let kind = avail[4];
        let req_id = u64::from_le_bytes(avail[5..13].try_into().expect("8 header bytes"));
        let payload = avail[13..total].to_vec();
        self.start += total;
        self.compact();
        Step::Ready(Frame {
            kind,
            req_id,
            payload,
        })
    }
}

/// Appends one frame to `out`.
pub fn encode(out: &mut Vec<u8>, kind: u8, req_id: u64, payload: &[u8]) {
    let len = (HEADER_AFTER_LEN + payload.len()) as u32;
    out.extend_from_slice(&len.to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&req_id.to_le_bytes());
    out.extend_from_slice(payload);
}

/// Appends a `predict` request frame (full-precision tier; the v1 wire
/// form, no tier byte).
pub fn encode_predict(out: &mut Vec<u8>, req_id: u64, model: &str, row: &[f32]) {
    encode_predict_tier(out, req_id, model, row, PredictionTier::Full);
}

/// Appends a `predict` request frame with an explicit tier. `Full` emits
/// the v1 form (no trailing byte); `Binary` appends the tier byte.
pub fn encode_predict_tier(
    out: &mut Vec<u8>,
    req_id: u64,
    model: &str,
    row: &[f32],
    tier: PredictionTier,
) {
    let mut p = Vec::with_capacity(2 + model.len() + 4 + row.len() * 4 + 1);
    p.extend_from_slice(&(model.len() as u16).to_le_bytes());
    p.extend_from_slice(model.as_bytes());
    p.extend_from_slice(&(row.len() as u32).to_le_bytes());
    for v in row {
        p.extend_from_slice(&v.to_le_bytes());
    }
    if tier != PredictionTier::Full {
        p.push(tier.wire_byte());
    }
    encode(out, opcode::PREDICT, req_id, &p);
}

/// Appends a `predict-batch` request frame (full-precision tier). Every
/// row must have `cols` features; rows beyond `u32::MAX` are
/// unrepresentable.
pub fn encode_predict_batch(out: &mut Vec<u8>, req_id: u64, model: &str, rows: &[Vec<f32>]) {
    encode_predict_batch_tier(out, req_id, model, rows, PredictionTier::Full);
}

/// Appends a `predict-batch` request frame with an explicit tier (see
/// [`encode_predict_tier`]).
pub fn encode_predict_batch_tier(
    out: &mut Vec<u8>,
    req_id: u64,
    model: &str,
    rows: &[Vec<f32>],
    tier: PredictionTier,
) {
    let cols = rows.first().map_or(0, |r| r.len());
    let mut p = Vec::with_capacity(2 + model.len() + 8 + rows.len() * cols * 4 + 1);
    p.extend_from_slice(&(model.len() as u16).to_le_bytes());
    p.extend_from_slice(model.as_bytes());
    p.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    p.extend_from_slice(&(cols as u32).to_le_bytes());
    for row in rows {
        for v in row {
            p.extend_from_slice(&v.to_le_bytes());
        }
    }
    if tier != PredictionTier::Full {
        p.push(tier.wire_byte());
    }
    encode(out, opcode::PREDICT_BATCH, req_id, &p);
}

/// Decoded `predict` request payload.
#[derive(Debug, PartialEq)]
pub struct PredictReq<'a> {
    /// Model name.
    pub model: &'a str,
    /// The feature row.
    pub row: Vec<f32>,
    /// Requested prediction tier (`Full` when the request has no tier
    /// byte).
    pub tier: PredictionTier,
}

/// Decoded `predict-batch` request payload.
#[derive(Debug, PartialEq)]
pub struct PredictBatchReq<'a> {
    /// Model name.
    pub model: &'a str,
    /// The feature rows (all the same width).
    pub rows: Vec<Vec<f32>>,
    /// Requested prediction tier (`Full` when the request has no tier
    /// byte).
    pub tier: PredictionTier,
}

/// Splits an optional trailing tier byte off the feature bytes: exactly
/// `expect` bytes means no tier byte (`Full`), `expect + 1` means the last
/// byte is the tier. Anything else is a malformed payload.
fn take_tier(bytes: &[u8], expect: usize) -> Result<(&[u8], PredictionTier), &'static str> {
    if bytes.len() == expect {
        Ok((bytes, PredictionTier::Full))
    } else if bytes.len() == expect + 1 {
        let tier = PredictionTier::from_wire_byte(bytes[expect])?;
        Ok((&bytes[..expect], tier))
    } else {
        Err("feature bytes do not match announced count")
    }
}

fn take_name(payload: &[u8]) -> Result<(&str, &[u8]), &'static str> {
    if payload.len() < 2 {
        return Err("payload truncated before name length");
    }
    let name_len = u16::from_le_bytes([payload[0], payload[1]]) as usize;
    if name_len == 0 {
        return Err("empty model name");
    }
    let rest = &payload[2..];
    if rest.len() < name_len {
        return Err("payload truncated inside name");
    }
    let name = std::str::from_utf8(&rest[..name_len]).map_err(|_| "model name not UTF-8")?;
    Ok((name, &rest[name_len..]))
}

fn take_f32s(bytes: &[u8], n: usize) -> Result<Vec<f32>, &'static str> {
    if bytes.len() != n * 4 {
        return Err("feature bytes do not match announced count");
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

/// Parses a `predict` payload.
///
/// # Errors
///
/// A static description of the malformation, rendered into an `ERR` reply.
pub fn decode_predict(payload: &[u8]) -> Result<PredictReq<'_>, &'static str> {
    let (model, rest) = take_name(payload)?;
    if rest.len() < 4 {
        return Err("payload truncated before feature count");
    }
    let n = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
    if n == 0 {
        return Err("empty feature row");
    }
    let (feat, tier) = take_tier(&rest[4..], n * 4)?;
    let row = take_f32s(feat, n)?;
    Ok(PredictReq { model, row, tier })
}

/// Parses a `predict-batch` payload.
///
/// # Errors
///
/// A static description of the malformation, rendered into an `ERR` reply.
pub fn decode_predict_batch(payload: &[u8]) -> Result<PredictBatchReq<'_>, &'static str> {
    let (model, rest) = take_name(payload)?;
    if rest.len() < 8 {
        return Err("payload truncated before batch dimensions");
    }
    let rows = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
    let cols = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes")) as usize;
    if rows == 0 || cols == 0 {
        return Err("empty batch");
    }
    let n = rows.checked_mul(cols).ok_or("batch size overflow")?;
    let (feat, tier) = take_tier(&rest[8..], n.checked_mul(4).ok_or("batch size overflow")?)?;
    let flat = take_f32s(feat, n)?;
    Ok(PredictBatchReq {
        model,
        rows: flat.chunks_exact(cols).map(<[f32]>::to_vec).collect(),
        tier,
    })
}

/// Appends an f32 reply (`OK`/`DEGRADED` predict answer).
pub fn encode_value_reply(out: &mut Vec<u8>, st: u8, req_id: u64, value: f32) {
    encode(out, st, req_id, &value.to_le_bytes());
}

/// Appends a UTF-8 text reply (stats/list/train-status payloads and `ERR`
/// messages).
pub fn encode_text_reply(out: &mut Vec<u8>, st: u8, req_id: u64, text: &str) {
    encode(out, st, req_id, text.as_bytes());
}

/// Appends an empty reply (`BUSY`/`DRAINING`, and `OK` for ping).
pub fn encode_empty_reply(out: &mut Vec<u8>, st: u8, req_id: u64) {
    encode(out, st, req_id, &[]);
}

/// Appends a `predict-batch` reply: frame status is the maximum of the
/// per-row statuses; payload is `u32 rows | rows × (u8 status, f32 value)`.
pub fn encode_batch_reply(out: &mut Vec<u8>, req_id: u64, rows: &[(u8, f32)]) {
    let frame_status = rows.iter().map(|(s, _)| *s).max().unwrap_or(status::OK);
    let mut p = Vec::with_capacity(4 + rows.len() * 5);
    p.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    for (s, v) in rows {
        p.push(*s);
        p.extend_from_slice(&v.to_le_bytes());
    }
    encode(out, frame_status, req_id, &p);
}

/// Parses a `predict-batch` reply payload into `(status, value)` rows.
///
/// # Errors
///
/// A static description of the malformation.
pub fn decode_batch_reply(payload: &[u8]) -> Result<Vec<(u8, f32)>, &'static str> {
    if payload.len() < 4 {
        return Err("batch reply truncated before row count");
    }
    let n = u32::from_le_bytes(payload[..4].try_into().expect("4 bytes")) as usize;
    let rest = &payload[4..];
    if rest.len() != n * 5 {
        return Err("batch reply rows do not match announced count");
    }
    Ok(rest
        .chunks_exact(5)
        .map(|c| (c[0], f32::from_le_bytes([c[1], c[2], c[3], c[4]])))
        .collect())
}

/// Parses an f32 value reply payload.
///
/// # Errors
///
/// A static description of the malformation.
pub fn decode_value_reply(payload: &[u8]) -> Result<f32, &'static str> {
    let bytes: [u8; 4] = payload
        .try_into()
        .map_err(|_| "value reply must be 4 bytes")?;
    Ok(f32::from_le_bytes(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_frame() {
        let mut wire = Vec::new();
        encode(&mut wire, opcode::STATS, 77, b"");
        let mut buf = FrameBuf::new();
        buf.extend(&wire);
        match buf.next_frame(DEFAULT_MAX_FRAME) {
            Step::Ready(f) => {
                assert_eq!(f.kind, opcode::STATS);
                assert_eq!(f.req_id, 77);
                assert!(f.payload.is_empty());
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            buf.next_frame(DEFAULT_MAX_FRAME),
            Step::Incomplete
        ));
        assert!(buf.is_empty());
    }

    #[test]
    fn byte_at_a_time_fragmentation() {
        let mut wire = Vec::new();
        encode_predict(&mut wire, u64::MAX, "model-x", &[1.5, -2.5, 3.25]);
        let mut buf = FrameBuf::new();
        for (i, b) in wire.iter().enumerate() {
            if i + 1 < wire.len() {
                buf.extend(std::slice::from_ref(b));
                assert!(
                    matches!(buf.next_frame(DEFAULT_MAX_FRAME), Step::Incomplete),
                    "complete frame before final byte"
                );
            } else {
                buf.extend(std::slice::from_ref(b));
            }
        }
        let Step::Ready(f) = buf.next_frame(DEFAULT_MAX_FRAME) else {
            panic!("frame must complete on final byte");
        };
        assert_eq!(f.req_id, u64::MAX);
        let req = decode_predict(&f.payload).unwrap();
        assert_eq!(req.model, "model-x");
        assert_eq!(req.row, vec![1.5, -2.5, 3.25]);
    }

    #[test]
    fn pipelined_frames_decode_in_order() {
        let mut wire = Vec::new();
        for id in 0..100u64 {
            encode_predict(&mut wire, id, "m", &[id as f32]);
        }
        let mut buf = FrameBuf::new();
        buf.extend(&wire);
        for id in 0..100u64 {
            let Step::Ready(f) = buf.next_frame(DEFAULT_MAX_FRAME) else {
                panic!("frame {id} missing");
            };
            assert_eq!(f.req_id, id);
        }
        assert!(buf.is_empty());
    }

    #[test]
    fn oversized_and_undersized_lengths_are_violations() {
        let mut buf = FrameBuf::new();
        buf.extend(&(8u32).to_le_bytes()); // < 9: no room for kind+id
        assert!(matches!(buf.next_frame(1024), Step::Violation(_)));

        let mut buf = FrameBuf::new();
        buf.extend(&(1025u32).to_le_bytes());
        assert!(matches!(buf.next_frame(1024), Step::Violation(_)));

        // Exactly at the cap is legal.
        let mut wire = Vec::new();
        encode(
            &mut wire,
            opcode::PING,
            1,
            &vec![0u8; 1024 - HEADER_AFTER_LEN],
        );
        let mut buf = FrameBuf::new();
        buf.extend(&wire);
        assert!(matches!(buf.next_frame(1024), Step::Ready(_)));
    }

    #[test]
    fn predict_batch_roundtrip_and_reply() {
        let rows = vec![vec![1.0f32, 2.0], vec![3.0, 4.0]];
        let mut wire = Vec::new();
        encode_predict_batch(&mut wire, 9, "mm", &rows);
        let mut buf = FrameBuf::new();
        buf.extend(&wire);
        let Step::Ready(f) = buf.next_frame(DEFAULT_MAX_FRAME) else {
            panic!("incomplete");
        };
        let req = decode_predict_batch(&f.payload).unwrap();
        assert_eq!(req.model, "mm");
        assert_eq!(req.rows, rows);

        let mut reply = Vec::new();
        encode_batch_reply(&mut reply, 9, &[(status::OK, 1.5), (status::DEGRADED, 2.5)]);
        let mut buf = FrameBuf::new();
        buf.extend(&reply);
        let Step::Ready(f) = buf.next_frame(DEFAULT_MAX_FRAME) else {
            panic!("incomplete");
        };
        // Frame status is the max of row statuses.
        assert_eq!(f.kind, status::DEGRADED);
        let rows = decode_batch_reply(&f.payload).unwrap();
        assert_eq!(rows, vec![(status::OK, 1.5), (status::DEGRADED, 2.5)]);
    }

    #[test]
    fn tier_byte_roundtrips_and_defaults_to_full() {
        // v1 form (no byte) decodes as Full.
        let mut wire = Vec::new();
        encode_predict(&mut wire, 1, "m", &[1.0, 2.0]);
        let mut buf = FrameBuf::new();
        buf.extend(&wire);
        let Step::Ready(f) = buf.next_frame(DEFAULT_MAX_FRAME) else {
            panic!("incomplete");
        };
        assert_eq!(
            decode_predict(&f.payload).unwrap().tier,
            PredictionTier::Full
        );

        // Explicit binary tier round-trips on both opcodes.
        let mut wire = Vec::new();
        encode_predict_tier(&mut wire, 2, "m", &[1.0], PredictionTier::Binary);
        encode_predict_batch_tier(
            &mut wire,
            3,
            "m",
            &[vec![1.0], vec![2.0]],
            PredictionTier::Binary,
        );
        let mut buf = FrameBuf::new();
        buf.extend(&wire);
        let Step::Ready(f) = buf.next_frame(DEFAULT_MAX_FRAME) else {
            panic!("incomplete");
        };
        let req = decode_predict(&f.payload).unwrap();
        assert_eq!(req.tier, PredictionTier::Binary);
        assert_eq!(req.row, vec![1.0]);
        let Step::Ready(f) = buf.next_frame(DEFAULT_MAX_FRAME) else {
            panic!("incomplete");
        };
        let req = decode_predict_batch(&f.payload).unwrap();
        assert_eq!(req.tier, PredictionTier::Binary);
        assert_eq!(req.rows.len(), 2);

        // An explicit Full tier byte is also accepted.
        let mut p = Vec::new();
        p.extend_from_slice(&(1u16).to_le_bytes());
        p.push(b'm');
        p.extend_from_slice(&(1u32).to_le_bytes());
        p.extend_from_slice(&1.0f32.to_le_bytes());
        p.push(PredictionTier::Full.wire_byte());
        assert_eq!(decode_predict(&p).unwrap().tier, PredictionTier::Full);

        // Unknown tier bytes are request errors, not silently Full.
        *p.last_mut().unwrap() = 0x7F;
        assert_eq!(decode_predict(&p).unwrap_err(), "unknown prediction tier");
        assert_eq!(PredictionTier::Binary.label(), "binary");
        assert_eq!(
            PredictionTier::from_wire_byte(1).unwrap(),
            PredictionTier::Binary
        );
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        assert!(decode_predict(b"").is_err());
        assert!(decode_predict(&[0, 0]).is_err(), "empty name");
        // Name length larger than payload.
        assert!(decode_predict(&[10, 0, b'a']).is_err());
        // Feature count mismatch.
        let mut p = Vec::new();
        p.extend_from_slice(&(1u16).to_le_bytes());
        p.push(b'm');
        p.extend_from_slice(&(3u32).to_le_bytes());
        p.extend_from_slice(&1.0f32.to_le_bytes());
        assert!(decode_predict(&p).is_err());
        // Non-UTF-8 name.
        assert!(decode_predict(&[1, 0, 0xFF, 0, 0, 0, 0]).is_err());
        assert!(decode_predict_batch(&[1, 0, b'm', 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
        assert!(decode_batch_reply(&[1, 0, 0, 0]).is_err());
        assert!(decode_value_reply(&[0, 0]).is_err());
    }

    #[test]
    fn value_reply_is_bit_exact() {
        let y = f32::from_bits(0x7F80_0001u32 ^ 0x0040_0000); // odd payload
        let mut wire = Vec::new();
        encode_value_reply(&mut wire, status::OK, 3, y);
        let mut buf = FrameBuf::new();
        buf.extend(&wire);
        let Step::Ready(f) = buf.next_frame(DEFAULT_MAX_FRAME) else {
            panic!("incomplete");
        };
        assert_eq!(
            decode_value_reply(&f.payload).unwrap().to_bits(),
            y.to_bits()
        );
    }

    #[test]
    fn compaction_reclaims_consumed_prefix() {
        let mut buf = FrameBuf::new();
        for id in 0..2000u64 {
            let mut wire = Vec::new();
            encode_predict(&mut wire, id, "m", &[0.0; 8]);
            buf.extend(&wire);
            let Step::Ready(f) = buf.next_frame(DEFAULT_MAX_FRAME) else {
                panic!("incomplete");
            };
            assert_eq!(f.req_id, id);
        }
        // After 2000 consumed frames the retained storage must not have
        // grown linearly with total traffic.
        assert!(
            buf.data.len() < 64 * 1024,
            "buffer grew: {}",
            buf.data.len()
        );
    }
}
