//! Open-loop RGNP load generator.
//!
//! Closed-loop generators (send, wait, send) hide overload: when the
//! server stalls, the generator politely stops offering load and the
//! measured latency collapses to the server's pace — the *coordinated
//! omission* artefact. This generator is **open-loop**: every connection
//! sends on a fixed schedule derived from the offered rate, whether or
//! not earlier replies have arrived, and latency is measured from the
//! *scheduled* send time. Queueing delay inside the generator's own
//! socket therefore counts against the server, as it would for a real
//! client fleet.

use crate::frame::PredictionTier;
use std::io;
use std::time::Duration;

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address, e.g. `"127.0.0.1:7979"`.
    pub addr: String,
    /// Model to predict against.
    pub model: String,
    /// The feature row every request sends.
    pub row: Vec<f32>,
    /// Concurrent connections.
    pub connections: usize,
    /// Total offered rate across all connections, rows/sec.
    pub rate: f64,
    /// Measurement window.
    pub duration: Duration,
    /// Extra time after the window to collect straggler replies.
    pub grace: Duration,
    /// Generator threads; `0` picks `min(connections, 4)`.
    pub threads: usize,
    /// Prediction tier requested on every frame. `Binary` asks the server
    /// for the bit-packed popcount tier (replies come back `DEGRADED`,
    /// counted under [`LoadReport::tier_binary`]).
    pub tier: PredictionTier,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7979".to_string(),
            model: "demo".to_string(),
            row: vec![0.5, 0.5],
            connections: 100,
            rate: 1000.0,
            duration: Duration::from_secs(5),
            grace: Duration::from_secs(2),
            threads: 0,
            tier: PredictionTier::Full,
        }
    }
}

/// Aggregated results of one load-generator run.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Connections that successfully opened.
    pub connections: usize,
    /// Connections that failed to open or died mid-run.
    pub conn_failures: usize,
    /// Requests sent (scheduled sends that reached the socket layer).
    pub sent: u64,
    /// Replies received, by status.
    pub ok: u64,
    /// Replies answered through the degraded tier.
    pub degraded: u64,
    /// `BUSY` admission refusals.
    pub busy: u64,
    /// `DRAINING` refusals.
    pub draining: u64,
    /// Server-side `ERR` replies.
    pub errors: u64,
    /// Frames the generator could not parse or correlate.
    pub protocol_errors: u64,
    /// Requests still unanswered when the run ended.
    pub lost: u64,
    /// Achieved reply rate over the measurement window, rows/sec.
    pub achieved_rps: f64,
    /// Latency quantiles, microseconds, measured from the scheduled
    /// send time (coordinated-omission-free).
    pub p50_us: u64,
    /// 95th percentile latency, microseconds.
    pub p95_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
    /// Worst observed latency, microseconds.
    pub max_us: u64,
}

impl LoadReport {
    /// Total replies of any status.
    pub fn replies(&self) -> u64 {
        self.ok + self.degraded + self.busy + self.draining + self.errors
    }

    /// Fraction of sent requests answered with a usable value
    /// (`OK` or `DEGRADED`), in `[0, 1]`.
    pub fn availability(&self) -> f64 {
        if self.sent == 0 {
            return 1.0;
        }
        (self.ok + self.degraded) as f64 / self.sent as f64
    }

    /// Replies answered on the full-precision tier (`OK` status).
    pub fn tier_full(&self) -> u64 {
        self.ok
    }

    /// Replies answered on the bit-packed binary tier (`DEGRADED` status —
    /// requested via [`LoadConfig::tier`] or demoted by the server).
    pub fn tier_binary(&self) -> u64 {
        self.degraded
    }
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod imp {
    use super::*;
    use crate::frame::{self, status, FrameBuf, Step};
    use crate::sys::{Epoll, EPOLLIN};
    use std::collections::HashMap;
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::os::fd::AsRawFd;
    use std::time::Instant;

    struct GenConn {
        stream: TcpStream,
        inbuf: FrameBuf,
        out: Vec<u8>,
        out_pos: usize,
        pending: HashMap<u64, Instant>,
        next_id: u64,
        /// Phase within the global send schedule (`i / rate` for the
        /// i-th connection), applied once the start time is agreed.
        offset: Duration,
        next_send: Instant,
        period: Duration,
        dead: bool,
    }

    impl GenConn {
        fn flush(&mut self) {
            while self.out_pos < self.out.len() {
                match self.stream.write(&self.out[self.out_pos..]) {
                    Ok(0) => {
                        self.dead = true;
                        return;
                    }
                    Ok(n) => self.out_pos += n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        self.dead = true;
                        return;
                    }
                }
            }
            self.out.clear();
            self.out_pos = 0;
        }
    }

    struct GenStats {
        report: LoadReport,
        latencies_us: Vec<u64>,
    }

    fn record_reply(stats: &mut GenStats, conn: &mut GenConn, f: &frame::Frame, now: Instant) {
        let Some(scheduled) = conn.pending.remove(&f.req_id) else {
            stats.report.protocol_errors += 1;
            return;
        };
        let lat = now.saturating_duration_since(scheduled).as_micros() as u64;
        match f.kind {
            status::OK if f.payload.len() == 4 => {
                stats.report.ok += 1;
                stats.latencies_us.push(lat);
            }
            status::DEGRADED if f.payload.len() == 4 => {
                stats.report.degraded += 1;
                stats.latencies_us.push(lat);
            }
            status::BUSY => stats.report.busy += 1,
            status::DRAINING => stats.report.draining += 1,
            status::ERR => stats.report.errors += 1,
            _ => stats.report.protocol_errors += 1,
        }
    }

    fn gen_thread(
        cfg: &LoadConfig,
        offsets: Vec<Duration>,
        ready: &std::sync::Barrier,
    ) -> GenStats {
        let mut stats = GenStats {
            report: LoadReport::default(),
            latencies_us: Vec::new(),
        };
        let period = Duration::from_secs_f64(cfg.connections as f64 / cfg.rate.max(1e-9));
        let Ok(epoll) = Epoll::new(256) else {
            stats.report.conn_failures += offsets.len();
            ready.wait();
            return stats;
        };
        let mut epoll = epoll;
        let mut conns: HashMap<u64, GenConn> = HashMap::new();
        for (i, offset) in offsets.into_iter().enumerate() {
            let stream = match TcpStream::connect(&cfg.addr) {
                Ok(s) => s,
                Err(_) => {
                    stats.report.conn_failures += 1;
                    continue;
                }
            };
            if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                stats.report.conn_failures += 1;
                continue;
            }
            let token = i as u64;
            if epoll.add(stream.as_raw_fd(), token, EPOLLIN).is_err() {
                stats.report.conn_failures += 1;
                continue;
            }
            conns.insert(
                token,
                GenConn {
                    stream,
                    inbuf: FrameBuf::new(),
                    out: Vec::new(),
                    out_pos: 0,
                    pending: HashMap::new(),
                    next_id: 1,
                    offset,
                    next_send: Instant::now(), // re-based once all threads connect
                    period,
                    dead: false,
                },
            );
        }
        stats.report.connections = conns.len();
        // The measurement window begins only after EVERY thread has all
        // its sockets connected — otherwise the schedule's early slots
        // are already overdue and their "latency" is connect backlog,
        // not server behaviour.
        ready.wait();
        let start = Instant::now() + Duration::from_millis(50);
        for conn in conns.values_mut() {
            conn.next_send = start + conn.offset;
        }
        let send_until = start + cfg.duration;
        let hard_stop = send_until + cfg.grace;
        let mut scratch = vec![0u8; 16 * 1024];
        loop {
            let now = Instant::now();
            if now >= hard_stop {
                break;
            }
            // Open loop: fire every send whose schedule has arrived,
            // regardless of outstanding replies.
            let sending = now < send_until;
            let mut next_due: Option<Instant> = None;
            for conn in conns.values_mut() {
                if conn.dead {
                    continue;
                }
                if sending {
                    while conn.next_send <= now && conn.next_send < send_until {
                        let req_id = conn.next_id;
                        conn.next_id += 1;
                        frame::encode_predict_tier(
                            &mut conn.out,
                            req_id,
                            &cfg.model,
                            &cfg.row,
                            cfg.tier,
                        );
                        conn.pending.insert(req_id, conn.next_send);
                        stats.report.sent += 1;
                        conn.next_send += conn.period;
                    }
                    next_due = Some(next_due.map_or(conn.next_send, |d| d.min(conn.next_send)));
                }
                if conn.out_pos < conn.out.len() {
                    conn.flush();
                }
            }
            let all_answered = conns.values().all(|c| c.dead || c.pending.is_empty());
            if !sending && all_answered {
                break;
            }
            let timeout_ms = match next_due {
                Some(due) if sending => {
                    let wait = due.saturating_duration_since(Instant::now());
                    (wait.as_millis() as i32).clamp(0, 10)
                }
                _ => 10,
            };
            let events: Vec<(u64, bool, bool)> = match epoll.wait(timeout_ms) {
                Ok(evs) => evs
                    .iter()
                    .map(|e| (e.token, e.readable, e.closed))
                    .collect(),
                Err(_) => Vec::new(),
            };
            let now = Instant::now();
            for (token, readable, closed) in events {
                let Some(conn) = conns.get_mut(&token) else {
                    continue;
                };
                if readable {
                    loop {
                        match conn.stream.read(&mut scratch) {
                            Ok(0) => {
                                conn.dead = true;
                                break;
                            }
                            Ok(n) => {
                                conn.inbuf.extend(&scratch[..n]);
                                loop {
                                    match conn.inbuf.next_frame(frame::DEFAULT_MAX_FRAME) {
                                        Step::Ready(f) => record_reply(&mut stats, conn, &f, now),
                                        Step::Incomplete => break,
                                        Step::Violation(_) => {
                                            stats.report.protocol_errors += 1;
                                            conn.dead = true;
                                            break;
                                        }
                                    }
                                }
                                if conn.dead || n < scratch.len() {
                                    break;
                                }
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                            Err(_) => {
                                conn.dead = true;
                                break;
                            }
                        }
                    }
                }
                if closed {
                    conn.dead = true;
                }
                if conn.dead {
                    let _ = epoll.delete(conn.stream.as_raw_fd());
                }
            }
        }
        for conn in conns.values() {
            if conn.dead {
                stats.report.conn_failures += 1;
            }
            stats.report.lost += conn.pending.len() as u64;
        }
        stats
    }

    /// Runs the generator and aggregates across its threads.
    pub fn run(cfg: &LoadConfig) -> io::Result<LoadReport> {
        if cfg.connections == 0 || cfg.rate <= 0.0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "loadgen needs connections > 0 and rate > 0",
            ));
        }
        let threads = if cfg.threads == 0 {
            cfg.connections.min(4)
        } else {
            cfg.threads.min(cfg.connections)
        };
        // Connection i starts its schedule at offset i/rate so the
        // aggregate offered rate is uniform from the first tick.
        let mut per_thread: Vec<Vec<Duration>> = vec![Vec::new(); threads];
        for i in 0..cfg.connections {
            per_thread[i % threads].push(Duration::from_secs_f64(i as f64 / cfg.rate));
        }
        // Threads rendezvous on this barrier after connecting all their
        // sockets; the send schedule is based after that point so connect
        // time is never mistaken for request latency.
        let ready = std::sync::Barrier::new(threads);
        let ready = &ready;
        let stats: Vec<GenStats> = std::thread::scope(|scope| {
            let handles: Vec<_> = per_thread
                .into_iter()
                .map(|offsets| scope.spawn(move || gen_thread(cfg, offsets, ready)))
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| GenStats {
                        report: LoadReport::default(),
                        latencies_us: Vec::new(),
                    })
                })
                .collect()
        });
        let mut report = LoadReport::default();
        let mut lats: Vec<u64> = Vec::new();
        for s in stats {
            report.connections += s.report.connections;
            report.conn_failures += s.report.conn_failures;
            report.sent += s.report.sent;
            report.ok += s.report.ok;
            report.degraded += s.report.degraded;
            report.busy += s.report.busy;
            report.draining += s.report.draining;
            report.errors += s.report.errors;
            report.protocol_errors += s.report.protocol_errors;
            report.lost += s.report.lost;
            lats.extend(s.latencies_us);
        }
        lats.sort_unstable();
        report.p50_us = quantile(&lats, 0.50);
        report.p95_us = quantile(&lats, 0.95);
        report.p99_us = quantile(&lats, 0.99);
        report.max_us = lats.last().copied().unwrap_or(0);
        report.achieved_rps = report.replies() as f64 / cfg.duration.as_secs_f64().max(1e-9);
        Ok(report)
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod imp {
    use super::*;

    /// The generator needs the Linux epoll fast path.
    ///
    /// # Errors
    ///
    /// Always `Unsupported` on this platform.
    pub fn run(_cfg: &LoadConfig) -> io::Result<LoadReport> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "loadgen requires Linux epoll (x86_64/aarch64)",
        ))
    }
}

/// Runs the open-loop generator against a live RGNP server.
///
/// # Errors
///
/// Invalid configuration, connection failures at startup, or
/// `Unsupported` on platforms without the epoll fast path.
pub fn run(cfg: &LoadConfig) -> io::Result<LoadReport> {
    imp::run(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_known_distribution() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(quantile(&v, 0.50), 51);
        assert_eq!(quantile(&v, 0.99), 99);
        assert_eq!(quantile(&[], 0.99), 0);
    }

    #[test]
    fn availability_counts_usable_replies() {
        let r = LoadReport {
            sent: 100,
            ok: 90,
            degraded: 9,
            errors: 1,
            ..LoadReport::default()
        };
        assert!((r.availability() - 0.99).abs() < 1e-9);
        assert_eq!(r.replies(), 100);
    }
}
