//! Blocking RGNP v1 client.
//!
//! One request in flight at a time (the loadgen drives its own pipelined
//! sockets; this client exists for the CLI, the chaos harness, and
//! tests). Portable — it only needs `std::net::TcpStream`.

use crate::frame::{self, opcode, status, Frame, FrameBuf, Step};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Outcome of a single-row prediction, mirroring the line protocol's
/// `ok` / `degraded` / `busy` / `draining` / `err` replies.
#[derive(Debug, Clone, PartialEq)]
pub enum PredictReply {
    /// Full-precision answer.
    Ok(f32),
    /// §3.2 binary-fallback answer.
    Degraded(f32),
    /// Admission control refused the row.
    Busy,
    /// Server is draining; the row was never dispatched.
    Draining,
    /// Request failed with a message.
    Err(String),
}

/// A blocking RGNP connection.
#[derive(Debug)]
pub struct RgnpClient {
    stream: TcpStream,
    buf: FrameBuf,
    next_id: u64,
}

impl RgnpClient {
    /// Connects to `addr` (e.g. `"127.0.0.1:7979"`).
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: &str) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            buf: FrameBuf::new(),
            next_id: 1,
        })
    }

    /// Sets the socket read timeout for subsequent requests.
    ///
    /// # Errors
    ///
    /// Propagates the `setsockopt` failure.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    fn roundtrip(&mut self, encode: impl FnOnce(&mut Vec<u8>, u64)) -> io::Result<Frame> {
        let req_id = self.next_id;
        self.next_id += 1;
        let mut out = Vec::new();
        encode(&mut out, req_id);
        self.stream.write_all(&out)?;
        let mut scratch = [0u8; 16 * 1024];
        loop {
            match self.buf.next_frame(frame::DEFAULT_MAX_FRAME) {
                Step::Ready(f) => {
                    if f.req_id == req_id {
                        return Ok(f);
                    }
                    // A stale reply (e.g. from an earlier timed-out
                    // request) — skip it and keep reading.
                    continue;
                }
                Step::Incomplete => {}
                Step::Violation(msg) => {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, msg));
                }
            }
            let n = self.stream.read(&mut scratch)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-reply",
                ));
            }
            self.buf.extend(&scratch[..n]);
        }
    }

    fn decode_err(f: &Frame) -> String {
        String::from_utf8_lossy(&f.payload).into_owned()
    }

    /// Predicts one row on the full-precision tier.
    ///
    /// # Errors
    ///
    /// I/O failures and malformed reply frames.
    pub fn predict(&mut self, model: &str, row: &[f32]) -> io::Result<PredictReply> {
        self.predict_tier(model, row, frame::PredictionTier::Full)
    }

    /// Predicts one row on an explicit tier. Requesting
    /// [`frame::PredictionTier::Binary`] asks for the bit-packed popcount
    /// path; the reply arrives as [`PredictReply::Degraded`] because the
    /// status byte reports the precision that answered.
    ///
    /// # Errors
    ///
    /// I/O failures and malformed reply frames.
    pub fn predict_tier(
        &mut self,
        model: &str,
        row: &[f32],
        tier: frame::PredictionTier,
    ) -> io::Result<PredictReply> {
        let f = self.roundtrip(|out, id| frame::encode_predict_tier(out, id, model, row, tier))?;
        let value = |f: &Frame| {
            frame::decode_value_reply(&f.payload)
                .map_err(|m| io::Error::new(io::ErrorKind::InvalidData, m))
        };
        Ok(match f.kind {
            status::OK => PredictReply::Ok(value(&f)?),
            status::DEGRADED => PredictReply::Degraded(value(&f)?),
            status::BUSY => PredictReply::Busy,
            status::DRAINING => PredictReply::Draining,
            status::ERR => PredictReply::Err(Self::decode_err(&f)),
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown reply status {other}"),
                ))
            }
        })
    }

    /// Predicts a row block; returns one `(status, value)` per row.
    ///
    /// # Errors
    ///
    /// I/O failures, server-side `ERR` frames, malformed replies.
    pub fn predict_batch(&mut self, model: &str, rows: &[Vec<f32>]) -> io::Result<Vec<(u8, f32)>> {
        let f = self.roundtrip(|out, id| frame::encode_predict_batch(out, id, model, rows))?;
        if f.kind == status::ERR {
            return Err(io::Error::other(Self::decode_err(&f)));
        }
        if f.kind == status::BUSY || f.kind == status::DRAINING {
            // Whole-request admission refusal carries no row payload.
            if f.payload.is_empty() {
                return Ok(vec![(f.kind, 0.0); rows.len()]);
            }
        }
        frame::decode_batch_reply(&f.payload)
            .map_err(|m| io::Error::new(io::ErrorKind::InvalidData, m))
    }

    fn text_request(&mut self, op: u8) -> io::Result<Result<String, String>> {
        let f = self.roundtrip(|out, id| frame::encode(out, op, id, &[]))?;
        let text = String::from_utf8_lossy(&f.payload).into_owned();
        Ok(if f.kind == status::ERR {
            Err(text)
        } else {
            Ok(text)
        })
    }

    /// Fetches the server statistics block (same lines as the line
    /// protocol's `stats`, newline-joined).
    ///
    /// # Errors
    ///
    /// I/O failures and malformed replies.
    pub fn stats(&mut self) -> io::Result<String> {
        self.text_request(opcode::STATS)?.map_err(io::Error::other)
    }

    /// Fetches the model inventory (same lines as `list`).
    ///
    /// # Errors
    ///
    /// I/O failures and malformed replies.
    pub fn list(&mut self) -> io::Result<String> {
        self.text_request(opcode::LIST)?.map_err(io::Error::other)
    }

    /// Fetches the streaming-trainer status. `Ok(Err(msg))` is a
    /// server-side error such as `no trainer attached`.
    ///
    /// # Errors
    ///
    /// I/O failures and malformed replies.
    pub fn train_status(&mut self) -> io::Result<Result<String, String>> {
        self.text_request(opcode::TRAIN_STATUS)
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// I/O failures; `InvalidData` when the server answers non-OK.
    pub fn ping(&mut self) -> io::Result<()> {
        let f = self.roundtrip(|out, id| frame::encode(out, opcode::PING, id, &[]))?;
        if f.kind == status::OK {
            Ok(())
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("ping answered with status {}", f.kind),
            ))
        }
    }
}
