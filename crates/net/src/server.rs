//! The RGNP event-loop front-end: a fixed poller pool multiplexing
//! thousands of connections over epoll.
//!
//! # Architecture
//!
//! * One **accept thread** owns the listener, enforces the connection cap,
//!   and hands accepted sockets round-robin to the pollers.
//! * A fixed pool of **poller threads** (default: up to 4), each owning a
//!   private epoll set, a slab of connections, and a [`sys::WakePipe`].
//!   Pollers parse frames, answer cheap requests inline (stats, list,
//!   ping, degraded-tier predictions), and enqueue full-precision rows
//!   into the shared [`Batcher`] exactly like the line front-end does.
//! * **Workers** complete rows through a [`ReplySink::from_fn`] callback
//!   that pushes the result into the owning poller's inbox and wakes it —
//!   the poller turns completions into reply frames on its own thread, so
//!   no worker ever blocks on a slow client socket.
//!
//! Backpressure is per-connection: a connection whose write buffer exceeds
//! [`NetConfig::write_budget`] stops being read (its requests back up into
//! the kernel socket buffer and eventually the client), and is re-armed
//! when the buffer drains below half the budget. Admission control reuses
//! the PR 7 machinery: queue-full enqueues answer `BUSY`, drain answers
//! `DRAINING`, per-request deadlines expire rows into the degraded tier.

use crate::frame::{self, opcode, status, FrameBuf, Step};
use reghd_serve::batcher::{Batcher, BatcherConfig, EnqueueResult};
use reghd_serve::faults::FaultInjector;
use reghd_serve::metrics::{MetricsHub, ModelMetrics};
use reghd_serve::registry::{ModelRegistry, ServedModel};
use reghd_serve::server::{degraded_value, model_line, render_stats};
use reghd_serve::shed::{ShedConfig, ShedController};
use reghd_serve::status::TrainStatus;
use reghd_serve::worker::{ReplySink, WorkError, WorkItem, WorkerPool};
use reghd_serve::ServeError;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration for [`serve_rgnp`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Bind address; port `0` picks a free port.
    pub addr: String,
    /// Poller threads. `0` (default) uses `min(available cores, 4)`.
    pub pollers: usize,
    /// Worker threads running model predictions.
    pub workers: usize,
    /// Row-parallelism inside each model call (see the line server's
    /// `ServerConfig::threads`).
    pub threads: usize,
    /// Trigonometry mode for encoding (see `ServerConfig::trig`).
    pub trig: hdc::TrigMode,
    /// Micro-batching knobs.
    pub batcher: BatcherConfig,
    /// Connections idle this long are closed.
    pub idle_timeout: Duration,
    /// A request unanswered for this long is settled through the degraded
    /// path; its late completion is discarded.
    pub reply_timeout: Duration,
    /// Per-request deadline from enqueue (see `ServerConfig::deadline`).
    pub deadline: Option<Duration>,
    /// Hard cap on concurrently open connections. Over the cap, a
    /// connection gets one `BUSY` frame and is closed. `0`: unlimited.
    pub max_connections: usize,
    /// Adaptive shed thresholds; `None` disables adaptive shedding.
    pub shed: Option<ShedConfig>,
    /// Frames whose length field exceeds this are a protocol violation:
    /// the connection receives one `ERR` frame and is closed.
    pub max_frame: u32,
    /// Per-connection write-buffer budget in bytes; reading stops above
    /// it and resumes once the buffer drains below half.
    pub write_budget: usize,
    /// Streaming-trainer status for the `train-status` opcode.
    pub train_status: Option<Arc<TrainStatus>>,
    /// Seed for the worker-pool fault injector (chaos harness).
    pub fault_seed: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7979".to_string(),
            pollers: 0,
            workers: 4,
            threads: 1,
            trig: hdc::TrigMode::Exact,
            batcher: BatcherConfig::default(),
            idle_timeout: Duration::from_secs(30),
            reply_timeout: Duration::from_secs(10),
            deadline: None,
            max_connections: 0,
            shed: Some(ShedConfig::default()),
            max_frame: frame::DEFAULT_MAX_FRAME,
            write_budget: 256 * 1024,
            train_status: None,
            fault_seed: 0,
        }
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod imp {
    use super::*;
    use crate::sys::{Epoll, WakePipe, EPOLLIN, EPOLLOUT};
    use std::collections::HashMap;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::sync::{Mutex, PoisonError};
    use std::thread::JoinHandle;

    /// Token the poller's wake pipe is registered under (never a conn).
    const WAKE_TOKEN: u64 = u64::MAX;
    /// Events decoded per `epoll_wait`.
    const EVENT_CAPACITY: usize = 1024;
    /// Upper bound on the poll sleep, so idle/reply-timeout scans run.
    const TICK_MS: i32 = 50;

    fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
        m.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// A completed row routed back from a worker (or the batcher's drain
    /// path, or a drop guard) to the poller owning the connection.
    struct Completion {
        token: u64,
        req_id: u64,
        slot: u32,
        result: Result<f32, WorkError>,
    }

    #[derive(Default)]
    struct Inbox {
        conns: Vec<TcpStream>,
        completions: Vec<Completion>,
    }

    /// The cross-thread face of one poller.
    pub(super) struct PollerShared {
        stop: AtomicBool,
        inbox: Mutex<Inbox>,
        wake: WakePipe,
    }

    /// Immutable state shared by every poller.
    struct NetCtx {
        registry: Arc<ModelRegistry>,
        hub: Arc<MetricsHub>,
        batcher: Arc<Batcher>,
        shed: Option<Arc<ShedController>>,
        train_status: Option<Arc<TrainStatus>>,
        deadline: Option<Duration>,
        reply_timeout: Duration,
        idle_timeout: Duration,
        max_frame: u32,
        write_budget: usize,
        active: Arc<AtomicUsize>,
    }

    /// One request awaiting worker completions.
    struct PendingReq {
        served: Arc<ServedModel>,
        metrics: Arc<ModelMetrics>,
        rows: Vec<Vec<f32>>,
        results: Vec<Option<(u8, f32)>>,
        err: Option<String>,
        remaining: usize,
        single: bool,
        timeout_at: Instant,
    }

    struct Conn {
        stream: TcpStream,
        fd: i32,
        inbuf: FrameBuf,
        out: Vec<u8>,
        out_pos: usize,
        pending: HashMap<u64, PendingReq>,
        last_activity: Instant,
        paused: bool,
        closing: bool,
        interest: u32,
    }

    impl Conn {
        fn outstanding(&self) -> usize {
            self.out.len() - self.out_pos
        }

        /// Writes until the buffer empties or the socket would block.
        /// Returns `false` when the socket died.
        fn flush(&mut self) -> bool {
            while self.out_pos < self.out.len() {
                match self.stream.write(&self.out[self.out_pos..]) {
                    Ok(0) => return false,
                    Ok(n) => self.out_pos += n,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => return false,
                }
            }
            if self.out_pos == self.out.len() {
                self.out.clear();
                self.out_pos = 0;
            } else if self.out_pos > 64 * 1024 {
                self.out.drain(..self.out_pos);
                self.out_pos = 0;
            }
            true
        }

        fn desired_interest(&self) -> u32 {
            let mut mask = 0;
            if !self.paused && !self.closing {
                mask |= EPOLLIN;
            }
            if self.outstanding() > 0 {
                mask |= EPOLLOUT;
            }
            mask
        }
    }

    /// Settles one row of a pending request, consuming the slot exactly
    /// once. Expired/dropped rows fall back to the inline degraded path,
    /// mirroring the line protocol.
    fn settle_slot(p: &mut PendingReq, slot: usize, result: Result<f32, WorkError>) {
        if slot >= p.results.len() || p.results[slot].is_some() {
            return; // duplicate or out-of-range: already settled
        }
        let (st, value) = match result {
            Ok(y) => (status::OK, y),
            Err(WorkError::Expired) | Err(WorkError::Dropped) => {
                match degraded_value(&p.served, &p.metrics, &p.rows[slot]) {
                    Ok(y) => (status::DEGRADED, y),
                    Err(msg) => {
                        if p.err.is_none() {
                            p.err = Some(msg);
                        }
                        (status::ERR, 0.0)
                    }
                }
            }
            Err(WorkError::Draining) => (status::DRAINING, 0.0),
            Err(WorkError::Failed(msg)) => {
                if p.err.is_none() {
                    p.err = Some(msg);
                }
                (status::ERR, 0.0)
            }
        };
        p.results[slot] = Some((st, value));
        p.remaining -= 1;
    }

    /// Renders a fully-settled request into its reply frame.
    fn emit_reply(out: &mut Vec<u8>, req_id: u64, p: &PendingReq) {
        debug_assert_eq!(p.remaining, 0);
        if p.single {
            match p.results[0].expect("settled") {
                (status::OK, y) => frame::encode_value_reply(out, status::OK, req_id, y),
                (status::DEGRADED, y) => {
                    frame::encode_value_reply(out, status::DEGRADED, req_id, y)
                }
                (status::ERR, _) => frame::encode_text_reply(
                    out,
                    status::ERR,
                    req_id,
                    p.err.as_deref().unwrap_or("prediction failed"),
                ),
                (st, _) => frame::encode_empty_reply(out, st, req_id),
            }
        } else {
            let rows: Vec<(u8, f32)> = p.results.iter().map(|r| r.expect("settled")).collect();
            frame::encode_batch_reply(out, req_id, &rows);
        }
    }

    /// Enqueues one row into the batcher with a completion callback that
    /// routes back to this poller. Returns the admission result.
    #[allow(clippy::too_many_arguments)]
    fn enqueue_row(
        ctx: &NetCtx,
        shared: &Arc<PollerShared>,
        served: &Arc<ServedModel>,
        metrics: &Arc<ModelMetrics>,
        row: Vec<f32>,
        token: u64,
        req_id: u64,
        slot: u32,
    ) -> EnqueueResult {
        let now = Instant::now();
        let cb_shared = shared.clone();
        let sink = ReplySink::from_fn(move |result| {
            lock_unpoisoned(&cb_shared.inbox)
                .completions
                .push(Completion {
                    token,
                    req_id,
                    slot,
                    result,
                });
            cb_shared.wake.wake();
        });
        let item = WorkItem {
            row,
            enqueued_at: now,
            deadline: ctx.deadline.map(|d| now + d),
            reply: sink,
        };
        ctx.batcher.enqueue(served.clone(), metrics.clone(), item)
    }

    /// Handles one decoded request frame against `conn`.
    #[allow(clippy::too_many_lines)]
    fn handle_frame(
        ctx: &NetCtx,
        shared: &Arc<PollerShared>,
        token: u64,
        conn: &mut Conn,
        f: Frame,
    ) {
        match f.kind {
            opcode::PING => frame::encode_empty_reply(&mut conn.out, status::OK, f.req_id),
            opcode::STATS => {
                let lines = render_stats(
                    &ctx.registry,
                    &ctx.hub,
                    ctx.batcher.depth(),
                    ctx.shed.as_deref(),
                );
                frame::encode_text_reply(&mut conn.out, status::OK, f.req_id, &lines.join("\n"));
            }
            opcode::LIST => {
                let lines: Vec<String> = ctx.registry.list().iter().map(model_line).collect();
                frame::encode_text_reply(&mut conn.out, status::OK, f.req_id, &lines.join("\n"));
            }
            opcode::TRAIN_STATUS => match &ctx.train_status {
                Some(ts) => {
                    frame::encode_text_reply(&mut conn.out, status::OK, f.req_id, &ts.summary());
                }
                None => frame::encode_text_reply(
                    &mut conn.out,
                    status::ERR,
                    f.req_id,
                    "no trainer attached",
                ),
            },
            opcode::PREDICT | opcode::PREDICT_BATCH => {
                handle_predict(ctx, shared, token, conn, f);
            }
            other => {
                ctx.hub.bad_requests.fetch_add(1, Ordering::Relaxed);
                frame::encode_text_reply(
                    &mut conn.out,
                    status::ERR,
                    f.req_id,
                    &format!("unknown opcode {other}"),
                );
            }
        }
    }

    /// The predict / predict-batch path: validation and admission mirror
    /// the line protocol (`handle_line`) so the two front-ends answer
    /// identically for the same rows.
    fn handle_predict(
        ctx: &NetCtx,
        shared: &Arc<PollerShared>,
        token: u64,
        conn: &mut Conn,
        f: Frame,
    ) {
        let single = f.kind == opcode::PREDICT;
        let (model_name, rows, tier) = if single {
            match frame::decode_predict(&f.payload) {
                Ok(req) => (req.model.to_string(), vec![req.row], req.tier),
                Err(msg) => {
                    ctx.hub.bad_requests.fetch_add(1, Ordering::Relaxed);
                    frame::encode_text_reply(&mut conn.out, status::ERR, f.req_id, msg);
                    return;
                }
            }
        } else {
            match frame::decode_predict_batch(&f.payload) {
                Ok(req) => (req.model.to_string(), req.rows, req.tier),
                Err(msg) => {
                    ctx.hub.bad_requests.fetch_add(1, Ordering::Relaxed);
                    frame::encode_text_reply(&mut conn.out, status::ERR, f.req_id, msg);
                    return;
                }
            }
        };
        if rows.iter().flatten().any(|v| !v.is_finite()) {
            // NaN/Inf would poison the encoded hypervector; client bug.
            ctx.hub.bad_requests.fetch_add(1, Ordering::Relaxed);
            frame::encode_text_reply(
                &mut conn.out,
                status::ERR,
                f.req_id,
                "non-finite feature value",
            );
            return;
        }
        let Some(served) = ctx.registry.get(&model_name) else {
            frame::encode_text_reply(
                &mut conn.out,
                status::ERR,
                f.req_id,
                &format!("unknown model {model_name}"),
            );
            return;
        };
        if conn.pending.contains_key(&f.req_id) {
            ctx.hub.bad_requests.fetch_add(1, Ordering::Relaxed);
            frame::encode_text_reply(&mut conn.out, status::ERR, f.req_id, "duplicate request id");
            return;
        }
        let metrics = ctx.hub.for_model(&model_name);
        if tier == frame::PredictionTier::Binary
            || served.is_corrupt()
            || ctx.shed.as_ref().is_some_and(|s| s.should_degrade())
        {
            // Requested binary tier, corrupt-flagged model, or adaptive
            // shed: the §3.2 bit-packed binary path is cheap enough to run
            // inline on the poller, exactly as the line server runs it
            // inline on the connection thread. The DEGRADED status tells
            // the client which precision answered.
            let mut results = Vec::with_capacity(rows.len());
            let mut err: Option<String> = None;
            for row in &rows {
                match degraded_value(&served, &metrics, row) {
                    Ok(y) => results.push((status::DEGRADED, y)),
                    Err(msg) => {
                        if err.is_none() {
                            err = Some(msg);
                        }
                        results.push((status::ERR, 0.0));
                    }
                }
            }
            if single {
                match (results[0], err) {
                    ((status::ERR, _), Some(msg)) => {
                        frame::encode_text_reply(&mut conn.out, status::ERR, f.req_id, &msg);
                    }
                    ((_, y), _) => {
                        frame::encode_value_reply(&mut conn.out, status::DEGRADED, f.req_id, y);
                    }
                }
            } else {
                frame::encode_batch_reply(&mut conn.out, f.req_id, &results);
            }
            return;
        }
        let n = rows.len();
        let pending = PendingReq {
            served: served.clone(),
            metrics: metrics.clone(),
            rows: rows.clone(),
            results: vec![None; n],
            err: None,
            remaining: n,
            single,
            timeout_at: Instant::now() + ctx.reply_timeout,
        };
        conn.pending.insert(f.req_id, pending);
        for (slot, row) in rows.into_iter().enumerate() {
            let res = enqueue_row(
                ctx,
                shared,
                &served,
                &metrics,
                row,
                token,
                f.req_id,
                slot as u32,
            );
            let admission = match res {
                EnqueueResult::Accepted => continue,
                EnqueueResult::Full => status::BUSY,
                EnqueueResult::Stopping => status::DRAINING,
            };
            let p = conn.pending.get_mut(&f.req_id).expect("just inserted");
            if p.results[slot].is_none() {
                p.results[slot] = Some((admission, 0.0));
                p.remaining -= 1;
            }
        }
        let p = conn.pending.get_mut(&f.req_id).expect("just inserted");
        if p.remaining == 0 {
            emit_reply(&mut conn.out, f.req_id, p);
            conn.pending.remove(&f.req_id);
        }
    }

    use crate::frame::Frame;

    /// Reads everything available, parses frames, and handles them.
    /// Returns `false` when the connection must be torn down.
    fn on_readable(
        ctx: &NetCtx,
        shared: &Arc<PollerShared>,
        token: u64,
        conn: &mut Conn,
        scratch: &mut [u8],
        now: Instant,
    ) -> bool {
        loop {
            if conn.paused || conn.closing {
                return true;
            }
            match conn.stream.read(scratch) {
                Ok(0) => return conn.outstanding() > 0 && conn.flush(),
                Ok(n) => {
                    conn.last_activity = now;
                    conn.inbuf.extend(&scratch[..n]);
                    loop {
                        match conn.inbuf.next_frame(ctx.max_frame) {
                            Step::Ready(f) => handle_frame(ctx, shared, token, conn, f),
                            Step::Incomplete => break,
                            Step::Violation(msg) => {
                                // The stream cannot be resynchronised: one
                                // terminal ERR frame, then close. req_id 0
                                // because the offender's id is unknowable.
                                ctx.hub.bad_requests.fetch_add(1, Ordering::Relaxed);
                                frame::encode_text_reply(&mut conn.out, status::ERR, 0, msg);
                                conn.closing = true;
                                break;
                            }
                        }
                    }
                    if conn.outstanding() > ctx.write_budget {
                        conn.paused = true; // backpressure: stop reading
                    }
                    if n < scratch.len() {
                        return true; // socket drained
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }

    /// Applies queued completions and registers newly accepted sockets.
    fn process_inbox(
        ctx: &NetCtx,
        shared: &Arc<PollerShared>,
        epoll: &Epoll,
        conns: &mut HashMap<u64, Conn>,
        next_token: &mut u64,
        touched: &mut Vec<u64>,
    ) {
        shared.wake.drain();
        let Inbox {
            conns: new_conns,
            completions,
        } = std::mem::take(&mut *lock_unpoisoned(&shared.inbox));
        for stream in new_conns {
            let token = *next_token;
            *next_token += 1;
            if stream.set_nonblocking(true).is_err() {
                ctx.active.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            let _ = stream.set_nodelay(true);
            let fd = stream.as_raw_fd();
            if epoll.add(fd, token, EPOLLIN).is_err() {
                ctx.active.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            conns.insert(
                token,
                Conn {
                    stream,
                    fd,
                    inbuf: FrameBuf::new(),
                    out: Vec::new(),
                    out_pos: 0,
                    pending: HashMap::new(),
                    last_activity: Instant::now(),
                    paused: false,
                    closing: false,
                    interest: EPOLLIN,
                },
            );
        }
        for c in completions {
            let Some(conn) = conns.get_mut(&c.token) else {
                continue; // connection already closed: discard
            };
            let Some(p) = conn.pending.get_mut(&c.req_id) else {
                continue; // reply-timeout already answered it: discard
            };
            settle_slot(p, c.slot as usize, c.result);
            if p.remaining == 0 {
                let p = conn.pending.remove(&c.req_id).expect("present");
                emit_reply(&mut conn.out, c.req_id, &p);
                touched.push(c.token);
            }
        }
    }

    /// Flushes, re-arms reading after a drain, syncs epoll interest, and
    /// closes finished connections.
    fn after_work(ctx: &NetCtx, epoll: &Epoll, conns: &mut HashMap<u64, Conn>, token: u64) {
        let Some(conn) = conns.get_mut(&token) else {
            return;
        };
        if !conn.flush() {
            close_conn(ctx, epoll, conns, token);
            return;
        }
        if conn.paused && conn.outstanding() <= ctx.write_budget / 2 {
            conn.paused = false; // drained: resume reading
        }
        if conn.closing && conn.outstanding() == 0 {
            close_conn(ctx, epoll, conns, token);
            return;
        }
        let desired = conn.desired_interest();
        if desired != conn.interest && epoll.modify(conn.fd, token, desired).is_ok() {
            conn.interest = desired;
        }
    }

    fn close_conn(ctx: &NetCtx, epoll: &Epoll, conns: &mut HashMap<u64, Conn>, token: u64) {
        if let Some(conn) = conns.remove(&token) {
            let _ = epoll.delete(conn.fd);
            ctx.active.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Periodic maintenance: idle-timeout closes and reply-timeout
    /// settlement through the degraded path.
    fn scan(ctx: &NetCtx, epoll: &Epoll, conns: &mut HashMap<u64, Conn>, now: Instant) {
        let mut idle: Vec<u64> = Vec::new();
        let mut touched: Vec<u64> = Vec::new();
        for (&token, conn) in conns.iter_mut() {
            if now.duration_since(conn.last_activity) >= ctx.idle_timeout && conn.pending.is_empty()
            {
                idle.push(token);
                continue;
            }
            let overdue: Vec<u64> = conn
                .pending
                .iter()
                .filter(|(_, p)| now >= p.timeout_at)
                .map(|(&id, _)| id)
                .collect();
            for req_id in overdue {
                let mut p = conn.pending.remove(&req_id).expect("present");
                // Timed out (slow worker, lost completion): every
                // unsettled row is answered degraded, like the line
                // protocol's recv_timeout fallback. A completion arriving
                // later finds no pending entry and is discarded.
                for slot in 0..p.results.len() {
                    if p.results[slot].is_none() {
                        settle_slot(&mut p, slot, Err(WorkError::Expired));
                    }
                }
                emit_reply(&mut conn.out, req_id, &p);
                touched.push(token);
            }
        }
        for token in idle {
            close_conn(ctx, epoll, conns, token);
        }
        for token in touched {
            after_work(ctx, epoll, conns, token);
        }
    }

    fn poller_loop(ctx: Arc<NetCtx>, shared: Arc<PollerShared>) {
        let Ok(mut epoll) = Epoll::new(EVENT_CAPACITY) else {
            return;
        };
        if epoll
            .add(shared.wake.read_fd(), WAKE_TOKEN, EPOLLIN)
            .is_err()
        {
            return;
        }
        let mut conns: HashMap<u64, Conn> = HashMap::new();
        let mut next_token: u64 = 0;
        let mut scratch = vec![0u8; 64 * 1024];
        let mut touched: Vec<u64> = Vec::new();
        let mut last_scan = Instant::now();
        loop {
            let events: Vec<(u64, bool, bool, bool)> = match epoll.wait(TICK_MS) {
                Ok(evs) => evs
                    .iter()
                    .map(|e| (e.token, e.readable, e.writable, e.closed))
                    .collect(),
                Err(_) => Vec::new(),
            };
            let now = Instant::now();
            touched.clear();
            process_inbox(
                &ctx,
                &shared,
                &epoll,
                &mut conns,
                &mut next_token,
                &mut touched,
            );
            for (token, readable, writable, closed) in events {
                if token == WAKE_TOKEN {
                    continue; // inbox already drained above
                }
                if !conns.contains_key(&token) {
                    continue;
                }
                let mut alive = true;
                if readable || writable {
                    if let Some(conn) = conns.get_mut(&token) {
                        if readable {
                            alive = on_readable(&ctx, &shared, token, conn, &mut scratch, now);
                        }
                    }
                }
                if !alive || closed {
                    close_conn(&ctx, &epoll, &mut conns, token);
                    continue;
                }
                touched.push(token);
            }
            for &token in touched.iter() {
                after_work(&ctx, &epoll, &mut conns, token);
            }
            if shared.stop.load(Ordering::SeqCst) {
                // Final drain: deliver completions the batcher settled
                // while shutting down, flush best-effort, close.
                touched.clear();
                process_inbox(
                    &ctx,
                    &shared,
                    &epoll,
                    &mut conns,
                    &mut next_token,
                    &mut touched,
                );
                let tokens: Vec<u64> = conns.keys().copied().collect();
                for token in tokens {
                    if let Some(conn) = conns.get_mut(&token) {
                        let _ = conn.flush();
                    }
                    close_conn(&ctx, &epoll, &mut conns, token);
                }
                return;
            }
            if now.duration_since(last_scan) >= Duration::from_millis(TICK_MS as u64) {
                last_scan = now;
                scan(&ctx, &epoll, &mut conns, now);
            }
        }
    }

    /// Running RGNP server. Dropping the handle shuts it down.
    pub struct NetServerHandle {
        local_addr: SocketAddr,
        stop: Arc<AtomicBool>,
        accept_thread: Option<JoinHandle<()>>,
        pollers: Vec<(Arc<PollerShared>, Option<JoinHandle<()>>)>,
        hub: Arc<MetricsHub>,
        batcher: Arc<Batcher>,
        shed: Option<Arc<ShedController>>,
        injector: Arc<FaultInjector>,
    }

    impl std::fmt::Debug for NetServerHandle {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("NetServerHandle")
                .field("local_addr", &self.local_addr)
                .field("pollers", &self.pollers.len())
                .finish_non_exhaustive()
        }
    }

    impl NetServerHandle {
        /// The address the server actually bound (resolves port `0`).
        pub fn local_addr(&self) -> SocketAddr {
            self.local_addr
        }

        /// The server's metrics hub.
        pub fn metrics(&self) -> Arc<MetricsHub> {
            self.hub.clone()
        }

        /// The adaptive shed controller, when enabled.
        pub fn shed(&self) -> Option<Arc<ShedController>> {
            self.shed.clone()
        }

        /// The worker-pool fault injector (chaos harness).
        pub fn injector(&self) -> Arc<FaultInjector> {
            self.injector.clone()
        }

        /// Gracefully stops the server: accepting stops, queued rows are
        /// answered `DRAINING`, in-flight rows finish and their reply
        /// frames are flushed best-effort before sockets close. Returns
        /// the final `stat` lines.
        pub fn shutdown(mut self) -> Vec<String> {
            self.stop_and_join();
            self.hub.render_all()
        }

        fn stop_and_join(&mut self) {
            self.stop.store(true, Ordering::SeqCst);
            if let Some(h) = self.accept_thread.take() {
                let _ = h.join();
            }
            // Settle every queued and in-flight row *before* stopping the
            // pollers, so the resulting completions still reach client
            // sockets as DRAINING / OK frames.
            self.batcher.begin_drain();
            self.batcher.shutdown();
            for (shared, handle) in &mut self.pollers {
                shared.stop.store(true, Ordering::SeqCst);
                shared.wake.wake();
                if let Some(h) = handle.take() {
                    let _ = h.join();
                }
            }
        }
    }

    impl Drop for NetServerHandle {
        fn drop(&mut self) {
            self.stop_and_join();
        }
    }

    /// Binds `cfg.addr` and starts the RGNP front-end.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the address cannot be bound or epoll is
    /// unavailable, [`ServeError::Spawn`] when a thread cannot start.
    pub fn serve_rgnp(
        cfg: NetConfig,
        registry: Arc<ModelRegistry>,
    ) -> Result<NetServerHandle, ServeError> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        registry.set_default_threads(cfg.threads);
        registry.set_default_trig(cfg.trig);

        let hub = Arc::new(MetricsHub::new());
        let injector = Arc::new(FaultInjector::new(cfg.fault_seed));
        let pool = Arc::new(WorkerPool::with_injector(
            cfg.workers,
            cfg.workers * 2,
            injector.clone(),
        )?);
        let shed = cfg.shed.clone().map(|c| Arc::new(ShedController::new(c)));
        let batcher = Arc::new(Batcher::with_shed(cfg.batcher.clone(), pool, shed.clone())?);
        let active = Arc::new(AtomicUsize::new(0));

        let pollers_n = if cfg.pollers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(4)
        } else {
            cfg.pollers
        }
        .max(1);

        let ctx = Arc::new(NetCtx {
            registry,
            hub: hub.clone(),
            batcher: batcher.clone(),
            shed: shed.clone(),
            train_status: cfg.train_status.clone(),
            deadline: cfg.deadline,
            reply_timeout: cfg.reply_timeout,
            idle_timeout: cfg.idle_timeout,
            max_frame: cfg.max_frame,
            write_budget: cfg.write_budget.max(4096),
            active: active.clone(),
        });

        let mut pollers = Vec::with_capacity(pollers_n);
        for i in 0..pollers_n {
            let shared = Arc::new(PollerShared {
                stop: AtomicBool::new(false),
                inbox: Mutex::new(Inbox::default()),
                wake: WakePipe::new()?,
            });
            let ctx = ctx.clone();
            let shared2 = shared.clone();
            let handle = std::thread::Builder::new()
                .name(format!("reghd-poller-{i}"))
                .spawn(move || poller_loop(ctx, shared2))
                .map_err(ServeError::Spawn)?;
            pollers.push((shared, Some(handle)));
        }

        let stop = Arc::new(AtomicBool::new(false));
        let stop_accept = stop.clone();
        let accept_hub = hub.clone();
        let accept_active = active;
        let accept_shared: Vec<Arc<PollerShared>> =
            pollers.iter().map(|(s, _)| s.clone()).collect();
        let max_connections = cfg.max_connections;
        let accept_thread = std::thread::Builder::new()
            .name("reghd-rgnp-accept".to_string())
            .spawn(move || {
                let mut next = 0usize;
                while !stop_accept.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((mut stream, _peer)) => {
                            if max_connections > 0
                                && accept_active.load(Ordering::SeqCst) >= max_connections
                            {
                                // Over the cap: one explicit BUSY frame,
                                // then close (the socket is still in its
                                // default blocking mode here).
                                accept_hub
                                    .connections_rejected
                                    .fetch_add(1, Ordering::Relaxed);
                                let mut busy = Vec::with_capacity(13);
                                frame::encode_empty_reply(&mut busy, status::BUSY, 0);
                                let _ = stream.write_all(&busy);
                                continue;
                            }
                            accept_hub.connections.fetch_add(1, Ordering::Relaxed);
                            accept_active.fetch_add(1, Ordering::SeqCst);
                            let shard = &accept_shared[next % accept_shared.len()];
                            next += 1;
                            lock_unpoisoned(&shard.inbox).conns.push(stream);
                            shard.wake.wake();
                        }
                        Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            })
            .map_err(ServeError::Spawn)?;

        Ok(NetServerHandle {
            local_addr,
            stop,
            accept_thread: Some(accept_thread),
            pollers,
            hub,
            batcher,
            shed,
            injector,
        })
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod imp {
    use super::*;

    /// Placeholder handle on platforms without the epoll fast path; cannot
    /// be constructed because [`serve_rgnp`] always errors there.
    #[derive(Debug)]
    pub struct NetServerHandle {
        never: std::convert::Infallible,
    }

    impl NetServerHandle {
        /// The bound address (unreachable on this platform).
        pub fn local_addr(&self) -> SocketAddr {
            match self.never {}
        }

        /// The metrics hub (unreachable on this platform).
        pub fn metrics(&self) -> Arc<MetricsHub> {
            match self.never {}
        }

        /// The shed controller (unreachable on this platform).
        pub fn shed(&self) -> Option<Arc<ShedController>> {
            match self.never {}
        }

        /// The fault injector (unreachable on this platform).
        pub fn injector(&self) -> Arc<FaultInjector> {
            match self.never {}
        }

        /// Shutdown (unreachable on this platform).
        pub fn shutdown(self) -> Vec<String> {
            match self.never {}
        }
    }

    /// The RGNP front-end requires the Linux epoll fast path; use the
    /// legacy line server (`serve --proto line`) elsewhere.
    ///
    /// # Errors
    ///
    /// Always `ServeError::Io(Unsupported)` on this platform.
    pub fn serve_rgnp(
        _cfg: NetConfig,
        _registry: Arc<ModelRegistry>,
    ) -> Result<NetServerHandle, ServeError> {
        Err(ServeError::Io(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "RGNP front-end requires Linux epoll (x86_64/aarch64)",
        )))
    }
}

pub use imp::{serve_rgnp, NetServerHandle};
