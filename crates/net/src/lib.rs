//! `reghd-net` — event-driven RGNP front-end for the RegHD serving stack.
//!
//! The legacy line protocol (`reghd-serve`) spends one OS thread per
//! connection; at 10k connections that is 10k stacks and a scheduler
//! meltdown. This crate replaces the transport layer with a readiness
//! model while reusing every piece of the PR 7 serving machinery
//! (registry, batcher, workers, shed, deadlines) unchanged:
//!
//! * [`sys`]: a dependency-free epoll + wakeup-pipe layer built on raw
//!   Linux syscalls (the same direct-syscall idiom as `reghd-store`'s
//!   mmap layer), gated to `linux` on `x86_64`/`aarch64`.
//! * [`frame`]: the **RGNP v1** codec — length-prefixed binary frames
//!   with explicit request ids, so clients pipeline requests and the
//!   server completes them out of order (see `docs/PROTOCOL.md`).
//! * [`server`]: a fixed poller-thread pool multiplexing all
//!   connections, with per-connection write-budget backpressure and
//!   idle/reply timeouts; model math still runs on the worker pool.
//! * [`client`]: a small blocking RGNP client for tests, the CLI, and
//!   the chaos harness.
//! * [`loadgen`]: an open-loop (fixed offered rate) load generator that
//!   reports latency quantiles without coordinated omission.
//!
//! On non-Linux platforms the codec and config types still build, but
//! [`server::serve_rgnp`] and the loadgen return `Unsupported` errors —
//! use the legacy line front-end there.

#![deny(unsafe_code)]
#![warn(missing_docs)]

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub(crate) mod sys;

pub mod client;
pub mod frame;
pub mod loadgen;
pub mod server;

pub use client::RgnpClient;
pub use loadgen::{LoadConfig, LoadReport};
pub use server::{serve_rgnp, NetConfig, NetServerHandle};
