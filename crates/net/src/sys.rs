//! Raw `epoll`/`pipe2` syscalls — the only `unsafe` in the crate.
//!
//! The workspace is `std`-only and `std` exposes no readiness API, so the
//! four syscalls the event loop needs (`epoll_create1`, `epoll_ctl`,
//! `epoll_wait`/`epoll_pwait`, `pipe2`) are issued directly via inline
//! assembly, the same approach `reghd-store` uses for `mmap`. Everything
//! above this module works with safe wrappers: [`Epoll`] (a registration
//! table plus a `wait` that yields decoded [`Event`]s) and [`WakePipe`]
//! (a non-blocking self-pipe that lets worker threads interrupt a poller
//! blocked in `epoll_wait`).
//!
//! This module only compiles on Linux x86_64/aarch64; the crate's public
//! entry points return an `Unsupported` error elsewhere.
#![allow(unsafe_code)]

use std::io;

#[cfg(target_arch = "x86_64")]
unsafe fn syscall6(nr: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
    let ret: isize;
    core::arch::asm!(
        "syscall",
        inlateout("rax") nr => ret,
        in("rdi") a,
        in("rsi") b,
        in("rdx") c,
        in("r10") d,
        in("r8") e,
        in("r9") f,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack),
    );
    ret
}

#[cfg(target_arch = "aarch64")]
unsafe fn syscall6(nr: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
    let ret: isize;
    core::arch::asm!(
        "svc 0",
        in("x8") nr,
        inlateout("x0") a => ret,
        in("x1") b,
        in("x2") c,
        in("x3") d,
        in("x4") e,
        in("x5") f,
        options(nostack),
    );
    ret
}

#[cfg(target_arch = "x86_64")]
mod nr {
    pub const READ: usize = 0;
    pub const WRITE: usize = 1;
    pub const CLOSE: usize = 3;
    pub const EPOLL_CTL: usize = 233;
    pub const EPOLL_PWAIT: usize = 281;
    pub const EPOLL_CREATE1: usize = 291;
    pub const PIPE2: usize = 293;
}

#[cfg(target_arch = "aarch64")]
mod nr {
    pub const READ: usize = 63;
    pub const WRITE: usize = 64;
    pub const CLOSE: usize = 57;
    pub const EPOLL_CTL: usize = 21;
    pub const EPOLL_PWAIT: usize = 22;
    pub const EPOLL_CREATE1: usize = 20;
    pub const PIPE2: usize = 59;
}

const EPOLL_CLOEXEC: usize = 0o2000000;
const O_CLOEXEC: usize = 0o2000000;
const O_NONBLOCK: usize = 0o4000;

const EPOLL_CTL_ADD: usize = 1;
const EPOLL_CTL_DEL: usize = 2;
const EPOLL_CTL_MOD: usize = 3;

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;

const EINTR: i32 = 4;
const EAGAIN: i32 = 11;

/// Converts a raw syscall return into `io::Result`.
fn check(ret: isize) -> io::Result<usize> {
    if (-4095..0).contains(&ret) {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

/// The kernel's `epoll_event`. On x86_64 the ABI packs the struct (12
/// bytes); every other architecture uses natural alignment (16 bytes).
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct RawEvent {
    events: u32,
    data: u64,
}

#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy)]
struct RawEvent {
    events: u32,
    data: u64,
}

/// One decoded readiness event.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Readable (`EPOLLIN`) — includes a peer half-close (`EPOLLRDHUP`),
    /// which surfaces as a zero-byte read.
    pub readable: bool,
    /// Writable (`EPOLLOUT`).
    pub writable: bool,
    /// Error or hang-up (`EPOLLERR`/`EPOLLHUP`/`EPOLLRDHUP`): the
    /// connection is (half-)dead and should be torn down after the final
    /// read drains.
    pub closed: bool,
}

/// An epoll instance plus its event buffer.
#[derive(Debug)]
pub struct Epoll {
    fd: i32,
    raw: Vec<u64>, // RawEvent storage, kept as u64s for easy zero-init
    decoded: Vec<Event>,
}

impl Epoll {
    /// Creates an epoll instance sized to decode up to `capacity` events
    /// per [`Epoll::wait`] call.
    pub fn new(capacity: usize) -> io::Result<Self> {
        let fd = check(unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) })?;
        let capacity = capacity.max(1);
        // Over-allocate the raw buffer: RawEvent is at most 16 bytes.
        let words = capacity * 2 + 2;
        Ok(Self {
            fd: fd as i32,
            raw: vec![0u64; words],
            decoded: Vec::with_capacity(capacity),
        })
    }

    fn ctl(&self, op: usize, fd: i32, events: u32, token: u64) -> io::Result<()> {
        let ev = RawEvent {
            events,
            data: token,
        };
        let ptr = if op == EPOLL_CTL_DEL {
            0usize
        } else {
            std::ptr::addr_of!(ev) as usize
        };
        check(unsafe { syscall6(nr::EPOLL_CTL, self.fd as usize, op, fd as usize, ptr, 0, 0) })?;
        Ok(())
    }

    /// Registers `fd` under `token` with the given interest mask.
    pub fn add(&self, fd: i32, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest | EPOLLRDHUP, token)
    }

    /// Changes the interest mask of an already-registered `fd`.
    pub fn modify(&self, fd: i32, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest | EPOLLRDHUP, token)
    }

    /// Deregisters `fd`.
    pub fn delete(&self, fd: i32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks for up to `timeout_ms` (`-1`: forever) and returns the ready
    /// events. An interrupting signal yields an empty slice.
    pub fn wait(&mut self, timeout_ms: i32) -> io::Result<&[Event]> {
        let max = self.decoded.capacity();
        // `epoll_pwait` with a null sigmask behaves exactly like
        // `epoll_wait`; aarch64 only provides the former.
        let n = match check(unsafe {
            syscall6(
                nr::EPOLL_PWAIT,
                self.fd as usize,
                self.raw.as_mut_ptr() as usize,
                max,
                timeout_ms as isize as usize,
                0,
                8,
            )
        }) {
            Ok(n) => n,
            Err(e) if e.raw_os_error() == Some(EINTR) => 0,
            Err(e) => return Err(e),
        };
        self.decoded.clear();
        let base = self.raw.as_ptr() as *const RawEvent;
        for i in 0..n.min(max) {
            // In-bounds: the kernel wrote `n <= max` events into `raw`,
            // whose allocation covers `max` RawEvents.
            let ev = unsafe { std::ptr::read_unaligned(base.add(i)) };
            let bits = ev.events;
            self.decoded.push(Event {
                token: ev.data,
                readable: bits & (EPOLLIN | EPOLLRDHUP) != 0,
                writable: bits & EPOLLOUT != 0,
                closed: bits & (EPOLLERR | EPOLLHUP) != 0,
            });
        }
        Ok(&self.decoded)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe {
            let _ = syscall6(nr::CLOSE, self.fd as usize, 0, 0, 0, 0, 0);
        }
    }
}

/// A non-blocking self-pipe used to wake a poller out of `epoll_wait`.
///
/// The read end is registered in the poller's epoll set; any thread
/// holding the pipe can [`WakePipe::wake`] it. Writes that find the pipe
/// full are dropped — one pending byte is enough to wake the poller, which
/// drains the pipe completely on every wakeup.
#[derive(Debug)]
pub struct WakePipe {
    read_fd: i32,
    write_fd: i32,
}

// Both fds are used through &self with kernel-atomic read/write; the
// struct owns them until Drop.
unsafe impl Send for WakePipe {}
unsafe impl Sync for WakePipe {}

impl WakePipe {
    /// Creates the pipe with both ends non-blocking.
    pub fn new() -> io::Result<Self> {
        let mut fds = [0i32; 2];
        check(unsafe {
            syscall6(
                nr::PIPE2,
                fds.as_mut_ptr() as usize,
                O_NONBLOCK | O_CLOEXEC,
                0,
                0,
                0,
                0,
            )
        })?;
        Ok(Self {
            read_fd: fds[0],
            write_fd: fds[1],
        })
    }

    /// The fd to register for `EPOLLIN` in the poller's epoll set.
    pub fn read_fd(&self) -> i32 {
        self.read_fd
    }

    /// Wakes the poller. Never blocks; a full pipe already guarantees a
    /// pending wakeup, so `EAGAIN` is success.
    pub fn wake(&self) {
        let byte = [1u8];
        loop {
            let ret = unsafe {
                syscall6(
                    nr::WRITE,
                    self.write_fd as usize,
                    byte.as_ptr() as usize,
                    1,
                    0,
                    0,
                    0,
                )
            };
            match check(ret) {
                Err(e) if e.raw_os_error() == Some(EINTR) => continue,
                _ => return, // written, EAGAIN (pipe full), or a dead pipe
            }
        }
    }

    /// Drains every pending wakeup byte.
    pub fn drain(&self) {
        let mut buf = [0u8; 256];
        loop {
            let ret = unsafe {
                syscall6(
                    nr::READ,
                    self.read_fd as usize,
                    buf.as_mut_ptr() as usize,
                    buf.len(),
                    0,
                    0,
                    0,
                )
            };
            match check(ret) {
                Ok(0) => return,
                Ok(_) => continue,
                Err(e) if e.raw_os_error() == Some(EINTR) => continue,
                Err(e) if e.raw_os_error() == Some(EAGAIN) => return,
                Err(_) => return,
            }
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        unsafe {
            let _ = syscall6(nr::CLOSE, self.read_fd as usize, 0, 0, 0, 0, 0);
            let _ = syscall6(nr::CLOSE, self.write_fd as usize, 0, 0, 0, 0, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn wake_pipe_roundtrip() {
        let pipe = WakePipe::new().unwrap();
        let mut ep = Epoll::new(8).unwrap();
        ep.add(pipe.read_fd(), 42, EPOLLIN).unwrap();
        // Nothing pending: zero-timeout wait sees nothing.
        assert!(ep.wait(0).unwrap().is_empty());
        pipe.wake();
        pipe.wake(); // coalesces
        let evs = ep.wait(1000).unwrap();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].token, 42);
        assert!(evs[0].readable);
        pipe.drain();
        assert!(ep.wait(0).unwrap().is_empty());
    }

    #[test]
    fn epoll_sees_tcp_readability() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let mut ep = Epoll::new(8).unwrap();
        use std::os::fd::AsRawFd;
        ep.add(server_side.as_raw_fd(), 7, EPOLLIN).unwrap();
        assert!(ep.wait(0).unwrap().is_empty());

        client.write_all(b"ping").unwrap();
        let evs = ep.wait(1000).unwrap();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].token, 7);
        assert!(evs[0].readable);

        let mut s = server_side;
        let mut buf = [0u8; 8];
        let n = s.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");

        // Interest can be switched to write-only and back.
        ep.modify(s.as_raw_fd(), 7, EPOLLOUT).unwrap();
        let evs = ep.wait(1000).unwrap();
        assert!(evs.iter().any(|e| e.token == 7 && e.writable));
        ep.delete(s.as_raw_fd()).unwrap();
        drop(client);
        assert!(ep.wait(50).unwrap().is_empty());
    }
}
