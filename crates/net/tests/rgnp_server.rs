//! Live-socket tests for the RGNP front-end: framing robustness
//! (fragmented reads, pipelined bursts, oversized frames), protocol
//! semantics, and admission control.

#![cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]

use reghd_net::client::PredictReply;
use reghd_net::frame::{self, status, FrameBuf, Step};
use reghd_net::{serve_rgnp, NetConfig, NetServerHandle, RgnpClient};
use reghd_serve::bundle;
use reghd_serve::registry::ModelRegistry;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn toy_registry() -> Arc<ModelRegistry> {
    let features: Vec<Vec<f32>> = (0..40).map(|i| vec![i as f32, (i * 2) as f32]).collect();
    let targets: Vec<f32> = features.iter().map(|r| r[0] + r[1]).collect();
    let ds = datasets::Dataset::new("toy", features, targets);
    let (b, _) = bundle::train(&ds, 128, 2, 3, 11, false).unwrap();
    let registry = Arc::new(ModelRegistry::new());
    registry.load_bytes("toy", &b.to_bytes().unwrap()).unwrap();
    registry
}

fn start_server(cfg_mut: impl FnOnce(&mut NetConfig)) -> (NetServerHandle, Arc<ModelRegistry>) {
    let registry = toy_registry();
    let mut cfg = NetConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        pollers: 2,
        ..NetConfig::default()
    };
    cfg_mut(&mut cfg);
    let handle = serve_rgnp(cfg, registry.clone()).unwrap();
    (handle, registry)
}

/// Reads frames from a raw stream until `n` have arrived.
fn read_frames(stream: &mut TcpStream, n: usize) -> Vec<frame::Frame> {
    let mut buf = FrameBuf::new();
    let mut scratch = [0u8; 4096];
    let mut out = Vec::new();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    while out.len() < n {
        loop {
            match buf.next_frame(frame::DEFAULT_MAX_FRAME) {
                Step::Ready(f) => out.push(f),
                Step::Incomplete => break,
                Step::Violation(msg) => panic!("client saw violation: {msg}"),
            }
        }
        if out.len() >= n {
            break;
        }
        let got = stream.read(&mut scratch).unwrap();
        assert!(got > 0, "server closed early after {} frames", out.len());
        buf.extend(&scratch[..got]);
    }
    out
}

#[test]
fn predict_and_control_opcodes_over_loopback() {
    let (handle, _registry) = start_server(|_| {});
    let addr = handle.local_addr().to_string();
    let mut c = RgnpClient::connect(&addr).unwrap();
    c.set_timeout(Some(Duration::from_secs(10))).unwrap();
    c.ping().unwrap();
    match c.predict("toy", &[3.0, 4.0]).unwrap() {
        PredictReply::Ok(y) => assert!(y.is_finite()),
        other => panic!("expected ok, got {other:?}"),
    }
    assert_eq!(
        c.predict("ghost", &[1.0, 2.0]).unwrap(),
        PredictReply::Err("unknown model ghost".to_string())
    );
    assert_eq!(
        c.predict("toy", &[f32::NAN, 1.0]).unwrap(),
        PredictReply::Err("non-finite feature value".to_string())
    );
    let stats = c.stats().unwrap();
    assert!(stats.contains("server connections="), "{stats}");
    let list = c.list().unwrap();
    assert!(list.contains("model toy"), "{list}");
    assert_eq!(
        c.train_status().unwrap(),
        Err("no trainer attached".to_string())
    );
    let final_stats = handle.shutdown();
    assert!(!final_stats.is_empty());
}

#[test]
fn batch_predict_matches_singles_bit_exactly() {
    let (handle, _registry) = start_server(|_| {});
    let addr = handle.local_addr().to_string();
    let mut c = RgnpClient::connect(&addr).unwrap();
    c.set_timeout(Some(Duration::from_secs(10))).unwrap();
    let rows = vec![vec![1.0, 2.0], vec![3.5, -1.0], vec![0.0, 9.0]];
    let batch = c.predict_batch("toy", &rows).unwrap();
    assert_eq!(batch.len(), 3);
    for (row, (st, y)) in rows.iter().zip(&batch) {
        assert_eq!(*st, status::OK);
        match c.predict("toy", row).unwrap() {
            PredictReply::Ok(single) => assert_eq!(single.to_bits(), y.to_bits()),
            other => panic!("expected ok, got {other:?}"),
        }
    }
    handle.shutdown();
}

#[test]
fn fragmented_byte_at_a_time_request_still_parses() {
    let (handle, _registry) = start_server(|_| {});
    let mut s = TcpStream::connect(handle.local_addr()).unwrap();
    s.set_nodelay(true).unwrap();
    let mut req = Vec::new();
    frame::encode_predict(&mut req, 7, "toy", &[3.0, 4.0]);
    for b in &req {
        s.write_all(std::slice::from_ref(b)).unwrap();
        s.flush().unwrap();
    }
    let frames = read_frames(&mut s, 1);
    assert_eq!(frames[0].req_id, 7);
    assert_eq!(frames[0].kind, status::OK);
    let y = frame::decode_value_reply(&frames[0].payload).unwrap();
    assert!(y.is_finite());
    handle.shutdown();
}

#[test]
fn pipelined_burst_of_100_frames_all_answered() {
    let (handle, _registry) = start_server(|_| {});
    let mut s = TcpStream::connect(handle.local_addr()).unwrap();
    let mut burst = Vec::new();
    for id in 1..=100u64 {
        burst.extend_from_slice(&{
            let mut one = Vec::new();
            frame::encode_predict(&mut one, id, "toy", &[id as f32, 2.0 * id as f32]);
            one
        });
    }
    s.write_all(&burst).unwrap();
    let frames = read_frames(&mut s, 100);
    let mut seen = [false; 101];
    for f in &frames {
        assert!(f.kind == status::OK || f.kind == status::DEGRADED, "{f:?}");
        let id = f.req_id as usize;
        assert!((1..=100).contains(&id), "unexpected req id {id}");
        assert!(!seen[id], "req id {id} answered twice");
        seen[id] = true;
        frame::decode_value_reply(&f.payload).unwrap();
    }
    handle.shutdown();
}

#[test]
fn oversized_frame_gets_err_and_close_but_server_survives() {
    let (handle, _registry) = start_server(|c| c.max_frame = 4096);
    let mut s = TcpStream::connect(handle.local_addr()).unwrap();
    // Declare a frame far over the cap; the server must not buffer it.
    s.write_all(&8192u32.to_le_bytes()).unwrap();
    s.write_all(&[0u8; 64]).unwrap();
    let frames = read_frames(&mut s, 1);
    assert_eq!(frames[0].kind, status::ERR);
    assert_eq!(frames[0].req_id, 0);
    // After the terminal ERR the connection closes.
    let mut rest = Vec::new();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());
    // The server itself is unharmed: a new connection predicts fine.
    let mut c = RgnpClient::connect(&handle.local_addr().to_string()).unwrap();
    c.set_timeout(Some(Duration::from_secs(10))).unwrap();
    assert!(matches!(
        c.predict("toy", &[1.0, 2.0]).unwrap(),
        PredictReply::Ok(_)
    ));
    assert!(
        handle
            .metrics()
            .bad_requests
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );
    handle.shutdown();
}

#[test]
fn zero_length_frame_is_a_violation() {
    let (handle, _registry) = start_server(|_| {});
    let mut s = TcpStream::connect(handle.local_addr()).unwrap();
    // len < 9 can never hold the kind + req-id header.
    s.write_all(&3u32.to_le_bytes()).unwrap();
    s.write_all(&[0u8; 3]).unwrap();
    let frames = read_frames(&mut s, 1);
    assert_eq!(frames[0].kind, status::ERR);
    handle.shutdown();
}

#[test]
fn connection_cap_rejects_with_busy_frame() {
    let (handle, _registry) = start_server(|c| c.max_connections = 1);
    let addr = handle.local_addr().to_string();
    let mut first = RgnpClient::connect(&addr).unwrap();
    first.set_timeout(Some(Duration::from_secs(10))).unwrap();
    first.ping().unwrap(); // ensure the first conn is registered
    let mut second = TcpStream::connect(handle.local_addr()).unwrap();
    let frames = read_frames(&mut second, 1);
    assert_eq!(frames[0].kind, status::BUSY);
    let mut rest = Vec::new();
    second
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    second.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "rejected conn must be closed");
    assert_eq!(
        handle
            .metrics()
            .connections_rejected
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    // The accepted connection still works.
    first.ping().unwrap();
    handle.shutdown();
}

#[test]
fn corrupt_flagged_model_answers_degraded_inline() {
    let (handle, registry) = start_server(|_| {});
    registry
        .get("toy")
        .unwrap()
        .corrupt
        .store(true, std::sync::atomic::Ordering::Relaxed);
    let mut c = RgnpClient::connect(&handle.local_addr().to_string()).unwrap();
    c.set_timeout(Some(Duration::from_secs(10))).unwrap();
    match c.predict("toy", &[3.0, 4.0]).unwrap() {
        PredictReply::Degraded(y) => assert!(y.is_finite()),
        other => panic!("expected degraded, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn requested_binary_tier_answers_degraded_with_binary_value() {
    let (handle, registry) = start_server(|_| {});
    let mut c = RgnpClient::connect(&handle.local_addr().to_string()).unwrap();
    c.set_timeout(Some(Duration::from_secs(10))).unwrap();
    let row = vec![3.0f32, 4.0];
    let expected = registry
        .get("toy")
        .unwrap()
        .bundle
        .predict_binary(std::slice::from_ref(&row))
        .unwrap()[0];
    match c
        .predict_tier("toy", &row, frame::PredictionTier::Binary)
        .unwrap()
    {
        PredictReply::Degraded(y) => assert_eq!(y, expected),
        other => panic!("expected degraded (binary tier), got {other:?}"),
    }
    // The same row on the default tier still answers OK at full precision.
    match c.predict("toy", &row).unwrap() {
        PredictReply::Ok(y) => assert!(y.is_finite()),
        other => panic!("expected ok, got {other:?}"),
    }
    handle.shutdown();
}
