//! Concept-drift detection on the prequential error stream.
//!
//! The trainer feeds each predict-then-train absolute error into a
//! [`DriftDetector`]; when the detector fires, the pipeline responds (see
//! `pipeline::DriftAction`) and resets the detector so consecutive alarms
//! describe distinct drift events.
//!
//! Two detectors ship here, both dependency-free:
//!
//! * [`PageHinkley`] — the classic sequential change-point test: it
//!   accumulates deviations of the error above its running mean and fires
//!   when the accumulated drift exceeds a threshold `lambda`. Robust to
//!   noise, tuned by `delta` (minimum deviation considered meaningful).
//! * [`EwmaDetector`] — two exponentially weighted averages of the error
//!   at different time constants; drift is a fast average exceeding a
//!   multiple of the slow one. Simpler, faster to fire, easier to reason
//!   about on bursty streams.

/// Sequential detector over the prequential absolute-error stream.
pub trait DriftDetector: Send {
    /// Feeds the next absolute prequential error. Returns `true` when the
    /// detector signals a drift at this sample.
    fn observe(&mut self, err: f64) -> bool;

    /// Clears internal state (the trainer calls this after responding to a
    /// drift, so the next alarm describes a fresh event).
    fn reset(&mut self);

    /// Short label for status lines.
    fn label(&self) -> &'static str;
}

/// Page–Hinkley change-point test on the error magnitude.
///
/// Maintains the running mean of observed errors and the cumulative sum
/// `m_t = Σ (err_i − mean_i − delta)`; drift fires when
/// `m_t − min(m_1..m_t) > lambda`, i.e. when the error has stayed
/// meaningfully above its historical mean long enough to accumulate
/// `lambda` worth of excess.
#[derive(Debug, Clone)]
pub struct PageHinkley {
    /// Minimum deviation from the mean that counts toward the alarm.
    delta: f64,
    /// Accumulated-excess threshold that fires the alarm.
    lambda: f64,
    /// Samples ignored after construction/reset while the mean settles.
    warmup: u64,
    count: u64,
    mean: f64,
    cum: f64,
    cum_min: f64,
}

impl PageHinkley {
    /// Creates a detector. `delta` is the deviation dead-band, `lambda`
    /// the accumulated-excess threshold, `warmup` the number of initial
    /// samples used only to settle the running mean.
    ///
    /// # Panics
    ///
    /// Panics if `delta` or `lambda` is not a positive finite number.
    pub fn new(delta: f64, lambda: f64, warmup: u64) -> Self {
        assert!(delta.is_finite() && delta > 0.0, "delta must be positive");
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "lambda must be positive"
        );
        Self {
            delta,
            lambda,
            warmup,
            count: 0,
            mean: 0.0,
            cum: 0.0,
            cum_min: 0.0,
        }
    }
}

impl Default for PageHinkley {
    /// Parameters that behave well on unit-scale error streams: dead-band
    /// 0.05, threshold 15, 50-sample warm-up.
    fn default() -> Self {
        Self::new(0.05, 15.0, 50)
    }
}

impl DriftDetector for PageHinkley {
    fn observe(&mut self, err: f64) -> bool {
        if !err.is_finite() {
            return false;
        }
        self.count += 1;
        let n = self.count as f64;
        self.mean += (err - self.mean) / n;
        if self.count <= self.warmup {
            return false;
        }
        self.cum += err - self.mean - self.delta;
        self.cum_min = self.cum_min.min(self.cum);
        self.cum - self.cum_min > self.lambda
    }

    fn reset(&mut self) {
        self.count = 0;
        self.mean = 0.0;
        self.cum = 0.0;
        self.cum_min = 0.0;
    }

    fn label(&self) -> &'static str {
        "page-hinkley"
    }
}

/// Fast-vs-slow EWMA threshold detector.
///
/// Tracks two EWMAs of the absolute error — a fast one (recent behaviour)
/// and a slow one (steady state). Drift fires when
/// `fast > ratio * slow + margin` after the warm-up, i.e. the recent error
/// has risen well clear of its long-run level.
#[derive(Debug, Clone)]
pub struct EwmaDetector {
    fast_alpha: f64,
    slow_alpha: f64,
    ratio: f64,
    /// Absolute floor added to the comparison so near-zero steady states
    /// don't alarm on noise.
    margin: f64,
    warmup: u64,
    count: u64,
    fast: f64,
    slow: f64,
}

impl EwmaDetector {
    /// Creates a detector; `fast_alpha` > `slow_alpha` are the EWMA gains,
    /// `ratio` the firing multiple, `warmup` the settling period.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < slow_alpha < fast_alpha <= 1` and `ratio > 1`.
    pub fn new(fast_alpha: f64, slow_alpha: f64, ratio: f64, margin: f64, warmup: u64) -> Self {
        assert!(
            0.0 < slow_alpha && slow_alpha < fast_alpha && fast_alpha <= 1.0,
            "need 0 < slow_alpha < fast_alpha <= 1"
        );
        assert!(ratio > 1.0, "ratio must exceed 1");
        assert!(margin >= 0.0 && margin.is_finite(), "margin must be >= 0");
        Self {
            fast_alpha,
            slow_alpha,
            ratio,
            margin,
            warmup,
            count: 0,
            fast: 0.0,
            slow: 0.0,
        }
    }
}

impl Default for EwmaDetector {
    /// Fast gain 0.1 (~10-sample memory), slow gain 0.005 (~200 samples),
    /// fire at 2× with a 0.05 margin after 50 samples.
    fn default() -> Self {
        Self::new(0.1, 0.005, 2.0, 0.05, 50)
    }
}

impl DriftDetector for EwmaDetector {
    fn observe(&mut self, err: f64) -> bool {
        if !err.is_finite() {
            return false;
        }
        self.count += 1;
        if self.count == 1 {
            self.fast = err;
            self.slow = err;
            return false;
        }
        self.fast += self.fast_alpha * (err - self.fast);
        self.slow += self.slow_alpha * (err - self.slow);
        if self.count <= self.warmup {
            return false;
        }
        self.fast > self.ratio * self.slow + self.margin
    }

    fn reset(&mut self) {
        self.count = 0;
        self.fast = 0.0;
        self.slow = 0.0;
    }

    fn label(&self) -> &'static str {
        "ewma"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A steady noise regime followed by a level shift at `shift_at`.
    fn shifted_stream(n: usize, shift_at: usize, low: f64, high: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let base = if i < shift_at { low } else { high };
                // Deterministic jitter, ±10%.
                base * (1.0 + 0.1 * ((i * 7919 % 13) as f64 / 6.0 - 1.0))
            })
            .collect()
    }

    fn first_alarm(det: &mut dyn DriftDetector, errs: &[f64]) -> Option<usize> {
        errs.iter().position(|&e| det.observe(e))
    }

    #[test]
    fn page_hinkley_fires_after_shift_not_before() {
        let errs = shifted_stream(2000, 1000, 0.2, 1.5);
        let mut det = PageHinkley::default();
        let alarm = first_alarm(&mut det, &errs).expect("must fire");
        assert!(alarm >= 1000, "fired at {alarm}, before the shift");
        assert!(alarm < 1200, "fired at {alarm}, too slow");
    }

    #[test]
    fn ewma_fires_after_shift_not_before() {
        let errs = shifted_stream(2000, 1000, 0.2, 1.5);
        let mut det = EwmaDetector::default();
        let alarm = first_alarm(&mut det, &errs).expect("must fire");
        assert!(alarm >= 1000, "fired at {alarm}, before the shift");
        assert!(alarm < 1100, "fired at {alarm}, too slow");
    }

    #[test]
    fn detectors_stay_quiet_on_stationary_noise() {
        let errs = shifted_stream(3000, 3000, 0.5, 0.5); // never shifts
        let mut ph = PageHinkley::default();
        let mut ew = EwmaDetector::default();
        assert_eq!(first_alarm(&mut ph, &errs), None);
        assert_eq!(first_alarm(&mut ew, &errs), None);
    }

    #[test]
    fn reset_rearms_the_detector() {
        let errs = shifted_stream(800, 400, 0.2, 2.0);
        let mut det = EwmaDetector::default();
        let alarm = first_alarm(&mut det, &errs).unwrap();
        det.reset();
        // Re-feed the post-shift regime from scratch: warm-up applies
        // again, the slow average re-settles at the new level, no alarm.
        let calm: Vec<f64> = errs[alarm..].to_vec();
        assert_eq!(first_alarm(&mut det, &calm), None);
    }

    #[test]
    fn non_finite_errors_are_ignored() {
        let mut det = PageHinkley::default();
        for _ in 0..100 {
            assert!(!det.observe(f64::NAN));
            assert!(!det.observe(f64::INFINITY));
        }
        assert!(!det.observe(0.3));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(PageHinkley::default().label(), "page-hinkley");
        assert_eq!(EwmaDetector::default().label(), "ewma");
    }
}
