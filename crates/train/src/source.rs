//! Pluggable sample sources for the streaming trainer.
//!
//! A [`SampleSource`] yields raw-unit `(features, target)` pairs one at a
//! time — the single-pass regime of the paper's §2.3 — until it is
//! exhausted (finite replays) or the trainer's sample budget runs out
//! (endless generators). Three adapters ship here:
//!
//! * [`DriftSource`] — wraps a [`datasets::drift::DriftStream`], the
//!   synthetic non-stationary generator;
//! * [`CsvReplaySource`] — replays a loaded [`Dataset`] row by row, as a
//!   recorded stream;
//! * [`TcpFeedSource`] — reads samples off a TCP connection, one CSV row
//!   per line with the target in the last column (the same row format the
//!   dataset CSV loader accepts, transplanted onto the serve subsystem's
//!   line-oriented framing).

use datasets::drift::DriftStream;
use datasets::Dataset;
use std::io::{BufRead, BufReader};
use std::net::TcpStream;

/// An ordered stream of raw-unit training samples.
pub trait SampleSource: Send {
    /// Draws the next `(features, target)` pair, or `None` when the
    /// stream is exhausted.
    fn next_sample(&mut self) -> Option<(Vec<f32>, f32)>;

    /// Feature width of every sample this source yields.
    fn num_features(&self) -> usize;

    /// Short human-readable label for logs and status lines.
    fn label(&self) -> String;
}

/// Endless synthetic source backed by a [`DriftStream`].
#[derive(Debug, Clone)]
pub struct DriftSource {
    stream: DriftStream,
    features: usize,
    label: String,
}

impl DriftSource {
    /// Wraps a drift stream. The label records the stream's parameters so
    /// `train-status` consumers can tell sources apart.
    pub fn new(stream: DriftStream, features: usize, label: impl Into<String>) -> Self {
        Self {
            stream,
            features,
            label: label.into(),
        }
    }
}

impl SampleSource for DriftSource {
    fn next_sample(&mut self) -> Option<(Vec<f32>, f32)> {
        Some(self.stream.next_sample())
    }

    fn num_features(&self) -> usize {
        self.features
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

/// Finite source replaying a loaded dataset in row order.
#[derive(Debug, Clone)]
pub struct CsvReplaySource {
    ds: Dataset,
    cursor: usize,
}

impl CsvReplaySource {
    /// Replays `ds` from its first row.
    pub fn new(ds: Dataset) -> Self {
        Self { ds, cursor: 0 }
    }

    /// Loads a CSV file (last column = target) and replays it.
    ///
    /// # Errors
    ///
    /// Propagates the loader's error message for unreadable or malformed
    /// files.
    pub fn from_path(path: &str) -> Result<Self, String> {
        let ds = datasets::csv::load_csv(path).map_err(|e| e.to_string())?;
        Ok(Self::new(ds))
    }

    /// Rows remaining to be replayed.
    pub fn remaining(&self) -> usize {
        self.ds.len() - self.cursor
    }
}

impl SampleSource for CsvReplaySource {
    fn next_sample(&mut self) -> Option<(Vec<f32>, f32)> {
        if self.cursor >= self.ds.len() {
            return None;
        }
        let (x, y) = self.ds.sample(self.cursor);
        self.cursor += 1;
        Some((x.to_vec(), y))
    }

    fn num_features(&self) -> usize {
        self.ds.num_features()
    }

    fn label(&self) -> String {
        format!("csv:{}", self.ds.name)
    }
}

/// Source reading samples from a line-oriented TCP feed.
///
/// One sample per line: comma-separated numbers, last value the target
/// (e.g. `0.5,-1.2,3.4` is a 2-feature sample with target `3.4`). Blank
/// lines and lines starting with `#` are skipped; a malformed or
/// wrong-width line is counted ([`TcpFeedSource::rejected`]) and skipped
/// rather than killing the stream. The stream ends when the peer closes
/// the connection.
#[derive(Debug)]
pub struct TcpFeedSource {
    reader: BufReader<TcpStream>,
    features: usize,
    peer: String,
    rejected: u64,
}

impl TcpFeedSource {
    /// Connects to `addr` and declares the expected feature width (the
    /// trainer must size its encoder before the first line arrives).
    ///
    /// # Errors
    ///
    /// Connection failures, rendered as a string.
    pub fn connect(addr: &str, features: usize) -> Result<Self, String> {
        if features == 0 {
            return Err("feature width must be nonzero".to_string());
        }
        let stream =
            TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        Ok(Self {
            reader: BufReader::new(stream),
            features,
            peer: addr.to_string(),
            rejected: 0,
        })
    }

    /// Lines skipped because they failed to parse or had the wrong width.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    fn parse_line(&mut self, line: &str) -> Option<(Vec<f32>, f32)> {
        let vals: Result<Vec<f32>, _> = line.split(',').map(|t| t.trim().parse::<f32>()).collect();
        match vals {
            Ok(v) if v.len() == self.features + 1 && v.iter().all(|x| x.is_finite()) => {
                let y = v[self.features];
                Some((v[..self.features].to_vec(), y))
            }
            _ => {
                self.rejected += 1;
                None
            }
        }
    }
}

impl SampleSource for TcpFeedSource {
    fn next_sample(&mut self) -> Option<(Vec<f32>, f32)> {
        let mut line = String::new();
        loop {
            line.clear();
            match self.reader.read_line(&mut line) {
                Ok(0) | Err(_) => return None, // peer closed / socket error
                Ok(_) => {
                    let trimmed = line.trim();
                    if trimmed.is_empty() || trimmed.starts_with('#') {
                        continue;
                    }
                    if let Some(sample) = self.parse_line(trimmed) {
                        return Some(sample);
                    }
                }
            }
        }
    }

    fn num_features(&self) -> usize {
        self.features
    }

    fn label(&self) -> String {
        format!("tcp:{}", self.peer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::drift::DriftKind;
    use std::io::Write;
    use std::net::TcpListener;

    #[test]
    fn drift_source_is_endless_and_sized() {
        let stream = DriftStream::new(3, 100, DriftKind::Abrupt, 1);
        let mut src = DriftSource::new(stream, 3, "drift:abrupt");
        assert_eq!(src.num_features(), 3);
        for _ in 0..250 {
            let (x, y) = src.next_sample().unwrap();
            assert_eq!(x.len(), 3);
            assert!(y.is_finite());
        }
        assert_eq!(src.label(), "drift:abrupt");
    }

    #[test]
    fn csv_replay_yields_rows_in_order_then_ends() {
        let ds = Dataset::new("t", vec![vec![1.0, 2.0], vec![3.0, 4.0]], vec![10.0, 20.0]);
        let mut src = CsvReplaySource::new(ds);
        assert_eq!(src.num_features(), 2);
        assert_eq!(src.remaining(), 2);
        assert_eq!(src.next_sample(), Some((vec![1.0, 2.0], 10.0)));
        assert_eq!(src.next_sample(), Some((vec![3.0, 4.0], 20.0)));
        assert_eq!(src.next_sample(), None);
        assert_eq!(src.next_sample(), None, "exhaustion is sticky");
    }

    #[test]
    fn tcp_feed_parses_skips_and_ends_on_close() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let feeder = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            write!(
                s,
                "# header comment\n1.0,2.0,3.0\n\nnot,a,number\n4.0,5.0\n-1.5,0.5,2.5\n"
            )
            .unwrap();
            // Dropping `s` closes the connection → end of stream.
        });

        let mut src = TcpFeedSource::connect(&addr.to_string(), 2).unwrap();
        assert_eq!(src.next_sample(), Some((vec![1.0, 2.0], 3.0)));
        assert_eq!(src.next_sample(), Some((vec![-1.5, 0.5], 2.5)));
        assert_eq!(src.next_sample(), None);
        assert_eq!(src.rejected(), 2, "bad parse + wrong width");
        feeder.join().unwrap();
    }

    #[test]
    fn tcp_feed_rejects_zero_width() {
        assert!(TcpFeedSource::connect("127.0.0.1:1", 0).is_err());
    }
}
