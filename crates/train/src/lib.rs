//! # reghd-train — streaming training for RegHD models
//!
//! The single-pass, non-stationary half of the system: where `reghd-serve`
//! answers queries against frozen snapshots, this crate *produces* those
//! snapshots from a live sample stream, in the paper's §2.3 online regime
//! (one look at each sample, predict-then-train).
//!
//! The pieces, composable and individually testable:
//!
//! * [`source`] — pluggable [`source::SampleSource`] adapters: synthetic
//!   drift streams, CSV replays, and a line-protocol TCP feed;
//! * [`detect`] — [`detect::DriftDetector`] implementations (Page–Hinkley
//!   and a fast/slow-EWMA threshold) watching the prequential error;
//! * [`pipeline`] — the [`pipeline::Trainer`] tying them together:
//!   prequential updates, drift responses (worst-cluster reset or
//!   shadow-model promotion), atomic canary-carrying checkpoints, and
//!   hot-swap publication into a live `reghd_serve` registry.
//!
//! ```no_run
//! use datasets::drift::{DriftKind, DriftStream};
//! use reghd_train::detect::PageHinkley;
//! use reghd_train::pipeline::{Trainer, TrainerConfig};
//! use reghd_train::source::DriftSource;
//!
//! let mut source = DriftSource::new(
//!     DriftStream::new(4, 1000, DriftKind::Abrupt, 7),
//!     4,
//!     "drift:abrupt",
//! );
//! let cfg = TrainerConfig { max_samples: Some(5000), ..TrainerConfig::default() };
//! let mut trainer = Trainer::new(cfg, 4).with_detector(Box::new(PageHinkley::default()));
//! let report = trainer.run(&mut source).unwrap();
//! println!("drift events: {}", report.drift_events);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod detect;
pub mod pipeline;
pub mod source;

pub use detect::{DriftDetector, EwmaDetector, PageHinkley};
pub use pipeline::{DriftAction, PublishTarget, StoreTarget, TrainReport, Trainer, TrainerConfig};
pub use source::{CsvReplaySource, DriftSource, SampleSource, TcpFeedSource};
