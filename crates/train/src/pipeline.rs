//! The streaming training pipeline.
//!
//! [`Trainer::run`] drives one [`reghd::OnlineRegHd`] over a
//! [`SampleSource`] in the paper's single-pass regime (§2.3): each sample
//! is **predicted first, then trained on** (prequential evaluation), so
//! the error stream measures generalisation, not memorisation. On top of
//! that loop the pipeline layers:
//!
//! * **drift detection** — the absolute prequential error feeds a
//!   [`DriftDetector`]; an alarm triggers the configured [`DriftAction`]:
//!   either reset the cluster/model pair with the worst attributed error
//!   (fast, in-place forgetting) or train a fresh *shadow* model alongside
//!   the primary and promote it once its prequential error wins;
//! * **checkpointing** — every `checkpoint_every` samples the model is
//!   quantised, snapshotted into a canary-carrying `.rghd` bundle, written
//!   to disk **atomically** (temp file + rename), and — when a registry is
//!   attached — published into it, where the canary replay gates the swap;
//!   alongside the bundle, the raw online state is saved through
//!   `reghd::persist::save_online` so a later trainer can resume
//!   bit-exactly;
//! * **status** — counters stream into a shared
//!   [`reghd_serve::TrainStatus`], which the serve front-end renders for
//!   the `train-status` protocol command.
//!
//! Training always encodes in `TrigMode::Exact` (the trainer never flips
//! the knob, and freshly built encoders default to it): checkpoints,
//! canary predictions, and bit-exact resume all assume the training-time
//! arithmetic. The opt-in fast-trig mode is a *serving* knob
//! (`--trig fast`), and even there canary replays pin exact mode. The
//! per-sample update itself goes through the encoder's fused
//! `encode_both` (single projection pass for the real and binarised
//! encoding) inside [`reghd::OnlineRegHd`].

use crate::detect::DriftDetector;
use crate::source::SampleSource;
use encoding::EncoderSpec;
use reghd::config::RegHdConfig;
use reghd::{persist, OnlineRegHd};
use reghd_serve::registry::ModelRegistry;
use reghd_serve::status::TrainStatus;
use reghd_serve::ModelBundle;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::Arc;

/// How many recent raw rows are retained as canary candidates for the next
/// checkpoint's bundle.
const CANARY_WINDOW: usize = 64;

/// Total attempts (first try + retries) for a full store publication hit
/// by a transient I/O failure.
const STORE_PUBLISH_ATTEMPTS: usize = 3;

/// Backoff before the first store-publish retry; doubles per retry.
const STORE_PUBLISH_BACKOFF: std::time::Duration = std::time::Duration::from_micros(500);

/// How the pipeline responds to a detected drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftAction {
    /// Re-randomise the cluster (and zero the model) with the worst
    /// per-cluster prequential error — in-place forgetting of the stalest
    /// region of the input space.
    ResetWorstCluster,
    /// Start a fresh model training in parallel on the same stream and
    /// atomically promote it over the primary once it is old enough and
    /// its prequential error is lower.
    ShadowPromote,
}

/// Where checkpoints are published.
#[derive(Clone)]
pub struct PublishTarget {
    /// The live registry to publish into.
    pub registry: Arc<ModelRegistry>,
    /// Registry name the trainer owns (upserted on every checkpoint).
    pub name: String,
}

impl std::fmt::Debug for PublishTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PublishTarget")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

/// Where checkpoints are additionally published into a persistent model
/// store ([`reghd_store::ModelStore`]).
#[derive(Clone)]
pub struct StoreTarget {
    /// The store to publish into.
    pub store: Arc<reghd_store::ModelStore>,
    /// Store key the trainer owns.
    pub key: String,
}

impl std::fmt::Debug for StoreTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreTarget")
            .field("key", &self.key)
            .finish_non_exhaustive()
    }
}

/// Static configuration of a [`Trainer`].
#[derive(Debug)]
pub struct TrainerConfig {
    /// Hypervector dimensionality `D`.
    pub dim: usize,
    /// Cluster/model pairs `k`.
    pub models: usize,
    /// Master seed (the encoder derives its seed as `seed ^ 0xC11`, the
    /// bundle-format convention).
    pub seed: u64,
    /// Stop after this many samples (`None`: run until the source ends).
    pub max_samples: Option<u64>,
    /// Checkpoint + publish every N samples (`None` disables).
    pub checkpoint_every: Option<u64>,
    /// Directory for checkpoint artefacts (`None`: no on-disk artefacts;
    /// publication into the registry still happens).
    pub checkpoint_dir: Option<PathBuf>,
    /// Drift response; only meaningful when a detector is attached.
    pub drift_action: DriftAction,
    /// Minimum samples a shadow model must see before it can be promoted.
    pub shadow_min_age: u64,
    /// Record every |prequential error| in the report (tests/benches;
    /// unbounded memory on endless runs, so off by default).
    pub record_errors: bool,
    /// Row-parallelism for the trainer's batch-prediction sites — the
    /// checkpoint snapshot's canary capture/replay runs
    /// `RegHdRegressor::predict_batch` on this many threads (`0` =
    /// available parallelism, `1` = sequential). The per-sample
    /// prequential update is inherently one-row-at-a-time and is never
    /// parallelised; results are bit-identical for every setting.
    pub threads: usize,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self {
            dim: 2048,
            models: 4,
            seed: 0,
            max_samples: None,
            checkpoint_every: None,
            checkpoint_dir: None,
            drift_action: DriftAction::ResetWorstCluster,
            shadow_min_age: 200,
            record_errors: false,
            threads: 1,
        }
    }
}

/// What one [`Trainer::run`] did.
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    /// Samples consumed.
    pub samples: u64,
    /// Drift alarms raised by the detector.
    pub drift_events: u64,
    /// Checkpoints taken (bundle built; disk write and publication both
    /// hang off a checkpoint).
    pub checkpoints: u64,
    /// Successful registry publications.
    pub publications: u64,
    /// Publications refused by the registry's canary replay.
    pub canary_failures: u64,
    /// Successful store publications (full and delta).
    pub store_publications: u64,
    /// Store publications that shipped as a sparse delta instead of the
    /// full bundle (always `<= store_publications`).
    pub store_delta_publications: u64,
    /// Store publication attempts retried after transient I/O failures
    /// (each retry backs off exponentially before re-trying).
    pub store_publish_retries: u64,
    /// Cluster resets performed ([`DriftAction::ResetWorstCluster`]).
    pub cluster_resets: u64,
    /// Shadow models promoted ([`DriftAction::ShadowPromote`]).
    pub promotions: u64,
    /// Final prequential MSE (EWMA of squared predict-then-train errors).
    pub final_prequential_mse: f32,
    /// Per-sample |prequential error| (only with
    /// [`TrainerConfig::record_errors`]).
    pub errors: Vec<f32>,
}

struct Shadow {
    model: OnlineRegHd,
    age: u64,
}

/// Streaming trainer: owns the online model and the drift/checkpoint/
/// publication machinery around it.
pub struct Trainer {
    // (No Debug derive: the boxed detector and encoder trait objects
    // aren't Debug; render the status block instead.)
    cfg: TrainerConfig,
    spec: EncoderSpec,
    model: OnlineRegHd,
    detector: Option<Box<dyn DriftDetector>>,
    shadow: Option<Shadow>,
    publish: Option<PublishTarget>,
    store_publish: Option<StoreTarget>,
    /// Bytes and store version of the last successful store publication —
    /// the base the next checkpoint's delta is computed against.
    last_store_image: Option<(Vec<u8>, u64)>,
    status: Arc<TrainStatus>,
    recent: VecDeque<Vec<f32>>,
    report: TrainReport,
    last_checkpoint_at: u64,
}

impl Trainer {
    /// Builds a trainer for `input_dim`-wide samples. The encoder follows
    /// the bundle-format convention (`Nonlinear`, seed `cfg.seed ^ 0xC11`)
    /// so published checkpoints re-derive their encoder correctly on load.
    ///
    /// # Panics
    ///
    /// Panics when the derived [`RegHdConfig`] is invalid (zero dim/models).
    pub fn new(cfg: TrainerConfig, input_dim: usize) -> Self {
        let spec = EncoderSpec::Nonlinear {
            input_dim,
            dim: cfg.dim,
            seed: cfg.seed ^ 0xC11,
        };
        let model_cfg = RegHdConfig::builder()
            .dim(cfg.dim)
            .models(cfg.models)
            .seed(cfg.seed)
            .build();
        let model = OnlineRegHd::new(model_cfg, spec.build());
        Self {
            cfg,
            spec,
            model,
            detector: None,
            shadow: None,
            publish: None,
            store_publish: None,
            last_store_image: None,
            status: Arc::new(TrainStatus::new()),
            recent: VecDeque::with_capacity(CANARY_WINDOW),
            report: TrainReport::default(),
            last_checkpoint_at: 0,
        }
    }

    /// Builds a trainer that resumes from an online checkpoint written by
    /// a previous run's checkpoint directory (`resume.rghd`). The persisted
    /// training cursor (samples seen, prequential EWMA, per-cluster errors)
    /// carries over bit-exactly.
    ///
    /// # Errors
    ///
    /// Propagates `reghd::persist` errors as strings; additionally rejects
    /// a checkpoint whose feature width disagrees with `input_dim`.
    pub fn resume(cfg: TrainerConfig, input_dim: usize, path: &str) -> Result<Self, String> {
        let model = persist::load_online_from_file(path).map_err(|e| e.to_string())?;
        let spec = EncoderSpec::Nonlinear {
            input_dim,
            dim: model.config().dim,
            seed: model.config().seed ^ 0xC11,
        };
        let mut t = Self::new(cfg, input_dim);
        if model.config().dim != t.cfg.dim || model.config().models != t.cfg.models {
            return Err(format!(
                "checkpoint shape (dim {}, k {}) disagrees with config (dim {}, k {})",
                model.config().dim,
                model.config().models,
                t.cfg.dim,
                t.cfg.models
            ));
        }
        t.spec = spec;
        t.model = model;
        Ok(t)
    }

    /// Attaches a drift detector (none attached: drift handling is off).
    pub fn with_detector(mut self, detector: Box<dyn DriftDetector>) -> Self {
        self.detector = Some(detector);
        self
    }

    /// Attaches a publication target: every checkpoint is pushed into the
    /// registry under the target's name.
    pub fn with_publish(mut self, target: PublishTarget) -> Self {
        self.publish = Some(target);
        self
    }

    /// Attaches a store target: every checkpoint is also published into
    /// the persistent model store under the target's key. The first
    /// checkpoint ships the full bundle; subsequent ones ship a sparse
    /// [`reghd_store::ModelDelta`] (only the hypervectors that changed),
    /// falling back to a full publish whenever the update is not
    /// delta-able or the delta is refused.
    pub fn with_store_publish(mut self, target: StoreTarget) -> Self {
        self.store_publish = Some(target);
        self
    }

    /// The shared status block (hand a clone to
    /// `reghd_serve::ServerConfig::train_status` to expose it over the
    /// protocol).
    pub fn status(&self) -> Arc<TrainStatus> {
        self.status.clone()
    }

    /// The model being trained (inspection in tests).
    pub fn model(&self) -> &OnlineRegHd {
        &self.model
    }

    /// The running report. [`Trainer::run`] returns a clone of this on
    /// success; the accessor exposes counters even after a failed run.
    pub fn report(&self) -> &TrainReport {
        &self.report
    }

    /// Consumes samples from `source` until it ends or
    /// [`TrainerConfig::max_samples`] is reached, then takes a final
    /// checkpoint (when checkpointing is configured) and returns the run
    /// report.
    ///
    /// # Errors
    ///
    /// I/O failures writing checkpoint artefacts. Canary-refused
    /// publications are **not** errors — they are counted and the previous
    /// registry version keeps serving.
    pub fn run(&mut self, source: &mut dyn SampleSource) -> Result<TrainReport, String> {
        debug_assert_eq!(
            source.num_features(),
            match self.spec {
                EncoderSpec::Nonlinear { input_dim, .. } => input_dim,
                _ => unreachable!("trainer always builds a Nonlinear spec"),
            },
            "source width must match the trainer's encoder"
        );
        while self
            .cfg
            .max_samples
            .is_none_or(|cap| self.report.samples < cap)
        {
            let Some((x, y)) = source.next_sample() else {
                break;
            };
            self.step(&x, y)?;
        }
        if self.cfg.checkpoint_every.is_some() {
            self.checkpoint()?;
        }
        self.report.final_prequential_mse = self.model.prequential_mse();
        Ok(self.report.clone())
    }

    /// One predict-then-train step plus the drift/checkpoint machinery.
    fn step(&mut self, x: &[f32], y: f32) -> Result<(), String> {
        let err = self.model.update(x, y);
        self.report.samples += 1;
        self.status
            .record_sample(f64::from(self.model.prequential_mse()));
        if self.cfg.record_errors {
            self.report.errors.push(err.abs());
        }

        if self.recent.len() == CANARY_WINDOW {
            self.recent.pop_front();
        }
        self.recent.push_back(x.to_vec());

        self.advance_shadow(x, y);

        if let Some(det) = self.detector.as_mut() {
            if det.observe(f64::from(err.abs())) {
                det.reset();
                self.report.drift_events += 1;
                self.status.record_drift(self.report.samples - 1);
                self.respond_to_drift();
            }
        }

        if let Some(every) = self.cfg.checkpoint_every {
            if self.report.samples.is_multiple_of(every) {
                self.checkpoint()?;
            }
        }
        Ok(())
    }

    /// Trains the shadow (when one is active) and promotes it the moment
    /// it is old enough and prequentially better than the primary.
    fn advance_shadow(&mut self, x: &[f32], y: f32) {
        let Some(shadow) = self.shadow.as_mut() else {
            return;
        };
        shadow.model.update(x, y);
        shadow.age += 1;
        if shadow.age >= self.cfg.shadow_min_age
            && shadow.model.prequential_mse() < self.model.prequential_mse()
        {
            let Shadow { model, .. } = self.shadow.take().expect("shadow present");
            self.model = model;
            self.report.promotions += 1;
            self.status.record_promotion();
            self.status.set_shadow_active(false);
        }
    }

    fn respond_to_drift(&mut self) {
        match self.cfg.drift_action {
            DriftAction::ResetWorstCluster => {
                let worst = self.model.worst_cluster();
                self.model.reset_cluster(worst);
                self.report.cluster_resets += 1;
                self.status.record_cluster_reset();
            }
            DriftAction::ShadowPromote => {
                if self.shadow.is_some() {
                    return; // one shadow at a time; it is already chasing
                }
                // Same config/seed as the primary: a fresh model under the
                // *same* encoder, so a promoted shadow still satisfies the
                // bundle's spec-derivation convention.
                let model_cfg = RegHdConfig::builder()
                    .dim(self.cfg.dim)
                    .models(self.cfg.models)
                    .seed(self.cfg.seed)
                    .build();
                self.shadow = Some(Shadow {
                    model: OnlineRegHd::new(model_cfg, self.spec.build()),
                    age: 0,
                });
                self.status.set_shadow_active(true);
            }
        }
    }

    /// Quantises, snapshots, writes artefacts atomically, and publishes.
    fn checkpoint(&mut self) -> Result<(), String> {
        if self.report.samples == 0 || self.last_checkpoint_at == self.report.samples {
            return Ok(()); // nothing learned yet, or already checkpointed here
        }
        self.last_checkpoint_at = self.report.samples;
        self.model.quantize_now();
        self.report.checkpoints += 1;
        self.status.record_checkpoint();

        // Streaming has no precomputed dataset statistics: the bundle
        // carries identity scalers and the model consumes raw units.
        let snapshot = self.model.snapshot(&self.spec);
        // The canary capture inside `from_trained` (and any later replay of
        // this bundle) batch-predicts on the configured thread count;
        // chunked rows keep the outputs bit-identical to sequential.
        snapshot.set_threads(self.cfg.threads);
        let input_dim = match self.spec {
            EncoderSpec::Nonlinear { input_dim, .. } => input_dim,
            _ => unreachable!("trainer always builds a Nonlinear spec"),
        };
        let canary_rows: Vec<Vec<f32>> = self.recent.iter().cloned().collect();
        let bundle = ModelBundle::from_trained(
            snapshot,
            vec![0.0; input_dim],
            vec![1.0; input_dim],
            0.0,
            1.0,
            &canary_rows,
        )?;
        let bytes = bundle.to_bytes()?;

        if let Some(dir) = self.cfg.checkpoint_dir.clone() {
            std::fs::create_dir_all(&dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
            let versioned = dir.join(format!("checkpoint-{:08}.rghd", self.report.samples));
            atomic_write(&versioned, &bytes)?;
            // The bit-exact resume artefact rides along under a fixed name.
            let resume_tmp = dir.join("resume.rghd.tmp");
            persist::save_online_to_file(&self.model, &self.spec, &resume_tmp)
                .map_err(|e| e.to_string())?;
            std::fs::rename(&resume_tmp, dir.join("resume.rghd"))
                .map_err(|e| format!("cannot finalise resume checkpoint: {e}"))?;
        }

        if let Some(target) = &self.publish {
            match target.registry.publish_bytes(&target.name, &bytes) {
                Ok(_) => {
                    self.report.publications += 1;
                    self.status.record_publication();
                }
                Err(reghd_serve::ServeError::Canary(_)) => {
                    self.report.canary_failures += 1;
                    self.status.record_canary_failure();
                }
                Err(e) => return Err(format!("publish failed: {e}")),
            }
        }

        if self.store_publish.is_some() {
            self.publish_to_store(&bytes)?;
        }
        Ok(())
    }

    /// Publishes checkpoint `bytes` into the attached store: a sparse
    /// delta against the last published image when possible, the full
    /// bundle otherwise. Canary refusals are counted, not fatal.
    /// Transient I/O failures of the full publish are retried up to
    /// [`STORE_PUBLISH_ATTEMPTS`] times with exponential backoff (a
    /// checkpoint is too expensive to drop over a blip the store already
    /// rolled back cleanly); only an exhausted retry budget surfaces the
    /// error.
    fn publish_to_store(&mut self, bytes: &[u8]) -> Result<(), String> {
        let target = self.store_publish.as_ref().expect("checked by caller");
        let mut published = None;
        if let Some((base, version)) = self.last_store_image.as_ref() {
            if let Ok(Some(delta)) = reghd_store::ModelDelta::compute(base, *version, bytes) {
                if let Ok(meta) = target.store.publish_delta(&target.key, &delta) {
                    self.report.store_delta_publications += 1;
                    published = Some(meta);
                }
            }
        }
        if published.is_none() {
            let mut delay = STORE_PUBLISH_BACKOFF;
            let mut attempt = 0;
            published = loop {
                match target.store.publish_full(&target.key, bytes) {
                    Ok(meta) => break Some(meta),
                    Err(reghd_store::StoreError::Canary(_)) => {
                        self.report.canary_failures += 1;
                        self.status.record_canary_failure();
                        return Ok(());
                    }
                    Err(reghd_store::StoreError::Io(_)) if attempt + 1 < STORE_PUBLISH_ATTEMPTS => {
                        attempt += 1;
                        self.report.store_publish_retries += 1;
                        self.status.record_store_publish_retry();
                        std::thread::sleep(delay);
                        delay = delay.checked_mul(2).unwrap_or(delay);
                    }
                    Err(e) => return Err(format!("store publish failed: {e}")),
                }
            };
        }
        if let Some(meta) = published {
            self.report.store_publications += 1;
            self.last_store_image = Some((bytes.to_vec(), meta.version));
        }
        Ok(())
    }
}

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// then rename, so a reader (or a crash) never observes a half-written
/// checkpoint.
fn atomic_write(path: &std::path::Path, bytes: &[u8]) -> Result<(), String> {
    let tmp = path.with_extension("rghd.tmp");
    std::fs::write(&tmp, bytes).map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("cannot finalise {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::{EwmaDetector, PageHinkley};
    use crate::source::DriftSource;
    use datasets::drift::{DriftKind, DriftStream};

    fn drift_source(kind: DriftKind, period: usize, seed: u64) -> DriftSource {
        DriftSource::new(DriftStream::new(3, period, kind, seed), 3, "drift:test")
    }

    fn small_cfg() -> TrainerConfig {
        TrainerConfig {
            dim: 512,
            models: 2,
            seed: 7,
            ..TrainerConfig::default()
        }
    }

    #[test]
    fn prequential_training_reduces_error_on_stationary_stream() {
        // A huge period ≈ stationary within the run.
        let mut src = drift_source(DriftKind::Abrupt, 1_000_000, 1);
        let cfg = TrainerConfig {
            max_samples: Some(1500),
            record_errors: true,
            ..small_cfg()
        };
        let mut t = Trainer::new(cfg, 3);
        let report = t.run(&mut src).unwrap();
        assert_eq!(report.samples, 1500);
        let early: f32 = report.errors[50..150].iter().sum::<f32>() / 100.0;
        let late: f32 = report.errors[1400..].iter().sum::<f32>() / 100.0;
        assert!(late < early, "no learning: early {early}, late {late}");
        assert_eq!(report.drift_events, 0, "no detector attached");
    }

    #[test]
    fn drift_is_detected_and_worst_cluster_reset() {
        let mut src = drift_source(DriftKind::Abrupt, 800, 2);
        let cfg = TrainerConfig {
            max_samples: Some(2400),
            ..small_cfg()
        };
        let mut t = Trainer::new(cfg, 3).with_detector(Box::new(EwmaDetector::default()));
        let report = t.run(&mut src).unwrap();
        assert!(report.drift_events >= 1, "abrupt drift must be detected");
        assert_eq!(report.cluster_resets, report.drift_events);
        assert_eq!(t.status().drift_events(), report.drift_events);
    }

    #[test]
    fn shadow_is_spawned_and_promoted() {
        let mut src = drift_source(DriftKind::Abrupt, 800, 3);
        let cfg = TrainerConfig {
            max_samples: Some(3200),
            drift_action: DriftAction::ShadowPromote,
            shadow_min_age: 100,
            ..small_cfg()
        };
        let mut t = Trainer::new(cfg, 3).with_detector(Box::new(PageHinkley::default()));
        let report = t.run(&mut src).unwrap();
        assert!(report.drift_events >= 1);
        assert!(
            report.promotions >= 1,
            "a fresh model must eventually beat the drifted primary"
        );
        assert_eq!(report.cluster_resets, 0);
    }

    #[test]
    fn checkpoints_are_written_versioned_and_resumable() {
        let dir = std::env::temp_dir().join("reghd_train_ckpt_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut src = drift_source(DriftKind::Abrupt, 1_000_000, 4);
        let cfg = TrainerConfig {
            max_samples: Some(600),
            checkpoint_every: Some(250),
            checkpoint_dir: Some(dir.clone()),
            ..small_cfg()
        };
        let mut t = Trainer::new(cfg, 3);
        let report = t.run(&mut src).unwrap();
        // 250, 500, and the final checkpoint at 600.
        assert_eq!(report.checkpoints, 3);
        for n in [250u64, 500, 600] {
            let p = dir.join(format!("checkpoint-{n:08}.rghd"));
            assert!(p.exists(), "missing {}", p.display());
            // Every on-disk bundle must parse and pass its canary.
            let bundle = ModelBundle::load(p.to_str().unwrap()).unwrap();
            bundle.run_canary().unwrap();
        }
        // No temp files left behind by the atomic writes.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");

        // Resume continues the exact training cursor.
        let resumed = Trainer::resume(
            TrainerConfig {
                max_samples: Some(600),
                ..small_cfg()
            },
            3,
            dir.join("resume.rghd").to_str().unwrap(),
        )
        .unwrap();
        assert_eq!(resumed.model().samples_seen(), 600);
        assert_eq!(
            resumed.model().prequential_mse(),
            t.model().prequential_mse()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn publication_reaches_the_registry_with_zero_canary_failures() {
        let registry = Arc::new(ModelRegistry::new());
        let mut src = drift_source(DriftKind::Abrupt, 1_000_000, 5);
        let cfg = TrainerConfig {
            max_samples: Some(500),
            checkpoint_every: Some(200),
            ..small_cfg()
        };
        let mut t = Trainer::new(cfg, 3).with_publish(PublishTarget {
            registry: registry.clone(),
            name: "live".to_string(),
        });
        let report = t.run(&mut src).unwrap();
        assert_eq!(report.canary_failures, 0);
        assert_eq!(report.publications, 3); // 200, 400, final 500
        let served = registry.get("live").expect("model must be published");
        assert_eq!(served.meta.version, 3, "each publish bumps the version");
        // The published model predicts finitely on fresh stream rows.
        let (x, _) = src.next_sample().unwrap();
        let preds = served.bundle.predict(&[x]).unwrap();
        assert!(preds[0].is_finite());
    }

    #[test]
    fn threaded_checkpointing_publishes_bit_identical_bundles() {
        let run = |threads: usize| {
            let registry = Arc::new(ModelRegistry::new());
            let mut src = drift_source(DriftKind::Abrupt, 1_000_000, 8);
            let cfg = TrainerConfig {
                max_samples: Some(400),
                checkpoint_every: Some(200),
                threads,
                ..small_cfg()
            };
            let mut t = Trainer::new(cfg, 3).with_publish(PublishTarget {
                registry: registry.clone(),
                name: "live".to_string(),
            });
            let report = t.run(&mut src).unwrap();
            (registry, report)
        };
        let (seq_reg, seq_report) = run(1);
        let (par_reg, par_report) = run(4);
        assert_eq!(par_report.canary_failures, 0);
        assert_eq!(par_report.publications, seq_report.publications);
        assert_eq!(
            par_report.final_prequential_mse.to_bits(),
            seq_report.final_prequential_mse.to_bits()
        );
        // The published models predict identically to the bit.
        let rows: Vec<Vec<f32>> = (0..16).map(|i| vec![i as f32 / 16.0, 0.5, -0.25]).collect();
        let seq_preds = seq_reg.get("live").unwrap().bundle.predict(&rows).unwrap();
        let par_preds = par_reg.get("live").unwrap().bundle.predict(&rows).unwrap();
        assert_eq!(
            seq_preds.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            par_preds.iter().map(|p| p.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn store_publication_ships_deltas_after_the_first_full_image() {
        use reghd_store::{ModelStore, StoreConfig};
        let dir = std::env::temp_dir().join("reghd_train_store_pub_test");
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(ModelStore::open(&dir, StoreConfig::default()).unwrap());
        let registry = Arc::new(ModelRegistry::new());
        let mut src = drift_source(DriftKind::Abrupt, 1_000_000, 9);
        let cfg = TrainerConfig {
            max_samples: Some(600),
            checkpoint_every: Some(200),
            ..small_cfg()
        };
        let mut t = Trainer::new(cfg, 3)
            .with_publish(PublishTarget {
                registry: registry.clone(),
                name: "stream".to_string(),
            })
            .with_store_publish(crate::StoreTarget {
                store: store.clone(),
                key: "stream".to_string(),
            });
        let report = t.run(&mut src).unwrap();
        // 200, 400, final 600 — first is full, the rest ship as deltas.
        assert_eq!(report.store_publications, 3);
        assert_eq!(report.store_delta_publications, 2);
        assert_eq!(report.canary_failures, 0);
        let served = store.get("stream").unwrap();
        assert_eq!(served.meta.version, 3);
        // The store image is bit-identical to the registry publication:
        // same artefact hash for the same checkpoint.
        assert_eq!(served.meta.hash, registry.get("stream").unwrap().meta.hash);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_publish_retries_transient_faults_and_surfaces_exhaustion() {
        use reghd_store::{ModelStore, StoreConfig, StoreFaultInjector};
        let dir = std::env::temp_dir().join("reghd_train_store_retry_test");
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(ModelStore::open(&dir, StoreConfig::default()).unwrap());
        let faults = Arc::new(StoreFaultInjector::new());
        store.attach_faults(Some(faults.clone()));

        // One injected ENOSPC: the first publish attempt fails, the retry
        // lands, and the checkpoint is not lost.
        faults.arm_enospc_appends(1);
        let mut src = drift_source(DriftKind::Abrupt, 1_000_000, 10);
        let cfg = TrainerConfig {
            max_samples: Some(100),
            checkpoint_every: Some(100),
            ..small_cfg()
        };
        let mut t = Trainer::new(cfg, 3).with_store_publish(StoreTarget {
            store: store.clone(),
            key: "retry".to_string(),
        });
        let report = t.run(&mut src).unwrap();
        assert_eq!(report.store_publications, 1);
        assert_eq!(report.store_publish_retries, 1);
        assert_eq!(t.status().store_publish_retries(), 1);
        assert!(t.status().summary().contains("store_publish_retries=1"));
        assert_eq!(store.get("retry").unwrap().meta.version, 1);

        // Enough faults to exhaust every attempt: the failure surfaces.
        faults.arm_enospc_appends(STORE_PUBLISH_ATTEMPTS);
        let mut src = drift_source(DriftKind::Abrupt, 1_000_000, 11);
        let cfg = TrainerConfig {
            max_samples: Some(100),
            checkpoint_every: Some(100),
            ..small_cfg()
        };
        let mut t = Trainer::new(cfg, 3).with_store_publish(StoreTarget {
            store: store.clone(),
            key: "exhausted".to_string(),
        });
        let err = t.run(&mut src).expect_err("retry budget must be finite");
        assert!(err.contains("store publish failed"), "err: {err}");
        assert_eq!(
            t.report().store_publish_retries,
            STORE_PUBLISH_ATTEMPTS as u64 - 1
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_rejects_mismatched_shapes() {
        let dir = std::env::temp_dir().join("reghd_train_resume_shape_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut src = drift_source(DriftKind::Abrupt, 1_000_000, 6);
        let cfg = TrainerConfig {
            max_samples: Some(100),
            checkpoint_every: Some(100),
            checkpoint_dir: Some(dir.clone()),
            ..small_cfg()
        };
        Trainer::new(cfg, 3).run(&mut src).unwrap();
        let path = dir.join("resume.rghd");
        let err = match Trainer::resume(
            TrainerConfig {
                dim: 256, // disagrees with the checkpoint's 512
                ..small_cfg()
            },
            3,
            path.to_str().unwrap(),
        ) {
            Err(e) => e,
            Ok(_) => panic!("shape mismatch must be rejected"),
        };
        assert!(err.contains("disagrees"), "err: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
