//! End-to-end train-while-serve: a TCP server answers predictions out of a
//! live registry while, in the same process, the streaming trainer chases
//! an abruptly drifting stream — detecting the drift, republishing
//! checkpoints into the registry (canary-gated), and exposing its counters
//! through the `train-status` protocol command.

use datasets::drift::{DriftKind, DriftStream};
use reghd_serve::registry::ModelRegistry;
use reghd_serve::server::{serve, ServerConfig};
use reghd_train::detect::EwmaDetector;
use reghd_train::pipeline::{DriftAction, PublishTarget, Trainer, TrainerConfig};
use reghd_train::source::DriftSource;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn roundtrip(stream: &mut TcpStream, req: &str) -> String {
    writeln!(stream, "{req}").unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    line.trim_end().to_string()
}

/// Root-mean-square of an error window.
fn rmse(errs: &[f32]) -> f32 {
    (errs.iter().map(|e| e * e).sum::<f32>() / errs.len() as f32).sqrt()
}

#[test]
fn trainer_chases_abrupt_drift_while_serving() {
    const FEATURES: usize = 3;
    const PERIOD: usize = 1500; // one abrupt drift mid-run
    const SAMPLES: u64 = 3000;

    let registry = Arc::new(ModelRegistry::new());
    let stream = DriftStream::new(FEATURES, PERIOD, DriftKind::Abrupt, 42);
    let mut source = DriftSource::new(stream, FEATURES, "drift:abrupt:e2e");

    let cfg = TrainerConfig {
        dim: 1024,
        models: 2,
        seed: 42,
        max_samples: Some(SAMPLES),
        checkpoint_every: Some(500),
        checkpoint_dir: None, // registry-only publication
        drift_action: DriftAction::ResetWorstCluster,
        record_errors: true,
        ..TrainerConfig::default()
    };
    let mut trainer = Trainer::new(cfg, FEATURES)
        .with_detector(Box::new(EwmaDetector::default()))
        .with_publish(PublishTarget {
            registry: registry.clone(),
            name: "live".to_string(),
        });
    let status = trainer.status();

    let server = serve(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            read_timeout: Duration::from_secs(10),
            train_status: Some(status.clone()),
            ..ServerConfig::default()
        },
        registry.clone(),
    )
    .unwrap();
    let addr = server.local_addr();

    let trainer_thread = std::thread::spawn(move || {
        let report = trainer.run(&mut source).unwrap();
        (trainer, report)
    });

    // While the trainer runs: wait for the first publication, then serve
    // predictions from the just-published model over the wire.
    let mut conn = TcpStream::connect(addr).unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    while registry.get("live").is_none() {
        assert!(Instant::now() < deadline, "trainer never published");
        std::thread::sleep(Duration::from_millis(10));
    }
    let reply = roundtrip(&mut conn, "predict live 0.1,-0.2,0.3");
    assert!(
        reply.starts_with("ok ") || reply.starts_with("degraded "),
        "{reply}"
    );
    let y: f32 = reply.split_whitespace().nth(1).unwrap().parse().unwrap();
    assert!(y.is_finite());

    // The live status is visible over the protocol mid-run.
    let ts = roundtrip(&mut conn, "train-status");
    assert!(ts.starts_with("ok train samples="), "{ts}");

    let (_trainer, report) = trainer_thread.join().unwrap();

    // --- the acceptance criteria ---

    // Drift was detected …
    assert!(report.drift_events >= 1, "no drift detected: {report:?}");
    let first_drift = status.last_drift_sample().expect("status records drift");
    assert!(
        (PERIOD as u64..SAMPLES).contains(&first_drift) || report.drift_events > 1,
        "drift recorded at {first_drift}, concept switches at {PERIOD}"
    );

    // … checkpoints were republished into the live registry with zero
    // canary failures …
    assert_eq!(report.canary_failures, 0, "{report:?}");
    assert!(report.publications >= 2, "{report:?}");
    let served = registry.get("live").unwrap();
    assert!(
        served.meta.version >= 2,
        "republication must bump the served version: {:?}",
        served.meta
    );

    // … and the prequential error recovered: the post-drift steady state
    // is within 1.5× of the pre-drift steady state.
    let errs = &report.errors;
    assert_eq!(errs.len(), SAMPLES as usize);
    let pre = rmse(&errs[PERIOD - 300..PERIOD]);
    let spike = rmse(&errs[PERIOD..PERIOD + 100]);
    let post = rmse(&errs[SAMPLES as usize - 300..]);
    assert!(
        spike > pre,
        "abrupt drift must spike the error: pre {pre}, spike {spike}"
    );
    assert!(
        post < 1.5 * pre,
        "post-drift steady state {post} did not recover within 1.5x of pre-drift {pre}"
    );

    // Final protocol check: train-status reflects the finished run.
    let ts = roundtrip(&mut conn, "train-status");
    assert!(ts.contains(&format!("samples={SAMPLES}")), "{ts}");
    assert!(ts.contains("canary_failures=0"), "{ts}");
    let list = roundtrip(&mut conn, "list");
    assert!(list.starts_with("model live v"), "{list}");

    server.shutdown();
}
