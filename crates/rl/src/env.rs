//! The environment interface: episodic tasks with continuous observations
//! and discrete actions.

/// One transition returned by [`Environment::step`].
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// Observation after the action.
    pub state: Vec<f32>,
    /// Immediate reward.
    pub reward: f32,
    /// Whether the episode ended with this transition.
    pub done: bool,
}

/// An episodic reinforcement-learning environment.
///
/// Implementations are deterministic simulators (any stochasticity is
/// seeded internally), matching the workspace-wide reproducibility rule.
pub trait Environment {
    /// Dimensionality of the observation vector.
    fn state_dim(&self) -> usize;

    /// Number of discrete actions.
    fn num_actions(&self) -> usize;

    /// Starts a new episode and returns the initial observation.
    fn reset(&mut self) -> Vec<f32>;

    /// Applies `action` and advances one timestep.
    ///
    /// # Panics
    ///
    /// Implementations panic if `action >= num_actions()` or if called
    /// after the episode has ended without an intervening reset.
    fn step(&mut self, action: usize) -> Step;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy {
        t: usize,
    }

    impl Environment for Dummy {
        fn state_dim(&self) -> usize {
            1
        }
        fn num_actions(&self) -> usize {
            2
        }
        fn reset(&mut self) -> Vec<f32> {
            self.t = 0;
            vec![0.0]
        }
        fn step(&mut self, action: usize) -> Step {
            assert!(action < 2);
            self.t += 1;
            Step {
                state: vec![self.t as f32],
                reward: -1.0,
                done: self.t >= 3,
            }
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let mut env: Box<dyn Environment> = Box::new(Dummy { t: 0 });
        let s0 = env.reset();
        assert_eq!(s0, vec![0.0]);
        let mut steps = 0;
        loop {
            let s = env.step(0);
            steps += 1;
            if s.done {
                break;
            }
        }
        assert_eq!(steps, 3);
    }
}
