//! Mountain Car — the classic underpowered-car control benchmark (Moore
//! 1990, Sutton & Barto §10.1), implemented from its standard equations.
//!
//! State: position `p ∈ [−1.2, 0.6]`, velocity `v ∈ [−0.07, 0.07]`.
//! Actions: push left / coast / push right. Dynamics:
//!
//! ```text
//! v ← clamp(v + 0.001·(a−1) − 0.0025·cos(3p))
//! p ← clamp(p + v)
//! ```
//!
//! Reward −1 per step until the car reaches the right hilltop
//! (`p ≥ 0.5`); the engine is too weak to climb directly, so the agent
//! must learn to rock back and forth — a task a linear-in-raw-state value
//! function cannot represent, but a RegHD-encoded one can.

use crate::env::{Environment, Step};
use hdc::rng::HdRng;

/// The Mountain Car environment.
#[derive(Debug, Clone)]
pub struct MountainCar {
    horizon: usize,
    p: f32,
    v: f32,
    t: usize,
    rng: HdRng,
    done: bool,
}

impl MountainCar {
    /// Creates a Mountain Car with the given step budget per episode (the
    /// classic setting uses 200).
    ///
    /// # Panics
    ///
    /// Panics if `horizon == 0`.
    pub fn new(horizon: usize) -> Self {
        assert!(horizon > 0, "horizon must be nonzero");
        Self {
            horizon,
            p: -0.5,
            v: 0.0,
            t: 0,
            rng: HdRng::seed_from(0xCA4),
            done: true,
        }
    }

    fn observation(&self) -> Vec<f32> {
        // Scale both state variables to O(1) for the encoder.
        vec![self.p / 0.6, self.v / 0.07]
    }

    /// Whether the last episode ended at the goal (vs running out of
    /// steps).
    pub fn at_goal(&self) -> bool {
        self.p >= 0.5
    }
}

impl Environment for MountainCar {
    fn state_dim(&self) -> usize {
        2
    }

    fn num_actions(&self) -> usize {
        3
    }

    fn reset(&mut self) -> Vec<f32> {
        // Classic uniform start in [-0.6, -0.4), zero velocity.
        self.p = -0.6 + 0.2 * self.rng.next_f32();
        self.v = 0.0;
        self.t = 0;
        self.done = false;
        self.observation()
    }

    fn step(&mut self, action: usize) -> Step {
        assert!(action < 3, "action {action} out of range");
        assert!(!self.done, "step after episode end; call reset()");
        self.v += 0.001 * (action as f32 - 1.0) - 0.0025 * (3.0 * self.p).cos();
        self.v = self.v.clamp(-0.07, 0.07);
        self.p += self.v;
        self.p = self.p.clamp(-1.2, 0.6);
        if self.p <= -1.2 {
            self.v = 0.0; // inelastic left wall
        }
        self.t += 1;
        let reached = self.p >= 0.5;
        self.done = reached || self.t >= self.horizon;
        Step {
            state: self.observation(),
            reward: -1.0,
            done: self.done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coasting_never_reaches_goal() {
        let mut env = MountainCar::new(300);
        env.reset();
        loop {
            if env.step(1).done {
                break;
            }
        }
        assert!(!env.at_goal(), "coasting should not climb the hill");
    }

    #[test]
    fn full_throttle_alone_fails() {
        // The defining property: the engine is too weak for a direct climb.
        let mut env = MountainCar::new(300);
        env.reset();
        loop {
            if env.step(2).done {
                break;
            }
        }
        assert!(!env.at_goal(), "direct full throttle should fail");
    }

    #[test]
    fn energy_pumping_policy_reaches_goal() {
        // Push in the direction of motion — the textbook solution.
        let mut env = MountainCar::new(300);
        let mut s = env.reset();
        let mut steps = 0;
        loop {
            let v = s[1];
            let a = if v >= 0.0 { 2 } else { 0 };
            let out = env.step(a);
            s = out.state;
            steps += 1;
            if out.done {
                break;
            }
        }
        assert!(env.at_goal(), "energy pumping must reach the flag");
        assert!(
            steps < 200,
            "should arrive within the classic budget: {steps}"
        );
    }

    #[test]
    fn observations_are_scaled() {
        let mut env = MountainCar::new(10);
        let s = env.reset();
        assert_eq!(s.len(), 2);
        assert!(s[0].abs() <= 2.0 && s[1].abs() <= 1.0);
    }

    #[test]
    fn velocity_clamped() {
        let mut env = MountainCar::new(1000);
        env.reset();
        for _ in 0..100 {
            let out = env.step(2);
            assert!(out.state[1].abs() <= 1.0 + 1e-6);
            if out.done {
                break;
            }
        }
    }
}
