//! Q-learning with RegHD function approximation.
//!
//! Per-action value functions live in HD space: `Q(s, a) = M_a ⋅ enc(s) +
//! b_a`, with one model hypervector `M_a` per action. Learning is the
//! paper's Eq. 2 delta rule with the TD target substituted for the
//! supervised label:
//!
//! ```text
//! δ  = r + γ·max_{a'} Q(s', a') − Q(s, a)
//! M_a ← M_a + α·δ·enc(s)          b_a ← b_a + α·δ
//! ```
//!
//! Exploration is ε-greedy with linear decay. The nonlinearity of the HD
//! encoder is load-bearing here exactly as in supervised RegHD: Mountain
//! Car's value function is not linear in `(p, v)`, but it is linear in the
//! encoded hypervector.

use crate::env::Environment;
use encoding::{Encoder, NonlinearEncoder};
use hdc::rng::HdRng;
use hdc::RealHv;

/// Hyper-parameters for [`HdQAgent`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QConfig {
    /// Hypervector dimensionality.
    pub dim: usize,
    /// TD learning rate α.
    pub learning_rate: f32,
    /// Discount factor γ.
    pub gamma: f32,
    /// Initial exploration rate.
    pub epsilon_start: f32,
    /// Final exploration rate.
    pub epsilon_min: f32,
    /// Episodes over which ε decays linearly from start to min.
    pub episodes_to_min_epsilon: usize,
    /// RNG seed (exploration and encoder).
    pub seed: u64,
}

impl Default for QConfig {
    fn default() -> Self {
        Self {
            dim: 2048,
            learning_rate: 0.05,
            gamma: 0.97,
            epsilon_start: 1.0,
            epsilon_min: 0.05,
            episodes_to_min_epsilon: 300,
            seed: 0,
        }
    }
}

/// ε-greedy Q-learning agent with HD value functions.
pub struct HdQAgent {
    config: QConfig,
    encoder: NonlinearEncoder,
    /// One value hypervector per action.
    models: Vec<RealHv>,
    biases: Vec<f32>,
    rng: HdRng,
    episodes_trained: usize,
}

impl std::fmt::Debug for HdQAgent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HdQAgent")
            .field("actions", &self.models.len())
            .field("dim", &self.config.dim)
            .field("episodes_trained", &self.episodes_trained)
            .finish()
    }
}

impl HdQAgent {
    /// Creates an untrained agent for `state_dim`-dimensional observations
    /// and `num_actions` discrete actions.
    ///
    /// # Panics
    ///
    /// Panics if `state_dim == 0`, `num_actions == 0`, or the config has a
    /// non-positive learning rate / dimensionality, or γ outside `[0, 1)`.
    pub fn new(state_dim: usize, num_actions: usize, config: QConfig) -> Self {
        assert!(state_dim > 0, "state_dim must be nonzero");
        assert!(num_actions > 0, "num_actions must be nonzero");
        assert!(config.dim > 0, "dim must be nonzero");
        assert!(config.learning_rate > 0.0, "learning_rate must be positive");
        assert!(
            (0.0..1.0).contains(&config.gamma),
            "gamma must be in [0, 1)"
        );
        let encoder = NonlinearEncoder::new(state_dim, config.dim, config.seed ^ 0x9_1EA4);
        Self {
            encoder,
            models: vec![RealHv::zeros(config.dim); num_actions],
            biases: vec![0.0; num_actions],
            rng: HdRng::seed_from(config.seed ^ EXPLORATION_SEED_SALT),
            episodes_trained: 0,
            config,
        }
    }

    /// Number of episodes trained so far.
    pub fn episodes_trained(&self) -> usize {
        self.episodes_trained
    }

    /// Current exploration rate (linear decay by episodes trained).
    pub fn epsilon(&self) -> f32 {
        let c = &self.config;
        if c.episodes_to_min_epsilon == 0 {
            return c.epsilon_min;
        }
        let t = (self.episodes_trained as f32 / c.episodes_to_min_epsilon as f32).min(1.0);
        c.epsilon_start + t * (c.epsilon_min - c.epsilon_start)
    }

    fn encode(&self, state: &[f32]) -> RealHv {
        let mut s = self.encoder.encode(state);
        s.normalize();
        s
    }

    /// Q-values for every action in `state`.
    pub fn q_values(&self, state: &[f32]) -> Vec<f32> {
        let s = self.encode(state);
        self.models
            .iter()
            .zip(&self.biases)
            .map(|(m, &b)| m.dot(&s) + b)
            .collect()
    }

    /// The greedy action in `state`.
    pub fn greedy_action(&self, state: &[f32]) -> usize {
        hdc::similarity::argmax(&self.q_values(state)).expect("at least one action")
    }

    fn act(&mut self, state: &[f32]) -> usize {
        if self.rng.next_bool(self.epsilon() as f64) {
            self.rng.next_below(self.models.len())
        } else {
            self.greedy_action(state)
        }
    }

    /// Runs one training episode, returning the total (undiscounted)
    /// reward collected.
    ///
    /// # Panics
    ///
    /// Panics if the environment's shape does not match the agent's.
    pub fn run_episode<E: Environment>(&mut self, env: &mut E) -> f32 {
        assert_eq!(
            env.state_dim(),
            self.encoder.input_dim(),
            "state_dim mismatch"
        );
        assert_eq!(
            env.num_actions(),
            self.models.len(),
            "action count mismatch"
        );
        let mut state = env.reset();
        let mut total = 0.0f32;
        loop {
            let action = self.act(&state);
            let enc_s = self.encode(&state);
            let q_sa = self.models[action].dot(&enc_s) + self.biases[action];
            let step = env.step(action);
            total += step.reward;

            let target = if step.done {
                step.reward
            } else {
                let next_best = self
                    .q_values(&step.state)
                    .into_iter()
                    .fold(f32::NEG_INFINITY, f32::max);
                step.reward + self.config.gamma * next_best
            };
            let delta = target - q_sa;
            self.models[action].add_scaled(&enc_s, self.config.learning_rate * delta);
            self.biases[action] += self.config.learning_rate * 0.1 * delta;

            if step.done {
                break;
            }
            state = step.state;
        }
        self.episodes_trained += 1;
        total
    }

    /// Evaluates the greedy policy (no exploration, no learning) over
    /// `episodes` episodes, returning the mean total reward.
    ///
    /// # Panics
    ///
    /// Panics if `episodes == 0` or shapes mismatch.
    pub fn evaluate<E: Environment>(&self, env: &mut E, episodes: usize) -> f32 {
        assert!(episodes > 0, "episodes must be nonzero");
        let mut total = 0.0f64;
        for _ in 0..episodes {
            let mut state = env.reset();
            loop {
                let step = env.step(self.greedy_action(&state));
                total += step.reward as f64;
                if step.done {
                    break;
                }
                state = step.state;
            }
        }
        (total / episodes as f64) as f32
    }
}

/// Seed salt separating exploration randomness from encoder randomness.
const EXPLORATION_SEED_SALT: u64 = 0xE9_51_10;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LineWorld;

    fn random_policy_reward(env: &mut LineWorld, episodes: usize, seed: u64) -> f32 {
        let mut rng = HdRng::seed_from(seed);
        let mut total = 0.0f64;
        for _ in 0..episodes {
            env.reset();
            loop {
                let s = env.step(rng.next_below(3));
                total += s.reward as f64;
                if s.done {
                    break;
                }
            }
        }
        (total / episodes as f64) as f32
    }

    #[test]
    fn learns_line_world() {
        let mut env = LineWorld::new(40, 0.35);
        let mut agent = HdQAgent::new(
            env.state_dim(),
            env.num_actions(),
            QConfig {
                episodes_to_min_epsilon: 80,
                seed: 3,
                ..QConfig::default()
            },
        );
        for _ in 0..120 {
            agent.run_episode(&mut env);
        }
        let trained = agent.evaluate(&mut env, 10);
        let random = random_policy_reward(&mut env, 10, 99);
        assert!(
            trained > random + 3.0,
            "trained {trained} should clearly beat random {random}"
        );
    }

    #[test]
    fn epsilon_decays() {
        let mut env = LineWorld::new(10, 0.0);
        let mut agent = HdQAgent::new(
            1,
            3,
            QConfig {
                episodes_to_min_epsilon: 10,
                ..QConfig::default()
            },
        );
        let e0 = agent.epsilon();
        for _ in 0..10 {
            agent.run_episode(&mut env);
        }
        let e1 = agent.epsilon();
        assert!(e0 > e1);
        assert!((e1 - 0.05).abs() < 1e-6);
    }

    #[test]
    fn q_values_shape() {
        let agent = HdQAgent::new(2, 4, QConfig::default());
        let q = agent.q_values(&[0.1, -0.2]);
        assert_eq!(q.len(), 4);
        // Untrained agent: all zeros.
        assert!(q.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn greedy_action_tracks_q() {
        let mut agent = HdQAgent::new(
            1,
            2,
            QConfig {
                seed: 5,
                ..QConfig::default()
            },
        );
        // Nudge action 1's value up at a probe state. (State 0.0 would
        // encode to the zero vector — sin(0) = 0 — so use a nonzero one.)
        let s = agent.encode(&[0.5]);
        agent.models[1].add_scaled(&s, 1.0);
        assert_eq!(agent.greedy_action(&[0.5]), 1);
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn bad_gamma_panics() {
        HdQAgent::new(
            1,
            2,
            QConfig {
                gamma: 1.0,
                ..QConfig::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "state_dim mismatch")]
    fn env_shape_mismatch_panics() {
        let mut env = LineWorld::new(5, 0.0);
        let mut agent = HdQAgent::new(2, 3, QConfig::default());
        agent.run_episode(&mut env);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut env = LineWorld::new(20, 0.2);
            let mut agent = HdQAgent::new(
                1,
                3,
                QConfig {
                    seed: 9,
                    ..QConfig::default()
                },
            );
            let mut rewards = Vec::new();
            for _ in 0..5 {
                rewards.push(agent.run_episode(&mut env));
            }
            rewards
        };
        assert_eq!(run(), run());
    }
}

#[cfg(test)]
mod mountain_car_tests {
    use super::*;
    use crate::MountainCar;

    /// Full Mountain Car training run — minutes of compute, so ignored by
    /// default. Run with `cargo test -p rl -- --ignored`.
    #[test]
    #[ignore = "long-running RL training; run explicitly with --ignored"]
    fn hd_q_learning_solves_mountain_car() {
        let mut env = MountainCar::new(250);
        let mut agent = HdQAgent::new(
            env.state_dim(),
            env.num_actions(),
            QConfig {
                dim: 2048,
                learning_rate: 0.08,
                gamma: 0.99,
                episodes_to_min_epsilon: 250,
                seed: 7,
                ..QConfig::default()
            },
        );
        for _ in 0..450 {
            agent.run_episode(&mut env);
        }
        let greedy = agent.evaluate(&mut env, 20);
        // A random policy pins at ≈ −250 (never reaches the flag).
        assert!(greedy > -220.0, "greedy reward = {greedy}");
    }

    /// Fast smoke: a few episodes must at least move the Q-values.
    #[test]
    fn training_updates_values() {
        let mut env = MountainCar::new(60);
        let mut agent = HdQAgent::new(
            2,
            3,
            QConfig {
                dim: 512,
                ..QConfig::default()
            },
        );
        let before = agent.q_values(&[-0.8, 0.0]);
        for _ in 0..3 {
            agent.run_episode(&mut env);
        }
        let after = agent.q_values(&[-0.8, 0.0]);
        assert_ne!(before, after);
        assert!(after.iter().all(|v| v.is_finite()));
    }
}
