//! LineWorld: a 1-D target-seeking task, small enough for unit tests yet
//! non-trivial (the optimal policy depends on the continuous state).
//!
//! The agent sits at `x ∈ [−1, 1]` and must reach a fixed target. Actions:
//! move left, stay, move right (fixed step). Reward per timestep is
//! `−|x − target|`; the episode ends after `horizon` steps or on reaching
//! the target within half a step. A random policy drifts; the optimal
//! policy walks straight to the target and earns close to
//! `−|x₀ − target|·(steps to arrive)/2` total reward.

use crate::env::{Environment, Step};
use hdc::rng::HdRng;

/// 1-D continuous target-seeking environment.
#[derive(Debug, Clone)]
pub struct LineWorld {
    horizon: usize,
    target: f32,
    step_size: f32,
    x: f32,
    t: usize,
    rng: HdRng,
    done: bool,
}

impl LineWorld {
    /// Creates a LineWorld with the given episode `horizon` and target
    /// position.
    ///
    /// # Panics
    ///
    /// Panics if `horizon == 0` or the target lies outside `[-1, 1]`.
    pub fn new(horizon: usize, target: f32) -> Self {
        assert!(horizon > 0, "horizon must be nonzero");
        assert!((-1.0..=1.0).contains(&target), "target must be in [-1, 1]");
        Self {
            horizon,
            target,
            step_size: 0.1,
            x: 0.0,
            t: 0,
            rng: HdRng::seed_from(0xCAFE),
            done: true,
        }
    }

    /// The target position.
    pub fn target(&self) -> f32 {
        self.target
    }
}

impl Environment for LineWorld {
    fn state_dim(&self) -> usize {
        1
    }

    fn num_actions(&self) -> usize {
        3 // left, stay, right
    }

    fn reset(&mut self) -> Vec<f32> {
        // Random start, away from the exact target.
        self.x = self.rng.next_f32() * 2.0 - 1.0;
        self.t = 0;
        self.done = false;
        vec![self.x]
    }

    fn step(&mut self, action: usize) -> Step {
        assert!(action < 3, "action {action} out of range");
        assert!(!self.done, "step after episode end; call reset()");
        let delta = match action {
            0 => -self.step_size,
            1 => 0.0,
            _ => self.step_size,
        };
        self.x = (self.x + delta).clamp(-1.0, 1.0);
        self.t += 1;
        let dist = (self.x - self.target).abs();
        let reached = dist < self.step_size / 2.0;
        self.done = reached || self.t >= self.horizon;
        Step {
            state: vec![self.x],
            reward: -dist,
            done: self.done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn episode_terminates() {
        let mut env = LineWorld::new(10, 0.5);
        env.reset();
        let mut steps = 0;
        loop {
            let s = env.step(1); // stand still
            steps += 1;
            if s.done {
                break;
            }
        }
        assert_eq!(steps, 10);
    }

    #[test]
    fn walking_toward_target_terminates_early_with_high_reward() {
        let mut env = LineWorld::new(100, 0.5);
        let s0 = env.reset();
        let mut x = s0[0];
        let mut total = 0.0f32;
        let mut steps = 0;
        loop {
            let a = if x < env.target() { 2 } else { 0 };
            let s = env.step(a);
            x = s.state[0];
            total += s.reward;
            steps += 1;
            if s.done {
                break;
            }
        }
        assert!(steps < 25, "optimal walk should reach quickly: {steps}");
        assert!(total > -10.0, "optimal reward too low: {total}");
    }

    #[test]
    fn reward_is_negative_distance() {
        let mut env = LineWorld::new(5, 0.0);
        env.reset();
        let s = env.step(1);
        assert!((s.reward + s.state[0].abs()).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_action_panics() {
        let mut env = LineWorld::new(5, 0.0);
        env.reset();
        env.step(3);
    }

    #[test]
    #[should_panic(expected = "step after episode end")]
    fn step_after_done_panics() {
        let mut env = LineWorld::new(1, 0.0);
        env.reset();
        env.step(1); // ends the episode (horizon 1)
        env.step(1);
    }

    #[test]
    fn resets_vary_start_position() {
        let mut env = LineWorld::new(5, 0.0);
        let starts: Vec<f32> = (0..10).map(|_| env.reset()[0]).collect();
        let distinct = starts
            .iter()
            .filter(|&&s| (s - starts[0]).abs() > 1e-6)
            .count();
        assert!(distinct > 0, "start positions never vary");
    }
}
