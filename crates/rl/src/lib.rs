//! # rl — hyperdimensional reinforcement learning
//!
//! The RegHD paper closes with: *"Regression is a key required algorithm
//! which can be extended to support the first HD-based reinforcement
//! learning."* This crate builds that extension: Q-learning with RegHD's
//! machinery as the function approximator.
//!
//! * [`Environment`] — a minimal episodic RL environment interface with
//!   continuous state vectors and discrete actions.
//! * [`LineWorld`] / [`MountainCar`] — two classic control environments
//!   implemented as simulators (no external dependencies).
//! * [`HdQAgent`] — an ε-greedy Q-learning agent whose per-action value
//!   functions are HD regressions: `Q(s, a) = M_a ⋅ enc(s) + b_a`, updated
//!   with the TD delta rule — exactly Eq. 2 of the paper with the TD
//!   target in place of the supervised label.
//!
//! ## Example
//!
//! ```
//! use rl::{Environment, HdQAgent, LineWorld, QConfig};
//!
//! let mut env = LineWorld::new(40, 0.35);
//! let mut agent = HdQAgent::new(env.state_dim(), env.num_actions(), QConfig {
//!     episodes_to_min_epsilon: 80,
//!     seed: 3,
//!     ..QConfig::default()
//! });
//! for _ in 0..120 {
//!     agent.run_episode(&mut env);
//! }
//! // A trained agent homes in on the target; random walking scores far
//! // below this on this layout.
//! let reward = agent.evaluate(&mut env, 10);
//! assert!(reward > -18.0, "reward = {reward}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod env;
pub mod line_world;
pub mod mountain_car;

pub use agent::{HdQAgent, QConfig};
pub use env::{Environment, Step};
pub use line_world::LineWorld;
pub use mountain_car::MountainCar;
