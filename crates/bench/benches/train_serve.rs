//! Streaming-training throughput, alone and while serving: the
//! `reghd-train` pipeline drives an abruptly drifting stream twice — once
//! bare (single-pass samples/sec ceiling) and once publishing canary-gated
//! checkpoints into a live registry that a reader thread hammers with
//! predictions for the whole run. Reports both training rates, the
//! concurrent serving rate, and the drift/publication counters, and writes
//! a JSON summary to `results/train.json`.
//!
//! Plain `main` harness (no criterion), same rationale as `serve.rs`: the
//! subject is end-to-end pipeline throughput under concurrency, so one
//! warmed wall-clock measurement per configuration is the honest number.

use datasets::drift::{DriftKind, DriftStream};
use reghd_serve::registry::ModelRegistry;
use reghd_train::{DriftSource, EwmaDetector, PublishTarget, Trainer, TrainerConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

const DIM: usize = 2048;
const K: usize = 4;
const FEATURES: usize = 8;
const SAMPLES: u64 = 20_000;
const QUICK_SAMPLES: u64 = 2_000;

fn source(samples: u64) -> DriftSource {
    // One abrupt concept switch mid-run, so the drift machinery is on the
    // measured path (detector firing, cluster reset) rather than idle.
    let period = (samples / 2).max(1) as usize;
    DriftSource::new(
        DriftStream::new(FEATURES, period, DriftKind::Abrupt, 33),
        FEATURES,
        "drift:abrupt:bench",
    )
}

fn trainer(samples: u64, publish: Option<PublishTarget>) -> Trainer {
    let cfg = TrainerConfig {
        dim: DIM,
        models: K,
        seed: 33,
        max_samples: Some(samples),
        // Eight republications per run when publishing.
        checkpoint_every: publish.as_ref().map(|_| (samples / 8).max(1)),
        ..TrainerConfig::default()
    };
    let mut t = Trainer::new(cfg, FEATURES).with_detector(Box::new(EwmaDetector::default()));
    if let Some(target) = publish {
        t = t.with_publish(target);
    }
    t
}

/// Bare pipeline: predict-then-train with drift detection, no checkpoints.
fn bench_train_only(samples: u64) -> f64 {
    let mut src = source(samples);
    let mut t = trainer(samples, None);
    let start = Instant::now();
    let report = t.run(&mut src).expect("train");
    assert_eq!(report.samples, samples);
    samples as f64 / start.elapsed().as_secs_f64()
}

/// Trainer publishing into a registry while a reader thread predicts out
/// of it as fast as it can. Returns (train rate, serve rate, report).
fn bench_train_while_serve(samples: u64) -> (f64, f64, reghd_train::TrainReport) {
    let registry = Arc::new(ModelRegistry::new());
    let mut src = source(samples);
    let mut t = trainer(
        samples,
        Some(PublishTarget {
            registry: registry.clone(),
            name: "live".to_string(),
        }),
    );

    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let registry = registry.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let row = vec![0.25_f32; FEATURES];
            let mut served = 0u64;
            let mut elapsed = 0.0_f64;
            while !stop.load(Ordering::Relaxed) {
                // Nothing to read until the first checkpoint publishes.
                let Some(model) = registry.get("live") else {
                    std::thread::yield_now();
                    continue;
                };
                let start = Instant::now();
                model
                    .bundle
                    .predict(std::slice::from_ref(&row))
                    .expect("predict");
                elapsed += start.elapsed().as_secs_f64();
                served += 1;
            }
            if elapsed > 0.0 {
                served as f64 / elapsed
            } else {
                0.0
            }
        })
    };

    let start = Instant::now();
    let report = t.run(&mut src).expect("train");
    let train_rate = samples as f64 / start.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    let serve_rate = reader.join().expect("reader thread");
    (train_rate, serve_rate, report)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--test");
    let samples = if quick { QUICK_SAMPLES } else { SAMPLES };

    // Warm-up: a short bare run so lazy allocs don't bias the first mode.
    bench_train_only(samples.min(500));

    let alone = bench_train_only(samples);
    let (contended, serve_rate, report) = bench_train_while_serve(samples);
    assert_eq!(
        report.canary_failures, 0,
        "canary must stay green: {report:?}"
    );
    assert!(report.publications >= 1, "nothing published: {report:?}");

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let simd = hdc::simd::active_label();
    println!(
        "streaming train throughput (dim={DIM}, k={K}, features={FEATURES}, \
         samples={samples}, cores={cores}, simd={simd})"
    );
    println!("  train only        : {alone:>10.0} samples/sec");
    println!(
        "  train while serve : {contended:>10.0} samples/sec ({:.2}x of bare)",
        contended / alone
    );
    println!("  concurrent serve  : {serve_rate:>10.0} rows/sec");
    println!(
        "  drift events {} | checkpoints {} | publications {} | canary failures {}",
        report.drift_events, report.checkpoints, report.publications, report.canary_failures
    );

    let json = format!(
        "{{\n  \"dim\": {DIM},\n  \"k\": {K},\n  \"features\": {FEATURES},\n  \
         \"samples\": {samples},\n  \"cores\": {cores},\n  \
         \"simd\": \"{simd}\",\n  \
         \"train_only_samples_per_sec\": {alone:.1},\n  \"train_while_serve\": {{\n    \
         \"samples_per_sec\": {contended:.1},\n    \"serve_rows_per_sec\": {serve_rate:.1},\n    \
         \"drift_events\": {},\n    \"checkpoints\": {},\n    \"publications\": {},\n    \
         \"canary_failures\": {}\n  }}\n}}\n",
        report.drift_events, report.checkpoints, report.publications, report.canary_failures
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/train.json");
    match std::fs::write(&out, &json) {
        Ok(()) => println!("summary written to {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }
}
