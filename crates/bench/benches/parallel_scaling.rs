//! Row-parallel scaling of the encode→score hot path: `encode_batch` and
//! `predict_batch` throughput at dim ∈ {2048, 8192} for 1/2/4/8 threads.
//! Reports rows/sec per configuration and the speedup over the
//! single-thread baseline, and writes a JSON summary to
//! `results/parallel.json`.
//!
//! Plain `main` harness (no criterion): the subject is wall-clock batch
//! throughput, and the parallel layer guarantees bit-identical outputs,
//! which this bench re-asserts on every configuration it times.
//!
//! The recorded speedups are only meaningful relative to the `cores`
//! field: on a single-core host every thread count collapses to ~1.0×
//! (the chunks run back-to-back on one CPU); multi-core hosts show the
//! near-linear scaling the layer is built for.

use hdc::rng::HdRng;
use reghd::config::RegHdConfig;
use reghd::{RegHdRegressor, Regressor};

const FEATURES: usize = 8;
const K: usize = 4;
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn workload(rows: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<f32>) {
    let mut rng = HdRng::seed_from(seed);
    let xs: Vec<Vec<f32>> = (0..rows)
        .map(|_| (0..FEATURES).map(|_| rng.next_gaussian() as f32).collect())
        .collect();
    let ys = xs.iter().map(|x| x[0] + x[1] * x[2]).collect();
    (xs, ys)
}

fn trained(dim: usize, xs: &[Vec<f32>], ys: &[f32]) -> RegHdRegressor {
    let cfg = RegHdConfig::builder()
        .dim(dim)
        .models(K)
        .max_epochs(2)
        .min_epochs(1)
        .seed(31)
        .build();
    let mut m = RegHdRegressor::new(
        cfg,
        Box::new(encoding::NonlinearEncoder::new(FEATURES, dim, 31)),
    );
    m.fit(&xs[..xs.len().min(200)], &ys[..ys.len().min(200)]);
    m
}

struct Sample {
    dim: usize,
    threads: usize,
    encode_rps: f64,
    predict_rps: f64,
}

fn bench_dim(dim: usize, rows: usize, out: &mut Vec<Sample>) {
    let (xs, ys) = workload(rows, 77);
    let model = trained(dim, &xs, &ys);

    // Warm-up + sequential reference for the bit-exactness assertion.
    model.set_threads(1);
    let reference: Vec<u32> = model
        .predict_batch(&xs)
        .iter()
        .map(|p| p.to_bits())
        .collect();
    let enc_reference = model.encoder().encode_batch(&xs[..xs.len().min(64)], 1);

    for threads in THREADS {
        let start = std::time::Instant::now();
        let encoded = model.encoder().encode_batch(&xs, threads);
        let encode_rps = xs.len() as f64 / start.elapsed().as_secs_f64();
        for (a, b) in encoded.iter().zip(&enc_reference) {
            assert_eq!(a.as_slice(), b.as_slice(), "encode diverged at {threads}t");
        }

        model.set_threads(threads);
        let start = std::time::Instant::now();
        let preds = model.predict_batch(&xs);
        let predict_rps = xs.len() as f64 / start.elapsed().as_secs_f64();
        let got: Vec<u32> = preds.iter().map(|p| p.to_bits()).collect();
        assert_eq!(got, reference, "predict diverged at {threads} threads");

        out.push(Sample {
            dim,
            threads,
            encode_rps,
            predict_rps,
        });
    }
    model.set_threads(1);
}

fn main() {
    let quick = std::env::args().any(|a| a == "--test");
    let rows = if quick { 64 } else { 2_000 };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut samples = Vec::new();
    for dim in [2048usize, 8192] {
        bench_dim(dim, rows, &mut samples);
    }

    let simd = hdc::simd::active_label();
    println!("parallel scaling (k={K}, rows={rows}, cores={cores}, simd={simd})");
    let mut json = format!(
        "{{\n  \"k\": {K},\n  \"rows\": {rows},\n  \"cores\": {cores},\n  \
         \"simd\": \"{simd}\",\n  \"samples\": [\n"
    );
    for (i, s) in samples.iter().enumerate() {
        let base = samples
            .iter()
            .find(|b| b.dim == s.dim && b.threads == 1)
            .expect("1-thread baseline present");
        println!(
            "  dim={:<5} threads={} : encode {:>9.0} rows/sec ({:.2}x)  predict {:>9.0} rows/sec ({:.2}x)",
            s.dim,
            s.threads,
            s.encode_rps,
            s.encode_rps / base.encode_rps,
            s.predict_rps,
            s.predict_rps / base.predict_rps,
        );
        json.push_str(&format!(
            "    {{\"dim\": {}, \"threads\": {}, \"encode_rows_per_sec\": {:.1}, \
             \"predict_rows_per_sec\": {:.1}, \"encode_speedup\": {:.3}, \
             \"predict_speedup\": {:.3}}}{}\n",
            s.dim,
            s.threads,
            s.encode_rps,
            s.predict_rps,
            s.encode_rps / base.encode_rps,
            s.predict_rps / base.predict_rps,
            if i + 1 == samples.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");

    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/parallel.json");
    match std::fs::write(&out, &json) {
        Ok(()) => println!("summary written to {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }
}
