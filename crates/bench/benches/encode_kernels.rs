//! Single-thread throughput of the blocked encode kernels: scalar
//! (per-row `encode`) vs cache-blocked batch (`encode_batch_into`,
//! threads=1) vs blocked + `TrigMode::Fast`, at dim ∈ {2048, 8192} and
//! batch ∈ {1, 32, 256}. Writes a JSON summary to
//! `results/encode_kernels.json`.
//!
//! Plain `main` harness (no criterion): the subject is wall-clock rows/sec,
//! and the blocked path guarantees bit-identical outputs in Exact mode,
//! which this bench re-asserts on every configuration it times.
//!
//! Unlike `parallel_scaling`, every number here is **single-thread**: the
//! blocked speedup comes from weight-tile reuse (cache blocking) and
//! unrolled independent accumulators (instruction-level parallelism), not
//! from extra cores, so it holds on a 1-core host. Fast trig adds a
//! second, opt-in multiplier on top by replacing libm `sin`/`cos` with a
//! range-reduced polynomial (bounded error, see
//! `hdc::kernels::FAST_TRIG_MAX_ABS_ERROR`).

use encoding::Encoder;
use hdc::rng::HdRng;
use hdc::{RealHv, TrigMode};

const FEATURES: usize = 64;
const DIMS: [usize; 2] = [2048, 8192];
const BATCHES: [usize; 3] = [1, 32, 256];

fn workload(rows: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = HdRng::seed_from(seed);
    (0..rows)
        .map(|_| (0..FEATURES).map(|_| rng.next_gaussian() as f32).collect())
        .collect()
}

struct Sample {
    dim: usize,
    batch: usize,
    scalar_rps: f64,
    blocked_rps: f64,
    fast_rps: f64,
}

/// Times `f` over `iters` repetitions and returns rows/sec.
fn time_rps(rows_per_iter: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let start = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    (rows_per_iter * iters) as f64 / start.elapsed().as_secs_f64()
}

fn bench_config(dim: usize, batch: usize, target_rows: usize, out: &mut Vec<Sample>) {
    let enc = encoding::NonlinearEncoder::new(FEATURES, dim, 41);
    let xs = workload(batch, 41 + dim as u64 + batch as u64);
    // Scale the repeat count so every configuration touches roughly the
    // same number of rows (at least one pass each).
    let iters = (target_rows / batch).max(1);

    // Correctness gate before timing: the blocked path must be
    // bit-identical to the scalar one in Exact mode.
    let mut buf = vec![RealHv::default(); batch];
    enc.encode_batch_into(&xs, &mut buf, 1);
    for (x, got) in xs.iter().zip(&buf) {
        let want = enc.encode(x);
        assert_eq!(
            want.as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            got.as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            "blocked kernel diverged at dim={dim} batch={batch}"
        );
    }

    let scalar_rps = time_rps(batch, iters, || {
        for x in &xs {
            std::hint::black_box(enc.encode(x));
        }
    });
    let blocked_rps = time_rps(batch, iters, || {
        enc.encode_batch_into(&xs, &mut buf, 1);
        std::hint::black_box(&buf);
    });
    enc.set_trig_mode(TrigMode::Fast);
    let fast_rps = time_rps(batch, iters, || {
        enc.encode_batch_into(&xs, &mut buf, 1);
        std::hint::black_box(&buf);
    });
    enc.set_trig_mode(TrigMode::Exact);

    out.push(Sample {
        dim,
        batch,
        scalar_rps,
        blocked_rps,
        fast_rps,
    });
}

fn main() {
    let quick = std::env::args().any(|a| a == "--test");
    let target_rows = if quick { 32 } else { 2_048 };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut samples = Vec::new();
    for dim in DIMS {
        for batch in BATCHES {
            bench_config(dim, batch, target_rows, &mut samples);
        }
    }

    let simd = hdc::simd::active_label();
    println!("encode kernels (features={FEATURES}, target_rows={target_rows}, cores={cores}, simd={simd}, single-thread)");
    let mut json = format!(
        "{{\n  \"features\": {FEATURES},\n  \"target_rows\": {target_rows},\n  \
         \"cores\": {cores},\n  \"simd\": \"{simd}\",\n  \"threads\": 1,\n  \"samples\": [\n"
    );
    for (i, s) in samples.iter().enumerate() {
        let blocked_speedup = s.blocked_rps / s.scalar_rps;
        let fast_speedup = s.fast_rps / s.scalar_rps;
        println!(
            "  dim={:<5} batch={:<4}: scalar {:>9.0} rows/s  blocked {:>9.0} rows/s ({:.2}x)  \
             blocked+fast {:>9.0} rows/s ({:.2}x)",
            s.dim, s.batch, s.scalar_rps, s.blocked_rps, blocked_speedup, s.fast_rps, fast_speedup,
        );
        json.push_str(&format!(
            "    {{\"dim\": {}, \"batch\": {}, \"scalar_rows_per_sec\": {:.1}, \
             \"blocked_rows_per_sec\": {:.1}, \"fast_rows_per_sec\": {:.1}, \
             \"blocked_speedup\": {:.3}, \"fast_speedup\": {:.3}}}{}\n",
            s.dim,
            s.batch,
            s.scalar_rps,
            s.blocked_rps,
            s.fast_rps,
            blocked_speedup,
            fast_speedup,
            if i + 1 == samples.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");

    let out =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/encode_kernels.json");
    match std::fs::write(&out, &json) {
        Ok(()) => println!("summary written to {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }
}
