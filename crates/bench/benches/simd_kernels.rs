//! Throughput of the runtime-dispatched SIMD kernels and the bit-packed
//! binary inference tier, single-thread, at dim ∈ {2048, 8192}:
//!
//! * **f32 scalar** — full-precision Eq. 6 predict with dispatch forced to
//!   the scalar fallback (bit-identical to the pre-SIMD blocked kernels).
//! * **f32 simd** — the same path on the auto-detected vector ISA.
//! * **binary** — the §3.2 bit-packed popcount tier (int8 projection +
//!   fast trig + Hamming similarity + popcount scores) on the active ISA.
//!
//! Before timing, every configuration re-asserts the dispatch invariant:
//! forced-scalar and active-ISA full-precision predictions must be
//! **bit-identical** (the SIMD lanes keep the fixed k-ascending reduction
//! order), and likewise for the binary tier.
//!
//! Each measured tier is cross-checked against the `hwmodel` op-cost
//! tables (`DeviceProfile::host_cpu`): the JSON records predicted vs
//! measured per-row time and flags any tier where they disagree by more
//! than 2×. The ISSUE 10 acceptance gates — binary ≥ 10× f32-scalar at
//! D=8192, SIMD f32 ≥ the scalar/blocked numbers — are asserted in full
//! runs (skipped under `--test`, where timings are too short to be
//! stable). Writes `results/simd_kernels.json`.

use hdc::rng::HdRng;
use hdc::simd::{self, SimdLevel};
use hwmodel::algos::{binary_tier_infer_cost, reghd_infer_cost, RegHdShape};
use hwmodel::device::DeviceProfile;
use reghd::config::{ClusterMode, PredictionMode, RegHdConfig};
use reghd::{PredictScratch, RegHdRegressor, Regressor};

const FEATURES: usize = 32;
const MODELS: usize = 4;
const DIMS: [usize; 2] = [2048, 8192];
/// Nominal clock for the absolute-time predictions. The container's real
/// frequency is unknown, which is exactly what the ±2× band absorbs.
const HOST_FREQ_HZ: f64 = 3.0e9;

fn workload(rows: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = HdRng::seed_from(seed);
    (0..rows)
        .map(|_| (0..FEATURES).map(|_| rng.next_gaussian() as f32).collect())
        .collect()
}

fn train_model(dim: usize) -> RegHdRegressor {
    let xs = workload(200, 7 + dim as u64);
    let ys: Vec<f32> = xs.iter().map(|x| x[0] + x[1] * x[2]).collect();
    let cfg = RegHdConfig::builder()
        .dim(dim)
        .models(MODELS)
        .max_epochs(2)
        .min_epochs(2)
        .cluster_mode(ClusterMode::FrameworkBinary)
        .prediction_mode(PredictionMode::Full)
        .seed(7)
        .build();
    let mut m = RegHdRegressor::new(
        cfg,
        Box::new(encoding::NonlinearEncoder::new(FEATURES, dim, 7)),
    );
    m.set_threads(1);
    m.fit(&xs, &ys);
    m
}

/// Times `f` over `iters` repetitions and returns rows/sec.
fn time_rps(rows_per_iter: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let start = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    (rows_per_iter * iters) as f64 / start.elapsed().as_secs_f64()
}

struct TierCheck {
    tier: &'static str,
    predicted_us: f64,
    measured_us: f64,
}

impl TierCheck {
    fn ratio(&self) -> f64 {
        self.predicted_us / self.measured_us
    }

    fn flagged(&self) -> bool {
        !(0.5..=2.0).contains(&self.ratio())
    }
}

struct Sample {
    dim: usize,
    f32_scalar_rps: f64,
    f32_simd_rps: f64,
    binary_rps: f64,
    /// Held-out RMSE of the full-precision path vs the bit-packed tier on
    /// the training task — the accuracy side of the accuracy-vs-latency
    /// table in `EXPERIMENTS.md` (paper §3.2 quality-loss claims).
    rmse_full: f64,
    rmse_binary: f64,
    checks: Vec<TierCheck>,
}

fn rmse(pred: &[f32], ys: &[f32]) -> f64 {
    let se: f64 = pred
        .iter()
        .zip(ys)
        .map(|(&p, &y)| (p as f64 - y as f64).powi(2))
        .sum();
    (se / ys.len() as f64).sqrt()
}

fn bits_of(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn bench_dim(dim: usize, target_rows: usize, active: SimdLevel, out: &mut Vec<Sample>) {
    let model = train_model(dim);
    let batch = 32usize;
    let xs = workload(batch, 91 + dim as u64);
    let iters = (target_rows / batch).max(1);
    let mut scratch = PredictScratch::default();

    // Dispatch bit-identity gate: scalar fallback and active ISA must
    // produce the same bits on both tiers before either is timed.
    simd::set_level(SimdLevel::Scalar).expect("scalar is always available");
    let full_scalar = model.predict_batch_with(&xs, &mut scratch);
    let bin_scalar = model.predict_batch_binary_with(&xs, &mut scratch);
    simd::set_level(active).expect("detected level must be available");
    let full_simd = model.predict_batch_with(&xs, &mut scratch);
    let bin_simd = model.predict_batch_binary_with(&xs, &mut scratch);
    assert_eq!(
        bits_of(&full_scalar),
        bits_of(&full_simd),
        "f32 path diverged between scalar and {} at dim={dim}",
        active.label()
    );
    assert_eq!(
        bits_of(&bin_scalar),
        bits_of(&bin_simd),
        "binary tier diverged between scalar and {} at dim={dim}",
        active.label()
    );

    // Held-out accuracy of the two tiers on the training task.
    let eval_xs = workload(256, 173 + dim as u64);
    let eval_ys: Vec<f32> = eval_xs.iter().map(|x| x[0] + x[1] * x[2]).collect();
    let rmse_full = rmse(&model.predict_batch_with(&eval_xs, &mut scratch), &eval_ys);
    let rmse_binary = rmse(
        &model.predict_batch_binary_with(&eval_xs, &mut scratch),
        &eval_ys,
    );

    simd::set_level(SimdLevel::Scalar).expect("scalar is always available");
    let f32_scalar_rps = time_rps(batch, iters, || {
        std::hint::black_box(model.predict_batch_with(&xs, &mut scratch));
    });
    simd::set_level(active).expect("detected level must be available");
    let f32_simd_rps = time_rps(batch, iters, || {
        std::hint::black_box(model.predict_batch_with(&xs, &mut scratch));
    });
    let binary_rps = time_rps(batch, iters, || {
        std::hint::black_box(model.predict_batch_binary_with(&xs, &mut scratch));
    });

    // hwmodel cross-check: predicted per-row time per tier.
    let shape = RegHdShape {
        dim: dim as u64,
        models: MODELS as u64,
        features: FEATURES as u64,
        cluster_binary: true,
        query_binary: false,
        model_binary: false,
    };
    let scalar_dev = DeviceProfile::host_cpu("scalar", HOST_FREQ_HZ);
    let active_dev = DeviceProfile::host_cpu(active.label(), HOST_FREQ_HZ);
    let checks = vec![
        TierCheck {
            tier: "f32_scalar",
            predicted_us: scalar_dev.time_s(&reghd_infer_cost(&shape)) * 1e6,
            measured_us: 1e6 / f32_scalar_rps,
        },
        TierCheck {
            tier: "f32_simd",
            predicted_us: active_dev.time_s(&reghd_infer_cost(&shape)) * 1e6,
            measured_us: 1e6 / f32_simd_rps,
        },
        TierCheck {
            tier: "binary",
            predicted_us: active_dev.time_s(&binary_tier_infer_cost(&shape)) * 1e6,
            measured_us: 1e6 / binary_rps,
        },
    ];

    out.push(Sample {
        dim,
        f32_scalar_rps,
        f32_simd_rps,
        binary_rps,
        rmse_full,
        rmse_binary,
        checks,
    });
}

fn main() {
    let quick = std::env::args().any(|a| a == "--test");
    let target_rows = if quick { 32 } else { 1_024 };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let active = simd::detect();
    let simd_label = active.label();

    let mut samples = Vec::new();
    for dim in DIMS {
        bench_dim(dim, target_rows, active, &mut samples);
    }

    println!(
        "simd kernels (features={FEATURES}, k={MODELS}, target_rows={target_rows}, \
         cores={cores}, simd={simd_label}, single-thread)"
    );
    let mut json = format!(
        "{{\n  \"features\": {FEATURES},\n  \"k\": {MODELS},\n  \
         \"target_rows\": {target_rows},\n  \"cores\": {cores},\n  \
         \"simd\": \"{simd_label}\",\n  \"threads\": 1,\n  \"samples\": [\n"
    );
    for (i, s) in samples.iter().enumerate() {
        let simd_speedup = s.f32_simd_rps / s.f32_scalar_rps;
        let binary_speedup = s.binary_rps / s.f32_scalar_rps;
        println!(
            "  dim={:<5}: f32 scalar {:>8.0} rows/s  f32 {} {:>8.0} rows/s ({:.2}x)  \
             binary {:>9.0} rows/s ({:.1}x vs scalar f32)",
            s.dim,
            s.f32_scalar_rps,
            simd_label,
            s.f32_simd_rps,
            simd_speedup,
            s.binary_rps,
            binary_speedup,
        );
        let rmse_delta_pct = 100.0 * (s.rmse_binary - s.rmse_full) / s.rmse_full;
        println!(
            "    accuracy: rmse full {:.4}  binary {:.4}  (binary +{:.2}%)",
            s.rmse_full, s.rmse_binary, rmse_delta_pct,
        );
        for c in &s.checks {
            println!(
                "    hwmodel {:<10}: predicted {:>8.1} µs/row  measured {:>8.1} µs/row  \
                 ratio {:.2}{}",
                c.tier,
                c.predicted_us,
                c.measured_us,
                c.ratio(),
                if c.flagged() {
                    "  ** >2x disagreement **"
                } else {
                    ""
                },
            );
        }
        let checks_json: Vec<String> = s
            .checks
            .iter()
            .map(|c| {
                format!(
                    "        {{\"tier\": \"{}\", \"predicted_us_per_row\": {:.2}, \
                     \"measured_us_per_row\": {:.2}, \"predicted_over_measured\": {:.3}, \
                     \"flagged\": {}}}",
                    c.tier,
                    c.predicted_us,
                    c.measured_us,
                    c.ratio(),
                    c.flagged(),
                )
            })
            .collect();
        json.push_str(&format!(
            "    {{\n      \"dim\": {},\n      \"f32_scalar_rows_per_sec\": {:.1},\n      \
             \"f32_simd_rows_per_sec\": {:.1},\n      \"binary_rows_per_sec\": {:.1},\n      \
             \"simd_speedup\": {:.3},\n      \"binary_speedup_vs_scalar_f32\": {:.3},\n      \
             \"rmse_full\": {:.5},\n      \"rmse_binary\": {:.5},\n      \
             \"binary_rmse_delta_pct\": {:.2},\n      \
             \"hwmodel\": [\n{}\n      ]\n    }}{}\n",
            s.dim,
            s.f32_scalar_rps,
            s.f32_simd_rps,
            s.binary_rps,
            simd_speedup,
            binary_speedup,
            s.rmse_full,
            s.rmse_binary,
            rmse_delta_pct,
            checks_json.join(",\n"),
            if i + 1 == samples.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");

    let out =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/simd_kernels.json");
    match std::fs::write(&out, &json) {
        Ok(()) => println!("summary written to {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }

    // ISSUE 10 acceptance gates, enforced by exit status on full runs.
    if !quick {
        for s in &samples {
            assert!(
                s.f32_simd_rps >= s.f32_scalar_rps,
                "dim={}: SIMD f32 {:.0} rows/s slower than scalar {:.0}",
                s.dim,
                s.f32_simd_rps,
                s.f32_scalar_rps
            );
            if s.dim == 8192 {
                assert!(
                    s.binary_rps >= 10.0 * s.f32_scalar_rps,
                    "dim=8192: binary tier {:.0} rows/s < 10x scalar f32 {:.0}",
                    s.binary_rps,
                    s.f32_scalar_rps
                );
            }
        }
        println!("gates: SIMD f32 >= scalar at every dim; binary >= 10x scalar f32 at D=8192");
    }
}
