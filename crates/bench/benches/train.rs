//! Criterion benchmarks for full RegHD training runs — the software-side
//! counterpart of Figure 8's training-efficiency comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdc::rng::HdRng;
use reghd::config::{ClusterMode, PredictionMode, RegHdConfig};
use reghd::{RegHdRegressor, Regressor};

fn task(n: usize) -> (Vec<Vec<f32>>, Vec<f32>) {
    let mut rng = HdRng::seed_from(5);
    let xs: Vec<Vec<f32>> = (0..n)
        .map(|_| (0..6).map(|_| rng.next_gaussian() as f32).collect())
        .collect();
    let ys = xs
        .iter()
        .map(|x: &Vec<f32>| x[0] - x[1] + (2.0 * x[2]).sin())
        .collect();
    (xs, ys)
}

fn model(k: usize, cluster: ClusterMode, pred: PredictionMode) -> RegHdRegressor {
    let dim = 1024;
    let cfg = RegHdConfig::builder()
        .dim(dim)
        .models(k)
        .max_epochs(5)
        .min_epochs(5)
        .convergence_tol(0.0)
        .seed(7)
        .cluster_mode(cluster)
        .prediction_mode(pred)
        .build();
    RegHdRegressor::new(cfg, Box::new(encoding::NonlinearEncoder::new(6, dim, 7)))
}

fn bench_train_by_models(c: &mut Criterion) {
    let (xs, ys) = task(300);
    let mut group = c.benchmark_group("train/by-model-count");
    group.sample_size(10);
    for k in [1usize, 2, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut m = model(k, ClusterMode::Integer, PredictionMode::Full);
                m.fit(&xs, &ys)
            })
        });
    }
    group.finish();
}

fn bench_train_by_quantisation(c: &mut Criterion) {
    let (xs, ys) = task(300);
    let mut group = c.benchmark_group("train/by-quantisation");
    group.sample_size(10);
    let configs: [(&str, ClusterMode, PredictionMode); 3] = [
        ("full", ClusterMode::Integer, PredictionMode::Full),
        (
            "quant-cluster",
            ClusterMode::FrameworkBinary,
            PredictionMode::Full,
        ),
        (
            "binary-query",
            ClusterMode::FrameworkBinary,
            PredictionMode::BinaryQuery,
        ),
    ];
    for (name, cm, pm) in configs {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut m = model(4, cm, pm);
                m.fit(&xs, &ys)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_train_by_models, bench_train_by_quantisation);
criterion_main!(benches);
