//! Criterion micro-benchmarks for similarity search — the operation the
//! quantised-clustering framework (§3.1) accelerates.
//!
//! Measures the real speedup of packed-word Hamming similarity over
//! full-precision cosine (the paper's "costly cosine similarity"), plus the
//! value of bit-packing itself against a naive per-bit loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdc::rng::HdRng;
use hdc::similarity::{cosine, hamming_distance, softmax};
use hdc::{BinaryHv, RealHv};

fn bench_cosine_vs_hamming(c: &mut Criterion) {
    let mut rng = HdRng::seed_from(2);
    let mut group = c.benchmark_group("similarity/cosine-vs-hamming");
    for dim in [1024usize, 4096] {
        let a = RealHv::random_gaussian(dim, &mut rng);
        let b = RealHv::random_gaussian(dim, &mut rng);
        let ab = BinaryHv::random(dim, &mut rng);
        let bb = BinaryHv::random(dim, &mut rng);
        group.bench_with_input(BenchmarkId::new("cosine", dim), &dim, |bch, _| {
            bch.iter(|| cosine(&a, &b))
        });
        group.bench_with_input(BenchmarkId::new("hamming-packed", dim), &dim, |bch, _| {
            bch.iter(|| hamming_distance(&ab, &bb))
        });
        group.bench_with_input(BenchmarkId::new("hamming-naive", dim), &dim, |bch, _| {
            bch.iter(|| {
                // Per-bit loop, as unpacked hardware-naive code would do.
                let mut acc = 0usize;
                for i in 0..dim {
                    if ab.get(i) != bb.get(i) {
                        acc += 1;
                    }
                }
                acc
            })
        });
    }
    group.finish();
}

fn bench_cluster_search(c: &mut Criterion) {
    // Full k-way search, the §2.4 step ② at k = 8.
    let mut rng = HdRng::seed_from(3);
    let dim = 2048;
    let k = 8;
    let clusters_real: Vec<RealHv> = (0..k)
        .map(|_| RealHv::random_gaussian(dim, &mut rng))
        .collect();
    let clusters_bin: Vec<BinaryHv> = (0..k).map(|_| BinaryHv::random(dim, &mut rng)).collect();
    let q_real = RealHv::random_gaussian(dim, &mut rng);
    let q_bin = BinaryHv::random(dim, &mut rng);
    let mut group = c.benchmark_group("similarity/cluster-search-k8");
    group.bench_function("cosine-search", |b| {
        b.iter(|| {
            let sims: Vec<f32> = clusters_real.iter().map(|c| cosine(&q_real, c)).collect();
            softmax(&sims, 8.0)
        })
    });
    group.bench_function("hamming-search", |b| {
        b.iter(|| {
            let sims: Vec<f32> = clusters_bin
                .iter()
                .map(|c| 1.0 - 2.0 * hamming_distance(&q_bin, c) as f32 / dim as f32)
                .collect();
            softmax(&sims, 8.0)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cosine_vs_hamming, bench_cluster_search);
criterion_main!(benches);
