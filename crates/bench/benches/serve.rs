//! Serving-path throughput: the same trained model (dim 2048, k = 8)
//! driven three ways — a single thread calling the model directly, the
//! `reghd-serve` worker pool with one row per dispatch, and the worker
//! pool fed through the micro-batcher. Reports rows/sec for each and
//! writes a JSON summary to `results/serve.json`.
//!
//! Plain `main` harness (no criterion): the subject here is end-to-end
//! queueing throughput, not statement-level latency, so one warmed wall
//! clock measurement per configuration is the honest number.

use datasets::Dataset;
use hdc::rng::HdRng;
use reghd_serve::batcher::{Batcher, BatcherConfig, EnqueueResult};
use reghd_serve::bundle;
use reghd_serve::metrics::ModelMetrics;
use reghd_serve::registry::{ModelRegistry, ServedModel};
use reghd_serve::worker::{Batch, WorkItem, WorkerPool};
use std::sync::mpsc::sync_channel;
use std::sync::Arc;
use std::time::{Duration, Instant};

const DIM: usize = 2048;
const K: usize = 8;
const FEATURES: usize = 8;
const ROWS: usize = 4_000;
const WORKERS: usize = 4;

fn trained_model() -> Arc<ServedModel> {
    let mut rng = HdRng::seed_from(21);
    let features: Vec<Vec<f32>> = (0..300)
        .map(|_| (0..FEATURES).map(|_| rng.next_gaussian() as f32).collect())
        .collect();
    let targets: Vec<f32> = features.iter().map(|x| x[0] + x[1] * x[2]).collect();
    let ds = Dataset::new("serve-bench", features, targets);
    let (b, _) = bundle::train(&ds, DIM, K, 3, 21, false).expect("train");
    let registry = ModelRegistry::new();
    registry
        .load_bytes("bench", &b.to_bytes().expect("serialise"))
        .expect("load");
    registry.get("bench").expect("get")
}

fn workload() -> Vec<Vec<f32>> {
    let mut rng = HdRng::seed_from(22);
    (0..ROWS)
        .map(|_| (0..FEATURES).map(|_| rng.next_gaussian() as f32).collect())
        .collect()
}

/// Baseline: one thread, one row per model call.
fn bench_single_thread(model: &ServedModel, rows: &[Vec<f32>]) -> f64 {
    let start = Instant::now();
    for row in rows {
        let got = model
            .bundle
            .predict(std::slice::from_ref(row))
            .expect("predict");
        assert_eq!(got.len(), 1);
    }
    rows.len() as f64 / start.elapsed().as_secs_f64()
}

/// Worker pool with no coalescing: every row is its own batch.
fn bench_worker_pool(model: &Arc<ServedModel>, rows: &[Vec<f32>]) -> f64 {
    let pool = WorkerPool::new(WORKERS, WORKERS * 4).expect("spawn workers");
    let metrics = Arc::new(ModelMetrics::default());
    let start = Instant::now();
    let mut rxs = Vec::with_capacity(rows.len());
    for row in rows {
        let (tx, rx) = sync_channel(1);
        pool.submit(Batch {
            model: model.clone(),
            metrics: metrics.clone(),
            items: vec![WorkItem {
                row: row.clone(),
                enqueued_at: Instant::now(),
                deadline: None,
                reply: tx.into(),
            }],
        })
        .expect("submit");
        rxs.push(rx);
    }
    for rx in rxs {
        rx.recv().expect("reply").expect("prediction");
    }
    rows.len() as f64 / start.elapsed().as_secs_f64()
}

/// Worker pool fed through the micro-batcher (coalesces under load).
fn bench_micro_batched(model: &Arc<ServedModel>, rows: &[Vec<f32>], max_batch: usize) -> f64 {
    let pool = Arc::new(WorkerPool::new(WORKERS, WORKERS * 4).expect("spawn workers"));
    let metrics = Arc::new(ModelMetrics::default());
    let batcher = Batcher::new(
        BatcherConfig {
            max_batch,
            max_wait: Duration::from_micros(200),
            queue_cap: ROWS + 1,
        },
        pool,
    )
    .expect("spawn dispatcher");
    let start = Instant::now();
    let mut rxs = Vec::with_capacity(rows.len());
    for row in rows {
        let (tx, rx) = sync_channel(1);
        let accepted = batcher.enqueue(
            model.clone(),
            metrics.clone(),
            WorkItem {
                row: row.clone(),
                enqueued_at: Instant::now(),
                deadline: None,
                reply: tx.into(),
            },
        );
        assert!(
            matches!(accepted, EnqueueResult::Accepted),
            "queue sized for the whole workload"
        );
        rxs.push(rx);
    }
    for rx in rxs {
        rx.recv().expect("reply").expect("prediction");
    }
    rows.len() as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--test");
    let model = trained_model();
    let rows = {
        let mut r = workload();
        if quick {
            r.truncate(200);
        }
        r
    };

    // Warm-up pass so page faults and lazy allocs don't bias mode one.
    let _ = model.bundle.predict(&rows[..rows.len().min(64)]);

    let single = bench_single_thread(&model, &rows);
    let pooled = bench_worker_pool(&model, &rows);
    let batched = bench_micro_batched(&model, &rows, 32);

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let simd = hdc::simd::active_label();
    println!(
        "serve throughput (dim={DIM}, k={K}, rows={}, workers={WORKERS}, cores={cores}, \
         simd={simd})",
        rows.len()
    );
    println!("  single-thread : {single:>10.0} rows/sec");
    println!(
        "  worker-pool   : {pooled:>10.0} rows/sec ({:.2}x)",
        pooled / single
    );
    println!(
        "  micro-batched : {batched:>10.0} rows/sec ({:.2}x)",
        batched / single
    );

    let json = format!(
        "{{\n  \"dim\": {DIM},\n  \"k\": {K},\n  \"rows\": {},\n  \"workers\": {WORKERS},\n  \
         \"cores\": {cores},\n  \"simd\": \"{simd}\",\n  \
         \"rows_per_sec\": {{\n    \"single_thread\": {single:.1},\n    \
         \"worker_pool\": {pooled:.1},\n    \"micro_batched\": {batched:.1}\n  }}\n}}\n",
        rows.len()
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/serve.json");
    match std::fs::write(&out, &json) {
        Ok(()) => println!("summary written to {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }
}
