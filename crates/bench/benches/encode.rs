//! Criterion micro-benchmarks for the encoding stage (paper §2.2).
//!
//! Backs the per-operation latencies behind the Figure 8/9 efficiency
//! model: encoding cost scales with `n × D`, and the binary encoding adds
//! only a sign-quantisation pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use encoding::{Encoder, IdLevelEncoder, NonlinearEncoder, ProjectionEncoder, RffEncoder};
use hdc::rng::HdRng;

fn input(n: usize) -> Vec<f32> {
    let mut rng = HdRng::seed_from(1);
    (0..n).map(|_| rng.next_gaussian() as f32).collect()
}

fn bench_encoders(c: &mut Criterion) {
    let n = 10;
    let x = input(n);
    let mut group = c.benchmark_group("encode/by-encoder");
    let dim = 2048;
    let nonlinear = NonlinearEncoder::new(n, dim, 0);
    let rff = RffEncoder::new(n, dim, 1.0, 0);
    let proj = ProjectionEncoder::new(n, dim, 0);
    let idl = IdLevelEncoder::new(n, dim, 32, (-3.0, 3.0), 0);
    group.bench_function("nonlinear(cos*sin)", |b| b.iter(|| nonlinear.encode(&x)));
    group.bench_function("rff(cos)", |b| b.iter(|| rff.encode(&x)));
    group.bench_function("projection(linear)", |b| b.iter(|| proj.encode(&x)));
    group.bench_function("id-level", |b| b.iter(|| idl.encode(&x)));
    group.finish();
}

fn bench_encode_dims(c: &mut Criterion) {
    let n = 10;
    let x = input(n);
    let mut group = c.benchmark_group("encode/by-dimension");
    for dim in [512usize, 1024, 2048, 4096] {
        let enc = NonlinearEncoder::new(n, dim, 0);
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, _| {
            b.iter(|| enc.encode(&x))
        });
    }
    group.finish();
}

fn bench_encode_binary(c: &mut Criterion) {
    let n = 10;
    let x = input(n);
    let dim = 2048;
    let enc = NonlinearEncoder::new(n, dim, 0);
    let mut group = c.benchmark_group("encode/precision");
    group.bench_function("real-only", |b| b.iter(|| enc.encode(&x)));
    group.bench_function("real+binary", |b| b.iter(|| enc.encode_both(&x)));
    group.finish();
}

criterion_group!(
    benches,
    bench_encoders,
    bench_encode_dims,
    bench_encode_binary
);
criterion_main!(benches);
