//! Store scale: a million resident per-user models on one box.
//!
//! Stands up a [`reghd_store::ModelStore`] with 1M resident keys (bundle
//! headers indexed, bodies cold in mmap'd packfiles), then measures the
//! numbers that justify the design:
//!
//! * **resident overhead** — RSS before/after indexing 1M keys: the
//!   per-key cost of *residency* (index entry + shard routing), as
//!   opposed to the per-key cost of a *decoded* model (LRU-bounded);
//! * **cold-load latency** — p50/p99 of `get()` on keys outside the hot
//!   set: mmap read + lazy section verification + decode;
//! * **hot-hit latency** — p50/p99 of `get()` on a resident decode;
//! * **hot-swap latency** — p50/p99 of a canary-gated `publish_full` to
//!   one key, and an assertion that the swap leaves every other key's
//!   decoded model untouched (pointer identity).
//!
//! Plain `main` harness; `--test` runs a small configuration. Writes
//! `results/store.json` (including `cores` — latency percentiles are only
//! comparable within a machine class).

use reghd::config::RegHdConfig;
use reghd::{RegHdRegressor, Regressor};
use reghd_serve::bundle::ModelBundle;
use reghd_store::{ModelStore, StoreConfig};
use std::sync::Arc;
use std::time::Instant;

const FEATURES: usize = 4;
const DIM: usize = 256;

/// Resident set size in bytes from /proc/self/statm (0 where absent).
fn rss_bytes() -> u64 {
    let Ok(statm) = std::fs::read_to_string("/proc/self/statm") else {
        return 0;
    };
    statm
        .split_whitespace()
        .nth(1)
        .and_then(|v| v.parse::<u64>().ok())
        .map_or(0, |pages| pages * 4096)
}

fn trained_bytes(seed: u64) -> Vec<u8> {
    let rows: Vec<Vec<f32>> = (0..80)
        .map(|i| {
            (0..FEATURES)
                .map(|j| ((i * 7 + j * 3 + seed as usize) % 17) as f32 / 8.5 - 1.0)
                .collect()
        })
        .collect();
    let ys: Vec<f32> = rows
        .iter()
        .map(|r| 2.0 * r[0] - r[1] + 0.5 * r[2])
        .collect();
    let cfg = RegHdConfig::builder()
        .dim(DIM)
        .models(2)
        .seed(seed)
        .max_epochs(4)
        .build();
    let mut model = RegHdRegressor::new(
        cfg,
        Box::new(encoding::NonlinearEncoder::new(FEATURES, DIM, seed ^ 0xC11)),
    );
    model.fit(&rows, &ys);
    ModelBundle::from_trained(
        model,
        vec![0.0; FEATURES],
        vec![1.0; FEATURES],
        0.0,
        1.0,
        &rows,
    )
    .unwrap()
    .to_bytes()
    .unwrap()
}

/// Deterministic key-index sequence (no clock, no rand).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self, bound: usize) -> usize {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.0 >> 33) % bound as u64) as usize
    }
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx]
}

fn time_us(f: impl FnOnce()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64() * 1e6
}

fn main() {
    let quick = std::env::args().any(|a| a == "--test");
    let keys: usize = if quick { 20_000 } else { 1_000_000 };
    let probes: usize = if quick { 500 } else { 2_000 };
    let swaps: usize = if quick { 20 } else { 200 };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let simd = hdc::simd::active_label();

    let dir = std::env::temp_dir().join("reghd_store_scale_bench");
    let _ = std::fs::remove_dir_all(&dir);
    let store = ModelStore::open(
        &dir,
        StoreConfig {
            shards: 64,
            hot_budget_bytes: 64 << 20,
        },
    )
    .unwrap();

    let bytes = trained_bytes(5);
    let rss_start = rss_bytes();
    let start = Instant::now();
    store.bulk_alias("u", keys, &bytes).unwrap();
    let index_secs = start.elapsed().as_secs_f64();
    let rss_indexed = rss_bytes();
    let per_key = (rss_indexed.saturating_sub(rss_start)) as f64 / keys as f64;
    println!(
        "indexed {keys} resident keys in {index_secs:.2}s: RSS {:.1} MiB -> {:.1} MiB \
         ({per_key:.0} bytes/key)",
        rss_start as f64 / (1 << 20) as f64,
        rss_indexed as f64 / (1 << 20) as f64,
    );

    // Cold loads: never-touched keys — each get is pack read + lazy-CRC
    // decode. The hot budget (64 MiB) holds every decode at this model
    // size, so distinct fresh keys stay cold on first touch.
    let mut lcg = Lcg(0x5eed);
    let mut cold_us: Vec<f64> = Vec::with_capacity(probes);
    let mut seen = std::collections::HashSet::new();
    while cold_us.len() < probes {
        let i = lcg.next(keys);
        if !seen.insert(i) {
            continue;
        }
        let key = format!("u{i}");
        cold_us.push(time_us(|| {
            store.get(&key).unwrap();
        }));
    }
    cold_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let (cold_p50, cold_p99) = (percentile(&cold_us, 0.5), percentile(&cold_us, 0.99));
    println!("cold load: p50 {cold_p50:.1}µs  p99 {cold_p99:.1}µs  (n={probes})");
    assert!(
        cold_p99 < 1_000.0,
        "cold-load p99 must stay under 1ms, got {cold_p99:.1}µs"
    );

    // Hot hits: re-resolve keys that are now resident.
    let hot_keys: Vec<String> = seen.iter().take(probes).map(|i| format!("u{i}")).collect();
    let mut hot_us: Vec<f64> = hot_keys
        .iter()
        .map(|key| {
            time_us(|| {
                store.get(key).unwrap();
            })
        })
        .collect();
    hot_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let (hot_p50, hot_p99) = (percentile(&hot_us, 0.5), percentile(&hot_us, 0.99));
    println!("hot hit:   p50 {hot_p50:.2}µs  p99 {hot_p99:.2}µs");

    // Hot swap: canary-gated full publish to one key, while pinning the
    // decoded models of two bystander keys. The swap must not disturb
    // them — same Arc before and after.
    let bystander_a: Arc<_> = store.get("u0").unwrap();
    let bystander_b: Arc<_> = store.get("u1").unwrap();
    let swap_image = trained_bytes(6);
    let mut swap_us: Vec<f64> = Vec::with_capacity(swaps);
    for i in 0..swaps {
        // Alternate images so every publish really changes the bytes.
        let img = if i % 2 == 0 { &swap_image } else { &bytes };
        swap_us.push(time_us(|| {
            store.publish_full("u2", img).unwrap();
        }));
    }
    swap_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let (swap_p50, swap_p99) = (percentile(&swap_us, 0.5), percentile(&swap_us, 0.99));
    println!("hot swap:  p50 {swap_p50:.1}µs  p99 {swap_p99:.1}µs  ({swaps} publishes)");
    assert!(
        Arc::ptr_eq(&bystander_a, &store.get("u0").unwrap())
            && Arc::ptr_eq(&bystander_b, &store.get("u1").unwrap()),
        "hot swap must leave other keys' decoded models untouched"
    );
    assert_eq!(store.get("u2").unwrap().meta.version, 1 + swaps as u64);

    let rss_final = rss_bytes();
    let st = store.stats();
    println!(
        "final: RSS {:.1} MiB, hot {} models / {:.1} MiB (budget {:.0} MiB), \
         hits {} misses {} evictions {}",
        rss_final as f64 / (1 << 20) as f64,
        st.hot_entries,
        st.hot_bytes as f64 / (1 << 20) as f64,
        st.hot_budget as f64 / (1 << 20) as f64,
        st.hits,
        st.misses,
        st.evictions,
    );

    let json = format!(
        "{{\n  \"keys\": {keys},\n  \"cores\": {cores},\n  \
         \"simd\": \"{simd}\",\n  \"dim\": {DIM},\n  \
         \"bundle_bytes\": {},\n  \"index_secs\": {index_secs:.3},\n  \
         \"rss_start_mb\": {:.1},\n  \"rss_indexed_mb\": {:.1},\n  \"rss_final_mb\": {:.1},\n  \
         \"index_bytes_per_key\": {per_key:.1},\n  \
         \"cold_load_p50_us\": {cold_p50:.1},\n  \"cold_load_p99_us\": {cold_p99:.1},\n  \
         \"hot_hit_p50_us\": {hot_p50:.2},\n  \"hot_hit_p99_us\": {hot_p99:.2},\n  \
         \"hot_swap_p50_us\": {swap_p50:.1},\n  \"hot_swap_p99_us\": {swap_p99:.1},\n  \
         \"hot_entries\": {},\n  \"hot_bytes\": {},\n  \"hot_budget_bytes\": {},\n  \
         \"evictions\": {}\n}}\n",
        bytes.len(),
        rss_start as f64 / (1 << 20) as f64,
        rss_indexed as f64 / (1 << 20) as f64,
        rss_final as f64 / (1 << 20) as f64,
        st.hot_entries,
        st.hot_bytes,
        st.hot_budget,
        st.evictions,
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/store.json");
    match std::fs::write(&out, &json) {
        Ok(()) => println!("summary written to {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
