//! Criterion benchmarks for single-query prediction across the §3.2
//! quantisation modes — the software-side counterpart of Figure 9's
//! inference columns.

use criterion::{criterion_group, criterion_main, Criterion};
use hdc::rng::HdRng;
use reghd::config::{ClusterMode, PredictionMode, RegHdConfig};
use reghd::{RegHdRegressor, Regressor};

fn trained(pred: PredictionMode) -> (RegHdRegressor, Vec<f32>) {
    let dim = 2048;
    let mut rng = HdRng::seed_from(9);
    let xs: Vec<Vec<f32>> = (0..200)
        .map(|_| (0..8).map(|_| rng.next_gaussian() as f32).collect())
        .collect();
    let ys: Vec<f32> = xs.iter().map(|x| x[0] + x[1] * x[2]).collect();
    let cfg = RegHdConfig::builder()
        .dim(dim)
        .models(8)
        .max_epochs(3)
        .min_epochs(3)
        .cluster_mode(ClusterMode::FrameworkBinary)
        .prediction_mode(pred)
        .seed(9)
        .build();
    let mut m = RegHdRegressor::new(cfg, Box::new(encoding::NonlinearEncoder::new(8, dim, 9)));
    m.fit(&xs, &ys);
    let probe: Vec<f32> = (0..8).map(|_| rng.next_gaussian() as f32).collect();
    (m, probe)
}

fn bench_predict_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("predict/by-mode");
    for mode in PredictionMode::ALL {
        let (m, x) = trained(mode);
        group.bench_function(mode.label(), |b| b.iter(|| m.predict_one(&x)));
    }
    group.finish();
}

criterion_group!(benches, bench_predict_modes);
criterion_main!(benches);
