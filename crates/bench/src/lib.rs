//! # reghd-bench — the evaluation harness
//!
//! One binary per table/figure of the paper's evaluation section (§4):
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `table1` | Table 1 — MSE of RegHD-k vs DNN / Linear / Tree / SVR / Baseline-HD on all seven datasets |
//! | `fig3`   | Figure 3 — quality vs training iterations; single vs multi model |
//! | `fig6`   | Figure 6 — cluster quantisation: integer vs framework-binary vs naive-binary |
//! | `fig7`   | Figure 7 — normalised quality across prediction quantisation configs |
//! | `fig8`   | Figure 8 — training/inference speed & energy vs DNN and Baseline-HD |
//! | `fig9`   | Figure 9 — efficiency across quantisation configs |
//! | `table2` | Table 2 — dimensionality sweep: quality loss and speed/energy |
//! | `ablation` | DESIGN.md §5 — update-rule / encoder / softmax-β ablations |
//! | `robustness` | §3 robustness claim — quality under injected hypervector noise |
//! | `online` | §2.3 — single-pass (streaming) vs iterative training |
//! | `friedman` | Friedman #1–#3 clean-ground-truth suite, extended model zoo |
//! | `capacity` | §2.3 capacity analysis — Eq. 4 vs Monte-Carlo |
//! | `sparsity` | SparseHD-style sparsification sweep — quality vs density |
//! | `chaos` | ISSUE 7 — overload + store-fault soak; survivability metrics → `results/chaos.json` |
//!
//! Run any of them with `cargo run -p reghd-bench --release --bin <name>`.
//!
//! The [`harness`] module holds the shared experiment plumbing: dataset
//! preparation (feature standardisation + target scaling fitted on the
//! train split), model factories with the tuned hyper-parameters, and the
//! evaluation loop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod report;
