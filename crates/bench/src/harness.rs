//! Shared experiment plumbing.
//!
//! Every experiment follows the same pipeline: generate the dataset, split
//! 80/20, standardise features and targets on the training split, fit the
//! model on standardised data, and report test MSE **in original target
//! units** (multiplying the standardised MSE back by the target variance).
//! Target standardisation puts every learner on the same footing — it is
//! what scikit-learn pipelines and the TensorFlow models of §4.2 do — and
//! the inverse transform makes the numbers comparable to Table 1.

use baselines::baseline_hd::{BaselineHd, BaselineHdConfig};
use baselines::mlp::{MlpConfig, MlpRegressor};
use baselines::svr::{SvrConfig, SvrRegressor};
use baselines::tree::{TreeConfig, TreeRegressor};
use baselines::LinearRegressor;
use datasets::normalize::{Standardizer, TargetScaler};
use datasets::split::train_test_split;
use datasets::Dataset;
use encoding::NonlinearEncoder;
use reghd::config::{ClusterMode, PredictionMode, RegHdConfig, UpdateRule};
use reghd::{RegHdRegressor, Regressor};

/// A dataset prepared for model fitting: split, standardised, with the
/// target scaler retained for reporting in original units.
#[derive(Debug, Clone)]
pub struct Prepared {
    /// Dataset name.
    pub name: String,
    /// Standardised training features.
    pub train_x: Vec<Vec<f32>>,
    /// Standardised training targets.
    pub train_y: Vec<f32>,
    /// Standardised test features.
    pub test_x: Vec<Vec<f32>>,
    /// Standardised test targets.
    pub test_y: Vec<f32>,
    /// Target scaler fitted on the training split.
    pub scaler: TargetScaler,
    /// Number of input features.
    pub features: usize,
}

/// Maximum training-set size the harness uses. Larger datasets (ccpp,
/// wine) are subsampled so the full sweep of every table/figure finishes in
/// minutes on a laptop; the subsample is deterministic and the cap is
/// reported in `EXPERIMENTS.md`.
pub const MAX_TRAIN: usize = 1500;
/// Maximum test-set size, matching [`MAX_TRAIN`]'s rationale.
pub const MAX_TEST: usize = 600;

/// Splits, subsamples, and standardises a dataset.
pub fn prepare(ds: &Dataset, seed: u64) -> Prepared {
    let (mut train, mut test) = train_test_split(ds, 0.2, seed);
    if train.len() > MAX_TRAIN {
        let idx: Vec<usize> = (0..MAX_TRAIN).collect();
        train = train.select(&idx);
    }
    if test.len() > MAX_TEST {
        let idx: Vec<usize> = (0..MAX_TEST).collect();
        test = test.select(&idx);
    }
    let std = Standardizer::fit(&train);
    let train_n = std.transform(&train);
    let test_n = std.transform(&test);
    let scaler = TargetScaler::fit(&train.targets);
    Prepared {
        name: ds.name.clone(),
        train_x: train_n.features,
        train_y: train.targets.iter().map(|&y| scaler.transform(y)).collect(),
        test_x: test_n.features,
        test_y: test.targets.iter().map(|&y| scaler.transform(y)).collect(),
        scaler,
        features: ds.num_features(),
    }
}

/// Outcome of fitting and evaluating one model on one prepared dataset.
#[derive(Debug, Clone)]
pub struct EvalOutcome {
    /// Model display name.
    pub model: String,
    /// Test MSE in original target units.
    pub test_mse: f32,
    /// Final training MSE in original target units.
    pub train_mse: f32,
    /// Epochs the fit ran.
    pub epochs: usize,
    /// Training wall-clock time.
    pub train_time: std::time::Duration,
    /// Standardised-unit training MSE history (for Figure 3a).
    pub history: Vec<f32>,
}

/// Fits `model` on the prepared training split and evaluates on the test
/// split, reporting MSE in original units.
pub fn evaluate(model: &mut dyn Regressor, prep: &Prepared) -> EvalOutcome {
    let start = std::time::Instant::now();
    let report = model.fit(&prep.train_x, &prep.train_y);
    let train_time = start.elapsed();
    let preds = model.predict(&prep.test_x);
    let test_mse_std = datasets::metrics::mse(&preds, &prep.test_y);
    EvalOutcome {
        model: model.name(),
        test_mse: prep.scaler.inverse_mse(test_mse_std),
        train_mse: prep
            .scaler
            .inverse_mse(report.final_mse().unwrap_or(f32::NAN)),
        epochs: report.epochs,
        train_time,
        history: report.train_mse_history,
    }
}

/// The hypervector dimensionality used by the main experiments (Table 1,
/// Figures 6–9). The paper uses D ≈ 4k; we default to 2k, which Table 2
/// (both the paper's and ours) shows costs ≈ 0.3% quality.
pub const DIM: usize = 2048;

/// Builds a RegHD model with the harness defaults.
pub fn reghd(features: usize, k: usize, seed: u64) -> RegHdRegressor {
    reghd_with(
        features,
        k,
        DIM,
        ClusterMode::Integer,
        PredictionMode::Full,
        seed,
    )
}

/// Builds a RegHD model with full control over the quantisation modes.
pub fn reghd_with(
    features: usize,
    k: usize,
    dim: usize,
    cluster: ClusterMode,
    pred: PredictionMode,
    seed: u64,
) -> RegHdRegressor {
    let cfg = RegHdConfig::builder()
        .dim(dim)
        .models(k)
        .max_epochs(40)
        .convergence_tol(5e-3)
        .patience(3)
        .cluster_mode(cluster)
        .prediction_mode(pred)
        .seed(seed)
        .build();
    let enc = NonlinearEncoder::new(features, dim, seed ^ 0xE4C0DE);
    RegHdRegressor::new(cfg, Box::new(enc))
}

/// Builds a RegHD model with an explicit update rule (for the ablation).
pub fn reghd_with_rule(features: usize, k: usize, rule: UpdateRule, seed: u64) -> RegHdRegressor {
    let cfg = RegHdConfig::builder()
        .dim(DIM)
        .models(k)
        .max_epochs(40)
        .convergence_tol(5e-3)
        .patience(3)
        .update_rule(rule)
        .seed(seed)
        .build();
    let enc = NonlinearEncoder::new(features, DIM, seed ^ 0xE4C0DE);
    RegHdRegressor::new(cfg, Box::new(enc))
}

/// The DNN baseline with the representative grid-searched configuration.
pub fn dnn(features: usize, seed: u64) -> MlpRegressor {
    MlpRegressor::new(
        features,
        MlpConfig {
            hidden: vec![64, 32],
            epochs: 50,
            learning_rate: 0.02,
            // On these noisy, small datasets a grid search lands on strong
            // regularisation; without it the net memorises the noise floor.
            weight_decay: 2e-3,
            seed,
            ..MlpConfig::default()
        },
    )
}

/// The linear-regression baseline (Table 1's "Logistic Regression" row).
pub fn linear() -> LinearRegressor {
    LinearRegressor::new(1e-4)
}

/// The decision-tree baseline.
pub fn tree() -> TreeRegressor {
    TreeRegressor::new(TreeConfig {
        max_depth: 8,
        min_samples_leaf: 5,
    })
}

/// The SVR baseline (RBF via random Fourier features).
pub fn svr(features: usize, seed: u64) -> SvrRegressor {
    SvrRegressor::new(
        features,
        SvrConfig {
            seed,
            ..SvrConfig::default()
        },
    )
}

/// The Baseline-HD comparator (paper ref. \[18\]) with the bin count the
/// paper implies ("hundreds of class hypervectors" would be needed; 64 is
/// the practical sweet spot before training cost explodes).
pub fn baseline_hd(features: usize, seed: u64) -> BaselineHd {
    BaselineHd::new(
        BaselineHdConfig {
            bins: 64,
            epochs: 15,
            learning_rate: 1.0,
            seed,
        },
        Box::new(NonlinearEncoder::new(features, DIM, seed ^ 0xBA5E)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_standardises() {
        let ds = datasets::paper::boston(1);
        let prep = prepare(&ds, 1);
        let mean: f32 = prep.train_y.iter().sum::<f32>() / prep.train_y.len() as f32;
        assert!(mean.abs() < 0.05, "target mean {mean} not centred");
        assert_eq!(prep.features, 13);
        assert!(!prep.test_x.is_empty());
    }

    #[test]
    fn prepare_caps_sizes() {
        let ds = datasets::paper::ccpp(1);
        let prep = prepare(&ds, 1);
        assert!(prep.train_x.len() <= MAX_TRAIN);
        assert!(prep.test_x.len() <= MAX_TEST);
    }

    #[test]
    fn evaluate_beats_mean_on_easy_data() {
        let ds = datasets::paper::ccpp(2);
        let prep = prepare(&ds, 2);
        let mut model = linear();
        let out = evaluate(&mut model, &prep);
        // Linear must explain most of CCPP's near-linear structure.
        let var = prep.scaler.std() * prep.scaler.std();
        assert!(
            out.test_mse < 0.8 * var,
            "mse {} vs var {}",
            out.test_mse,
            var
        );
    }

    #[test]
    fn factories_match_feature_counts() {
        let prep = prepare(&datasets::paper::airfoil(3), 3);
        let mut m = reghd(prep.features, 2, 3);
        let out = evaluate(&mut m, &prep);
        assert!(out.test_mse.is_finite());
        assert!(out.epochs > 0);
    }
}
