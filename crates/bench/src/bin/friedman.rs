//! The Friedman benchmark suite: RegHD vs the extended model zoo on the
//! classic synthetic regression functions with *known* ground truth.
//!
//! These are clean(er)-data tasks, so two effects invisible on the noisy
//! Table-1 workloads appear here: the §2.3 single-pass-vs-iterative gap,
//! and the value of the encoder nonlinearity on strongly interacting
//! responses (Friedman #1's `sin(π·x₁x₂)` term).
//!
//! ```text
//! cargo run -p reghd-bench --release --bin friedman
//! ```

use baselines::forest::{ForestConfig, ForestRegressor};
use baselines::knn::{KnnRegressor, KnnWeighting};
use datasets::friedman;
use datasets::Dataset;
use reghd::Regressor;
use reghd_bench::harness::{self, prepare};
use reghd_bench::report::{banner, fmt_mse, Table};

fn main() {
    banner(
        "Friedman benchmark suite (known ground truth)",
        "extended evaluation (DESIGN.md §5)",
    );
    let seed = 42u64;
    let tasks: Vec<Dataset> = vec![
        friedman::friedman1(1200, 1.0, seed),
        friedman::friedman2(1200, 125.0, seed),
        friedman::friedman3(1200, 0.1, seed),
    ];

    let mut header = vec!["model".to_string()];
    header.extend(tasks.iter().map(|d| d.name.clone()));
    let mut table = Table::new(header);

    let names = [
        "Linear",
        "DecisionTree",
        "RandomForest",
        "kNN-5",
        "DNN",
        "SVR",
        "RegHD-1",
        "RegHD-8",
    ];
    let mut rows: Vec<Vec<f32>> = vec![Vec::new(); names.len()];
    for ds in &tasks {
        eprintln!("[friedman] {}", ds.name);
        let prep = prepare(ds, seed);
        let f = prep.features;
        let mut models: Vec<Box<dyn Regressor>> = vec![
            Box::new(harness::linear()),
            Box::new(harness::tree()),
            Box::new(ForestRegressor::new(ForestConfig {
                seed,
                ..ForestConfig::default()
            })),
            Box::new(KnnRegressor::new(5, KnnWeighting::InverseDistance)),
            Box::new(harness::dnn(f, seed)),
            Box::new(harness::svr(f, seed)),
            Box::new(harness::reghd(f, 1, seed)),
            Box::new(harness::reghd(f, 8, seed)),
        ];
        for (mi, model) in models.iter_mut().enumerate() {
            let out = harness::evaluate(model.as_mut(), &prep);
            rows[mi].push(out.test_mse);
        }
    }
    for (name, row) in names.iter().zip(&rows) {
        let mut cells = vec![name.to_string()];
        cells.extend(row.iter().map(|&m| fmt_mse(m)));
        table.row(cells);
    }
    println!("{}", table.render());

    // Key shape: the nonlinear learners (forest, DNN, SVR, RegHD) must beat
    // the linear model on Friedman #1, whose response is dominated by the
    // sin/quadratic terms.
    let linear_f1 = rows[0][0];
    let reghd_f1 = rows[7][0];
    println!(
        "Friedman #1: RegHD-8 vs Linear: {} vs {} ({:.1}x better — the encoder nonlinearity at work)",
        fmt_mse(reghd_f1),
        fmt_mse(linear_f1),
        linear_f1 / reghd_f1
    );
}
