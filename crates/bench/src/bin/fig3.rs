//! Figure 3 reproduction.
//!
//! * **(a)** regression quality during iterative retraining — training MSE
//!   per epoch for the single-model regressor (§2.3's iterative learning).
//! * **(b)** single-model vs multi-model quality on complex (multi-regime)
//!   tasks — the capacity argument of §2.3/§2.4.
//!
//! ```text
//! cargo run -p reghd-bench --release --bin fig3
//! ```

use encoding::NonlinearEncoder;
use reghd::config::RegHdConfig;
use reghd::{Regressor, SingleHdRegressor};
use reghd_bench::harness::{self, prepare};
use reghd_bench::report::{banner, fmt_mse, Table};

fn main() {
    banner(
        "Figure 3a — quality vs training iterations (single model)",
        "RegHD paper Fig. 3a",
    );
    let seed = 42u64;
    let ds = datasets::paper::airfoil(seed);
    let prep = prepare(&ds, seed);

    let dim = harness::DIM;
    let cfg = RegHdConfig::builder()
        .dim(dim)
        .max_epochs(30)
        .convergence_tol(0.0) // run all epochs so the curve is complete
        .seed(seed)
        .build();
    let enc = NonlinearEncoder::new(prep.features, dim, seed);
    let mut single = SingleHdRegressor::new(cfg, Box::new(enc));
    let report = single.fit(&prep.train_x, &prep.train_y);

    let mut t = Table::new(["iteration", "train MSE (orig units)"]);
    for (i, &m) in report.train_mse_history.iter().enumerate() {
        if i < 5 || i % 5 == 4 {
            t.row([format!("{}", i + 1), fmt_mse(prep.scaler.inverse_mse(m))]);
        }
    }
    println!("{}", t.render());
    let first = prep.scaler.inverse_mse(report.train_mse_history[0]);
    let last = prep
        .scaler
        .inverse_mse(*report.train_mse_history.last().expect("nonempty"));
    println!(
        "improvement over training: {} -> {} ({:.1}% reduction)\n",
        fmt_mse(first),
        fmt_mse(last),
        100.0 * (1.0 - last / first)
    );

    banner(
        "Figure 3b — single-model vs multi-model on complex tasks",
        "RegHD paper Fig. 3b",
    );
    let mut t = Table::new(["dataset", "single (k=1)", "multi (k=8)", "multi gain"]);
    for ds in [
        datasets::paper::airfoil(seed),
        datasets::paper::facebook(seed),
        datasets::paper::diabetes(seed),
    ] {
        let prep = prepare(&ds, seed);
        let mut single = harness::reghd(prep.features, 1, seed);
        let mut multi = harness::reghd(prep.features, 8, seed);
        let s = harness::evaluate(&mut single, &prep);
        let m = harness::evaluate(&mut multi, &prep);
        t.row([
            ds.name.clone(),
            fmt_mse(s.test_mse),
            fmt_mse(m.test_mse),
            format!("{:+.1}%", 100.0 * (1.0 - m.test_mse / s.test_mse)),
        ]);
    }
    println!("{}", t.render());
}
