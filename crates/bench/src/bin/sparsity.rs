//! Sparsity sweep for the SparseHD-style model-sparsification extension
//! (paper §5 related work: "we can use these frameworks to sparsify the
//! regression model").
//!
//! Trains RegHD-8 per dataset, then sweeps the kept-component fraction and
//! reports the quality/density trade-off, plus the modelled inference cost
//! of a sparse dot product (proportional to density).
//!
//! ```text
//! cargo run -p reghd-bench --release --bin sparsity
//! ```

use reghd::Regressor;
use reghd_bench::harness::{self, prepare};
use reghd_bench::report::{banner, Table};

fn main() {
    banner(
        "Sparsity sweep — quality vs model density (k=8)",
        "SparseHD-style extension (DESIGN.md §6b / paper §5)",
    );
    let seed = 42u64;
    let keeps = [1.0f32, 0.5, 0.25, 0.1, 0.05];

    let mut header = vec!["dataset".to_string()];
    header.extend(keeps.iter().map(|k| format!("keep {:.0}%", k * 100.0)));
    let mut t = Table::new(header);

    let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); keeps.len()];
    for ds in [
        datasets::paper::boston(seed),
        datasets::paper::airfoil(seed),
        datasets::paper::ccpp(seed),
    ] {
        eprintln!("[sparsity] {}", ds.name);
        let prep = prepare(&ds, seed);
        let mut cells = vec![ds.name.clone()];
        let mut dense_mse = None;
        for (ki, &keep) in keeps.iter().enumerate() {
            // Retrain per point so sparsification is applied to a fresh
            // model (repeated pruning compounds otherwise).
            let mut m = harness::reghd(prep.features, 8, seed);
            m.fit(&prep.train_x, &prep.train_y);
            if keep < 1.0 {
                m.sparsify_models(keep);
            }
            let preds = m.predict(&prep.test_x);
            let mse = prep
                .scaler
                .inverse_mse(datasets::metrics::mse(&preds, &prep.test_y));
            let dense = *dense_mse.get_or_insert(mse);
            ratios[ki].push((mse / dense) as f64);
            cells.push(format!("{:+.1}%", 100.0 * (mse / dense - 1.0)));
        }
        t.row(cells);
    }
    println!("{}", t.render());

    println!("geometric-mean quality loss and modelled inference-cost share vs dense:");
    for (ki, &keep) in keeps.iter().enumerate() {
        let gmean =
            (ratios[ki].iter().map(|r| r.ln()).sum::<f64>() / ratios[ki].len() as f64).exp();
        println!(
            "  keep {:>3.0}%: quality {:+.1}%, prediction work ~{:.0}% of dense",
            keep * 100.0,
            100.0 * (gmean - 1.0),
            keep * 100.0
        );
    }
    println!("\nexpected shape: halving the model (keep 50%) costs only a few percent;");
    println!("deeper pruning degrades smoothly with no cliff — the holographic spread");
    println!("of information means there is no small critical subset whose loss breaks");
    println!("the model, but also no large dead subset that is free to remove.");
}
