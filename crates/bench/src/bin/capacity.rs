//! The §2.3 hypervector-capacity analysis, validated empirically.
//!
//! The paper derives (Eq. 3–4) that a single hypervector bundling `P`
//! patterns misidentifies a random query with probability
//! `Pr(Z > T·sqrt(D/P))`, and gives the worked example D = 100k, T = 0.5,
//! P = 10k → 5.7% error. This binary prints the analytic prediction next
//! to a Monte-Carlo measurement over a (D, P) grid — the quantitative
//! justification for multi-model regression.
//!
//! ```text
//! cargo run -p reghd-bench --release --bin capacity
//! ```

use hdc::capacity::{false_positive_probability, measure_capacity, required_dimension};
use hdc::rng::HdRng;
use reghd_bench::report::{banner, Table};

fn main() {
    banner(
        "Hypervector capacity: Eq. 4 predictions vs Monte-Carlo",
        "RegHD paper §2.3 (capacity analysis)",
    );
    let threshold = 0.5;
    let mut t = Table::new([
        "D",
        "patterns P",
        "predicted FP",
        "measured FP",
        "measured TP",
    ]);
    let mut rng = HdRng::seed_from(42);
    for (dim, patterns) in [
        (1_000usize, 50usize),
        (1_000, 200),
        (2_000, 100),
        (2_000, 400),
        (4_000, 200),
        (4_000, 1_000),
        (8_000, 400),
    ] {
        let predicted = false_positive_probability(dim, patterns, threshold);
        let measured = measure_capacity(dim, patterns, threshold, 3_000, &mut rng);
        t.row([
            dim.to_string(),
            patterns.to_string(),
            format!("{:.3}", predicted),
            format!("{:.3}", measured.false_positive_rate),
            format!("{:.3}", measured.true_positive_rate),
        ]);
    }
    println!("{}", t.render());

    println!("paper's worked example: D = 100k, T = 0.5, P = 10k -> 5.7% error;");
    println!(
        "our Eq. 4 gives {:.1}% at that point.\n",
        100.0 * false_positive_probability(100_000, 10_000, threshold)
    );

    // Deployment sizing: how wide must a hypervector be?
    let mut t = Table::new(["patterns P", "D for <=5% error", "D for <=1% error"]);
    for patterns in [100usize, 1_000, 10_000] {
        t.row([
            patterns.to_string(),
            required_dimension(patterns, threshold, 0.05).to_string(),
            required_dimension(patterns, threshold, 0.01).to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("the linear D-per-P scaling is why a single model saturates on rich tasks");
    println!("and why §2.4 splits the load across k cluster/model pairs.");
}
