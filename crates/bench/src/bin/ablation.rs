//! Ablation studies for the design choices documented in `DESIGN.md` §5:
//!
//! 1. **Model-update rule** — the paper's Eq. 7 prints an unweighted update
//!    for every model; we default to confidence-weighted. This ablation
//!    quantifies the difference (plus the hard-argmax alternative).
//! 2. **Encoder** — the `cos·sin` nonlinear map (Eq. 1 as implemented) vs
//!    the cos-only RFF variant vs a plain linear random projection.
//! 3. **Softmax sharpness β** — the confidence-normalisation temperature.
//!
//! ```text
//! cargo run -p reghd-bench --release --bin ablation
//! ```

use encoding::{Encoder, NonlinearEncoder, ProjectionEncoder, RffEncoder};
use reghd::config::{RegHdConfig, UpdateRule};
use reghd::RegHdRegressor;
use reghd_bench::harness::{self, prepare, DIM};
use reghd_bench::report::{banner, fmt_mse, Table};

fn main() {
    let seed = 42u64;
    let datasets_used = [
        datasets::paper::boston(seed),
        datasets::paper::airfoil(seed),
        datasets::paper::facebook(seed),
    ];

    banner(
        "Ablation 1 — model-update rule (k=8)",
        "DESIGN.md §5 (Eq. 7 interpretation)",
    );
    let mut t = Table::new(["dataset", "conf-weighted", "shared-error", "argmax-only"]);
    for ds in &datasets_used {
        let prep = prepare(ds, seed);
        let run = |rule: UpdateRule| {
            let mut m = harness::reghd_with_rule(prep.features, 8, rule, seed);
            harness::evaluate(&mut m, &prep).test_mse
        };
        t.row([
            ds.name.clone(),
            fmt_mse(run(UpdateRule::ConfidenceWeighted)),
            fmt_mse(run(UpdateRule::SharedError)),
            fmt_mse(run(UpdateRule::ArgmaxOnly)),
        ]);
    }
    println!("{}", t.render());

    banner("Ablation 2 — encoder choice (k=8)", "DESIGN.md §5");
    let mut t = Table::new([
        "dataset",
        "cos*sin (Eq.1)",
        "cos-only RFF",
        "linear projection",
    ]);
    for ds in &datasets_used {
        let prep = prepare(ds, seed);
        let f = prep.features;
        let run = |enc: Box<dyn Encoder>| {
            let cfg = RegHdConfig::builder()
                .dim(DIM)
                .models(8)
                .max_epochs(25)
                .convergence_tol(2e-3)
                .seed(seed)
                .build();
            let mut m = RegHdRegressor::new(cfg, enc);
            harness::evaluate(&mut m, &prep).test_mse
        };
        t.row([
            ds.name.clone(),
            fmt_mse(run(Box::new(NonlinearEncoder::new(f, DIM, seed)))),
            fmt_mse(run(Box::new(RffEncoder::new(f, DIM, 1.0, seed)))),
            fmt_mse(run(Box::new(ProjectionEncoder::new(f, DIM, seed)))),
        ]);
    }
    println!("{}", t.render());
    println!("expected: the linear projection loses on the nonlinear tasks —");
    println!("the encoder's nonlinearity is what lets a linear HD learner fit them.\n");

    banner("Ablation 3 — softmax sharpness beta (k=8)", "DESIGN.md §5");
    let betas = [1.0f32, 4.0, 8.0, 16.0, 64.0];
    let mut header = vec!["dataset".to_string()];
    header.extend(betas.iter().map(|b| format!("beta={b}")));
    let mut t = Table::new(header);
    for ds in &datasets_used {
        let prep = prepare(ds, seed);
        let mut cells = vec![ds.name.clone()];
        for &beta in &betas {
            let cfg = RegHdConfig::builder()
                .dim(DIM)
                .models(8)
                .max_epochs(25)
                .convergence_tol(2e-3)
                .softmax_beta(beta)
                .seed(seed)
                .build();
            let enc = NonlinearEncoder::new(prep.features, DIM, seed ^ 0xE4C0DE);
            let mut m = RegHdRegressor::new(cfg, Box::new(enc));
            cells.push(fmt_mse(harness::evaluate(&mut m, &prep).test_mse));
        }
        t.row(cells);
    }
    println!("{}", t.render());
}
