//! Figure 9 reproduction: RegHD efficiency across cluster/model
//! quantisation configurations.
//!
//! The paper reports, relative to full-precision RegHD-8:
//! * quantised cluster: training ≈ 1.9× faster / 2.1× more efficient,
//!   inference ≈ 2.0× / 2.3×;
//! * binary query + integer model: training ≈ 1.4× / 1.5×;
//! * binary query + binary model: training ≈ 1.6× / 1.8×,
//!   inference ≈ 1.5× / 1.6× (vs the quantised-cluster baseline).
//!
//! ```text
//! cargo run -p reghd-bench --release --bin fig9
//! ```

use hwmodel::algos::{reghd_infer_cost, reghd_train_epoch_cost, RegHdShape};
use hwmodel::device::{energy_gain, speedup};
use hwmodel::DeviceProfile;
use reghd::config::{ClusterMode, PredictionMode};
use reghd::Regressor;
use reghd_bench::harness::{self, prepare, DIM};
use reghd_bench::report::{banner, fmt_ratio, Table};

fn main() {
    banner(
        "Figure 9 — efficiency across quantisation configurations (k=8)",
        "RegHD paper Fig. 9 (Kintex-7 FPGA)",
    );
    let seed = 42u64;
    let dev = DeviceProfile::fpga_kintex7();
    let ds = datasets::paper::airfoil(seed);
    let prep = prepare(&ds, seed);
    let n = prep.train_x.len() as u64;
    let f = prep.features as u64;
    let k = 8usize;

    let configs: [(&str, ClusterMode, PredictionMode); 5] = [
        ("full-precision", ClusterMode::Integer, PredictionMode::Full),
        (
            "quant-cluster",
            ClusterMode::FrameworkBinary,
            PredictionMode::Full,
        ),
        (
            "binary-query",
            ClusterMode::FrameworkBinary,
            PredictionMode::BinaryQuery,
        ),
        (
            "binary-model",
            ClusterMode::FrameworkBinary,
            PredictionMode::BinaryModel,
        ),
        (
            "binary-both",
            ClusterMode::FrameworkBinary,
            PredictionMode::BinaryBoth,
        ),
    ];

    let mut t = Table::new([
        "config",
        "epochs",
        "train speedup",
        "train energy gain",
        "infer speedup",
        "infer energy gain",
    ]);
    let mut baseline: Option<(hwmodel::CostEstimate, hwmodel::CostEstimate)> = None;
    for (name, cmode, pmode) in configs {
        let epochs = {
            let mut m = harness::reghd_with(prep.features, k, DIM, cmode, pmode, seed);
            m.fit(&prep.train_x, &prep.train_y).epochs as u64
        };
        let shape = RegHdShape {
            dim: DIM as u64,
            models: k as u64,
            features: f,
            cluster_binary: cmode != ClusterMode::Integer,
            query_binary: pmode.query_is_binary(),
            model_binary: pmode.model_is_binary(),
        };
        let train = dev.estimate(&(reghd_train_epoch_cost(&shape, n) * epochs));
        let infer = dev.estimate(&reghd_infer_cost(&shape));
        let (bt, bi) = baseline.get_or_insert((train, infer));
        t.row([
            name.to_string(),
            epochs.to_string(),
            fmt_ratio(speedup(bt, &train)),
            fmt_ratio(energy_gain(bt, &train)),
            fmt_ratio(speedup(bi, &infer)),
            fmt_ratio(energy_gain(bi, &infer)),
        ]);
    }
    println!("{}", t.render());

    // Memory footprints per configuration (encoder regenerated from seed).
    let mut mt = Table::new(["config", "clusters", "models", "total resident"]);
    for (name, cmode, pmode) in configs {
        let shape = RegHdShape {
            dim: DIM as u64,
            models: k as u64,
            features: f,
            cluster_binary: cmode != ClusterMode::Integer,
            query_binary: pmode.query_is_binary(),
            model_binary: pmode.model_is_binary(),
        };
        let fp = hwmodel::memory::reghd_footprint(&shape, true);
        let kib = |b: u64| format!("{:.1} KiB", b as f64 / 1024.0);
        mt.row([
            name.to_string(),
            kib(fp.cluster_bytes),
            kib(fp.model_bytes),
            kib(fp.total()),
        ]);
    }
    println!("{}", mt.render());
    println!("paper: quant-cluster 1.9x/2.1x train, 2.0x/2.3x infer;");
    println!("       binary-query 1.4x/1.5x train; binary-both 1.6x/1.8x train, 1.5x/1.6x infer");
    println!("note: the paper's quantised-cluster runs take a few extra epochs;");
    println!("      measured epoch counts above fold that overhead in, as §3.1 describes.");
}
