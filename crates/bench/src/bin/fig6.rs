//! Figure 6 reproduction: regression quality with and without cluster
//! quantisation.
//!
//! Three cluster configurations at k = 8 (§3.1):
//! * **integer** — full-precision cosine cluster search (the reference);
//! * **framework binary** — the paper's two-copy quantisation framework
//!   (Hamming search, integer update, per-epoch re-binarisation);
//! * **naive binary** — binarise on every update (the strawman).
//!
//! Expected shape: framework ≈ integer (paper: "similar regression
//! quality"), naive clearly worse.
//!
//! ```text
//! cargo run -p reghd-bench --release --bin fig6
//! ```

use reghd::config::{ClusterMode, PredictionMode};
use reghd_bench::harness::{self, prepare, DIM};
use reghd_bench::report::{banner, fmt_mse, Table};

fn main() {
    banner(
        "Figure 6 — cluster quantisation vs regression quality (k=8)",
        "RegHD paper Fig. 6",
    );
    let seed = 42u64;
    let mut t = Table::new([
        "dataset",
        "integer",
        "framework-binary",
        "naive-binary",
        "fw vs int",
        "naive vs int",
    ]);
    let mut fw_ratios = Vec::new();
    let mut naive_ratios = Vec::new();
    for ds in datasets::paper::all(seed) {
        eprintln!("[fig6] {}", ds.name);
        let prep = prepare(&ds, seed);
        let f = prep.features;
        let run = |mode: ClusterMode| {
            let mut m = harness::reghd_with(f, 8, DIM, mode, PredictionMode::Full, seed);
            harness::evaluate(&mut m, &prep).test_mse
        };
        let int = run(ClusterMode::Integer);
        let fw = run(ClusterMode::FrameworkBinary);
        let naive = run(ClusterMode::NaiveBinary);
        fw_ratios.push((fw / int) as f64);
        naive_ratios.push((naive / int) as f64);
        t.row([
            ds.name.clone(),
            fmt_mse(int),
            fmt_mse(fw),
            fmt_mse(naive),
            format!("{:+.1}%", 100.0 * (fw / int - 1.0)),
            format!("{:+.1}%", 100.0 * (naive / int - 1.0)),
        ]);
    }
    println!("{}", t.render());
    let gmean = |v: &[f64]| (v.iter().map(|r| r.ln()).sum::<f64>() / v.len() as f64).exp();
    println!(
        "geometric-mean MSE ratio: framework-binary {:.3} (paper: ~1.003), naive-binary {:.3} (paper: clearly worse)",
        gmean(&fw_ratios),
        gmean(&naive_ratios)
    );
    println!("\nnote: on the noisy Table-1 workloads, naive binarisation's broken cluster");
    println!("accumulation degrades gating toward uniform mixing, which on high-noise data");
    println!("acts as regularisation — so it does not lose there. The paper's effect needs");
    println!("cluster assignment to be load-bearing; the regime-dominant task below shows it:\n");

    // Regime-dominant task: 8 well-separated regimes, low noise — here the
    // cluster model matters and naive binarisation pays the paper's price.
    let mut t = Table::new([
        "task",
        "integer",
        "framework-binary",
        "naive-binary",
        "fw vs int",
        "naive vs int",
    ]);
    for noise in [0.1f32, 0.3] {
        let ds = datasets::synthetic::SyntheticSpec {
            name: format!("regimes(noise={noise})"),
            samples: 1200,
            features: 8,
            clusters: 8,
            nonlinearity: 0.3,
            noise_std: noise,
            target_mean: 0.0,
            target_std: 1.0,
            skew: 0.0,
            seed: 5,
        }
        .generate();
        let prep = prepare(&ds, 5);
        let f = prep.features;
        let run = |mode: ClusterMode| {
            let mut m = harness::reghd_with(f, 8, DIM, mode, PredictionMode::Full, 5);
            harness::evaluate(&mut m, &prep).test_mse
        };
        let int = run(ClusterMode::Integer);
        let fw = run(ClusterMode::FrameworkBinary);
        let naive = run(ClusterMode::NaiveBinary);
        t.row([
            ds.name.clone(),
            format!("{int:.4}"),
            format!("{fw:.4}"),
            format!("{naive:.4}"),
            format!("{:+.1}%", 100.0 * (fw / int - 1.0)),
            format!("{:+.1}%", 100.0 * (naive / int - 1.0)),
        ]);
    }
    println!("{}", t.render());
    println!("paper's shape on regime-dominant data: framework ~ integer, naive clearly worse.");
}
