//! Open-loop RGNP load sweep: drives a live server at a fixed offered
//! rate over 100 / 1 000 / 10 000 connections and records
//! coordinated-omission-free latency quantiles, availability, and error
//! counts to `results/loadgen.json`.
//!
//! ```text
//! cargo run -p reghd-bench --release --bin loadgen                 # full sweep
//! cargo run -p reghd-bench --release --bin loadgen -- --test      # CI smoke
//! cargo run -p reghd-bench --release --bin loadgen -- --addr H:P  # external server
//! ```
//!
//! The full sweep needs ~2 × 10k file descriptors for the 10 000-conn
//! sample, which would blow a single process's fd limit — so the sweep
//! re-executes itself with `--serve-only` as a child process that hosts
//! the server (its own fd table), prints `ADDR <host:port>`, and serves
//! until killed. `--test` runs a single 100-connection sample against an
//! in-process server and **exits non-zero** unless there were zero
//! protocol errors and availability ≥ 99% — the CI `loadgen-smoke` gate.

use reghd_bench::report::banner;
use reghd_net::loadgen::{self, LoadConfig, LoadReport};
use reghd_net::{serve_rgnp, NetConfig};
use reghd_serve::bundle;
use reghd_serve::registry::ModelRegistry;
use std::io::{BufRead, BufReader, Write};
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 0x10AD;
const MODEL: &str = "toy";
const ROW: [f32; 3] = [0.5, 1.0, 2.0];

fn toy_dataset() -> datasets::Dataset {
    let features: Vec<Vec<f32>> = (0..60)
        .map(|i| vec![i as f32 * 0.5, (i % 7) as f32, (i * 3 % 11) as f32])
        .collect();
    let targets: Vec<f32> = features
        .iter()
        .map(|r| 2.0 * r[0] - r[1] + 0.5 * r[2])
        .collect();
    datasets::Dataset::new("loadgen", features, targets)
}

/// Starts the RGNP server with the sweep's standard sizing.
fn start_server() -> reghd_net::NetServerHandle {
    let ds = toy_dataset();
    let (bundle, _) = bundle::train(&ds, 256, 4, 4, SEED, false).expect("train toy bundle");
    let registry = Arc::new(ModelRegistry::new());
    registry
        .load_bytes(MODEL, &bundle.to_bytes().expect("serialise"))
        .expect("load toy");
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    serve_rgnp(
        NetConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: cores.clamp(2, 4),
            reply_timeout: Duration::from_secs(5),
            // Ramping 10k sockets up on a small box takes longer than the
            // production idle reaper allows; connections legitimately sit
            // quiet until the whole fleet is connected.
            idle_timeout: Duration::from_secs(300),
            ..NetConfig::default()
        },
        registry,
    )
    .expect("start RGNP server")
}

/// One sweep sample: (connections, offered rows/sec, window).
struct Sample {
    connections: usize,
    rate: f64,
    duration: Duration,
}

fn run_sample(addr: &str, s: &Sample) -> LoadReport {
    let cfg = LoadConfig {
        addr: addr.to_string(),
        model: MODEL.to_string(),
        row: ROW.to_vec(),
        connections: s.connections,
        rate: s.rate,
        duration: s.duration,
        grace: Duration::from_secs(3),
        threads: 4,
        ..LoadConfig::default()
    };
    println!(
        "sample: {} conns, {:.0} rows/s offered, {:?} window",
        s.connections, s.rate, s.duration
    );
    let report = loadgen::run(&cfg).expect("loadgen run");
    println!(
        "  sent {} ok {} degraded {} busy {} draining {} err {} lost {} proto_err {} \
         conn_fail {}",
        report.sent,
        report.ok,
        report.degraded,
        report.busy,
        report.draining,
        report.errors,
        report.lost,
        report.protocol_errors,
        report.conn_failures,
    );
    println!(
        "  availability {:.4}  achieved {:.0} rows/s  p50 {}µs  p95 {}µs  p99 {}µs  max {}µs",
        report.availability(),
        report.achieved_rps,
        report.p50_us,
        report.p95_us,
        report.p99_us,
        report.max_us,
    );
    report
}

fn sample_json(s: &Sample, r: &LoadReport) -> String {
    format!(
        "    {{\n      \"connections\": {},\n      \"opened\": {},\n      \
         \"offered_rps\": {:.1},\n      \"duration_secs\": {:.1},\n      \"sent\": {},\n      \
         \"ok\": {},\n      \"degraded\": {},\n      \
         \"tier_full\": {},\n      \"tier_binary\": {},\n      \
         \"busy\": {},\n      \"draining\": {},\n      \
         \"errors\": {},\n      \"protocol_errors\": {},\n      \"lost\": {},\n      \
         \"conn_failures\": {},\n      \"availability\": {:.4},\n      \
         \"achieved_rps\": {:.1},\n      \"p50_us\": {},\n      \"p95_us\": {},\n      \
         \"p99_us\": {},\n      \"max_us\": {}\n    }}",
        s.connections,
        r.connections,
        s.rate,
        s.duration.as_secs_f64(),
        r.sent,
        r.ok,
        r.degraded,
        // Which prediction tier answered: OK = full Eq. 6, DEGRADED =
        // bit-packed binary.
        r.tier_full(),
        r.tier_binary(),
        r.busy,
        r.draining,
        r.errors,
        r.protocol_errors,
        r.lost,
        r.conn_failures,
        r.availability(),
        r.achieved_rps,
        r.p50_us,
        r.p95_us,
        r.p99_us,
        r.max_us,
    )
}

fn write_results(path: &str, samples: &[(Sample, LoadReport)]) {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let simd = hdc::simd::active_label();
    let body: Vec<String> = samples.iter().map(|(s, r)| sample_json(s, r)).collect();
    let json = format!(
        "{{\n  \"cores\": {cores},\n  \"simd\": \"{simd}\",\n  \"proto\": \"rgnp\",\n  \
         \"samples\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("../../{path}"));
    match std::fs::write(&out, &json) {
        Ok(()) => println!("results written to {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }
}

/// Acceptance gates shared by smoke and sweep: the protocol never breaks
/// and ≥99% of offered rows get a usable answer.
fn gate(samples: &[(Sample, LoadReport)]) {
    let mut violations = Vec::new();
    for (s, r) in samples {
        if r.protocol_errors != 0 {
            violations.push(format!(
                "{} conns: {} protocol errors",
                s.connections, r.protocol_errors
            ));
        }
        if r.availability() < 0.99 {
            violations.push(format!(
                "{} conns: availability {:.4} < 0.99",
                s.connections,
                r.availability()
            ));
        }
        if r.connections < s.connections {
            violations.push(format!(
                "{} conns requested, only {} opened",
                s.connections, r.connections
            ));
        }
        // "Sustained" means the fleet stays connected: tolerate at most
        // 1% of connections dying mid-run.
        if r.conn_failures * 100 > s.connections {
            violations.push(format!(
                "{} conns: {} died mid-run (> 1%)",
                s.connections, r.conn_failures
            ));
        }
    }
    if violations.is_empty() {
        println!("PASS: zero protocol errors, availability >= 99% at every scale");
    } else {
        for v in &violations {
            eprintln!("FAIL: {v}");
        }
        std::process::exit(1);
    }
}

/// Child mode: host the server in this process (own fd table), announce
/// the bound address on stdout, serve until killed.
fn serve_only() -> ! {
    let handle = start_server();
    println!("ADDR {}", handle.local_addr());
    std::io::stdout().flush().expect("flush addr");
    loop {
        std::thread::sleep(Duration::from_secs(60));
    }
}

/// Spawns this same binary as the serving child and reads its address.
/// The sweep kills and waits on the child before writing results; if the
/// sweep panics first, process exit reaps it.
#[allow(clippy::zombie_processes)]
fn spawn_server_child() -> (std::process::Child, String) {
    let exe = std::env::current_exe().expect("current exe");
    let mut child = std::process::Command::new(exe)
        .arg("--serve-only")
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn serve-only child");
    let stdout = child.stdout.take().expect("child stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line).expect("read child addr");
        assert!(n > 0, "serve-only child exited before announcing ADDR");
        if let Some(addr) = line.trim().strip_prefix("ADDR ") {
            return (child, addr.to_string());
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--serve-only") {
        serve_only();
    }
    banner(
        "RGNP open-loop load sweep",
        "fixed offered rate, latency from scheduled send time (no coordinated omission)",
    );
    let external = argv
        .iter()
        .position(|a| a == "--addr")
        .and_then(|i| argv.get(i + 1))
        .cloned();
    let smoke = argv.iter().any(|a| a == "--test");

    if smoke {
        // CI smoke: one in-process sample, hard-gated.
        let handle = start_server();
        let addr = handle.local_addr().to_string();
        let s = Sample {
            connections: 100,
            rate: 1000.0,
            duration: Duration::from_secs(3),
        };
        let r = run_sample(&addr, &s);
        let samples = vec![(s, r)];
        write_results("results/loadgen-smoke.json", &samples);
        handle.shutdown();
        gate(&samples);
        return;
    }

    let sweep = vec![
        Sample {
            connections: 100,
            rate: 2000.0,
            duration: Duration::from_secs(5),
        },
        Sample {
            connections: 1000,
            rate: 2000.0,
            duration: Duration::from_secs(5),
        },
        Sample {
            connections: 10_000,
            rate: 2000.0,
            duration: Duration::from_secs(10),
        },
    ];
    let (child, addr) = match external {
        Some(addr) => (None, addr),
        None => {
            let (child, addr) = spawn_server_child();
            (Some(child), addr)
        }
    };
    println!("target server: {addr}");
    let mut samples = Vec::new();
    for s in sweep {
        let r = run_sample(&addr, &s);
        samples.push((s, r));
    }
    if let Some(mut child) = child {
        let _ = child.kill();
        let _ = child.wait();
    }
    write_results("results/loadgen.json", &samples);
    gate(&samples);
}
