//! Single-pass (streaming) vs iterative training across the paper
//! datasets — quantifying §2.3's observation that single-pass HD training
//! "often provides low accuracy" and iterative retraining closes the gap,
//! plus this workspace's [`reghd::OnlineRegHd`] extension.
//!
//! ```text
//! cargo run -p reghd-bench --release --bin online
//! ```

use encoding::NonlinearEncoder;
use reghd::config::RegHdConfig;
use reghd::{OnlineRegHd, Regressor};
use reghd_bench::harness::{self, prepare, DIM};
use reghd_bench::report::{banner, fmt_mse, Table};

fn main() {
    banner(
        "Single-pass (online) vs iterative training",
        "RegHD paper §2.3 (single-pass accuracy gap)",
    );
    let seed = 42u64;
    let mut t = Table::new([
        "dataset",
        "single-pass MSE",
        "iterative MSE",
        "iterative epochs",
        "gap closed by iterating",
    ]);
    for ds in datasets::paper::all(seed) {
        eprintln!("[online] {}", ds.name);
        let prep = prepare(&ds, seed);

        let cfg = RegHdConfig::builder().dim(DIM).models(8).seed(seed).build();
        let enc = NonlinearEncoder::new(prep.features, DIM, seed ^ 0xE4C0DE);
        let mut online = OnlineRegHd::new(cfg, Box::new(enc));
        online.fit(&prep.train_x, &prep.train_y);
        let preds = online.predict(&prep.test_x);
        let online_mse = prep
            .scaler
            .inverse_mse(datasets::metrics::mse(&preds, &prep.test_y));

        let mut iterative = harness::reghd(prep.features, 8, seed);
        let out = harness::evaluate(&mut iterative, &prep);

        let gap = if online_mse > out.test_mse {
            format!("{:.0}%", 100.0 * (online_mse - out.test_mse) / online_mse)
        } else {
            "0%".to_string()
        };
        t.row([
            ds.name.clone(),
            fmt_mse(online_mse),
            fmt_mse(out.test_mse),
            out.epochs.to_string(),
            gap,
        ]);
    }
    println!("{}", t.render());
    println!("expected shape: iterative training wins where there is recoverable");
    println!("structure left after one pass (boston, ccpp — the lower-noise tasks).");
    println!("On the noisiest datasets a single pass acts as implicit early-stopping");
    println!("regularisation and can even test better — the §2.3 single-pass accuracy");
    println!("gap is a *clean-data* phenomenon, which the regime-dominant fig6 task");
    println!("and the unit test `single_pass_fit_learns_but_less_than_iterative` show.");
}
