//! Figure 8 reproduction: training and inference efficiency of RegHD vs
//! DNN and Baseline-HD on the FPGA-class device model.
//!
//! The paper reports (Kintex-7, RegHD-8 with binary clusters):
//! * training: 5.6× faster, 12.3× more energy-efficient than DNN;
//! * inference: 2.9× faster, 4.2× more energy-efficient than DNN;
//! * RegHD-2 vs RegHD-32: 4.9× / 8.0× training advantage;
//!   RegHD-8 vs RegHD-32: 2.8× / 2.1×.
//!
//! Iteration counts come from fitting the real Rust implementations;
//! per-epoch operation counts come from `hwmodel::algos`.
//!
//! ```text
//! cargo run -p reghd-bench --release --bin fig8
//! ```

use hwmodel::algos::{
    baseline_hd_infer_cost, baseline_hd_train_epoch_cost, dnn_infer_cost, dnn_train_epoch_cost,
    reghd_infer_cost, reghd_train_epoch_cost, DnnShape, RegHdShape,
};
use hwmodel::device::{energy_gain, speedup};
use hwmodel::DeviceProfile;
use reghd::config::{ClusterMode, PredictionMode};
use reghd::Regressor;
use reghd_bench::harness::{self, prepare, DIM};
use reghd_bench::report::{banner, fmt_ratio, Table};

fn main() {
    // The paper evaluates on both a Kintex-7 FPGA and a Raspberry Pi 3B+
    // (ARM Cortex-A53); report both device models.
    for dev in [DeviceProfile::fpga_kintex7(), DeviceProfile::embedded_cpu()] {
        run_for_device(&dev);
    }
}

fn run_for_device(dev: &DeviceProfile) {
    banner(
        "Figure 8 — training/inference efficiency vs DNN and Baseline-HD",
        &format!("RegHD paper Fig. 8 ({})", dev.name),
    );
    let seed = 42u64;
    // Representative workload (airfoil: mid-sized, clearly nonlinear).
    let ds = datasets::paper::airfoil(seed);
    let prep = prepare(&ds, seed);
    let n = prep.train_x.len() as u64;
    let f = prep.features as u64;

    // The paper's DNN comparator: grid-searched TensorFlow model,
    // deployed via DNNWeaver (inference) / FPDeep (training).
    let dnn_shape = DnnShape {
        layers: vec![f, 512, 512, 1],
    };
    let dnn_epochs = {
        let mut m = harness::dnn(prep.features, seed);
        m.fit(&prep.train_x, &prep.train_y).epochs as u64
    };
    let dnn_train = dev.estimate(&(dnn_train_epoch_cost(&dnn_shape, n) * dnn_epochs));
    let dnn_infer = dev.estimate(&dnn_infer_cost(&dnn_shape));

    let bhd_bins = 64u64;
    let bhd_epochs = {
        let mut m = harness::baseline_hd(prep.features, seed);
        m.fit(&prep.train_x, &prep.train_y).epochs as u64 + 1 // + single pass
    };
    let bhd_train =
        dev.estimate(&(baseline_hd_train_epoch_cost(f, DIM as u64, bhd_bins, n) * bhd_epochs));
    let bhd_infer = dev.estimate(&baseline_hd_infer_cost(f, DIM as u64, bhd_bins));

    let mut t = Table::new([
        "learner",
        "epochs",
        "train speedup vs DNN",
        "train energy gain",
        "infer speedup vs DNN",
        "infer energy gain",
    ]);
    t.row([
        "DNN".to_string(),
        dnn_epochs.to_string(),
        "1.00x".into(),
        "1.00x".into(),
        "1.00x".into(),
        "1.00x".into(),
    ]);
    t.row([
        format!("Baseline-HD({bhd_bins})"),
        bhd_epochs.to_string(),
        fmt_ratio(speedup(&dnn_train, &bhd_train)),
        fmt_ratio(energy_gain(&dnn_train, &bhd_train)),
        fmt_ratio(speedup(&dnn_infer, &bhd_infer)),
        fmt_ratio(energy_gain(&dnn_infer, &bhd_infer)),
    ]);

    // "All results are reported RegHD using a binary cluster."
    let mut reghd32_train = None;
    let mut per_k = Vec::new();
    for k in [1u64, 2, 8, 32] {
        let epochs = {
            let mut m = harness::reghd_with(
                prep.features,
                k as usize,
                DIM,
                ClusterMode::FrameworkBinary,
                PredictionMode::Full,
                seed,
            );
            m.fit(&prep.train_x, &prep.train_y).epochs as u64
        };
        let shape = RegHdShape {
            dim: DIM as u64,
            models: k,
            features: f,
            cluster_binary: true,
            query_binary: false,
            model_binary: false,
        };
        let train = dev.estimate(&(reghd_train_epoch_cost(&shape, n) * epochs));
        let infer = dev.estimate(&reghd_infer_cost(&shape));
        if k == 32 {
            reghd32_train = Some(train);
        }
        per_k.push((k, train, infer));
        t.row([
            format!("RegHD-{k}"),
            epochs.to_string(),
            fmt_ratio(speedup(&dnn_train, &train)),
            fmt_ratio(energy_gain(&dnn_train, &train)),
            fmt_ratio(speedup(&dnn_infer, &infer)),
            fmt_ratio(energy_gain(&dnn_infer, &infer)),
        ]);
    }
    println!("{}", t.render());

    let r32 = reghd32_train.expect("k=32 measured");
    for (k, train, _) in &per_k {
        if *k == 32 {
            continue;
        }
        println!(
            "RegHD-{k} vs RegHD-32 training: {} faster, {} more energy-efficient",
            fmt_ratio(speedup(&r32, train)),
            fmt_ratio(energy_gain(&r32, train)),
        );
    }
    println!("\npaper: RegHD-8 vs DNN training 5.6x/12.3x, inference 2.9x/4.2x;");
    println!("       RegHD-8 (RegHD-2) vs RegHD-32 training 2.8x/2.1x (4.9x/8.0x)");
}
