//! Figure 7 reproduction: normalised regression quality across the
//! quantisation configurations of §3.2.
//!
//! Configurations (k = 8, quantised clusters where noted):
//! * full precision (reference, quality 1.0)
//! * quantised cluster (binary Hamming search)
//! * binary query × integer model
//! * integer query × binary model
//! * binary query × binary model
//!
//! Expected shape (paper): quantised cluster ≈ −0.3%; binary query ≈
//! −1.5%; binary model ≈ −5.2%; binary×binary worst.
//!
//! ```text
//! cargo run -p reghd-bench --release --bin fig7
//! ```

use datasets::metrics::normalized_quality;
use reghd::config::{ClusterMode, PredictionMode};
use reghd_bench::harness::{self, prepare, DIM};
use reghd_bench::report::{banner, Table};

fn main() {
    banner(
        "Figure 7 — normalised quality across quantisation configs (k=8)",
        "RegHD paper Fig. 7",
    );
    let seed = 42u64;
    let configs: [(&str, ClusterMode, PredictionMode); 5] = [
        ("full-precision", ClusterMode::Integer, PredictionMode::Full),
        (
            "quant-cluster",
            ClusterMode::FrameworkBinary,
            PredictionMode::Full,
        ),
        (
            "binary-query",
            ClusterMode::FrameworkBinary,
            PredictionMode::BinaryQuery,
        ),
        (
            "binary-model",
            ClusterMode::FrameworkBinary,
            PredictionMode::BinaryModel,
        ),
        (
            "binary-both",
            ClusterMode::FrameworkBinary,
            PredictionMode::BinaryBoth,
        ),
    ];

    let datasets_all = datasets::paper::all(seed);
    let mut header = vec!["config".to_string()];
    header.extend(datasets_all.iter().map(|d| d.name.clone()));
    header.push("mean".to_string());
    let mut t = Table::new(header);

    // Reference MSE per dataset (full precision).
    let mut reference = Vec::new();
    let mut rows: Vec<Vec<f32>> = Vec::new();
    for (ci, (name, cmode, pmode)) in configs.iter().enumerate() {
        eprintln!("[fig7] config {name}");
        let mut row = Vec::new();
        for (di, ds) in datasets_all.iter().enumerate() {
            let prep = prepare(ds, seed);
            let mut m = harness::reghd_with(prep.features, 8, DIM, *cmode, *pmode, seed);
            let mse = harness::evaluate(&mut m, &prep).test_mse;
            if ci == 0 {
                reference.push(mse);
            }
            row.push(normalized_quality(reference[di], mse));
        }
        rows.push(row);
    }
    for ((name, _, _), row) in configs.iter().zip(&rows) {
        let mean = row.iter().sum::<f32>() / row.len() as f32;
        let mut cells = vec![name.to_string()];
        cells.extend(row.iter().map(|q| format!("{q:.3}")));
        cells.push(format!("{mean:.3}"));
        t.row(cells);
    }
    println!("{}", t.render());
    println!("paper's mean normalised qualities: quant-cluster ~0.997, binary-query ~0.985, binary-model ~0.948, binary-both lowest");
}
