//! Chaos/soak harness for the overload-survival layer: open-loop load at
//! 2× the measured full-precision capacity against a live server whose
//! model store is under concurrent fault injection (ENOSPC, short writes,
//! fsync failures, torn renames), plus periodic worker stalls.
//!
//! Survivability contract under test (ISSUE 7 acceptance criteria):
//!
//! 1. **No panics, no deadlocks** — every request gets exactly one
//!    well-formed reply, and the per-model `panics` counter stays 0.
//! 2. **Availability** — `(ok + degraded) / sent ≥ 99%` while overloaded
//!    and faulted. Admission-control refusals (`busy`, `draining`) and
//!    errors count against availability.
//! 3. **Expired requests are shed pre-compute** — the deadline spike
//!    window must drive the `expired` counter above zero.
//! 4. **Bounded latency** — p50/p95/p99 of answered requests are measured
//!    client-side from real samples (no sentinel values by construction)
//!    and recorded in the summary.
//! 5. **Degraded replies are bit-identical** to
//!    `ModelBundle::predict_degraded` (the §3.2 binary-query path): every
//!    degraded value observed during the soak is string-compared against
//!    the precomputed expected output, and a deterministic post-soak check
//!    forces one more via an injected worker stall.
//! 6. **Store integrity** — after the fault storm clears, every store key
//!    passes `audit` and is still readable: faulted publications rolled
//!    back cleanly instead of leaving torn state.
//!
//! ```text
//! cargo run -p reghd-bench --release --bin chaos \
//!     [-- --test | --duration-secs N] [--proto line|rgnp]
//! ```
//!
//! `--test` runs a short CI-sized soak (~3 s); the default is 15 s.
//! `--proto rgnp` runs the identical storm against the binary RGNP
//! front-end (`reghd-net`) instead of the legacy line protocol — same
//! invariants, same gates, so both serving paths carry the survivability
//! contract. The summary is written to `results/chaos.json`; the process
//! exits non-zero if any invariant above is violated, so CI can gate on
//! the exit code.

use reghd_bench::report::banner;
use reghd_net::client::PredictReply;
use reghd_net::{serve_rgnp, NetConfig, NetServerHandle, RgnpClient};
use reghd_serve::registry::ModelRegistry;
use reghd_serve::server::{serve, ServerConfig, ServerHandle};
use reghd_serve::{bundle, BatcherConfig, FaultInjector, ShedConfig};
use reghd_store::{ModelStore, StoreConfig, StoreFaultInjector};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEED: u64 = 0xC4A05;
const STORE_KEYS: usize = 8;
const SOAK_CLIENTS: usize = 16;
const OVERLOAD_FACTOR: f64 = 2.0;

/// Which serving front-end the storm targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Proto {
    Line,
    Rgnp,
}

impl Proto {
    fn name(self) -> &'static str {
        match self {
            Proto::Line => "line",
            Proto::Rgnp => "rgnp",
        }
    }
}

struct Args {
    soak: Duration,
    baseline: Duration,
    proto: Proto,
}

fn parse_args() -> Args {
    let mut args = Args {
        soak: Duration::from_secs(15),
        baseline: Duration::from_secs(2),
        proto: Proto::Line,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let usage = || -> ! {
        eprintln!("usage: chaos [--test | --duration-secs N] [--proto line|rgnp]");
        std::process::exit(2);
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--test" => {
                args.soak = Duration::from_secs(3);
                args.baseline = Duration::from_secs(1);
            }
            "--duration-secs" => {
                i += 1;
                let value = argv.get(i).unwrap_or_else(|| usage());
                let secs: u64 = value.parse().unwrap_or_else(|_| {
                    eprintln!("invalid value for --duration-secs: {value}");
                    std::process::exit(2);
                });
                args.soak = Duration::from_secs(secs.max(1));
            }
            "--proto" => {
                i += 1;
                args.proto = match argv.get(i).map(String::as_str) {
                    Some("line") => Proto::Line,
                    Some("rgnp") => Proto::Rgnp,
                    _ => usage(),
                };
            }
            _ => usage(),
        }
        i += 1;
    }
    args
}

fn toy_dataset() -> datasets::Dataset {
    let features: Vec<Vec<f32>> = (0..60)
        .map(|i| vec![i as f32 * 0.5, (i % 7) as f32, (i * 3 % 11) as f32])
        .collect();
    let targets: Vec<f32> = features
        .iter()
        .map(|r| 2.0 * r[0] - r[1] + 0.5 * r[2])
        .collect();
    datasets::Dataset::new("chaos", features, targets)
}

fn row_to_csv(row: &[f32]) -> String {
    row.iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        stream.set_nodelay(true)?;
        Ok(Self {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// One request/reply round trip; `None` on any transport failure (a
    /// lost reply — counted separately and required to be zero).
    fn request(&mut self, line: &str) -> Option<String> {
        writeln!(self.writer, "{line}").ok()?;
        self.writer.flush().ok()?;
        let mut reply = String::new();
        match self.reader.read_line(&mut reply) {
            Ok(n) if n > 0 => Some(reply.trim_end().to_string()),
            _ => None,
        }
    }
}

/// Protocol-switchable client: RGNP replies are rendered back into the
/// line protocol's reply strings, so every tally/bit-identity check below
/// is shared verbatim between the two front-ends (f32's `Display` is
/// shortest-roundtrip, so the string compare stays bit-exact).
enum ChaosClient {
    Line(Client),
    Rgnp(Box<RgnpClient>),
}

impl ChaosClient {
    fn connect(addr: SocketAddr, proto: Proto) -> std::io::Result<Self> {
        match proto {
            Proto::Line => Client::connect(addr).map(ChaosClient::Line),
            Proto::Rgnp => {
                let mut c = RgnpClient::connect(&addr.to_string())?;
                c.set_timeout(Some(Duration::from_secs(5)))?;
                Ok(ChaosClient::Rgnp(Box::new(c)))
            }
        }
    }

    /// One predict round trip, normalised to the line protocol's reply
    /// grammar; `None` on transport failure.
    fn predict(&mut self, model: &str, row: &[f32]) -> Option<String> {
        match self {
            ChaosClient::Line(c) => c.request(&format!("predict {model} {}", row_to_csv(row))),
            ChaosClient::Rgnp(c) => match c.predict(model, row) {
                Ok(PredictReply::Ok(y)) => Some(format!("ok {y}")),
                Ok(PredictReply::Degraded(y)) => Some(format!("degraded {y}")),
                Ok(PredictReply::Busy) => Some("busy".to_string()),
                Ok(PredictReply::Draining) => Some("draining".to_string()),
                Ok(PredictReply::Err(m)) => Some(format!("err {m}")),
                Err(_) => None,
            },
        }
    }

    /// Server-side counters, one `name=value` line per stat family. The
    /// RGNP stats payload is byte-identical to the line protocol's body
    /// (both render through `render_stats`), minus the `ok` terminator.
    fn stats_lines(&mut self) -> Vec<String> {
        match self {
            ChaosClient::Line(c) => {
                writeln!(c.writer, "stats").expect("stats write");
                c.writer.flush().expect("stats flush");
                let mut lines = Vec::new();
                loop {
                    let mut line = String::new();
                    c.reader.read_line(&mut line).expect("stats read");
                    let line = line.trim_end().to_string();
                    let done = line == "ok";
                    lines.push(line);
                    if done {
                        return lines;
                    }
                }
            }
            ChaosClient::Rgnp(c) => c
                .stats()
                .expect("stats request")
                .lines()
                .map(str::to_string)
                .collect(),
        }
    }
}

/// Protocol-switchable server handle.
enum ChaosServer {
    Line(ServerHandle),
    Rgnp(NetServerHandle),
}

impl ChaosServer {
    fn local_addr(&self) -> SocketAddr {
        match self {
            ChaosServer::Line(h) => h.local_addr(),
            ChaosServer::Rgnp(h) => h.local_addr(),
        }
    }

    fn injector(&self) -> Arc<FaultInjector> {
        match self {
            ChaosServer::Line(h) => h.injector(),
            ChaosServer::Rgnp(h) => h.injector(),
        }
    }

    fn shutdown(self) {
        match self {
            ChaosServer::Line(h) => drop(h.shutdown()),
            ChaosServer::Rgnp(h) => drop(h.shutdown()),
        }
    }
}

/// Per-client tally of one load phase.
#[derive(Debug, Default, Clone)]
struct Tally {
    sent: u64,
    ok: u64,
    degraded: u64,
    busy: u64,
    draining: u64,
    errs: u64,
    lost: u64,
    /// Degraded replies whose value text disagreed with the precomputed
    /// `predict_degraded` output for that row (must end at 0).
    degraded_mismatches: u64,
    /// Latencies (µs) of answered (`ok` or `degraded`) requests.
    answered_us: Vec<u64>,
}

impl Tally {
    fn merge(&mut self, other: Tally) {
        self.sent += other.sent;
        self.ok += other.ok;
        self.degraded += other.degraded;
        self.busy += other.busy;
        self.draining += other.draining;
        self.errs += other.errs;
        self.lost += other.lost;
        self.degraded_mismatches += other.degraded_mismatches;
        self.answered_us.extend(other.answered_us);
    }

    /// Classifies one reply for the request of `row_idx` (an index into
    /// the expected-degraded table, or `usize::MAX` for store-backed keys
    /// whose degraded value is not cross-checked).
    fn observe(&mut self, reply: Option<&str>, us: u64, row_idx: usize, expected: &[String]) {
        self.sent += 1;
        let Some(reply) = reply else {
            self.lost += 1;
            return;
        };
        if reply.strip_prefix("ok ").is_some() {
            self.ok += 1;
            self.answered_us.push(us);
        } else if let Some(v) = reply.strip_prefix("degraded ") {
            self.degraded += 1;
            self.answered_us.push(us);
            if row_idx != usize::MAX && v != expected[row_idx] {
                self.degraded_mismatches += 1;
            }
        } else if reply == "busy" {
            self.busy += 1;
        } else if reply == "draining" {
            self.draining += 1;
        } else {
            self.errs += 1;
        }
    }
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

/// Closed-loop baseline: `n` clients hammer full-precision predicts for
/// `dur`; returns achieved requests/second (the capacity estimate the
/// overload factor multiplies).
fn measure_capacity(
    addr: SocketAddr,
    proto: Proto,
    rows: &[Vec<f32>],
    n: usize,
    dur: Duration,
) -> f64 {
    let done = Arc::new(AtomicBool::new(false));
    let total = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..n)
        .map(|c| {
            let rows = rows.to_vec();
            let done = done.clone();
            let total = total.clone();
            std::thread::spawn(move || {
                let mut client = ChaosClient::connect(addr, proto).expect("baseline connect");
                let mut i = c;
                while !done.load(Ordering::Relaxed) {
                    let row = &rows[i % rows.len()];
                    i += 1;
                    if client.predict("toy", row).is_some() {
                        total.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();
    std::thread::sleep(dur);
    done.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().expect("baseline client panicked");
    }
    total.load(Ordering::Relaxed) as f64 / dur.as_secs_f64()
}

/// One open-loop soak client: sends on a fixed schedule (no backoff when
/// the server is slow — that is the point), mixing full-precision `toy`
/// requests with store-backed cold/hot lookups.
#[allow(clippy::too_many_arguments)]
fn soak_client(
    addr: SocketAddr,
    proto: Proto,
    rows: Vec<Vec<f32>>,
    expected_degraded: Vec<String>,
    interval: Duration,
    end: Instant,
    client_id: usize,
) -> Tally {
    let mut tally = Tally::default();
    let mut client = match ChaosClient::connect(addr, proto) {
        Ok(c) => c,
        Err(_) => {
            // Connection-cap refusal at connect time: treat the whole
            // schedule as lost so it still counts against availability.
            tally.lost += 1;
            tally.sent += 1;
            return tally;
        }
    };
    let start = Instant::now();
    let mut state = SEED ^ (client_id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut n: u32 = 0;
    loop {
        let due = start + interval.mul_f64(f64::from(n));
        let now = Instant::now();
        if now >= end {
            break;
        }
        if due > now {
            std::thread::sleep(due - now);
            if Instant::now() >= end {
                break;
            }
        }
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let idx = (state >> 33) as usize % rows.len();
        let (model, check_idx) = if n % 8 == 7 {
            // Store-backed key: exercises the registry resolver (retry +
            // circuit breaker) against the faulted store.
            let key = (state >> 17) as usize % STORE_KEYS;
            (format!("u{key}"), usize::MAX)
        } else {
            ("toy".to_string(), idx)
        };
        let t0 = Instant::now();
        let reply = client.predict(&model, &rows[idx]);
        let us = t0.elapsed().as_micros() as u64;
        let reconnect = reply.is_none();
        tally.observe(reply.as_deref(), us, check_idx, &expected_degraded);
        if reconnect {
            match ChaosClient::connect(addr, proto) {
                Ok(c) => client = c,
                Err(_) => break,
            }
        }
        n += 1;
    }
    tally
}

/// The fault storm: every tick, re-arms store write-path faults and pushes
/// a publication through them (consuming the armed faults and exercising
/// rollback); periodically stalls workers, with one hard mid-soak spike
/// that forces queued rows past their deadline.
fn fault_storm(
    store: &ModelStore,
    faults: &StoreFaultInjector,
    injector: &FaultInjector,
    image: &[u8],
    end: Instant,
    publish_ok: &AtomicU64,
    publish_failed: &AtomicU64,
) {
    let start = Instant::now();
    let soak = end.saturating_duration_since(start);
    let spike_at = start + soak / 2;
    let spike_until = spike_at + Duration::from_millis(600).min(soak / 4);
    let mut tick: usize = 0;
    let mut spiked = false;
    while Instant::now() < end {
        // Write-path faults for this tick: each publication below sees at
        // most one, so the store's own retry-free `publish_full` fails (and
        // must roll back) roughly every other tick.
        match tick % 4 {
            0 => faults.arm_enospc_appends(1),
            1 => faults.arm_short_writes(1),
            2 => faults.arm_fsync_failures(1),
            _ => faults.arm_torn_renames(1),
        }
        let key = format!("u{}", tick % STORE_KEYS);
        match store.publish_full(&key, image) {
            Ok(_) => publish_ok.fetch_add(1, Ordering::Relaxed),
            Err(_) => publish_failed.fetch_add(1, Ordering::Relaxed),
        };
        if tick % 8 == 3 {
            // Compaction rewrites the index log — the only path where an
            // armed torn-rename fault can fire. Failures are tolerated (the
            // old log stays authoritative); the post-soak audit checks that.
            let _ = store.compact();
        }

        let now = Instant::now();
        if !spiked && now >= spike_at {
            // Deadline spike: a long worker stall while load keeps
            // arriving, so queued rows age past the deadline and must be
            // shed pre-compute (the `expired` counter).
            injector.set_worker_delay(Duration::from_millis(50));
            spiked = true;
        } else if spiked && now >= spike_until {
            injector.clear();
            spiked = false;
        } else if !spiked && tick % 5 == 4 {
            // Background jitter: brief mild stalls to keep the shed
            // controller honest.
            injector.set_worker_delay(Duration::from_millis(2));
        } else if !spiked {
            injector.clear();
        }
        tick += 1;
        std::thread::sleep(Duration::from_millis(100));
    }
    injector.clear();
    faults.clear();
}

/// Parses `name=value` fields out of a stats line.
fn stat_field(line: &str, name: &str) -> u64 {
    line.split(&format!("{name}="))
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn main() {
    banner(
        "Chaos soak — overload + store faults survivability",
        "ISSUE 7 acceptance: availability ≥ 99%, zero panics, expired shed, bounded p99",
    );
    let args = parse_args();
    let proto = args.proto;
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let simd = hdc::simd::active_label();
    let workers = cores.clamp(2, 4);
    println!(
        "cores {cores}, simd {simd}, workers {workers}, proto {}, soak {:?}, \
         overload {OVERLOAD_FACTOR}×",
        proto.name(),
        args.soak
    );

    // ---- World: one trained bundle, a faulted store, a live server. ----
    let ds = toy_dataset();
    let (bundle, _) = bundle::train(&ds, 256, 4, 4, SEED, false).expect("train toy bundle");
    let bytes = bundle.to_bytes().expect("serialise bundle");
    let expected_degraded: Vec<String> = bundle
        .predict_degraded(&ds.features)
        .expect("degraded baseline")
        .into_iter()
        .map(|v| v.to_string())
        .collect();

    let dir = std::env::temp_dir().join(format!("reghd-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(ModelStore::open(&dir, StoreConfig::default()).expect("open store"));
    let faults = Arc::new(StoreFaultInjector::new());
    store.attach_faults(Some(faults.clone()));
    for k in 0..STORE_KEYS {
        store
            .publish_full(&format!("u{k}"), &bytes)
            .expect("seed store key");
    }

    let registry = Arc::new(ModelRegistry::new());
    registry.load_bytes("toy", &bytes).expect("load toy");
    registry.attach_resolver(store.clone());

    // Same overload posture on either front-end: tight reply timeout,
    // 30 ms deadline, bounded queue, aggressive shed thresholds, and a
    // connection cap just above the fleet size.
    let batcher = BatcherConfig {
        queue_cap: 512,
        ..BatcherConfig::default()
    };
    let shed = Some(ShedConfig {
        demote_p95: Duration::from_millis(10),
        promote_p95: Duration::from_millis(5),
        ..ShedConfig::default()
    });
    let handle = match proto {
        Proto::Line => ChaosServer::Line(
            serve(
                ServerConfig {
                    addr: "127.0.0.1:0".to_string(),
                    workers,
                    reply_timeout: Duration::from_millis(250),
                    read_timeout: Duration::from_secs(30),
                    deadline: Some(Duration::from_millis(30)),
                    max_connections: SOAK_CLIENTS + workers + 8,
                    batcher,
                    shed,
                    ..ServerConfig::default()
                },
                registry.clone(),
            )
            .expect("start server"),
        ),
        Proto::Rgnp => ChaosServer::Rgnp(
            serve_rgnp(
                NetConfig {
                    addr: "127.0.0.1:0".to_string(),
                    workers,
                    reply_timeout: Duration::from_millis(250),
                    deadline: Some(Duration::from_millis(30)),
                    max_connections: SOAK_CLIENTS + workers + 8,
                    batcher,
                    shed,
                    ..NetConfig::default()
                },
                registry.clone(),
            )
            .expect("start RGNP server"),
        ),
    };
    let addr = handle.local_addr();

    // ---- Baseline capacity (clean, closed-loop, full precision). ----
    let capacity = measure_capacity(addr, proto, &ds.features, workers, args.baseline);
    let offered = capacity * OVERLOAD_FACTOR;
    println!("baseline capacity {capacity:.0} req/s → offering {offered:.0} req/s");

    // ---- Soak: open-loop overload + fault storm, concurrently. ----
    let end = Instant::now() + args.soak;
    let publish_ok = Arc::new(AtomicU64::new(0));
    let publish_failed = Arc::new(AtomicU64::new(0));
    let storm = {
        let (store, faults, image) = (store.clone(), faults.clone(), bytes.clone());
        let (publish_ok, publish_failed) = (publish_ok.clone(), publish_failed.clone());
        let injector = handle.injector();
        std::thread::scope(|scope| {
            let storm = scope.spawn(move || {
                fault_storm(
                    &store,
                    &faults,
                    &injector,
                    &image,
                    end,
                    &publish_ok,
                    &publish_failed,
                )
            });
            let interval = Duration::from_secs_f64(SOAK_CLIENTS as f64 / offered.max(1.0));
            let clients: Vec<_> = (0..SOAK_CLIENTS)
                .map(|c| {
                    let rows = ds.features.clone();
                    let expected = expected_degraded.clone();
                    scope.spawn(move || soak_client(addr, proto, rows, expected, interval, end, c))
                })
                .collect();
            let mut tally = Tally::default();
            for c in clients {
                tally.merge(c.join().expect("soak client panicked"));
            }
            storm.join().expect("fault storm panicked");
            tally
        })
    };

    // ---- Post-soak: deterministic degraded bit-identity check. ----
    std::thread::sleep(Duration::from_millis(300)); // drain the spike tail
    let mut admin = ChaosClient::connect(addr, proto).expect("admin connect");
    handle
        .injector()
        .set_worker_delay(Duration::from_millis(400));
    let forced = admin
        .predict("toy", &ds.features[0])
        .expect("forced degraded reply");
    handle.injector().clear();
    let forced_matches = forced == format!("degraded {}", expected_degraded[0]);
    std::thread::sleep(Duration::from_millis(500)); // flush the stalled batch

    // ---- Post-soak: store integrity after the fault storm. ----
    let mut audit_failures = 0u64;
    for k in 0..STORE_KEYS {
        let key = format!("u{k}");
        if store.audit(&key).is_err() || store.get(&key).is_err() {
            audit_failures += 1;
        }
    }

    // ---- Collect server-side counters. ----
    let lines = admin.stats_lines();
    let (mut panics, mut expired, mut shed) = (0u64, 0u64, 0u64);
    for l in lines.iter().filter(|l| l.starts_with("stat ")) {
        panics += stat_field(l, "panics");
        expired += stat_field(l, "expired");
        shed += stat_field(l, "shed");
    }
    let server = lines
        .iter()
        .find(|l| l.starts_with("server "))
        .expect("server stats line");
    let resolver = lines
        .iter()
        .find(|l| l.starts_with("resolver "))
        .expect("resolver stats line");
    let demotions = stat_field(server, "demotions");
    let promotions = stat_field(server, "promotions");
    let connections_rejected = stat_field(server, "connections_rejected");
    let resolver_retries = stat_field(resolver, "retries");
    let resolver_failures = stat_field(resolver, "failures");
    let breaker_trips = stat_field(resolver, "breaker_trips");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    // ---- Survivability report. ----
    let mut answered = storm.answered_us.clone();
    answered.sort_unstable();
    let (p50, p95, p99) = (
        percentile(&answered, 0.50),
        percentile(&answered, 0.95),
        percentile(&answered, 0.99),
    );
    let availability = if storm.sent == 0 {
        0.0
    } else {
        (storm.ok + storm.degraded) as f64 / storm.sent as f64
    };
    println!(
        "sent {} → ok {} degraded {} busy {} draining {} err {} lost {}",
        storm.sent, storm.ok, storm.degraded, storm.busy, storm.draining, storm.errs, storm.lost
    );
    println!(
        "availability {:.4}  p50 {p50}µs  p95 {p95}µs  p99 {p99}µs",
        availability
    );
    println!(
        "expired {expired}  shed {shed}  panics {panics}  demotions {demotions}  \
         promotions {promotions}  conns_rejected {connections_rejected}"
    );
    println!(
        "store: faults_injected {}  publish_ok {}  publish_failed {}  audit_failures \
         {audit_failures}",
        faults.injected(),
        publish_ok.load(Ordering::Relaxed),
        publish_failed.load(Ordering::Relaxed),
    );
    println!(
        "resolver: retries {resolver_retries}  failures {resolver_failures}  breaker_trips \
         {breaker_trips}"
    );
    println!(
        "degraded bit-identity: {} checked in-soak, {} mismatches, forced check {}",
        storm.degraded,
        storm.degraded_mismatches,
        if forced_matches { "ok" } else { "MISMATCH" }
    );

    let json = format!(
        "{{\n  \"soak_secs\": {:.1},\n  \"proto\": \"{}\",\n  \"cores\": {cores},\n  \
         \"simd\": \"{simd}\",\n  \"workers\": {workers},\n  \
         \"clients\": {SOAK_CLIENTS},\n  \"baseline_rps\": {capacity:.0},\n  \
         \"offered_rps\": {offered:.0},\n  \"overload_factor\": {OVERLOAD_FACTOR:.1},\n  \
         \"sent\": {},\n  \"ok\": {},\n  \"degraded\": {},\n  \
         \"tier_full\": {},\n  \"tier_binary\": {},\n  \"busy\": {},\n  \
         \"draining\": {},\n  \"errors\": {},\n  \"lost\": {},\n  \
         \"availability\": {availability:.4},\n  \"p50_us\": {p50},\n  \"p95_us\": {p95},\n  \
         \"p99_us\": {p99},\n  \"expired\": {expired},\n  \"queue_shed\": {shed},\n  \
         \"panics\": {panics},\n  \"demotions\": {demotions},\n  \
         \"promotions\": {promotions},\n  \"connections_rejected\": {connections_rejected},\n  \
         \"store_faults_injected\": {},\n  \"store_publish_ok\": {},\n  \
         \"store_publish_failed\": {},\n  \"store_audit_failures\": {audit_failures},\n  \
         \"resolver_retries\": {resolver_retries},\n  \
         \"resolver_failures\": {resolver_failures},\n  \
         \"breaker_trips\": {breaker_trips},\n  \
         \"degraded_mismatches\": {},\n  \"forced_degraded_bit_identical\": {}\n}}\n",
        args.soak.as_secs_f64(),
        proto.name(),
        storm.sent,
        storm.ok,
        storm.degraded,
        // Which prediction tier answered: OK replies come off the full
        // Eq. 6 path, DEGRADED replies off the bit-packed binary tier.
        storm.ok,
        storm.degraded,
        storm.busy,
        storm.draining,
        storm.errs,
        storm.lost,
        faults.injected(),
        publish_ok.load(Ordering::Relaxed),
        publish_failed.load(Ordering::Relaxed),
        storm.degraded_mismatches,
        forced_matches,
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/chaos.json");
    match std::fs::write(&out, &json) {
        Ok(()) => println!("summary written to {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }

    // ---- Gate: the acceptance invariants, enforced by exit code. ----
    let mut violations = Vec::new();
    if availability < 0.99 {
        violations.push(format!("availability {availability:.4} < 0.99"));
    }
    if panics != 0 {
        violations.push(format!("panics = {panics}"));
    }
    if storm.lost != 0 {
        violations.push(format!("lost replies = {}", storm.lost));
    }
    if expired == 0 {
        violations.push("expired = 0 (deadline spike never shed a queued row)".to_string());
    }
    if storm.degraded_mismatches != 0 || !forced_matches {
        violations.push(format!(
            "degraded replies diverged from predict_degraded ({} in-soak, forced ok={})",
            storm.degraded_mismatches, forced_matches
        ));
    }
    if audit_failures != 0 {
        violations.push(format!("store audit failures = {audit_failures}"));
    }
    if faults.injected() == 0 {
        violations.push("no store fault ever fired".to_string());
    }
    if violations.is_empty() {
        println!("PASS: all survivability invariants held");
    } else {
        for v in &violations {
            eprintln!("FAIL: {v}");
        }
        std::process::exit(1);
    }
}
