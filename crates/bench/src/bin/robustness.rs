//! Robustness evaluation backing the §3 claim: "hypervectors store
//! information across all their components so that no component is more
//! responsible for storing any piece of information than another."
//!
//! Fault model: each component of the trained pipeline's hypervector state
//! has its sign flipped independently with probability `rate` (emulating
//! bit errors in the stored representation — see
//! [`reghd::RegHdRegressor::predict_one_with_noise`]). For the DNN, the
//! comparable fault surface is its input representation — a handful of
//! features each carrying concentrated information — faulted at the same
//! rate.
//!
//! Expected shape: RegHD degrades smoothly and slowly (holographic
//! redundancy over D = 2048 components); the DNN degrades sharply.
//!
//! ```text
//! cargo run -p reghd-bench --release --bin robustness [-- --dim N]
//! ```
//!
//! `--dim` overrides the hypervector dimensionality (default 2048). CI
//! uses a small dimension as a fast smoke run; the paper-scale default is
//! what the docs quote.

use hdc::rng::HdRng;
use reghd::config::{ClusterMode, PredictionMode};
use reghd::Regressor;
use reghd_bench::harness::{self, prepare};
use reghd_bench::report::{banner, Table};

/// Parses `--dim N` from argv; any other argument is rejected.
fn dim_from_args() -> usize {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [] => 2048,
        [flag, value] if flag == "--dim" => value.parse().unwrap_or_else(|_| {
            eprintln!("invalid value for --dim: {value}");
            std::process::exit(2);
        }),
        _ => {
            eprintln!("usage: robustness [--dim N]");
            std::process::exit(2);
        }
    }
}

fn main() {
    banner(
        "Robustness — relative MSE under injected representation faults",
        "RegHD paper §3 robustness claim",
    );
    let seed = 42u64;
    let dim = dim_from_args();
    println!("hypervector dimensionality: D = {dim}");
    let ds = datasets::paper::airfoil(seed);
    let prep = prepare(&ds, seed);

    let mut reghd = harness::reghd_with(
        prep.features,
        8,
        dim,
        ClusterMode::Integer,
        PredictionMode::Full,
        seed,
    );
    reghd.fit(&prep.train_x, &prep.train_y);
    let mut dnn = harness::dnn(prep.features, seed);
    dnn.fit(&prep.train_x, &prep.train_y);

    let clean_reghd = datasets::metrics::mse(&reghd.predict(&prep.test_x), &prep.test_y);
    let clean_dnn = datasets::metrics::mse(&dnn.predict(&prep.test_x), &prep.test_y);

    let mut t = Table::new(["fault rate", "RegHD-8 rel. MSE", "DNN rel. MSE"]);
    for rate in [0.0f64, 0.01, 0.02, 0.05, 0.10, 0.20] {
        let mut rng = HdRng::seed_from(seed ^ (rate * 1e6) as u64);

        // RegHD: sign flips in the encoded hypervector components.
        let mut sq_r = 0.0f64;
        for (x, &y) in prep.test_x.iter().zip(&prep.test_y) {
            let e = reghd.predict_one_with_noise(x, rate, &mut rng) - y;
            sq_r += (e as f64) * (e as f64);
        }
        let rel_reghd = (sq_r / prep.test_y.len() as f64) as f32 / clean_reghd;

        // DNN: sign flips in its (low-dimensional, high-information-density)
        // input representation.
        let mut sq_d = 0.0f64;
        for (x, &y) in prep.test_x.iter().zip(&prep.test_y) {
            let mut xf = x.clone();
            for v in &mut xf {
                if rng.next_bool(rate) {
                    *v = -*v;
                }
            }
            let e = dnn.predict_one(&xf) - y;
            sq_d += (e as f64) * (e as f64);
        }
        let rel_dnn = (sq_d / prep.test_y.len() as f64) as f32 / clean_dnn;

        t.row([
            format!("{:.0}%", rate * 100.0),
            format!("{rel_reghd:.2}"),
            format!("{rel_dnn:.2}"),
        ]);
    }
    println!("{}", t.render());
    println!("expected shape: RegHD's relative MSE grows slowly and smoothly with the");
    println!("fault rate; the DNN, whose few input features each carry concentrated");
    println!("information, degrades much faster at the same per-component rate.");
}
