//! Table 1 reproduction: quality of regression (MSE) for RegHD-k vs the
//! state-of-the-art baselines on all seven datasets.
//!
//! ```text
//! cargo run -p reghd-bench --release --bin table1
//! ```
//!
//! The paper's qualitative shape this must reproduce:
//! * Baseline-HD is the worst learner on every dataset (discrete output).
//! * RegHD quality improves monotonically with the model count `k`.
//! * RegHD-32 is competitive with the classical learners (between the
//!   tree/linear tier and the DNN tier).

use reghd::Regressor;
use reghd_bench::harness::{self, prepare};
use reghd_bench::report::{banner, fmt_mse, Table};

fn main() {
    banner(
        "Table 1 — quality of regression (test MSE, original units)",
        "RegHD paper Table 1",
    );
    let seed = 42u64;
    let datasets = datasets::paper::all(seed);

    let model_rows: Vec<&str> = vec![
        "DNN",
        "Linear",
        "DecisionTree",
        "SVR",
        "Baseline-HD",
        "RegHD-1",
        "RegHD-2",
        "RegHD-8",
        "RegHD-32",
    ];

    // results[model][dataset]
    let mut results: Vec<Vec<f32>> = vec![Vec::new(); model_rows.len()];
    for ds in &datasets {
        eprintln!("[table1] dataset {} ({} samples)", ds.name, ds.len());
        let prep = prepare(ds, seed);
        let f = prep.features;
        let mut models: Vec<Box<dyn Regressor>> = vec![
            Box::new(harness::dnn(f, seed)),
            Box::new(harness::linear()),
            Box::new(harness::tree()),
            Box::new(harness::svr(f, seed)),
            Box::new(harness::baseline_hd(f, seed)),
            Box::new(harness::reghd(f, 1, seed)),
            Box::new(harness::reghd(f, 2, seed)),
            Box::new(harness::reghd(f, 8, seed)),
            Box::new(harness::reghd(f, 32, seed)),
        ];
        for (mi, model) in models.iter_mut().enumerate() {
            let out = harness::evaluate(model.as_mut(), &prep);
            eprintln!(
                "[table1]   {:<16} mse={:<12} epochs={:<3} ({:?})",
                out.model,
                fmt_mse(out.test_mse),
                out.epochs,
                out.train_time
            );
            results[mi].push(out.test_mse);
        }
    }

    let mut table = Table::new(
        std::iter::once("model".to_string())
            .chain(datasets.iter().map(|d| d.name.clone()))
            .collect::<Vec<_>>(),
    );
    for (mi, name) in model_rows.iter().enumerate() {
        let mut cells = vec![name.to_string()];
        cells.extend(results[mi].iter().map(|&m| fmt_mse(m)));
        table.row(cells);
    }
    println!("{}", table.render());

    // The qualitative checks the paper's Table 1 supports.
    let idx = |name: &str| {
        model_rows
            .iter()
            .position(|&m| m == name)
            .expect("known row")
    };
    let mean_of = |row: usize| -> f64 {
        // Geometric-mean style comparison across datasets of different
        // scales: average each model's MSE normalised by RegHD-32's.
        let base = &results[idx("RegHD-32")];
        results[row]
            .iter()
            .zip(base)
            .map(|(&m, &b)| (m as f64 / b as f64).ln())
            .sum::<f64>()
            / base.len() as f64
    };
    println!("log-mean MSE relative to RegHD-32 (lower is better):");
    for name in &model_rows {
        println!("  {:<14} {:+.3}", name, mean_of(idx(name)));
    }
    let reghd_trend = results[idx("RegHD-1")]
        .iter()
        .zip(&results[idx("RegHD-32")])
        .filter(|(a, b)| a > b)
        .count();
    println!(
        "\nRegHD-32 beats RegHD-1 on {}/{} datasets (paper: more models => higher quality)",
        reghd_trend,
        datasets.len()
    );
    let bhd_worst = results[idx("Baseline-HD")]
        .iter()
        .zip(&results[idx("RegHD-8")])
        .filter(|(b, r)| b > r)
        .count();
    println!(
        "Baseline-HD worse than RegHD-8 on {}/{} datasets (paper: baseline-HD is the weakest)",
        bhd_worst,
        datasets.len()
    );
}
