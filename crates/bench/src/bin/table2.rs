//! Table 2 reproduction: RegHD quality loss and efficiency as the
//! hypervector dimensionality shrinks from 4k to 0.5k.
//!
//! The paper reports (relative to D = 4k):
//!
//! | D | quality loss | train speedup/eff | infer speedup/eff |
//! |---|---|---|---|
//! | 3k | 0.1% | 1.18x / 1.26x | 1.19x / 1.30x |
//! | 2k | 0.3% | 1.71x / 1.86x | 1.78x / 1.90x |
//! | 1k | 0.9% | 3.09x / 3.53x | 3.67x / 3.81x |
//! | 0.5k | 2.4% | 5.20x / 6.38x | 7.13x / 7.62x |
//!
//! Training speedups are sub-linear in 1/D because smaller models need more
//! epochs to converge — measured here from the real fits, exactly as §4.4
//! describes.
//!
//! ```text
//! cargo run -p reghd-bench --release --bin table2
//! ```

use hwmodel::algos::{reghd_infer_cost, reghd_train_epoch_cost, RegHdShape};
use hwmodel::device::{energy_gain, speedup};
use hwmodel::DeviceProfile;
use reghd::config::{ClusterMode, PredictionMode};
use reghd_bench::harness::{self, prepare};
use reghd_bench::report::{banner, fmt_ratio, Table};

fn main() {
    banner(
        "Table 2 — quality loss and efficiency vs dimensionality",
        "RegHD paper Table 2",
    );
    let seed = 42u64;
    let dev = DeviceProfile::fpga_kintex7();
    let k = 8usize;
    let dims = [4096usize, 3072, 2048, 1024, 512];

    // Quality loss averaged over all datasets; epochs and cost from the
    // airfoil representative (matching Figure 8's workload).
    let datasets_all = datasets::paper::all(seed);
    let mut rows = Vec::new();
    for &dim in &dims {
        eprintln!("[table2] D = {dim}");
        let mut ratios = Vec::new();
        let mut epochs_sum = 0u64;
        for ds in &datasets_all {
            let prep = prepare(ds, seed);
            let mut m = harness::reghd_with(
                prep.features,
                k,
                dim,
                ClusterMode::Integer,
                PredictionMode::Full,
                seed,
            );
            let out = harness::evaluate(&mut m, &prep);
            ratios.push(out.test_mse as f64);
            epochs_sum += out.epochs as u64;
        }
        let epochs_avg = epochs_sum / datasets_all.len() as u64;
        rows.push((dim, ratios, epochs_avg));
    }

    let reference: Vec<f64> = rows[0].1.clone();
    let ref_epochs = rows[0].2;
    let f = 10u64; // representative feature count for the cost model
    let n = 1200u64; // representative training-set size
    let shape = |dim: usize| RegHdShape {
        dim: dim as u64,
        models: k as u64,
        features: f,
        cluster_binary: false,
        query_binary: false,
        model_binary: false,
    };
    let ref_train = dev.estimate(&(reghd_train_epoch_cost(&shape(4096), n) * ref_epochs));
    let ref_infer = dev.estimate(&reghd_infer_cost(&shape(4096)));

    let mut t = Table::new([
        "D",
        "quality loss",
        "epochs",
        "train speedup",
        "train energy",
        "infer speedup",
        "infer energy",
    ]);
    for (dim, ratios, epochs) in &rows {
        // Geometric-mean MSE ratio to the D=4k reference, expressed as a
        // quality loss percentage.
        let gmean_ratio = (ratios
            .iter()
            .zip(&reference)
            .map(|(m, r)| (m / r).ln())
            .sum::<f64>()
            / ratios.len() as f64)
            .exp();
        let train = dev.estimate(&(reghd_train_epoch_cost(&shape(*dim), n) * *epochs));
        let infer = dev.estimate(&reghd_infer_cost(&shape(*dim)));
        t.row([
            format!("{:.1}k", *dim as f64 / 1024.0),
            format!("{:+.1}%", 100.0 * (gmean_ratio - 1.0)),
            epochs.to_string(),
            fmt_ratio(speedup(&ref_train, &train)),
            fmt_ratio(energy_gain(&ref_train, &train)),
            fmt_ratio(speedup(&ref_infer, &infer)),
            fmt_ratio(energy_gain(&ref_infer, &infer)),
        ]);
    }
    println!("{}", t.render());
    println!("paper: 2k -> 0.3% loss, 1.71x/1.86x train, 1.78x/1.90x infer;");
    println!("       0.5k -> 2.4% loss, 5.20x/6.38x train, 7.13x/7.62x infer");
}
