//! Plain-text table formatting for the experiment binaries.
//!
//! Every binary prints a header naming the paper artefact it regenerates,
//! then one aligned table per result set — the same rows/series the paper
//! reports, so outputs can be pasted directly into `EXPERIMENTS.md`.

/// A simple fixed-width table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row has {} cells, header has {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (cell, &w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                // Left-align the first column, right-align the rest
                // (numeric).
                if i == 0 {
                    line.push_str(&format!("{cell:<w$}"));
                } else {
                    line.push_str(&format!("{cell:>w$}"));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Prints a banner naming the experiment and the paper artefact.
pub fn banner(experiment: &str, artefact: &str) {
    println!("================================================================");
    println!("{experiment}");
    println!("Regenerates: {artefact}");
    println!("================================================================");
}

/// Formats an MSE to a sensible precision for its magnitude (Table 1 mixes
/// 0.5-scale wine MSEs with 11,000-scale facebook MSEs).
pub fn fmt_mse(mse: f32) -> String {
    if !mse.is_finite() {
        return format!("{mse}");
    }
    if mse >= 100.0 {
        format!("{mse:.0}")
    } else if mse >= 1.0 {
        format!("{mse:.1}")
    } else {
        format!("{mse:.3}")
    }
}

/// Formats a ratio like `3.1x`.
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new(["model", "mse"]);
        t.row(["DNN", "14.6"]);
        t.row(["RegHD-32", "15.8"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("model"));
        assert!(lines[2].starts_with("DNN"));
        // Numeric column right-aligned: both rows end at the same column.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row has 1 cells")]
    fn ragged_row_panics() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn fmt_mse_scales_precision() {
        assert_eq!(fmt_mse(11344.8), "11345");
        assert_eq!(fmt_mse(14.62), "14.6");
        assert_eq!(fmt_mse(0.5312), "0.531");
    }

    #[test]
    fn fmt_ratio_format() {
        assert_eq!(fmt_ratio(5.6), "5.60x");
    }
}
