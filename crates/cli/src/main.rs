//! `reghd-cli` — train, evaluate, run, and serve RegHD models on CSV data.
//!
//! ```text
//! reghd-cli train   --csv data.csv --out model.rghd [--dim 2048] [--models 8]
//!                   [--epochs 40] [--seed 0] [--threads N] [--quantized]
//! reghd-cli train   --source drift:abrupt:4:1000|csv:data.csv|tcp:HOST:PORT:N
//!                   [--samples N] [--checkpoint-every N] [--checkpoint-dir DIR]
//!                   [--drift ph|ewma|off] [--drift-action reset|shadow]
//!                   [--publish-to NAME] [--serve-addr HOST:PORT]
//!                   [--resume state.rghd] [--dim N] [--models K] [--seed N]
//!                   [--threads N]
//! reghd-cli eval    --csv data.csv --model model.rghd [--trig exact|fast]
//! reghd-cli predict --csv data.csv --model model.rghd [--trig exact|fast]
//! reghd-cli serve   --model model.rghd --addr 127.0.0.1:7878
//!                   [--proto rgnp|line] [--name NAME] [--workers N] [--threads N]
//!                   [--trig exact|fast] [--max-batch N] [--max-wait-us N]
//!                   [--queue-cap N] [--max-conns N] [--deadline-us N]
//!                   [--shed-p95-us N] [--pollers N] [--max-frame N]
//!                   [--write-budget N] [--canary] [--chaos]
//!                   [--sweep-interval-ms N]
//! reghd-cli loadgen --addr HOST:PORT --model NAME [--row f32,f32,...]
//!                   [--conns N] [--rate RPS] [--secs N] [--json PATH]
//! reghd-cli inject  --addr HOST:PORT --kind bitflip|delay|kill|panic|garble|clear
//!                   [--model NAME] [--rate R] [--seed N] [--ms N] [--n N]
//! ```
//!
//! CSV format: numeric columns, optional header, **last column is the
//! target** (ignored by `predict` if present). The tool standardises
//! features and targets on the training data and stores the scalers inside
//! the model bundle, so evaluation and prediction accept raw units.
//!
//! `train --source` switches to the **streaming** pipeline (`reghd-train`):
//! single-pass predict-then-train over a pluggable sample source with drift
//! detection, periodic canary-carrying checkpoints, and optional hot-swap
//! publication into an in-process serving registry (`--publish-to` +
//! `--serve-addr`). Sources: `drift:<abrupt|gradual|incremental>:<features>:
//! <period>` (synthetic non-stationary stream), `csv:<path>` (replay), and
//! `tcp:<host>:<port>:<features>` (line-protocol feed, one CSV row per
//! line, target last).
//!
//! `--threads N` sets row-parallelism for batch encoding/prediction
//! (`0`, the default, uses all available cores; `1` is sequential).
//! Chunked rows keep outputs **bit-identical** at every setting.
//!
//! `--trig fast` (eval/predict/serve) swaps the encoder's `sin`/`cos` for a
//! range-reduced polynomial approximation with a documented error bound
//! (`hdc::kernels::FAST_TRIG_MAX_ABS_ERROR`, ≈1.5e-6 per component) in
//! exchange for encoding throughput. The default `exact` reproduces the
//! training-time arithmetic bit for bit; canary replays always force exact
//! mode, so bundle integrity checks are unaffected by this knob.
//!
//! `serve` defaults to the **RGNP** binary protocol (`docs/PROTOCOL.md`):
//! an epoll poller pool multiplexing pipelined length-prefixed frames
//! (`reghd-net`). `serve --proto line` keeps the legacy line-oriented
//! protocol implemented in `reghd-serve`; both front-ends answer
//! bit-identically. `loadgen` drives a running RGNP server open-loop at a
//! fixed offered rate and reports latency quantiles. `serve --canary`
//! replays the bundle's embedded canary rows before binding the socket;
//! `serve --chaos` enables the `inject` protocol command so a running
//! server can be fault-tested, and `inject` is the matching client that
//! arms one fault (see the README's Fault tolerance section).

use reghd_serve::bundle::{self, ModelBundle};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage:\n  reghd-cli train   --csv <data.csv> --out <model.rghd> \
         [--dim N] [--models K] [--epochs N] [--seed N] [--threads N] [--quantized]\n  \
         reghd-cli train   --source <drift:KIND:FEATURES:PERIOD|csv:PATH|tcp:HOST:PORT:FEATURES> \
         [--samples N] [--checkpoint-every N] [--checkpoint-dir DIR] [--drift ph|ewma|off] \
         [--drift-action reset|shadow] [--publish-to NAME] [--serve-addr HOST:PORT] \
         [--resume state.rghd] [--dim N] [--models K] [--seed N] [--threads N]\n  \
         reghd-cli eval    --csv <data.csv> --model <model.rghd> [--trig exact|fast] \
         [--tier full|binary] [--simd auto|avx2|neon|scalar]\n  \
         reghd-cli predict --csv <data.csv> --model <model.rghd> [--trig exact|fast] \
         [--tier full|binary] [--simd auto|avx2|neon|scalar]\n  \
         reghd-cli serve   [--model <model.rghd>] [--store DIR] [--name NAME] [--addr HOST:PORT] \
         [--proto rgnp|line] [--workers N] [--threads N] [--trig exact|fast] \
         [--simd auto|avx2|neon|scalar] [--max-batch N] \
         [--max-wait-us N] [--queue-cap N] [--max-conns N] [--deadline-us N] [--shed-p95-us N] \
         [--pollers N] [--max-frame N] [--write-budget N] \
         [--canary] [--chaos] [--sweep-interval-ms N]\n  \
         reghd-cli loadgen --addr <HOST:PORT> --model NAME [--row f32,f32,...] \
         [--conns N] [--rate RPS] [--secs N] [--tier full|binary] [--json PATH]\n  \
         reghd-cli store   <init|ingest|stats|compact|predict> --dir DIR \
         [--shards N] [--hot-budget-mb N] [--model model.rghd] [--key KEY] [--copies N] \
         [--csv data.csv]\n  \
         reghd-cli inject  --addr <HOST:PORT> --kind <bitflip|delay|kill|panic|garble|clear> \
         [--model NAME] [--rate R] [--seed N] [--ms N] [--n N]"
    );
    std::process::exit(2);
}

/// Minimal flag parser: `--key value` pairs plus boolean `--flags`.
#[derive(Debug)]
struct Args {
    flags: Vec<(String, Option<String>)>,
}

/// A token following `--key` counts as its value unless it is itself a
/// flag. Numeric lookalikes (`-3`, `-0.5`, even a pathological `--5`) are
/// values, so `--threshold -0.5` parses the way the user meant it. Only
/// *finite* numbers qualify: `--inf`, `--nan`, and `--infinity` happen to
/// parse as `f64`, but nobody passes infinity on a command line — they are
/// flag names.
fn is_flag_token(tok: &str) -> bool {
    match tok.strip_prefix("--") {
        Some(rest) => !rest.parse::<f64>().is_ok_and(|v| v.is_finite()),
        None => false,
    }
}

impl Args {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut flags: Vec<(String, Option<String>)> = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if !is_flag_token(a) {
                return Err(format!("unexpected argument: {a}"));
            }
            let key = a.trim_start_matches("--");
            if flags.iter().any(|(k, _)| k == key) {
                return Err(format!("duplicate flag --{key}"));
            }
            let value = args.get(i + 1).filter(|v| !is_flag_token(v)).cloned();
            if value.is_some() {
                i += 1;
            }
            flags.push((key.to_string(), value));
            i += 1;
        }
        Ok(Self { flags })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, key: &str) -> bool {
        self.flags.iter().any(|(k, _)| k == key)
    }

    fn require(&self, key: &str) -> &str {
        self.get(key).unwrap_or_else(|| {
            eprintln!("missing required flag --{key}");
            usage();
        })
    }

    fn parse_num<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.get(key) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("invalid value for --{key}: {v}");
                usage();
            }),
        }
    }
}

/// Maps the `--trig` flag to a [`hdc::TrigMode`] (`exact` when absent).
fn parse_trig(args: &Args) -> Result<hdc::TrigMode, String> {
    match args.get("trig") {
        None => Ok(hdc::TrigMode::Exact),
        Some("exact") => Ok(hdc::TrigMode::Exact),
        Some("fast") => Ok(hdc::TrigMode::Fast),
        Some(other) => Err(format!("unknown trig mode {other:?} (expected exact|fast)")),
    }
}

/// Applies the `--simd` flag (`auto|avx2|neon|scalar`) as the process-wide
/// dispatch level. Absent flag keeps the default (the `REGHD_SIMD`
/// environment variable, else auto-detect).
fn apply_simd(args: &Args) -> Result<(), String> {
    if let Some(pref) = args.get("simd") {
        hdc::simd::set_preference(pref)?;
    }
    Ok(())
}

/// Which prediction tier `eval`/`predict` should run: the full-precision
/// Eq. 6 path or the §3.2 bit-packed popcount tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CliTier {
    Full,
    Binary,
}

/// Maps the `--tier` flag to a [`CliTier`] (`full` when absent).
fn parse_tier(args: &Args) -> Result<CliTier, String> {
    match args.get("tier") {
        None | Some("full") => Ok(CliTier::Full),
        Some("binary") => Ok(CliTier::Binary),
        Some(other) => Err(format!("unknown tier {other:?} (expected full|binary)")),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else { usage() };
    // `store` takes an action word before its flags; everything else goes
    // straight to flag parsing.
    let flag_start = if cmd == "store" { 2.min(argv.len()) } else { 1 };
    let args = match Args::parse(&argv[flag_start..]) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            usage();
        }
    };
    let result = match cmd.as_str() {
        "train" => cmd_train(&args),
        "eval" => cmd_eval(&args),
        "predict" => cmd_predict(&args),
        "serve" => cmd_serve(&args),
        "loadgen" => cmd_loadgen(&args),
        "store" => cmd_store(argv.get(1).map(String::as_str).unwrap_or(""), &args),
        "inject" => cmd_inject(&args),
        _ => {
            eprintln!("unknown command: {cmd}");
            usage();
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_train(args: &Args) -> Result<(), String> {
    if args.has("source") {
        return cmd_train_stream(args);
    }
    let csv = args.require("csv");
    let out = args.require("out");
    let dim: usize = args.parse_num("dim", 2048);
    let models: usize = args.parse_num("models", 8);
    let epochs: usize = args.parse_num("epochs", 40);
    let seed: u64 = args.parse_num("seed", 0);
    let threads: usize = args.parse_num("threads", 0);
    let quantized = args.has("quantized");

    let ds = datasets::csv::load_csv(csv).map_err(|e| e.to_string())?;
    println!(
        "loaded {}: {} samples × {} features",
        ds.name,
        ds.len(),
        ds.num_features()
    );
    let (bundle, report) =
        bundle::train_with_threads(&ds, dim, models, epochs, seed, quantized, threads)?;
    println!(
        "trained: {} epochs, converged: {}, final train MSE (scaled): {:.6}",
        report.epochs,
        report.converged,
        report.final_mse().unwrap_or(f32::NAN)
    );
    bundle.save(out)?;
    println!("model written to {out}");
    Ok(())
}

/// A parsed `--source` specification (separate from the opened source so
/// the string → spec mapping is testable without touching disk or network).
#[derive(Debug, PartialEq, Eq)]
enum SourceSpec {
    Drift {
        kind: datasets::drift::DriftKind,
        features: usize,
        period: usize,
    },
    Csv(String),
    Tcp {
        addr: String,
        features: usize,
    },
}

fn parse_source_spec(spec: &str) -> Result<SourceSpec, String> {
    use datasets::drift::DriftKind;
    if let Some(rest) = spec.strip_prefix("drift:") {
        let parts: Vec<&str> = rest.split(':').collect();
        let [kind, features, period] = parts.as_slice() else {
            return Err(format!(
                "bad drift source {spec:?} (expected drift:<abrupt|gradual|incremental>:<features>:<period>)"
            ));
        };
        let kind = match *kind {
            "abrupt" => DriftKind::Abrupt,
            "gradual" => DriftKind::Gradual,
            "incremental" => DriftKind::Incremental,
            other => return Err(format!("unknown drift kind {other:?}")),
        };
        let features: usize = features
            .parse()
            .map_err(|_| format!("bad feature count in {spec:?}"))?;
        let period: usize = period
            .parse()
            .map_err(|_| format!("bad period in {spec:?}"))?;
        if features == 0 || period == 0 {
            return Err("drift features and period must be nonzero".to_string());
        }
        Ok(SourceSpec::Drift {
            kind,
            features,
            period,
        })
    } else if let Some(path) = spec.strip_prefix("csv:") {
        Ok(SourceSpec::Csv(path.to_string()))
    } else if let Some(rest) = spec.strip_prefix("tcp:") {
        // The address itself contains a colon, so the feature count is the
        // segment after the LAST colon: tcp:<host>:<port>:<features>.
        let Some((addr, features)) = rest.rsplit_once(':') else {
            return Err(format!(
                "bad tcp source {spec:?} (expected tcp:<host>:<port>:<features>)"
            ));
        };
        let features: usize = features
            .parse()
            .map_err(|_| format!("bad feature count in {spec:?}"))?;
        if features == 0 || !addr.contains(':') {
            return Err(format!(
                "bad tcp source {spec:?} (expected tcp:<host>:<port>:<features>)"
            ));
        }
        Ok(SourceSpec::Tcp {
            addr: addr.to_string(),
            features,
        })
    } else {
        Err(format!(
            "unknown source {spec:?} (expected drift:…, csv:…, or tcp:…)"
        ))
    }
}

fn open_source(spec: &SourceSpec, seed: u64) -> Result<Box<dyn reghd_train::SampleSource>, String> {
    use datasets::drift::DriftStream;
    use reghd_train::{CsvReplaySource, DriftSource, TcpFeedSource};
    match spec {
        SourceSpec::Drift {
            kind,
            features,
            period,
        } => {
            let stream = DriftStream::new(*features, *period, *kind, seed);
            Ok(Box::new(DriftSource::new(
                stream,
                *features,
                format!("drift:{kind:?}:{features}:{period}"),
            )))
        }
        SourceSpec::Csv(path) => Ok(Box::new(CsvReplaySource::from_path(path)?)),
        SourceSpec::Tcp { addr, features } => {
            Ok(Box::new(TcpFeedSource::connect(addr, *features)?))
        }
    }
}

fn cmd_train_stream(args: &Args) -> Result<(), String> {
    use reghd_serve::registry::ModelRegistry;
    use reghd_serve::server::{serve, ServerConfig};
    use reghd_train::{
        DriftAction, EwmaDetector, PageHinkley, PublishTarget, Trainer, TrainerConfig,
    };
    use std::sync::Arc;

    let spec = parse_source_spec(args.require("source"))?;
    let dim: usize = args.parse_num("dim", 2048);
    let models: usize = args.parse_num("models", 4);
    let seed: u64 = args.parse_num("seed", 0);
    let samples: u64 = args.parse_num("samples", 10_000);
    let checkpoint_every: u64 = args.parse_num("checkpoint-every", 0);
    let threads: usize = args.parse_num("threads", 0);

    let mut source = open_source(&spec, seed)?;
    let cfg = TrainerConfig {
        dim,
        models,
        seed,
        threads,
        max_samples: Some(samples),
        checkpoint_every: (checkpoint_every > 0).then_some(checkpoint_every),
        checkpoint_dir: args.get("checkpoint-dir").map(Into::into),
        drift_action: match args.get("drift-action").unwrap_or("reset") {
            "reset" => DriftAction::ResetWorstCluster,
            "shadow" => DriftAction::ShadowPromote,
            other => return Err(format!("unknown drift action {other:?} (reset|shadow)")),
        },
        ..TrainerConfig::default()
    };
    let mut trainer = match args.get("resume") {
        Some(path) => {
            let t = Trainer::resume(cfg, source.num_features(), path)?;
            println!("resumed from {path} at sample {}", t.model().samples_seen());
            t
        }
        None => Trainer::new(cfg, source.num_features()),
    };
    match args.get("drift").unwrap_or("ph") {
        "ph" => trainer = trainer.with_detector(Box::new(PageHinkley::default())),
        "ewma" => trainer = trainer.with_detector(Box::new(EwmaDetector::default())),
        "off" => {}
        other => return Err(format!("unknown drift detector {other:?} (ph|ewma|off)")),
    }

    let registry = Arc::new(ModelRegistry::new());
    // Published checkpoints (and any model served from --serve-addr)
    // predict on the same thread count as the trainer's canary path.
    registry.set_default_threads(threads);
    if let Some(name) = args.get("publish-to") {
        trainer = trainer.with_publish(PublishTarget {
            registry: registry.clone(),
            name: name.to_string(),
        });
    }
    let server = match args.get("serve-addr") {
        Some(addr) => {
            let handle = serve(
                ServerConfig {
                    addr: addr.to_string(),
                    threads,
                    train_status: Some(trainer.status()),
                    ..ServerConfig::default()
                },
                registry.clone(),
            )
            .map_err(|e| e.to_string())?;
            println!("serving on {} while training", handle.local_addr());
            Some(handle)
        }
        None => None,
    };

    println!(
        "streaming from {} ({} features)",
        source.label(),
        source.num_features()
    );
    let report = trainer.run(source.as_mut())?;
    println!(
        "trained {} samples: preq MSE {:.6}, drift events {}, checkpoints {}, \
         publications {} ({} canary failures), cluster resets {}, promotions {}",
        report.samples,
        report.final_prequential_mse,
        report.drift_events,
        report.checkpoints,
        report.publications,
        report.canary_failures,
        report.cluster_resets,
        report.promotions,
    );
    for meta in registry.list() {
        println!(
            "published model {} v{} (dim={}, k={}, hash={})",
            meta.name, meta.version, meta.dim, meta.models, meta.hash
        );
    }
    if let Some(h) = server {
        h.shutdown();
    }
    Ok(())
}

fn cmd_eval(args: &Args) -> Result<(), String> {
    let csv = args.require("csv");
    let model_path = args.require("model");
    let trig = parse_trig(args)?;
    let tier = parse_tier(args)?;
    apply_simd(args)?;
    let ds = datasets::csv::load_csv(csv).map_err(|e| e.to_string())?;
    let bundle = ModelBundle::load(model_path)?;
    bundle.set_trig_mode(trig);
    let preds = match tier {
        CliTier::Full => bundle.predict(&ds.features)?,
        CliTier::Binary => bundle.predict_binary(&ds.features)?,
    };
    let mse = datasets::metrics::mse(&preds, &ds.targets);
    let rmse = datasets::metrics::rmse(&preds, &ds.targets);
    let r2 = datasets::metrics::r2(&preds, &ds.targets);
    println!("samples: {}", ds.len());
    println!("MSE:  {mse:.6}");
    println!("RMSE: {rmse:.6}");
    println!("R²:   {r2:.4}");
    Ok(())
}

fn cmd_predict(args: &Args) -> Result<(), String> {
    let csv = args.require("csv");
    let model_path = args.require("model");
    let trig = parse_trig(args)?;
    let tier = parse_tier(args)?;
    apply_simd(args)?;
    let ds = datasets::csv::load_csv(csv).map_err(|e| e.to_string())?;
    let bundle = ModelBundle::load(model_path)?;
    bundle.set_trig_mode(trig);
    let preds = match tier {
        CliTier::Full => bundle.predict(&ds.features)?,
        CliTier::Binary => bundle.predict_binary(&ds.features)?,
    };
    print_predictions(&preds);
    Ok(())
}

/// Prints one prediction per line, stopping quietly if stdout goes away
/// (`predict … | head` must not panic on the broken pipe).
fn print_predictions(preds: &[f32]) {
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for p in preds {
        if writeln!(out, "{p}").is_err() {
            return;
        }
    }
}

/// Opens a [`reghd_store::ModelStore`] at `dir` with the CLI's sizing
/// flags.
fn open_store_at(
    dir: &str,
    args: &Args,
) -> Result<std::sync::Arc<reghd_store::ModelStore>, String> {
    use reghd_store::{ModelStore, StoreConfig};
    let cfg = StoreConfig {
        shards: args.parse_num("shards", StoreConfig::default().shards),
        hot_budget_bytes: args.parse_num::<usize>("hot-budget-mb", 64) << 20,
    };
    ModelStore::open(std::path::Path::new(dir), cfg)
        .map(std::sync::Arc::new)
        .map_err(|e| format!("cannot open store at {dir}: {e}"))
}

fn cmd_store(action: &str, args: &Args) -> Result<(), String> {
    use reghd_serve::registry::ModelResolver;
    match action {
        "init" => {
            let store = open_store_at(args.require("dir"), args)?;
            println!("store initialised: {}", store.stats_line());
            Ok(())
        }
        "ingest" => {
            let store = open_store_at(args.require("dir"), args)?;
            let path = args.require("model");
            let key = args.require("key");
            let copies: usize = args.parse_num("copies", 1);
            let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            if copies <= 1 {
                let meta = store.publish_full(key, &bytes).map_err(|e| e.to_string())?;
                println!(
                    "published {} v{} ({} bytes, hash={})",
                    meta.name, meta.version, meta.bytes, meta.hash
                );
            } else {
                // Fleet ingest: the same artefact under key0..keyN-1, each
                // a durable publish in its own right.
                for i in 0..copies {
                    store
                        .publish_full(&format!("{key}{i}"), &bytes)
                        .map_err(|e| e.to_string())?;
                }
                println!("published {copies} keys {key}0..{key}{}", copies - 1);
            }
            println!("store: {}", store.stats_line());
            Ok(())
        }
        "stats" => {
            let store = open_store_at(args.require("dir"), args)?;
            println!("{}", store.stats_line());
            Ok(())
        }
        "compact" => {
            let store = open_store_at(args.require("dir"), args)?;
            let before = store.stats().pack_bytes;
            store.compact().map_err(|e| e.to_string())?;
            let after = store.stats().pack_bytes;
            println!("compacted: {before} -> {after} pack bytes");
            Ok(())
        }
        "predict" => {
            // Store-backed resolution without a server: resolve the key,
            // predict the CSV rows, print one prediction per line.
            let store = open_store_at(args.require("dir"), args)?;
            let key = args.require("key");
            let csv = args.require("csv");
            let ds = datasets::csv::load_csv(csv).map_err(|e| e.to_string())?;
            let served = store.get(key).map_err(|e| e.to_string())?;
            print_predictions(&served.bundle.predict(&ds.features)?);
            Ok(())
        }
        other => Err(format!(
            "unknown store action {other:?} (expected init|ingest|stats|compact|predict)"
        )),
    }
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    use reghd_serve::batcher::BatcherConfig;
    use reghd_serve::registry::ModelRegistry;
    use reghd_serve::server::{serve, ServerConfig};
    use reghd_serve::shed::ShedConfig;
    use std::sync::Arc;
    use std::time::Duration;

    let model_path = match args.get("model") {
        Some(p) => Some(p),
        None if args.has("store") => None,
        None => {
            eprintln!("serve needs --model, --store, or both");
            usage();
        }
    };
    let default_name = model_path
        .map(|p| {
            std::path::Path::new(p)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("default")
                .to_string()
        })
        .unwrap_or_else(|| "default".to_string());
    let name = args.get("name").unwrap_or(&default_name).to_string();
    let addr = args.get("addr").unwrap_or("127.0.0.1:7878").to_string();
    let workers: usize = args.parse_num("workers", 4);
    let threads: usize = args.parse_num("threads", 0);
    let trig = parse_trig(args)?;
    apply_simd(args)?;
    let max_batch: usize = args.parse_num("max-batch", 32);
    let max_wait_us: u64 = args.parse_num("max-wait-us", 500);
    let queue_cap: usize = args.parse_num("queue-cap", BatcherConfig::default().queue_cap);
    // Overload knobs: 0 means "off" for the connection cap and the
    // deadline; --shed-p95-us 0 disables the adaptive shed controller
    // (default: the library's 50ms demote threshold).
    let max_conns: usize = args.parse_num("max-conns", 0);
    let deadline_us: u64 = args.parse_num("deadline-us", 0);
    let shed_p95_us: u64 = args.parse_num(
        "shed-p95-us",
        ShedConfig::default().demote_p95.as_micros() as u64,
    );
    let sweep_interval_ms: u64 = args.parse_num("sweep-interval-ms", 0);
    let chaos = args.has("chaos");

    if args.has("canary") {
        // Verbose pre-flight: replay the bundle's embedded reference rows
        // before touching the network. (The registry canaries every load
        // and reload anyway; this surfaces the verdict up front.)
        if let Some(path) = model_path {
            let b = ModelBundle::load(path)?;
            match b.canary_len() {
                0 => println!("canary: bundle carries no reference rows (pre-v2 bundle?)"),
                n => {
                    b.run_canary()?;
                    println!("canary: {n} reference rows replayed bit-exact");
                }
            }
        }
    }

    let registry = Arc::new(ModelRegistry::new());
    if let Some(path) = model_path {
        let meta = registry.load(&name, path).map_err(|e| e.to_string())?;
        println!(
            "loaded model {} v{} (dim={}, k={}, {} features, hash={})",
            meta.name, meta.version, meta.dim, meta.models, meta.input_dim, meta.hash
        );
    }
    if args.has("store") {
        // Registry lookups fall through to the store for any key the
        // in-process map does not hold.
        use reghd_serve::registry::ModelResolver;
        let store = open_store_at(args.require("store"), args)?;
        println!("store attached: {}", store.stats_line());
        registry.attach_resolver(store);
    }
    let batcher = BatcherConfig {
        max_batch,
        max_wait: Duration::from_micros(max_wait_us),
        queue_cap,
    };
    let shed = (shed_p95_us > 0).then(|| ShedConfig {
        demote_p95: Duration::from_micros(shed_p95_us),
        // Promote at half the demote threshold — the same 2:1
        // hysteresis band as the library default.
        promote_p95: Duration::from_micros(shed_p95_us / 2),
        ..ShedConfig::default()
    });
    let deadline = (deadline_us > 0).then(|| Duration::from_micros(deadline_us));
    let threads_label = if threads == 0 {
        "auto".to_string()
    } else {
        threads.to_string()
    };
    match args.get("proto").unwrap_or("rgnp") {
        "rgnp" => {
            use reghd_net::{serve_rgnp, NetConfig};
            if chaos {
                return Err("--chaos (the inject command) needs the line protocol; \
                     add --proto line"
                    .to_string());
            }
            if sweep_interval_ms > 0 {
                return Err(
                    "--sweep-interval-ms needs the line protocol; add --proto line".to_string(),
                );
            }
            let cfg = NetConfig {
                addr,
                pollers: args.parse_num("pollers", 0),
                workers,
                threads,
                trig,
                batcher,
                max_connections: max_conns,
                deadline,
                shed,
                max_frame: args.parse_num("max-frame", NetConfig::default().max_frame),
                write_budget: args.parse_num("write-budget", NetConfig::default().write_budget),
                ..NetConfig::default()
            };
            let handle = serve_rgnp(cfg, registry).map_err(|e| e.to_string())?;
            println!(
                "serving RGNP on {} with {workers} workers (threads={threads_label}, \
                 max_batch={max_batch}, max_wait={max_wait_us}µs)",
                handle.local_addr(),
            );
            println!(
                "protocol: RGNP v1 binary frames (see docs/PROTOCOL.md); \
                      drive with `reghd-cli loadgen`"
            );
            // Serve until the process is killed; Ctrl-C terminates the listener.
            loop {
                std::thread::sleep(Duration::from_secs(60));
            }
        }
        "line" => {
            let cfg = ServerConfig {
                addr,
                workers,
                threads,
                trig,
                batcher,
                max_connections: max_conns,
                deadline,
                shed,
                sweep_interval: (sweep_interval_ms > 0)
                    .then(|| Duration::from_millis(sweep_interval_ms)),
                enable_inject: chaos,
                ..ServerConfig::default()
            };
            let handle = serve(cfg, registry).map_err(|e| e.to_string())?;
            println!(
                "serving on {} with {workers} workers (threads={threads_label}, \
                 max_batch={max_batch}, max_wait={max_wait_us}µs)",
                handle.local_addr(),
            );
            if chaos {
                println!("chaos mode: the `inject` protocol command is ENABLED");
            }
            if sweep_interval_ms > 0 {
                println!("integrity sweep every {sweep_interval_ms}ms");
            }
            println!(
                "protocol: predict <model> <f32,f32,...> | reload <model> <path> | sweep | \
                 stats | health"
            );
            // Serve until the process is killed; Ctrl-C terminates the listener.
            loop {
                std::thread::sleep(Duration::from_secs(60));
            }
        }
        other => Err(format!("unknown protocol {other:?} (expected rgnp|line)")),
    }
}

/// Parses a comma-separated f32 row, e.g. `--row 0.5,1.5`.
fn parse_row(spec: &str) -> Result<Vec<f32>, String> {
    spec.split(',')
        .map(|t| {
            t.trim()
                .parse::<f32>()
                .map_err(|_| format!("bad feature value {t:?} in --row"))
        })
        .collect()
}

fn cmd_loadgen(args: &Args) -> Result<(), String> {
    use reghd_net::frame::PredictionTier;
    use reghd_net::loadgen::{self, LoadConfig};
    use std::time::Duration;

    let tier = match parse_tier(args)? {
        CliTier::Full => PredictionTier::Full,
        CliTier::Binary => PredictionTier::Binary,
    };
    let cfg = LoadConfig {
        addr: args.require("addr").to_string(),
        model: args.require("model").to_string(),
        row: parse_row(args.get("row").unwrap_or("0.5,0.5"))?,
        connections: args.parse_num("conns", 100),
        rate: args.parse_num("rate", 1000.0),
        duration: Duration::from_secs(args.parse_num("secs", 5)),
        grace: Duration::from_secs(args.parse_num("grace-secs", 2)),
        threads: args.parse_num("threads", 0),
        tier,
    };
    println!(
        "offering {} rows/s over {} connections to {} for {:?}",
        cfg.rate, cfg.connections, cfg.addr, cfg.duration
    );
    let report = loadgen::run(&cfg).map_err(|e| e.to_string())?;
    println!(
        "sent {} → ok {} degraded {} busy {} draining {} err {} lost {} proto_err {}",
        report.sent,
        report.ok,
        report.degraded,
        report.busy,
        report.draining,
        report.errors,
        report.lost,
        report.protocol_errors,
    );
    println!(
        "availability {:.4}  achieved {:.0} rows/s  p50 {}µs  p95 {}µs  p99 {}µs  max {}µs",
        report.availability(),
        report.achieved_rps,
        report.p50_us,
        report.p95_us,
        report.p99_us,
        report.max_us,
    );
    if let Some(path) = args.get("json") {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        let simd = hdc::simd::active_label();
        let json = format!(
            "{{\n  \"cores\": {cores},\n  \"simd\": \"{simd}\",\n  \
             \"requested_tier\": \"{}\",\n  \"connections\": {},\n  \"offered_rps\": {:.1},\n  \
             \"duration_secs\": {:.1},\n  \"sent\": {},\n  \"ok\": {},\n  \"degraded\": {},\n  \
             \"tier_full\": {},\n  \"tier_binary\": {},\n  \
             \"busy\": {},\n  \"draining\": {},\n  \"errors\": {},\n  \
             \"protocol_errors\": {},\n  \"lost\": {},\n  \"conn_failures\": {},\n  \
             \"availability\": {:.4},\n  \"achieved_rps\": {:.1},\n  \"p50_us\": {},\n  \
             \"p95_us\": {},\n  \"p99_us\": {},\n  \"max_us\": {}\n}}\n",
            cfg.tier.label(),
            report.connections,
            cfg.rate,
            cfg.duration.as_secs_f64(),
            report.sent,
            report.ok,
            report.degraded,
            report.tier_full(),
            report.tier_binary(),
            report.busy,
            report.draining,
            report.errors,
            report.protocol_errors,
            report.lost,
            report.conn_failures,
            report.availability(),
            report.achieved_rps,
            report.p50_us,
            report.p95_us,
            report.p99_us,
            report.max_us,
        );
        std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("report written to {path}");
    }
    Ok(())
}

/// Builds the protocol line for one `inject` invocation, or an error for
/// a bad combination of flags. Pure so the flag → line mapping is testable
/// without a server.
fn inject_line(args: &Args) -> Result<String, String> {
    let kind = args.require("kind");
    match kind {
        "bitflip" => {
            let model = args.require("model");
            let rate: f64 = args.parse_num("rate", 0.05);
            let seed: u64 = args.parse_num("seed", 0);
            if !(0.0..=1.0).contains(&rate) {
                return Err("--rate must be in [0,1]".to_string());
            }
            Ok(format!("inject bitflip {model} {rate} {seed}"))
        }
        "delay" => {
            let ms: u64 = args.parse_num("ms", 0);
            Ok(format!("inject delay {ms}"))
        }
        "kill" | "panic" => {
            let n: usize = args.parse_num("n", 1);
            Ok(format!("inject {kind} {n}"))
        }
        "garble" => {
            let rate: f64 = args.parse_num("rate", 0.0);
            if !(0.0..=1.0).contains(&rate) {
                return Err("--rate must be in [0,1]".to_string());
            }
            Ok(format!("inject garble {rate}"))
        }
        "clear" => Ok("inject clear".to_string()),
        other => Err(format!(
            "unknown fault kind {other} (expected bitflip|delay|kill|panic|garble|clear)"
        )),
    }
}

fn cmd_inject(args: &Args) -> Result<(), String> {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    let addr = args.require("addr");
    let line = inject_line(args)?;
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    writeln!(stream, "{line}").map_err(|e| e.to_string())?;
    stream.flush().map_err(|e| e.to_string())?;
    let mut reply = String::new();
    BufReader::new(stream)
        .read_line(&mut reply)
        .map_err(|e| e.to_string())?;
    let reply = reply.trim_end();
    if reply.is_empty() {
        return Err("server closed the connection without a reply".to_string());
    }
    println!("{reply}");
    if reply.starts_with("err") {
        return Err(format!("server refused: {reply}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::Args;

    fn parse(args: &[&str]) -> Args {
        Args::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    fn parse_err(args: &[&str]) -> String {
        Args::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap_err()
    }

    #[test]
    fn parses_key_value_pairs() {
        let a = parse(&["--csv", "data.csv", "--dim", "1024"]);
        assert_eq!(a.get("csv"), Some("data.csv"));
        assert_eq!(a.get("dim"), Some("1024"));
        assert_eq!(a.get("missing"), None);
    }

    #[test]
    fn parses_boolean_flags() {
        let a = parse(&["--quantized", "--csv", "x.csv"]);
        assert!(a.has("quantized"));
        assert!(!a.has("csv-missing"));
        assert_eq!(a.get("csv"), Some("x.csv"));
    }

    #[test]
    fn flag_followed_by_flag_is_boolean() {
        let a = parse(&["--quantized", "--models", "4"]);
        assert!(a.has("quantized"));
        assert_eq!(a.get("quantized"), None);
        assert_eq!(a.get("models"), Some("4"));
    }

    #[test]
    fn negative_numbers_are_values_not_flags() {
        let a = parse(&["--threshold", "-0.5", "--offset", "-3"]);
        assert_eq!(a.get("threshold"), Some("-0.5"));
        assert_eq!(a.get("offset"), Some("-3"));
    }

    #[test]
    fn double_dash_numeric_token_is_a_value() {
        // Pathological but unambiguous: "--5" is a number, not a flag name.
        let a = parse(&["--seed", "--5"]);
        assert_eq!(a.get("seed"), Some("--5"));
    }

    #[test]
    fn non_finite_numeric_lookalikes_are_flags() {
        // "inf", "nan", and "infinity" all parse as f64, but a flag named
        // --inf must not be swallowed as the previous flag's value.
        for tok in ["--inf", "--nan", "--infinity", "--NaN", "--Inf"] {
            assert!(super::is_flag_token(tok), "{tok} must be a flag");
        }
        let a = parse(&["--quantized", "--inf", "--nan"]);
        assert!(a.has("quantized"));
        assert_eq!(a.get("quantized"), None);
        assert!(a.has("inf"));
        assert!(a.has("nan"));
        // Finite values still bind: scientific notation included.
        let a = parse(&["--threshold", "-1e-3"]);
        assert_eq!(a.get("threshold"), Some("-1e-3"));
    }

    #[test]
    fn duplicate_flags_are_rejected() {
        let err = parse_err(&["--dim", "512", "--dim", "1024"]);
        assert!(err.contains("duplicate flag --dim"), "{err}");
    }

    #[test]
    fn positional_arguments_are_rejected() {
        let err = parse_err(&["stray"]);
        assert!(err.contains("unexpected argument"), "{err}");
    }

    #[test]
    fn parse_num_defaults_and_overrides() {
        let a = parse(&["--dim", "512"]);
        assert_eq!(a.parse_num::<usize>("dim", 2048), 512);
        assert_eq!(a.parse_num::<usize>("models", 8), 8);
    }

    #[test]
    fn inject_lines_render_per_kind() {
        let line = |args: &[&str]| super::inject_line(&parse(args));
        assert_eq!(
            line(&["--kind", "bitflip", "--model", "toy", "--rate", "0.1", "--seed", "7"]),
            Ok("inject bitflip toy 0.1 7".to_string())
        );
        assert_eq!(
            line(&["--kind", "delay", "--ms", "250"]),
            Ok("inject delay 250".to_string())
        );
        assert_eq!(line(&["--kind", "kill"]), Ok("inject kill 1".to_string()));
        assert_eq!(
            line(&["--kind", "panic", "--n", "3"]),
            Ok("inject panic 3".to_string())
        );
        assert_eq!(
            line(&["--kind", "garble", "--rate", "0.5"]),
            Ok("inject garble 0.5".to_string())
        );
        assert_eq!(line(&["--kind", "clear"]), Ok("inject clear".to_string()));
    }

    #[test]
    fn source_specs_parse_per_scheme() {
        use super::{parse_source_spec, SourceSpec};
        use datasets::drift::DriftKind;
        assert_eq!(
            parse_source_spec("drift:abrupt:4:1000"),
            Ok(SourceSpec::Drift {
                kind: DriftKind::Abrupt,
                features: 4,
                period: 1000
            })
        );
        assert_eq!(
            parse_source_spec("drift:gradual:2:50"),
            Ok(SourceSpec::Drift {
                kind: DriftKind::Gradual,
                features: 2,
                period: 50
            })
        );
        assert_eq!(
            parse_source_spec("csv:data/train.csv"),
            Ok(SourceSpec::Csv("data/train.csv".to_string()))
        );
        assert_eq!(
            parse_source_spec("tcp:127.0.0.1:9000:3"),
            Ok(SourceSpec::Tcp {
                addr: "127.0.0.1:9000".to_string(),
                features: 3
            })
        );
    }

    #[test]
    fn bad_source_specs_are_rejected() {
        use super::parse_source_spec;
        for bad in [
            "drift:meteoric:4:1000", // unknown kind
            "drift:abrupt:4",        // missing period
            "drift:abrupt:0:100",    // zero features
            "tcp:9000:3",            // no host:port
            "tcp:127.0.0.1:9000",    // feature count not numeric? (port eaten)
            "stdin",                 // unknown scheme
        ] {
            assert!(parse_source_spec(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn trig_flag_parses_and_rejects_unknown_modes() {
        use hdc::TrigMode;
        assert_eq!(super::parse_trig(&parse(&[])), Ok(TrigMode::Exact));
        assert_eq!(
            super::parse_trig(&parse(&["--trig", "exact"])),
            Ok(TrigMode::Exact)
        );
        assert_eq!(
            super::parse_trig(&parse(&["--trig", "fast"])),
            Ok(TrigMode::Fast)
        );
        let err = super::parse_trig(&parse(&["--trig", "approximate"])).unwrap_err();
        assert!(err.contains("unknown trig mode"), "{err}");
    }

    #[test]
    fn inject_rejects_bad_kind_and_rate() {
        let err = super::inject_line(&parse(&["--kind", "meteor"])).unwrap_err();
        assert!(err.contains("unknown fault kind"), "{err}");
        let err = super::inject_line(&parse(&["--kind", "garble", "--rate", "1.5"])).unwrap_err();
        assert!(err.contains("must be in [0,1]"), "{err}");
    }
}
