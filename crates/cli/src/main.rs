//! `reghd-cli` — train, evaluate, and run RegHD models on CSV data.
//!
//! ```text
//! reghd-cli train   --csv data.csv --out model.rghd [--dim 2048] [--models 8]
//!                   [--epochs 40] [--seed 0] [--quantized]
//! reghd-cli eval    --csv data.csv --model model.rghd
//! reghd-cli predict --csv data.csv --model model.rghd
//! ```
//!
//! CSV format: numeric columns, optional header, **last column is the
//! target** (ignored by `predict` if present). The tool standardises
//! features and targets on the training data and stores the scalers inside
//! the model bundle, so evaluation and prediction accept raw units.

mod bundle;

use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage:\n  reghd-cli train   --csv <data.csv> --out <model.rghd> \
         [--dim N] [--models K] [--epochs N] [--seed N] [--quantized]\n  \
         reghd-cli eval    --csv <data.csv> --model <model.rghd>\n  \
         reghd-cli predict --csv <data.csv> --model <model.rghd>"
    );
    std::process::exit(2);
}

/// Minimal flag parser: `--key value` pairs plus boolean `--flags`.
struct Args {
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(args: &[String]) -> Self {
        let mut flags = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if let Some(key) = a.strip_prefix("--") {
                let value = args.get(i + 1).filter(|v| !v.starts_with("--")).cloned();
                if value.is_some() {
                    i += 1;
                }
                flags.push((key.to_string(), value));
            } else {
                eprintln!("unexpected argument: {a}");
                usage();
            }
            i += 1;
        }
        Self { flags }
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, key: &str) -> bool {
        self.flags.iter().any(|(k, _)| k == key)
    }

    fn require(&self, key: &str) -> &str {
        self.get(key).unwrap_or_else(|| {
            eprintln!("missing required flag --{key}");
            usage();
        })
    }

    fn parse_num<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.get(key) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("invalid value for --{key}: {v}");
                usage();
            }),
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else { usage() };
    let args = Args::parse(&argv[1..]);
    let result = match cmd.as_str() {
        "train" => cmd_train(&args),
        "eval" => cmd_eval(&args),
        "predict" => cmd_predict(&args),
        _ => {
            eprintln!("unknown command: {cmd}");
            usage();
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_train(args: &Args) -> Result<(), String> {
    let csv = args.require("csv");
    let out = args.require("out");
    let dim: usize = args.parse_num("dim", 2048);
    let models: usize = args.parse_num("models", 8);
    let epochs: usize = args.parse_num("epochs", 40);
    let seed: u64 = args.parse_num("seed", 0);
    let quantized = args.has("quantized");

    let ds = datasets::csv::load_csv(csv).map_err(|e| e.to_string())?;
    println!(
        "loaded {}: {} samples × {} features",
        ds.name,
        ds.len(),
        ds.num_features()
    );
    let bundle = bundle::train(&ds, dim, models, epochs, seed, quantized)?;
    bundle.save(out)?;
    println!("model written to {out}");
    Ok(())
}

fn cmd_eval(args: &Args) -> Result<(), String> {
    let csv = args.require("csv");
    let model_path = args.require("model");
    let ds = datasets::csv::load_csv(csv).map_err(|e| e.to_string())?;
    let bundle = bundle::ModelBundle::load(model_path)?;
    let preds = bundle.predict(&ds.features)?;
    let mse = datasets::metrics::mse(&preds, &ds.targets);
    let rmse = datasets::metrics::rmse(&preds, &ds.targets);
    let r2 = datasets::metrics::r2(&preds, &ds.targets);
    println!("samples: {}", ds.len());
    println!("MSE:  {mse:.6}");
    println!("RMSE: {rmse:.6}");
    println!("R²:   {r2:.4}");
    Ok(())
}

fn cmd_predict(args: &Args) -> Result<(), String> {
    let csv = args.require("csv");
    let model_path = args.require("model");
    let ds = datasets::csv::load_csv(csv).map_err(|e| e.to_string())?;
    let bundle = bundle::ModelBundle::load(model_path)?;
    for p in bundle.predict(&ds.features)? {
        println!("{p}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::Args;

    fn parse(args: &[&str]) -> Args {
        Args::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_key_value_pairs() {
        let a = parse(&["--csv", "data.csv", "--dim", "1024"]);
        assert_eq!(a.get("csv"), Some("data.csv"));
        assert_eq!(a.get("dim"), Some("1024"));
        assert_eq!(a.get("missing"), None);
    }

    #[test]
    fn parses_boolean_flags() {
        let a = parse(&["--quantized", "--csv", "x.csv"]);
        assert!(a.has("quantized"));
        assert!(!a.has("csv-missing"));
        assert_eq!(a.get("csv"), Some("x.csv"));
    }

    #[test]
    fn flag_followed_by_flag_is_boolean() {
        let a = parse(&["--quantized", "--models", "4"]);
        assert!(a.has("quantized"));
        assert_eq!(a.get("quantized"), None);
        assert_eq!(a.get("models"), Some("4"));
    }

    #[test]
    fn parse_num_defaults_and_overrides() {
        let a = parse(&["--dim", "512"]);
        assert_eq!(a.parse_num::<usize>("dim", 2048), 512);
        assert_eq!(a.parse_num::<usize>("models", 8), 8);
    }
}
