//! The CLI's model bundle: a trained RegHD model together with the
//! feature/target scalers fitted on the training data, so the command-line
//! interface accepts and emits values in **original units**.
//!
//! File layout: magic `RGCL`, version, feature scaler block, target scaler
//! block, then the embedded `reghd::persist` model blob.

use datasets::normalize::{Standardizer, TargetScaler};
use datasets::Dataset;
use encoding::EncoderSpec;
use reghd::config::{ClusterMode, PredictionMode, RegHdConfig};
use reghd::{persist, RegHdRegressor, Regressor};
use std::io::{Read, Write};

const MAGIC: &[u8; 4] = b"RGCL";
const VERSION: u16 = 1;

/// A trained model plus its data scalers.
pub struct ModelBundle {
    // (Debug via the manual impl below: the model itself is the interesting
    // field, scalers are summarised.)
    model: RegHdRegressor,
    spec: EncoderSpec,
    feat_means: Vec<f32>,
    feat_stds: Vec<f32>,
    target_mean: f32,
    target_std: f32,
}

impl std::fmt::Debug for ModelBundle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelBundle")
            .field("model", &self.model)
            .field("features", &self.feat_means.len())
            .field("target_mean", &self.target_mean)
            .field("target_std", &self.target_std)
            .finish()
    }
}

/// Trains a bundle on a raw-unit dataset.
pub fn train(
    ds: &Dataset,
    dim: usize,
    models: usize,
    epochs: usize,
    seed: u64,
    quantized: bool,
) -> Result<ModelBundle, String> {
    if ds.len() < 4 {
        return Err("need at least 4 samples to train".to_string());
    }
    let std = Standardizer::fit(ds);
    let normalised = std.transform(ds);
    let scaler = TargetScaler::fit(&ds.targets);
    let train_y: Vec<f32> = ds.targets.iter().map(|&y| scaler.transform(y)).collect();

    let spec = EncoderSpec::Nonlinear {
        input_dim: ds.num_features(),
        dim,
        seed: seed ^ 0xC11,
    };
    let mut builder = RegHdConfig::builder()
        .dim(dim)
        .models(models)
        .max_epochs(epochs)
        .seed(seed);
    if quantized {
        builder = builder
            .cluster_mode(ClusterMode::FrameworkBinary)
            .prediction_mode(PredictionMode::BinaryQuery);
    }
    let config = builder.build();
    let mut model = RegHdRegressor::new(config, spec.build());
    let report = model.fit(&normalised.features, &train_y);
    println!(
        "trained {} epochs (converged: {}); final train RMSE ≈ {:.4} (original units)",
        report.epochs,
        report.converged,
        report
            .final_mse()
            .map(|m| scaler.inverse_mse(m).sqrt())
            .unwrap_or(f32::NAN)
    );

    // Recover the fitted per-feature statistics by probing the
    // standardizer (a zero row maps to −μ/σ; a one row lets us solve σ).
    let zeros = vec![0.0f32; ds.num_features()];
    let ones = vec![1.0f32; ds.num_features()];
    let z = std.transform_row(&zeros);
    let o = std.transform_row(&ones);
    let mut feat_means = Vec::with_capacity(z.len());
    let mut feat_stds = Vec::with_capacity(z.len());
    for (&a, &b) in z.iter().zip(&o) {
        let inv_sigma = b - a; // (1−μ)/σ − (0−μ)/σ = 1/σ
        let sigma = if inv_sigma.abs() > 1e-12 {
            1.0 / inv_sigma
        } else {
            1.0
        };
        feat_stds.push(sigma);
        feat_means.push(-a * sigma);
    }

    Ok(ModelBundle {
        model,
        spec,
        feat_means,
        feat_stds,
        target_mean: scaler.mean(),
        target_std: scaler.std(),
    })
}

impl ModelBundle {
    /// Predicts in original units for raw-unit feature rows.
    pub fn predict(&self, rows: &[Vec<f32>]) -> Result<Vec<f32>, String> {
        let expected = self.feat_means.len();
        rows.iter()
            .map(|row| {
                if row.len() != expected {
                    return Err(format!(
                        "row has {} features, model expects {expected}",
                        row.len()
                    ));
                }
                let scaled: Vec<f32> = row
                    .iter()
                    .zip(self.feat_means.iter().zip(&self.feat_stds))
                    .map(|(&x, (&m, &s))| if s != 0.0 { (x - m) / s } else { x - m })
                    .collect();
                let y_std = self.model.predict_one(&scaled);
                Ok(y_std * self.target_std + self.target_mean)
            })
            .collect()
    }

    /// Writes the bundle to a file.
    pub fn save(&self, path: &str) -> Result<(), String> {
        let mut buf: Vec<u8> = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&(self.feat_means.len() as u64).to_le_bytes());
        for &m in &self.feat_means {
            buf.extend_from_slice(&m.to_le_bytes());
        }
        for &s in &self.feat_stds {
            buf.extend_from_slice(&s.to_le_bytes());
        }
        buf.extend_from_slice(&self.target_mean.to_le_bytes());
        buf.extend_from_slice(&self.target_std.to_le_bytes());
        persist::save(&self.model, &self.spec, &mut buf).map_err(|e| e.to_string())?;
        std::fs::File::create(path)
            .and_then(|mut f| f.write_all(&buf))
            .map_err(|e| format!("cannot write {path}: {e}"))
    }

    /// Reads a bundle from a file.
    pub fn load(path: &str) -> Result<Self, String> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| format!("cannot read {path}: {e}"))?;
        let mut r: &[u8] = &bytes;
        let mut magic = [0u8; 4];
        read_exact(&mut r, &mut magic)?;
        if &magic != MAGIC {
            return Err("not a reghd-cli model bundle".to_string());
        }
        let version = read_u16(&mut r)?;
        if version != VERSION {
            return Err(format!("unsupported bundle version {version}"));
        }
        let n = read_u64(&mut r)? as usize;
        if n > 1 << 20 {
            return Err(format!("implausible feature count {n}"));
        }
        let mut feat_means = Vec::with_capacity(n);
        for _ in 0..n {
            feat_means.push(read_f32(&mut r)?);
        }
        let mut feat_stds = Vec::with_capacity(n);
        for _ in 0..n {
            feat_stds.push(read_f32(&mut r)?);
        }
        let target_mean = read_f32(&mut r)?;
        let target_std = read_f32(&mut r)?;
        let model = persist::load(&mut r).map_err(|e| e.to_string())?;
        // The persist blob does not carry the spec back out; rebuild it
        // from the model's config (the CLI always uses the Nonlinear
        // encoder with the same derived seed).
        let spec = EncoderSpec::Nonlinear {
            input_dim: n,
            dim: model.config().dim,
            seed: model.config().seed ^ 0xC11,
        };
        Ok(Self {
            model,
            spec,
            feat_means,
            feat_stds,
            target_mean,
            target_std,
        })
    }
}

fn read_exact(r: &mut &[u8], buf: &mut [u8]) -> Result<(), String> {
    if r.len() < buf.len() {
        return Err("truncated bundle".to_string());
    }
    buf.copy_from_slice(&r[..buf.len()]);
    *r = &r[buf.len()..];
    Ok(())
}

fn read_u16(r: &mut &[u8]) -> Result<u16, String> {
    let mut b = [0u8; 2];
    read_exact(r, &mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn read_u64(r: &mut &[u8]) -> Result<u64, String> {
    let mut b = [0u8; 8];
    read_exact(r, &mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_f32(r: &mut &[u8]) -> Result<f32, String> {
    let mut b = [0u8; 4];
    read_exact(r, &mut b)?;
    Ok(f32::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_dataset() -> Dataset {
        let features: Vec<Vec<f32>> = (0..80)
            .map(|i| vec![i as f32, (i % 7) as f32 * 10.0])
            .collect();
        let targets: Vec<f32> = features.iter().map(|r| 3.0 * r[0] - r[1] + 100.0).collect();
        Dataset::new("toy", features, targets)
    }

    #[test]
    fn train_predict_in_original_units() {
        let ds = toy_dataset();
        let bundle = train(&ds, 512, 2, 15, 1, false).unwrap();
        let preds = bundle.predict(&ds.features).unwrap();
        let mse = datasets::metrics::mse(&preds, &ds.targets);
        let var = ds.target_variance();
        assert!(mse < 0.1 * var, "mse {mse} vs var {var}");
    }

    #[test]
    fn save_load_roundtrip() {
        let ds = toy_dataset();
        let bundle = train(&ds, 512, 2, 10, 2, true).unwrap();
        let path = std::env::temp_dir().join("reghd_cli_bundle_test.rghd");
        let path_str = path.to_str().unwrap();
        bundle.save(path_str).unwrap();
        let loaded = ModelBundle::load(path_str).unwrap();
        let a = bundle.predict(&ds.features[..5]).unwrap();
        let b = loaded.predict(&ds.features[..5]).unwrap();
        assert_eq!(a, b);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn predict_rejects_wrong_width() {
        let ds = toy_dataset();
        let bundle = train(&ds, 256, 1, 5, 3, false).unwrap();
        let err = bundle.predict(&[vec![1.0]]).unwrap_err();
        assert!(err.contains("expects 2"));
    }

    #[test]
    fn load_rejects_garbage() {
        let path = std::env::temp_dir().join("reghd_cli_garbage_test.rghd");
        std::fs::write(&path, b"not a model").unwrap();
        let err = ModelBundle::load(path.to_str().unwrap()).unwrap_err();
        assert!(err.contains("not a reghd-cli"), "err: {err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tiny_dataset_rejected() {
        let ds = Dataset::new("t", vec![vec![1.0]; 2], vec![0.0; 2]);
        assert!(train(&ds, 64, 1, 2, 0, false).is_err());
    }
}
