//! Regression quality metrics.
//!
//! Table 1 of the paper reports **mean squared error** (MSE); the
//! supplementary figures normalise it per dataset. This module provides MSE
//! plus the usual companions (RMSE, MAE, R²) and the normalised-quality
//! helper used by the Figure 6/7 reproductions.

/// Mean squared error `Σ(ŷ−y)²/n`.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn mse(predictions: &[f32], targets: &[f32]) -> f32 {
    assert_eq!(
        predictions.len(),
        targets.len(),
        "mse: length mismatch ({} vs {})",
        predictions.len(),
        targets.len()
    );
    assert!(!predictions.is_empty(), "mse: empty input");
    (predictions
        .iter()
        .zip(targets)
        .map(|(&p, &t)| (p as f64 - t as f64).powi(2))
        .sum::<f64>()
        / predictions.len() as f64) as f32
}

/// Root mean squared error.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn rmse(predictions: &[f32], targets: &[f32]) -> f32 {
    mse(predictions, targets).sqrt()
}

/// Mean absolute error `Σ|ŷ−y|/n`.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn mae(predictions: &[f32], targets: &[f32]) -> f32 {
    assert_eq!(
        predictions.len(),
        targets.len(),
        "mae: length mismatch ({} vs {})",
        predictions.len(),
        targets.len()
    );
    assert!(!predictions.is_empty(), "mae: empty input");
    (predictions
        .iter()
        .zip(targets)
        .map(|(&p, &t)| (p as f64 - t as f64).abs())
        .sum::<f64>()
        / predictions.len() as f64) as f32
}

/// Coefficient of determination `R² = 1 − SS_res/SS_tot`.
///
/// Returns `0.0` when the targets are constant and perfectly predicted,
/// `f32::NEG_INFINITY`-free: a constant-target/-imperfect case yields a
/// large negative value computed against `SS_tot = ε`.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn r2(predictions: &[f32], targets: &[f32]) -> f32 {
    assert_eq!(
        predictions.len(),
        targets.len(),
        "r2: length mismatch ({} vs {})",
        predictions.len(),
        targets.len()
    );
    assert!(!predictions.is_empty(), "r2: empty input");
    let mean = targets.iter().map(|&t| t as f64).sum::<f64>() / targets.len() as f64;
    let ss_tot: f64 = targets.iter().map(|&t| (t as f64 - mean).powi(2)).sum();
    let ss_res: f64 = predictions
        .iter()
        .zip(targets)
        .map(|(&p, &t)| (p as f64 - t as f64).powi(2))
        .sum();
    if ss_tot == 0.0 {
        return if ss_res == 0.0 { 0.0 } else { f32::MIN };
    }
    (1.0 - ss_res / ss_tot) as f32
}

/// Normalised quality in `[0, 1]`: `baseline_mse / candidate_mse`, clamped
/// at one. Used by the Figure 6/7 reproductions, where the full-precision
/// RegHD model is the baseline (quality 1.0) and quantised variants score
/// relative to it — matching the paper's "normalized quality of regression"
/// axis, where *lower MSE = higher quality*.
///
/// # Panics
///
/// Panics if either MSE is negative. A `candidate_mse` of 0 is fine
/// (quality saturates at 1).
pub fn normalized_quality(baseline_mse: f32, candidate_mse: f32) -> f32 {
    assert!(
        baseline_mse >= 0.0 && candidate_mse >= 0.0,
        "MSE values must be nonnegative"
    );
    if candidate_mse == 0.0 {
        return 1.0;
    }
    (baseline_mse / candidate_mse).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_reference() {
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 4.0]), 2.0);
        assert_eq!(mse(&[3.0], &[3.0]), 0.0);
    }

    #[test]
    fn rmse_is_sqrt_mse() {
        let p = [1.0, 2.0, 3.0];
        let t = [2.0, 4.0, 3.0];
        assert!((rmse(&p, &t) - mse(&p, &t).sqrt()).abs() < 1e-7);
    }

    #[test]
    fn mae_reference() {
        assert_eq!(mae(&[1.0, -1.0], &[2.0, 1.0]), 1.5);
    }

    #[test]
    fn r2_perfect_is_one() {
        assert!((r2(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn r2_mean_predictor_is_zero() {
        let t = [1.0, 2.0, 3.0, 4.0];
        let p = [2.5; 4];
        assert!(r2(&p, &t).abs() < 1e-6);
    }

    #[test]
    fn r2_worse_than_mean_is_negative() {
        let t = [1.0, 2.0, 3.0];
        let p = [10.0, -10.0, 10.0];
        assert!(r2(&p, &t) < 0.0);
    }

    #[test]
    fn r2_constant_targets() {
        assert_eq!(r2(&[5.0, 5.0], &[5.0, 5.0]), 0.0);
        assert!(r2(&[4.0, 6.0], &[5.0, 5.0]) < 0.0);
    }

    #[test]
    fn normalized_quality_semantics() {
        // Equal MSE → quality 1.
        assert_eq!(normalized_quality(10.0, 10.0), 1.0);
        // Candidate twice as bad → quality 0.5.
        assert_eq!(normalized_quality(10.0, 20.0), 0.5);
        // Candidate better than baseline saturates at 1.
        assert_eq!(normalized_quality(10.0, 5.0), 1.0);
        // Perfect candidate.
        assert_eq!(normalized_quality(10.0, 0.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mse_length_mismatch_panics() {
        mse(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn mse_empty_panics() {
        mse(&[], &[]);
    }
}
