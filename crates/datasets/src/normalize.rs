//! Feature and target normalisation.
//!
//! HD encoders are sensitive to input scale (the trigonometric nonlinearity
//! of Eq. 1 wraps around for large |f|), so the standard pipeline is:
//! fit a [`Standardizer`] on the *training* split, apply it to both splits,
//! and optionally standardise targets too (remembering the inverse transform
//! for reporting MSE in original units).

use crate::Dataset;

/// Per-feature z-score normaliser: `x' = (x − μ) / σ`.
///
/// Fitted statistics come from one dataset (the training split) and are then
/// applied to any dataset with the same feature width. Constant features
/// (σ = 0) pass through centred but unscaled.
///
/// # Examples
///
/// ```
/// use datasets::{Dataset, normalize::Standardizer};
///
/// let train = Dataset::new("t", vec![vec![0.0], vec![2.0]], vec![0.0, 1.0]);
/// let std = Standardizer::fit(&train);
/// let out = std.transform(&train);
/// assert!((out.features[0][0] + 1.0).abs() < 1e-6);
/// assert!((out.features[1][0] - 1.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    means: Vec<f32>,
    stds: Vec<f32>,
}

impl Standardizer {
    /// Fits per-feature means and standard deviations.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn fit(ds: &Dataset) -> Self {
        assert!(
            !ds.is_empty(),
            "cannot fit a standardizer on an empty dataset"
        );
        let n = ds.len() as f64;
        let w = ds.num_features();
        let mut means = vec![0.0f64; w];
        for row in &ds.features {
            for (m, &x) in means.iter_mut().zip(row) {
                *m += x as f64;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0f64; w];
        for row in &ds.features {
            for ((v, &m), &x) in vars.iter_mut().zip(&means).zip(row) {
                let d = x as f64 - m;
                *v += d * d;
            }
        }
        let stds: Vec<f32> = vars.iter().map(|&v| ((v / n).sqrt()) as f32).collect();
        Self {
            means: means.iter().map(|&m| m as f32).collect(),
            stds,
        }
    }

    /// Number of features the standardizer was fitted on.
    pub fn num_features(&self) -> usize {
        self.means.len()
    }

    /// Applies the fitted transform to a dataset, returning a normalised
    /// copy. Targets pass through unchanged.
    ///
    /// # Panics
    ///
    /// Panics if the dataset's feature width differs from the fitted width.
    pub fn transform(&self, ds: &Dataset) -> Dataset {
        assert_eq!(
            ds.num_features(),
            self.num_features(),
            "standardizer fitted on {} features, dataset has {}",
            self.num_features(),
            ds.num_features()
        );
        Dataset::new(
            ds.name.clone(),
            ds.features
                .iter()
                .map(|row| self.transform_row(row))
                .collect(),
            ds.targets.clone(),
        )
    }

    /// Applies the fitted transform to a single feature row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the fitted width.
    pub fn transform_row(&self, row: &[f32]) -> Vec<f32> {
        assert_eq!(
            row.len(),
            self.num_features(),
            "standardizer fitted on {} features, row has {}",
            self.num_features(),
            row.len()
        );
        row.iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(&x, (&m, &s))| if s > 0.0 { (x - m) / s } else { x - m })
            .collect()
    }
}

/// Affine target scaler `y' = (y − μ)/σ` with an exact inverse, used to
/// report errors in original units after training on standardised targets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TargetScaler {
    mean: f32,
    std: f32,
}

impl TargetScaler {
    /// Fits on a target slice.
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty.
    pub fn fit(targets: &[f32]) -> Self {
        assert!(!targets.is_empty(), "cannot fit on empty targets");
        let n = targets.len() as f64;
        let mean = targets.iter().map(|&t| t as f64).sum::<f64>() / n;
        let var = targets
            .iter()
            .map(|&t| (t as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        Self {
            mean: mean as f32,
            std: (var.sqrt() as f32).max(f32::MIN_POSITIVE),
        }
    }

    /// Forward transform to standardised units.
    pub fn transform(&self, y: f32) -> f32 {
        (y - self.mean) / self.std
    }

    /// Inverse transform back to original units.
    pub fn inverse(&self, y_std: f32) -> f32 {
        y_std * self.std + self.mean
    }

    /// Converts an MSE measured in standardised units back to original
    /// units (multiplies by σ²).
    pub fn inverse_mse(&self, mse_std: f32) -> f32 {
        mse_std * self.std * self.std
    }

    /// The fitted mean.
    pub fn mean(&self) -> f32 {
        self.mean
    }

    /// The fitted standard deviation.
    pub fn std(&self) -> f32 {
        self.std
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            "t",
            vec![
                vec![1.0, 10.0, 5.0],
                vec![2.0, 20.0, 5.0],
                vec![3.0, 30.0, 5.0],
            ],
            vec![1.0, 2.0, 3.0],
        )
    }

    #[test]
    fn transform_centers_and_scales() {
        let ds = toy();
        let s = Standardizer::fit(&ds);
        let out = s.transform(&ds);
        for j in 0..2 {
            let col: Vec<f32> = out.features.iter().map(|r| r[j]).collect();
            let mean: f32 = col.iter().sum::<f32>() / 3.0;
            let var: f32 = col.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / 3.0;
            assert!(mean.abs() < 1e-6, "col {j} mean = {mean}");
            assert!((var - 1.0).abs() < 1e-5, "col {j} var = {var}");
        }
    }

    #[test]
    fn constant_feature_passes_centred() {
        let ds = toy();
        let s = Standardizer::fit(&ds);
        let out = s.transform(&ds);
        // Third column is constant 5.0 → centred to 0, not divided by 0.
        for row in &out.features {
            assert_eq!(row[2], 0.0);
        }
    }

    #[test]
    fn transform_preserves_targets() {
        let ds = toy();
        let out = Standardizer::fit(&ds).transform(&ds);
        assert_eq!(out.targets, ds.targets);
    }

    #[test]
    fn fitted_on_train_applies_to_test() {
        let train = toy();
        let s = Standardizer::fit(&train);
        let row = s.transform_row(&[2.0, 20.0, 5.0]);
        // Middle point of each non-constant feature → 0.
        assert!(row[0].abs() < 1e-6);
        assert!(row[1].abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn fit_empty_panics() {
        Standardizer::fit(&Dataset::new("e", vec![], vec![]));
    }

    #[test]
    #[should_panic(expected = "fitted on 3 features")]
    fn width_mismatch_panics() {
        let s = Standardizer::fit(&toy());
        s.transform_row(&[1.0]);
    }

    #[test]
    fn target_scaler_roundtrip() {
        let t = [10.0f32, 20.0, 30.0, 40.0];
        let s = TargetScaler::fit(&t);
        for &y in &t {
            assert!((s.inverse(s.transform(y)) - y).abs() < 1e-4);
        }
        assert!((s.mean() - 25.0).abs() < 1e-5);
    }

    #[test]
    fn target_scaler_standardizes() {
        let t = [10.0f32, 20.0, 30.0, 40.0];
        let s = TargetScaler::fit(&t);
        let z: Vec<f32> = t.iter().map(|&y| s.transform(y)).collect();
        let mean: f32 = z.iter().sum::<f32>() / 4.0;
        let var: f32 = z.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-6);
        assert!((var - 1.0).abs() < 1e-5);
    }

    #[test]
    fn inverse_mse_scales_by_variance() {
        let t = [0.0f32, 2.0];
        let s = TargetScaler::fit(&t); // std = 1
        assert!((s.inverse_mse(0.5) - 0.5).abs() < 1e-6);
        let t2 = [0.0f32, 20.0];
        let s2 = TargetScaler::fit(&t2); // std = 10
        assert!((s2.inverse_mse(0.5) - 50.0).abs() < 1e-4);
    }

    #[test]
    fn constant_targets_do_not_divide_by_zero() {
        let s = TargetScaler::fit(&[3.0, 3.0, 3.0]);
        assert!(s.transform(3.0).is_finite());
        assert!(s.inverse(0.0).is_finite());
    }
}
