//! Parameterised synthetic regression-task generator.
//!
//! The generator controls the structural properties that determine how the
//! algorithms in this workspace rank against each other:
//!
//! * **clusters** — the number of latent regimes. Inputs are drawn from a
//!   mixture of Gaussians and each regime has its own local linear response.
//!   This multi-modality is exactly what single-hypervector RegHD cannot
//!   capture (paper §2.3 "hypervector capacity") and multi-model RegHD can
//!   (§2.4), so it drives the Figure 3b and Table 1 `RegHD-k` trends.
//! * **nonlinearity** — blends smooth nonlinear components (sinusoid +
//!   quadratic interaction) into the response; differentiates encoders with
//!   and without nonlinearity and linear vs nonlinear learners.
//! * **noise_std** — the irreducible-noise floor, set per paper dataset so
//!   the best achievable MSE lands near the paper's Table 1 values.
//! * **skew** — exponential-tail transformation of the target (forest-fires
//!   style).

use crate::Dataset;
use hdc::rng::HdRng;

/// Specification of a synthetic regression task. See the module docs for
/// how each knob maps to evaluation behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticSpec {
    /// Dataset name used for reporting.
    pub name: String,
    /// Number of samples to generate.
    pub samples: usize,
    /// Number of input features.
    pub features: usize,
    /// Number of latent regimes (input clusters with distinct responses).
    pub clusters: usize,
    /// Strength of the nonlinear response components, typically in `[0, 1]`.
    pub nonlinearity: f32,
    /// Irreducible noise, in standardised target units.
    pub noise_std: f32,
    /// Mean of the final target distribution.
    pub target_mean: f32,
    /// Standard deviation of the final target distribution.
    pub target_std: f32,
    /// Exponential skew of the target tail (0 = symmetric).
    pub skew: f32,
    /// Seed for all randomness in the generation.
    pub seed: u64,
}

impl Default for SyntheticSpec {
    fn default() -> Self {
        Self {
            name: "synthetic".to_string(),
            samples: 1000,
            features: 8,
            clusters: 3,
            nonlinearity: 0.5,
            noise_std: 0.3,
            target_mean: 0.0,
            target_std: 1.0,
            skew: 0.0,
            seed: 0,
        }
    }
}

impl SyntheticSpec {
    /// Generates the dataset described by this spec.
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`, `features == 0`, `clusters == 0`,
    /// `noise_std < 0`, or `target_std <= 0`.
    pub fn generate(&self) -> Dataset {
        assert!(self.samples > 0, "samples must be nonzero");
        assert!(self.features > 0, "features must be nonzero");
        assert!(self.clusters > 0, "clusters must be nonzero");
        assert!(self.noise_std >= 0.0, "noise_std must be nonnegative");
        assert!(self.target_std > 0.0, "target_std must be positive");

        let mut rng = HdRng::seed_from(self.seed);
        let f = self.features;

        // Per-cluster structure: centre, local linear weights, offset.
        struct Regime {
            center: Vec<f32>,
            weights: Vec<f32>,
            offset: f32,
            // Per-regime nonlinear directions: regimes respond through
            // *different* nonlinearities, making the global function
            // genuinely piecewise — the structure multi-model RegHD
            // exploits and a single smooth model cannot capture.
            v: Vec<f32>,
            u: Vec<f32>,
        }
        let regimes: Vec<Regime> = (0..self.clusters)
            .map(|_| Regime {
                center: (0..f).map(|_| 2.0 * rng.next_gaussian() as f32).collect(),
                weights: (0..f).map(|_| 1.5 * rng.next_gaussian() as f32).collect(),
                offset: 2.5 * rng.next_gaussian() as f32,
                v: (0..f).map(|_| rng.next_gaussian() as f32).collect(),
                u: (0..f).map(|_| rng.next_gaussian() as f32).collect(),
            })
            .collect();

        let sqrt_f = (f as f32).sqrt();

        let mut features_out = Vec::with_capacity(self.samples);
        let mut raw = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let c = rng.next_below(self.clusters);
            let regime = &regimes[c];
            let x: Vec<f32> = regime
                .center
                .iter()
                .map(|&m| m + 0.7 * rng.next_gaussian() as f32)
                .collect();
            let local: f32 = regime
                .weights
                .iter()
                .zip(&x)
                .zip(&regime.center)
                .map(|((&w, &xi), &mi)| w * (xi - mi))
                .sum();
            let vx: f32 = regime.v.iter().zip(&x).map(|(&a, &b)| a * b).sum::<f32>() / sqrt_f;
            let ux: f32 = regime.u.iter().zip(&x).map(|(&a, &b)| a * b).sum::<f32>() / sqrt_f;
            let nonlin = self.nonlinearity * ((2.0 * vx).sin() + 0.5 * ux * ux);
            let y = regime.offset + local / sqrt_f.max(1.0) + nonlin;
            features_out.push(x);
            raw.push(y);
        }

        // Standardise the *noise-free* response first, then add noise in
        // standardised units: this makes `noise_std` directly set the
        // irreducible-noise fraction (best achievable MSE fraction is
        // noise²/(1+noise²)), independent of how much variance the regime
        // offsets contribute.
        let n = raw.len() as f64;
        let mean = raw.iter().map(|&y| y as f64).sum::<f64>() / n;
        let var = raw.iter().map(|&y| (y as f64 - mean).powi(2)).sum::<f64>() / n;
        let std = var.sqrt().max(1e-9);
        let mut z: Vec<f32> = raw
            .iter()
            .map(|&y| {
                ((y as f64 - mean) / std) as f32 + self.noise_std * rng.next_gaussian() as f32
            })
            .collect();
        // Re-standardise so the final scale knobs stay exact.
        let mean_z = z.iter().map(|&y| y as f64).sum::<f64>() / n;
        let var_z = z.iter().map(|&y| (y as f64 - mean_z).powi(2)).sum::<f64>() / n;
        let std_z = var_z.sqrt().max(1e-9);
        for y in &mut z {
            *y = ((*y as f64 - mean_z) / std_z) as f32;
        }
        if self.skew > 0.0 {
            // Exponential tail: monotone in z, so learnable structure is
            // preserved while the marginal becomes heavy-tailed.
            for y in &mut z {
                *y = ((self.skew * *y).exp() - 1.0) / self.skew;
            }
            let mean2 = z.iter().map(|&y| y as f64).sum::<f64>() / n;
            let var2 = z.iter().map(|&y| (y as f64 - mean2).powi(2)).sum::<f64>() / n;
            let std2 = var2.sqrt().max(1e-9);
            for y in &mut z {
                *y = ((*y as f64 - mean2) / std2) as f32;
            }
        }
        let targets: Vec<f32> = z
            .iter()
            .map(|&y| self.target_mean + self.target_std * y)
            .collect();

        Dataset::new(self.name.clone(), features_out, targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_matches_spec_shape() {
        let ds = SyntheticSpec {
            samples: 321,
            features: 7,
            ..Default::default()
        }
        .generate();
        assert_eq!(ds.len(), 321);
        assert_eq!(ds.num_features(), 7);
    }

    #[test]
    fn deterministic_by_seed() {
        let spec = SyntheticSpec::default();
        assert_eq!(spec.generate(), spec.generate());
        let other = SyntheticSpec {
            seed: 1,
            ..SyntheticSpec::default()
        };
        assert_ne!(spec.generate().targets, other.generate().targets);
    }

    #[test]
    fn target_location_and_scale() {
        let ds = SyntheticSpec {
            samples: 5000,
            target_mean: 100.0,
            target_std: 15.0,
            ..Default::default()
        }
        .generate();
        assert!(
            (ds.target_mean() - 100.0).abs() < 1.0,
            "{}",
            ds.target_mean()
        );
        let std = ds.target_variance().sqrt();
        assert!((std - 15.0).abs() < 1.0, "std = {std}");
    }

    #[test]
    fn skew_produces_heavy_tail() {
        let base = SyntheticSpec {
            samples: 4000,
            skew: 0.0,
            seed: 3,
            ..Default::default()
        }
        .generate();
        let skewed = SyntheticSpec {
            samples: 4000,
            skew: 1.5,
            seed: 3,
            name: "skewed".into(),
            ..Default::default()
        }
        .generate();
        let skewness = |t: &[f32]| {
            let n = t.len() as f64;
            let mean = t.iter().map(|&y| y as f64).sum::<f64>() / n;
            let var = t.iter().map(|&y| (y as f64 - mean).powi(2)).sum::<f64>() / n;
            t.iter().map(|&y| (y as f64 - mean).powi(3)).sum::<f64>() / n / var.powf(1.5)
        };
        // A regime mixture can be mildly skewed on its own; the skew knob
        // must add a clearly heavier right tail on top of that.
        let s_base = skewness(&base.targets);
        let s_skewed = skewness(&skewed.targets);
        assert!(s_skewed > 1.0, "s_skewed = {s_skewed}");
        assert!(
            s_skewed > s_base + 0.5,
            "base {s_base} vs skewed {s_skewed}"
        );
    }

    #[test]
    fn signal_exists_above_noise() {
        // Nearest-neighbour-in-feature-space targets should correlate far
        // better than random pairs: the generator must embed learnable
        // structure.
        let ds = SyntheticSpec {
            samples: 800,
            noise_std: 0.2,
            seed: 9,
            ..Default::default()
        }
        .generate();
        // For each of the first 100 points, find its nearest neighbour and
        // compare target distance against a random pair baseline.
        let mut nn_err = 0.0f64;
        let mut rand_err = 0.0f64;
        for i in 0..100 {
            let (xi, yi) = ds.sample(i);
            let mut best = f32::MAX;
            let mut best_y = 0.0f32;
            for j in 0..ds.len() {
                if j == i {
                    continue;
                }
                let (xj, yj) = ds.sample(j);
                let d: f32 = xi.iter().zip(xj).map(|(&a, &b)| (a - b) * (a - b)).sum();
                if d < best {
                    best = d;
                    best_y = yj;
                }
            }
            nn_err += (yi as f64 - best_y as f64).powi(2);
            let (_, yr) = ds.sample((i * 37 + 11) % ds.len());
            rand_err += (yi as f64 - yr as f64).powi(2);
        }
        assert!(
            nn_err * 2.0 < rand_err,
            "nearest-neighbour error {nn_err:.2} should be well below random-pair error {rand_err:.2}"
        );
    }

    #[test]
    fn multimodality_separates_cluster_means() {
        // With several regimes and weak noise the target distribution should
        // have higher variance than any single regime contributes — proxied
        // here by comparing against a single-cluster spec.
        let multi = SyntheticSpec {
            clusters: 5,
            noise_std: 0.05,
            samples: 3000,
            seed: 4,
            ..Default::default()
        }
        .generate();
        assert!(multi.target_variance() > 0.0);
    }

    #[test]
    #[should_panic(expected = "samples must be nonzero")]
    fn zero_samples_panics() {
        SyntheticSpec {
            samples: 0,
            ..Default::default()
        }
        .generate();
    }

    #[test]
    #[should_panic(expected = "target_std must be positive")]
    fn zero_target_std_panics() {
        SyntheticSpec {
            target_std: 0.0,
            ..Default::default()
        }
        .generate();
    }
}
