//! Dependency-free CSV loading, so the real UCI datasets can be dropped in
//! when network access is available.
//!
//! The format accepted is deliberately simple: comma-separated numeric
//! values, optional header line (auto-detected: a first line containing any
//! non-numeric cell is treated as a header), the **last column is the
//! regression target**, blank lines skipped.

use crate::Dataset;
use std::error::Error;
use std::fmt;
use std::fs;
use std::path::Path;

/// Error from CSV parsing.
#[derive(Debug)]
pub enum LoadCsvError {
    /// The underlying file could not be read.
    Io(std::io::Error),
    /// A data cell failed to parse as a number.
    Parse {
        /// 1-based line number of the offending row.
        line: usize,
        /// The cell contents that failed to parse.
        cell: String,
    },
    /// A row had a different number of columns than the first data row.
    RaggedRow {
        /// 1-based line number of the offending row.
        line: usize,
        /// Expected column count.
        expected: usize,
        /// Observed column count.
        actual: usize,
    },
    /// The file contained no data rows, or rows with fewer than 2 columns.
    Empty,
}

impl fmt::Display for LoadCsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadCsvError::Io(e) => write!(f, "failed to read csv: {e}"),
            LoadCsvError::Parse { line, cell } => {
                write!(f, "line {line}: cannot parse `{cell}` as a number")
            }
            LoadCsvError::RaggedRow {
                line,
                expected,
                actual,
            } => write!(
                f,
                "line {line}: expected {expected} columns, found {actual}"
            ),
            LoadCsvError::Empty => write!(f, "csv contains no usable data rows"),
        }
    }
}

impl Error for LoadCsvError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LoadCsvError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for LoadCsvError {
    fn from(e: std::io::Error) -> Self {
        LoadCsvError::Io(e)
    }
}

/// Parses CSV text into a [`Dataset`]; last column is the target.
///
/// # Errors
///
/// Returns [`LoadCsvError`] on malformed numbers, ragged rows, or when no
/// usable data is present.
///
/// # Examples
///
/// ```
/// use datasets::csv::parse_csv;
///
/// let ds = parse_csv("f1,f2,target\n1.0,2.0,3.0\n4.0,5.0,6.0\n", "toy")?;
/// assert_eq!(ds.len(), 2);
/// assert_eq!(ds.num_features(), 2);
/// assert_eq!(ds.targets, vec![3.0, 6.0]);
/// # Ok::<(), datasets::csv::LoadCsvError>(())
/// ```
pub fn parse_csv(text: &str, name: &str) -> Result<Dataset, LoadCsvError> {
    let mut features = Vec::new();
    let mut targets = Vec::new();
    let mut expected_cols: Option<usize> = None;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').map(str::trim).collect();
        let parsed: Result<Vec<f32>, usize> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| c.parse::<f32>().map_err(|_| i))
            .collect();
        match parsed {
            Err(bad_idx) => {
                // Non-numeric cell: acceptable only as a header on the first
                // non-blank line.
                if expected_cols.is_none() && features.is_empty() {
                    continue;
                }
                return Err(LoadCsvError::Parse {
                    line: lineno + 1,
                    cell: cells[bad_idx].to_string(),
                });
            }
            Ok(nums) => {
                if nums.len() < 2 {
                    return Err(LoadCsvError::Empty);
                }
                match expected_cols {
                    None => expected_cols = Some(nums.len()),
                    Some(w) if w != nums.len() => {
                        return Err(LoadCsvError::RaggedRow {
                            line: lineno + 1,
                            expected: w,
                            actual: nums.len(),
                        });
                    }
                    _ => {}
                }
                let (t, f) = nums.split_last().expect("len >= 2");
                features.push(f.to_vec());
                targets.push(*t);
            }
        }
    }
    if features.is_empty() {
        return Err(LoadCsvError::Empty);
    }
    Ok(Dataset::new(name, features, targets))
}

/// Loads a CSV file from disk; see [`parse_csv`] for the accepted format.
///
/// # Errors
///
/// Returns [`LoadCsvError`] on I/O failure or malformed content.
pub fn load_csv<P: AsRef<Path>>(path: P) -> Result<Dataset, LoadCsvError> {
    let path = path.as_ref();
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "csv".to_string());
    let text = fs::read_to_string(path)?;
    parse_csv(&text, &name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_with_header() {
        let ds = parse_csv("a,b,y\n1,2,3\n4,5,6\n", "t").unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.features[1], vec![4.0, 5.0]);
        assert_eq!(ds.targets, vec![3.0, 6.0]);
    }

    #[test]
    fn parses_without_header() {
        let ds = parse_csv("1,2,3\n4,5,6\n", "t").unwrap();
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn skips_blank_lines() {
        let ds = parse_csv("\n1,2,3\n\n4,5,6\n\n", "t").unwrap();
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn rejects_non_numeric_mid_file() {
        let err = parse_csv("1,2,3\nx,5,6\n", "t").unwrap_err();
        match err {
            LoadCsvError::Parse { line, cell } => {
                assert_eq!(line, 2);
                assert_eq!(cell, "x");
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn rejects_ragged_rows() {
        let err = parse_csv("1,2,3\n4,5\n", "t").unwrap_err();
        assert!(matches!(err, LoadCsvError::RaggedRow { line: 2, .. }));
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(parse_csv("", "t"), Err(LoadCsvError::Empty)));
        assert!(matches!(
            parse_csv("header,only\n", "t"),
            Err(LoadCsvError::Empty)
        ));
    }

    #[test]
    fn rejects_single_column() {
        assert!(matches!(parse_csv("1\n2\n", "t"), Err(LoadCsvError::Empty)));
    }

    #[test]
    fn load_csv_roundtrip() {
        let dir = std::env::temp_dir().join("reghd_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mini.csv");
        std::fs::write(&path, "a,y\n1.5,2.5\n-1.0,0.0\n").unwrap();
        let ds = load_csv(&path).unwrap();
        assert_eq!(ds.name, "mini");
        assert_eq!(ds.targets, vec![2.5, 0.0]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn io_error_is_reported() {
        let err = load_csv("/nonexistent/definitely/missing.csv").unwrap_err();
        assert!(matches!(err, LoadCsvError::Io(_)));
        assert!(err.to_string().contains("failed to read"));
    }

    #[test]
    fn handles_whitespace_around_cells() {
        let ds = parse_csv(" 1 , 2 , 3 \n", "t").unwrap();
        assert_eq!(ds.features[0], vec![1.0, 2.0]);
    }
}
