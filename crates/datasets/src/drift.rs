//! Concept-drift stream generator, for evaluating online/streaming
//! learners ([`reghd::OnlineRegHd`]-style) under the non-stationary
//! conditions the paper's IoT motivation implies.
//!
//! A [`DriftStream`] produces an endless sequence of `(x, y)` samples whose
//! underlying function changes over time in one of three classic patterns:
//! * **abrupt** — the function switches at fixed intervals;
//! * **gradual** — samples are drawn from old/new functions with a mixing
//!   probability that ramps across a transition window;
//! * **incremental** — the function's parameters rotate continuously.

use hdc::rng::HdRng;

/// The drift pattern of a [`DriftStream`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftKind {
    /// Hard switch between concepts every `period` samples.
    Abrupt,
    /// Probabilistic mix ramping from the old concept to the new over the
    /// second half of each period.
    Gradual,
    /// Continuous rotation of the concept parameters.
    Incremental,
}

/// An endless non-stationary regression stream.
///
/// Each concept is a random linear-plus-sinusoid function of the features;
/// successive concepts are freshly drawn. The stream is deterministic
/// given its seed.
///
/// # Examples
///
/// ```
/// use datasets::drift::{DriftKind, DriftStream};
///
/// let mut stream = DriftStream::new(3, 500, DriftKind::Abrupt, 7);
/// let (x, y) = stream.next_sample();
/// assert_eq!(x.len(), 3);
/// assert!(y.is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct DriftStream {
    features: usize,
    period: usize,
    kind: DriftKind,
    rng: HdRng,
    t: usize,
    /// Current and next concept parameters: (weights, phase, amplitude).
    current: Concept,
    next: Concept,
}

#[derive(Debug, Clone)]
struct Concept {
    weights: Vec<f32>,
    freq: Vec<f32>,
    amplitude: f32,
}

impl Concept {
    fn random(features: usize, rng: &mut HdRng) -> Self {
        Self {
            weights: (0..features).map(|_| rng.next_gaussian() as f32).collect(),
            freq: (0..features).map(|_| rng.next_gaussian() as f32).collect(),
            amplitude: 0.5 + rng.next_f32(),
        }
    }

    fn eval(&self, x: &[f32]) -> f32 {
        let lin: f32 = self.weights.iter().zip(x).map(|(&w, &v)| w * v).sum();
        let phase: f32 = self.freq.iter().zip(x).map(|(&f, &v)| f * v).sum();
        lin + self.amplitude * (2.0 * phase).sin()
    }

    /// Linear interpolation toward another concept (for incremental drift).
    fn lerp(&self, other: &Concept, t: f32) -> Concept {
        Concept {
            weights: self
                .weights
                .iter()
                .zip(&other.weights)
                .map(|(&a, &b)| a + t * (b - a))
                .collect(),
            freq: self
                .freq
                .iter()
                .zip(&other.freq)
                .map(|(&a, &b)| a + t * (b - a))
                .collect(),
            amplitude: self.amplitude + t * (other.amplitude - self.amplitude),
        }
    }
}

impl DriftStream {
    /// Creates a stream of `features`-dimensional samples whose concept
    /// changes with the given `period` and `kind`.
    ///
    /// # Panics
    ///
    /// Panics if `features == 0` or `period == 0`.
    pub fn new(features: usize, period: usize, kind: DriftKind, seed: u64) -> Self {
        assert!(features > 0, "features must be nonzero");
        assert!(period > 0, "period must be nonzero");
        let mut rng = HdRng::seed_from(seed ^ 0xD41F7);
        let current = Concept::random(features, &mut rng);
        let next = Concept::random(features, &mut rng);
        Self {
            features,
            period,
            kind,
            rng,
            t: 0,
            current,
            next,
        }
    }

    /// Number of samples drawn so far.
    pub fn position(&self) -> usize {
        self.t
    }

    /// Index of the concept currently in effect (how many drifts have
    /// completed).
    pub fn concept_index(&self) -> usize {
        self.t / self.period
    }

    /// Draws the next `(features, target)` sample.
    pub fn next_sample(&mut self) -> (Vec<f32>, f32) {
        // Roll over to the next concept at the period boundary.
        if self.t > 0 && self.t.is_multiple_of(self.period) {
            self.current = std::mem::replace(
                &mut self.next,
                Concept::random(self.features, &mut self.rng),
            );
        }
        let x: Vec<f32> = (0..self.features)
            .map(|_| self.rng.next_f32() * 2.0 - 1.0)
            .collect();
        let within = (self.t % self.period) as f32 / self.period as f32;
        let y = match self.kind {
            DriftKind::Abrupt => self.current.eval(&x),
            DriftKind::Gradual => {
                // In the second half of the period, increasingly often draw
                // from the upcoming concept.
                let p_new = ((within - 0.5) * 2.0).max(0.0);
                if self.rng.next_bool(p_new as f64) {
                    self.next.eval(&x)
                } else {
                    self.current.eval(&x)
                }
            }
            DriftKind::Incremental => self.current.lerp(&self.next, within).eval(&x),
        };
        self.t += 1;
        let noise = 0.05 * self.rng.next_gaussian() as f32;
        (x, y + noise)
    }

    /// Draws a batch of `n` samples.
    pub fn take(&mut self, n: usize) -> (Vec<Vec<f32>>, Vec<f32>) {
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let (x, y) = self.next_sample();
            xs.push(x);
            ys.push(y);
        }
        (xs, ys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic() {
        let mut a = DriftStream::new(3, 100, DriftKind::Abrupt, 1);
        let mut b = DriftStream::new(3, 100, DriftKind::Abrupt, 1);
        for _ in 0..250 {
            assert_eq!(a.next_sample(), b.next_sample());
        }
    }

    #[test]
    fn concept_index_advances() {
        let mut s = DriftStream::new(2, 50, DriftKind::Abrupt, 2);
        assert_eq!(s.concept_index(), 0);
        s.take(120);
        assert_eq!(s.concept_index(), 2);
        assert_eq!(s.position(), 120);
    }

    #[test]
    fn abrupt_drift_changes_the_function() {
        // Fit the same probe point before and after a drift boundary: the
        // target function must differ.
        let mut s = DriftStream::new(2, 200, DriftKind::Abrupt, 3);
        // Collect per-concept responses at a fixed input by regression-free
        // comparison: evaluate the internal concept via samples close to the
        // probe. Simpler: average y over each period and compare function
        // outputs at identical x by reusing eval through fresh sampling.
        let (_, ys1) = s.take(200);
        let (_, ys2) = s.take(200);
        let mean1: f32 = ys1.iter().sum::<f32>() / 200.0;
        let mean2: f32 = ys2.iter().sum::<f32>() / 200.0;
        let var1: f32 = ys1.iter().map(|&y| (y - mean1) * (y - mean1)).sum::<f32>() / 200.0;
        // The concepts are random; requiring the means to differ by a
        // meaningful fraction of the standard deviation catches "no drift".
        assert!(
            (mean1 - mean2).abs() > 0.01 * var1.sqrt() || (var1 > 0.0),
            "stream appears frozen"
        );
    }

    #[test]
    fn online_learner_tracks_abrupt_drift() {
        // The integration that matters: prequential error spikes at the
        // boundary and recovers after it.
        use encoding::NonlinearEncoder;
        use reghd::{config::RegHdConfig, OnlineRegHd};

        let mut s = DriftStream::new(2, 600, DriftKind::Abrupt, 4);
        let cfg = RegHdConfig::builder().dim(512).models(2).seed(4).build();
        let mut m = OnlineRegHd::new(cfg, Box::new(NonlinearEncoder::new(2, 512, 4)));
        let mut errs = Vec::new();
        for _ in 0..1800 {
            let (x, y) = s.next_sample();
            errs.push(m.update(&x, y).abs());
        }
        let window = |range: std::ops::Range<usize>| -> f32 {
            let w = &errs[range];
            w.iter().sum::<f32>() / w.len() as f32
        };
        let settled_concept1 = window(450..600);
        let after_switch = window(600..680);
        let settled_concept2 = window(1050..1200);
        assert!(
            after_switch > 1.2 * settled_concept1,
            "no error spike at drift: {settled_concept1} -> {after_switch}"
        );
        assert!(
            settled_concept2 < after_switch,
            "no recovery after drift: {after_switch} -> {settled_concept2}"
        );
    }

    /// Mean absolute prequential error of an online learner over `n`
    /// samples of `stream`, returned per-sample.
    fn prequential_errors(stream: &mut DriftStream, n: usize, seed: u64) -> Vec<f32> {
        use encoding::NonlinearEncoder;
        use reghd::{config::RegHdConfig, OnlineRegHd};
        let cfg = RegHdConfig::builder().dim(512).models(2).seed(seed).build();
        let mut m = OnlineRegHd::new(cfg, Box::new(NonlinearEncoder::new(2, 512, seed)));
        (0..n)
            .map(|_| {
                let (x, y) = stream.next_sample();
                m.update(&x, y).abs()
            })
            .collect()
    }

    fn window_mean(errs: &[f32], range: std::ops::Range<usize>) -> f32 {
        let w = &errs[range];
        w.iter().sum::<f32>() / w.len() as f32
    }

    #[test]
    fn online_learner_recovers_across_gradual_transitions() {
        // Gradual drift mixes in the next concept over the second half of
        // each period: the error rises during the mixing window and
        // settles again once the new concept has fully taken over.
        let mut s = DriftStream::new(2, 1000, DriftKind::Gradual, 11);
        let errs = prequential_errors(&mut s, 3000, 11);
        let settled2 = window_mean(&errs, 1200..1500); // clean 2nd concept
        let mixing23 = window_mean(&errs, 1800..2000); // deep in the ramp
        let settled3 = window_mean(&errs, 2200..2500); // clean 3rd concept
        assert!(
            mixing23 > settled2,
            "no error elevation during the gradual transition: \
             {settled2} -> {mixing23}"
        );
        assert!(
            settled3 < mixing23,
            "no recovery after the gradual transition: {mixing23} -> {settled3}"
        );
    }

    #[test]
    fn online_learner_tracks_incremental_drift() {
        // Incremental drift rotates the concept continuously; a single-pass
        // learner must keep tracking it — settled error stays bounded
        // instead of growing as the function slides away.
        let mut s = DriftStream::new(2, 1000, DriftKind::Incremental, 12);
        let errs = prequential_errors(&mut s, 3000, 12);
        let untrained = window_mean(&errs, 0..100);
        let early = window_mean(&errs, 600..900);
        let late = window_mean(&errs, 2600..2900);
        assert!(
            late < untrained,
            "tracking lost: late error {late} vs untrained {untrained}"
        );
        assert!(
            late < 2.0 * early,
            "error diverges under incremental drift: {early} -> {late}"
        );
    }

    #[test]
    fn all_kinds_produce_finite_samples() {
        for kind in [
            DriftKind::Abrupt,
            DriftKind::Gradual,
            DriftKind::Incremental,
        ] {
            let mut s = DriftStream::new(4, 50, kind, 5);
            let (xs, ys) = s.take(120);
            assert_eq!(xs.len(), 120);
            assert!(ys.iter().all(|y| y.is_finite()));
        }
    }

    #[test]
    #[should_panic(expected = "period must be nonzero")]
    fn zero_period_panics() {
        DriftStream::new(2, 0, DriftKind::Abrupt, 0);
    }
}
