//! Train/test splitting and cross-validation folds.

use crate::Dataset;
use hdc::rng::HdRng;

/// Shuffles indices `0..n` with a seeded Fisher–Yates.
fn shuffled_indices(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = HdRng::seed_from(seed);
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.next_below(i + 1);
        idx.swap(i, j);
    }
    idx
}

/// Splits a dataset into `(train, test)` with the given test fraction,
/// shuffling deterministically by `seed`.
///
/// The test set receives `round(n · test_fraction)` samples, clamped so both
/// sides are nonempty whenever `n ≥ 2`.
///
/// # Panics
///
/// Panics if `test_fraction` is not within `(0, 1)` or the dataset has fewer
/// than 2 samples.
///
/// # Examples
///
/// ```
/// use datasets::{Dataset, split::train_test_split};
///
/// let ds = Dataset::new(
///     "toy",
///     (0..10).map(|i| vec![i as f32]).collect(),
///     (0..10).map(|i| i as f32).collect(),
/// );
/// let (train, test) = train_test_split(&ds, 0.3, 1);
/// assert_eq!(test.len(), 3);
/// assert_eq!(train.len(), 7);
/// ```
pub fn train_test_split(ds: &Dataset, test_fraction: f64, seed: u64) -> (Dataset, Dataset) {
    assert!(
        test_fraction > 0.0 && test_fraction < 1.0,
        "test_fraction must be in (0,1)"
    );
    assert!(ds.len() >= 2, "need at least 2 samples to split");
    let n = ds.len();
    let mut n_test = ((n as f64) * test_fraction).round() as usize;
    n_test = n_test.clamp(1, n - 1);
    let idx = shuffled_indices(n, seed);
    let test = ds.select(&idx[..n_test]);
    let train = ds.select(&idx[n_test..]);
    (train, test)
}

/// Produces `k` cross-validation folds as `(train, validation)` pairs.
/// Fold sizes differ by at most one sample; every sample appears in exactly
/// one validation fold.
///
/// # Panics
///
/// Panics if `k < 2` or `k > ds.len()`.
pub fn k_fold(ds: &Dataset, k: usize, seed: u64) -> Vec<(Dataset, Dataset)> {
    assert!(k >= 2, "k must be at least 2");
    assert!(k <= ds.len(), "k cannot exceed the sample count");
    let idx = shuffled_indices(ds.len(), seed);
    let mut folds = Vec::with_capacity(k);
    let base = ds.len() / k;
    let extra = ds.len() % k;
    let mut start = 0usize;
    for f in 0..k {
        let size = base + usize::from(f < extra);
        let val_idx = &idx[start..start + size];
        let train_idx: Vec<usize> = idx[..start]
            .iter()
            .chain(&idx[start + size..])
            .copied()
            .collect();
        folds.push((ds.select(&train_idx), ds.select(val_idx)));
        start += size;
    }
    folds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        Dataset::new(
            "toy",
            (0..n).map(|i| vec![i as f32]).collect(),
            (0..n).map(|i| i as f32).collect(),
        )
    }

    #[test]
    fn split_sizes() {
        let ds = toy(100);
        let (train, test) = train_test_split(&ds, 0.2, 42);
        assert_eq!(test.len(), 20);
        assert_eq!(train.len(), 80);
    }

    #[test]
    fn split_is_partition() {
        let ds = toy(50);
        let (train, test) = train_test_split(&ds, 0.3, 7);
        let mut all: Vec<f32> = train.targets.iter().chain(&test.targets).copied().collect();
        all.sort_by(f32::total_cmp);
        let expect: Vec<f32> = (0..50).map(|i| i as f32).collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn split_deterministic_by_seed() {
        let ds = toy(30);
        let (a1, _) = train_test_split(&ds, 0.25, 9);
        let (a2, _) = train_test_split(&ds, 0.25, 9);
        let (b, _) = train_test_split(&ds, 0.25, 10);
        assert_eq!(a1.targets, a2.targets);
        assert_ne!(a1.targets, b.targets);
    }

    #[test]
    fn split_never_empty() {
        let ds = toy(2);
        let (train, test) = train_test_split(&ds, 0.01, 1);
        assert_eq!(train.len(), 1);
        assert_eq!(test.len(), 1);
        let (train, test) = train_test_split(&ds, 0.99, 1);
        assert_eq!(train.len(), 1);
        assert_eq!(test.len(), 1);
    }

    #[test]
    #[should_panic(expected = "test_fraction")]
    fn bad_fraction_panics() {
        train_test_split(&toy(10), 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "at least 2 samples")]
    fn tiny_dataset_panics() {
        train_test_split(&toy(1), 0.5, 0);
    }

    #[test]
    fn k_fold_covers_everything_once() {
        let ds = toy(23);
        let folds = k_fold(&ds, 5, 3);
        assert_eq!(folds.len(), 5);
        let mut val_targets: Vec<f32> = folds.iter().flat_map(|(_, v)| v.targets.clone()).collect();
        val_targets.sort_by(f32::total_cmp);
        let expect: Vec<f32> = (0..23).map(|i| i as f32).collect();
        assert_eq!(val_targets, expect);
        // Each fold's train+val is the full set.
        for (train, val) in &folds {
            assert_eq!(train.len() + val.len(), 23);
        }
    }

    #[test]
    fn k_fold_sizes_balanced() {
        let folds = k_fold(&toy(10), 3, 1);
        let sizes: Vec<usize> = folds.iter().map(|(_, v)| v.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4));
    }

    #[test]
    #[should_panic(expected = "k must be at least 2")]
    fn k_fold_k1_panics() {
        k_fold(&toy(10), 1, 0);
    }
}
