//! # datasets — regression workloads, metrics, and data plumbing
//!
//! RegHD's evaluation (§4) runs on seven popular regression datasets:
//! diabetes, Boston housing, NASA airfoil self-noise, wine quality, Facebook
//! brand-post metrics, combined-cycle power plant (CCPP), and forest fires.
//! Those archives are not available in this offline environment, so this
//! crate provides **synthetic generators statistically matched to each
//! dataset** — same feature count, sample count, target location/scale, and
//! qualitative structure (degree of nonlinearity, multi-modality, noise
//! floor, target skew). See `DESIGN.md` §3 for the substitution rationale:
//! every algorithm under test is data-agnostic, and the evaluation's
//! *shape* (relative ordering of learners, effect of model count and
//! quantisation) is driven by the structural knobs the generators control.
//!
//! The crate also supplies the supporting plumbing every experiment needs:
//! train/test splitting ([`split`]), z-score normalisation ([`normalize`]),
//! quality metrics ([`metrics`]), and a dependency-free CSV loader
//! ([`csv`]) so real datasets can be dropped in when available.
//!
//! ## Example
//!
//! ```
//! use datasets::{paper, split::train_test_split, metrics::mse};
//!
//! let ds = paper::airfoil(42);
//! assert_eq!(ds.num_features(), 5);
//! let (train, test) = train_test_split(&ds, 0.2, 7);
//! assert_eq!(train.len() + test.len(), ds.len());
//!
//! // A mean predictor's MSE equals the target variance.
//! let mean = train.targets.iter().sum::<f32>() / train.len() as f32;
//! let pred: Vec<f32> = vec![mean; test.len()];
//! assert!(mse(&pred, &test.targets) > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod drift;
pub mod friedman;
pub mod metrics;
pub mod normalize;
pub mod paper;
pub mod split;
pub mod synthetic;

/// A regression dataset: row-major feature matrix plus scalar targets.
///
/// Invariant: `features.len() == targets.len()` and every feature row has
/// the same width.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Human-readable dataset name (e.g. `"airfoil"`).
    pub name: String,
    /// Feature rows; all rows share the same length.
    pub features: Vec<Vec<f32>>,
    /// Regression targets, one per feature row.
    pub targets: Vec<f32>,
}

impl Dataset {
    /// Creates a dataset, validating the shape invariants.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != targets.len()` or rows have ragged
    /// widths.
    pub fn new(name: impl Into<String>, features: Vec<Vec<f32>>, targets: Vec<f32>) -> Self {
        assert_eq!(
            features.len(),
            targets.len(),
            "features and targets must have the same length"
        );
        if let Some(first) = features.first() {
            let w = first.len();
            assert!(
                features.iter().all(|row| row.len() == w),
                "feature rows must all have the same width"
            );
        }
        Self {
            name: name.into(),
            features,
            targets,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Number of features per sample (0 for an empty dataset).
    pub fn num_features(&self) -> usize {
        self.features.first().map_or(0, Vec::len)
    }

    /// Mean of the targets (0 for an empty dataset).
    pub fn target_mean(&self) -> f32 {
        if self.is_empty() {
            return 0.0;
        }
        (self.targets.iter().map(|&t| t as f64).sum::<f64>() / self.len() as f64) as f32
    }

    /// Population variance of the targets (0 for an empty dataset). This is
    /// the MSE of the best constant predictor — the floor every learner must
    /// beat.
    pub fn target_variance(&self) -> f32 {
        if self.is_empty() {
            return 0.0;
        }
        let mean = self.target_mean() as f64;
        (self
            .targets
            .iter()
            .map(|&t| (t as f64 - mean).powi(2))
            .sum::<f64>()
            / self.len() as f64) as f32
    }

    /// Returns the sample at `idx` as `(features, target)`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len()`.
    pub fn sample(&self, idx: usize) -> (&[f32], f32) {
        (&self.features[idx], self.targets[idx])
    }

    /// Iterates over `(features, target)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f32], f32)> + '_ {
        self.features
            .iter()
            .map(Vec::as_slice)
            .zip(self.targets.iter().copied())
    }

    /// Builds a new dataset from the given row indices (used by splits and
    /// subsampling).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn select(&self, indices: &[usize]) -> Dataset {
        Dataset::new(
            self.name.clone(),
            indices.iter().map(|&i| self.features[i].clone()).collect(),
            indices.iter().map(|&i| self.targets[i]).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_shapes() {
        let ds = Dataset::new("t", vec![vec![1.0, 2.0], vec![3.0, 4.0]], vec![1.0, 2.0]);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.num_features(), 2);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn mismatched_lengths_panic() {
        Dataset::new("t", vec![vec![1.0]], vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "same width")]
    fn ragged_rows_panic() {
        Dataset::new("t", vec![vec![1.0], vec![1.0, 2.0]], vec![1.0, 2.0]);
    }

    #[test]
    fn target_stats() {
        let ds = Dataset::new("t", vec![vec![0.0]; 4], vec![1.0, 2.0, 3.0, 4.0]);
        assert!((ds.target_mean() - 2.5).abs() < 1e-6);
        assert!((ds.target_variance() - 1.25).abs() < 1e-6);
    }

    #[test]
    fn empty_dataset_stats_are_zero() {
        let ds = Dataset::new("empty", vec![], vec![]);
        assert!(ds.is_empty());
        assert_eq!(ds.num_features(), 0);
        assert_eq!(ds.target_mean(), 0.0);
        assert_eq!(ds.target_variance(), 0.0);
    }

    #[test]
    fn select_picks_rows() {
        let ds = Dataset::new(
            "t",
            vec![vec![1.0], vec![2.0], vec![3.0]],
            vec![10.0, 20.0, 30.0],
        );
        let sub = ds.select(&[2, 0]);
        assert_eq!(sub.targets, vec![30.0, 10.0]);
        assert_eq!(sub.features, vec![vec![3.0], vec![1.0]]);
    }

    #[test]
    fn iter_pairs() {
        let ds = Dataset::new("t", vec![vec![1.0], vec![2.0]], vec![5.0, 6.0]);
        let pairs: Vec<_> = ds.iter().collect();
        assert_eq!(pairs[0], (&[1.0][..], 5.0));
        assert_eq!(pairs[1], (&[2.0][..], 6.0));
    }
}
