//! The Friedman benchmark functions — the standard synthetic regression
//! tasks of the statistics literature (Friedman 1991, "Multivariate
//! adaptive regression splines"; Breiman 1996). Unlike the calibrated
//! paper-dataset generators in [`crate::paper`], these have *known
//! closed-form* ground truth, which makes them ideal for studying encoder
//! and learner behaviour in isolation.
//!
//! * **Friedman #1**: `y = 10·sin(π·x₁x₂) + 20(x₃−½)² + 10x₄ + 5x₅ + ε`,
//!   with 5 informative and 5 pure-noise features, `x ~ U[0,1]¹⁰`.
//! * **Friedman #2**: `y = √(x₁² + (x₂x₃ − 1/(x₂x₄))²) + ε` — smooth but
//!   strongly interacting.
//! * **Friedman #3**: `y = atan((x₂x₃ − 1/(x₂x₄))/x₁) + ε` — bounded,
//!   ridge-shaped.

use crate::Dataset;
use hdc::rng::HdRng;

/// Friedman #1: 10 features (5 informative + 5 noise), `x ~ U[0,1]`.
///
/// `noise_std` is the ε standard deviation (1.0 in the classic setup).
///
/// # Panics
///
/// Panics if `samples == 0` or `noise_std < 0`.
pub fn friedman1(samples: usize, noise_std: f32, seed: u64) -> Dataset {
    assert!(samples > 0, "samples must be nonzero");
    assert!(noise_std >= 0.0, "noise_std must be nonnegative");
    let mut rng = HdRng::seed_from(seed ^ 0x00F4_1ED1);
    let mut features = Vec::with_capacity(samples);
    let mut targets = Vec::with_capacity(samples);
    for _ in 0..samples {
        let x: Vec<f32> = (0..10).map(|_| rng.next_f32()).collect();
        let y = 10.0 * (std::f32::consts::PI * x[0] * x[1]).sin()
            + 20.0 * (x[2] - 0.5) * (x[2] - 0.5)
            + 10.0 * x[3]
            + 5.0 * x[4]
            + noise_std * rng.next_gaussian() as f32;
        features.push(x);
        targets.push(y);
    }
    Dataset::new("friedman1", features, targets)
}

/// Friedman #2: 4 features on their classic ranges
/// (`x₁ ∈ [0,100]`, `x₂ ∈ [40π,560π]`, `x₃ ∈ [0,1]`, `x₄ ∈ [1,11]`).
///
/// The classic noise level gives a 3:1 signal-to-noise ratio; pass
/// `noise_std = 125.0` for that setup or 0 for noise-free.
///
/// # Panics
///
/// Panics if `samples == 0` or `noise_std < 0`.
pub fn friedman2(samples: usize, noise_std: f32, seed: u64) -> Dataset {
    assert!(samples > 0, "samples must be nonzero");
    assert!(noise_std >= 0.0, "noise_std must be nonnegative");
    let mut rng = HdRng::seed_from(seed ^ 0x00F4_1ED2);
    let tau = std::f32::consts::PI;
    let mut features = Vec::with_capacity(samples);
    let mut targets = Vec::with_capacity(samples);
    for _ in 0..samples {
        let x1 = 100.0 * rng.next_f32();
        let x2 = 40.0 * tau + (560.0 - 40.0) * tau * rng.next_f32();
        let x3 = rng.next_f32();
        let x4 = 1.0 + 10.0 * rng.next_f32();
        let inner = x2 * x3 - 1.0 / (x2 * x4);
        let y = (x1 * x1 + inner * inner).sqrt() + noise_std * rng.next_gaussian() as f32;
        features.push(vec![x1, x2, x3, x4]);
        targets.push(y);
    }
    Dataset::new("friedman2", features, targets)
}

/// Friedman #3: same feature ranges as [`friedman2`], arctangent response.
/// Classic noise level ≈ 0.1.
///
/// # Panics
///
/// Panics if `samples == 0` or `noise_std < 0`.
pub fn friedman3(samples: usize, noise_std: f32, seed: u64) -> Dataset {
    assert!(samples > 0, "samples must be nonzero");
    assert!(noise_std >= 0.0, "noise_std must be nonnegative");
    let mut rng = HdRng::seed_from(seed ^ 0x00F4_1ED3);
    let tau = std::f32::consts::PI;
    let mut features = Vec::with_capacity(samples);
    let mut targets = Vec::with_capacity(samples);
    for _ in 0..samples {
        let x1 = (100.0 * rng.next_f32()).max(1e-3);
        let x2 = 40.0 * tau + (560.0 - 40.0) * tau * rng.next_f32();
        let x3 = rng.next_f32();
        let x4 = 1.0 + 10.0 * rng.next_f32();
        let inner = x2 * x3 - 1.0 / (x2 * x4);
        let y = (inner / x1).atan() + noise_std * rng.next_gaussian() as f32;
        features.push(vec![x1, x2, x3, x4]);
        targets.push(y);
    }
    Dataset::new("friedman3", features, targets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn friedman1_shape_and_range() {
        let ds = friedman1(500, 1.0, 1);
        assert_eq!(ds.num_features(), 10);
        assert_eq!(ds.len(), 500);
        // Classic mean ≈ 14.4, range roughly [0, 30].
        let mean = ds.target_mean();
        assert!((10.0..20.0).contains(&mean), "mean = {mean}");
        assert!(ds
            .features
            .iter()
            .flatten()
            .all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn friedman1_noise_free_is_deterministic_function() {
        // With ε = 0 the target is an exact function of the features.
        let ds = friedman1(100, 0.0, 2);
        for (x, y) in ds.iter() {
            let expect = 10.0 * (std::f32::consts::PI * x[0] * x[1]).sin()
                + 20.0 * (x[2] - 0.5) * (x[2] - 0.5)
                + 10.0 * x[3]
                + 5.0 * x[4];
            assert!((y - expect).abs() < 1e-4);
        }
    }

    #[test]
    fn friedman1_noise_features_are_uninformative() {
        // Permuting features 6–10 must not change the noise-free target.
        let ds = friedman1(50, 0.0, 3);
        for (x, y) in ds.iter() {
            let mut x2 = x.to_vec();
            x2[7] = 0.123;
            x2[9] = 0.987;
            let expect = 10.0 * (std::f32::consts::PI * x2[0] * x2[1]).sin()
                + 20.0 * (x2[2] - 0.5) * (x2[2] - 0.5)
                + 10.0 * x2[3]
                + 5.0 * x2[4];
            assert!((y - expect).abs() < 1e-4);
        }
    }

    #[test]
    fn friedman2_positive_targets() {
        let ds = friedman2(300, 0.0, 4);
        assert_eq!(ds.num_features(), 4);
        assert!(ds.targets.iter().all(|&y| y >= 0.0));
        // Dominated by x1 and the interaction term; spread is wide.
        assert!(ds.target_variance() > 1000.0);
    }

    #[test]
    fn friedman3_bounded_by_half_pi() {
        let ds = friedman3(300, 0.0, 5);
        let bound = std::f32::consts::FRAC_PI_2 + 1e-4;
        assert!(ds.targets.iter().all(|&y| y.abs() <= bound));
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        assert_eq!(friedman1(50, 1.0, 7).targets, friedman1(50, 1.0, 7).targets);
        assert_ne!(friedman1(50, 1.0, 7).targets, friedman1(50, 1.0, 8).targets);
    }

    #[test]
    fn reghd_learns_friedman1() {
        // End-to-end smoke: RegHD must explain most of Friedman #1.
        use crate::normalize::{Standardizer, TargetScaler};
        let ds = friedman1(600, 0.5, 9);
        let std = Standardizer::fit(&ds);
        let normalised = std.transform(&ds);
        let scaler = TargetScaler::fit(&ds.targets);
        let ys: Vec<f32> = ds.targets.iter().map(|&y| scaler.transform(y)).collect();
        // A linear model cannot capture the sin/quadratic interactions; we
        // verify the dataset carries nonlinear signal by checking that the
        // best linear predictor leaves substantial residual. (The actual
        // HD fit lives in the reghd crate's tests to avoid a dev-dependency
        // cycle here.)
        // Compute linear least squares residual via normal equations on a
        // small design — quick and dependency-free.
        let n = normalised.len();
        let d = normalised.num_features();
        let mut xtx = vec![0.0f64; (d + 1) * (d + 1)];
        let mut xty = vec![0.0f64; d + 1];
        for (row, &y) in normalised.features.iter().zip(&ys) {
            for i in 0..=d {
                let xi = if i < d { row[i] as f64 } else { 1.0 };
                xty[i] += xi * y as f64;
                for j in 0..=d {
                    let xj = if j < d { row[j] as f64 } else { 1.0 };
                    xtx[i * (d + 1) + j] += xi * xj;
                }
            }
        }
        // Gauss elimination (small system).
        let m = d + 1;
        let mut a = xtx;
        let mut b = xty;
        for col in 0..m {
            let pivot = (col..m)
                .max_by(|&r1, &r2| a[r1 * m + col].abs().total_cmp(&a[r2 * m + col].abs()))
                .expect("nonempty");
            for j in 0..m {
                a.swap(col * m + j, pivot * m + j);
            }
            b.swap(col, pivot);
            let diag = a[col * m + col];
            for r in 0..m {
                if r != col && diag.abs() > 1e-12 {
                    let f = a[r * m + col] / diag;
                    for j in 0..m {
                        a[r * m + j] -= f * a[col * m + j];
                    }
                    b[r] -= f * b[col];
                }
            }
        }
        let coef: Vec<f64> = (0..m)
            .map(|i| {
                if a[i * m + i].abs() > 1e-12 {
                    b[i] / a[i * m + i]
                } else {
                    0.0
                }
            })
            .collect();
        let mut resid = 0.0f64;
        for (row, &y) in normalised.features.iter().zip(&ys) {
            let pred: f64 = row
                .iter()
                .enumerate()
                .map(|(i, &x)| coef[i] * x as f64)
                .sum::<f64>()
                + coef[d];
            resid += (y as f64 - pred).powi(2);
        }
        let linear_mse = resid / n as f64;
        // Standardised targets have variance 1; the nonlinear components
        // account for a substantial fraction a linear fit cannot reach.
        assert!(
            linear_mse > 0.15,
            "Friedman #1 should defeat a purely linear fit (residual {linear_mse})"
        );
    }
}
