//! The seven evaluation datasets of the RegHD paper, as synthetic
//! equivalents.
//!
//! Each generator matches the real dataset's feature count, sample count and
//! target location/scale, and sets the structural knobs (regime count,
//! nonlinearity, noise floor, skew) so the *achievable* MSE lands in the
//! neighbourhood of the paper's Table 1 values. The substitution rationale
//! is documented in `DESIGN.md` §3.
//!
//! | Dataset | Samples | Features | Target (μ ± σ) | Paper's best MSE |
//! |---|---|---|---|---|
//! | diabetes | 442 | 10 | 152 ± 77 | 3385 (DNN) |
//! | boston | 506 | 13 | 22.5 ± 9.2 | 13.5 (SVR) |
//! | airfoil | 1503 | 5 | 124.8 ± 6.9 | 16.0 (RegHD-32) |
//! | wine | 4898 | 11 | 5.88 ± 0.89 | 0.51 (DNN) |
//! | facebook | 500 | 18 | 135 ± 140 | 11118 (RegHD-32) |
//! | ccpp | 9568 | 4 | 454 ± 17 | 19.9 (DNN) |
//! | forest | 517 | 12 | 12.8 ± 63.6 | 701 (DNN) |

use crate::synthetic::SyntheticSpec;
use crate::Dataset;

/// Diabetes disease-progression prediction (UCI-style: 442×10, very noisy).
pub fn diabetes(seed: u64) -> Dataset {
    SyntheticSpec {
        name: "diabetes".into(),
        samples: 442,
        features: 10,
        clusters: 3,
        nonlinearity: 0.3,
        noise_std: 1.15,
        target_mean: 152.0,
        target_std: 77.0,
        skew: 0.2,
        seed: seed ^ 0xD1A_BE7E5,
    }
    .generate()
}

/// Boston housing price prediction (506×13, moderate nonlinearity).
pub fn boston(seed: u64) -> Dataset {
    SyntheticSpec {
        name: "boston".into(),
        samples: 506,
        features: 13,
        clusters: 4,
        nonlinearity: 0.5,
        noise_std: 0.44,
        target_mean: 22.5,
        target_std: 9.2,
        skew: 0.4,
        seed: seed ^ 0xB05_705,
    }
    .generate()
}

/// NASA airfoil self-noise prediction (1503×5, strongly nonlinear physics).
pub fn airfoil(seed: u64) -> Dataset {
    SyntheticSpec {
        name: "airfoil".into(),
        samples: 1503,
        features: 5,
        clusters: 4,
        nonlinearity: 0.7,
        noise_std: 0.71,
        target_mean: 124.8,
        target_std: 6.9,
        skew: 0.0,
        seed: seed ^ 0xA1_8F011,
    }
    .generate()
}

/// Wine quality prediction (4898×11, discrete-ish noisy sensory target).
pub fn wine(seed: u64) -> Dataset {
    SyntheticSpec {
        name: "wine".into(),
        samples: 4898,
        features: 11,
        clusters: 3,
        nonlinearity: 0.4,
        noise_std: 1.35,
        target_mean: 5.88,
        target_std: 0.89,
        skew: 0.1,
        seed: seed ^ 0x31_4E,
    }
    .generate()
}

/// Facebook brand-post performance metrics (500×18, heavy-tailed
/// engagement counts).
pub fn facebook(seed: u64) -> Dataset {
    SyntheticSpec {
        name: "facebook".into(),
        samples: 500,
        features: 18,
        clusters: 5,
        nonlinearity: 0.6,
        noise_std: 1.14,
        target_mean: 135.0,
        target_std: 140.0,
        skew: 0.9,
        seed: seed ^ 0xFACE_B00C,
    }
    .generate()
}

/// Combined-cycle power plant output prediction (9568×4, near-linear
/// thermodynamics, low noise).
pub fn ccpp(seed: u64) -> Dataset {
    SyntheticSpec {
        name: "ccpp".into(),
        samples: 9568,
        features: 4,
        clusters: 2,
        nonlinearity: 0.3,
        noise_std: 0.27,
        target_mean: 454.0,
        target_std: 17.0,
        skew: 0.0,
        seed: seed ^ 0xCC_99,
    }
    .generate()
}

/// Forest-fire burned-area prediction (517×12, extremely skewed target).
pub fn forest(seed: u64) -> Dataset {
    SyntheticSpec {
        name: "forest".into(),
        samples: 517,
        features: 12,
        clusters: 3,
        nonlinearity: 0.6,
        noise_std: 0.46,
        target_mean: 12.8,
        target_std: 63.6,
        skew: 1.6,
        seed: seed ^ 0xF0_4E57,
    }
    .generate()
}

/// All seven paper datasets in Table 1 order, sharing one base seed.
pub fn all(seed: u64) -> Vec<Dataset> {
    vec![
        diabetes(seed),
        boston(seed),
        airfoil(seed),
        wine(seed),
        facebook(seed),
        ccpp(seed),
        forest(seed),
    ]
}

/// The Table 1 dataset names, in column order.
pub const NAMES: [&str; 7] = [
    "diabetes", "boston", "airfoil", "wine", "facebook", "ccpp", "forest",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_paper() {
        let cases = [
            (diabetes(0), 442, 10),
            (boston(0), 506, 13),
            (airfoil(0), 1503, 5),
            (wine(0), 4898, 11),
            (facebook(0), 500, 18),
            (ccpp(0), 9568, 4),
            (forest(0), 517, 12),
        ];
        for (ds, n, f) in cases {
            assert_eq!(ds.len(), n, "{}", ds.name);
            assert_eq!(ds.num_features(), f, "{}", ds.name);
        }
    }

    #[test]
    fn target_scales_match_paper() {
        let checks = [
            (diabetes(0), 152.0, 77.0, 0.15),
            (boston(0), 22.5, 9.2, 0.15),
            (airfoil(0), 124.8, 6.9, 0.15),
            (wine(0), 5.88, 0.89, 0.15),
            (ccpp(0), 454.0, 17.0, 0.15),
        ];
        for (ds, mean, std, tol) in checks {
            let m = ds.target_mean();
            let s = ds.target_variance().sqrt();
            assert!(
                (m - mean).abs() / mean.abs() < tol,
                "{}: mean {m} vs expected {mean}",
                ds.name
            );
            assert!(
                (s - std).abs() / std < tol,
                "{}: std {s} vs expected {std}",
                ds.name
            );
        }
    }

    #[test]
    fn forest_is_heavily_skewed() {
        let ds = forest(0);
        let n = ds.len() as f64;
        let mean = ds.target_mean() as f64;
        let var = ds.target_variance() as f64;
        let skew = ds
            .targets
            .iter()
            .map(|&y| (y as f64 - mean).powi(3))
            .sum::<f64>()
            / n
            / var.powf(1.5);
        assert!(skew > 1.0, "forest skewness = {skew}");
    }

    #[test]
    fn all_returns_seven_in_order() {
        let sets = all(1);
        assert_eq!(sets.len(), 7);
        for (ds, &name) in sets.iter().zip(NAMES.iter()) {
            assert_eq!(ds.name, name);
        }
    }

    #[test]
    fn seeds_vary_data() {
        assert_ne!(boston(1).targets, boston(2).targets);
    }

    #[test]
    fn deterministic() {
        assert_eq!(ccpp(5).targets, ccpp(5).targets);
    }
}
