//! Property-based tests for the datasets crate.

use datasets::csv::parse_csv;
use datasets::drift::{DriftKind, DriftStream};
use datasets::metrics::{mae, mse, r2, rmse};
use datasets::normalize::{Standardizer, TargetScaler};
use datasets::split::{k_fold, train_test_split};
use datasets::Dataset;
use proptest::prelude::*;

fn dataset(rows: usize, cols: usize) -> impl Strategy<Value = Dataset> {
    (
        prop::collection::vec(prop::collection::vec(-100.0f32..100.0, cols), rows),
        prop::collection::vec(-100.0f32..100.0, rows),
    )
        .prop_map(|(features, targets)| Dataset::new("prop", features, targets))
}

proptest! {
    #[test]
    fn csv_roundtrip(ds in dataset(8, 3)) {
        // Serialise to CSV text and parse back.
        let mut text = String::from("f0,f1,f2,target\n");
        for (row, &y) in ds.features.iter().zip(&ds.targets) {
            text.push_str(&format!("{},{},{},{}\n", row[0], row[1], row[2], y));
        }
        let parsed = parse_csv(&text, "prop").unwrap();
        prop_assert_eq!(parsed.len(), ds.len());
        for i in 0..ds.len() {
            for j in 0..3 {
                prop_assert!((parsed.features[i][j] - ds.features[i][j]).abs()
                    <= ds.features[i][j].abs() * 1e-5 + 1e-4);
            }
            prop_assert!((parsed.targets[i] - ds.targets[i]).abs()
                <= ds.targets[i].abs() * 1e-5 + 1e-4);
        }
    }

    #[test]
    fn split_partitions_samples(ds in dataset(20, 2), frac in 0.1f64..0.9, seed in any::<u64>()) {
        let (train, test) = train_test_split(&ds, frac, seed);
        prop_assert_eq!(train.len() + test.len(), ds.len());
        prop_assert!(!train.is_empty());
        prop_assert!(!test.is_empty());
        // Multiset of targets is preserved.
        let mut all: Vec<f32> = train.targets.iter().chain(&test.targets).copied().collect();
        let mut orig = ds.targets.clone();
        all.sort_by(f32::total_cmp);
        orig.sort_by(f32::total_cmp);
        prop_assert_eq!(all, orig);
    }

    #[test]
    fn k_fold_validation_sets_partition(ds in dataset(17, 2), k in 2usize..6, seed in any::<u64>()) {
        let folds = k_fold(&ds, k, seed);
        prop_assert_eq!(folds.len(), k);
        let total_val: usize = folds.iter().map(|(_, v)| v.len()).sum();
        prop_assert_eq!(total_val, ds.len());
        for (train, val) in &folds {
            prop_assert_eq!(train.len() + val.len(), ds.len());
        }
    }

    #[test]
    fn standardizer_output_is_centered(ds in dataset(12, 3)) {
        let s = Standardizer::fit(&ds);
        let out = s.transform(&ds);
        for j in 0..3 {
            let mean: f64 = out.features.iter().map(|r| r[j] as f64).sum::<f64>() / 12.0;
            prop_assert!(mean.abs() < 1e-3, "column {} mean {}", j, mean);
        }
    }

    #[test]
    fn target_scaler_preserves_ordering(ys in prop::collection::vec(-1e3f32..1e3, 3..30)) {
        let s = TargetScaler::fit(&ys);
        for w in ys.windows(2) {
            let (a, b) = (s.transform(w[0]), s.transform(w[1]));
            prop_assert_eq!(a <= b, w[0] <= w[1]);
        }
    }

    #[test]
    fn mse_bounds_and_relations(
        pairs in prop::collection::vec((-50.0f32..50.0, -50.0f32..50.0), 1..40)
    ) {
        let (p, t): (Vec<f32>, Vec<f32>) = pairs.into_iter().unzip();
        let m = mse(&p, &t);
        let r = rmse(&p, &t);
        let a = mae(&p, &t);
        prop_assert!(m >= 0.0);
        prop_assert!((r * r - m).abs() <= 1e-2_f32.max(m * 1e-4));
        // Jensen: MAE ≤ RMSE.
        prop_assert!(a <= r + 1e-4);
    }

    #[test]
    fn r2_of_exact_predictions_is_one(ys in prop::collection::vec(-10.0f32..10.0, 2..30)) {
        // Skip degenerate constant targets.
        let spread = ys.iter().cloned().fold(f32::NEG_INFINITY, f32::max)
            - ys.iter().cloned().fold(f32::INFINITY, f32::min);
        prop_assume!(spread > 0.1);
        prop_assert!((r2(&ys, &ys) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn drift_stream_is_deterministic_by_seed(
        seed in any::<u64>(),
        kind_idx in 0usize..3,
        features in 1usize..5,
        period in 1usize..200,
    ) {
        let kind = [DriftKind::Abrupt, DriftKind::Gradual, DriftKind::Incremental][kind_idx];
        // Identical construction parameters replay the identical stream,
        // across at least one concept boundary.
        let mut a = DriftStream::new(features, period, kind, seed);
        let mut b = DriftStream::new(features, period, kind, seed);
        for _ in 0..(2 * period + 10) {
            prop_assert_eq!(a.next_sample(), b.next_sample());
        }
        // A different seed diverges somewhere in the same horizon.
        let mut c = DriftStream::new(features, period, kind, seed);
        let mut d = DriftStream::new(features, period, kind, seed ^ 0x9E37_79B9);
        let diverged = (0..(2 * period + 10)).any(|_| c.next_sample() != d.next_sample());
        prop_assert!(diverged, "distinct seeds replayed the same stream");
    }

    #[test]
    fn select_preserves_rows(ds in dataset(10, 2), idx in prop::collection::vec(0usize..10, 0..10)) {
        let sub = ds.select(&idx);
        prop_assert_eq!(sub.len(), idx.len());
        for (si, &oi) in idx.iter().enumerate() {
            prop_assert_eq!(&sub.features[si], &ds.features[oi]);
            prop_assert_eq!(sub.targets[si], ds.targets[oi]);
        }
    }
}
