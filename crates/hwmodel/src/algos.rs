//! Analytic operation counts for every learner in the evaluation.
//!
//! Each function reproduces, term by term, the arithmetic an optimised
//! implementation of the algorithm performs. The bench harness multiplies
//! the per-epoch costs by iteration counts measured from the real Rust
//! implementations, which is how the training-efficiency results of
//! Figures 8–9 account for RegHD's convergence behaviour ("reducing the
//! number of training iterations").

use crate::ops::OpCount;

/// Shape of a RegHD configuration, as the cost model sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegHdShape {
    /// Hypervector dimensionality `D`.
    pub dim: u64,
    /// Number of cluster/model pairs `k`.
    pub models: u64,
    /// Input feature count `n`.
    pub features: u64,
    /// Whether cluster search uses binary Hamming similarity (§3.1).
    pub cluster_binary: bool,
    /// Whether the query is binarised for prediction (§3.2).
    pub query_binary: bool,
    /// Whether the models are binarised for prediction (§3.2).
    pub model_binary: bool,
}

/// Cost of encoding one input into HD space (Eq. 1 form: Gaussian
/// projection + cos·sin), including binarisation when any consumer needs
/// the binary copy.
pub fn encode_cost(shape: &RegHdShape) -> OpCount {
    let d = shape.dim;
    let n = shape.features;
    let mut ops = OpCount {
        // Projection: D rows × n MACs.
        f32_mul: d * n,
        f32_add: d * n,
        // cos and sin per component, then one product.
        transcendental: 2 * d,
        mem_bytes: 4 * (n + d),
        ..OpCount::zero()
    };
    ops.f32_mul += d;
    if shape.query_binary || shape.cluster_binary {
        // Sign comparisons + packed write.
        ops.compare += d;
        ops.mem_bytes += d / 8;
    }
    ops
}

/// Cost of the cluster similarity search for one query (step ② of Fig. 4).
pub fn cluster_search_cost(shape: &RegHdShape) -> OpCount {
    let d = shape.dim;
    let k = shape.models;
    if shape.cluster_binary {
        // Hamming distance per cluster: XOR + popcount over D/64 words,
        // plus an accumulate per word.
        let words = d.div_ceil(64);
        OpCount {
            xor64: k * words,
            popcount64: k * words,
            int_add: k * words,
            mem_bytes: k * (d / 8),
            ..OpCount::zero()
        }
    } else {
        // Cosine per cluster: D MACs plus a normalising divide (cluster
        // norms cached, query norm computed once: D MACs + sqrt).
        OpCount {
            f32_mul: k * d + d,
            f32_add: k * d + d,
            transcendental: k + 1, // divisions + sqrt
            mem_bytes: k * 4 * d,
            ..OpCount::zero()
        }
    }
}

/// Cost of softmax confidence normalisation over `k` scores (step ③).
pub fn softmax_cost(shape: &RegHdShape) -> OpCount {
    let k = shape.models;
    OpCount {
        transcendental: 2 * k, // exp + divide per cluster
        f32_add: k,
        compare: k, // max-subtraction scan
        ..OpCount::zero()
    }
}

/// Cost of the weighted multi-model prediction (Eq. 6, step ④), in the
/// configured precision mode.
pub fn prediction_cost(shape: &RegHdShape) -> OpCount {
    let d = shape.dim;
    let k = shape.models;
    let mut ops = match (shape.query_binary, shape.model_binary) {
        // Full precision: D MACs per model.
        (false, false) => OpCount {
            f32_mul: k * d,
            f32_add: k * d,
            mem_bytes: k * 4 * d,
            ..OpCount::zero()
        },
        // Binary query × integer model: conditional add/subtract only.
        (true, false) => OpCount {
            int_add: k * d,
            mem_bytes: k * 4 * d,
            ..OpCount::zero()
        },
        // Integer query × binary model: conditional add/subtract only.
        (false, true) => OpCount {
            int_add: k * d,
            mem_bytes: k * 4 * d,
            ..OpCount::zero()
        },
        // Binary × binary: XOR + popcount over packed words.
        (true, true) => {
            let words = d.div_ceil(64);
            OpCount {
                xor64: k * words,
                popcount64: k * words,
                int_add: k * words,
                mem_bytes: k * (d / 8),
                ..OpCount::zero()
            }
        }
    };
    // Confidence weighting: one multiply + add per model (plus the scalar
    // amplitude multiply in binarised modes — same order).
    ops.f32_mul += k;
    ops.f32_add += k;
    ops
}

/// Cost of encoding one input through the int8 projection kernel (the
/// quantised serving tier): `D × n` int8 multiply-accumulates charged as
/// integer adds — the multiply-free accounting the paper applies to
/// quantised paths — plus one dequantising float multiply per output
/// component, the trig post-pass, and the sign pack into `u64` words.
pub fn quantized_encode_cost(shape: &RegHdShape) -> OpCount {
    let d = shape.dim;
    let n = shape.features;
    OpCount {
        int_add: d * n,
        // Dequantising scale multiply, plus the fast-trig polynomial the
        // quantised tier always uses (≈8 mul + 8 add per component for the
        // blended sin·cos approximation). Charged as plain float ops — the
        // `transcendental` class models a libm-exact call, which is what
        // the full-precision tier's default `TrigMode::Exact` performs.
        f32_mul: d + 8 * d,
        f32_add: 8 * d,
        // Sign comparisons for the packed binary copy.
        compare: d,
        // i8 row + i8 weights streamed once, f32 staging, packed write.
        mem_bytes: n + d * n + 4 * d + d / 8,
        ..OpCount::zero()
    }
}

/// Cost of one inference on the bit-packed binary serving tier: int8
/// projection encode, Hamming cluster search, softmax confidences, and
/// XOR + popcount model scores (§3.2 binary query × binary model).
pub fn binary_tier_infer_cost(shape: &RegHdShape) -> OpCount {
    let quant = RegHdShape {
        cluster_binary: true,
        query_binary: true,
        model_binary: true,
        ..*shape
    };
    quantized_encode_cost(&quant)
        + cluster_search_cost(&quant)
        + softmax_cost(&quant)
        + prediction_cost(&quant)
}

/// Cost of the model update (Eq. 7, step ⑤) for one training sample —
/// always applied to the integer models at full precision (§3.2).
pub fn model_update_cost(shape: &RegHdShape) -> OpCount {
    let d = shape.dim;
    let k = shape.models;
    OpCount {
        // α·δ′_i·err precomputed per model (k muls), then D scale-adds.
        f32_mul: k * d + k,
        f32_add: k * d,
        mem_bytes: k * 8 * d, // read-modify-write
        ..OpCount::zero()
    }
}

/// Cost of the cluster update (Eq. 8/9) for one training sample — one
/// cluster receives `(1 − δ)·S`.
pub fn cluster_update_cost(shape: &RegHdShape) -> OpCount {
    let d = shape.dim;
    OpCount {
        f32_mul: d,
        f32_add: d,
        compare: shape.models, // argmax scan
        mem_bytes: 8 * d,
        ..OpCount::zero()
    }
}

/// Cost of one full RegHD training epoch over `samples` data points.
pub fn reghd_train_epoch_cost(shape: &RegHdShape, samples: u64) -> OpCount {
    let per_sample = encode_cost(shape)
        + cluster_search_cost(shape)
        + softmax_cost(shape)
        + prediction_cost(shape)
        + model_update_cost(shape)
        + cluster_update_cost(shape);
    per_sample * samples
}

/// Cost of one RegHD inference (steps ①–④, no updates).
pub fn reghd_infer_cost(shape: &RegHdShape) -> OpCount {
    encode_cost(shape) + cluster_search_cost(shape) + softmax_cost(shape) + prediction_cost(shape)
}

/// Shape of a fully connected DNN, as the cost model sees it:
/// `layers = [input, h1, …, 1]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnnShape {
    /// Layer widths, input first, output (1) last.
    pub layers: Vec<u64>,
}

impl DnnShape {
    /// Total MACs of one forward pass.
    pub fn forward_macs(&self) -> u64 {
        self.layers.windows(2).map(|w| w[0] * w[1]).sum()
    }
}

/// Cost of one DNN inference (forward pass).
pub fn dnn_infer_cost(shape: &DnnShape) -> OpCount {
    let macs = shape.forward_macs();
    let acts: u64 = shape.layers[1..].iter().sum();
    OpCount {
        f32_mul: macs,
        f32_add: macs,
        compare: acts, // ReLU
        mem_bytes: 4 * (macs + acts),
        ..OpCount::zero()
    }
}

/// Cost of one DNN training epoch over `samples` points: forward pass +
/// backward pass + weight update ≈ 3× forward MACs (the standard
/// accounting), plus activation traffic.
pub fn dnn_train_epoch_cost(shape: &DnnShape, samples: u64) -> OpCount {
    let macs = shape.forward_macs();
    let acts: u64 = shape.layers[1..].iter().sum();
    let per_sample = OpCount {
        f32_mul: 3 * macs,
        f32_add: 3 * macs,
        compare: 2 * acts,
        transcendental: 0,
        mem_bytes: 4 * (3 * macs + 2 * acts),
        ..OpCount::zero()
    };
    per_sample * samples
}

/// Cost of one Baseline-HD inference: encode + similarity to every bin's
/// class hypervector + argmax.
pub fn baseline_hd_infer_cost(features: u64, dim: u64, bins: u64) -> OpCount {
    let shape = RegHdShape {
        dim,
        models: bins,
        features,
        cluster_binary: false,
        query_binary: false,
        model_binary: false,
    };
    let mut ops = encode_cost(&shape);
    ops += OpCount {
        f32_mul: bins * dim,
        f32_add: bins * dim,
        transcendental: bins, // cosine normalising divides
        compare: bins,        // argmax
        mem_bytes: bins * 4 * dim,
        ..OpCount::zero()
    };
    ops
}

/// Cost of one Baseline-HD training epoch: inference per sample plus the
/// two class-vector updates on mispredictions (charged on every sample, the
/// worst case that early epochs approach).
pub fn baseline_hd_train_epoch_cost(features: u64, dim: u64, bins: u64, samples: u64) -> OpCount {
    let per_sample = baseline_hd_infer_cost(features, dim, bins)
        + OpCount {
            f32_add: 2 * dim,
            f32_mul: 2 * dim,
            mem_bytes: 16 * dim,
            ..OpCount::zero()
        };
    per_sample * samples
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceProfile;

    fn full(dim: u64, k: u64) -> RegHdShape {
        RegHdShape {
            dim,
            models: k,
            features: 10,
            cluster_binary: false,
            query_binary: false,
            model_binary: false,
        }
    }

    #[test]
    fn cost_scales_linearly_with_models() {
        // "Increasing the number of hypervectors linearly increases RegHD
        // computation cost" (§4.3).
        let dev = DeviceProfile::fpga_kintex7();
        let t2 = dev.time_s(&reghd_infer_cost(&full(4096, 2)));
        let t8 = dev.time_s(&reghd_infer_cost(&full(4096, 8)));
        let t32 = dev.time_s(&reghd_infer_cost(&full(4096, 32)));
        // Not exactly linear because encoding is shared, but strongly
        // increasing and ordered.
        assert!(t2 < t8 && t8 < t32);
        assert!(t32 / t8 > 2.0, "t32/t8 = {}", t32 / t8);
    }

    #[test]
    fn cost_scales_with_dimension() {
        let dev = DeviceProfile::fpga_kintex7();
        let t1k = dev.time_s(&reghd_infer_cost(&full(1024, 8)));
        let t4k = dev.time_s(&reghd_infer_cost(&full(4096, 8)));
        let ratio = t4k / t1k;
        assert!((3.0..5.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn binary_cluster_search_is_cheaper() {
        // Figure 9: cluster quantisation ≈ 2× faster training.
        let dev = DeviceProfile::fpga_kintex7();
        let fullp = cluster_search_cost(&full(4096, 8));
        let mut shape = full(4096, 8);
        shape.cluster_binary = true;
        let quant = cluster_search_cost(&shape);
        assert!(dev.time_s(&fullp) / dev.time_s(&quant) > 5.0);
    }

    #[test]
    fn quantised_prediction_is_multiply_free_in_inner_loop() {
        let mut shape = full(4096, 8);
        shape.query_binary = true;
        let ops = prediction_cost(&shape);
        // Only the k per-model confidence weights multiply.
        assert_eq!(ops.f32_mul, 8);
        assert!(ops.int_add >= 8 * 4096);
    }

    #[test]
    fn binary_both_prediction_is_cheapest() {
        let dev = DeviceProfile::fpga_kintex7();
        let t_full = dev.time_s(&prediction_cost(&full(4096, 8)));
        let mut bq = full(4096, 8);
        bq.query_binary = true;
        let t_bq = dev.time_s(&prediction_cost(&bq));
        let mut bb = bq;
        bb.model_binary = true;
        let t_bb = dev.time_s(&prediction_cost(&bb));
        assert!(t_bb < t_bq && t_bq < t_full, "{t_bb} {t_bq} {t_full}");
    }

    #[test]
    fn quantized_encode_is_multiply_light() {
        let ops = quantized_encode_cost(&full(8192, 4));
        // The projection itself is integer MACs; only the dequant scale and
        // the fast-trig polynomial touch float multiplies.
        assert_eq!(ops.f32_mul, 9 * 8192);
        assert_eq!(ops.int_add, 8192 * 10);
        assert_eq!(ops.transcendental, 0);
    }

    #[test]
    fn binary_tier_beats_full_tier_by_an_order_of_magnitude() {
        // The ISSUE 10 target: bit-packed binary inference on the active
        // vector ISA ≥ 10× the scalar f32 path at D=8192 — the cost model
        // must predict the same headroom the bench gates on.
        let scalar = DeviceProfile::host_cpu("scalar", 3.0e9);
        let t_full_scalar = scalar.time_s(&reghd_infer_cost(&full(8192, 4)));
        for simd in ["avx2", "neon"] {
            let dev = DeviceProfile::host_cpu(simd, 3.0e9);
            let t_bin = dev.time_s(&binary_tier_infer_cost(&full(8192, 4)));
            assert!(
                t_full_scalar / t_bin > 10.0,
                "{simd}: predicted binary speedup {} ≤ 10",
                t_full_scalar / t_bin
            );
        }
    }

    #[test]
    fn reghd_inference_beats_dnn_inference() {
        // Figure 8's inference comparison (≈2.9× in the paper).
        let dev = DeviceProfile::fpga_kintex7();
        let reghd = reghd_infer_cost(&{
            let mut s = full(4096, 8);
            s.cluster_binary = true;
            s
        });
        // Representative of the grid-searched TensorFlow models of §4.2.
        let dnn = dnn_infer_cost(&DnnShape {
            layers: vec![10, 512, 512, 1],
        });
        let ratio = dev.time_s(&dnn) / dev.time_s(&reghd);
        assert!(ratio > 1.0, "reghd should be faster: ratio = {ratio}");
    }

    #[test]
    fn dnn_training_is_3x_inference() {
        let shape = DnnShape {
            layers: vec![10, 64, 1],
        };
        let inf = dnn_infer_cost(&shape);
        let train = dnn_train_epoch_cost(&shape, 1);
        assert_eq!(train.f32_mul, 3 * inf.f32_mul);
    }

    #[test]
    fn baseline_hd_cost_grows_with_bins() {
        let dev = DeviceProfile::fpga_kintex7();
        let small = baseline_hd_infer_cost(10, 4096, 16);
        let large = baseline_hd_infer_cost(10, 4096, 256);
        assert!(dev.time_s(&large) > 5.0 * dev.time_s(&small));
    }

    #[test]
    fn baseline_hd_with_many_bins_costs_more_than_reghd() {
        // The paper's point: emulating regression with hundreds of class
        // hypervectors is "significantly inefficient in hardware".
        let dev = DeviceProfile::fpga_kintex7();
        let baseline = baseline_hd_infer_cost(10, 4096, 256);
        let reghd = reghd_infer_cost(&full(4096, 8));
        assert!(dev.time_s(&baseline) > dev.time_s(&reghd));
    }

    #[test]
    fn train_epoch_scales_with_samples() {
        let a = reghd_train_epoch_cost(&full(1024, 4), 100);
        let b = reghd_train_epoch_cost(&full(1024, 4), 200);
        assert_eq!(b.f32_mul, 2 * a.f32_mul);
    }

    #[test]
    fn forward_macs_reference() {
        let shape = DnnShape {
            layers: vec![3, 5, 1],
        };
        assert_eq!(shape.forward_macs(), 15 + 5);
    }
}
