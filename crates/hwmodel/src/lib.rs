//! # hwmodel — operation-level hardware cost model
//!
//! The RegHD paper measures training/inference efficiency on a Kintex-7
//! FPGA and a Raspberry Pi 3B+ with a power meter (§4.1). Neither device is
//! available in this environment, so this crate substitutes an **analytic
//! operation-count model**: every learner reports how many operations of
//! each class (float multiply, integer add, 64-bit XOR + popcount,
//! transcendental, …) one training epoch or one inference costs, and a
//! [`DeviceProfile`] maps those counts to time and energy.
//!
//! The efficiency claims being reproduced (Figures 8–9, Table 2) are
//! **ratios** — RegHD vs DNN, quantised vs full precision, D = 1k vs 4k —
//! and those ratios are driven by (a) the operation mix, captured exactly
//! here, and (b) iteration counts, which the bench harness measures by
//! running the real algorithms. See `DESIGN.md` §3.
//!
//! ```
//! use hwmodel::{DeviceProfile, algos};
//!
//! let fpga = DeviceProfile::fpga_kintex7();
//! let full = algos::reghd_infer_cost(&algos::RegHdShape {
//!     dim: 4096, models: 8, features: 10,
//!     cluster_binary: false, query_binary: false, model_binary: false,
//! });
//! let quant = algos::reghd_infer_cost(&algos::RegHdShape {
//!     dim: 4096, models: 8, features: 10,
//!     cluster_binary: true, query_binary: true, model_binary: true,
//! });
//! let speedup = fpga.time_s(&full) / fpga.time_s(&quant);
//! assert!(speedup > 1.0); // quantised inference is faster
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algos;
pub mod device;
pub mod memory;
pub mod ops;

pub use device::{CostEstimate, DeviceProfile};
pub use memory::Footprint;
pub use ops::OpCount;
