//! Device profiles: mapping operation counts to time and energy.
//!
//! Two profiles mirror the paper's evaluation platforms:
//!
//! * [`DeviceProfile::fpga_kintex7`] — a Kintex-7-class FPGA: wide
//!   parallelism, cheap bitwise/popcount logic in LUTs, comparatively
//!   expensive DSP-based float multiplies.
//! * [`DeviceProfile::embedded_cpu`] — an ARM Cortex-A53-class embedded CPU
//!   (the paper's Raspberry Pi 3B+): modest parallelism (NEON), float and
//!   integer closer in cost, higher static power share.
//!
//! Per-op energies are order-of-magnitude figures from the standard
//! accounting literature (Horowitz, ISSCC'14 energy tables, scaled to the
//! respective platforms). Absolute numbers are *not* the reproduction
//! target; the ratios between operation classes are what drives the paper's
//! relative efficiency results.

use crate::ops::OpCount;

/// Time and energy estimate for a workload on a device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Estimated execution time in seconds.
    pub time_s: f64,
    /// Estimated energy in joules.
    pub energy_j: f64,
}

impl CostEstimate {
    /// Energy-delay product, a common combined figure of merit.
    pub fn edp(&self) -> f64 {
        self.time_s * self.energy_j
    }
}

/// Per-operation-class cost table for one device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Human-readable device name.
    pub name: String,
    /// Clock frequency in Hz.
    pub freq_hz: f64,
    /// Number of parallel lanes the device sustains on element-wise
    /// hypervector work.
    pub lanes: f64,
    /// Cycles per f32 multiply (per lane).
    pub cyc_f32_mul: f64,
    /// Cycles per f32 add.
    pub cyc_f32_add: f64,
    /// Cycles per integer add.
    pub cyc_int_add: f64,
    /// Cycles per 64-bit XOR.
    pub cyc_xor64: f64,
    /// Cycles per 64-bit popcount.
    pub cyc_popcount64: f64,
    /// Cycles per comparison.
    pub cyc_compare: f64,
    /// Cycles per transcendental.
    pub cyc_transcendental: f64,
    /// Cycles per byte of memory traffic (amortised bandwidth).
    pub cyc_mem_byte: f64,
    /// Energy per f32 multiply, picojoules.
    pub pj_f32_mul: f64,
    /// Energy per f32 add, picojoules.
    pub pj_f32_add: f64,
    /// Energy per integer add, picojoules.
    pub pj_int_add: f64,
    /// Energy per 64-bit XOR, picojoules.
    pub pj_xor64: f64,
    /// Energy per 64-bit popcount, picojoules.
    pub pj_popcount64: f64,
    /// Energy per comparison, picojoules.
    pub pj_compare: f64,
    /// Energy per transcendental, picojoules.
    pub pj_transcendental: f64,
    /// Energy per byte of memory traffic, picojoules.
    pub pj_mem_byte: f64,
    /// Static (leakage + idle) power in watts, charged over execution time.
    pub static_power_w: f64,
}

impl DeviceProfile {
    /// Kintex-7-class FPGA profile (the paper's KC705 evaluation kit).
    pub fn fpga_kintex7() -> Self {
        Self {
            name: "Kintex-7 FPGA".to_string(),
            freq_hz: 200e6,
            lanes: 512.0,
            cyc_f32_mul: 1.0,
            cyc_f32_add: 1.0,
            cyc_int_add: 0.25,
            cyc_xor64: 0.05,
            cyc_popcount64: 0.1,
            cyc_compare: 0.25,
            // FPGAs evaluate sin/cos/exp as pipelined BRAM lookup tables
            // with interpolation — close to one result per cycle per lane.
            cyc_transcendental: 2.0,
            cyc_mem_byte: 0.02,
            pj_f32_mul: 8.0,
            pj_f32_add: 2.0,
            pj_int_add: 0.4,
            pj_xor64: 0.3,
            pj_popcount64: 0.8,
            pj_compare: 0.3,
            pj_transcendental: 40.0,
            pj_mem_byte: 2.0,
            static_power_w: 0.6,
        }
    }

    /// ARM Cortex-A53-class embedded CPU profile (the paper's RPi 3B+).
    pub fn embedded_cpu() -> Self {
        Self {
            name: "ARM Cortex-A53".to_string(),
            freq_hz: 1.4e9,
            lanes: 8.0, // 4 cores × modest NEON ILP
            cyc_f32_mul: 1.0,
            cyc_f32_add: 1.0,
            cyc_int_add: 0.5,
            cyc_xor64: 0.25,
            cyc_popcount64: 0.5,
            cyc_compare: 0.5,
            cyc_transcendental: 20.0,
            cyc_mem_byte: 0.1,
            pj_f32_mul: 15.0,
            pj_f32_add: 6.0,
            pj_int_add: 2.0,
            pj_xor64: 1.0,
            pj_popcount64: 2.0,
            pj_compare: 1.5,
            pj_transcendental: 120.0,
            pj_mem_byte: 10.0,
            static_power_w: 1.5,
        }
    }

    /// Host-CPU profile for the `simd_kernels` bench's predicted-vs-measured
    /// check. `simd` is the active dispatch label (`"scalar"`, `"avx2"`,
    /// `"neon"`); per-class cycle counts are effective whole-core
    /// throughputs for that ISA (lanes is folded in, so `lanes = 1`).
    /// Absolute times are order-of-magnitude — the bench compares predicted
    /// and measured *ratios between tiers* and flags >2× disagreement.
    pub fn host_cpu(simd: &str, freq_hz: f64) -> Self {
        // (f32 mul/add, int8 MAC, xor64, popcount64, compare, transcendental)
        // effective cycles per op for one core of the given ISA width.
        // Transcendentals are libm sin/cos calls — scalar regardless of the
        // vector ISA, ≈25 cycles each.
        let (f32_op, int_mac, xor, pop, cmp, trans) = match simd {
            // AVX2: 8 f32 lanes, ~16 int8 MACs/cycle (pmaddubsw-style),
            // 4×u64 bitwise per cycle; popcount stays near scalar 1/cycle.
            "avx2" => (0.125, 0.0625, 0.25, 0.75, 0.25, 25.0),
            // NEON: 4 f32 lanes, ~8 int8 MACs/cycle, 2×u64 bitwise, vcnt.
            "neon" => (0.25, 0.125, 0.5, 0.75, 0.5, 25.0),
            // Scalar superscalar core: ~1 float op/cycle.
            _ => (1.0, 0.5, 0.4, 1.0, 0.5, 25.0),
        };
        Self {
            name: format!("host CPU ({simd})"),
            freq_hz,
            lanes: 1.0,
            cyc_f32_mul: f32_op,
            cyc_f32_add: f32_op,
            cyc_int_add: int_mac,
            cyc_xor64: xor,
            cyc_popcount64: pop,
            cyc_compare: cmp,
            cyc_transcendental: trans,
            cyc_mem_byte: 0.03,
            // Desktop-class per-op energies (Horowitz-scaled); unused by the
            // bench's time check but kept coherent for completeness.
            pj_f32_mul: 4.0,
            pj_f32_add: 1.5,
            pj_int_add: 0.5,
            pj_xor64: 0.4,
            pj_popcount64: 0.8,
            pj_compare: 0.4,
            pj_transcendental: 20.0,
            pj_mem_byte: 5.0,
            static_power_w: 10.0,
        }
    }

    /// Total cycles the workload needs (before dividing by lanes).
    fn cycles(&self, ops: &OpCount) -> f64 {
        ops.f32_mul as f64 * self.cyc_f32_mul
            + ops.f32_add as f64 * self.cyc_f32_add
            + ops.int_add as f64 * self.cyc_int_add
            + ops.xor64 as f64 * self.cyc_xor64
            + ops.popcount64 as f64 * self.cyc_popcount64
            + ops.compare as f64 * self.cyc_compare
            + ops.transcendental as f64 * self.cyc_transcendental
            + ops.mem_bytes as f64 * self.cyc_mem_byte
    }

    /// Dynamic energy of the workload, in joules.
    fn dynamic_energy_j(&self, ops: &OpCount) -> f64 {
        1e-12
            * (ops.f32_mul as f64 * self.pj_f32_mul
                + ops.f32_add as f64 * self.pj_f32_add
                + ops.int_add as f64 * self.pj_int_add
                + ops.xor64 as f64 * self.pj_xor64
                + ops.popcount64 as f64 * self.pj_popcount64
                + ops.compare as f64 * self.pj_compare
                + ops.transcendental as f64 * self.pj_transcendental
                + ops.mem_bytes as f64 * self.pj_mem_byte)
    }

    /// Estimated execution time in seconds.
    pub fn time_s(&self, ops: &OpCount) -> f64 {
        self.cycles(ops) / (self.lanes * self.freq_hz)
    }

    /// Estimated total energy in joules (dynamic + static over runtime).
    pub fn energy_j(&self, ops: &OpCount) -> f64 {
        self.dynamic_energy_j(ops) + self.static_power_w * self.time_s(ops)
    }

    /// Full cost estimate.
    pub fn estimate(&self, ops: &OpCount) -> CostEstimate {
        CostEstimate {
            time_s: self.time_s(ops),
            energy_j: self.energy_j(ops),
        }
    }
}

/// Speedup of `candidate` relative to `baseline` (`> 1` means candidate is
/// faster).
pub fn speedup(baseline: &CostEstimate, candidate: &CostEstimate) -> f64 {
    baseline.time_s / candidate.time_s
}

/// Energy-efficiency gain of `candidate` relative to `baseline` (`> 1`
/// means candidate uses less energy).
pub fn energy_gain(baseline: &CostEstimate, candidate: &CostEstimate) -> f64 {
    baseline.energy_j / candidate.energy_j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mul_heavy() -> OpCount {
        OpCount {
            f32_mul: 1_000_000,
            f32_add: 1_000_000,
            ..OpCount::zero()
        }
    }

    fn popcount_heavy() -> OpCount {
        // Same "work width": 1M element-pairs processed 64 at a time.
        OpCount {
            xor64: 1_000_000 / 64,
            popcount64: 1_000_000 / 64,
            int_add: 1_000_000 / 64,
            ..OpCount::zero()
        }
    }

    #[test]
    fn popcount_path_is_much_cheaper() {
        // The core §3.1 premise: Hamming similarity over packed words beats
        // cosine over floats by a large factor on both devices.
        for dev in [DeviceProfile::fpga_kintex7(), DeviceProfile::embedded_cpu()] {
            let full = dev.estimate(&mul_heavy());
            let quant = dev.estimate(&popcount_heavy());
            assert!(
                speedup(&full, &quant) > 10.0,
                "{}: speedup = {}",
                dev.name,
                speedup(&full, &quant)
            );
            assert!(energy_gain(&full, &quant) > 10.0);
        }
    }

    #[test]
    fn fpga_faster_than_embedded_cpu_on_parallel_work() {
        let fpga = DeviceProfile::fpga_kintex7();
        let cpu = DeviceProfile::embedded_cpu();
        let w = mul_heavy();
        assert!(fpga.time_s(&w) < cpu.time_s(&w));
    }

    #[test]
    fn time_scales_linearly() {
        let dev = DeviceProfile::fpga_kintex7();
        let w = mul_heavy();
        let t1 = dev.time_s(&w);
        let t2 = dev.time_s(&(w * 2));
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn energy_includes_static_share() {
        let dev = DeviceProfile::embedded_cpu();
        let w = mul_heavy();
        let e = dev.energy_j(&w);
        let t = dev.time_s(&w);
        assert!(e > dev.static_power_w * t, "static power must be included");
    }

    #[test]
    fn zero_ops_cost_nothing() {
        let dev = DeviceProfile::fpga_kintex7();
        let est = dev.estimate(&OpCount::zero());
        assert_eq!(est.time_s, 0.0);
        assert_eq!(est.energy_j, 0.0);
        assert_eq!(est.edp(), 0.0);
    }

    #[test]
    fn ratio_helpers() {
        let a = CostEstimate {
            time_s: 2.0,
            energy_j: 8.0,
        };
        let b = CostEstimate {
            time_s: 1.0,
            energy_j: 2.0,
        };
        assert_eq!(speedup(&a, &b), 2.0);
        assert_eq!(energy_gain(&a, &b), 4.0);
    }
}
