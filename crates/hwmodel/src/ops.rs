//! Operation counting.
//!
//! [`OpCount`] tallies how many primitive operations of each class an
//! algorithm performs. The classes are chosen to distinguish exactly the
//! costs the RegHD quantisation framework trades between: full-precision
//! multiply/add, integer (multiply-free) add, bitwise XOR + popcount over
//! 64-bit words, comparisons, and transcendental evaluations.

use std::ops::{Add, AddAssign, Mul};

/// Tally of primitive operations, by class.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OpCount {
    /// 32-bit floating-point multiplications.
    pub f32_mul: u64,
    /// 32-bit floating-point additions/subtractions.
    pub f32_add: u64,
    /// Integer additions/subtractions (the multiply-free path).
    pub int_add: u64,
    /// 64-bit word XOR operations.
    pub xor64: u64,
    /// 64-bit word popcounts.
    pub popcount64: u64,
    /// Scalar comparisons (thresholding, argmax steps).
    pub compare: u64,
    /// Transcendental evaluations (sin, cos, exp, sqrt, division).
    pub transcendental: u64,
    /// Bytes moved to/from memory.
    pub mem_bytes: u64,
}

impl OpCount {
    /// An empty tally.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Total arithmetic operations (everything except memory traffic).
    pub fn total_arith(&self) -> u64 {
        self.f32_mul
            + self.f32_add
            + self.int_add
            + self.xor64
            + self.popcount64
            + self.compare
            + self.transcendental
    }

    /// Whether the tally contains any floating-point multiplies — the
    /// "costly" operation class the quantised modes are designed to avoid
    /// in their inner loops.
    pub fn is_multiply_free(&self) -> bool {
        self.f32_mul == 0
    }
}

impl Add for OpCount {
    type Output = OpCount;

    fn add(self, rhs: OpCount) -> OpCount {
        OpCount {
            f32_mul: self.f32_mul + rhs.f32_mul,
            f32_add: self.f32_add + rhs.f32_add,
            int_add: self.int_add + rhs.int_add,
            xor64: self.xor64 + rhs.xor64,
            popcount64: self.popcount64 + rhs.popcount64,
            compare: self.compare + rhs.compare,
            transcendental: self.transcendental + rhs.transcendental,
            mem_bytes: self.mem_bytes + rhs.mem_bytes,
        }
    }
}

impl AddAssign for OpCount {
    fn add_assign(&mut self, rhs: OpCount) {
        *self = *self + rhs;
    }
}

impl Mul<u64> for OpCount {
    type Output = OpCount;

    /// Scales every class by `rhs` — e.g. per-sample cost × sample count.
    fn mul(self, rhs: u64) -> OpCount {
        OpCount {
            f32_mul: self.f32_mul * rhs,
            f32_add: self.f32_add * rhs,
            int_add: self.int_add * rhs,
            xor64: self.xor64 * rhs,
            popcount64: self.popcount64 * rhs,
            compare: self.compare * rhs,
            transcendental: self.transcendental * rhs,
            mem_bytes: self.mem_bytes * rhs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_empty() {
        let z = OpCount::zero();
        assert_eq!(z.total_arith(), 0);
        assert!(z.is_multiply_free());
    }

    #[test]
    fn add_accumulates_componentwise() {
        let a = OpCount {
            f32_mul: 1,
            int_add: 2,
            ..OpCount::zero()
        };
        let b = OpCount {
            f32_mul: 10,
            popcount64: 5,
            ..OpCount::zero()
        };
        let c = a + b;
        assert_eq!(c.f32_mul, 11);
        assert_eq!(c.int_add, 2);
        assert_eq!(c.popcount64, 5);
    }

    #[test]
    fn mul_scales_everything() {
        let a = OpCount {
            f32_mul: 3,
            mem_bytes: 7,
            ..OpCount::zero()
        };
        let b = a * 4;
        assert_eq!(b.f32_mul, 12);
        assert_eq!(b.mem_bytes, 28);
    }

    #[test]
    fn add_assign_matches_add() {
        let a = OpCount {
            xor64: 2,
            ..OpCount::zero()
        };
        let mut b = a;
        b += a;
        assert_eq!(b, a + a);
    }

    #[test]
    fn multiply_free_detection() {
        let quantised = OpCount {
            int_add: 100,
            popcount64: 50,
            ..OpCount::zero()
        };
        assert!(quantised.is_multiply_free());
        let full = OpCount {
            f32_mul: 1,
            ..quantised
        };
        assert!(!full.is_multiply_free());
    }

    #[test]
    fn total_arith_excludes_memory() {
        let a = OpCount {
            f32_add: 5,
            mem_bytes: 1000,
            ..OpCount::zero()
        };
        assert_eq!(a.total_arith(), 5);
    }
}
